package workload

import (
	"fmt"
	"math/rand"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// TailConfig parameterizes the tail-latency experiment: clients issue
// synchronous block reads one at a time and every read's completion latency
// is recorded, first on a healthy cluster and then under the cluster's
// armed fault plan (a degraded storage node).  The per-request latency
// distribution — not aggregate MB/s — is the result.
type TailConfig struct {
	Block    int64 // per-read block size (default 64 KB)
	FileSize int64 // per-client file size (default 8 MB)
	// Passes repeats the full shuffled scan per phase (default 1); client
	// caches are dropped between passes so every read is an RPC.  More
	// passes give the p999 estimate more samples at small file sizes.
	Passes int
	// Seed drives the per-client shuffled read order (the simulation's own
	// randomness threads from cluster.Config.Seed; this seed only permutes
	// block order, so the experiment follows the bench determinism rule).
	Seed int64
}

// TailPhase is one phase's read-latency distribution.
type TailPhase struct {
	P50, P99, P999 float64 // seconds (histogram-bucket upper bounds)
	Reads          uint64  // latency samples recorded
	Hedges         float64 // hedged duplicates launched during the phase
}

// TailResult holds both phases.
type TailResult struct {
	Steady   TailPhase // faults disarmed
	Degraded TailPhase // fault plan armed (degraded node)
}

// tailBuckets resolve the latency histogram: geometric up to 150 ms, then
// one coarse bucket covering every single-retransmit completion (the
// simulated network's 200 ms RTO plus service time lands in (0.15, 0.5]
// whatever the architecture), so quantile comparisons across runs depend on
// how many requests suffered an RTO, not on sub-bucket jitter.
func tailBuckets() []float64 {
	var b []float64
	for v := 500e-6; v < 0.15; v *= 1.3 {
		b = append(b, v)
	}
	return append(b, 0.15, 0.5, 1, 2.5)
}

// counterTotal sums one counter family across its label series.
func counterTotal(reg *metrics.Registry, name string) float64 {
	var total float64
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			total += s.Value
		}
	}
	return total
}

// Tail runs the experiment.  It requires the simulated transport: latencies
// are virtual-time intervals, which also makes the distributions exactly
// reproducible for a given (seed, plan).
//
// Setup (outside the fault schedule) writes each client a private file.
// Each phase then drops client caches and has every client read its file's
// blocks once per pass, in a per-client seeded shuffle, one synchronous
// read at a time — so each sample is an isolated request-level latency, and
// a straggling block (slow disk, lost message) surfaces directly as a tail
// sample rather than hiding inside a deep pipeline.  The steady phase runs
// with faults disarmed; the degraded phase re-arms the cluster's plan.
func Tail(cl *cluster.Cluster, cfg TailConfig) (TailResult, error) {
	if cl.Cfg.Transport == cluster.TransportTCP {
		return TailResult{}, fmt.Errorf("workload: the tail experiment requires the sim transport")
	}
	if cfg.Block <= 0 {
		cfg.Block = 64 << 10
	}
	if cfg.FileSize < cfg.Block {
		cfg.FileSize = 8 << 20
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	blocks := int(cfg.FileSize / cfg.Block)

	// Setup outside the fault schedule: only the degraded phase suffers it.
	cl.ArmFaults(false)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/tail.%d", i))
		if err != nil {
			return err
		}
		for b := 0; b < blocks; b++ {
			if err := m.Write(ctx, f, int64(b)*cfg.Block, payload.Synthetic(cfg.Block)); err != nil {
				return err
			}
		}
		return m.Close(ctx, f)
	}); err != nil {
		return TailResult{}, fmt.Errorf("tail setup: %w", err)
	}

	phase := func(armed bool, phaseSeed int64) (TailPhase, error) {
		cl.ArmFaults(armed)
		hedges0 := counterTotal(cl.Metrics(), "ioengine_hedges_launched_total")
		// A private registry holds the phase's latency histogram, so the
		// distribution never leaks into (or double-counts in) the cluster's
		// shared registry across phases.
		hist := metrics.NewRegistry().Histogram("workload_tail_read_seconds",
			"Per-read completion latency for the tail experiment.", tailBuckets())
		if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
			rng := rand.New(rand.NewSource(cfg.Seed + phaseSeed*1009 + int64(i)))
			for pass := 0; pass < cfg.Passes; pass++ {
				m.DropCaches()
				f, err := m.Open(ctx, fmt.Sprintf("/tail.%d", i))
				if err != nil {
					return err
				}
				order := rng.Perm(blocks)
				for _, b := range order {
					t0 := ctx.Now()
					if _, _, err := m.Read(ctx, f, int64(b)*cfg.Block, cfg.Block); err != nil {
						return err
					}
					hist.ObserveDuration(time.Duration(ctx.Now() - t0))
				}
				if err := m.Close(ctx, f); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return TailPhase{}, err
		}
		return TailPhase{
			P50:    hist.Quantile(0.50),
			P99:    hist.Quantile(0.99),
			P999:   hist.Quantile(0.999),
			Reads:  hist.Count(),
			Hedges: counterTotal(cl.Metrics(), "ioengine_hedges_launched_total") - hedges0,
		}, nil
	}

	steady, err := phase(false, 1)
	if err != nil {
		return TailResult{}, fmt.Errorf("tail steady phase: %w", err)
	}
	degraded, err := phase(true, 2)
	if err != nil {
		return TailResult{}, fmt.Errorf("tail degraded phase: %w", err)
	}
	return TailResult{Steady: steady, Degraded: degraded}, nil
}
