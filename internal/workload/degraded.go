package workload

import (
	"fmt"
	"sync"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// DegradedConfig parameterizes the degraded-mode experiment: clients stream
// synchronous block writes while the cluster's fault plan crashes a storage
// node mid-run and restarts it, and throughput is accounted into three
// windows.  CrashAt/RestartAt must match the cluster's faults.Plan — the
// bench layer builds both from one set of numbers.
type DegradedConfig struct {
	Block     int64         // per-write block size (default 2 MB)
	CrashAt   time.Duration // start of the outage window
	RestartAt time.Duration // end of the outage window
	Tail      time.Duration // recovery window measured after the restart
}

// DegradedResult is per-window aggregate throughput.
type DegradedResult struct {
	Before float64 // MB/s in [0, CrashAt)
	During float64 // MB/s in [CrashAt, RestartAt)
	After  float64 // MB/s in [RestartAt, end of run)
}

// Degraded runs the experiment.  It requires the simulated transport: the
// windows are virtual-time intervals, which is also what makes the result
// exactly reproducible for a given (seed, plan).
//
// Every client writes Block-sized chunks, each followed by an fsync so a
// chunk only counts once its bytes are on stable storage, and keeps going
// until the recovery window has elapsed.  Chunk completion times bucket the
// bytes into the three windows.
func Degraded(cl *cluster.Cluster, cfg DegradedConfig) (DegradedResult, error) {
	if cl.Cfg.Transport == cluster.TransportTCP {
		return DegradedResult{}, fmt.Errorf("workload: the degraded experiment requires the sim transport")
	}
	if cfg.Block <= 0 {
		cfg.Block = 2 << 20
	}
	if cfg.CrashAt <= 0 {
		cfg.CrashAt = 2 * time.Second
	}
	if cfg.RestartAt <= cfg.CrashAt {
		cfg.RestartAt = cfg.CrashAt + 4*time.Second
	}
	if cfg.Tail <= 0 {
		cfg.Tail = 3 * time.Second
	}

	// Setup outside the fault schedule: the measured run alone suffers it.
	cl.ArmFaults(false)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/degraded.%d", i))
		if err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		return DegradedResult{}, fmt.Errorf("degraded setup: %w", err)
	}
	cl.ArmFaults(true)

	var mu sync.Mutex
	var window [3]int64 // bytes completed per window
	deadline := cfg.RestartAt + cfg.Tail
	start := cl.Now()
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Open(ctx, fmt.Sprintf("/degraded.%d", i))
		if err != nil {
			return err
		}
		var off int64
		for time.Duration(ctx.Now())-start < deadline {
			if err := m.Write(ctx, f, off, payload.Synthetic(cfg.Block)); err != nil {
				return err
			}
			if err := m.Fsync(ctx, f); err != nil {
				return err
			}
			at := time.Duration(ctx.Now()) - start
			w := 0
			switch {
			case at >= cfg.RestartAt:
				w = 2
			case at >= cfg.CrashAt:
				w = 1
			}
			mu.Lock()
			window[w] += cfg.Block
			mu.Unlock()
			off += cfg.Block
		}
		return m.Close(ctx, f)
	})
	if err != nil {
		return DegradedResult{}, fmt.Errorf("degraded run: %w", err)
	}
	afterDur := elapsed - cfg.RestartAt
	if afterDur <= 0 {
		afterDur = cfg.Tail
	}
	mbs := func(bytes int64, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(bytes) / 1e6 / d.Seconds()
	}
	return DegradedResult{
		Before: mbs(window[0], cfg.CrashAt),
		During: mbs(window[1], cfg.RestartAt-cfg.CrashAt),
		After:  mbs(window[2], afterDur),
	}, nil
}
