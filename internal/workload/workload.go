// Package workload implements the paper's six benchmarks (§6): the IOR
// micro-benchmark, the ATLAS Digitization trace replay, NAS BTIO, the OLTP
// and Postmark macro-benchmarks, and the SSH-build task.  Each workload is
// written once against cluster.Mount and runs unchanged on all five
// architectures.
//
// Paper mapping: IOR drives Figures 6 (writes, §6.3.1) and 7 (warm-cache
// reads, §6.3.2); ATLAS, BTIO, OLTP, and Postmark drive Figures 8a–8d
// (§6.4.1–§6.4.2); SSHBuild reproduces the §6.4.3 build-phase study.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// Result is one workload execution's outcome.
type Result struct {
	Clients      int
	Bytes        int64         // payload bytes moved in the measured phase
	Elapsed      time.Duration // virtual time of the measured phase
	Transactions int
}

// ThroughputMBs returns aggregate MB/s (decimal MB, as the paper plots).
func (r Result) ThroughputMBs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// TPS returns transactions per second.
func (r Result) TPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Transactions) / r.Elapsed.Seconds()
}

// IORConfig parameterizes the IOR-style micro-benchmark (§6.2).
type IORConfig struct {
	FileSize int64 // per client (paper: 500 MB)
	Block    int64 // application request size (paper: 2-4 MB or 8 KB)
	// MixedBlocks, when non-empty, cycles the request size through the list
	// instead of using Block — the heterogeneous-request pattern the
	// window-sweep figure uses to expose wave-dispatch stalls.
	MixedBlocks []int64
	Separate    bool // separate files vs disjoint regions of one file
	Read        bool // read phase (against a warm server cache) vs write
}

// blockAt returns the k-th request's size.
func (c IORConfig) blockAt(k int) int64 {
	if len(c.MixedBlocks) > 0 {
		return c.MixedBlocks[k%len(c.MixedBlocks)]
	}
	return c.Block
}

// IOR runs the micro-benchmark and returns the measured phase.
func IOR(cl *cluster.Cluster, cfg IORConfig) (Result, error) {
	if cfg.FileSize <= 0 {
		cfg.FileSize = 500 << 20
	}
	if cfg.Block <= 0 {
		cfg.Block = 2 << 20
	}
	clients := len(cl.Mounts())
	path := func(i int) string {
		if cfg.Separate {
			return fmt.Sprintf("/ior.%d", i)
		}
		return "/ior.single"
	}
	region := func(i int) int64 {
		if cfg.Separate {
			return 0
		}
		return int64(i) * cfg.FileSize
	}

	// Setup: create the files outside the measured phase.
	if cfg.Separate {
		if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
			f, err := m.Create(ctx, path(i))
			if err != nil {
				return err
			}
			return m.Close(ctx, f)
		}); err != nil {
			return Result{}, fmt.Errorf("ior setup: %w", err)
		}
	} else {
		if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *cluster.Mount, _ int) error {
			f, err := m.Create(ctx, path(0))
			if err != nil {
				return err
			}
			return m.Close(ctx, f)
		}); err != nil {
			return Result{}, fmt.Errorf("ior setup: %w", err)
		}
	}

	write := func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Open(ctx, path(i))
		if err != nil {
			return err
		}
		base := region(i)
		for off, k := int64(0), 0; off < cfg.FileSize; k++ {
			n := cfg.blockAt(k)
			if off+n > cfg.FileSize {
				n = cfg.FileSize - off
			}
			if err := m.Write(ctx, f, base+off, payload.Synthetic(n)); err != nil {
				return err
			}
			off += n
		}
		// IOR -e semantics: fsync before close, so the measurement reflects
		// data on stable storage for every architecture.
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}

	if !cfg.Read {
		elapsed, err := cl.Run(write)
		if err != nil {
			return Result{}, fmt.Errorf("ior write: %w", err)
		}
		return Result{Clients: clients, Bytes: cfg.FileSize * int64(clients), Elapsed: elapsed}, nil
	}

	// Read mode: populate, warm the server caches, then measure reads with
	// cold client caches (the paper's warm-server-cache methodology).
	if _, err := cl.Run(write); err != nil {
		return Result{}, fmt.Errorf("ior populate: %w", err)
	}
	for _, m := range cl.Mounts() {
		m.DropCaches()
	}
	if cfg.Separate {
		for i := 0; i < clients; i++ {
			if err := cl.WarmCaches(path(i)); err != nil {
				return Result{}, err
			}
		}
	} else if err := cl.WarmCaches(path(0)); err != nil {
		return Result{}, err
	}
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Open(ctx, path(i))
		if err != nil {
			return err
		}
		base := region(i)
		for off, k := int64(0), 0; off < cfg.FileSize; k++ {
			n := cfg.blockAt(k)
			if off+n > cfg.FileSize {
				n = cfg.FileSize - off
			}
			if _, got, err := m.Read(ctx, f, base+off, n); err != nil {
				return err
			} else if got != n {
				return fmt.Errorf("short read at %d: %d of %d", base+off, got, n)
			}
			off += n
		}
		return nil
	})
	if err != nil {
		return Result{}, fmt.Errorf("ior read: %w", err)
	}
	return Result{Clients: clients, Bytes: cfg.FileSize * int64(clients), Elapsed: elapsed}, nil
}

// ATLASConfig parameterizes the Digitization write replay (§6.3.1): each
// client spreads ~TotalBytes randomly over its own file; 95% of requests
// are small but 95% of the bytes ride in requests ≥ 275 KB.
type ATLASConfig struct {
	TotalBytes int64 // per client (paper: ~650 MB for 500 events)
	Seed       int64
}

// ATLAS replays the Digitization write trace and reports aggregate write
// throughput.
func ATLAS(cl *cluster.Cluster, cfg ATLASConfig) (Result, error) {
	if cfg.TotalBytes <= 0 {
		cfg.TotalBytes = 650 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	clients := len(cl.Mounts())
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/atlas.%d", i))
		if err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		return Result{}, err
	}
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		f, err := m.Open(ctx, fmt.Sprintf("/atlas.%d", i))
		if err != nil {
			return err
		}
		// Build segments covering the file once, with the trace's request
		// mix (95% of requests tiny, 95% of the bytes in ≥ 275 KB
		// requests), then write them in random order: Digitization spreads
		// the data randomly over the file but every byte is written once.
		type seg struct{ off, n int64 }
		var segs []seg
		var off int64
		for off < cfg.TotalBytes {
			var n int64
			if rng.Float64() < 0.95 {
				n = 1<<10 + rng.Int63n(3<<10) // 1-4 KiB small requests
			} else {
				n = 275<<10 + rng.Int63n(1<<20) // 275 KiB - 1.25 MiB bulk
			}
			if off+n > cfg.TotalBytes {
				n = cfg.TotalBytes - off
			}
			segs = append(segs, seg{off, n})
			off += n
		}
		rng.Shuffle(len(segs), func(a, b int) { segs[a], segs[b] = segs[b], segs[a] })
		for _, s := range segs {
			if err := m.Write(ctx, f, s.off, payload.Synthetic(s.n)); err != nil {
				return err
			}
		}
		return m.Close(ctx, f)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Clients: clients, Bytes: cfg.TotalBytes * int64(clients), Elapsed: elapsed}, nil
}

// BTIOConfig parameterizes the NAS BT-IO class-A-like run (§6.3.2): a
// shared checkpoint file written collectively every five time steps, then
// ingested and verified.
type BTIOConfig struct {
	CheckpointBytes int64 // total file size (paper class A: 400 MB)
	Checkpoints     int   // 200 steps / 5 = 40
}

// BTIO runs the checkpoint benchmark and reports total running time (the
// paper's Figure 8b plots seconds, lower is better).
func BTIO(cl *cluster.Cluster, cfg BTIOConfig) (Result, error) {
	if cfg.CheckpointBytes <= 0 {
		cfg.CheckpointBytes = 400 << 20
	}
	if cfg.Checkpoints <= 0 {
		cfg.Checkpoints = 40
	}
	clients := len(cl.Mounts())
	if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *cluster.Mount, _ int) error {
		f, err := m.Create(ctx, "/btio")
		if err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		return Result{}, err
	}
	perCkpt := cfg.CheckpointBytes / int64(cfg.Checkpoints)
	slice := perCkpt / int64(clients)
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Open(ctx, "/btio")
		if err != nil {
			return err
		}
		// Write phase: collective-buffered appends (≥ 1 MB requests).
		for c := 0; c < cfg.Checkpoints; c++ {
			base := int64(c)*perCkpt + int64(i)*slice
			if err := m.Write(ctx, f, base, payload.Synthetic(slice)); err != nil {
				return err
			}
			if err := m.Fsync(ctx, f); err != nil {
				return err
			}
		}
		if err := m.Close(ctx, f); err != nil {
			return err
		}
		// Ingestion + verification: read the full file back.
		g, err := m.Open(ctx, "/btio")
		if err != nil {
			return err
		}
		total := perCkpt * int64(cfg.Checkpoints)
		chunk := int64(2 << 20)
		for off := int64(i) * chunk; off < total; off += chunk * int64(clients) {
			n := chunk
			if off+n > total {
				n = total - off
			}
			if _, _, err := m.Read(ctx, g, off, n); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Clients: clients, Bytes: cfg.CheckpointBytes * 2, Elapsed: elapsed}, nil
}

// OLTPConfig parameterizes the database macro-benchmark (§6.4.1):
// read-modify-write transactions of 8 KB against one large file, with data
// forced to stable storage after every transaction.
type OLTPConfig struct {
	FileBytes    int64 // shared table size (default 512 MB)
	Transactions int   // per client (paper: 20 000)
	Seed         int64
}

// OLTP runs the transaction benchmark and reports aggregate I/O throughput
// (16 KB moved per transaction: 8 read + 8 written).
func OLTP(cl *cluster.Cluster, cfg OLTPConfig) (Result, error) {
	if cfg.FileBytes <= 0 {
		cfg.FileBytes = 512 << 20
	}
	if cfg.Transactions <= 0 {
		cfg.Transactions = 20000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	clients := len(cl.Mounts())
	// Setup: client 0 creates and prefills the table.
	if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *cluster.Mount, _ int) error {
		f, err := m.Create(ctx, "/oltp")
		if err != nil {
			return err
		}
		for off := int64(0); off < cfg.FileBytes; off += 4 << 20 {
			if err := m.Write(ctx, f, off, payload.Synthetic(4<<20)); err != nil {
				return err
			}
		}
		return m.Close(ctx, f)
	}); err != nil {
		return Result{}, err
	}
	if err := cl.WarmCaches("/oltp"); err != nil {
		return Result{}, err
	}
	const rec = 8 << 10
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		f, err := m.Open(ctx, "/oltp")
		if err != nil {
			return err
		}
		for t := 0; t < cfg.Transactions; t++ {
			off := rng.Int63n(cfg.FileBytes/rec) * rec
			if _, _, err := m.Read(ctx, f, off, rec); err != nil {
				return err
			}
			if err := m.Write(ctx, f, off, payload.Synthetic(rec)); err != nil {
				return err
			}
			if err := m.Fsync(ctx, f); err != nil {
				return err
			}
		}
		return m.Close(ctx, f)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Clients:      clients,
		Bytes:        int64(cfg.Transactions) * int64(clients) * rec * 2,
		Elapsed:      elapsed,
		Transactions: cfg.Transactions * clients,
	}, nil
}

// PostmarkConfig parameterizes the small-file benchmark (§6.4.2): 2 000
// transactions over 100 files (1-500 KB) in 10 directories, 512-byte reads
// and appends, data stable before close.
type PostmarkConfig struct {
	Files        int
	Dirs         int
	Transactions int // per client
	MinSize      int64
	MaxSize      int64
	Seed         int64
}

// Postmark runs the benchmark and reports transactions per second.
func Postmark(cl *cluster.Cluster, cfg PostmarkConfig) (Result, error) {
	if cfg.Files <= 0 {
		cfg.Files = 100
	}
	if cfg.Dirs <= 0 {
		cfg.Dirs = 10
	}
	if cfg.Transactions <= 0 {
		cfg.Transactions = 2000
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 1 << 10
	}
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 500 << 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 13
	}
	clients := len(cl.Mounts())

	// Setup: per-client directory trees and initial file sets.
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		root := fmt.Sprintf("/pm%d", i)
		if err := m.Mkdir(ctx, root); err != nil {
			return err
		}
		for d := 0; d < cfg.Dirs; d++ {
			if err := m.Mkdir(ctx, fmt.Sprintf("%s/d%d", root, d)); err != nil {
				return err
			}
		}
		for n := 0; n < cfg.Files; n++ {
			path := fmt.Sprintf("%s/d%d/f%d", root, n%cfg.Dirs, n)
			f, err := m.Create(ctx, path)
			if err != nil {
				return err
			}
			size := cfg.MinSize + rng.Int63n(cfg.MaxSize-cfg.MinSize)
			if err := m.Write(ctx, f, 0, payload.Synthetic(size)); err != nil {
				return err
			}
			if err := m.Close(ctx, f); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return Result{}, fmt.Errorf("postmark setup: %w", err)
	}

	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(i)))
		root := fmt.Sprintf("/pm%d", i)
		live := make([]int, cfg.Files)
		sizes := make(map[int]int64, cfg.Files)
		for n := range live {
			live[n] = n
			sizes[n] = cfg.MinSize // conservative; reads clamp server-side
		}
		next := cfg.Files
		pathOf := func(n int) string {
			return fmt.Sprintf("%s/d%d/f%d", root, n%cfg.Dirs, n)
		}
		for t := 0; t < cfg.Transactions; t++ {
			// Half A: create or delete.
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := next
				next++
				f, err := m.Create(ctx, pathOf(n))
				if err != nil {
					return err
				}
				size := cfg.MinSize + rng.Int63n(cfg.MaxSize-cfg.MinSize)
				if err := m.Write(ctx, f, 0, payload.Synthetic(size)); err != nil {
					return err
				}
				// Postmark sends data to stable storage before close.
				if err := m.Fsync(ctx, f); err != nil {
					return err
				}
				if err := m.Close(ctx, f); err != nil {
					return err
				}
				live = append(live, n)
				sizes[n] = size
			} else {
				k := rng.Intn(len(live))
				n := live[k]
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				delete(sizes, n)
				if err := m.Remove(ctx, pathOf(n)); err != nil {
					return err
				}
			}
			if len(live) == 0 {
				continue
			}
			// Half B: read or append 512 bytes; stable before close.
			n := live[rng.Intn(len(live))]
			f, err := m.Open(ctx, pathOf(n))
			if err != nil {
				return err
			}
			if rng.Intn(2) == 0 {
				if _, _, err := m.Read(ctx, f, 0, 512); err != nil {
					return err
				}
			} else {
				if err := m.Write(ctx, f, sizes[n], payload.Synthetic(512)); err != nil {
					return err
				}
				sizes[n] += 512
				if err := m.Fsync(ctx, f); err != nil {
					return err
				}
			}
			if err := m.Close(ctx, f); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, fmt.Errorf("postmark: %w", err)
	}
	return Result{
		Clients:      clients,
		Elapsed:      elapsed,
		Transactions: cfg.Transactions * clients,
	}, nil
}

// SSHBuildResult reports the three phases of the build benchmark (§6.4.3).
type SSHBuildResult struct {
	Uncompress time.Duration // file creation dominated
	Configure  time.Duration // creates + attribute updates
	Build      time.Duration // small reads and writes
}

// SSHBuild reproduces the OpenSSH build benchmark's phase structure: an
// unpack phase creating ~400 source files, a configure phase of small
// probe files and attribute checks, and a compile phase reading sources and
// writing objects.
func SSHBuild(cl *cluster.Cluster, seed int64) (SSHBuildResult, error) {
	if seed == 0 {
		seed = 3
	}
	const nSrc = 400
	var out SSHBuildResult

	// Uncompress: create the tree.
	d, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *cluster.Mount, _ int) error {
		rng := rand.New(rand.NewSource(seed))
		if err := m.Mkdir(ctx, "/ssh"); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := m.Mkdir(ctx, fmt.Sprintf("/ssh/dir%d", i)); err != nil {
				return err
			}
		}
		for i := 0; i < nSrc; i++ {
			f, err := m.Create(ctx, fmt.Sprintf("/ssh/dir%d/src%d.c", i%8, i))
			if err != nil {
				return err
			}
			size := 2<<10 + rng.Int63n(40<<10)
			if err := m.Write(ctx, f, 0, payload.Synthetic(size)); err != nil {
				return err
			}
			if err := m.Close(ctx, f); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return out, fmt.Errorf("uncompress: %w", err)
	}
	out.Uncompress = d

	// Configure: many tiny probe files created, checked, and removed.
	d, err = cl.RunClient(0, func(ctx *rpc.Ctx, m *cluster.Mount, _ int) error {
		for i := 0; i < 200; i++ {
			path := fmt.Sprintf("/ssh/conftest%d", i)
			f, err := m.Create(ctx, path)
			if err != nil {
				return err
			}
			if err := m.Write(ctx, f, 0, payload.Synthetic(200)); err != nil {
				return err
			}
			if err := m.Close(ctx, f); err != nil {
				return err
			}
			if _, err := m.Stat(ctx, f); err != nil {
				return err
			}
			if err := m.Remove(ctx, path); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return out, fmt.Errorf("configure: %w", err)
	}
	out.Configure = d

	// Build: read each source (small sequential reads), write an object.
	d, err = cl.RunClient(0, func(ctx *rpc.Ctx, m *cluster.Mount, _ int) error {
		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < nSrc; i++ {
			src, err := m.Open(ctx, fmt.Sprintf("/ssh/dir%d/src%d.c", i%8, i))
			if err != nil {
				return err
			}
			size, err := m.Size(ctx, src)
			if err != nil {
				return err
			}
			for off := int64(0); off < size; off += 4 << 10 {
				n := int64(4 << 10)
				if off+n > size {
					n = size - off
				}
				if _, _, err := m.Read(ctx, src, off, n); err != nil {
					return err
				}
			}
			obj, err := m.Create(ctx, fmt.Sprintf("/ssh/dir%d/src%d.o", i%8, i))
			if err != nil {
				return err
			}
			if err := m.Write(ctx, obj, 0, payload.Synthetic(1<<10+rng.Int63n(20<<10))); err != nil {
				return err
			}
			if err := m.Close(ctx, obj); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return out, fmt.Errorf("build: %w", err)
	}
	out.Build = d
	return out, nil
}
