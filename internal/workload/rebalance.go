package workload

import (
	"fmt"
	"sync"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// RebalanceConfig parameterizes the elastic-membership experiment: clients
// stream synchronous block writes while a brand-new storage node joins
// mid-run and the cluster rebalances every existing file onto the widened
// stripe in the background.
type RebalanceConfig struct {
	Block    int64         // per-write block size (default 2 MB)
	DataSize int64         // per-client corpus written before the join (default 16 MB)
	JoinAt   time.Duration // when the new node joins, relative to run start
	Node     string        // name of the joining node (default "io6")
	Tail     time.Duration // steady-state window measured after migration ends
	Max      time.Duration // hard deadline in case the join never lands
}

// RebalanceResult is per-phase aggregate foreground throughput.  The phase
// boundaries are the actual migration window reported by the cluster, not
// the scheduled join time, so During measures foreground service while the
// background copier is genuinely running.
type RebalanceResult struct {
	Before float64 // MB/s before migration starts
	During float64 // MB/s while the migration is in flight
	After  float64 // MB/s after migration completes (the widened stripe)
}

// Rebalance runs the experiment.  It requires the simulated transport, both
// for membership (the reconciler drives the simulated fabric) and because
// the phase windows are virtual-time intervals — which also makes the result
// exactly reproducible for a given seed.
//
// A setup run first writes each client's migration corpus, so the join has
// real data to move.  Then the join is scheduled and every client streams
// Block-sized fsync'd foreground writes until the migration has been over
// for Tail; chunk completion times bucket the bytes into the three phases.
func Rebalance(cl *cluster.Cluster, cfg RebalanceConfig) (RebalanceResult, error) {
	if cl.Cfg.Transport == cluster.TransportTCP {
		return RebalanceResult{}, fmt.Errorf("workload: the rebalance experiment requires the sim transport")
	}
	if cfg.Block <= 0 {
		cfg.Block = 2 << 20
	}
	if cfg.DataSize <= 0 {
		cfg.DataSize = 16 << 20
	}
	if cfg.JoinAt <= 0 {
		cfg.JoinAt = 2 * time.Second
	}
	if cfg.Node == "" {
		cfg.Node = "io6"
	}
	if cfg.Tail <= 0 {
		cfg.Tail = 3 * time.Second
	}
	if cfg.Max <= 0 {
		cfg.Max = cfg.JoinAt + cfg.Tail + 120*time.Second
	}

	// Setup run: the corpus the reconciler will migrate.  This runs before
	// the join is scheduled, so it is placed on the original stripe.
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/rebalance.%d", i))
		if err != nil {
			return err
		}
		for off := int64(0); off < cfg.DataSize; off += cfg.Block {
			n := cfg.DataSize - off
			if n > cfg.Block {
				n = cfg.Block
			}
			if err := m.Write(ctx, f, off, payload.Synthetic(n)); err != nil {
				return err
			}
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		return RebalanceResult{}, fmt.Errorf("rebalance setup: %w", err)
	}

	if err := cl.AddStorageNode(cfg.Node, cfg.JoinAt); err != nil {
		return RebalanceResult{}, err
	}

	// Measured run: foreground writers stream into fresh files while the
	// reconciler joins the node and migrates the corpus underneath them.
	type sample struct {
		at    time.Duration // absolute virtual completion time
		bytes int64
	}
	var mu sync.Mutex
	var samples []sample
	start := cl.Now()
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/fg.%d", i))
		if err != nil {
			return err
		}
		var off int64
		for {
			at := time.Duration(ctx.Now()) - start
			if at >= cfg.Max {
				break
			}
			if _, end := cl.MigrationWindow(); end > start && at >= end-start+cfg.Tail {
				break
			}
			if err := m.Write(ctx, f, off, payload.Synthetic(cfg.Block)); err != nil {
				return err
			}
			if err := m.Fsync(ctx, f); err != nil {
				return err
			}
			mu.Lock()
			samples = append(samples, sample{at: time.Duration(ctx.Now()), bytes: cfg.Block})
			mu.Unlock()
			off += cfg.Block
		}
		return m.Close(ctx, f)
	})
	if err != nil {
		return RebalanceResult{}, fmt.Errorf("rebalance run: %w", err)
	}
	migStart, migEnd := cl.MigrationWindow()
	if migEnd <= start {
		return RebalanceResult{}, fmt.Errorf("rebalance: the migration never ran (deadline %v hit)", cfg.Max)
	}
	var window [3]int64
	for _, s := range samples {
		w := 0
		switch {
		case s.at >= migEnd:
			w = 2
		case s.at >= migStart:
			w = 1
		}
		window[w] += s.bytes
	}
	mbs := func(bytes int64, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(bytes) / 1e6 / d.Seconds()
	}
	return RebalanceResult{
		Before: mbs(window[0], migStart-start),
		During: mbs(window[1], migEnd-migStart),
		After:  mbs(window[2], start+elapsed-migEnd),
	}, nil
}
