package workload

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// IntegrityConfig parameterizes the integrity experiment: clients stream
// verified reads over a pre-written corpus while the cluster's fault plan
// rots store chunks mid-run and a scheduled background scrub pass cleans up
// after them.  RotAt/ScrubAt must match the cluster's faults.Plan and
// ScheduleScrub call — the bench layer builds all three from one schedule.
type IntegrityConfig struct {
	FileSize int64         // per-client corpus (default 4 MB)
	Block    int64         // per-read block (default 256 KB)
	RotAt    time.Duration // when the plan's bit rot lands
	ScrubAt  time.Duration // when the scheduled scrub pass starts
	Deadline time.Duration // total measured-run length
}

// IntegrityResult is per-window aggregate read throughput.
type IntegrityResult struct {
	Before float64 // MB/s in [0, RotAt): clean baseline
	During float64 // MB/s in [RotAt, ScrubAt): rot present, read-repair engaged
	After  float64 // MB/s in [ScrubAt, end): background scrub running
}

// integrityPattern is client i's deterministic corpus, regenerated on the
// verify side so a corrupt byte can never masquerade as the expected one.
func integrityPattern(i int, n int64) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(j*131 + i*29 + 7)
	}
	return b
}

// Integrity runs the experiment.  It requires the simulated transport: the
// windows are virtual-time intervals, which is also what makes the result
// exactly reproducible for a given (seed, plan).
//
// Every client writes its pattern file with faults disarmed, then loops
// sequential Block-sized reads over it — dropping caches at the top of each
// pass so every pass exercises the stores — and compares every byte against
// the regenerated pattern.  A single mismatched byte fails the run: silent
// corruption cannot hide in the throughput numbers.  Completion times
// bucket the verified bytes into the three windows.
func Integrity(cl *cluster.Cluster, cfg IntegrityConfig) (IntegrityResult, error) {
	if cl.Cfg.Transport == cluster.TransportTCP {
		return IntegrityResult{}, fmt.Errorf("workload: the integrity experiment requires the sim transport")
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 4 << 20
	}
	if cfg.Block <= 0 {
		cfg.Block = 256 << 10
	}
	if cfg.RotAt <= 0 {
		cfg.RotAt = 200 * time.Millisecond
	}
	if cfg.ScrubAt <= cfg.RotAt {
		cfg.ScrubAt = cfg.RotAt + 200*time.Millisecond
	}
	if cfg.Deadline <= cfg.ScrubAt {
		cfg.Deadline = cfg.ScrubAt + 200*time.Millisecond
	}

	// Populate outside the fault schedule: the measured run alone suffers it.
	cl.ArmFaults(false)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/integrity.%d", i))
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Real(integrityPattern(i, cfg.FileSize))); err != nil {
			return err
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		return IntegrityResult{}, fmt.Errorf("integrity setup: %w", err)
	}
	cl.ArmFaults(true)
	cl.ScheduleScrub(cfg.ScrubAt)

	var mu sync.Mutex
	var window [3]int64 // verified bytes per window
	start := cl.Now()
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		want := integrityPattern(i, cfg.FileSize)
		for time.Duration(ctx.Now())-start < cfg.Deadline {
			// Open cold each pass: page caches shared with an open file
			// survive DropCaches, and a warm pass would never touch the
			// stores — or the rot.
			m.DropCaches()
			f, err := m.Open(ctx, fmt.Sprintf("/integrity.%d", i))
			if err != nil {
				return err
			}
			for off := int64(0); off < cfg.FileSize; off += cfg.Block {
				n := cfg.Block
				if rest := cfg.FileSize - off; n > rest {
					n = rest
				}
				got, rn, err := m.Read(ctx, f, off, n)
				if err != nil {
					return fmt.Errorf("client %d read at %d: %w", i, off, err)
				}
				if rn != n {
					return fmt.Errorf("client %d read at %d: got %d bytes, want %d", i, off, rn, n)
				}
				if !bytes.Equal(got.Bytes, want[off:off+n]) {
					return fmt.Errorf("client %d: corrupt bytes delivered at offset %d", i, off)
				}
				at := time.Duration(ctx.Now()) - start
				w := 0
				switch {
				case at >= cfg.ScrubAt:
					w = 2
				case at >= cfg.RotAt:
					w = 1
				}
				mu.Lock()
				window[w] += n
				mu.Unlock()
			}
			if err := m.Close(ctx, f); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return IntegrityResult{}, fmt.Errorf("integrity run: %w", err)
	}
	afterDur := elapsed - cfg.ScrubAt
	if afterDur <= 0 {
		afterDur = cfg.Deadline - cfg.ScrubAt
	}
	mbs := func(bytes int64, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(bytes) / 1e6 / d.Seconds()
	}
	return IntegrityResult{
		Before: mbs(window[0], cfg.RotAt),
		During: mbs(window[1], cfg.ScrubAt-cfg.RotAt),
		After:  mbs(window[2], afterDur),
	}, nil
}
