package workload

import (
	"fmt"
	"math/rand"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
)

// OpenLoopConfig parameterizes the open-loop scaling experiment: a large
// population of logical clients issues block reads on a Poisson schedule,
// multiplexed over the cluster's real mounts.  Unlike the closed-loop
// workloads (IOR, Tail), arrivals do not wait for completions — when the
// cluster saturates, requests queue and latency grows without bound, which
// is exactly the regime the 64 → 10k client sweep is after.
type OpenLoopConfig struct {
	// LogicalClients is the simulated client population (default 64).  Each
	// logical client is an independent Poisson source; per mount the
	// superposition is generated as a single merged arrival stream, so ten
	// thousand clients cost ten thousand reads per second of window, not
	// ten thousand processes.
	LogicalClients int
	// RatePerClient is each logical client's arrival rate in reads/sec
	// (default 4).  Offered load = LogicalClients × RatePerClient × Block.
	RatePerClient float64
	Block         int64         // per-read block size (default 64 KB)
	FileSize      int64         // per-mount file size (default 8 MB)
	Window        time.Duration // arrival window in virtual time (default 2s)
	// MaxInFlight bounds concurrent requests per mount (default 64).  An
	// arrival that finds the window full queues — and that queueing time
	// counts toward its latency, since open-loop latency is measured from
	// the scheduled arrival, not from dispatch.
	MaxInFlight int
	// Seed drives the arrival schedule and read offsets (the simulation's
	// own randomness threads from cluster.Config.Seed, per the bench
	// determinism rule).
	Seed int64
}

// OpenLoopResult is one open-loop run's outcome.
type OpenLoopResult struct {
	LogicalClients int
	Reads          uint64
	Bytes          int64
	Elapsed        time.Duration // virtual time, first arrival to last completion
	// P50/P99/P999 are per-read latencies in seconds, measured from each
	// request's scheduled Poisson arrival to its completion — queueing
	// delay included.
	P50, P99, P999 float64
	// Occupancy is the mean I/O-engine window depth sampled at each issue
	// during the run (from ioengine_window_occupancy): ~1 when the cluster
	// is loafing, approaching MaxFlight at saturation.
	Occupancy float64
}

// ThroughputMBs returns aggregate completed MB/s (decimal MB).
func (r OpenLoopResult) ThroughputMBs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// openLoopBuckets extend the tail experiment's latency resolution with
// coarse seconds-scale buckets: past saturation an open-loop queue grows for
// the whole window, so latencies reach the window length rather than the
// RTO ceiling that bounds the closed-loop tail run.
func openLoopBuckets() []float64 {
	var b []float64
	for v := 500e-6; v < 0.15; v *= 1.3 {
		b = append(b, v)
	}
	return append(b, 0.15, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60)
}

// histTotals sums one histogram family's (sum, count) across label series.
func histTotals(reg *metrics.Registry, name string) (float64, uint64) {
	var sum float64
	var count uint64
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			sum += s.Sum
			count += s.Count
		}
	}
	return sum, count
}

// OpenLoop runs the experiment.  It requires the simulated transport:
// latencies are virtual-time intervals and arrival schedules are seeded, so
// a run is exactly reproducible.
//
// Setup (unmeasured) writes each mount a private file.  The measured phase
// then runs one dispatcher process per mount: it walks a seeded Poisson
// arrival schedule with SleepUntilTime, and at each arrival spawns a flow
// that acquires an in-flight slot, opens the file, reads one random aligned
// block, closes, and records completion − scheduled arrival as the sample's
// latency — each arrival acts as a distinct logical client, metadata round
// trips included.  The dispatcher drops the mount's cache every time the
// arrival count wraps the file's block count, modelling a working set far
// larger than client cache.  The phase ends when every spawned flow has
// completed.
func OpenLoop(cl *cluster.Cluster, cfg OpenLoopConfig) (OpenLoopResult, error) {
	if cl.Cfg.Transport == cluster.TransportTCP {
		return OpenLoopResult{}, fmt.Errorf("workload: the open-loop experiment requires the sim transport")
	}
	if cfg.LogicalClients <= 0 {
		cfg.LogicalClients = 64
	}
	if cfg.RatePerClient <= 0 {
		cfg.RatePerClient = 4
	}
	if cfg.Block <= 0 {
		cfg.Block = 64 << 10
	}
	if cfg.FileSize < cfg.Block {
		cfg.FileSize = 8 << 20
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	blocks := int(cfg.FileSize / cfg.Block)
	mounts := len(cl.Mounts())

	// Setup: a private file per mount, outside the measured window.
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/openloop.%d", i))
		if err != nil {
			return err
		}
		for b := 0; b < blocks; b++ {
			if err := m.Write(ctx, f, int64(b)*cfg.Block, payload.Synthetic(cfg.Block)); err != nil {
				return err
			}
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		return OpenLoopResult{}, fmt.Errorf("openloop setup: %w", err)
	}

	// Private registry for the latency distribution (never pollutes the
	// cluster's shared registry across sweep points); occupancy comes from
	// the shared registry as a before/after delta for the same reason.
	hist := metrics.NewRegistry().Histogram("workload_openloop_read_seconds",
		"Arrival-to-completion latency for the open-loop experiment.", openLoopBuckets())
	occSum0, occCnt0 := histTotals(cl.Metrics(), "ioengine_window_occupancy")

	res := OpenLoopResult{LogicalClients: cfg.LogicalClients}
	elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *cluster.Mount, i int) error {
		// Mount i carries share logical clients (the remainder spread over
		// the first LogicalClients % mounts); their superposed arrivals
		// form one Poisson stream of rate share × RatePerClient.
		share := cfg.LogicalClients / mounts
		if i < cfg.LogicalClients%mounts {
			share++
		}
		if share == 0 {
			return nil
		}
		rate := float64(share) * cfg.RatePerClient
		path := fmt.Sprintf("/openloop.%d", i)
		m.DropCaches()

		k := ctx.P.Kernel()
		flowName := fmt.Sprintf("%s/openloop", m.Node().Name)
		slots := sim.NewSemaphore(flowName, cfg.MaxInFlight)
		var wg sim.WaitGroup
		var flowErr error

		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		start := ctx.P.Now()
		end := start + sim.Time(cfg.Window)
		for at, arrivals := start, 0; ; arrivals++ {
			at += sim.Time(rng.ExpFloat64() / rate * 1e9)
			if at >= end {
				break
			}
			// Once the arrivals could have touched the whole file, drop the
			// client cache: the population models a working set far larger
			// than any one mount's cache, so reads must stay cold.  Flows
			// mid-read are unaffected — their open files pin the old cache
			// generation until they release it.
			if arrivals%blocks == 0 {
				m.DropCaches()
			}
			// Draw the offset in the dispatcher, not the flow: flow
			// wake-up order must not influence the RNG stream.
			off := int64(rng.Intn(blocks)) * cfg.Block
			arrival := at
			ctx.P.SleepUntilTime(arrival)
			wg.Add(1)
			k.Go(flowName, func(p *sim.Proc) {
				defer wg.Done()
				// Queueing for a slot is part of the open-loop latency, as
				// is the open/close each logical client pays around its read.
				slots.Acquire(p, 1)
				defer slots.Release(1)
				fctx := &rpc.Ctx{P: p}
				f, err := m.Open(fctx, path)
				if err != nil {
					if flowErr == nil {
						flowErr = err
					}
					return
				}
				pl, got, err := m.Read(fctx, f, off, cfg.Block)
				if err == nil {
					pl.Release()
					err = m.Close(fctx, f)
				} else {
					m.Close(fctx, f)
				}
				if err != nil {
					if flowErr == nil {
						flowErr = err
					}
					return
				}
				res.Reads++
				res.Bytes += got
				hist.ObserveDuration(time.Duration(p.Now() - arrival))
			})
		}
		wg.Wait(ctx.P)
		return flowErr
	})
	if err != nil {
		return OpenLoopResult{}, fmt.Errorf("openloop run: %w", err)
	}

	res.Elapsed = elapsed
	res.P50 = hist.Quantile(0.50)
	res.P99 = hist.Quantile(0.99)
	res.P999 = hist.Quantile(0.999)
	if occSum1, occCnt1 := histTotals(cl.Metrics(), "ioengine_window_occupancy"); occCnt1 > occCnt0 {
		res.Occupancy = (occSum1 - occSum0) / float64(occCnt1-occCnt0)
	}
	return res, nil
}
