package workload

import (
	"testing"

	"dpnfs/internal/cluster"
)

// Small scales keep these correctness tests fast; shape assertions live in
// the root bench/figure tests.

func TestIORWriteRunsOnAllArchitectures(t *testing.T) {
	for _, arch := range cluster.Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			cl := cluster.New(cluster.Config{Arch: arch, Clients: 2})
			res, err := IOR(cl, IORConfig{FileSize: 8 << 20, Block: 2 << 20, Separate: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != 16<<20 || res.Elapsed <= 0 {
				t.Fatalf("bad result: %+v", res)
			}
			if tp := res.ThroughputMBs(); tp <= 0 || tp > 1000 {
				t.Fatalf("implausible throughput %.1f MB/s", tp)
			}
		})
	}
}

func TestIORSingleFileMode(t *testing.T) {
	cl := cluster.New(cluster.Config{Arch: cluster.ArchDirectPNFS, Clients: 3})
	res, err := IOR(cl, IORConfig{FileSize: 4 << 20, Block: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// The shared file must hold every client's region.
	at, err := cl.PVFSMeta.Namespace().LookupPath("/ior.single")
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != 12<<20 {
		t.Fatalf("shared file size %d, want %d", at.Size, 12<<20)
	}
	if res.Bytes != 12<<20 {
		t.Fatalf("bytes %d", res.Bytes)
	}
}

func TestIORReadUsesWarmCache(t *testing.T) {
	cl := cluster.New(cluster.Config{Arch: cluster.ArchDirectPNFS, Clients: 2})
	res, err := IOR(cl, IORConfig{FileSize: 16 << 20, Block: 2 << 20, Separate: true, Read: true})
	if err != nil {
		t.Fatal(err)
	}
	// Reads from warm caches should be far faster than disk-bound writes:
	// ≥ 100 MB/s aggregate for 2 clients on gigabit.
	if tp := res.ThroughputMBs(); tp < 80 {
		t.Fatalf("warm read throughput %.1f MB/s; cache not effective", tp)
	}
	var misses uint64
	for _, d := range cl.Disks {
		_, _, _, m, _, _ := d.Stats()
		misses += m
	}
	if misses != 0 {
		t.Fatalf("%d disk misses during warm read phase", misses)
	}
}

func TestATLASCoversFileExactly(t *testing.T) {
	cl := cluster.New(cluster.Config{Arch: cluster.ArchDirectPNFS, Clients: 2})
	const total = 8 << 20
	res, err := ATLAS(cl, ATLASConfig{TotalBytes: total})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 2*total {
		t.Fatalf("bytes %d", res.Bytes)
	}
	for i := 0; i < 2; i++ {
		at, err := cl.PVFSMeta.Namespace().LookupPath("/atlas.0")
		if err != nil {
			t.Fatal(err)
		}
		if at.Size != total {
			t.Fatalf("client %d file size %d, want %d (segments must cover exactly)", i, at.Size, total)
		}
	}
}

func TestATLASSlowerOnPVFS2(t *testing.T) {
	tp := func(arch cluster.Arch) float64 {
		cl := cluster.New(cluster.Config{Arch: arch, Clients: 2})
		res, err := ATLAS(cl, ATLASConfig{TotalBytes: 16 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputMBs()
	}
	direct := tp(cluster.ArchDirectPNFS)
	pvfs := tp(cluster.ArchPVFS2)
	if direct < 2*pvfs {
		t.Fatalf("small-request mix should favor Direct-pNFS: direct=%.1f pvfs2=%.1f", direct, pvfs)
	}
}

func TestBTIO(t *testing.T) {
	for _, arch := range []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2} {
		cl := cluster.New(cluster.Config{Arch: arch, Clients: 3})
		res, err := BTIO(cl, BTIOConfig{CheckpointBytes: 12 << 20, Checkpoints: 4})
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no elapsed time", arch)
		}
	}
	// The checkpoint file must be complete.
	cl := cluster.New(cluster.Config{Arch: cluster.ArchDirectPNFS, Clients: 4})
	if _, err := BTIO(cl, BTIOConfig{CheckpointBytes: 8 << 20, Checkpoints: 2}); err != nil {
		t.Fatal(err)
	}
	at, err := cl.PVFSMeta.Namespace().LookupPath("/btio")
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != 8<<20 {
		t.Fatalf("checkpoint file %d bytes, want %d", at.Size, 8<<20)
	}
}

func TestOLTPTransactionAccounting(t *testing.T) {
	cl := cluster.New(cluster.Config{Arch: cluster.ArchDirectPNFS, Clients: 2})
	res, err := OLTP(cl, OLTPConfig{FileBytes: 16 << 20, Transactions: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 100 {
		t.Fatalf("transactions %d, want 100", res.Transactions)
	}
	if res.TPS() <= 0 {
		t.Fatal("no TPS")
	}
}

func TestOLTPFavorsDirect(t *testing.T) {
	tp := func(arch cluster.Arch) float64 {
		cl := cluster.New(cluster.Config{Arch: arch, Clients: 2})
		res, err := OLTP(cl, OLTPConfig{FileBytes: 16 << 20, Transactions: 100})
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputMBs()
	}
	direct := tp(cluster.ArchDirectPNFS)
	pvfs := tp(cluster.ArchPVFS2)
	if direct < 1.5*pvfs {
		t.Fatalf("sync 8K RMW should favor Direct-pNFS: direct=%.2f pvfs2=%.2f", direct, pvfs)
	}
}

func TestPostmark(t *testing.T) {
	for _, arch := range []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2} {
		cl := cluster.New(cluster.Config{
			Arch: arch, Clients: 2,
			StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
		})
		res, err := Postmark(cl, PostmarkConfig{Transactions: 40, Files: 20, Dirs: 4})
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if res.Transactions != 80 || res.TPS() <= 0 {
			t.Fatalf("%s: bad result %+v", arch, res)
		}
	}
}

func TestSSHBuildPhases(t *testing.T) {
	direct := cluster.New(cluster.Config{Arch: cluster.ArchDirectPNFS, Clients: 1})
	d, err := SSHBuild(direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	pv := cluster.New(cluster.Config{Arch: cluster.ArchPVFS2, Clients: 1})
	p, err := SSHBuild(pv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Uncompress <= 0 || d.Configure <= 0 || d.Build <= 0 {
		t.Fatalf("missing phases: %+v", d)
	}
	// §6.4.3: Direct-pNFS reduces compile time (small reads/writes) but the
	// create-dominated phases do not improve.
	if d.Build >= p.Build {
		t.Fatalf("compile phase should favor Direct-pNFS: direct=%v pvfs2=%v", d.Build, p.Build)
	}
}
