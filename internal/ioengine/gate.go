package ioengine

import (
	"sync"

	"dpnfs/internal/sim"
)

// gate is the engine's class-aware window: a counting limiter with two
// strict-priority FIFO queues (foreground before background), a background
// occupancy share, and a runtime-adjustable limit for the AIMD controller.
// It serves both execution modes — simulated processes park on a per-waiter
// sim.Chan (resumed in deterministic virtual-time order), real-time callers
// block on a buffered Go channel.
//
// Slots are handed over, not raced for: release and setLimit admit waiting
// requests directly (charging the slot to the waiter before signalling it),
// so a waking foreground request can never lose its slot to a later
// background arrival.
type gate struct {
	mu     sync.Mutex
	limit  int     // current effective window
	share  float64 // background occupancy share (<=0 or >=1: uncapped)
	held   int     // slots occupied, all classes
	bgHeld int     // slots occupied by Background
	q      [numClasses][]*gateWaiter
}

type gateWaiter struct {
	class Class
	simCh *sim.Chan     // sim mode: parked simulated process
	rtCh  chan struct{} // real-time mode: buffered(1), signalled once
}

func newGate(limit int, share float64) *gate {
	return &gate{limit: limit, share: share}
}

// bgAllowed is the background slot cap under the current limit.
func (g *gate) bgAllowed() int {
	if g.share <= 0 || g.share >= 1 {
		return g.limit
	}
	n := int(g.share*float64(g.limit) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// admitLocked reports whether a new arrival of class may take a slot right
// now: capacity free, nobody of a same-or-higher class queued ahead of it,
// and (for background) the share not exhausted.
func (g *gate) admitLocked(class Class) bool {
	if g.held >= g.limit {
		return false
	}
	if len(g.q[Foreground]) > 0 {
		return false
	}
	if class == Background {
		if len(g.q[Background]) > 0 || g.bgHeld >= g.bgAllowed() {
			return false
		}
	}
	return true
}

func (g *gate) takeLocked(class Class) {
	g.held++
	if class == Background {
		g.bgHeld++
	}
}

// wakeLocked admits as many waiters as the limit and share allow: the whole
// foreground queue first (strict priority), then background within its
// share.  Each admitted waiter is charged its slot before being signalled.
func (g *gate) wakeLocked() {
	for len(g.q[Foreground]) > 0 && g.held < g.limit {
		w := g.q[Foreground][0]
		g.q[Foreground] = g.q[Foreground][1:]
		g.takeLocked(Foreground)
		w.signal()
	}
	for len(g.q[Background]) > 0 && g.held < g.limit && g.bgHeld < g.bgAllowed() {
		w := g.q[Background][0]
		g.q[Background] = g.q[Background][1:]
		g.takeLocked(Background)
		w.signal()
	}
}

func (w *gateWaiter) signal() {
	if w.simCh != nil {
		w.simCh.Send(nil)
		return
	}
	w.rtCh <- struct{}{}
}

// acquireSim takes one slot for a simulated process, parking it in virtual
// time if none is admissible.  Reports whether the caller had to queue.
func (g *gate) acquireSim(p *sim.Proc, class Class, name string) bool {
	g.mu.Lock()
	if g.admitLocked(class) {
		g.takeLocked(class)
		g.mu.Unlock()
		return false
	}
	w := &gateWaiter{class: class, simCh: sim.NewChan(name + "/gate")}
	g.q[class] = append(g.q[class], w)
	g.mu.Unlock()
	w.simCh.Recv(p)
	return true
}

// acquireRT is acquireSim for real-time callers (wall-clock blocking).
func (g *gate) acquireRT(class Class) bool {
	g.mu.Lock()
	if g.admitLocked(class) {
		g.takeLocked(class)
		g.mu.Unlock()
		return false
	}
	w := &gateWaiter{class: class, rtCh: make(chan struct{}, 1)}
	g.q[class] = append(g.q[class], w)
	g.mu.Unlock()
	<-w.rtCh
	return true
}

// tryAcquire takes a slot only if one is admissible right now — the hedge
// admission rule: never queue, never displace or overtake waiting work.
func (g *gate) tryAcquire(class Class) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.q[Background]) > 0 || !g.admitLocked(class) {
		return false
	}
	g.takeLocked(class)
	return true
}

// release returns one slot and admits waiters.
func (g *gate) release(class Class) {
	g.mu.Lock()
	g.held--
	if class == Background {
		g.bgHeld--
	}
	g.wakeLocked()
	g.mu.Unlock()
}

// setLimit changes the effective window.  Growing admits waiters
// immediately; shrinking lets in-flight requests drain down naturally.
func (g *gate) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	g.limit = n
	g.wakeLocked()
	g.mu.Unlock()
}

// limitNow reads the current effective window.
func (g *gate) limitNow() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}
