package ioengine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpnfs/internal/metrics"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/stripe"
)

// reqsOn builds n one-byte-apart requests spread round-robin over devs
// devices, contiguous per device so they would coalesce if adjacent.
func seqExtents(n int, size int64) []stripe.Extent {
	out := make([]stripe.Extent, n)
	for i := range out {
		out[i] = stripe.Extent{Dev: 0, Off: int64(i) * size, DevOff: int64(i) * size, Len: size}
	}
	return out
}

// scattered builds n requests on distinct devices (nothing coalesces).
func scattered(n int, size int64) []stripe.Extent {
	out := make([]stripe.Extent, n)
	for i := range out {
		out[i] = stripe.Extent{Dev: i, Off: int64(i) * size, DevOff: 0, Len: size}
	}
	return out
}

// runSim executes body as a simulated process and drives the kernel.
func runSim(t *testing.T, body func(ctx *rpc.Ctx)) {
	t.Helper()
	k := sim.NewKernel(1)
	k.Go("test", func(p *sim.Proc) { body(&rpc.Ctx{P: p}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareCoalescesAndSplits(t *testing.T) {
	cases := []struct {
		name        string
		maxTransfer int64
		in          []stripe.Extent
		want        []stripe.Extent
	}{
		{
			name: "adjacent same device merges",
			in:   seqExtents(4, 1024),
			want: []stripe.Extent{{Dev: 0, Off: 0, DevOff: 0, Len: 4096}},
		},
		{
			name: "different devices stay separate",
			in:   scattered(3, 1024),
			want: scattered(3, 1024),
		},
		{
			name: "device-contiguous but logically scattered stays separate",
			in: []stripe.Extent{
				{Dev: 0, Off: 0, DevOff: 0, Len: 512},
				{Dev: 0, Off: 4096, DevOff: 512, Len: 512},
			},
			want: []stripe.Extent{
				{Dev: 0, Off: 0, DevOff: 0, Len: 512},
				{Dev: 0, Off: 4096, DevOff: 512, Len: 512},
			},
		},
		{
			name:        "split against MaxTransfer",
			maxTransfer: 1024,
			in:          []stripe.Extent{{Dev: 2, Off: 100, DevOff: 50, Len: 2560}},
			want: []stripe.Extent{
				{Dev: 2, Off: 100, DevOff: 50, Len: 1024},
				{Dev: 2, Off: 1124, DevOff: 1074, Len: 1024},
				{Dev: 2, Off: 2148, DevOff: 2098, Len: 512},
			},
		},
		{
			name:        "coalesce before split",
			maxTransfer: 3072,
			in:          seqExtents(4, 1024),
			want: []stripe.Extent{
				{Dev: 0, Off: 0, DevOff: 0, Len: 3072},
				{Dev: 0, Off: 3072, DevOff: 3072, Len: 1024},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			e := New(Config{MaxTransfer: c.maxTransfer, Metrics: reg})
			got := e.Prepare(c.in)
			if len(got) != len(c.want) {
				t.Fatalf("got %d requests, want %d: %+v", len(got), len(c.want), got)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("request %d: got %+v, want %+v", i, got[i], c.want[i])
				}
			}
		})
	}
}

// tracker counts executions and the in-flight high-water mark.
type tracker struct {
	mu       sync.Mutex
	executed int
	inflight int
	peak     int
}

func (tr *tracker) enter() {
	tr.mu.Lock()
	tr.executed++
	tr.inflight++
	if tr.inflight > tr.peak {
		tr.peak = tr.inflight
	}
	tr.mu.Unlock()
}

func (tr *tracker) exit() {
	tr.mu.Lock()
	tr.inflight--
	tr.mu.Unlock()
}

// TestRunTable sweeps window sizes × dispatch mode × coalescing ×
// per-request error injection, in both simulated and real-time execution.
func TestRunTable(t *testing.T) {
	type tc struct {
		name      string
		window    int
		wave      bool
		transfer  int64
		reqs      []stripe.Extent
		failAt    map[int]error // request index -> injected error
		wantErrAt int           // index whose error Run must return (-1: nil)
	}
	errA := errors.New("injected A")
	errB := errors.New("injected B")
	cases := []tc{
		{name: "window 1 serial", window: 1, reqs: scattered(6, 64), wantErrAt: -1},
		{name: "window 4", window: 4, reqs: scattered(10, 64), wantErrAt: -1},
		{name: "window wider than load", window: 32, reqs: scattered(5, 64), wantErrAt: -1},
		{name: "waves", window: 3, wave: true, reqs: scattered(10, 64), wantErrAt: -1},
		{name: "coalesced single request", window: 4, reqs: seqExtents(8, 64), wantErrAt: -1},
		{name: "split fan-out", window: 2, transfer: 64, reqs: []stripe.Extent{{Dev: 0, Len: 512}}, wantErrAt: -1},
		{
			name: "lowest-index error wins", window: 4,
			reqs:   scattered(12, 64),
			failAt: map[int]error{7: errB, 2: errA}, wantErrAt: 2,
		},
		{
			name: "wave error stops later waves", window: 2, wave: true,
			reqs:   scattered(8, 64),
			failAt: map[int]error{1: errA}, wantErrAt: 1,
		},
	}
	for _, mode := range []string{"sim", "realtime"} {
		for _, c := range cases {
			c := c
			t.Run(mode+"/"+c.name, func(t *testing.T) {
				e := New(Config{
					MaxFlight: c.window, Wave: c.wave,
					MaxTransfer: c.transfer, Metrics: metrics.NewRegistry(),
				})
				reqs := e.Prepare(c.reqs)
				var tr tracker
				fn := func(ctx *rpc.Ctx, r stripe.Extent) error {
					tr.enter()
					defer tr.exit()
					// Heterogeneous service times exercise the window.
					if ctx.P != nil {
						ctx.P.Sleep(time.Duration(1+r.Dev%3) * time.Millisecond)
					}
					for i, q := range reqs {
						if q == r {
							if err := c.failAt[i]; err != nil {
								return err
							}
						}
					}
					return nil
				}
				var got error
				if mode == "sim" {
					runSim(t, func(ctx *rpc.Ctx) { got = e.Run(ctx, reqs, fn) })
				} else {
					got = e.Run(&rpc.Ctx{}, reqs, fn)
				}
				if c.wantErrAt < 0 {
					if got != nil {
						t.Fatalf("Run: %v", got)
					}
					if tr.executed != len(reqs) {
						t.Errorf("executed %d of %d requests", tr.executed, len(reqs))
					}
				} else if want := c.failAt[c.wantErrAt]; got != want {
					t.Errorf("Run returned %v, want request %d's error %v", got, c.wantErrAt, want)
				}
				if tr.peak > c.window {
					t.Errorf("in-flight peak %d exceeded window %d", tr.peak, c.window)
				}
			})
		}
	}
}

// TestRunSharedWindowAcrossConcurrentRuns checks the window is an
// engine-wide bound: two concurrent Runs on one engine never exceed
// MaxFlight combined.
func TestRunSharedWindowAcrossConcurrentRuns(t *testing.T) {
	e := New(Config{MaxFlight: 3, Metrics: metrics.NewRegistry()})
	var tr tracker
	fn := func(ctx *rpc.Ctx, r stripe.Extent) error {
		tr.enter()
		defer tr.exit()
		ctx.P.Sleep(time.Millisecond)
		return nil
	}
	k := sim.NewKernel(1)
	var wg sim.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		k.Go(fmt.Sprintf("run%d", i), func(p *sim.Proc) {
			defer wg.Done()
			if err := e.Run(&rpc.Ctx{P: p}, scattered(8, 64), fn); err != nil {
				t.Error(err)
			}
		})
	}
	k.Go("wait", func(p *sim.Proc) { wg.Wait(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.executed != 16 {
		t.Errorf("executed %d of 16", tr.executed)
	}
	if tr.peak > 3 {
		t.Errorf("combined in-flight peak %d exceeded shared window 3", tr.peak)
	}
}

func TestWithRetryRidesOutRetryableFailures(t *testing.T) {
	calls, retries := 0, 0
	pol := WithRetry(rpc.RetryPolicy{Max: 5, Base: time.Millisecond, Cap: time.Millisecond}, func() { retries++ })
	fn := pol(func(ctx *rpc.Ctx, r stripe.Extent) error {
		calls++
		if calls < 3 {
			return &rpc.DownError{Node: "io1"}
		}
		return nil
	})
	runSim(t, func(ctx *rpc.Ctx) {
		if err := fn(ctx, stripe.Extent{}); err != nil {
			t.Errorf("retry policy should have recovered: %v", err)
		}
	})
	if calls != 3 || retries != 2 {
		t.Errorf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}

	// Non-retryable errors pass straight through.
	calls = 0
	perm := errors.New("permanent")
	fn = pol(func(ctx *rpc.Ctx, r stripe.Extent) error { calls++; return perm })
	runSim(t, func(ctx *rpc.Ctx) {
		if err := fn(ctx, stripe.Extent{}); err != perm {
			t.Errorf("got %v, want the permanent error", err)
		}
	})
	if calls != 1 {
		t.Errorf("non-retryable error was retried %d times", calls-1)
	}
}

func TestWithFallbackLadder(t *testing.T) {
	// Outermost policy is the last resort: Run(fn, last, first) means a
	// failure in fn consults first, then last.
	var order []string
	primary := func(ctx *rpc.Ctx, r stripe.Extent) error {
		order = append(order, "primary")
		return errors.New("primary failed")
	}
	first := WithFallback(func(ctx *rpc.Ctx, r stripe.Extent, err error) error {
		order = append(order, "recovery")
		return err // recovery declined
	})
	last := WithFallback(func(ctx *rpc.Ctx, r stripe.Extent, err error) error {
		order = append(order, "mds")
		return nil // handled
	})
	e := New(Config{MaxFlight: 2, Metrics: metrics.NewRegistry()})
	runSim(t, func(ctx *rpc.Ctx) {
		if err := e.Run(ctx, scattered(1, 64), primary, last, first); err != nil {
			t.Errorf("ladder should have recovered: %v", err)
		}
	})
	want := []string{"primary", "recovery", "mds"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("ladder order %v, want %v", order, want)
	}
}

// TestRunDeterministic pins virtual-time determinism: identical runs finish
// at identical virtual times with identical metric counts.
func TestRunDeterministic(t *testing.T) {
	elapsed := func() sim.Time {
		e := New(Config{MaxFlight: 4, MaxTransfer: 128, Metrics: metrics.NewRegistry()})
		k := sim.NewKernel(7)
		var end sim.Time
		k.Go("test", func(p *sim.Proc) {
			reqs := e.Prepare(seqExtents(64, 96))
			err := e.Run(&rpc.Ctx{P: p}, reqs, func(ctx *rpc.Ctx, r stripe.Extent) error {
				ctx.P.Sleep(time.Duration(r.Off%5+1) * time.Millisecond)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	a, b := elapsed(), elapsed()
	if a != b || a == 0 {
		t.Errorf("virtual end times differ: %v vs %v", a, b)
	}
}

// TestMetricsRecorded checks the engine's observability contract
// (docs/METRICS.md): request, coalesce, and split counters move, and the
// occupancy histogram sees every issue.
func TestMetricsRecorded(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(Config{MaxFlight: 2, MaxTransfer: 128, Issuer: "test", Metrics: reg})
	reqs := e.Prepare(seqExtents(4, 128)) // coalesce 4 -> 1, split 1 -> 4
	runSim(t, func(ctx *rpc.Ctx) {
		if err := e.Run(ctx, reqs, func(ctx *rpc.Ctx, r stripe.Extent) error {
			ctx.P.Sleep(time.Millisecond)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
	if got := e.requests.Value(); got != 4 {
		t.Errorf("requests_total = %d, want 4", got)
	}
	if got := e.coalesced.Value(); got != 3 {
		t.Errorf("coalesced_total = %d, want 3", got)
	}
	if got := e.splits.Value(); got != 3 {
		t.Errorf("split_total = %d, want 3", got)
	}
	if got := e.occupancy.Count(); got != 4 {
		t.Errorf("occupancy observations = %d, want 4", got)
	}
	if got := e.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge = %d after Run, want 0", got)
	}
}
