// Package ioengine is the unified striped-I/O scheduler shared by the
// NFSv4.1 and PVFS2 client data paths.  Both clients fan one application
// request out across storage nodes (the paper's central mechanism, §4);
// before this package each implemented that fan-out separately — the PVFS2
// client in lock-step waves that stalled on the slowest transfer of each
// batch, the NFS client unbounded with inline retry/recovery logic.  The
// engine gives them one implementation of the whole pipeline:
//
//   - Prepare turns mapper extents into the request stream: adjacent
//     same-device extents are coalesced (fewer, larger RPCs — in the spirit
//     of communication-optimal blocking) and the result is split against
//     MaxTransfer (PVFS2 "large transfer buffers", §5).
//   - Run issues the requests through a true sliding in-flight window of
//     MaxFlight slots: the moment a transfer completes, its slot re-issues
//     the next request.  Under the simulation kernel requests run as
//     simulated processes in virtual time; in real-time (TCP) mode they run
//     as plain goroutines — the rpc.Ctx passed in selects the mode, exactly
//     as elsewhere in the repository.  Config.Wave restores the historical
//     lock-step batching for comparison (the bench window-sweep figure).
//   - Policies wrap the per-request operation with failure handling: bounded
//     retry/backoff (PVFS2 riding out a crashed daemon), or fallback ladders
//     (the NFS client's layout-recovery retry and MDS-proxied last resort).
//
// Errors propagate deterministically: whatever the completion interleaving,
// Run returns the error of the lowest-indexed failed request, and no new
// requests are issued once a failure is recorded.
//
// The engine records its behaviour in the shared metrics registry
// (docs/METRICS.md): window occupancy, slot waits, and how many requests
// coalescing and splitting added or removed.
package ioengine

import (
	"sync"
	"time"

	"dpnfs/internal/metrics"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/stripe"
)

// DoFunc executes one storage request.  The extent's Dev/Off/DevOff/Len
// carry the device routing; issuers close over whatever else they need
// (payload slices, file handles, layouts).
type DoFunc func(ctx *rpc.Ctx, r stripe.Extent) error

// Policy decorates a DoFunc with per-request failure handling.  Policies
// passed to Run compose outermost-first: Run(ctx, reqs, fn, p1, p2) executes
// p1(p2(fn)).
type Policy func(next DoFunc) DoFunc

// WithRetry retries rpc.Retryable failures under pol (zero-valued fields
// take rpc defaults), sleeping virtual time under the simulation kernel and
// wall clock otherwise.  onRetry, when non-nil, runs before each retry —
// issuers hook their retry counters here.  The loop itself is
// rpc.RetryPolicy.Do, shared with retry-wrapped conns.
func WithRetry(pol rpc.RetryPolicy, onRetry func()) Policy {
	return func(next DoFunc) DoFunc {
		return func(ctx *rpc.Ctx, r stripe.Extent) error {
			return pol.Do(ctx, onRetry, func() error { return next(ctx, r) })
		}
	}
}

// WithFallback runs fb when the wrapped operation fails, passing the
// original error.  fb returns nil if it recovered the request, the original
// error if it declined, or its own failure.  The NFS client stacks two of
// these: layout recovery (evict + LAYOUTGET + retry) inside, MDS-proxied
// I/O outside — the paper's guaranteed-correct fallback path (§4).
func WithFallback(fb func(ctx *rpc.Ctx, r stripe.Extent, err error) error) Policy {
	return func(next DoFunc) DoFunc {
		return func(ctx *rpc.Ctx, r stripe.Extent) error {
			err := next(ctx, r)
			if err == nil {
				return nil
			}
			return fb(ctx, r, err)
		}
	}
}

// DefaultMaxFlight is the window size when Config leaves it zero — the
// PVFS2 client's "limited request parallelization" depth (paper §5).
const DefaultMaxFlight = 8

// Config describes one engine instance (one per protocol client).
type Config struct {
	// Name prefixes simulated process and semaphore names.
	Name string
	// Issuer labels the engine's metrics ("nfs", "pvfs").
	Issuer string
	// MaxFlight bounds concurrently outstanding requests across every Run
	// on this engine (0 = DefaultMaxFlight).
	MaxFlight int
	// MaxTransfer caps a single request's length; Prepare splits larger
	// extents (0 = no splitting).
	MaxTransfer int64
	// Wave issues requests in lock-step batches of MaxFlight instead of the
	// sliding window: each batch waits for its slowest transfer before the
	// next batch starts.  This reproduces the pre-engine PVFS2 dispatch for
	// the bench window-sweep comparison; leave false in production paths.
	Wave bool
	// Metrics is the shared observability registry; nil discards.
	Metrics *metrics.Registry
}

// Engine schedules striped-I/O requests.  One engine per protocol client:
// the window is a client-wide bound, shared by every concurrent Run (sync
// reads, readahead fills, and write-back flushes all draw from the same
// slots, like one host's RPC slot table).
type Engine struct {
	cfg Config

	sem *sim.Semaphore // window slots under the simulation kernel
	rt  chan struct{}  // window slots in real-time (TCP) mode

	requests  *metrics.Counter
	coalesced *metrics.Counter
	splits    *metrics.Counter
	inflight  *metrics.Gauge
	occupancy *metrics.Histogram
	slotWait  *metrics.Histogram
}

// occupancyBuckets cover window depths up to well past any configured
// MaxFlight.
var occupancyBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// New returns an engine with defaults applied and instruments resolved.
func New(cfg Config) *Engine {
	if cfg.MaxFlight <= 0 {
		cfg.MaxFlight = DefaultMaxFlight
	}
	if cfg.Name == "" {
		cfg.Name = "ioengine"
	}
	if cfg.Issuer == "" {
		cfg.Issuer = cfg.Name
	}
	reg := cfg.Metrics
	e := &Engine{
		cfg: cfg,
		sem: sim.NewSemaphore(cfg.Name+"/window", cfg.MaxFlight),
		rt:  make(chan struct{}, cfg.MaxFlight),
		requests: reg.CounterVec("ioengine_requests_total",
			"Requests issued by the striped-I/O engine (after coalescing and splitting).",
			"issuer").With(cfg.Issuer),
		coalesced: reg.CounterVec("ioengine_coalesced_total",
			"Adjacent same-device requests merged away by the engine.",
			"issuer").With(cfg.Issuer),
		splits: reg.CounterVec("ioengine_split_total",
			"Extra requests created by MaxTransfer splitting.",
			"issuer").With(cfg.Issuer),
		inflight: reg.GaugeVec("ioengine_inflight",
			"Requests currently occupying window slots.",
			"issuer").With(cfg.Issuer),
		occupancy: reg.HistogramVec("ioengine_window_occupancy",
			"In-flight depth observed as each request is issued.",
			occupancyBuckets, "issuer").With(cfg.Issuer),
		slotWait: reg.HistogramVec("ioengine_slot_wait_seconds",
			"Time a ready request waited for a free window slot.",
			metrics.DurationBuckets, "issuer").With(cfg.Issuer),
	}
	return e
}

// MaxFlight reports the engine's window size after defaults.
func (e *Engine) MaxFlight() int { return e.cfg.MaxFlight }

// Prepare turns mapper extents into the engine's request stream: adjacent
// extents on the same device that are contiguous in both logical and device
// space are merged into one request, then every request is split against
// MaxTransfer.  Order is preserved, so a given extent list always produces
// the same requests in the same sequence.
func (e *Engine) Prepare(extents []stripe.Extent) []stripe.Extent {
	merged := e.coalesceExtents(extents)
	if e.cfg.MaxTransfer <= 0 {
		return merged
	}
	out := make([]stripe.Extent, 0, len(merged))
	for _, x := range merged {
		for off := int64(0); off < x.Len; off += e.cfg.MaxTransfer {
			n := e.cfg.MaxTransfer
			if off+n > x.Len {
				n = x.Len - off
			}
			out = append(out, stripe.Extent{Dev: x.Dev, Off: x.Off + off, DevOff: x.DevOff + off, Len: n})
		}
	}
	if extra := len(out) - len(merged); extra > 0 {
		e.splits.Add(uint64(extra))
	}
	return out
}

// coalesceExtents merges runs that are contiguous on one device.  Merging
// requires logical contiguity too: a request's payload is addressed by its
// logical offset, so device-contiguous but logically scattered ranges stay
// separate.
func (e *Engine) coalesceExtents(in []stripe.Extent) []stripe.Extent {
	if len(in) < 2 {
		return in
	}
	out := make([]stripe.Extent, 0, len(in))
	out = append(out, in[0])
	for _, x := range in[1:] {
		last := &out[len(out)-1]
		if x.Dev == last.Dev && x.Off == last.Off+last.Len && x.DevOff == last.DevOff+last.Len {
			last.Len += x.Len
			e.coalesced.Inc()
			continue
		}
		out = append(out, x)
	}
	return out
}

// firstError records the lowest-indexed failure across concurrent requests.
type firstError struct {
	mu  sync.Mutex
	idx int
	err error
}

func (f *firstError) record(i int, err error) {
	f.mu.Lock()
	if f.err == nil || i < f.idx {
		f.idx, f.err = i, err
	}
	f.mu.Unlock()
}

func (f *firstError) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Run executes every request with at most MaxFlight in flight, applying the
// policies (outermost first) around fn.  It blocks the caller until all
// issued requests complete and returns the lowest-indexed request's error,
// or nil.  Once any request fails, no further requests are issued.
func (e *Engine) Run(ctx *rpc.Ctx, reqs []stripe.Extent, fn DoFunc, policies ...Policy) error {
	if len(reqs) == 0 {
		return nil
	}
	for i := len(policies) - 1; i >= 0; i-- {
		fn = policies[i](fn)
	}
	e.requests.Add(uint64(len(reqs)))
	if e.cfg.Wave {
		return e.runWaves(ctx, reqs, fn)
	}
	return e.runWindow(ctx, reqs, fn)
}

// acquire takes one window slot, recording slot-wait and occupancy.
func (e *Engine) acquire(ctx *rpc.Ctx) {
	if ctx.P != nil {
		start := ctx.Now()
		e.sem.Acquire(ctx.P, 1)
		e.slotWait.ObserveDuration(time.Duration(ctx.Now() - start))
	} else {
		start := time.Now()
		e.rt <- struct{}{}
		e.slotWait.ObserveDuration(time.Since(start))
	}
	e.inflight.Inc()
	e.occupancy.Observe(float64(e.inflight.Value()))
}

// release returns one window slot.
func (e *Engine) release(ctx *rpc.Ctx) {
	e.inflight.Dec()
	if ctx.P != nil {
		e.sem.Release(1)
	} else {
		<-e.rt
	}
}

// group runs request workers on whichever runtime the Ctx selects:
// simulated processes under the kernel, goroutines on the wall clock.
type group struct {
	ctx *rpc.Ctx
	wg  sync.WaitGroup
	swg sim.WaitGroup
}

func (g *group) spawn(name string, work func(c *rpc.Ctx)) {
	if g.ctx.P == nil {
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			work(&rpc.Ctx{})
		}()
		return
	}
	g.swg.Add(1)
	g.ctx.P.Kernel().Go(name, func(p *sim.Proc) {
		defer g.swg.Done()
		work(&rpc.Ctx{P: p})
	})
}

func (g *group) wait() {
	if g.ctx.P == nil {
		g.wg.Wait()
		return
	}
	g.swg.Wait(g.ctx.P)
}

// issue blocks on a free window slot, then hands request i to its own
// worker, which releases the slot and records any failure on completion.
func (e *Engine) issue(g *group, i int, r stripe.Extent, fn DoFunc, ferr *firstError) {
	e.acquire(g.ctx)
	g.spawn(e.cfg.Name+"/io", func(c *rpc.Ctx) {
		defer e.release(c)
		if err := fn(c, r); err != nil {
			ferr.record(i, err)
		}
	})
}

// runWindow is the sliding window: the issue loop blocks on a free slot,
// then hands the request to its own process/goroutine, so a completing
// transfer immediately admits the next one.
func (e *Engine) runWindow(ctx *rpc.Ctx, reqs []stripe.Extent, fn DoFunc) error {
	if len(reqs) == 1 {
		// Degenerate fan-out (one extent per gathered chunk is the common
		// NFS case): run on the caller, still under the window bound.
		e.acquire(ctx)
		defer e.release(ctx)
		return fn(ctx, reqs[0])
	}
	var ferr firstError
	g := &group{ctx: ctx}
	for i, r := range reqs {
		if ferr.get() != nil {
			break
		}
		e.issue(g, i, r, fn, &ferr)
	}
	g.wait()
	return ferr.get()
}

// runWaves is the historical lock-step dispatch: batches of MaxFlight, each
// waiting for its slowest member.  Kept for the bench comparison and for
// reproducing pre-engine schedules.
func (e *Engine) runWaves(ctx *rpc.Ctx, reqs []stripe.Extent, fn DoFunc) error {
	var ferr firstError
	for start := 0; start < len(reqs); start += e.cfg.MaxFlight {
		end := start + e.cfg.MaxFlight
		if end > len(reqs) {
			end = len(reqs)
		}
		batch := reqs[start:end]
		if len(batch) == 1 {
			e.acquire(ctx)
			err := fn(ctx, batch[0])
			e.release(ctx)
			if err != nil {
				ferr.record(start, err)
			}
		} else {
			g := &group{ctx: ctx}
			for j, r := range batch {
				e.issue(g, start+j, r, fn, &ferr)
			}
			g.wait()
		}
		if ferr.get() != nil {
			break
		}
	}
	return ferr.get()
}
