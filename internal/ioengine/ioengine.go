// Package ioengine is the unified striped-I/O scheduler shared by the
// NFSv4.1 and PVFS2 client data paths.  Both clients fan one application
// request out across storage nodes (the paper's central mechanism, §4);
// before this package each implemented that fan-out separately — the PVFS2
// client in lock-step waves that stalled on the slowest transfer of each
// batch, the NFS client unbounded with inline retry/recovery logic.  The
// engine gives them one implementation of the whole pipeline:
//
//   - Prepare turns mapper extents into the request stream: adjacent
//     same-device extents are coalesced (fewer, larger RPCs — in the spirit
//     of communication-optimal blocking) and the result is split against
//     MaxTransfer (PVFS2 "large transfer buffers", §5).
//   - Run issues the requests through a true sliding in-flight window of
//     MaxFlight slots: the moment a transfer completes, its slot re-issues
//     the next request.  Under the simulation kernel requests run as
//     simulated processes in virtual time; in real-time (TCP) mode they run
//     as plain goroutines — the rpc.Ctx passed in selects the mode, exactly
//     as elsewhere in the repository.  Config.Wave restores the historical
//     lock-step batching for comparison (the bench window-sweep figure).
//   - Policies wrap the per-request operation with failure handling: bounded
//     retry/backoff (PVFS2 riding out a crashed daemon), or fallback ladders
//     (the NFS client's layout-recovery retry and MDS-proxied last resort).
//
// # Tail-latency scheduling
//
// Beyond the basic window the engine implements four scheduling features
// (docs/ARCHITECTURE.md "Tail-latency scheduling"), all off by default and
// enabled per Config/RunOpts:
//
//   - QoS classes: every Run carries a Class (Foreground or Background).
//     Window slots dispatch strict-priority — a waiting foreground request
//     is always admitted before any waiting background one — and
//     Config.BackgroundShare caps the fraction of the window background
//     work may hold, so write-back and readahead can never crowd out
//     synchronous reads.
//   - Hedged requests: when a request has been in flight longer than an
//     adaptive straggler threshold (HedgeFactor × a latency EWMA, floored
//     at HedgeAfter), a duplicate is launched — but only on a spare slot
//     (the window bound holds with hedges outstanding).  Whichever copy
//     completes first wins and is recorded exactly once; the loser's
//     result is suppressed at completion.  Under the simulation kernel the
//     straggler timer is a virtual-time sleep, so hedged runs stay
//     deterministic by seed; only real-time (TCP) mode arms wall-clock
//     timers (counted by ioengine_wallclock_timers_total).
//   - Replica steering: SteerReplicas rewrites read extents produced by a
//     stripe.Replicated mapper onto each extent's least-loaded replica
//     device, using the engine's live per-device in-flight counts, with a
//     deterministic tie-break.  stripe.Replicated.Alternates gives issuers
//     the replica→replica failover ladder to try before their MDS-proxy
//     rung.
//   - Adaptive window: with Config.Adaptive the effective window floats
//     between MinFlight and MaxFlight by AIMD — additive increase while
//     requests queue for slots, multiplicative decrease when the fast
//     latency EWMA runs well above the slow one (congestion).  The current
//     window is exported as the ioengine_maxflight gauge.
//
// Errors propagate deterministically: whatever the completion interleaving,
// Run returns the error of the lowest-indexed failed request, and no new
// requests are issued once a failure is recorded.
//
// The engine records its behaviour in the shared metrics registry
// (docs/METRICS.md): window occupancy, slot waits (total and per class),
// hedge launches/wins/cancellations, the adaptive window, and how many
// requests coalescing and splitting added or removed.
package ioengine

import (
	"sync"
	"time"

	"dpnfs/internal/metrics"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/stripe"
)

// DoFunc executes one storage request.  The extent's Dev/Off/DevOff/Len
// carry the device routing; issuers close over whatever else they need
// (payload slices, file handles, layouts).
type DoFunc func(ctx *rpc.Ctx, r stripe.Extent) error

// Policy decorates a DoFunc with per-request failure handling.  Policies
// passed to Run compose outermost-first: Run(ctx, reqs, fn, p1, p2) executes
// p1(p2(fn)).
type Policy func(next DoFunc) DoFunc

// WithRetry retries rpc.Retryable failures under pol (zero-valued fields
// take rpc defaults), sleeping virtual time under the simulation kernel and
// wall clock otherwise.  onRetry, when non-nil, runs before each retry —
// issuers hook their retry counters here.  The loop itself is
// rpc.RetryPolicy.Do, shared with retry-wrapped conns.
func WithRetry(pol rpc.RetryPolicy, onRetry func()) Policy {
	return func(next DoFunc) DoFunc {
		return func(ctx *rpc.Ctx, r stripe.Extent) error {
			return pol.Do(ctx, onRetry, func() error { return next(ctx, r) })
		}
	}
}

// WithFallback runs fb when the wrapped operation fails, passing the
// original error.  fb returns nil if it recovered the request, the original
// error if it declined, or its own failure.  The NFS client stacks two of
// these: layout recovery (evict + LAYOUTGET + retry) inside, MDS-proxied
// I/O outside — the paper's guaranteed-correct fallback path (§4).
func WithFallback(fb func(ctx *rpc.Ctx, r stripe.Extent, err error) error) Policy {
	return func(next DoFunc) DoFunc {
		return func(ctx *rpc.Ctx, r stripe.Extent) error {
			err := next(ctx, r)
			if err == nil {
				return nil
			}
			return fb(ctx, r, err)
		}
	}
}

// Class is a request's QoS priority class.
type Class int

// The two classes.  Foreground is synchronous work an application thread is
// blocked on (reads, commits); Background is deferrable work issued on the
// application's behalf (write-back flushes, readahead fills).
const (
	Foreground Class = iota
	Background
	numClasses
)

// String renders the metrics label value.
func (c Class) String() string {
	if c == Background {
		return "background"
	}
	return "foreground"
}

// RunOpts tunes one Run call.  The zero value is a foreground, unhedged run
// — exactly the pre-QoS behaviour.
type RunOpts struct {
	// Class is the run's priority class for slot dispatch.
	Class Class
	// Hedge opts this run's requests into hedged duplicates (effective only
	// when the engine's Config.Hedge is also set).  Only idempotent
	// operations should opt in; in this repository that is reads.
	Hedge bool
}

// DefaultMaxFlight is the window size when Config leaves it zero — the
// PVFS2 client's "limited request parallelization" depth (paper §5).
const DefaultMaxFlight = 8

// Defaults for the tail-latency knobs.
const (
	// DefaultHedgeAfter floors the straggler threshold: a request is never
	// hedged before being in flight this long.
	DefaultHedgeAfter = 10 * time.Millisecond
	// DefaultHedgeFactor multiplies the fast latency EWMA to form the
	// adaptive straggler threshold.
	DefaultHedgeFactor = 4.0
	// DefaultMinFlight floors the AIMD-adaptive window.
	DefaultMinFlight = 2
	// aimdEvery is how many completions pass between AIMD adjustments.
	aimdEvery = 16
)

// Config describes one engine instance (one per protocol client).
type Config struct {
	// Name prefixes simulated process and semaphore names.
	Name string
	// Issuer labels the engine's metrics ("nfs", "pvfs").
	Issuer string
	// MaxFlight bounds concurrently outstanding requests across every Run
	// on this engine (0 = DefaultMaxFlight).  With Adaptive set it is the
	// ceiling of the AIMD window.
	MaxFlight int
	// MaxTransfer caps a single request's length; Prepare splits larger
	// extents (0 = no splitting).
	MaxTransfer int64
	// Wave issues requests in lock-step batches of MaxFlight instead of the
	// sliding window: each batch waits for its slowest transfer before the
	// next batch starts.  This reproduces the pre-engine PVFS2 dispatch for
	// the bench window-sweep comparison; leave false in production paths.
	Wave bool
	// BackgroundShare caps the fraction of the window that Background-class
	// requests may hold at once (at least one slot).  0 or >= 1 leaves
	// background uncapped; foreground waiters still dispatch first.
	BackgroundShare float64
	// Hedge enables hedged duplicate requests for runs that opt in via
	// RunOpts.Hedge.
	Hedge bool
	// HedgeAfter floors the straggler threshold (0 = DefaultHedgeAfter).
	HedgeAfter time.Duration
	// HedgeFactor multiplies the latency EWMA to form the straggler
	// threshold (0 = DefaultHedgeFactor).
	HedgeFactor float64
	// Adaptive lets the effective window float between MinFlight and
	// MaxFlight by AIMD on the engine's own latency/slot-wait signals.
	Adaptive bool
	// MinFlight floors the adaptive window (0 = DefaultMinFlight).
	MinFlight int
	// Metrics is the shared observability registry; nil discards.
	Metrics *metrics.Registry
}

// Engine schedules striped-I/O requests.  One engine per protocol client:
// the window is a client-wide bound, shared by every concurrent Run (sync
// reads, readahead fills, and write-back flushes all draw from the same
// slots, like one host's RPC slot table).
type Engine struct {
	cfg Config

	gate *gate // the class-aware window (both execution modes)

	// schedMu guards the latency EWMAs and AIMD counters.  Under the
	// simulation kernel completions arrive in deterministic virtual-time
	// order, so the adaptive state is reproducible by seed.
	schedMu     sync.Mutex
	latFast     float64 // fast EWMA of request latency, seconds (α=1/8)
	latSlow     float64 // slow EWMA, the congestion baseline (α=1/64)
	completions int     // since the last AIMD adjustment
	waited      int     // acquisitions that queued, since the last adjustment

	// devMu guards the per-device in-flight counts behind SteerReplicas.
	devMu   sync.Mutex
	devLoad map[int]int

	requests  *metrics.Counter
	coalesced *metrics.Counter
	splits    *metrics.Counter
	inflight  *metrics.Gauge
	occupancy *metrics.Histogram
	slotWait  *metrics.Histogram

	classReqs     [numClasses]*metrics.Counter
	classInflight [numClasses]*metrics.Gauge
	classWait     [numClasses]*metrics.Histogram
	hedgeLaunched *metrics.Counter
	hedgeWon      *metrics.Counter
	hedgeCanceled *metrics.Counter
	maxflightG    *metrics.Gauge
	wallTimers    *metrics.Counter
}

// occupancyBuckets cover window depths up to well past any configured
// MaxFlight.
var occupancyBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// New returns an engine with defaults applied and instruments resolved.
func New(cfg Config) *Engine {
	if cfg.MaxFlight <= 0 {
		cfg.MaxFlight = DefaultMaxFlight
	}
	if cfg.Name == "" {
		cfg.Name = "ioengine"
	}
	if cfg.Issuer == "" {
		cfg.Issuer = cfg.Name
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	if cfg.HedgeFactor <= 0 {
		cfg.HedgeFactor = DefaultHedgeFactor
	}
	if cfg.MinFlight <= 0 {
		cfg.MinFlight = DefaultMinFlight
	}
	if cfg.MinFlight > cfg.MaxFlight {
		cfg.MinFlight = cfg.MaxFlight
	}
	reg := cfg.Metrics
	e := &Engine{
		cfg:     cfg,
		gate:    newGate(cfg.MaxFlight, cfg.BackgroundShare),
		devLoad: make(map[int]int),
		requests: reg.CounterVec("ioengine_requests_total",
			"Requests issued by the striped-I/O engine (after coalescing and splitting).",
			"issuer").With(cfg.Issuer),
		coalesced: reg.CounterVec("ioengine_coalesced_total",
			"Adjacent same-device requests merged away by the engine.",
			"issuer").With(cfg.Issuer),
		splits: reg.CounterVec("ioengine_split_total",
			"Extra requests created by MaxTransfer splitting.",
			"issuer").With(cfg.Issuer),
		inflight: reg.GaugeVec("ioengine_inflight",
			"Requests currently occupying window slots.",
			"issuer").With(cfg.Issuer),
		occupancy: reg.HistogramVec("ioengine_window_occupancy",
			"In-flight depth observed as each request is issued.",
			occupancyBuckets, "issuer").With(cfg.Issuer),
		slotWait: reg.HistogramVec("ioengine_slot_wait_seconds",
			"Time a ready request waited for a free window slot.",
			metrics.DurationBuckets, "issuer").With(cfg.Issuer),
		hedgeLaunched: reg.CounterVec("ioengine_hedges_launched_total",
			"Hedged duplicate requests launched on spare slots for stragglers.",
			"issuer").With(cfg.Issuer),
		hedgeWon: reg.CounterVec("ioengine_hedges_won_total",
			"Hedges that completed before their primary (the duplicate's result won).",
			"issuer").With(cfg.Issuer),
		hedgeCanceled: reg.CounterVec("ioengine_hedges_cancelled_total",
			"Hedges whose primary completed first (the duplicate's result was suppressed).",
			"issuer").With(cfg.Issuer),
		maxflightG: reg.GaugeVec("ioengine_maxflight",
			"Current effective window size (AIMD-adaptive when Config.Adaptive).",
			"issuer").With(cfg.Issuer),
		wallTimers: reg.CounterVec("ioengine_wallclock_timers_total",
			"Wall-clock straggler timers armed (real-time mode only; zero on the fabric).",
			"issuer").With(cfg.Issuer),
	}
	for c := Class(0); c < numClasses; c++ {
		e.classReqs[c] = reg.CounterVec("ioengine_class_requests_total",
			"Requests issued per QoS priority class.",
			"issuer", "class").With(cfg.Issuer, c.String())
		e.classInflight[c] = reg.GaugeVec("ioengine_class_inflight",
			"Requests currently occupying window slots, per QoS class.",
			"issuer", "class").With(cfg.Issuer, c.String())
		e.classWait[c] = reg.HistogramVec("ioengine_class_slot_wait_seconds",
			"Slot-wait time per QoS class.",
			metrics.DurationBuckets, "issuer", "class").With(cfg.Issuer, c.String())
	}
	e.maxflightG.Set(int64(cfg.MaxFlight))
	return e
}

// MaxFlight reports the engine's window ceiling after defaults.
func (e *Engine) MaxFlight() int { return e.cfg.MaxFlight }

// Window reports the current effective window size (equals MaxFlight unless
// Config.Adaptive shrank it).
func (e *Engine) Window() int { return e.gate.limitNow() }

// Prepare turns mapper extents into the engine's request stream: adjacent
// extents on the same device that are contiguous in both logical and device
// space are merged into one request, then every request is split against
// MaxTransfer.  Order is preserved, so a given extent list always produces
// the same requests in the same sequence.
func (e *Engine) Prepare(extents []stripe.Extent) []stripe.Extent {
	merged := e.coalesceExtents(extents)
	if e.cfg.MaxTransfer <= 0 {
		return merged
	}
	out := make([]stripe.Extent, 0, len(merged))
	for _, x := range merged {
		for off := int64(0); off < x.Len; off += e.cfg.MaxTransfer {
			n := e.cfg.MaxTransfer
			if off+n > x.Len {
				n = x.Len - off
			}
			out = append(out, stripe.Extent{Dev: x.Dev, Off: x.Off + off, DevOff: x.DevOff + off, Len: n})
		}
	}
	if extra := len(out) - len(merged); extra > 0 {
		e.splits.Add(uint64(extra))
	}
	return out
}

// coalesceExtents merges runs that are contiguous on one device.  Merging
// requires logical contiguity too: a request's payload is addressed by its
// logical offset, so device-contiguous but logically scattered ranges stay
// separate.
func (e *Engine) coalesceExtents(in []stripe.Extent) []stripe.Extent {
	if len(in) < 2 {
		return in
	}
	out := make([]stripe.Extent, 0, len(in))
	out = append(out, in[0])
	for _, x := range in[1:] {
		last := &out[len(out)-1]
		if x.Dev == last.Dev && x.Off == last.Off+last.Len && x.DevOff == last.DevOff+last.Len {
			last.Len += x.Len
			e.coalesced.Inc()
			continue
		}
		out = append(out, x)
	}
	return out
}

// SteerReplicas rewrites read extents produced by rm.ReadMap onto each
// extent's least-loaded replica device, judged by the engine's live
// per-device in-flight counts.  Ties keep the extent where ReadMap's seed
// placed it (then the lowest replica index), so steering is deterministic:
// with no load imbalance it is the identity.
func (e *Engine) SteerReplicas(rm *stripe.Replicated, exts []stripe.Extent) []stripe.Extent {
	n := rm.Inner.NumDevices()
	if rm.Copies < 2 || n <= 0 {
		return exts
	}
	out := make([]stripe.Extent, len(exts))
	e.devMu.Lock()
	for i, x := range exts {
		base := x.Dev % n
		best, bestLoad := x.Dev, e.devLoad[x.Dev]
		for r := 0; r < rm.Copies; r++ {
			if d := base + r*n; e.devLoad[d] < bestLoad {
				best, bestLoad = d, e.devLoad[d]
			}
		}
		x.Dev = best
		out[i] = x
	}
	e.devMu.Unlock()
	return out
}

// DevLoad reports the in-flight request count for one device (tests and
// steering diagnostics).
func (e *Engine) DevLoad(dev int) int {
	e.devMu.Lock()
	defer e.devMu.Unlock()
	return e.devLoad[dev]
}

func (e *Engine) devBegin(dev int) {
	if dev < 0 {
		return
	}
	e.devMu.Lock()
	e.devLoad[dev]++
	e.devMu.Unlock()
}

func (e *Engine) devEnd(dev int) {
	if dev < 0 {
		return
	}
	e.devMu.Lock()
	e.devLoad[dev]--
	e.devMu.Unlock()
}

// firstError records the lowest-indexed failure across concurrent requests.
type firstError struct {
	mu  sync.Mutex
	idx int
	err error
}

func (f *firstError) record(i int, err error) {
	f.mu.Lock()
	if f.err == nil || i < f.idx {
		f.idx, f.err = i, err
	}
	f.mu.Unlock()
}

func (f *firstError) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Run executes every request with at most the window in flight, applying the
// policies (outermost first) around fn.  It blocks the caller until all
// issued requests complete and returns the lowest-indexed request's error,
// or nil.  Once any request fails, no further requests are issued.  Run is
// a foreground, unhedged RunWith.
func (e *Engine) Run(ctx *rpc.Ctx, reqs []stripe.Extent, fn DoFunc, policies ...Policy) error {
	return e.RunWith(ctx, RunOpts{}, reqs, fn, policies...)
}

// RunWith is Run with explicit QoS class and hedging options.
func (e *Engine) RunWith(ctx *rpc.Ctx, opts RunOpts, reqs []stripe.Extent, fn DoFunc, policies ...Policy) error {
	if len(reqs) == 0 {
		return nil
	}
	for i := len(policies) - 1; i >= 0; i-- {
		fn = policies[i](fn)
	}
	return e.RunIndexed(ctx, opts, reqs,
		func(ctx *rpc.Ctx, _ int, r stripe.Extent) error { return fn(ctx, r) })
}

// IndexedDoFunc is a DoFunc that also receives the request's index in the
// run's extent list.  Cross-file write-back batches use it to dispatch
// each extent to its owning file's ladder.
type IndexedDoFunc func(ctx *rpc.Ctx, i int, r stripe.Extent) error

// RunIndexed runs reqs under opts like RunWith, delivering each extent's
// index in reqs to fn.  Unlike RunWith it takes no policies: a batch mixes
// extents with different failure ladders, so the caller pre-composes the
// right ladder into fn per index.
func (e *Engine) RunIndexed(ctx *rpc.Ctx, opts RunOpts, reqs []stripe.Extent, fn IndexedDoFunc) error {
	if len(reqs) == 0 {
		return nil
	}
	e.requests.Add(uint64(len(reqs)))
	e.classReqs[opts.Class].Add(uint64(len(reqs)))
	if e.cfg.Wave {
		return e.runWaves(ctx, opts.Class, reqs, fn)
	}
	return e.runWindow(ctx, opts, reqs, fn)
}

// acquire takes one window slot for class, recording slot-wait and
// occupancy.
func (e *Engine) acquire(ctx *rpc.Ctx, class Class) {
	var queued bool
	var wait time.Duration
	if ctx.P != nil {
		start := ctx.Now()
		queued = e.gate.acquireSim(ctx.P, class, e.cfg.Name)
		wait = time.Duration(ctx.Now() - start)
	} else {
		start := time.Now()
		queued = e.gate.acquireRT(class)
		wait = time.Since(start)
	}
	e.slotWait.ObserveDuration(wait)
	e.classWait[class].ObserveDuration(wait)
	if queued {
		e.schedMu.Lock()
		e.waited++
		e.schedMu.Unlock()
	}
	e.noteIssued(class)
}

// tryAcquire takes a slot only if one is free right now and no request is
// queued for it — the hedge admission rule: duplicates ride spare capacity
// and never displace first-copy work.
func (e *Engine) tryAcquire(class Class) bool {
	if !e.gate.tryAcquire(class) {
		return false
	}
	e.noteIssued(class)
	return true
}

func (e *Engine) noteIssued(class Class) {
	e.inflight.Inc()
	e.classInflight[class].Inc()
	e.occupancy.Observe(float64(e.inflight.Value()))
}

// release returns one window slot.
func (e *Engine) release(class Class) {
	e.inflight.Dec()
	e.classInflight[class].Dec()
	e.gate.release(class)
}

// observeLatency feeds one completed request's service time into the
// hedging EWMA and, when adaptive, the AIMD controller.
func (e *Engine) observeLatency(sec float64) {
	e.schedMu.Lock()
	if e.latFast == 0 && e.latSlow == 0 {
		e.latFast, e.latSlow = sec, sec
	} else {
		e.latFast += (sec - e.latFast) / 8
		e.latSlow += (sec - e.latSlow) / 64
	}
	adjust := false
	var congested bool
	var waited int
	e.completions++
	if e.cfg.Adaptive && e.completions >= aimdEvery {
		e.completions = 0
		waited, e.waited = e.waited, 0
		congested = e.latFast > 2*e.latSlow
		adjust = true
	}
	e.schedMu.Unlock()
	if !adjust {
		return
	}
	cur := e.gate.limitNow()
	next := cur
	if congested && cur > e.cfg.MinFlight {
		// Multiplicative decrease: back off to 3/4 under congestion.
		next = cur * 3 / 4
		if next < e.cfg.MinFlight {
			next = e.cfg.MinFlight
		}
	} else if !congested && waited > 0 && cur < e.cfg.MaxFlight {
		// Additive increase while demand is queueing for slots.
		next = cur + 1
	}
	if next != cur {
		e.gate.setLimit(next)
		e.maxflightG.Set(int64(next))
	}
}

// hedgeThreshold is the current straggler threshold: HedgeFactor times the
// fast latency EWMA, floored at HedgeAfter.
func (e *Engine) hedgeThreshold() time.Duration {
	e.schedMu.Lock()
	ewma := e.latFast
	e.schedMu.Unlock()
	d := time.Duration(ewma * e.cfg.HedgeFactor * float64(time.Second))
	if d < e.cfg.HedgeAfter {
		d = e.cfg.HedgeAfter
	}
	return d
}

// group tracks per-REQUEST completions, not per-worker exits: issue adds one
// unit per request, and whichever copy (primary or hedge) completes first
// signals it.  That is what makes hedging effective — Run unblocks the
// moment every request has a winning completion, while losing duplicates
// keep running detached (simulated processes the kernel drains, or plain
// goroutines) just long enough to return their window slots.
type group struct {
	ctx *rpc.Ctx
	wg  sync.WaitGroup
	swg sim.WaitGroup
}

// add reserves one request completion.
func (g *group) add() {
	if g.ctx.P == nil {
		g.wg.Add(1)
		return
	}
	g.swg.Add(1)
}

// done signals one request's first completion.
func (g *group) done() {
	if g.ctx.P == nil {
		g.wg.Done()
		return
	}
	g.swg.Done()
}

// launch starts one detached request copy on the mode's runtime.
func (g *group) launch(name string, work func(c *rpc.Ctx)) {
	if g.ctx.P == nil {
		go work(&rpc.Ctx{})
		return
	}
	g.ctx.P.Kernel().Go(name, func(p *sim.Proc) {
		work(&rpc.Ctx{P: p})
	})
}

func (g *group) wait() {
	if g.ctx.P == nil {
		g.wg.Wait()
		return
	}
	g.swg.Wait(g.ctx.P)
}

// reqState is the per-request completion record shared by a primary and its
// hedge: whichever copy finishes first marks done and is the one recorded.
type reqState struct {
	mu     sync.Mutex
	done   bool
	hedged bool
}

// complete records one copy's outcome and reports whether it won the
// request.  Exactly one copy per request passes the first-completion gate,
// whatever the interleaving — that copy records the error (if any) and feeds
// the latency EWMA; the loser is suppressed.
func (e *Engine) complete(st *reqState, i int, err error, ferr *firstError, isHedge bool, sec float64) bool {
	st.mu.Lock()
	first := !st.done
	if first {
		st.done = true
	}
	st.mu.Unlock()
	if first {
		if err != nil {
			ferr.record(i, err)
		}
		if isHedge {
			e.hedgeWon.Inc()
		}
		e.observeLatency(sec)
		return true
	}
	if isHedge {
		e.hedgeCanceled.Inc()
	}
	return false
}

// now returns elapsed seconds measured on the mode's clock.
func elapsedSince(ctx *rpc.Ctx, simStart sim.Time, wallStart time.Time) float64 {
	if ctx.P != nil {
		return time.Duration(ctx.Now() - simStart).Seconds()
	}
	return time.Since(wallStart).Seconds()
}

// issue blocks on a free window slot, then hands request i to its own
// worker: the group gains one unit — the request's completion — and the
// first copy to finish signals it.  The worker releases its slot when it
// returns, win or lose, so the window bound holds even while a losing
// straggler is still running after Run unblocked.  With hedging, a straggler
// watcher launches a duplicate on a spare slot once the request outlives the
// adaptive threshold.
func (e *Engine) issue(g *group, i int, r stripe.Extent, fn IndexedDoFunc, ferr *firstError, opts RunOpts, hedge bool) {
	e.acquire(g.ctx, opts.Class)
	st := &reqState{}
	g.add()
	g.launch(e.cfg.Name+"/io", func(c *rpc.Ctx) {
		var simStart sim.Time
		var wallStart time.Time
		if c.P != nil {
			simStart = c.Now()
		} else {
			wallStart = time.Now()
		}
		e.devBegin(r.Dev)
		err := fn(c, i, r)
		e.devEnd(r.Dev)
		sec := elapsedSince(c, simStart, wallStart)
		won := e.complete(st, i, err, ferr, false, sec)
		e.release(opts.Class)
		if won {
			g.done()
		}
	})
	if hedge {
		e.watchStraggler(g, st, i, r, fn, ferr, opts)
	}
}

// watchStraggler arms the straggler timer for one request: a virtual-time
// sleep under the simulation kernel (deterministic by seed), a wall-clock
// timer goroutine in real-time mode.  The watcher runs outside the group —
// Run never waits on a timer, only on issued copies.
func (e *Engine) watchStraggler(g *group, st *reqState, i int, r stripe.Extent, fn IndexedDoFunc, ferr *firstError, opts RunOpts) {
	d := e.hedgeThreshold()
	if g.ctx.P != nil {
		g.ctx.P.Kernel().Go(e.cfg.Name+"/hedge-timer", func(p *sim.Proc) {
			p.Sleep(d)
			e.tryHedge(g, st, i, r, fn, ferr, opts)
		})
		return
	}
	e.wallTimers.Inc()
	go func() {
		time.Sleep(d)
		e.tryHedge(g, st, i, r, fn, ferr, opts)
	}()
}

// tryHedge launches the duplicate if the primary is still in flight and a
// spare slot is free.  The duplicate joins the race for the request's single
// group unit, which the primary reserved at issue: whichever copy completes
// first signals it, so a winning hedge unblocks Run while the straggling
// primary is still out.
func (e *Engine) tryHedge(g *group, st *reqState, i int, r stripe.Extent, fn IndexedDoFunc, ferr *firstError, opts RunOpts) {
	st.mu.Lock()
	if st.done || st.hedged {
		st.mu.Unlock()
		return
	}
	if !e.tryAcquire(opts.Class) {
		st.mu.Unlock()
		return
	}
	st.hedged = true
	st.mu.Unlock()
	e.hedgeLaunched.Inc()
	g.launch(e.cfg.Name+"/hedge", func(c *rpc.Ctx) {
		var simStart sim.Time
		var wallStart time.Time
		if c.P != nil {
			simStart = c.Now()
		} else {
			wallStart = time.Now()
		}
		e.devBegin(r.Dev)
		err := fn(c, i, r)
		e.devEnd(r.Dev)
		sec := elapsedSince(c, simStart, wallStart)
		won := e.complete(st, i, err, ferr, true, sec)
		e.release(opts.Class)
		if won {
			g.done()
		}
	})
}

// runWindow is the sliding window: the issue loop blocks on a free slot,
// then hands the request to its own process/goroutine, so a completing
// transfer immediately admits the next one.
func (e *Engine) runWindow(ctx *rpc.Ctx, opts RunOpts, reqs []stripe.Extent, fn IndexedDoFunc) error {
	hedge := opts.Hedge && e.cfg.Hedge
	if len(reqs) == 1 && !hedge {
		// Degenerate fan-out (one extent per gathered chunk is the common
		// NFS case): run on the caller, still under the window bound.
		e.acquire(ctx, opts.Class)
		defer e.release(opts.Class)
		var simStart sim.Time
		var wallStart time.Time
		if ctx.P != nil {
			simStart = ctx.Now()
		} else {
			wallStart = time.Now()
		}
		e.devBegin(reqs[0].Dev)
		err := fn(ctx, 0, reqs[0])
		e.devEnd(reqs[0].Dev)
		e.observeLatency(elapsedSince(ctx, simStart, wallStart))
		return err
	}
	var ferr firstError
	g := &group{ctx: ctx}
	for i, r := range reqs {
		if ferr.get() != nil {
			break
		}
		e.issue(g, i, r, fn, &ferr, opts, hedge)
	}
	g.wait()
	return ferr.get()
}

// runWaves is the historical lock-step dispatch: batches of MaxFlight, each
// waiting for its slowest member.  Kept for the bench comparison and for
// reproducing pre-engine schedules.  Waves never hedge.
func (e *Engine) runWaves(ctx *rpc.Ctx, class Class, reqs []stripe.Extent, fn IndexedDoFunc) error {
	opts := RunOpts{Class: class}
	var ferr firstError
	for start := 0; start < len(reqs); start += e.cfg.MaxFlight {
		end := start + e.cfg.MaxFlight
		if end > len(reqs) {
			end = len(reqs)
		}
		batch := reqs[start:end]
		if len(batch) == 1 {
			e.acquire(ctx, class)
			e.devBegin(batch[0].Dev)
			err := fn(ctx, start, batch[0])
			e.devEnd(batch[0].Dev)
			e.release(class)
			if err != nil {
				ferr.record(start, err)
			}
		} else {
			g := &group{ctx: ctx}
			for j, r := range batch {
				e.issue(g, start+j, r, fn, &ferr, opts, false)
			}
			g.wait()
		}
		if ferr.get() != nil {
			break
		}
	}
	return ferr.get()
}
