package ioengine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dpnfs/internal/metrics"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/stripe"
)

// byteOwner identifies where one logical byte lives on a device.
type byteOwner struct {
	dev    int
	devOff int64
}

// coverageMap expands extents to a per-logical-byte ownership map, failing on
// any byte claimed twice.  Exact byte accounting is the strongest form of the
// Prepare contract: coalescing and splitting may reshape requests arbitrarily
// as long as every input byte is issued exactly once at the same device
// address.
func coverageMap(t *testing.T, label string, exts []stripe.Extent) map[int64]byteOwner {
	t.Helper()
	m := make(map[int64]byteOwner)
	for _, x := range exts {
		if x.Len <= 0 {
			t.Fatalf("%s: extent with non-positive length: %+v", label, x)
		}
		for b := int64(0); b < x.Len; b++ {
			off := x.Off + b
			if prev, dup := m[off]; dup {
				t.Fatalf("%s: logical byte %d covered twice (%+v and %+v)", label, off, prev, x)
			}
			m[off] = byteOwner{dev: x.Dev, devOff: x.DevOff + b}
		}
	}
	return m
}

// checkPrepareInvariants asserts the full Prepare contract for one input:
// exact byte coverage (no loss, no duplication, same device addresses), the
// MaxTransfer cap, and per-device offset monotonicity (splitting/coalescing
// must not reorder a device's stream).
func checkPrepareInvariants(t *testing.T, maxTransfer int64, in, out []stripe.Extent) {
	t.Helper()
	want := coverageMap(t, "input", in)
	got := coverageMap(t, "output", out)
	if len(got) != len(want) {
		t.Fatalf("output covers %d bytes, input has %d", len(got), len(want))
	}
	for off, w := range want {
		g, ok := got[off]
		if !ok {
			t.Fatalf("logical byte %d lost by Prepare", off)
		}
		if g != w {
			t.Fatalf("logical byte %d moved: input %+v, output %+v", off, w, g)
		}
	}
	lastOff := make(map[int]int64)
	for _, x := range out {
		if maxTransfer > 0 && x.Len > maxTransfer {
			t.Fatalf("extent %+v exceeds MaxTransfer %d", x, maxTransfer)
		}
		if prev, seen := lastOff[x.Dev]; seen && x.DevOff < prev {
			t.Fatalf("device %d stream went backwards: %d after %d", x.Dev, x.DevOff, prev)
		}
		lastOff[x.Dev] = x.DevOff + x.Len
	}
}

// randomExtents builds a non-overlapping request list the way stripe mappers
// do: ascending logical offsets (with occasional gaps), round-robin-ish
// device placement, and mixed extent sizes so some runs coalesce and some
// split.
func randomExtents(rng *rand.Rand) []stripe.Extent {
	n := 1 + rng.Intn(24)
	out := make([]stripe.Extent, 0, n)
	off := int64(rng.Intn(4096))
	devOff := make(map[int]int64)
	for i := 0; i < n; i++ {
		dev := rng.Intn(4)
		ln := int64(1 + rng.Intn(700))
		if rng.Intn(3) == 0 {
			off += int64(rng.Intn(512)) // logical gap
		}
		if rng.Intn(4) != 0 {
			// Device-contiguous continuation: eligible for coalescing when
			// the logical stream is also contiguous.
			out = append(out, stripe.Extent{Dev: dev, Off: off, DevOff: devOff[dev], Len: ln})
		} else {
			out = append(out, stripe.Extent{Dev: dev, Off: off, DevOff: devOff[dev] + int64(rng.Intn(256)) + 1, Len: ln})
		}
		devOff[dev] = out[len(out)-1].DevOff + ln
		off += ln
	}
	return out
}

// TestPrepareInvariants drives seeded-random mapper-shaped inputs through
// Prepare across a spread of MaxTransfer settings and asserts exact coverage.
func TestPrepareInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, maxTransfer := range []int64{0, 1, 64, 333, 1 << 20} {
		e := New(Config{MaxTransfer: maxTransfer, Metrics: metrics.NewRegistry()})
		for trial := 0; trial < 200; trial++ {
			in := randomExtents(rng)
			checkPrepareInvariants(t, maxTransfer, in, e.Prepare(in))
		}
	}
}

// FuzzPrepare is the CI fuzz target for the same contract: the raw input
// bytes are decoded into an extent list (arbitrary devices, lengths, and
// contiguity patterns) and Prepare's output must cover it exactly.
func FuzzPrepare(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(64))
	f.Add([]byte{0, 0, 0, 0}, int64(0))
	f.Add([]byte{255, 1, 128, 7, 9, 200}, int64(1))
	f.Fuzz(func(t *testing.T, raw []byte, maxTransfer int64) {
		if maxTransfer < 0 || maxTransfer > 1<<20 || len(raw) > 256 {
			t.Skip()
		}
		var in []stripe.Extent
		off := int64(0)
		devOff := make(map[int]int64)
		for i := 0; i+2 < len(raw); i += 3 {
			dev := int(raw[i] % 5)
			ln := int64(raw[i+1]) + 1
			gap := int64(raw[i+2] % 16)
			off += gap
			in = append(in, stripe.Extent{Dev: dev, Off: off, DevOff: devOff[dev] + gap, Len: ln})
			devOff[dev] += gap + ln
			off += ln
		}
		if len(in) == 0 {
			t.Skip()
		}
		e := New(Config{MaxTransfer: maxTransfer, Metrics: metrics.NewRegistry()})
		checkPrepareInvariants(t, maxTransfer, in, e.Prepare(in))
	})
}

// hedgeLoad drives a hedged window where chosen straggler requests sleep far
// past the hedge threshold on their first execution and complete fast on the
// duplicate, while a tracker audits the combined in-flight bound.
type hedgeLoad struct {
	mu       sync.Mutex
	execs    map[int64]int // extent offset -> executions (primary + hedges)
	inflight int
	peak     int
}

func (h *hedgeLoad) enter(r stripe.Extent) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.execs[r.Off]++
	h.inflight++
	if h.inflight > h.peak {
		h.peak = h.inflight
	}
	return h.execs[r.Off]
}

func (h *hedgeLoad) exit() {
	h.mu.Lock()
	h.inflight--
	h.mu.Unlock()
}

// TestWindowBoundHoldsWithHedges checks the hedge admission rule: even with
// stragglers forcing duplicates, the combined primaries+hedges in flight
// never exceed MaxFlight, every request's winner is recorded exactly once,
// and the hedge counters reconcile (won + cancelled = launched) once the
// kernel drains the losers.
func TestWindowBoundHoldsWithHedges(t *testing.T) {
	const window = 4
	e := New(Config{
		MaxFlight: window, Hedge: true, HedgeAfter: 2 * time.Millisecond,
		Metrics: metrics.NewRegistry(),
	})
	// Fast requests first, stragglers last: when the straggler timers fire
	// the queue has drained, two slots are spare, and the two hedges fill
	// the window exactly — a hedge admitted past the bound would show up as
	// peak > window.  (Hedge timers are one-shot: a straggler whose
	// threshold passes while the window is saturated is simply not hedged.)
	reqs := []stripe.Extent{
		{Dev: 1, Off: 0, Len: 64}, {Dev: 2, Off: 64, Len: 64},
		{Dev: 4, Off: 128, Len: 64}, {Dev: 5, Off: 192, Len: 64},
		{Dev: 0, Off: 256, Len: 64}, {Dev: 3, Off: 320, Len: 64},
	}
	load := &hedgeLoad{execs: make(map[int64]int)}
	fn := func(ctx *rpc.Ctx, r stripe.Extent) error {
		n := load.enter(r)
		defer load.exit()
		d := time.Millisecond
		if r.Dev%3 == 0 && n == 1 {
			d = 300 * time.Millisecond // straggling primary
		}
		ctx.P.Sleep(d)
		return nil
	}
	k := sim.NewKernel(1)
	k.Go("test", func(p *sim.Proc) {
		if err := e.RunWith(&rpc.Ctx{P: p}, RunOpts{Hedge: true}, reqs, fn); err != nil {
			t.Errorf("RunWith: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if load.peak > window {
		t.Errorf("in-flight peak %d exceeded window %d (hedges must ride spare slots)", load.peak, window)
	}
	launched, won, canceled := e.hedgeLaunched.Value(), e.hedgeWon.Value(), e.hedgeCanceled.Value()
	if launched == 0 {
		t.Fatal("no hedges launched — stragglers never crossed the threshold")
	}
	if won == 0 {
		t.Error("no hedge won despite 300x straggling primaries")
	}
	if won+canceled != launched {
		t.Errorf("hedge counters do not reconcile: launched=%d won=%d cancelled=%d", launched, won, canceled)
	}
	if got := e.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge %d after drain, want 0", got)
	}
	for off, n := range load.execs {
		if n < 1 || n > 2 {
			t.Errorf("extent at %d executed %d times, want 1 or 2", off, n)
		}
	}
	if e.wallTimers.Value() != 0 {
		t.Errorf("simulated run armed %d wall-clock timers, want 0", e.wallTimers.Value())
	}
}

// TestHedgesRealTime is the wall-clock twin, run under -race: hedge timers
// are real goroutines, the loser keeps running after Run returns, and the
// exactly-once completion contract must hold across those races.
func TestHedgesRealTime(t *testing.T) {
	const window = 4
	e := New(Config{
		MaxFlight: window, Hedge: true, HedgeAfter: time.Millisecond,
		Metrics: metrics.NewRegistry(),
	})
	// As in the sim twin: fast requests first so slots are spare when the
	// straggler timers fire.
	reqs := []stripe.Extent{
		{Dev: 1, Off: 0, Len: 64}, {Dev: 3, Off: 64, Len: 64},
		{Dev: 5, Off: 128, Len: 64}, {Dev: 7, Off: 192, Len: 64},
		{Dev: 0, Off: 256, Len: 64}, {Dev: 2, Off: 320, Len: 64},
	}
	load := &hedgeLoad{execs: make(map[int64]int)}
	var alive sync.WaitGroup
	fn := func(ctx *rpc.Ctx, r stripe.Extent) error {
		alive.Add(1)
		defer alive.Done()
		n := load.enter(r)
		defer load.exit()
		d := 100 * time.Microsecond
		if r.Dev%2 == 0 && n == 1 {
			d = 50 * time.Millisecond
		}
		time.Sleep(d)
		return nil
	}
	if err := e.RunWith(&rpc.Ctx{}, RunOpts{Hedge: true}, reqs, fn); err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	// Run returns on first-wins; losing copies may still be in flight.
	// Drain them before auditing the counters.
	deadline := time.Now().Add(5 * time.Second)
	for e.inflight.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	alive.Wait()
	if load.peak > window {
		t.Errorf("in-flight peak %d exceeded window %d", load.peak, window)
	}
	launched, won, canceled := e.hedgeLaunched.Value(), e.hedgeWon.Value(), e.hedgeCanceled.Value()
	if launched == 0 {
		t.Fatal("no hedges launched in real-time mode")
	}
	if won+canceled != launched {
		t.Errorf("hedge counters do not reconcile: launched=%d won=%d cancelled=%d", launched, won, canceled)
	}
	if e.wallTimers.Value() != uint64(launched) && e.wallTimers.Value() == 0 {
		t.Error("real-time hedging armed no wall-clock timers")
	}
	for off, n := range load.execs {
		if n < 1 || n > 2 {
			t.Errorf("extent at %d executed %d times, want 1 or 2", off, n)
		}
	}
}

// TestBackgroundShareAndPriority pins the QoS gate: background work is held
// to its window share while foreground runs concurrently, and every request
// still completes.
func TestBackgroundShareAndPriority(t *testing.T) {
	e := New(Config{MaxFlight: 4, BackgroundShare: 0.5, Metrics: metrics.NewRegistry()})
	var mu sync.Mutex
	bgInflight, bgPeak := 0, 0
	bg := func(ctx *rpc.Ctx, r stripe.Extent) error {
		mu.Lock()
		bgInflight++
		if bgInflight > bgPeak {
			bgPeak = bgInflight
		}
		mu.Unlock()
		ctx.P.Sleep(2 * time.Millisecond)
		mu.Lock()
		bgInflight--
		mu.Unlock()
		return nil
	}
	fg := func(ctx *rpc.Ctx, r stripe.Extent) error {
		ctx.P.Sleep(time.Millisecond)
		return nil
	}
	k := sim.NewKernel(1)
	var wg sim.WaitGroup
	wg.Add(2)
	k.Go("bg", func(p *sim.Proc) {
		defer wg.Done()
		if err := e.RunWith(&rpc.Ctx{P: p}, RunOpts{Class: Background}, scattered(10, 64), bg); err != nil {
			t.Error(err)
		}
	})
	k.Go("fg", func(p *sim.Proc) {
		defer wg.Done()
		if err := e.RunWith(&rpc.Ctx{P: p}, RunOpts{Class: Foreground}, scattered(10, 64), fg); err != nil {
			t.Error(err)
		}
	})
	k.Go("wait", func(p *sim.Proc) { wg.Wait(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// BackgroundShare 0.5 of a 4-slot window caps background at 2 slots.
	if bgPeak > 2 {
		t.Errorf("background peak %d exceeded its share cap 2", bgPeak)
	}
	if got := e.classReqs[Background].Value(); got != 10 {
		t.Errorf("background class counter %d, want 10", got)
	}
	if got := e.classReqs[Foreground].Value(); got != 10 {
		t.Errorf("foreground class counter %d, want 10", got)
	}
}

// TestAdaptiveWindowAIMD pins the controller's two directions: sustained
// congestion (fast EWMA far above slow) shrinks the window toward MinFlight,
// and queued demand without congestion grows it back toward MaxFlight.
func TestAdaptiveWindowAIMD(t *testing.T) {
	e := New(Config{
		MaxFlight: 8, Adaptive: true, MinFlight: 2,
		Metrics: metrics.NewRegistry(),
	})
	run := func(n int, d time.Duration) {
		k := sim.NewKernel(1)
		k.Go("load", func(p *sim.Proc) {
			err := e.Run(&rpc.Ctx{P: p}, scattered(n, 64), func(ctx *rpc.Ctx, r stripe.Extent) error {
				ctx.P.Sleep(d)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run(64, time.Millisecond) // seed the EWMAs at a fast baseline
	if got := e.Window(); got != 8 {
		t.Fatalf("steady window %d, want 8", got)
	}
	run(64, 200*time.Millisecond) // sustained 200x latency: congestion
	shrunk := e.Window()
	if shrunk >= 8 {
		t.Fatalf("window %d did not shrink under congestion", shrunk)
	}
	if shrunk < 2 {
		t.Fatalf("window %d shrank below MinFlight", shrunk)
	}
	// Queued fast traffic (more demand than slots) grows it back.
	for i := 0; i < 8; i++ {
		run(64, time.Millisecond)
	}
	if grown := e.Window(); grown <= shrunk {
		t.Errorf("window stayed at %d after congestion cleared, want additive increase above %d", grown, shrunk)
	}
	if got := e.maxflightG.Value(); got != int64(e.Window()) {
		t.Errorf("ioengine_maxflight gauge %d, want %d", got, e.Window())
	}
}

// TestSteerReplicasPicksLeastLoaded pins steering determinism: with no load
// it is the identity, with load on the primary copy it moves reads to the
// idle replica, and ties keep the seeded placement.
func TestSteerReplicasPicksLeastLoaded(t *testing.T) {
	inner := stripe.NewRoundRobin(64, 3)
	rm := &stripe.Replicated{Inner: inner, Copies: 2}
	e := New(Config{Metrics: metrics.NewRegistry()})

	exts := []stripe.Extent{{Dev: 1, Off: 0, DevOff: 0, Len: 64}}
	got := e.SteerReplicas(rm, exts)
	if got[0].Dev != 1 {
		t.Errorf("unloaded steering moved dev %d -> %d, want identity", 1, got[0].Dev)
	}

	e.devBegin(1) // primary copy now busy
	got = e.SteerReplicas(rm, exts)
	if got[0].Dev != 4 { // 1 + 1*3: the same stripe column on the replica set
		t.Errorf("loaded steering picked dev %d, want replica 4", got[0].Dev)
	}
	e.devEnd(1)

	// Equal load on both copies: keep the seeded placement.
	e.devBegin(1)
	e.devBegin(4)
	got = e.SteerReplicas(rm, exts)
	if got[0].Dev != 1 {
		t.Errorf("tied steering moved dev %d -> %d, want identity", 1, got[0].Dev)
	}
}
