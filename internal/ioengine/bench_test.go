package ioengine

import (
	"testing"
	"time"

	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/stripe"
)

// benchExtents is a mixed-size request stream over six devices: bulk runs
// that split against MaxTransfer next to slivers that don't — the
// heterogeneity that separates wave from window dispatch.
func benchExtents() []stripe.Extent {
	sizes := []int64{2 << 20, 8 << 10, 512 << 10, 64 << 10, 1 << 20, 4 << 10}
	var out []stripe.Extent
	var off int64
	for i := 0; i < 48; i++ {
		n := sizes[i%len(sizes)]
		out = append(out, stripe.Extent{Dev: i % 6, Off: off, DevOff: off / 6, Len: n})
		off += n
	}
	return out
}

// benchEngine drives one full Prepare+Run cycle per iteration on a fresh
// simulation kernel, with per-request virtual service time proportional to
// length (plus a per-device skew), and reports the schedule's virtual
// completion time alongside the usual wall-clock and allocation numbers.
func benchEngine(b *testing.B, wave bool) {
	b.Helper()
	var virtual sim.Time
	for i := 0; i < b.N; i++ {
		e := New(Config{MaxFlight: 4, MaxTransfer: 256 << 10, Wave: wave})
		k := sim.NewKernel(1)
		k.Go("bench", func(p *sim.Proc) {
			reqs := e.Prepare(benchExtents())
			err := e.Run(&rpc.Ctx{P: p}, reqs, func(ctx *rpc.Ctx, r stripe.Extent) error {
				ctx.P.Sleep(time.Duration(r.Len)*time.Nanosecond + time.Duration(r.Dev)*time.Microsecond)
				return nil
			})
			if err != nil {
				b.Error(err)
			}
			virtual = p.Now()
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(virtual)/1e6, "virtual-ms/run")
}

// BenchmarkEngineWindow measures the sliding-window scheduler; compare the
// virtual-ms/run metric against BenchmarkEngineWave for the wave→window
// schedule win, and allocs/op for dispatch overhead (-benchmem).
func BenchmarkEngineWindow(b *testing.B) { benchEngine(b, false) }

// BenchmarkEngineWave measures the historical lock-step dispatch.
func BenchmarkEngineWave(b *testing.B) { benchEngine(b, true) }
