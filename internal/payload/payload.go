// Package payload represents bulk I/O data that can be either real bytes or
// a synthetic length.  Benchmarks move hundreds of simulated gigabytes, so
// the simulated transport passes typed messages by reference and charges the
// NIC for Payload.WireSize() without materializing buffers; integration
// tests and the TCP demo use real bytes end to end.
//
// Paper mapping: the paper's workloads write up to 500 MB per client
// (§6.2); synthetic payloads are what let the reproduction sweep those
// data sizes across five architectures and eight client counts in seconds.
package payload

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"dpnfs/internal/xdr"
)

// Payload is a byte string of length N.  If Bytes is nil the content is
// synthetic (all zeros, not materialized).  A payload may carry a release
// hook (RealPooled, borrow-mode decoding) that returns its backing buffer
// to a pool; the hook travels with every copy of the struct and fires at
// most once.
type Payload struct {
	N     int64
	Bytes []byte
	rel   *releaseCell
}

// releaseCell is the shared once-only release state behind a pooled
// payload.  All copies of the Payload struct point at the same cell, so
// whichever copy Releases first wins and the rest are no-ops.
type releaseCell struct {
	released atomic.Bool
	fn       func()
}

// Real wraps actual bytes.
func Real(b []byte) Payload { return Payload{N: int64(len(b)), Bytes: b} }

// RealPooled wraps bytes whose backing buffer should be returned to its
// owner via release once the (single logical) consumer is done with the
// content.  Payloads that are never Released simply fall to the garbage
// collector — a missed pool reuse, not a leak or a correctness bug.
func RealPooled(b []byte, release func()) Payload {
	return Payload{N: int64(len(b)), Bytes: b, rel: &releaseCell{fn: release}}
}

// Release returns the payload's backing buffer to its owner.  It is
// idempotent across all copies of the payload and a no-op for payloads
// without a release hook.  The caller must not touch Bytes afterwards.
func (p Payload) Release() {
	if p.rel != nil && p.rel.released.CompareAndSwap(false, true) {
		p.rel.fn()
	}
}

// Synthetic describes n bytes of content without materializing them.
func Synthetic(n int64) Payload { return Payload{N: n} }

// Len returns the payload length in bytes.
func (p Payload) Len() int64 { return p.N }

// IsSynthetic reports whether the content is not materialized.
func (p Payload) IsSynthetic() bool { return p.Bytes == nil && p.N > 0 }

// WireSize returns the XDR-encoded size (length word + padded body).
func (p Payload) WireSize() int64 { return int64(xdr.SizeOpaque(int(p.N))) }

// MarshalXDR encodes the payload as a variable-length opaque.  Synthetic
// payloads encode as zeros, appended straight into the frame buffer — only
// the TCP transport ever calls this for bulk data.
func (p Payload) MarshalXDR(e *xdr.Encoder) {
	if p.Bytes != nil {
		e.Opaque(p.Bytes)
		return
	}
	if p.N > xdr.MaxOpaque {
		panic(fmt.Sprintf("payload: synthetic opaque of %d bytes exceeds limit", p.N))
	}
	e.Uint32(uint32(p.N))
	e.Zeros(int(p.N) + (4-int(p.N)%4)%4)
}

// UnmarshalXDR decodes a variable-length opaque as real bytes.  On a
// borrow-mode decoder (xdr.Decoder.EnableBorrow) the bytes alias the
// decode buffer: the buffer's owner is retained and released through the
// payload's Release hook, so the frame stays alive until the consumer is
// done with the content.
func (p *Payload) UnmarshalXDR(d *xdr.Decoder) error {
	ref, err := d.OpaqueRef()
	if err != nil {
		return err
	}
	p.Bytes = ref.Bytes
	p.N = int64(len(ref.Bytes))
	p.rel = nil
	if ref.Borrowed {
		o := d.BorrowOwner()
		o.Retain()
		p.rel = &releaseCell{fn: o.Release}
	}
	return nil
}

// Slice returns the sub-payload [off, off+n), preserving synthetic-ness.
// The slice does not carry the parent's release hook: only the holder of
// the whole payload owns the backing buffer's lifetime.
func (p Payload) Slice(off, n int64) Payload {
	if off < 0 || n < 0 || off+n > p.N {
		panic("payload: slice out of range")
	}
	if p.Bytes == nil {
		return Synthetic(n)
	}
	return Real(p.Bytes[off : off+n])
}

// Equal reports whether two payloads have identical content, treating
// synthetic payloads as zeros.
func Equal(a, b Payload) bool {
	if a.N != b.N {
		return false
	}
	if a.Bytes == nil && b.Bytes == nil {
		return true
	}
	az, bz := a.Bytes, b.Bytes
	if az == nil {
		az = make([]byte, a.N)
	}
	if bz == nil {
		bz = make([]byte, b.N)
	}
	return bytes.Equal(az, bz)
}
