package payload

import (
	"bytes"
	"testing"
	"testing/quick"

	"dpnfs/internal/xdr"
)

func TestRealRoundTrip(t *testing.T) {
	in := Real([]byte("some bytes"))
	var out Payload
	if err := xdr.Unmarshal(xdr.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes, in.Bytes) || out.N != in.N {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
}

func TestSyntheticMarshalsAsZeros(t *testing.T) {
	in := Synthetic(10)
	var out Payload
	if err := xdr.Unmarshal(xdr.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 10 || !bytes.Equal(out.Bytes, make([]byte, 10)) {
		t.Fatalf("synthetic should decode as zeros: %+v", out)
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	for _, p := range []Payload{Real(nil), Real([]byte("abc")), Synthetic(0), Synthetic(17)} {
		if got, want := p.WireSize(), int64(len(xdr.Marshal(p))); got != want {
			t.Errorf("payload %+v: WireSize %d != encoded %d", p, got, want)
		}
	}
}

func TestSlice(t *testing.T) {
	p := Real([]byte("0123456789"))
	s := p.Slice(2, 5)
	if string(s.Bytes) != "23456" || s.N != 5 {
		t.Fatalf("slice: %+v", s)
	}
	syn := Synthetic(100).Slice(10, 20)
	if !syn.IsSynthetic() || syn.N != 20 {
		t.Fatalf("synthetic slice: %+v", syn)
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	Real([]byte("ab")).Slice(1, 5)
}

func TestEqualTreatsSyntheticAsZeros(t *testing.T) {
	if !Equal(Synthetic(4), Real(make([]byte, 4))) {
		t.Fatal("synthetic != zeros")
	}
	if Equal(Synthetic(4), Real([]byte{0, 0, 1, 0})) {
		t.Fatal("nonzero bytes equal synthetic")
	}
	if Equal(Synthetic(3), Synthetic(4)) {
		t.Fatal("length mismatch ignored")
	}
	if !Equal(Synthetic(5), Synthetic(5)) {
		t.Fatal("equal synthetics differ")
	}
}

func TestIsSynthetic(t *testing.T) {
	if Real([]byte("x")).IsSynthetic() {
		t.Fatal("real payload reported synthetic")
	}
	if !Synthetic(1).IsSynthetic() {
		t.Fatal("synthetic payload not reported")
	}
	// Zero-length payloads are trivially materialized.
	if Synthetic(0).IsSynthetic() {
		t.Fatal("empty payload reported synthetic")
	}
}

// Property: slicing preserves content for any valid subrange.
func TestPropertySlice(t *testing.T) {
	f := func(data []byte, offRaw, nRaw uint8) bool {
		p := Real(data)
		if p.N == 0 {
			return true
		}
		off := int64(offRaw) % p.N
		n := int64(nRaw) % (p.N - off + 1)
		s := p.Slice(off, n)
		return bytes.Equal(s.Bytes, data[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
