package cluster

import (
	"fmt"
	"sort"
	"time"

	"dpnfs/internal/ioengine"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/pvfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/simnet"
)

// memberState tracks a storage node through the elastic-membership
// lifecycle.  A removed member's fabric node and daemon keep existing (the
// simulation has no tear-down), but fault targeting, device lists, and
// newly built clients all skip it, and its device ID is never reused.
type memberState int

const (
	memberActive memberState = iota
	memberDraining
	memberRemoved
)

// member is one storage node's membership record.
type member struct {
	node  *simnet.Node
	id    pnfs.DeviceID
	state memberState
}

// Membership operation kinds.
const (
	opJoin  = "join"
	opDrain = "drain"
)

// memberOp is one scheduled membership change, applied by the in-process
// reconciliation loop at virtual offset `at` relative to the next Run.
type memberOp struct {
	kind string
	name string
	at   time.Duration
}

// membershipSupported gates the elastic operations: they drive the
// simulated fabric (dialing conns and spawning servers mid-run has no TCP
// counterpart here) and rebalance only understands the default round-robin
// aggregation.
func (cl *Cluster) membershipSupported() error {
	if cl.Cfg.Transport != TransportSim {
		return fmt.Errorf("cluster: membership changes require the simulated transport")
	}
	if cl.Cfg.Aggregation != "" {
		return fmt.Errorf("cluster: membership changes require the default round-robin aggregation (have %q)", cl.Cfg.Aggregation)
	}
	return nil
}

// AddStorageNode schedules the join of a brand-new storage node at virtual
// offset at, relative to the start of the next Run (or Reconcile).  The
// node gets a never-before-seen stable device ID; existing files are
// rebalanced onto the widened stripe in the background.
func (cl *Cluster) AddStorageNode(name string, at time.Duration) error {
	if err := cl.membershipSupported(); err != nil {
		return err
	}
	cl.memberMu.Lock()
	defer cl.memberMu.Unlock()
	if _, ok := cl.nodeByName[name]; ok {
		return fmt.Errorf("cluster: node %q already exists", name)
	}
	if _, ok := cl.devIDs[name]; ok {
		return fmt.Errorf("cluster: node name %q was a member before; device IDs are never reused", name)
	}
	for _, op := range cl.pendingOps {
		if op.name == name {
			return fmt.Errorf("cluster: node %q already has a pending membership operation", name)
		}
	}
	cl.pendingOps = append(cl.pendingOps, memberOp{kind: opJoin, name: name, at: at})
	return nil
}

// DrainNode schedules the drain of an active storage node at virtual offset
// at, relative to the start of the next Run (or Reconcile): the node stops
// receiving new placements, its data migrates to the remaining members, and
// it is then removed from membership.  Its device ID retires with it.
func (cl *Cluster) DrainNode(name string, at time.Duration) error {
	if err := cl.membershipSupported(); err != nil {
		return err
	}
	cl.memberMu.Lock()
	defer cl.memberMu.Unlock()
	m := cl.members[name]
	if m == nil {
		return fmt.Errorf("cluster: %q is not a storage member", name)
	}
	if m.state != memberActive {
		return fmt.Errorf("cluster: %q is not active (already draining or removed)", name)
	}
	if m.node == cl.mdsNode {
		return fmt.Errorf("cluster: cannot drain %q: it doubles as the metadata manager", name)
	}
	for _, op := range cl.pendingOps {
		if op.name == name {
			return fmt.Errorf("cluster: node %q already has a pending membership operation", name)
		}
	}
	cl.pendingOps = append(cl.pendingOps, memberOp{kind: opDrain, name: name, at: at})
	return nil
}

// Reconcile applies every scheduled membership operation immediately, in a
// run of its own with no application workload.
func (cl *Cluster) Reconcile() error {
	if _, err := cl.runSubset(nil, nil); err != nil {
		return err
	}
	return cl.ReconcileErr()
}

// ReconcileErr returns the most recent reconciliation failure, if any.
// Applications keep running through a failed membership operation (exactly
// as they would through a failed operator action), so callers that schedule
// ops must check this after the run.
func (cl *Cluster) ReconcileErr() error {
	cl.memberMu.Lock()
	defer cl.memberMu.Unlock()
	return cl.reconcileErr
}

// MigrationWindow returns the virtual-time window of the most recent
// rebalance (both zero when none ran).
func (cl *Cluster) MigrationWindow() (start, end time.Duration) {
	cl.memberMu.Lock()
	defer cl.memberMu.Unlock()
	return cl.migStart, cl.migEnd
}

// takePendingOps claims the scheduled operations for the run that is about
// to start, ordered by their offsets.
func (cl *Cluster) takePendingOps() []memberOp {
	cl.memberMu.Lock()
	defer cl.memberMu.Unlock()
	ops := cl.pendingOps
	cl.pendingOps = nil
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
	return ops
}

// applyMemberOp executes one scheduled membership change on the reconciler
// process.
func (cl *Cluster) applyMemberOp(ctx *rpc.Ctx, op memberOp) error {
	switch op.kind {
	case opJoin:
		return cl.applyJoin(ctx, op.name)
	case opDrain:
		return cl.applyDrain(ctx, op.name)
	}
	return fmt.Errorf("cluster: unknown membership op %q", op.kind)
}

// updateMemberGauges publishes cluster_members{state}.
func (cl *Cluster) updateMemberGauges() {
	cl.memberMu.Lock()
	var active, draining, removed int64
	for _, m := range cl.members {
		switch m.state {
		case memberActive:
			active++
		case memberDraining:
			draining++
		case memberRemoved:
			removed++
		}
	}
	cl.memberMu.Unlock()
	cl.memberGauge.With("active").Set(active)
	cl.memberGauge.With("draining").Set(draining)
	cl.memberGauge.With("removed").Set(removed)
}

// activeNodes returns the storage nodes that may receive new placements, in
// build order.
func (cl *Cluster) activeNodes() []*simnet.Node {
	cl.memberMu.Lock()
	defer cl.memberMu.Unlock()
	var out []*simnet.Node
	for _, n := range cl.storageNodes {
		if m := cl.members[n.Name]; m != nil && m.state == memberActive {
			out = append(out, n)
		}
	}
	return out
}

// distFor builds the distribution that places files across the given nodes,
// carrying their stable server IDs explicitly.
func (cl *Cluster) distFor(nodes []*simnet.Node) pvfs.DistParams {
	ids := make([]uint32, len(nodes))
	cl.memberMu.Lock()
	for i, n := range nodes {
		ids[i] = uint32(cl.devIDFor(n.Name))
	}
	cl.memberMu.Unlock()
	stripe := cl.Cfg.StripeSize
	return pvfs.DistParams{StripeSize: stripe, NumServers: uint32(len(ids)), Servers: ids}
}

// applyJoin brings a brand-new storage node into the cluster: substrate
// (disk, object store, daemon), conns on the metadata manager and every
// client library, the architecture's pNFS surface, a new default
// distribution, and a background rebalance that spreads existing files over
// the widened stripe.
func (cl *Cluster) applyJoin(ctx *rpc.Ctx, name string) error {
	diskScale := 1.0
	if cl.Cfg.Arch == ArchPNFS3Tier {
		diskScale = 1.7 // match the storage tier built at construction
	}
	n := cl.addNode(simnet.NodeConfig{Name: name, BytesPerSec: cl.Cfg.NetBPS})
	cl.addStorageSubstrate(n, diskScale)
	id := uint32(cl.devIDFor(name))
	cl.updateMemberGauges()
	// Wire the new daemon into the metadata manager and every existing
	// client library, keyed by its stable server ID.
	cl.PVFSMeta.AddIOConn(id, cl.dial(cl.mdsNode.Name, name, pvfs.ServiceIO))
	for _, ref := range cl.pvClients {
		ref.c.AddServer(id, cl.dial(ref.node.Name, name, pvfs.ServiceIO))
	}
	// Architecture surface: Direct-pNFS gets an NFS data server co-located
	// with the new daemon; the 2-tier export gets a blind data server
	// re-exporting through a fresh client library.  The 3-tier and NFSv4
	// front ends are untouched — only the parallel FS underneath widened.
	switch cl.Cfg.Arch {
	case ArchDirectPNFS:
		nfsServeOn(cl, n, ServiceDS, &directDSBackend{
			storage: cl.Storage[len(cl.Storage)-1],
			node:    n,
			costs:   cl.Cfg.PVFSCosts,
		})
	case ArchPNFS2Tier:
		cl.exportDSOn(n)
	}
	target := cl.distFor(cl.activeNodes())
	cl.PVFSMeta.SetDefaultDist(target)
	if err := cl.rebalance(ctx, target); err != nil {
		return fmt.Errorf("cluster: rebalance after join of %s: %w", name, err)
	}
	cl.publishTopology()
	return nil
}

// applyDrain marks the node read-only for placement, migrates its data to
// the remaining members, and removes it from membership.
func (cl *Cluster) applyDrain(ctx *rpc.Ctx, name string) error {
	cl.memberMu.Lock()
	m := cl.members[name]
	if m == nil || m.state != memberActive || m.node == cl.mdsNode {
		cl.memberMu.Unlock()
		return fmt.Errorf("cluster: cannot drain %q", name)
	}
	m.state = memberDraining
	cl.memberMu.Unlock()
	cl.updateMemberGauges()
	survivors := cl.activeNodes()
	if len(survivors) == 0 {
		return fmt.Errorf("cluster: cannot drain %q: no storage members would remain", name)
	}
	target := cl.distFor(survivors)
	cl.PVFSMeta.SetDefaultDist(target)
	if err := cl.rebalance(ctx, target); err != nil {
		return fmt.Errorf("cluster: rebalance draining %s: %w", name, err)
	}
	// All data is off the node: remove it from membership.  Fault events
	// aimed at it become counted no-ops from here on.
	cl.memberMu.Lock()
	m.state = memberRemoved
	cl.memberMu.Unlock()
	delete(cl.diskByNode, name)
	delete(cl.storageByNode, name)
	cl.updateMemberGauges()
	cl.publishTopology()
	return nil
}

// publishTopology pushes the post-change geometry to every pNFS surface:
// device lists and the new layout generation on the metadata backends,
// placement-aware (dynamic) mode on the exports, and layout invalidation on
// every NFS client — the in-process stand-in for CB_LAYOUTRECALL.
func (cl *Cluster) publishTopology() {
	cl.memberMu.Lock()
	cl.layoutGen++
	gen := cl.layoutGen
	cl.memberMu.Unlock()
	active := cl.activeNodes()
	if cl.directMDS != nil {
		cl.directMDS.setDevices(cl.deviceList(active), gen)
	}
	if cl.blind != nil {
		if cl.Cfg.Arch == ArchPNFS2Tier {
			// 2-tier data servers ride the storage nodes, so the blind
			// device list follows membership.
			cl.blind.set(cl.deviceList(active), gen)
		} else {
			// 3-tier: the dedicated data-server tier is unchanged, but the
			// layouts still move to the new generation so clients refetch.
			cl.blind.setGen(gen)
		}
	}
	for _, b := range cl.exports {
		b.setDynamic(gen)
	}
	for _, c := range cl.nfsClients {
		c.InvalidateLayouts()
	}
}

// rebalance copies every file whose placement differs from target onto
// target, through two Background-class PVFS2 client libraries on the
// metadata node: a fast-failing one for the first pass and a patient one
// for the single re-issue pass.  Chunks are written with Sync so every
// acknowledged byte is on stable storage before the placement flips, and
// source objects are left in place so reads under the previous layout
// generation stay correct until every client has been invalidated.  The
// Background class keeps migration inside the engines' BackgroundShare
// window slots, protecting foreground latency.
func (cl *Cluster) rebalance(ctx *rpc.Ctx, target pvfs.DistParams) error {
	cl.memberMu.Lock()
	cl.migStart = time.Duration(cl.K.Now())
	cl.memberMu.Unlock()
	defer func() {
		cl.memberMu.Lock()
		cl.migEnd = time.Duration(cl.K.Now())
		cl.memberMu.Unlock()
	}()
	mig := cl.pvfsClientWith(cl.mdsNode, ioengine.Background, "rebalance",
		rpc.RetryPolicy{Max: 2, Base: 50 * time.Millisecond, Cap: 100 * time.Millisecond})
	patient := cl.pvfsClientWith(cl.mdsNode, ioengine.Background, "rebalance", rpc.RetryPolicy{})
	files, err := cl.listFiles(ctx, patient)
	if err != nil {
		return err
	}
	for i, h := range files {
		if err := cl.migrateFile(ctx, mig, patient, h, i, target); err != nil {
			return err
		}
	}
	return nil
}

// listFiles walks the namespace from the root and returns every regular
// file's handle, in deterministic (sorted, depth-first) order.
func (cl *Cluster) listFiles(ctx *rpc.Ctx, c *pvfs.Client) ([]pvfs.Handle, error) {
	var files []pvfs.Handle
	var walk func(dir pvfs.Handle) error
	walk = func(dir pvfs.Handle) error {
		names, err := c.ReadDirH(ctx, dir)
		if err != nil {
			return err
		}
		sort.Strings(names)
		for _, name := range names {
			h, isDir, err := c.LookupH(ctx, dir, name)
			if err != nil {
				return err
			}
			if isDir {
				if err := walk(h); err != nil {
					return err
				}
				continue
			}
			files = append(files, h)
		}
		return nil
	}
	if err := walk(c.RootHandle()); err != nil {
		return nil, err
	}
	return files, nil
}

// sameDist reports whether two distributions place bytes identically.
func sameDist(a, b pvfs.DistParams) bool {
	if a.StripeSize != b.StripeSize {
		return false
	}
	ai, bi := a.ServerIDs(), b.ServerIDs()
	if len(ai) != len(bi) {
		return false
	}
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	return true
}

// migrateFile moves one file onto target: shadow objects are created on the
// target servers, data is copied chunk by chunk (Sync'd, so acknowledged
// bytes are durable under WAL-backed stores), failed chunks are re-issued
// exactly once through the patient client, and only then does the
// placement flip.  A crash mid-copy therefore leaves the old placement
// fully intact.
func (cl *Cluster) migrateFile(ctx *rpc.Ctx, mig, patient *pvfs.Client, h pvfs.Handle, fileIdx int, target pvfs.DistParams) error {
	place := cl.PVFSMeta.PlacementOf(h)
	if sameDist(place.Dist, target) {
		return nil
	}
	shadow, err := cl.PVFSMeta.PrepareMigrate(ctx, h)
	if err != nil {
		return fmt.Errorf("cluster: prepare migrate %x: %w", uint64(h), err)
	}
	src := mig.OpenPlaced(h, place.Data, place.Dist)
	dst := mig.OpenPlaced(h, shadow.Data, shadow.Dist)
	srcP := patient.OpenPlaced(h, place.Data, place.Dist)
	dstP := patient.OpenPlaced(h, shadow.Data, shadow.Dist)
	size, err := patient.GetAttr(ctx, srcP)
	if err != nil {
		return err
	}
	chunk := target.StripeSize * int64(len(target.ServerIDs()))
	if chunk <= 0 {
		chunk = target.StripeSize
	}
	type span struct{ off, n int64 }
	var pending []span
	for off, ci := int64(0), 0; off < size; off, ci = off+chunk, ci+1 {
		n := size - off
		if n > chunk {
			n = chunk
		}
		if hook := cl.migChunkHook; hook != nil {
			hook(fileIdx, ci)
		}
		if err := copySpan(ctx, mig, src, dst, off, n, cl.Cfg.Real); err != nil {
			// First-pass failure (a crashed source node, say): remember the
			// span; the single re-issue pass below retries it patiently.
			pending = append(pending, span{off, n})
			continue
		}
		cl.rebalanceBytes.Add(uint64(n))
	}
	if len(pending) > 0 {
		if hook := cl.migReissueHook; hook != nil {
			hook()
		}
		for _, p := range pending {
			cl.rebalanceReissued.Inc()
			if err := copySpan(ctx, patient, srcP, dstP, p.off, p.n, cl.Cfg.Real); err != nil {
				return fmt.Errorf("cluster: re-issued migration chunk %x@%d: %w", uint64(h), p.off, err)
			}
			cl.rebalanceBytes.Add(uint64(p.n))
		}
	}
	cl.PVFSMeta.CommitMigrate(h, shadow)
	// Trailing holes would shrink the size reconstructed from the new
	// objects; publish the exact logical size onto the new placement.
	if err := patient.Truncate(ctx, dstP, size); err != nil {
		return err
	}
	cl.rebalanceFiles.Inc()
	return nil
}

// copySpan copies [off, off+n) from src to dst through client c, syncing
// the written chunk to stable storage.
func copySpan(ctx *rpc.Ctx, c *pvfs.Client, src, dst *pvfs.File, off, n int64, real bool) error {
	data, got, err := c.Read(ctx, src, off, n, real)
	if err != nil {
		return err
	}
	if got == 0 {
		return nil // a hole: nothing to carry over
	}
	_, err = c.Write(ctx, dst, off, data, true)
	return err
}
