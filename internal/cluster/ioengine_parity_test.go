package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// driveEngineWorkload writes a deterministic pattern through a Real
// simulated cluster with the given engine knobs and reads it back cold.
// Mixed request sizes cross stripe-unit boundaries (multi-extent fan-out),
// the tiny MaxTransfer forces request splitting, and small sequential
// re-reads make adjacent missing chunks coalesce — every engine feature is
// on the data path.
func driveEngineWorkload(t *testing.T, arch Arch, wave bool, window int) [][]byte {
	t.Helper()
	const (
		clients  = 2
		stripe   = 64 << 10
		fileSize = 300<<10 + 17
		rchunk   = 8 << 10
	)
	wchunks := []int64{50_000, 512, 130_000, 8 << 10}
	cl := New(Config{
		Arch:        arch,
		Clients:     clients,
		Backends:    4,
		StripeSize:  stripe,
		WSize:       stripe,
		RSize:       stripe,
		MaxFlight:   window,
		MaxTransfer: 20_000, // misaligned: splits nearly every extent
		IOWave:      wave,
		Real:        true,
	})
	defer cl.Close()

	path := func(i int) string { return fmt.Sprintf("/f%d", i) }
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, path(i))
		if err != nil {
			return err
		}
		for off, k := int64(0), 0; off < fileSize; k++ {
			n := wchunks[k%len(wchunks)]
			if off+n > fileSize {
				n = fileSize - off
			}
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = parityPattern(i, off+int64(j))
			}
			if err := m.Write(ctx, f, off, payload.Real(buf)); err != nil {
				return err
			}
			off += n
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("%s wave=%v write phase: %v", arch, wave, err)
	}

	out := make([][]byte, clients)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		m.DropCaches()
		f, err := m.Open(ctx, path(i))
		if err != nil {
			return err
		}
		got := make([]byte, 0, fileSize)
		for off := int64(0); off < fileSize; off += rchunk {
			data, n, err := m.Read(ctx, f, off, rchunk)
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("unexpected EOF at %d", off)
			}
			if data.Bytes == nil {
				return fmt.Errorf("synthetic payload at %d on a Real mount", off)
			}
			got = append(got, data.Bytes...)
		}
		out[i] = got
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("%s wave=%v read phase: %v", arch, wave, err)
	}
	return out
}

// TestIOEngineParityAllArchitectures is the refactor's correctness pin
// (ISSUE 4): on all five architectures, data routed through the I/O
// engine's sliding window — with coalescing and MaxTransfer splitting
// engaged — reads back byte-identical to the written pattern, and the wave
// schedule (the pre-engine dispatch) produces exactly the same bytes.
func TestIOEngineParityAllArchitectures(t *testing.T) {
	for _, arch := range Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			window := driveEngineWorkload(t, arch, false, 3)
			wave := driveEngineWorkload(t, arch, true, 3)
			for i := range window {
				for off, b := range window[i] {
					if want := parityPattern(i, int64(off)); b != want {
						t.Fatalf("client %d: byte %d = %#x, want %#x", i, off, b, want)
					}
				}
				if !bytes.Equal(window[i], wave[i]) {
					t.Fatalf("client %d: wave-mode read-back differs from sliding window (lens %d vs %d)",
						i, len(wave[i]), len(window[i]))
				}
			}
		})
	}
}
