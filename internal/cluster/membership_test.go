package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dpnfs/internal/faults"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/rpc"
)

// memberPattern is the per-file corpus the membership tests write and then
// demand back byte-identically after the topology has changed underneath it.
func memberPattern(i, size int) []byte {
	data := make([]byte, size)
	for j := range data {
		data[j] = byte((j*7 + i*13) % 251)
	}
	return data
}

// writeMemberCorpus writes each client's pattern file and syncs it.
func writeMemberCorpus(cl *Cluster, size int) error {
	_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/member.%d", i))
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Real(memberPattern(i, size))); err != nil {
			return err
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	})
	return err
}

// verifyMemberCorpus reads every pattern file back through the full protocol
// stack and compares bytes.
func verifyMemberCorpus(cl *Cluster, size int) error {
	_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Open(ctx, fmt.Sprintf("/member.%d", i))
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		want := memberPattern(i, size)
		got, n, err := m.Read(ctx, f, 0, int64(size))
		if err != nil || n != int64(size) {
			return fmt.Errorf("read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got.Bytes, want) {
			return fmt.Errorf("data corrupted after membership change")
		}
		return m.Close(ctx, f)
	})
	return err
}

func TestJoinWidensClusterAndPreservesData(t *testing.T) {
	const size = 300_000
	for _, arch := range Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			cl := New(Config{Arch: arch, Clients: 2, Real: true, StripeSize: 64 << 10})
			defer cl.Close()
			if err := writeMemberCorpus(cl, size); err != nil {
				t.Fatal(err)
			}
			before := len(cl.activeNodes())
			if err := cl.AddStorageNode("io9", 0); err != nil {
				t.Fatal(err)
			}
			if err := cl.Reconcile(); err != nil {
				t.Fatal(err)
			}
			if got := len(cl.activeNodes()); got != before+1 {
				t.Fatalf("active members %d, want %d", got, before+1)
			}
			if cl.rebalanceBytes.Value() == 0 {
				t.Fatal("join migrated no bytes")
			}
			if cl.rebalanceFiles.Value() == 0 {
				t.Fatal("join moved no files")
			}
			if err := verifyMemberCorpus(cl, size); err != nil {
				t.Fatal(err)
			}
			// New data spreads onto the joined node's daemon.
			if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				f, err := m.Create(ctx, fmt.Sprintf("/post.%d", i))
				if err != nil {
					return err
				}
				if err := m.Write(ctx, f, 0, payload.Synthetic(1<<20)); err != nil {
					return err
				}
				if err := m.Fsync(ctx, f); err != nil {
					return err
				}
				return m.Close(ctx, f)
			}); err != nil {
				t.Fatal(err)
			}
			joined := cl.storageByNode["io9"]
			if joined == nil {
				t.Fatal("joined node has no storage daemon")
			}
			at, err := cl.PVFSMeta.Namespace().LookupPath("/post.0")
			if err != nil {
				t.Fatal(err)
			}
			if joined.ObjectSize(pvfsHandle(at.ID)) == 0 {
				t.Fatal("post-join writes put no bytes on the joined node")
			}
		})
	}
}

func TestDrainRetiresDeviceIDAndPreservesData(t *testing.T) {
	const size = 300_000
	for _, arch := range Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			cl := New(Config{Arch: arch, Clients: 2, Real: true, StripeSize: 64 << 10})
			defer cl.Close()
			if err := writeMemberCorpus(cl, size); err != nil {
				t.Fatal(err)
			}
			drainedID, ok := cl.devIDs["io1"]
			if !ok {
				t.Fatal("io1 has no device ID")
			}
			survivorIDs := map[string]uint32{}
			for name, id := range cl.devIDs {
				if name != "io1" {
					survivorIDs[name] = uint32(id)
				}
			}
			if err := cl.DrainNode("io1", 0); err != nil {
				t.Fatal(err)
			}
			if err := cl.Reconcile(); err != nil {
				t.Fatal(err)
			}
			if st := cl.members["io1"].state; st != memberRemoved {
				t.Fatalf("io1 state %v after drain, want removed", st)
			}
			// Survivors keep their stable IDs: a drain must never re-index
			// the remaining devices (the positional-aliasing bug).
			for name, want := range survivorIDs {
				if got := uint32(cl.devIDs[name]); got != want {
					t.Fatalf("%s device ID changed %d -> %d across drain", name, want, got)
				}
			}
			// The drained name may not rejoin: its device ID is retired.
			if err := cl.AddStorageNode("io1", 0); err == nil {
				t.Fatal("re-adding a drained node name was accepted")
			}
			// A fresh node gets a fresh ID, never the retired one.
			if err := cl.AddStorageNode("io9", 0); err != nil {
				t.Fatal(err)
			}
			if err := cl.Reconcile(); err != nil {
				t.Fatal(err)
			}
			if cl.devIDs["io9"] == drainedID {
				t.Fatalf("retired device ID %d was reused by io9", drainedID)
			}
			if err := verifyMemberCorpus(cl, size); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFaultsOnDrainedNodeAreCountedNoOps(t *testing.T) {
	// The plan targets io1 — written against the original topology — but by
	// the time it is armed the node has been drained away.  Every event must
	// become a counted no-op instead of a fabric-lookup panic.
	plan := faults.NewPlan(1,
		faults.StorageNodeCrash{At: 10 * time.Millisecond, Node: "io1"},
		faults.SlowDisk{At: 20 * time.Millisecond, Node: "io1", Factor: 4},
		faults.LinkDegrade{At: 30 * time.Millisecond, Node: "io1", Loss: 0.5},
		faults.StorageNodeRestart{At: 40 * time.Millisecond, Node: "io1"},
	)
	cl := New(Config{Arch: ArchDirectPNFS, Clients: 1, Real: true, StripeSize: 64 << 10, Faults: plan})
	defer cl.Close()
	cl.ArmFaults(false)
	if err := writeMemberCorpus(cl, 300_000); err != nil {
		t.Fatal(err)
	}
	if err := cl.DrainNode("io1", 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Reconcile(); err != nil {
		t.Fatal(err)
	}
	cl.ArmFaults(true)
	// The measured run outlives the last event, so the driver drains the
	// whole plan against the post-drain topology.
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		ctx.Sleep(60 * time.Millisecond)
		f, err := m.Open(ctx, fmt.Sprintf("/member.%d", i))
		if err != nil {
			return err
		}
		if _, n, err := m.Read(ctx, f, 0, 300_000); err != nil || n != 300_000 {
			return fmt.Errorf("read under stale plan: n=%d err=%v", n, err)
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatal(err)
	}
	var skipped uint64
	for _, kind := range []string{"node-down", "disk-slow", "link"} {
		skipped += cl.skippedFaults.With(kind, "io1").Value()
	}
	if skipped < 4 {
		t.Fatalf("faults_skipped_total counted %d skips for io1, want all 4 plan events", skipped)
	}
	// Direct calls against a never-known node are counted no-ops too.
	cl.SetNodeDown("no-such-node", true)
	if got := cl.skippedFaults.With("node-down", "no-such-node").Value(); got != 1 {
		t.Fatalf("unknown-node skip count = %d, want 1", got)
	}
}

func TestMembershipValidation(t *testing.T) {
	cl := New(Config{Arch: ArchDirectPNFS, Clients: 1})
	defer cl.Close()
	if err := cl.AddStorageNode("io1", 0); err == nil {
		t.Fatal("adding an existing node was accepted")
	}
	if err := cl.DrainNode("io0", 0); err == nil {
		t.Fatal("draining the metadata node was accepted")
	}
	if err := cl.DrainNode("nope", 0); err == nil {
		t.Fatal("draining an unknown node was accepted")
	}
	if err := cl.AddStorageNode("io9", 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.DrainNode("io9", time.Second); err == nil {
		t.Fatal("second pending op for the same node was accepted")
	}
	if err := cl.Reconcile(); err != nil {
		t.Fatal(err)
	}
	cl2 := New(Config{Arch: ArchDirectPNFS, Clients: 1, Aggregation: pnfs.AggReplicated})
	defer cl2.Close()
	if err := cl2.AddStorageNode("io9", 0); err == nil {
		t.Fatal("membership with custom aggregation was accepted")
	}
}

func TestCrashDuringDrainReissuesPendingChunksOnce(t *testing.T) {
	// The drained node is WAL-backed and killed mid-migration: its volatile
	// store image is discarded while chunks are still being copied off it.
	// First-pass copies fail fast, the reconciler restarts the node (WAL
	// replay restores every acknowledged byte) and re-issues exactly the
	// pending chunks once, and the corpus must read back byte-identical on
	// the post-drain topology.
	const size = 1 << 20
	for _, arch := range Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			cl := New(Config{
				Arch: arch, Clients: 2, Real: true,
				StripeSize: 64 << 10, Backend: BackendWAL,
			})
			defer cl.Close()
			if err := writeMemberCorpus(cl, size); err != nil {
				t.Fatal(err)
			}
			crashed := false
			reissues := 0
			cl.migChunkHook = func(file, chunk int) {
				if !crashed && file == 0 && chunk == 1 {
					crashed = true
					cl.CrashVolatile("io1")
					cl.SetNodeDown("io1", true)
				}
			}
			cl.migReissueHook = func() {
				reissues++
				cl.RestartVolatile("io1")
				cl.SetNodeDown("io1", false)
			}
			if err := cl.DrainNode("io1", 0); err != nil {
				t.Fatal(err)
			}
			if err := cl.Reconcile(); err != nil {
				t.Fatal(err)
			}
			if !crashed {
				t.Fatal("the crash hook never fired: migration had no second chunk")
			}
			if reissues != 1 {
				t.Fatalf("re-issue pass ran %d times, want exactly 1", reissues)
			}
			if cl.rebalanceReissued.Value() == 0 {
				t.Fatal("no chunks were re-issued despite the mid-migration crash")
			}
			if err := verifyMemberCorpus(cl, size); err != nil {
				t.Fatal(err)
			}
		})
	}
}
