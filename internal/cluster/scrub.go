// Background scrub wiring: one scrub.Scrubber per storage node, repairing
// from the node's replica partners when the substrate is replicated
// (DistParams.Copies via distCopies).  Passes run either synchronously
// (ScrubPass, for tests and operator tooling) or on a schedule replayed
// relative to a workload run's start (ScheduleScrub + the scrub-driver in
// runSubsetInner), mirroring the faults-driver idiom so scheduled passes
// are deterministic under seed replay.

package cluster

import (
	"fmt"
	"time"

	"dpnfs/internal/pvfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/scrub"
	"dpnfs/internal/sim"
	"dpnfs/internal/store"
	"dpnfs/internal/xdr"
)

// ScrubOutcome records one node's pass within one scheduled or synchronous
// scrub: when it ran (offset into the run for scheduled passes, zero for
// synchronous ones), what it found, and whether the scan itself failed.
type ScrubOutcome struct {
	Node   string
	At     time.Duration
	Result scrub.Result
	Err    error
}

// Scrubbers returns the per-node scanners, building them on first use.
// Nodes whose store backend cannot be scanned (no Walk/Extents surface) are
// skipped; all three shipped backends qualify.
func (cl *Cluster) Scrubbers() []*scrub.Scrubber {
	cl.scrubOnce.Do(cl.buildScrubbers)
	return cl.scrubbers
}

func (cl *Cluster) buildScrubbers() {
	copies := int(cl.distCopies(len(cl.storageNodes)))
	for i, n := range cl.storageNodes {
		ss := cl.storageByNode[n.Name]
		src, ok := ss.Store().(scrub.Source)
		if !ok {
			continue
		}
		var fetch scrub.Fetch
		if copies > 1 {
			// Only a replicated substrate has anywhere to repair from; an
			// unreplicated scrubber still detects and counts.
			fetch = cl.replicaFetch(i, copies, ss)
		}
		cl.scrubbers = append(cl.scrubbers, scrub.New(scrub.Config{
			Node:    n.Name,
			Store:   src,
			Fetch:   fetch,
			RateBPS: cl.Cfg.ScrubRateBPS,
			Metrics: cl.Cfg.Metrics,
		}))
	}
}

// replicaFetch builds the repair source for storage node dev: good bytes are
// read from the node's replica partners (device d's partners are d%inner +
// r*inner — the same geometry stripe.Replicated fans writes over, so every
// partner holds a byte-identical object at the same offset) over the normal
// io-read procedure, with wire-checksum verification when enabled.  The
// store file is reverse-mapped to its datafile handle, which the metadata
// server allocated identically on every daemon.
func (cl *Cluster) replicaFetch(dev, copies int, ss *pvfs.StorageServer) scrub.Fetch {
	inner := len(cl.storageNodes) / copies
	node := cl.storageNodes[dev].Name
	conns := make(map[int]rpc.Conn)
	return func(ctx *rpc.Ctx, id store.FileID, off int64, b []byte) (int, error) {
		h, ok := ss.HandleFor(id)
		if !ok {
			return 0, fmt.Errorf("scrub %s: store file %d has no datafile handle", node, id)
		}
		base := dev % inner
		for r := 0; r < copies; r++ {
			d := base + r*inner
			if d == dev {
				continue
			}
			conn := conns[d]
			if conn == nil {
				conn = cl.dial(node, cl.storageNodes[d].Name, pvfs.ServiceIO)
				conns[d] = conn
			}
			var rep pvfs.IOReadRep
			args := &pvfs.IOReadArgs{Handle: h, Off: off, Len: int64(len(b)), WantReal: true}
			if err := conn.Call(ctx, pvfs.ProcIORead, args, &rep); err != nil || rep.Errno != 0 {
				continue // down or corrupt partner: try the next one
			}
			if rep.Data.Bytes == nil {
				continue
			}
			if rep.HasSum && xdr.Checksum(rep.Data.Bytes) != rep.Sum {
				rep.Data.Release()
				continue
			}
			n := copy(b, rep.Data.Bytes)
			rep.Data.Release()
			return n, nil
		}
		return 0, fmt.Errorf("scrub %s: no live replica for file %d @%d", node, id, off)
	}
}

// ScheduleScrub queues full-cluster scrub passes at the given offsets into
// the next Run, replayed by the scrub-driver exactly as fault plans are.
func (cl *Cluster) ScheduleScrub(at ...time.Duration) {
	cl.scrubMu.Lock()
	cl.scrubTimes = append(cl.scrubTimes, at...)
	cl.scrubMu.Unlock()
}

// takeScrubTimes steals the queued pass times for the run about to start.
func (cl *Cluster) takeScrubTimes() []time.Duration {
	cl.scrubMu.Lock()
	defer cl.scrubMu.Unlock()
	times := cl.scrubTimes
	cl.scrubTimes = nil
	return times
}

// ScrubPass runs one synchronous full-cluster pass (every node, in node
// order) and returns the per-node outcomes.  On the simulated transport the
// pass runs as its own kernel process so pacing and background scheduling
// charge virtual time; over TCP it runs inline on the wall clock.  The
// returned error is the first scan failure, if any — corruption found and
// repaired is a result, not an error.
func (cl *Cluster) ScrubPass() ([]ScrubOutcome, error) {
	var outs []ScrubOutcome
	if cl.Cfg.Transport == TransportTCP {
		outs = cl.scrubPassCtx(&rpc.Ctx{}, 0)
	} else {
		cl.K.Go("scrub-pass", func(p *sim.Proc) {
			outs = cl.scrubPassCtx(&rpc.Ctx{P: p}, 0)
		})
		if err := cl.K.Run(); err != nil {
			return nil, err
		}
	}
	for _, o := range outs {
		if o.Err != nil {
			return outs, o.Err
		}
	}
	return outs, nil
}

// scrubPassCtx scans every node sequentially (the deterministic order seed
// replay depends on) and records the outcomes.
func (cl *Cluster) scrubPassCtx(ctx *rpc.Ctx, at time.Duration) []ScrubOutcome {
	var outs []ScrubOutcome
	for _, s := range cl.Scrubbers() {
		res, err := s.Pass(ctx)
		outs = append(outs, ScrubOutcome{Node: s.Node(), At: at, Result: res, Err: err})
	}
	cl.scrubMu.Lock()
	cl.scrubResults = append(cl.scrubResults, outs...)
	cl.scrubMu.Unlock()
	return outs
}

// ScrubResults returns every recorded pass outcome, oldest first.
func (cl *Cluster) ScrubResults() []ScrubOutcome {
	cl.scrubMu.Lock()
	defer cl.scrubMu.Unlock()
	return append([]ScrubOutcome(nil), cl.scrubResults...)
}
