package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dpnfs/internal/faults"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/rpc"
)

// integrityCluster builds a replicated cluster for the integrity suites:
// every stripe stored twice, real payloads (there have to be bytes to rot),
// and wire checksums on.  3-tier halves its backends into storage nodes, so
// it gets eight to keep the copy count dividing the storage-node count.
func integrityCluster(arch Arch, plan *faults.Plan) *Cluster {
	backends := 6
	if arch == ArchPNFS3Tier {
		backends = 8
	}
	return New(Config{
		Arch: arch, Clients: 2, Backends: backends, Real: true,
		StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
		Aggregation:   pnfs.AggReplicated,
		AggParams:     []int64{2, 64 << 10},
		WireChecksums: true,
		Faults:        plan,
	})
}

// populateIntegrity writes each client's distinct pattern with faults
// disarmed, so both replicas hold clean, complete copies.
func populateIntegrity(t *testing.T, cl *Cluster, fileSize int) {
	t.Helper()
	cl.ArmFaults(false)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/rot.%d", i))
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Real(failoverPattern(i, fileSize))); err != nil {
			return err
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("populate: %v", err)
	}
	cl.ArmFaults(true)
}

// readBackIntegrity cold-reads the full corpus and fails on the first byte
// that differs from what was written — the "zero corrupt bytes delivered"
// half of the end-to-end integrity contract.
func readBackIntegrity(t *testing.T, cl *Cluster, fileSize, step int, settle time.Duration) {
	t.Helper()
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		if settle > 0 {
			// Let the scheduled bit-rot land before the reads begin.
			ctx.P.Sleep(settle)
		}
		m.DropCaches()
		f, err := m.Open(ctx, fmt.Sprintf("/rot.%d", i))
		if err != nil {
			return err
		}
		want := failoverPattern(i, fileSize)
		for off := 0; off < fileSize; off += step {
			got, n, err := m.Read(ctx, f, int64(off), int64(step))
			if err != nil {
				return fmt.Errorf("read at %d: %w", off, err)
			}
			if n != int64(step) {
				return fmt.Errorf("read at %d: got %d bytes, want %d", off, n, step)
			}
			if !bytes.Equal(got.Bytes, want[off:off+step]) {
				return fmt.Errorf("client %d: corrupt bytes delivered at offset %d", i, off)
			}
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("read back: %v", err)
	}
}

// repairSum totals foreground read-repairs across both client stacks (the
// NFS family repairs through pNFS layouts, the PVFS2 family — which also
// backs the NFSv4 export and the 2/3-tier data servers — through the
// substrate's replica map).
func repairSum(cl *Cluster) float64 {
	return counterSum(cl, "nfs_client_read_repairs_total") +
		counterSum(cl, "pvfs_client_read_repairs_total")
}

// TestBitRotRepairAllArchitectures is the acceptance suite: on every
// architecture, bit rot lands on every storage node of a replicated cluster
// after the corpus is written, and a full cold read must (a) deliver every
// byte exactly as written, and (b) visibly engage the detection and repair
// machinery — at least one corruption injected and at least one extent
// read-repaired from a replica, not silently tolerated.
func TestBitRotRepairAllArchitectures(t *testing.T) {
	const (
		fileSize = 512 << 10
		step     = 64 << 10
		rotAt    = 5 * time.Millisecond
	)
	for _, arch := range Archs {
		t.Run(string(arch), func(t *testing.T) {
			// Rot only the primary replica group (devices 0..inner-1): the
			// mirror group stays clean, so every corrupt chunk has a live
			// good copy to repair from.  (Rotting all nodes can corrupt
			// both copies of the same chunk, which is data loss by design.)
			inner := 3
			if arch == ArchPNFS3Tier {
				inner = 2
			}
			var events []faults.Event
			for d := 0; d < inner; d++ {
				events = append(events, faults.BitRot{
					At:   rotAt + time.Duration(d)*time.Millisecond,
					Node: fmt.Sprintf("io%d", d),
					Seed: int64(100 + d),
				})
			}
			cl := integrityCluster(arch, faults.NewPlan(1, events...))
			defer cl.Close()

			populateIntegrity(t, cl, fileSize)
			readBackIntegrity(t, cl, fileSize, step, 50*time.Millisecond)

			if got := counterSum(cl, "faults_injected_total"); got < 1 {
				t.Fatalf("faults_injected_total = %v, want >= 1 (no rot injected)", got)
			}
			if got := counterSum(cl, "nfs_client_corrupt_reads_total") +
				counterSum(cl, "pvfs_client_corrupt_reads_total"); got < 1 {
				t.Fatalf("no corrupt read ever detected — the rot was never exercised")
			}
			if got := repairSum(cl); got < 1 {
				t.Fatalf("read repairs = %v, want >= 1 — corruption was retried, not repaired", got)
			}
		})
	}
}

// TestScrubRepairsLatentRot exercises the background path: rot lands while
// nobody is reading (a latent fault), a scrub pass finds and repairs every
// instance from the replicas, a second pass confirms the stores are clean,
// and the subsequent cold read needs zero foreground repairs.
func TestScrubRepairsLatentRot(t *testing.T) {
	const fileSize = 512 << 10
	var events []faults.Event
	for d := 0; d < 3; d++ { // primary replica group only
		events = append(events, faults.BitRot{
			At:   5 * time.Millisecond,
			Node: fmt.Sprintf("io%d", d),
			Seed: int64(200 + d),
		})
	}
	cl := integrityCluster(ArchPVFS2, faults.NewPlan(1, events...))
	defer cl.Close()
	populateIntegrity(t, cl, fileSize)

	// Apply the rot with no foreground reads in flight: the kernel drains
	// the fault plan even though the applications return immediately.
	// Disarm afterwards — an armed plan replays on every Run, and this
	// test needs the rot to stay latent, not re-injected behind the scrub.
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error { return nil }); err != nil {
		t.Fatalf("rot run: %v", err)
	}
	cl.ArmFaults(false)

	outs, err := cl.ScrubPass()
	if err != nil {
		t.Fatalf("scrub pass: %v", err)
	}
	var found, repaired int
	for _, o := range outs {
		found += o.Result.Found
		repaired += o.Result.Repaired
	}
	if found < 1 {
		t.Fatalf("scrub found %d corrupt chunks, want >= 1 (rot never landed?)", found)
	}
	if repaired != found {
		t.Fatalf("scrub repaired %d of %d corrupt chunks", repaired, found)
	}
	if got := counterSum(cl, "scrub_repaired_total"); got != float64(repaired) {
		t.Fatalf("scrub_repaired_total = %v, want %d", got, repaired)
	}

	// A second pass over the repaired stores finds nothing.
	outs, err = cl.ScrubPass()
	if err != nil {
		t.Fatalf("second scrub pass: %v", err)
	}
	for _, o := range outs {
		if o.Result.Found != 0 {
			t.Fatalf("node %s still corrupt after repair: %+v", o.Node, o.Result)
		}
	}

	// The foreground never sees the rot: bytes are right and no read had
	// to repair anything — the scrubber got there first.
	readBackIntegrity(t, cl, fileSize, 64<<10, 0)
	if got := repairSum(cl); got != 0 {
		t.Fatalf("foreground repaired %v extents after a clean scrub", got)
	}
}

// TestScheduledScrubRunsInBackground drives the scrub-driver path: a pass
// scheduled mid-run repairs rot injected earlier in the same run, while the
// applications keep reading — and the recorded outcome carries the repairs.
func TestScheduledScrubRunsInBackground(t *testing.T) {
	const fileSize = 256 << 10
	var events []faults.Event
	for d := 0; d < 3; d++ { // primary replica group only
		events = append(events, faults.BitRot{
			At:   2 * time.Millisecond,
			Node: fmt.Sprintf("io%d", d),
			Seed: int64(300 + d),
		})
	}
	cl := integrityCluster(ArchPVFS2, faults.NewPlan(1, events...))
	defer cl.Close()
	populateIntegrity(t, cl, fileSize)

	cl.ScheduleScrub(20 * time.Millisecond)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		ctx.P.Sleep(200 * time.Millisecond) // outlive the scheduled pass
		return nil
	}); err != nil {
		t.Fatalf("run with scheduled scrub: %v", err)
	}

	outs := cl.ScrubResults()
	if len(outs) == 0 {
		t.Fatal("scheduled scrub never ran")
	}
	var repaired int
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("scrub outcome on %s: %v", o.Node, o.Err)
		}
		if o.At != 20*time.Millisecond {
			t.Fatalf("outcome recorded at %v, want the scheduled 20ms", o.At)
		}
		repaired += o.Result.Repaired
	}
	if repaired < 1 {
		t.Fatalf("scheduled scrub repaired %d chunks, want >= 1", repaired)
	}
	cl.ArmFaults(false) // the armed plan would replay into the read run
	readBackIntegrity(t, cl, fileSize, 64<<10, 0)
}

// TestScrubDeterministicUnderSeedReplay pins the acceptance requirement:
// identically seeded clusters running the identical rot-then-scrub sequence
// produce identical pass reports and identical repair counters.
func TestScrubDeterministicUnderSeedReplay(t *testing.T) {
	const fileSize = 384 << 10
	type trace struct {
		outs     []ScrubOutcome
		repaired float64
		found    float64
	}
	runOnce := func() trace {
		var events []faults.Event
		for d := 0; d < 3; d++ { // primary replica group only
			events = append(events, faults.BitRot{
				At:   5 * time.Millisecond,
				Node: fmt.Sprintf("io%d", d),
				Seed: int64(400 + d),
			})
		}
		cl := integrityCluster(ArchDirectPNFS, faults.NewPlan(7, events...))
		defer cl.Close()
		populateIntegrity(t, cl, fileSize)
		if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error { return nil }); err != nil {
			t.Fatalf("rot run: %v", err)
		}
		outs, err := cl.ScrubPass()
		if err != nil {
			t.Fatalf("scrub: %v", err)
		}
		return trace{
			outs:     outs,
			repaired: counterSum(cl, "scrub_repaired_total"),
			found:    counterSum(cl, "scrub_errors_found_total"),
		}
	}
	a, b := runOnce(), runOnce()
	if fmt.Sprintf("%+v", a.outs) != fmt.Sprintf("%+v", b.outs) {
		t.Fatalf("scrub reports diverged under seed replay:\n%+v\nvs\n%+v", a.outs, b.outs)
	}
	if a.repaired != b.repaired || a.found != b.found {
		t.Fatalf("scrub counters diverged: (%v,%v) vs (%v,%v)",
			a.found, a.repaired, b.found, b.repaired)
	}
	if a.found < 1 {
		t.Fatal("replayed scrub found nothing (vacuous)")
	}
}
