package cluster

import (
	"fmt"

	"dpnfs/internal/metrics"
	"dpnfs/internal/simdisk"
	"dpnfs/internal/store"
	"dpnfs/internal/store/cached"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/store/wal"
)

// Backend kinds accepted by Config.Backend and dpnfs-serve -backend.
// docs/BACKENDS.md describes the trade-offs.
const (
	// BackendMem is the default: purely volatile in-memory stores, the
	// pre-durability behaviour every figure is calibrated against.
	BackendMem = "mem"
	// BackendWAL journals every mutation to the node's simulated disk
	// before acknowledging; crash events lose nothing that was synced.
	BackendWAL = "wal"
	// BackendCached stages data writes in memory and journals them at
	// sync/COMMIT points — the NFS unstable-write model as a backend.
	BackendCached = "cached"
)

// StoreFactory builds one server's store.  node names the server for
// metrics ("io0", "mds", ...), disk is the node's simulated disk (nil on
// diskless nodes and in TCP mode charging terms), and reg is the cluster
// registry.
type StoreFactory func(node string, disk *simdisk.Disk, reg *metrics.Registry) store.Store

// BackendFactory maps a backend kind to its store factory.
func BackendFactory(kind string) (StoreFactory, error) {
	switch kind {
	case "", BackendMem:
		return func(node string, disk *simdisk.Disk, reg *metrics.Registry) store.Store {
			return mem.New()
		}, nil
	case BackendWAL:
		return func(node string, disk *simdisk.Disk, reg *metrics.Registry) store.Store {
			return wal.New(wal.Config{Name: node, Disk: disk, Metrics: reg})
		}, nil
	case BackendCached:
		return func(node string, disk *simdisk.Disk, reg *metrics.Registry) store.Store {
			return cached.New(wal.Config{Name: node, Disk: disk, Metrics: reg})
		}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown backend %q (want %s, %s, or %s)",
			kind, BackendMem, BackendWAL, BackendCached)
	}
}

// CrashVolatile implements faults.VolatileTarget: the crashing node's
// storage daemon loses its volatile state (store image, handle table).
// Under the default mem backend the store is not store.Recoverable and the
// daemon keeps its image — the original reboot-with-state-intact model;
// under wal/cached everything unsynced is gone until RestartVolatile.
func (cl *Cluster) CrashVolatile(node string) {
	if ss, ok := cl.storageByNode[node]; ok {
		ss.CrashVolatile()
	}
}

// CorruptData implements faults.CorruptionTarget: flips one stored byte on
// the node's store, deterministically from seed, without resealing its
// block checksum.  Nodes whose store has nothing materialized (synthetic
// payloads, empty stores) are counted no-ops, like any untargetable fault.
func (cl *Cluster) CorruptData(node string, seed int64) {
	if !cl.faultTargetable("bit-rot", node) {
		return
	}
	ss, ok := cl.storageByNode[node]
	if !ok || !ss.CorruptData(seed) {
		cl.skippedFaults.With("bit-rot", node).Inc()
	}
}

// MisdirectRead implements faults.CorruptionTarget: arms a one-shot
// wrong-block read on the node's store.
func (cl *Cluster) MisdirectRead(node string, seed int64) {
	if !cl.faultTargetable("misdirected-read", node) {
		return
	}
	ss, ok := cl.storageByNode[node]
	if !ok || !ss.MisdirectRead(seed) {
		cl.skippedFaults.With("misdirected-read", node).Inc()
	}
}

// ArmTornWrite implements faults.CorruptionTarget: the node's next crash
// persists only a prefix of its final journal record.  A no-op (counted)
// for non-journaling backends.
func (cl *Cluster) ArmTornWrite(node string) {
	if !cl.faultTargetable("torn-write", node) {
		return
	}
	ss, ok := cl.storageByNode[node]
	if !ok || !ss.ArmTornWrite() {
		cl.skippedFaults.With("torn-write", node).Inc()
	}
}

// RestartVolatile implements faults.VolatileTarget: replays the node's
// durable log into a fresh image before the node rejoins.  Replay time is
// deliberately not charged to the simulation — recovery happens inside the
// outage window the fault plan already models.  A replay failure is a
// corrupt log, which is a bug, so it fails loudly.
func (cl *Cluster) RestartVolatile(node string) {
	if ss, ok := cl.storageByNode[node]; ok {
		if _, err := ss.RecoverVolatile(); err != nil {
			panic(fmt.Sprintf("cluster: recover %s: %v", node, err))
		}
	}
}
