package cluster

import (
	"dpnfs/internal/nfs"
	"dpnfs/internal/payload"
	"dpnfs/internal/pvfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/simnet"
)

// Mount is the architecture-independent application view of one client:
// workloads are written once against this interface and run unchanged on
// all five architectures.
type Mount struct {
	cl   *Cluster
	node *simnet.Node
	nfsc *nfs.Client  // NFS-family architectures
	pv   *pvfs.Client // native PVFS2
}

// Node returns the client's simnet node.
func (m *Mount) Node() *simnet.Node { return m.node }

// mount performs protocol mount/handshake where the protocol has one.
func (m *Mount) mount(ctx *rpc.Ctx) error {
	if m.nfsc != nil {
		return m.nfsc.Mount(ctx)
	}
	return nil
}

// File is an open file on a Mount.
type File struct {
	m    *Mount
	nf   *nfs.File
	pf   *pvfs.File
	path string
}

// Create creates (or opens) a file.
func (m *Mount) Create(ctx *rpc.Ctx, path string) (*File, error) {
	if m.nfsc != nil {
		nf, err := m.nfsc.Create(ctx, path)
		if err != nil {
			return nil, err
		}
		return &File{m: m, nf: nf, path: path}, nil
	}
	pf, err := m.pv.Create(ctx, path)
	if err != nil {
		return nil, err
	}
	return &File{m: m, pf: pf, path: path}, nil
}

// Open opens an existing file.
func (m *Mount) Open(ctx *rpc.Ctx, path string) (*File, error) {
	if m.nfsc != nil {
		nf, err := m.nfsc.Open(ctx, path)
		if err != nil {
			return nil, err
		}
		return &File{m: m, nf: nf, path: path}, nil
	}
	pf, err := m.pv.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	return &File{m: m, pf: pf, path: path}, nil
}

// Write stores data at off.
func (m *Mount) Write(ctx *rpc.Ctx, f *File, off int64, data payload.Payload) error {
	if f.nf != nil {
		return m.nfsc.Write(ctx, f.nf, off, data)
	}
	_, err := m.pv.Write(ctx, f.pf, off, data, false)
	return err
}

// Read fetches up to n bytes at off, returning the data and the byte count.
func (m *Mount) Read(ctx *rpc.Ctx, f *File, off, n int64) (payload.Payload, int64, error) {
	if f.nf != nil {
		return m.nfsc.Read(ctx, f.nf, off, n)
	}
	return m.pv.Read(ctx, f.pf, off, n, m.cl.Cfg.Real)
}

// Fsync forces data to stable storage.
func (m *Mount) Fsync(ctx *rpc.Ctx, f *File) error {
	if f.nf != nil {
		return m.nfsc.Fsync(ctx, f.nf)
	}
	return m.pv.Sync(ctx, f.pf)
}

// Close releases the file.  On NFS mounts this flushes and commits (the
// prototype's commit-on-close semantics, paper §5); PVFS2 leaves data in
// the storage nodes' buffers — only an explicit Fsync reaches the platter.
func (m *Mount) Close(ctx *rpc.Ctx, f *File) error {
	if f.nf != nil {
		return m.nfsc.Close(ctx, f.nf)
	}
	return nil
}

// Size returns the file size: the client view for NFS mounts, a metadata
// query (fan-out reconstruction) for PVFS2.
func (m *Mount) Size(ctx *rpc.Ctx, f *File) (int64, error) {
	if f.nf != nil {
		return f.nf.Size(), nil
	}
	return m.pv.GetAttr(ctx, f.pf)
}

// Stat refreshes attributes from the servers.
func (m *Mount) Stat(ctx *rpc.Ctx, f *File) (int64, error) {
	if f.nf != nil {
		at, err := m.nfsc.GetAttr(ctx, f.nf)
		if err != nil {
			return 0, err
		}
		return at.Size, nil
	}
	return m.pv.GetAttr(ctx, f.pf)
}

// Truncate sets the file size.
func (m *Mount) Truncate(ctx *rpc.Ctx, f *File, size int64) error {
	if f.nf != nil {
		return m.nfsc.Truncate(ctx, f.nf, size)
	}
	return m.pv.Truncate(ctx, f.pf, size)
}

// Mkdir creates a directory.
func (m *Mount) Mkdir(ctx *rpc.Ctx, path string) error {
	if m.nfsc != nil {
		return m.nfsc.Mkdir(ctx, path)
	}
	return m.pv.Mkdir(ctx, path)
}

// Remove unlinks a file or empty directory.
func (m *Mount) Remove(ctx *rpc.Ctx, path string) error {
	if m.nfsc != nil {
		return m.nfsc.Remove(ctx, path)
	}
	return m.pv.Remove(ctx, path)
}

// ReadDir lists a directory.
func (m *Mount) ReadDir(ctx *rpc.Ctx, path string) ([]string, error) {
	if m.nfsc != nil {
		return m.nfsc.ReadDir(ctx, path)
	}
	return m.pv.ReadDir(ctx, path)
}

// PNFS reports whether this mount holds pNFS layouts.
func (m *Mount) PNFS() bool { return m.nfsc != nil && m.nfsc.PNFS() }

// DropCaches discards client-side caches (no-op for cacheless PVFS2).
func (m *Mount) DropCaches() {
	if m.nfsc != nil {
		m.nfsc.DropCaches()
	}
}
