package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dpnfs/internal/faults"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// chaosSeed pins the CI chaos smoke run; change it deliberately, never per
// run — reproducibility is the point (see docs/FAULTS.md).
const chaosSeed = 20260730

// TestChaosAllArchitectures drives the faults.Chaos harness on every
// architecture: each round derives a reproducible random plan (crash +
// restart, maybe a lossy link, maybe a slow disk), runs a paced write/read
// workload under it with real bytes end to end, and verifies the read-back
// is byte-identical to what was written.  A failure message names the
// round's derived seed so the exact plan can be replayed.
func TestChaosAllArchitectures(t *testing.T) {
	const (
		fileSize = 512 << 10
		step     = 32 << 10
		horizon  = 500 * time.Millisecond
		rounds   = 2
	)
	for ai, arch := range Archs {
		t.Run(string(arch), func(t *testing.T) {
			// Crash candidates come from the topology itself: every storage
			// node except the metadata manager (a probe cluster answers,
			// since plans must exist before the cluster they attach to).
			probe := New(Config{Arch: arch})
			nodes := probe.FaultCandidates()
			probe.Close()
			if len(nodes) == 0 {
				t.Fatal("no crashable storage nodes")
			}
			faults.Chaos(t, chaosSeed+int64(ai), rounds, nodes, horizon, func(round int, plan *faults.Plan) error {
				cl := New(Config{
					Arch: arch, Clients: 2, Real: true,
					StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
					Seed:   plan.Seed,
					Faults: plan,
				})
				defer cl.Close()
				steps := int64(fileSize / step)
				pace := horizon / time.Duration(steps)
				_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
					f, err := m.Create(ctx, fmt.Sprintf("/chaos.%d", i))
					if err != nil {
						return fmt.Errorf("create: %w", err)
					}
					want := failoverPattern(100*round+i, fileSize)
					// Paced writes span the whole fault horizon, so the
					// crash (and any link/disk degradation) lands mid-burst.
					for off := int64(0); off < fileSize; off += step {
						if err := m.Write(ctx, f, off, payload.Real(want[off:off+step])); err != nil {
							return fmt.Errorf("write at %d: %w", off, err)
						}
						if off%(4*step) == 0 {
							if err := m.Fsync(ctx, f); err != nil {
								return fmt.Errorf("fsync at %d: %w", off, err)
							}
						}
						ctx.P.Sleep(pace)
					}
					if err := m.Close(ctx, f); err != nil {
						return fmt.Errorf("close: %w", err)
					}
					// Cold read-back; by now the plan has healed the node
					// (or the read itself rides the recovery paths).
					m.DropCaches()
					g, err := m.Open(ctx, fmt.Sprintf("/chaos.%d", i))
					if err != nil {
						return fmt.Errorf("reopen: %w", err)
					}
					got, n, err := m.Read(ctx, g, 0, fileSize)
					if err != nil {
						return fmt.Errorf("read-back: %w", err)
					}
					if n != fileSize {
						return fmt.Errorf("read-back: %d bytes, want %d", n, fileSize)
					}
					if !bytes.Equal(got.Bytes, want) {
						return fmt.Errorf("client %d: data corrupted under %v", i, plan)
					}
					return m.Close(ctx, g)
				})
				return err
			})
		})
	}
}

// TestChaosDeterministic pins that a chaos round is replayable: two
// identically seeded clusters running the same plan fire the same number of
// injections and leave identical end state.
func TestChaosDeterministic(t *testing.T) {
	plan := faults.RandomPlan(chaosSeed, []string{"io1", "io2"}, 400*time.Millisecond)
	run := func() (float64, time.Duration) {
		cl := New(Config{
			Arch: ArchDirectPNFS, Clients: 2, Real: true,
			StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
			Seed: 7, Faults: plan,
		})
		defer cl.Close()
		elapsed, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
			f, err := m.Create(ctx, fmt.Sprintf("/d.%d", i))
			if err != nil {
				return err
			}
			for off := int64(0); off < 256<<10; off += 32 << 10 {
				if err := m.Write(ctx, f, off, payload.Real(failoverPattern(i, 32<<10))); err != nil {
					return err
				}
				ctx.P.Sleep(40 * time.Millisecond)
			}
			return m.Close(ctx, f)
		})
		if err != nil {
			t.Fatal(err)
		}
		return counterSum(cl, "rpc_client_fault_errors_total"), elapsed
	}
	f1, e1 := run()
	f2, e2 := run()
	if f1 != f2 || e1 != e2 {
		t.Fatalf("chaos replay diverged: faults %v vs %v, elapsed %v vs %v", f1, f2, e1, e2)
	}
}
