package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dpnfs/internal/faults"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/rpc"
)

// TestReplicaFailoverAvoidsMDS crashes a storage node mid-read on a
// Direct-pNFS cluster whose layout stores two full replicas of every stripe
// (pnfs.AggReplicated).  Writes fan out to both copies, so when the victim
// goes down the client's replica rung — retry the extent on its alternate
// device, before any layout eviction — must absorb every failure: reads stay
// byte-identical AND the MDS-proxy counter stays at zero, proving the
// guaranteed-correct-but-slow fallback (paper §4) was never needed.  The
// unreplicated failover suite (failover_test.go) is the contrast: there the
// same crash forces MDS-proxied reads.
func TestReplicaFailoverAvoidsMDS(t *testing.T) {
	const (
		fileSize = 512 << 10
		step     = 64 << 10
		crashAt  = 50 * time.Millisecond
		restart  = 400 * time.Millisecond
	)
	plan := faults.NewPlan(1,
		faults.StorageNodeCrash{At: crashAt, Node: "io1"},
		faults.StorageNodeRestart{At: restart, Node: "io1"},
	)
	cl := New(Config{
		Arch: ArchDirectPNFS, Clients: 2, Real: true,
		StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
		// Two replicas over six devices: io0-io2 hold the primary copy,
		// io3-io5 the mirror, so the io1 crash always leaves an alternate.
		Aggregation: pnfs.AggReplicated,
		AggParams:   []int64{2, 64 << 10},
		Faults:      plan,
	})
	defer cl.Close()

	// Populate with faults disarmed: Map fans every write out to both
	// replica devices, so each copy independently holds the whole file.
	cl.ArmFaults(false)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/rep.%d", i))
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Real(failoverPattern(i, fileSize))); err != nil {
			return err
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("populate: %v", err)
	}
	cl.ArmFaults(true)

	// Paced cold read spanning the outage.  ReadMap picks one replica per
	// chunk by seed, so some reads do land on the dead io1 — the replica
	// rung re-drives those onto the mirror device.
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		m.DropCaches()
		f, err := m.Open(ctx, fmt.Sprintf("/rep.%d", i))
		if err != nil {
			return err
		}
		want := failoverPattern(i, fileSize)
		for off := int64(0); off < fileSize; off += step {
			got, n, err := m.Read(ctx, f, off, step)
			if err != nil {
				return fmt.Errorf("read at %d: %w", off, err)
			}
			if n != step {
				return fmt.Errorf("read at %d: got %d bytes, want %d", off, n, step)
			}
			if !bytes.Equal(got.Bytes, want[off:off+step]) {
				return fmt.Errorf("client %d: bytes at %d differ through replica failover", i, off)
			}
			ctx.P.Sleep(60 * time.Millisecond)
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("read during outage: %v", err)
	}

	// Non-vacuousness: the crash fired and reads actually hit the dead node.
	if got := counterSum(cl, "faults_injected_total"); got < 2 {
		t.Fatalf("plan applied %v events, want the crash/restart pair", got)
	}
	if got := counterSum(cl, "rpc_client_fault_errors_total"); got == 0 {
		t.Fatal("no call ever hit the crashed node — the scenario tested nothing")
	}
	// The payoff: every failed read healed on a replica, never the MDS.
	if got := counterSum(cl, "nfs_client_mds_fallbacks_total"); got != 0 {
		t.Fatalf("nfs_client_mds_fallbacks_total = %v, want 0 — replicas should absorb the outage", got)
	}
}
