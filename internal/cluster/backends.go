package cluster

import (
	"sync"
	"time"

	"dpnfs/internal/fserr"
	"dpnfs/internal/nfs"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/pvfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/simnet"
	"dpnfs/internal/store"
)

// directDSBackend is the Direct-pNFS data server: the NFS server accesses
// the co-located PVFS2 storage daemon through a loopback conduit (paper
// §5), so offsets arriving from clients address the stripe objects
// directly.  All daemon costs (CPU, fixed buffer pool, disk) are charged by
// calling the daemon's handler in-process.
type directDSBackend struct {
	storage *pvfs.StorageServer
	node    *simnet.Node
	costs   pvfs.Costs
}

// conduit charges the loopback PVFS2 client cost on the data server node —
// the prototype funnels NFS I/O through the local PVFS2 client and loopback
// device rather than direct VFS access (paper §5).
func (b *directDSBackend) conduit(ctx *rpc.Ctx, bytes int64) {
	ctx.UseCPU(b.node.CPU, b.costs.ClientPerOp/2+perMB(time.Millisecond, bytes))
}

func (b *directDSBackend) Read(ctx *rpc.Ctx, fh uint64, off, n int64, wantReal bool) (payload.Payload, bool, error) {
	b.conduit(ctx, n)
	resp, status := b.storage.Handle(ctx, pvfs.ProcIORead, &pvfs.IOReadArgs{
		Handle: pvfs.Handle(fh), Off: off, Len: n, WantReal: wantReal,
	})
	if status != rpc.StatusOK {
		return payload.Payload{}, false, fserr.ErrIO
	}
	rep := resp.(*pvfs.IOReadRep)
	if rep.Errno != 0 {
		return payload.Payload{}, false, rep.Errno.Err()
	}
	return rep.Data, rep.Eof, nil
}

func (b *directDSBackend) Write(ctx *rpc.Ctx, fh uint64, off int64, data payload.Payload, stable bool) (int64, error) {
	b.conduit(ctx, data.Len())
	resp, status := b.storage.Handle(ctx, pvfs.ProcIOWrite, &pvfs.IOWriteArgs{
		Handle: pvfs.Handle(fh), Off: off, Data: data, Sync: stable,
	})
	if status != rpc.StatusOK {
		return 0, fserr.ErrIO
	}
	rep := resp.(*pvfs.IOWriteRep)
	return rep.ObjSize, rep.Errno.Err()
}

func (b *directDSBackend) Commit(ctx *rpc.Ctx, fh uint64) error {
	b.conduit(ctx, 0)
	resp, status := b.storage.Handle(ctx, pvfs.ProcIOFlush, &pvfs.IOFlushArgs{Handle: pvfs.Handle(fh)})
	if status != rpc.StatusOK {
		return fserr.ErrIO
	}
	return resp.(*pvfs.IOFlushRep).Errno.Err()
}

// Data servers perform no namespace or layout duties.
func (b *directDSBackend) Root() uint64 { return 1 }
func (b *directDSBackend) Lookup(*rpc.Ctx, uint64, string) (uint64, nfs.Attr, error) {
	return 0, nfs.Attr{}, store.ErrInval
}
func (b *directDSBackend) Create(*rpc.Ctx, uint64, string) (uint64, nfs.Attr, error) {
	return 0, nfs.Attr{}, store.ErrInval
}
func (b *directDSBackend) Mkdir(*rpc.Ctx, uint64, string) (uint64, nfs.Attr, error) {
	return 0, nfs.Attr{}, store.ErrInval
}
func (b *directDSBackend) Remove(*rpc.Ctx, uint64, string) error         { return store.ErrInval }
func (b *directDSBackend) Rename(*rpc.Ctx, uint64, string, string) error { return store.ErrInval }
func (b *directDSBackend) ReadDir(*rpc.Ctx, uint64) ([]string, error)    { return nil, store.ErrInval }
func (b *directDSBackend) GetAttr(ctx *rpc.Ctx, fh uint64) (nfs.Attr, error) {
	// A data server can report its local object size; clients do not use
	// this (sizes come from the MDS), but it keeps GETATTR well-defined.
	return nfs.Attr{Size: b.storage.ObjectSize(pvfs.Handle(fh))}, nil
}
func (b *directDSBackend) SetSize(*rpc.Ctx, uint64, int64) error { return store.ErrInval }
func (b *directDSBackend) DevList(*rpc.Ctx) ([]pnfs.DeviceInfo, error) {
	return nil, nfs.ErrNoPNFS
}
func (b *directDSBackend) LayoutGet(*rpc.Ctx, uint64) (*pnfs.FileLayout, error) {
	return nil, nfs.ErrNoPNFS
}
func (b *directDSBackend) LayoutCommit(*rpc.Ctx, uint64, int64) error { return nfs.ErrNoPNFS }

// directMDSBackend is the Direct-pNFS metadata server: co-located with the
// PVFS2 metadata manager (direct in-process calls — no overlapping
// metadata protocols, paper §4.1), serving layouts through the layout
// translator.  File sizes are maintained locally from LAYOUTCOMMITs, so
// GETATTR never ripples into the parallel FS.
type directMDSBackend struct {
	meta  *pvfs.MetaServer
	agg   string
	aggP  []int64
	proxy *pvfs.Client // fallback I/O path through the MDS

	// mu guards devices and gen: the membership reconciler replaces them
	// while server processes serve GETDEVICELIST/LAYOUTGET.
	mu      sync.Mutex
	devices []pnfs.DeviceInfo
	gen     uint64
}

// setDevices replaces the advertised device list and layout generation
// after a membership change.
func (b *directMDSBackend) setDevices(devs []pnfs.DeviceInfo, gen uint64) {
	b.mu.Lock()
	b.devices = devs
	b.gen = gen
	b.mu.Unlock()
}

func (b *directMDSBackend) snapshot() ([]pnfs.DeviceInfo, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.devices, b.gen
}

// metaCall invokes the co-located PVFS2 metadata manager in-process.
func (b *directMDSBackend) metaCall(ctx *rpc.Ctx, proc uint32, req any) (any, error) {
	resp, status := b.meta.Handle(ctx, proc, req)
	if status != rpc.StatusOK {
		return nil, fserr.ErrIO
	}
	return resp, nil
}

func (b *directMDSBackend) Root() uint64 { return uint64(b.meta.RootHandle()) }

func (b *directMDSBackend) Lookup(ctx *rpc.Ctx, dir uint64, name string) (uint64, nfs.Attr, error) {
	resp, err := b.metaCall(ctx, pvfs.ProcLookupH, &pvfs.DirOpArgs{Dir: pvfs.Handle(dir), Name: name})
	if err != nil {
		return 0, nfs.Attr{}, err
	}
	rep := resp.(*pvfs.LookupRep)
	if rep.Errno != 0 {
		return 0, nfs.Attr{}, rep.Errno.Err()
	}
	at, _ := b.meta.Namespace().GetAttr(store.FileID(rep.Handle))
	return uint64(rep.Handle), nfs.Attr{IsDir: rep.IsDir, Size: at.Size, Change: at.Change}, nil
}

func (b *directMDSBackend) Create(ctx *rpc.Ctx, dir uint64, name string) (uint64, nfs.Attr, error) {
	resp, err := b.metaCall(ctx, pvfs.ProcCreateH, &pvfs.DirOpArgs{Dir: pvfs.Handle(dir), Name: name})
	if err != nil {
		return 0, nfs.Attr{}, err
	}
	rep := resp.(*pvfs.CreateRep)
	if rep.Errno != 0 {
		return 0, nfs.Attr{}, rep.Errno.Err()
	}
	return uint64(rep.Handle), nfs.Attr{}, nil
}

func (b *directMDSBackend) Mkdir(ctx *rpc.Ctx, dir uint64, name string) (uint64, nfs.Attr, error) {
	resp, err := b.metaCall(ctx, pvfs.ProcMkdirH, &pvfs.DirOpArgs{Dir: pvfs.Handle(dir), Name: name})
	if err != nil {
		return 0, nfs.Attr{}, err
	}
	rep := resp.(*pvfs.MkdirRep)
	if rep.Errno != 0 {
		return 0, nfs.Attr{}, rep.Errno.Err()
	}
	return uint64(rep.Handle), nfs.Attr{IsDir: true}, nil
}

func (b *directMDSBackend) Remove(ctx *rpc.Ctx, dir uint64, name string) error {
	resp, err := b.metaCall(ctx, pvfs.ProcRemoveH, &pvfs.DirOpArgs{Dir: pvfs.Handle(dir), Name: name})
	if err != nil {
		return err
	}
	return resp.(*pvfs.RemoveRep).Errno.Err()
}

func (b *directMDSBackend) Rename(ctx *rpc.Ctx, dir uint64, src, dst string) error {
	resp, err := b.metaCall(ctx, pvfs.ProcRenameH, &pvfs.RenameHArgs{Dir: pvfs.Handle(dir), Src: src, Dst: dst})
	if err != nil {
		return err
	}
	return resp.(*pvfs.RemoveRep).Errno.Err()
}

func (b *directMDSBackend) ReadDir(ctx *rpc.Ctx, dir uint64) ([]string, error) {
	resp, err := b.metaCall(ctx, pvfs.ProcReadDirH, &pvfs.ReadDirHArgs{Dir: pvfs.Handle(dir)})
	if err != nil {
		return nil, err
	}
	rep := resp.(*pvfs.ReadDirRep)
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return rep.Names, nil
}

// GetAttr serves from the MDS-local namespace: sizes arrive via
// LAYOUTCOMMIT, so no parallel-FS metadata ripple occurs (paper §4.1).
func (b *directMDSBackend) GetAttr(ctx *rpc.Ctx, fh uint64) (nfs.Attr, error) {
	at, err := b.meta.Namespace().GetAttr(store.FileID(fh))
	if err != nil {
		return nfs.Attr{}, err
	}
	return nfs.Attr{IsDir: at.IsDir, Size: at.Size, Change: at.Change}, nil
}

func (b *directMDSBackend) SetSize(ctx *rpc.Ctx, fh uint64, size int64) error {
	resp, err := b.metaCall(ctx, pvfs.ProcTruncate, &pvfs.TruncateArgs{Handle: pvfs.Handle(fh), Size: size})
	if err != nil {
		return err
	}
	if e := resp.(*pvfs.TruncateRep).Errno; e != 0 {
		return e.Err()
	}
	return b.meta.Namespace().Truncate(store.FileID(fh), size)
}

// Read and Write proxy through the co-located PVFS2 client; they are a
// fallback only — Direct-pNFS clients hold layouts and go to the data
// servers directly.  The proxy resolves each file's current placement
// in-process, so it follows migrations.
func (b *directMDSBackend) openCurrent(fh uint64) *pvfs.File {
	place := b.meta.PlacementOf(pvfs.Handle(fh))
	return b.proxy.OpenPlaced(pvfs.Handle(fh), place.Data, place.Dist)
}

func (b *directMDSBackend) Read(ctx *rpc.Ctx, fh uint64, off, n int64, wantReal bool) (payload.Payload, bool, error) {
	f := b.openCurrent(fh)
	data, got, err := b.proxy.Read(ctx, f, off, n, wantReal)
	return data, got < n, err
}

func (b *directMDSBackend) Write(ctx *rpc.Ctx, fh uint64, off int64, data payload.Payload, stable bool) (int64, error) {
	f := b.openCurrent(fh)
	size, err := b.proxy.Write(ctx, f, off, data, stable)
	if err == nil {
		b.meta.Namespace().SetSize(store.FileID(fh), size)
	}
	return size, err
}

func (b *directMDSBackend) Commit(ctx *rpc.Ctx, fh uint64) error {
	return b.proxy.Sync(ctx, b.openCurrent(fh))
}

func (b *directMDSBackend) DevList(*rpc.Ctx) ([]pnfs.DeviceInfo, error) {
	devs, _ := b.snapshot()
	return devs, nil
}

// LayoutGet translates the parallel FS's native layout into a pNFS
// file-based layout (paper §4.2): exact distribution, direct offsets.
// Under the default round-robin aggregation the layout comes from the
// file's own placement — stable device IDs, the datafile handle, and the
// current layout generation — so it stays exact across membership changes.
func (b *directMDSBackend) LayoutGet(ctx *rpc.Ctx, fh uint64) (*pnfs.FileLayout, error) {
	devices, gen := b.snapshot()
	if b.agg != "" {
		// Custom aggregation drivers keep the whole-cluster translation;
		// membership changes refuse to run alongside them.
		nodes := make([]string, len(devices))
		for i, d := range devices {
			nodes[i] = d.Addr
		}
		native := pnfs.NativeLayout{
			Aggregation:  b.agg,
			Params:       b.aggP,
			StorageNodes: nodes,
			ObjectHandle: fh,
		}
		l, err := pnfs.Translate(native, func(node string) (pnfs.DeviceID, bool) {
			for _, d := range devices {
				if d.Addr == node {
					return d.ID, true
				}
			}
			return 0, false
		})
		if err != nil {
			return nil, err
		}
		l.Gen = gen
		return l, nil
	}
	place := b.meta.PlacementOf(pvfs.Handle(fh))
	l := &pnfs.FileLayout{
		Aggregation: pnfs.AggRoundRobin,
		Params:      []int64{place.Dist.StripeSize},
		Direct:      true,
		Gen:         gen,
	}
	for _, id := range place.Dist.ServerIDs() {
		l.Devices = append(l.Devices, pnfs.DeviceID(id))
		l.FHs = append(l.FHs, uint64(place.Data))
	}
	return l, nil
}

// LayoutCommit records the client-reported size in the MDS namespace
// ("informs the NFSv4.1 server of changes to file metadata", paper §5).
func (b *directMDSBackend) LayoutCommit(ctx *rpc.Ctx, fh uint64, newSize int64) error {
	return b.meta.Namespace().SetSize(store.FileID(fh), newSize)
}

// blindLayouts generates the two/three-tier file-based layouts: logical
// round-robin striping across the data servers with no knowledge of the
// underlying distribution (paper §4.1: "forces them to distribute I/O
// requests among data servers without regard for the actual location").
//
// The pNFS server's device ordering is arbitrary relative to the parallel
// FS's internal device order — alignment would be coincidental — so the
// generated layouts rotate the device list by shift, which makes stripe
// unit u land on the data server one past the storage node that actually
// holds it (the general, misaligned case the paper measures).
type blindLayouts struct {
	// mu guards devices and gen against the membership reconciler.
	mu      sync.Mutex
	stripe  int64
	devices []pnfs.DeviceInfo
	shift   int
	gen     uint64
}

func (bl *blindLayouts) snapshot() ([]pnfs.DeviceInfo, uint64) {
	bl.mu.Lock()
	defer bl.mu.Unlock()
	return bl.devices, bl.gen
}

// set replaces the device list and layout generation (2-tier membership,
// where data servers ride the storage nodes).
func (bl *blindLayouts) set(devs []pnfs.DeviceInfo, gen uint64) {
	bl.mu.Lock()
	bl.devices = devs
	bl.gen = gen
	bl.mu.Unlock()
}

// setGen bumps only the generation (3-tier membership: the data-server tier
// is unchanged but clients must refetch layouts).
func (bl *blindLayouts) setGen(gen uint64) {
	bl.mu.Lock()
	bl.gen = gen
	bl.mu.Unlock()
}

// exportBackend serves NFS from a PVFS2 client — the single-server NFSv4
// export and the two/three-tier data and metadata servers.
//
// The conduit costs model the kernel NFSD ↔ PVFS2 kernel-module data path:
// reads stream with little extra copying, but writes cross the user/kernel
// boundary several times before the cacheless PVFS2 client pushes them out
// synchronously — the asymmetry behind NFSv4's flat, low write curve
// against its NIC-bound read curve (Figures 6a vs 7a).
type exportBackend struct {
	pv      *pvfs.Client
	node    *simnet.Node
	dist    pvfs.DistParams
	layouts *blindLayouts // non-nil on the pNFS MDS of 2/3-tier setups

	// Placement-aware (dynamic) mode: off until the first membership change
	// — the legacy static-distribution fast path keeps pre-membership runs
	// byte-identical.  Once on, every data op resolves the file's current
	// placement through PLACEMENT_H, cached per handle until the next
	// generation bump.
	mu       sync.Mutex
	dynamic  bool
	placeGen uint64
	places   map[pvfs.Handle]cachedPlace
}

type cachedPlace struct {
	data pvfs.Handle
	dist pvfs.DistParams
	gen  uint64
}

// setDynamic switches the export to placement-aware mode at generation gen,
// invalidating the per-handle placement cache.
func (b *exportBackend) setDynamic(gen uint64) {
	b.mu.Lock()
	b.dynamic = true
	b.placeGen = gen
	b.mu.Unlock()
}

// openCurrent opens fh for data access: the static distribution before any
// membership change, the file's live placement after.
func (b *exportBackend) openCurrent(ctx *rpc.Ctx, fh uint64) (*pvfs.File, error) {
	h := pvfs.Handle(fh)
	b.mu.Lock()
	dyn, gen := b.dynamic, b.placeGen
	cp, ok := b.places[h]
	b.mu.Unlock()
	if !dyn {
		return b.pv.OpenHandle(h, b.dist), nil
	}
	if ok && cp.gen == gen {
		return b.pv.OpenPlaced(h, cp.data, cp.dist), nil
	}
	data, dist, err := b.pv.PlacementH(ctx, h)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if b.places == nil {
		b.places = make(map[pvfs.Handle]cachedPlace)
	}
	b.places[h] = cachedPlace{data: data, dist: dist, gen: gen}
	b.mu.Unlock()
	return b.pv.OpenPlaced(h, data, dist), nil
}

const (
	exportReadPerMB  = 2 * time.Millisecond
	exportWritePerMB = 30 * time.Millisecond
)

func (b *exportBackend) conduit(ctx *rpc.Ctx, perMBCost time.Duration, bytes int64) {
	if b.node != nil {
		ctx.UseCPU(b.node.CPU, perMB(perMBCost, bytes))
	}
}

func (b *exportBackend) Root() uint64 { return uint64(b.pv.RootHandle()) }

func (b *exportBackend) Lookup(ctx *rpc.Ctx, dir uint64, name string) (uint64, nfs.Attr, error) {
	h, isDir, err := b.pv.LookupH(ctx, pvfs.Handle(dir), name)
	if err != nil {
		return 0, nfs.Attr{}, err
	}
	return uint64(h), nfs.Attr{IsDir: isDir}, nil
}

func (b *exportBackend) Create(ctx *rpc.Ctx, dir uint64, name string) (uint64, nfs.Attr, error) {
	f, err := b.pv.CreateH(ctx, pvfs.Handle(dir), name)
	if err != nil {
		return 0, nfs.Attr{}, err
	}
	return uint64(f.Handle), nfs.Attr{}, nil
}

func (b *exportBackend) Mkdir(ctx *rpc.Ctx, dir uint64, name string) (uint64, nfs.Attr, error) {
	h, err := b.pv.MkdirH(ctx, pvfs.Handle(dir), name)
	if err != nil {
		return 0, nfs.Attr{}, err
	}
	return uint64(h), nfs.Attr{IsDir: true}, nil
}

func (b *exportBackend) Remove(ctx *rpc.Ctx, dir uint64, name string) error {
	return b.pv.RemoveH(ctx, pvfs.Handle(dir), name)
}

func (b *exportBackend) Rename(ctx *rpc.Ctx, dir uint64, src, dst string) error {
	return b.pv.RenameH(ctx, pvfs.Handle(dir), src, dst)
}

func (b *exportBackend) ReadDir(ctx *rpc.Ctx, dir uint64) ([]string, error) {
	return b.pv.ReadDirH(ctx, pvfs.Handle(dir))
}

// GetAttr ripples into the parallel file system: the PVFS2 client gathers
// datafile sizes from every storage node (paper §3.4.1's metadata ripple).
func (b *exportBackend) GetAttr(ctx *rpc.Ctx, fh uint64) (nfs.Attr, error) {
	isDir, size, change, err := b.pv.GetAttrH(ctx, pvfs.Handle(fh))
	if err != nil {
		return nfs.Attr{}, err
	}
	return nfs.Attr{IsDir: isDir, Size: size, Change: change}, nil
}

func (b *exportBackend) SetSize(ctx *rpc.Ctx, fh uint64, size int64) error {
	return b.pv.TruncateH(ctx, pvfs.Handle(fh), size)
}

// Read interprets logical file offsets through the PVFS2 client — the
// indirection that costs the two/three-tier architectures their direct
// access.
func (b *exportBackend) Read(ctx *rpc.Ctx, fh uint64, off, n int64, wantReal bool) (payload.Payload, bool, error) {
	b.conduit(ctx, exportReadPerMB, n)
	f, err := b.openCurrent(ctx, fh)
	if err != nil {
		return payload.Payload{}, false, err
	}
	data, got, err := b.pv.Read(ctx, f, off, n, wantReal)
	return data, got < n, err
}

func (b *exportBackend) Write(ctx *rpc.Ctx, fh uint64, off int64, data payload.Payload, stable bool) (int64, error) {
	b.conduit(ctx, exportWritePerMB, data.Len())
	f, err := b.openCurrent(ctx, fh)
	if err != nil {
		return 0, err
	}
	return b.pv.Write(ctx, f, off, data, stable)
}

func (b *exportBackend) Commit(ctx *rpc.Ctx, fh uint64) error {
	f, err := b.openCurrent(ctx, fh)
	if err != nil {
		return err
	}
	return b.pv.Sync(ctx, f)
}

func (b *exportBackend) DevList(*rpc.Ctx) ([]pnfs.DeviceInfo, error) {
	if b.layouts == nil {
		return nil, nfs.ErrNoPNFS
	}
	devs, _ := b.layouts.snapshot()
	return devs, nil
}

func (b *exportBackend) LayoutGet(ctx *rpc.Ctx, fh uint64) (*pnfs.FileLayout, error) {
	if b.layouts == nil {
		return nil, nfs.ErrNoPNFS
	}
	devs, gen := b.layouts.snapshot()
	l := &pnfs.FileLayout{
		Aggregation: pnfs.AggRoundRobin,
		Params:      []int64{b.layouts.stripe},
		Direct:      false,
		Gen:         gen,
	}
	n := len(devs)
	for i := range devs {
		d := devs[(i+b.layouts.shift)%n]
		l.Devices = append(l.Devices, d.ID)
		l.FHs = append(l.FHs, fh)
	}
	return l, nil
}

// LayoutCommit is metadata-free here: sizes are always reconstructed from
// the datafiles, so there is nothing to publish.
func (b *exportBackend) LayoutCommit(*rpc.Ctx, uint64, int64) error { return nil }

func perMB(d time.Duration, n int64) time.Duration {
	return time.Duration(float64(d) * float64(n) / (1 << 20))
}
