package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dpnfs/internal/faults"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// counterSum totals every series of a counter family in the cluster's
// metrics registry — used to prove a fault scenario actually engaged the
// machinery under test (non-vacuousness).
func counterSum(cl *Cluster, name string) float64 {
	var sum float64
	for _, m := range cl.Metrics().Snapshot().Metrics {
		if m.Name != name {
			continue
		}
		for _, s := range m.Series {
			sum += s.Value
		}
	}
	return sum
}

// failoverPattern gives every client a distinct, position-dependent byte
// pattern so striping or fallback bugs that land bytes in the wrong place
// cannot cancel out.
func failoverPattern(client int, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(37*client + j + j>>8)
	}
	return b
}

// TestFailoverAllArchitectures is the table-driven failover suite: on every
// architecture, a storage node crashes in the middle of a paced read run
// and restarts before it ends.  Reads issued during the outage must survive
// through the recovery paths (layout eviction + refetch, MDS-proxied I/O,
// striped-I/O retry) and every byte read — during the outage and after
// recovery — must be identical to what was written.
func TestFailoverAllArchitectures(t *testing.T) {
	const (
		fileSize = 512 << 10
		step     = 64 << 10
		crashAt  = 50 * time.Millisecond
		restart  = 350 * time.Millisecond
	)
	for _, arch := range Archs {
		t.Run(string(arch), func(t *testing.T) {
			plan := faults.NewPlan(1,
				faults.StorageNodeCrash{At: crashAt, Node: "io1"},
				faults.StorageNodeRestart{At: restart, Node: "io1"},
			)
			cl := New(Config{
				Arch: arch, Clients: 2, Real: true,
				StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
				Faults: plan,
			})
			defer cl.Close()

			// Populate with faults disarmed: only the verified read run
			// suffers the crash.
			cl.ArmFaults(false)
			if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				f, err := m.Create(ctx, fmt.Sprintf("/fo.%d", i))
				if err != nil {
					return err
				}
				if err := m.Write(ctx, f, 0, payload.Real(failoverPattern(i, fileSize))); err != nil {
					return err
				}
				if err := m.Fsync(ctx, f); err != nil {
					return err
				}
				return m.Close(ctx, f)
			}); err != nil {
				t.Fatalf("populate: %v", err)
			}
			cl.ArmFaults(true)

			// Paced cold read spanning the crash/restart window.
			readBack := func(pace time.Duration) error {
				_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
					m.DropCaches()
					f, err := m.Open(ctx, fmt.Sprintf("/fo.%d", i))
					if err != nil {
						return err
					}
					want := failoverPattern(i, fileSize)
					for off := int64(0); off < fileSize; off += step {
						got, n, err := m.Read(ctx, f, off, step)
						if err != nil {
							return fmt.Errorf("read at %d: %w", off, err)
						}
						if n != step {
							return fmt.Errorf("read at %d: got %d bytes, want %d", off, n, step)
						}
						if !bytes.Equal(got.Bytes, want[off:off+step]) {
							return fmt.Errorf("client %d: bytes at %d differ after failover", i, off)
						}
						if pace > 0 {
							ctx.P.Sleep(pace)
						}
					}
					return m.Close(ctx, f)
				})
				return err
			}
			// ~8 steps x 60 ms of pacing stretches the read run well past
			// the restart, so the outage lands mid-read.
			if err := readBack(60 * time.Millisecond); err != nil {
				t.Fatalf("read during outage: %v", err)
			}
			// Non-vacuousness: the plan fired and at least one call hit the
			// crashed node.
			if got := counterSum(cl, "faults_injected_total"); got < 2 {
				t.Fatalf("plan applied %v events, want the crash/restart pair", got)
			}
			if got := counterSum(cl, "rpc_client_fault_errors_total"); got == 0 {
				t.Fatal("no call ever hit the crashed node — the scenario tested nothing")
			}
			// A second cold read after full recovery must also be
			// byte-identical (and runs with the plan re-armed: the paired
			// crash/restart replays and heals again).
			if err := readBack(60 * time.Millisecond); err != nil {
				t.Fatalf("read after recovery: %v", err)
			}
		})
	}
}

// TestFailoverTCPTransport runs the crash/restart scenario over real
// loopback sockets: the wall-clock fault driver takes the node's services
// down mid-write, the same recovery machinery (fast-fail DownError, layout
// refetch, MDS fallback, retry backoff) rides it out on real goroutines,
// and the read-back must be byte-identical.  Racy recovery state shows up
// here under -race, not on the cooperative simulator.
func TestFailoverTCPTransport(t *testing.T) {
	const (
		fileSize = 256 << 10
		step     = 32 << 10
	)
	plan := faults.NewPlan(1,
		faults.StorageNodeCrash{At: 30 * time.Millisecond, Node: "io1"},
		faults.StorageNodeRestart{At: 200 * time.Millisecond, Node: "io1"},
	)
	cl := New(Config{
		Arch: ArchDirectPNFS, Clients: 2, Real: true,
		Transport:  TransportTCP,
		StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
		Faults: plan,
	})
	defer cl.Close()
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, fmt.Sprintf("/tcp.%d", i))
		if err != nil {
			return err
		}
		want := failoverPattern(i, fileSize)
		for off := int64(0); off < fileSize; off += step {
			if err := m.Write(ctx, f, off, payload.Real(want[off:off+step])); err != nil {
				return fmt.Errorf("write at %d: %w", off, err)
			}
			if err := m.Fsync(ctx, f); err != nil {
				return fmt.Errorf("fsync at %d: %w", off, err)
			}
			time.Sleep(30 * time.Millisecond) // span the outage window
		}
		if err := m.Close(ctx, f); err != nil {
			return err
		}
		m.DropCaches()
		g, err := m.Open(ctx, fmt.Sprintf("/tcp.%d", i))
		if err != nil {
			return err
		}
		got, n, err := m.Read(ctx, g, 0, fileSize)
		if err != nil {
			return err
		}
		if n != fileSize || !bytes.Equal(got.Bytes, want) {
			return fmt.Errorf("client %d: read-back differs (n=%d)", i, n)
		}
		return m.Close(ctx, g)
	}); err != nil {
		t.Fatal(err)
	}
	if got := counterSum(cl, "faults_injected_total"); got != 2 {
		t.Fatalf("plan applied %v events, want 2", got)
	}
}

// TestFailoverWriteRecovery crashes a storage node in the middle of a write
// burst on every architecture: writes must land (via MDS-proxied fallback
// or retry) and a cold read after recovery must return exactly what was
// written.
func TestFailoverWriteRecovery(t *testing.T) {
	const (
		fileSize = 512 << 10
		step     = 64 << 10
		crashAt  = 40 * time.Millisecond
		restart  = 300 * time.Millisecond
	)
	for _, arch := range Archs {
		t.Run(string(arch), func(t *testing.T) {
			plan := faults.NewPlan(1,
				faults.StorageNodeCrash{At: crashAt, Node: "io1"},
				faults.StorageNodeRestart{At: restart, Node: "io1"},
			)
			cl := New(Config{
				Arch: arch, Clients: 2, Real: true,
				StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
				Faults: plan,
			})
			defer cl.Close()

			if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				f, err := m.Create(ctx, fmt.Sprintf("/fw.%d", i))
				if err != nil {
					return err
				}
				want := failoverPattern(i, fileSize)
				for off := int64(0); off < fileSize; off += step {
					if err := m.Write(ctx, f, off, payload.Real(want[off:off+step])); err != nil {
						return fmt.Errorf("write at %d: %w", off, err)
					}
					if err := m.Fsync(ctx, f); err != nil {
						return fmt.Errorf("fsync at %d: %w", off, err)
					}
					ctx.P.Sleep(50 * time.Millisecond)
				}
				return m.Close(ctx, f)
			}); err != nil {
				t.Fatalf("write under crash: %v", err)
			}

			// Cold read-back with the cluster healthy (the plan healed the
			// node before the run ended; disarm for the verification pass).
			cl.ArmFaults(false)
			if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				m.DropCaches()
				f, err := m.Open(ctx, fmt.Sprintf("/fw.%d", i))
				if err != nil {
					return err
				}
				got, n, err := m.Read(ctx, f, 0, fileSize)
				if err != nil {
					return err
				}
				if n != fileSize {
					return fmt.Errorf("read %d bytes, want %d", n, fileSize)
				}
				if !bytes.Equal(got.Bytes, failoverPattern(i, fileSize)) {
					return fmt.Errorf("client %d: read-back differs from written data", i)
				}
				return m.Close(ctx, f)
			}); err != nil {
				t.Fatalf("verify after recovery: %v", err)
			}
		})
	}
}

// TestFailoverWALBackend reruns the mid-read crash/restart scenario on the
// write-ahead-logged backend (docs/BACKENDS.md).  Unlike the volatile
// default — where a crashed node reboots with its store image intact — the
// crash here discards the victim's in-memory image and handle table, so
// every byte read after the restart exists only because recovery replayed
// the journal.  Acknowledged (fsynced) pre-crash writes must read back
// byte-identically on every architecture, and the replay must be
// non-vacuous.
func TestFailoverWALBackend(t *testing.T) {
	const (
		fileSize = 512 << 10
		step     = 64 << 10
		crashAt  = 50 * time.Millisecond
		restart  = 350 * time.Millisecond
	)
	for _, arch := range Archs {
		t.Run(string(arch), func(t *testing.T) {
			plan := faults.NewPlan(1,
				faults.StorageNodeCrash{At: crashAt, Node: "io1"},
				faults.StorageNodeRestart{At: restart, Node: "io1"},
			)
			cl := New(Config{
				Arch: arch, Clients: 2, Real: true,
				StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
				Faults:  plan,
				Backend: BackendWAL,
			})
			defer cl.Close()

			// Populate with faults disarmed; Fsync makes every write
			// durable before the crash can land.
			cl.ArmFaults(false)
			if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				f, err := m.Create(ctx, fmt.Sprintf("/wal.%d", i))
				if err != nil {
					return err
				}
				if err := m.Write(ctx, f, 0, payload.Real(failoverPattern(i, fileSize))); err != nil {
					return err
				}
				if err := m.Fsync(ctx, f); err != nil {
					return err
				}
				return m.Close(ctx, f)
			}); err != nil {
				t.Fatalf("populate: %v", err)
			}
			cl.ArmFaults(true)

			// Paced cold read spanning the outage: bytes served during it
			// come through the recovery paths, bytes after it come from the
			// victim's replayed image.
			if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				m.DropCaches()
				f, err := m.Open(ctx, fmt.Sprintf("/wal.%d", i))
				if err != nil {
					return err
				}
				want := failoverPattern(i, fileSize)
				for off := int64(0); off < fileSize; off += step {
					got, n, err := m.Read(ctx, f, off, step)
					if err != nil {
						return fmt.Errorf("read at %d: %w", off, err)
					}
					if n != step {
						return fmt.Errorf("read at %d: got %d bytes, want %d", off, n, step)
					}
					if !bytes.Equal(got.Bytes, want[off:off+step]) {
						return fmt.Errorf("client %d: bytes at %d differ after recovery", i, off)
					}
					ctx.P.Sleep(60 * time.Millisecond)
				}
				return m.Close(ctx, f)
			}); err != nil {
				t.Fatalf("read across crash: %v", err)
			}

			// Non-vacuousness: the crash fired and recovery replayed at
			// least one journal record — otherwise this test degenerated
			// into the volatile failover suite.
			if got := counterSum(cl, "faults_injected_total"); got < 2 {
				t.Fatalf("plan applied %v events, want the crash/restart pair", got)
			}
			if got := counterSum(cl, "store_wal_replays_total"); got < 1 {
				t.Fatalf("store_wal_replays_total = %v, want >= 1 replayed record", got)
			}
		})
	}
}
