package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dpnfs/internal/payload"
	"dpnfs/internal/pvfs"
	"dpnfs/internal/rpc"
)

func TestAllArchitecturesRoundTripRealBytes(t *testing.T) {
	for _, arch := range Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			cl := New(Config{Arch: arch, Clients: 2, Real: true, StripeSize: 64 << 10})
			pattern := func(i int) []byte {
				data := make([]byte, 300_000) // spans several stripes
				for j := range data {
					data[j] = byte((j*7 + i*13) % 251)
				}
				return data
			}
			_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				path := fmt.Sprintf("/f%d", i)
				f, err := m.Create(ctx, path)
				if err != nil {
					return fmt.Errorf("create: %w", err)
				}
				want := pattern(i)
				if err := m.Write(ctx, f, 0, payload.Real(want)); err != nil {
					return fmt.Errorf("write: %w", err)
				}
				if err := m.Close(ctx, f); err != nil {
					return fmt.Errorf("close: %w", err)
				}
				// Re-open and read back through the protocol stack.
				g, err := m.Open(ctx, path)
				if err != nil {
					return fmt.Errorf("reopen: %w", err)
				}
				got, n, err := m.Read(ctx, g, 0, int64(len(want)))
				if err != nil || n != int64(len(want)) {
					return fmt.Errorf("read: n=%d err=%v", n, err)
				}
				if !bytes.Equal(got.Bytes, want) {
					return fmt.Errorf("data corrupted through %s stack", arch)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDirectLayoutsAreDirect(t *testing.T) {
	cl := New(Config{Arch: ArchDirectPNFS, Clients: 1})
	_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		if !m.PNFS() {
			return fmt.Errorf("direct-pnfs mount did not obtain a device list")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNFSv4HasNoPNFS(t *testing.T) {
	cl := New(Config{Arch: ArchNFSv4, Clients: 1})
	_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		if m.PNFS() {
			return fmt.Errorf("plain NFSv4 mount obtained layouts")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirectWritesLandStriped(t *testing.T) {
	cl := New(Config{Arch: ArchDirectPNFS, Clients: 1, StripeSize: 64 << 10})
	const total = 6 * 64 << 10 // exactly one stripe unit per storage node
	_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, "/striped")
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Synthetic(total)); err != nil {
			return err
		}
		return m.Close(ctx, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	at, err := cl.PVFSMeta.Namespace().LookupPath("/striped")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range cl.Storage {
		if got := s.ObjectSize(pvfsHandle(at.ID)); got != 64<<10 {
			t.Errorf("storage node %d holds %d bytes, want %d", i, got, 64<<10)
		}
	}
	// The MDS learned the size via LAYOUTCOMMIT, not via fan-out.
	if at2, _ := cl.PVFSMeta.Namespace().LookupPath("/striped"); at2.Size != total {
		t.Errorf("MDS size %d, want %d (LAYOUTCOMMIT path broken)", at2.Size, total)
	}
}

func TestTwoTierForwardsBetweenDataServers(t *testing.T) {
	// In 2-tier pNFS the client stripes blindly, so data servers must move
	// data between each other; storage node NICs carry the extra traffic.
	cl := New(Config{Arch: ArchPNFS2Tier, Clients: 1, StripeSize: 2 << 20, WSize: 2 << 20})
	const total = 48 << 20
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, "/fwd")
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Synthetic(total)); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatal(err)
	}
	var interDS time.Duration
	for _, n := range cl.storageNodes {
		interDS += n.NIC.TxBusy()
	}
	// Data servers transmitted data (forwarding writes to the true owner
	// nodes); with direct access they would transmit ~nothing on a write.
	if interDS < 100*time.Millisecond {
		t.Fatalf("storage nodes transmitted for only %v; no inter-DS forwarding", interDS)
	}

	clD := New(Config{Arch: ArchDirectPNFS, Clients: 1, StripeSize: 2 << 20})
	if _, err := clD.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, "/fwd")
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Synthetic(total)); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatal(err)
	}
	var directTx time.Duration
	for _, n := range clD.storageNodes {
		directTx += n.NIC.TxBusy()
	}
	if directTx*10 > interDS {
		t.Fatalf("direct DS tx %v vs 2-tier %v: direct access should eliminate forwarding", directTx, interDS)
	}
}

func TestWarmCachesMakeReadsFast(t *testing.T) {
	cl := New(Config{Arch: ArchDirectPNFS, Clients: 1})
	const size = 64 << 20
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, "/warm")
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, payload.Synthetic(size)); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.WarmCaches("/warm"); err != nil {
		t.Fatal(err)
	}
	before := cl.K.Now()
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Open(ctx, "/warm")
		if err != nil {
			return err
		}
		for off := int64(0); off < size; off += 2 << 20 {
			if _, n, err := m.Read(ctx, f, off, 2<<20); err != nil || n != 2<<20 {
				return fmt.Errorf("read at %d: n=%d err=%v", off, n, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Duration(cl.K.Now() - before)
	// 64 MB over a gigabit NIC is ≥ 0.54 s; disks at 45 MB/s would need
	// ≥ 1.4 s.  Warm reads must be network-bound, not disk-bound.
	if elapsed > 1200*time.Millisecond {
		t.Fatalf("warm read of 64 MB took %v; hitting disk despite warm cache", elapsed)
	}
	var diskReads uint64
	for _, d := range cl.Disks {
		_, _, _, misses, _, _ := d.Stats()
		diskReads += misses
	}
	if diskReads != 0 {
		t.Fatalf("%d disk cache misses on a warm read", diskReads)
	}
}

func TestNamespaceAcrossArchitectures(t *testing.T) {
	for _, arch := range Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			cl := New(Config{Arch: arch, Clients: 1})
			_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				if err := m.Mkdir(ctx, "/dir"); err != nil {
					return fmt.Errorf("mkdir: %w", err)
				}
				for _, name := range []string{"a", "b", "c"} {
					f, err := m.Create(ctx, "/dir/"+name)
					if err != nil {
						return fmt.Errorf("create %s: %w", name, err)
					}
					if err := m.Write(ctx, f, 0, payload.Synthetic(1000)); err != nil {
						return err
					}
					if err := m.Close(ctx, f); err != nil {
						return err
					}
				}
				names, err := m.ReadDir(ctx, "/dir")
				if err != nil || len(names) != 3 {
					return fmt.Errorf("readdir: %v %v", names, err)
				}
				if err := m.Remove(ctx, "/dir/b"); err != nil {
					return fmt.Errorf("remove: %w", err)
				}
				names, _ = m.ReadDir(ctx, "/dir")
				if len(names) != 2 {
					return fmt.Errorf("after remove: %v", names)
				}
				f, err := m.Open(ctx, "/dir/a")
				if err != nil {
					return err
				}
				size, err := m.Stat(ctx, f)
				if err != nil || size != 1000 {
					return fmt.Errorf("stat: %d %v", size, err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSingleFileDisjointRegions(t *testing.T) {
	// The IOR single-file mode: every client writes its own 4 MB region of
	// one file; all data must land correctly.
	for _, arch := range []Arch{ArchDirectPNFS, ArchPVFS2} {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			const region = 4 << 20
			cl := New(Config{Arch: arch, Clients: 4})
			_, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				var f *File
				var err error
				if i == 0 {
					f, err = m.Create(ctx, "/shared")
				} else {
					// Everyone else waits a beat for the create.
					ctx.Sleep(50 * time.Millisecond)
					f, err = m.Open(ctx, "/shared")
				}
				if err != nil {
					return err
				}
				if err := m.Write(ctx, f, int64(i)*region, payload.Synthetic(region)); err != nil {
					return err
				}
				return m.Close(ctx, f)
			})
			if err != nil {
				t.Fatal(err)
			}
			at, err := cl.PVFSMeta.Namespace().LookupPath("/shared")
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for _, s := range cl.Storage {
				total += s.ObjectSize(pvfsHandle(at.ID))
			}
			if total != 4*region {
				t.Fatalf("storage holds %d bytes, want %d", total, 4*region)
			}
		})
	}
}

func TestHundredMbpsSlowsTransfers(t *testing.T) {
	run := func(bps float64) time.Duration {
		cl := New(Config{Arch: ArchDirectPNFS, Clients: 1, NetBPS: bps})
		d, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
			f, err := m.Create(ctx, "/f")
			if err != nil {
				return err
			}
			if err := m.Write(ctx, f, 0, payload.Synthetic(16<<20)); err != nil {
				return err
			}
			return m.Close(ctx, f)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	gig := run(0)           // default gigabit
	fast := run(12_500_000) // 100 Mbps
	if fast < 3*gig {
		t.Fatalf("100 Mbps (%v) not much slower than gigabit (%v)", fast, gig)
	}
}

// pvfsHandle converts a vfs FileID to a pvfs.Handle for test assertions.
func pvfsHandle[T ~uint64](id T) pvfs.Handle { return pvfs.Handle(id) }
