package cluster

import (
	"fmt"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// Steady-state allocation ceilings for the client READ and WRITE hot paths
// (sim transport, mem backend, real bytes).  These pin the zero-copy work:
// pooled transfer buffers, borrowed XDR decode, recycled page-cache chunks.
// The ceilings carry ~35% headroom over measured values; before buffer
// pooling the same loops cost ~1000 (read) and ~1120 (write) allocs per
// pass, so a ceiling trip means a per-chunk copy or per-op allocation has
// crept back into the data path.
const (
	readAllocCeiling  = 520
	writeAllocCeiling = 680
)

func TestReadAllocCeiling(t *testing.T) {
	cl := newBenchCluster(t)
	avg := testing.AllocsPerRun(5, func() {
		if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *Mount, _ int) error {
			m.DropCaches()
			f, err := m.Open(ctx, "/bench")
			if err != nil {
				return err
			}
			for off := int64(0); off < benchFileSize; off += benchBlock {
				p, got, err := m.Read(ctx, f, off, benchBlock)
				if err != nil {
					return err
				}
				if got != benchBlock {
					return fmt.Errorf("short read: %d of %d at %d", got, benchBlock, off)
				}
				p.Release()
			}
			return m.Close(ctx, f)
		}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > readAllocCeiling {
		t.Errorf("cold-cache read pass: %.0f allocs, ceiling %d", avg, readAllocCeiling)
	}
}

func TestWriteAllocCeiling(t *testing.T) {
	cl := newBenchCluster(t)
	buf := make([]byte, benchBlock)
	for i := range buf {
		buf[i] = byte(i)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *Mount, _ int) error {
			f, err := m.Open(ctx, "/bench")
			if err != nil {
				return err
			}
			for off := int64(0); off < benchFileSize; off += benchBlock {
				if err := m.Write(ctx, f, off, payload.Real(buf)); err != nil {
					return err
				}
			}
			if err := m.Fsync(ctx, f); err != nil {
				return err
			}
			return m.Close(ctx, f)
		}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > writeAllocCeiling {
		t.Errorf("gathered write pass: %.0f allocs, ceiling %d", avg, writeAllocCeiling)
	}
}
