package cluster

import (
	"fmt"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// Client-path allocation benchmarks: steady-state READ and WRITE on the
// Direct-pNFS architecture with real bytes end to end (sim transport, mem
// backend).  The CI enginebench job pins allocs/op ceilings on these, so a
// regression that reintroduces per-chunk copies fails the build, not just
// bench review.

const (
	benchFileSize = 8 << 20
	benchBlock    = 2 << 20 // == WSize/RSize: every write gathers a full flush
)

func newBenchCluster(b testing.TB) *Cluster {
	b.Helper()
	cl := New(Config{Arch: ArchDirectPNFS, Clients: 1, Real: true})
	b.Cleanup(func() { _ = cl.Close() })
	if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *Mount, _ int) error {
		f, err := m.Create(ctx, "/bench")
		if err != nil {
			return err
		}
		buf := make([]byte, benchBlock)
		for i := range buf {
			buf[i] = byte(i)
		}
		for off := int64(0); off < benchFileSize; off += benchBlock {
			if err := m.Write(ctx, f, off, payload.Real(buf)); err != nil {
				return err
			}
		}
		return m.Close(ctx, f)
	}); err != nil {
		b.Fatal(err)
	}
	return cl
}

// BenchmarkClientRead measures a cold-cache sequential read of the whole
// file: every iteration drops the client page cache, so each block is
// fetched from the data servers through the full rpc/payload/xdr path.
func BenchmarkClientRead(b *testing.B) {
	cl := newBenchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *Mount, _ int) error {
			m.DropCaches()
			f, err := m.Open(ctx, "/bench")
			if err != nil {
				return err
			}
			for off := int64(0); off < benchFileSize; off += benchBlock {
				p, got, err := m.Read(ctx, f, off, benchBlock)
				if err != nil {
					return err
				}
				if got != benchBlock {
					return fmt.Errorf("short read: %d of %d at %d", got, benchBlock, off)
				}
				p.Release()
			}
			return m.Close(ctx, f)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientWrite measures steady-state gathered write-back: every
// iteration rewrites the file in WSize blocks (each one triggers an async
// flush) and fsyncs, driving the write path end to end.
func BenchmarkClientWrite(b *testing.B) {
	cl := newBenchCluster(b)
	buf := make([]byte, benchBlock)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *Mount, _ int) error {
			f, err := m.Open(ctx, "/bench")
			if err != nil {
				return err
			}
			for off := int64(0); off < benchFileSize; off += benchBlock {
				if err := m.Write(ctx, f, off, payload.Real(buf)); err != nil {
					return err
				}
			}
			if err := m.Fsync(ctx, f); err != nil {
				return err
			}
			return m.Close(ctx, f)
		}); err != nil {
			b.Fatal(err)
		}
	}
}
