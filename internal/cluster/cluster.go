// Package cluster assembles the five architectures the paper evaluates
// (§6.1) onto a simulated fabric with the testbed's geometry: six back-end
// nodes with one disk each (one doubling as metadata manager), gigabit
// Ethernet, 2 MB stripes, 2 MB wsize/rsize, and eight NFS server threads.
//
//	ArchDirectPNFS — pNFS servers co-located on every PVFS2 storage node;
//	                 the layout translator hands clients exact layouts and
//	                 the NFSv4 storage protocol goes direct to storage.
//	ArchPVFS2      — native PVFS2 striping clients (the exported FS).
//	ArchPNFS2Tier  — file-based pNFS with data servers on the storage
//	                 nodes but blind logical striping: data servers fetch
//	                 most bytes from their peers.
//	ArchPNFS3Tier  — file-based pNFS with three dedicated data servers in
//	                 front of three storage nodes (two disks each).
//	ArchNFSv4      — one NFSv4 server exporting the PVFS2 cluster.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"dpnfs/internal/faults"
	"dpnfs/internal/ioengine"
	"dpnfs/internal/metrics"
	"dpnfs/internal/nfs"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/pvfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/scrub"
	"dpnfs/internal/sim"
	"dpnfs/internal/simdisk"
	"dpnfs/internal/simnet"
)

// Arch selects one of the five evaluated architectures.
type Arch string

// The five architectures of §6.
const (
	ArchDirectPNFS Arch = "direct-pnfs"
	ArchPVFS2      Arch = "pvfs2"
	ArchPNFS2Tier  Arch = "pnfs-2tier"
	ArchPNFS3Tier  Arch = "pnfs-3tier"
	ArchNFSv4      Arch = "nfsv4"
)

// Archs lists all architectures in the paper's presentation order.
var Archs = []Arch{ArchDirectPNFS, ArchPVFS2, ArchPNFS2Tier, ArchPNFS3Tier, ArchNFSv4}

// TransportKind selects how a cluster's RPC endpoints are wired.
type TransportKind string

// Transport kinds.
const (
	// TransportSim runs every endpoint on the discrete-event fabric:
	// deterministic virtual time, the mode all figures use.
	TransportSim TransportKind = "sim"
	// TransportTCP runs every endpoint on real loopback sockets:
	// wall-clock time, real goroutine concurrency, real bytes on the wire.
	TransportTCP TransportKind = "tcp"
)

// Service names on the fabric.  Metadata and data roles co-exist on one
// node in several architectures, so they get distinct services.
const (
	ServiceMDS = "nfs-mds"
	ServiceDS  = "nfs-ds"
)

// Config describes one simulated cluster.
type Config struct {
	Arch     Arch
	Clients  int
	Backends int // back-end nodes incl. the metadata manager (paper: 6)

	StripeSize   int64   // parallel FS stripe (paper: 2 MB)
	WSize, RSize int64   // NFS transfer sizes (paper: 2 MB)
	NetBPS       float64 // NIC bandwidth (paper: gigabit; Fig 6c: 100 Mbps)
	Threads      int     // NFS server threads (paper: 8)

	// Unified striped-I/O engine knobs (internal/ioengine), applied to both
	// the NFS and PVFS2 clients.  Zero values keep each client's defaults
	// (PVFS2: window 8, 256 KB transfers; NFS: window 32, no extra split).
	MaxFlight   int   // sliding-window size: concurrent outstanding requests
	MaxTransfer int64 // per-request payload cap; larger extents are split
	// IOWave dispatches striped I/O in lock-step batches instead of the
	// sliding window — the pre-engine behaviour, kept for the bench
	// window-sweep comparison (dpnfs-bench -fig window).
	IOWave bool

	// Tail-latency scheduling knobs (docs/ARCHITECTURE.md "Tail-latency
	// scheduling"), applied to both clients' engines.  All off/zero by
	// default — figures calibrated before these knobs are unchanged.
	//
	// IOBackgroundShare caps the window fraction background work (NFS
	// write-back and readahead) may hold; foreground always dispatches
	// first.  IOHedge enables hedged duplicate reads for stragglers, with
	// IOHedgeAfter flooring and IOHedgeFactor scaling the adaptive
	// threshold.  IOAdaptive lets each engine's window float between
	// IOMinFlight and MaxFlight by AIMD.
	IOBackgroundShare float64
	IOHedge           bool
	IOHedgeAfter      time.Duration
	IOHedgeFactor     float64
	IOAdaptive        bool
	IOMinFlight       int

	NFSCosts  nfs.Costs
	PVFSCosts pvfs.Costs
	Disk      simdisk.Config // template; Name is overridden per node

	// Backend selects the store implementation behind every server
	// (docs/BACKENDS.md): "mem" (default; volatile, the behaviour all
	// figures are calibrated against), "wal" (write-ahead logged — crash
	// events lose nothing synced), or "cached" (memory front, WAL behind,
	// durable at sync/COMMIT points).
	Backend string
	// MetadataBackend and ContentBackend override the store factory per
	// role: MetadataBackend builds the PVFS2 metadata manager's namespace
	// store, ContentBackend builds each storage daemon's object store.
	// Nil derives both from Backend.
	MetadataBackend StoreFactory
	ContentBackend  StoreFactory

	Seed int64
	Real bool // carry real bytes end to end (tests/demos)

	// Transport selects the wiring: the simulated fabric (default) or real
	// loopback TCP.  The same architectures, backends, and workloads run on
	// either; only the bytes' journey differs.
	Transport TransportKind

	// Aggregation optionally overrides the layout's aggregation scheme for
	// Direct-pNFS (paper §4.3 pluggable drivers).  Empty means round-robin.
	Aggregation string
	AggParams   []int64

	// WireChecksums makes servers attach a CRC32C to each READ payload and
	// clients verify it, closing the window between the store's block
	// checksum verification and the bytes landing in the client's cache.
	WireChecksums bool

	// ScrubRateBPS bounds each node's background scrubber to this many
	// verified bytes per virtual second (0 = unpaced).  Scrub passes only
	// run when scheduled (ScheduleScrub) or driven explicitly (ScrubPass).
	ScrubRateBPS int64

	// Metrics is the cluster's observability registry, threaded through
	// every layer (rpc, nfs, pvfs — see docs/METRICS.md).  Nil gets a fresh
	// per-cluster registry; benchmarks pass a shared one to aggregate a
	// whole figure sweep.
	Metrics *metrics.Registry

	// Faults, when set, is the deterministic fault plan replayed against
	// the cluster (docs/FAULTS.md).  While armed (the default; see
	// ArmFaults) the plan re-arms relative to the start of every
	// Run/RunClient, so pair each crash with a restart to leave the
	// cluster healed between runs.  All five architectures accept the same
	// plan.
	Faults *faults.Plan
}

// Defaults fills in the paper's testbed values.
func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Backends <= 0 {
		c.Backends = 6
	}
	if c.StripeSize <= 0 {
		c.StripeSize = 2 << 20
	}
	if c.WSize <= 0 {
		c.WSize = 2 << 20
	}
	if c.RSize <= 0 {
		c.RSize = 2 << 20
	}
	if c.NetBPS == 0 {
		c.NetBPS = simnet.Gigabit
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.NFSCosts == (nfs.Costs{}) {
		c.NFSCosts = nfs.DefaultCosts()
	}
	if c.PVFSCosts == (pvfs.Costs{}) {
		c.PVFSCosts = pvfs.DefaultCosts()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Transport == "" {
		c.Transport = TransportSim
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Backend == "" {
		c.Backend = BackendMem
	}
	if c.MetadataBackend == nil || c.ContentBackend == nil {
		f, err := BackendFactory(c.Backend)
		if err != nil {
			panic(err) // construction-time configuration bug, like unknown Arch
		}
		if c.MetadataBackend == nil {
			c.MetadataBackend = f
		}
		if c.ContentBackend == nil {
			c.ContentBackend = f
		}
	}
	return c
}

// Cluster is a fully wired deployment: on the simulated fabric or over real
// loopback TCP, per Config.Transport.  In TCP mode the simnet nodes still
// exist as topology carriers (names, per-node CPU/NIC models), but no
// simulated services run and time is the wall clock.
type Cluster struct {
	Cfg    Config
	K      *sim.Kernel
	Fabric *simnet.Fabric

	tr         rpc.Transport
	runSeconds *metrics.Histogram

	Storage  []*pvfs.StorageServer
	Disks    []*simdisk.Disk
	PVFSMeta *pvfs.MetaServer
	mounts   []*Mount

	storageNodes []*simnet.Node
	mdsNode      *simnet.Node

	// Fault-injection state (Config.Faults, docs/FAULTS.md).
	injector      *faults.Injector
	faultMu       sync.Mutex
	disarmed      bool
	diskByNode    map[string]*simdisk.Disk
	storageByNode map[string]*pvfs.StorageServer
	skippedFaults *metrics.CounterVec

	// Membership state (elastic join/drain, membership.go).  devIDs maps a
	// node name to its stable pNFS device ID: allocated on first sight,
	// never reused after the node departs (see the device-ID stability note
	// in package pnfs).
	memberMu     sync.Mutex
	devIDs       map[string]pnfs.DeviceID
	nextDevID    uint32
	members      map[string]*member
	layoutGen    uint64
	pendingOps   []memberOp
	reconcileErr error
	memberGauge  *metrics.GaugeVec

	// Rebalance bookkeeping: virtual-time window of the last migration and
	// the test hooks the crash-during-drain suite uses (membership.go).
	migStart, migEnd  time.Duration
	migChunkHook      func(file, chunk int)
	migReissueHook    func()
	rebalanceBytes    *metrics.Counter
	rebalanceFiles    *metrics.Counter
	rebalanceReissued *metrics.Counter

	// Client/backend registries the reconciler pushes topology changes to.
	pvClients  []pvClientRef
	nfsClients []*nfs.Client
	exports    []*exportBackend
	directMDS  *directMDSBackend
	blind      *blindLayouts
	nodeByName map[string]*simnet.Node

	// Background-scrubber state (scrub.go): one scanner per storage node,
	// built on first use; scheduled pass times queued for the next Run.
	scrubOnce    sync.Once
	scrubbers    []*scrub.Scrubber
	scrubMu      sync.Mutex
	scrubTimes   []time.Duration
	scrubResults []ScrubOutcome
}

// pvClientRef remembers which node a PVFS2 client library lives on, so a
// join can dial it a conn to the new storage server.
type pvClientRef struct {
	c    *pvfs.Client
	node *simnet.Node
}

// New builds a cluster for the configuration.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	// Every instrument this cluster resolves — through any layer — carries
	// the architecture label, so a registry shared across a figure sweep
	// (bench.Options.Metrics) stays attributable per architecture.
	cfg.Metrics = cfg.Metrics.WithLabel("arch", string(cfg.Arch))
	k := sim.NewKernel(cfg.Seed)
	f := simnet.NewFabric(k)
	cl := &Cluster{
		Cfg: cfg, K: k, Fabric: f,
		diskByNode:    make(map[string]*simdisk.Disk),
		storageByNode: make(map[string]*pvfs.StorageServer),
		devIDs:        make(map[string]pnfs.DeviceID),
		members:       make(map[string]*member),
		nodeByName:    make(map[string]*simnet.Node),
	}
	cl.skippedFaults = cfg.Metrics.CounterVec("faults_skipped_total",
		"Fault events skipped because the target node is drained or unknown, by event kind and target node.",
		"kind", "node")
	cl.memberGauge = cfg.Metrics.GaugeVec("cluster_members",
		"Storage-node membership by state (active, draining, removed).",
		"state")
	cl.rebalanceBytes = cfg.Metrics.Counter("rebalance_bytes_total",
		"Bytes copied onto their new placement by membership rebalances.")
	cl.rebalanceFiles = cfg.Metrics.Counter("rebalance_files_total",
		"Files whose placement a membership rebalance moved.")
	cl.rebalanceReissued = cfg.Metrics.Counter("rebalance_reissued_chunks_total",
		"Migration chunks re-issued by the second (patient) rebalance pass.")
	switch cfg.Transport {
	case TransportTCP:
		tr := rpc.NewTCPTransport(0)
		tr.Metrics = cfg.Metrics
		cl.tr = tr
	case TransportSim:
		cl.tr = &rpc.FabricTransport{Fabric: f, Metrics: cfg.Metrics}
	default:
		panic(fmt.Sprintf("cluster: unknown transport %q", cfg.Transport))
	}
	cfg.Metrics.GaugeVec("cluster_info",
		"Cluster identity; constant 1, labeled by architecture and transport.",
		"transport").With(string(cfg.Transport)).Set(1)
	// Gauges describe one cluster; under a shared sweep registry each
	// architecture's series reflects its most recently built cluster.
	cfg.Metrics.Gauge("cluster_clients", "Application client mounts.").Set(int64(cfg.Clients))
	cfg.Metrics.Gauge("cluster_backends", "Back-end nodes incl. the metadata manager.").Set(int64(cfg.Backends))
	cl.runSeconds = cfg.Metrics.Histogram("cluster_run_seconds",
		"Workload run durations (virtual time on sim, wall clock on tcp).",
		[]float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000})

	switch cfg.Arch {
	case ArchDirectPNFS:
		cl.buildBackend(cfg.Backends, 1.0)
		cl.buildDirect()
	case ArchPVFS2:
		cl.buildBackend(cfg.Backends, 1.0)
		cl.buildPVFS2()
	case ArchPNFS2Tier:
		cl.buildBackend(cfg.Backends, 1.0)
		cl.build2Tier()
	case ArchPNFS3Tier:
		// Half the nodes become storage (two disks each: more bandwidth,
		// but shared CPU/bus keeps it below 2x — paper §6.2), the other
		// half become dedicated data servers.
		cl.buildBackend(cfg.Backends/2, 1.7)
		cl.build3Tier()
	case ArchNFSv4:
		cl.buildBackend(cfg.Backends, 1.0)
		cl.buildNFSv4()
	default:
		panic(fmt.Sprintf("cluster: unknown architecture %q", cfg.Arch))
	}
	if cfg.Faults != nil {
		cl.injector = faults.NewInjector(cfg.Faults, cl, cfg.Metrics)
	}
	return cl
}

// dial opens a transport conn between two logical nodes, failing loudly:
// wiring errors are construction-time bugs.
func (cl *Cluster) dial(from, to, service string) rpc.Conn {
	conn, err := cl.tr.Dial(from, to, service)
	if err != nil {
		panic(fmt.Sprintf("cluster: dial %s->%s/%s: %v", from, to, service, err))
	}
	return conn
}

// addNode creates a fabric node and records it in the cluster's node
// registry (the registry is what lets fault injection distinguish "known
// node" from "typo or departed member").
func (cl *Cluster) addNode(cfg simnet.NodeConfig) *simnet.Node {
	n := cl.Fabric.AddNode(cfg)
	cl.nodeByName[n.Name] = n
	return n
}

// buildBackend creates the PVFS2 storage nodes and metadata manager.  The
// metadata manager runs on storage node 0 ("one storage node doubling as a
// metadata manager", §6.1).
func (cl *Cluster) buildBackend(nodes int, diskScale float64) {
	cfg := cl.Cfg
	var ioConnsFromMDS []rpc.Conn
	for i := 0; i < nodes; i++ {
		n := cl.addNode(simnet.NodeConfig{
			Name:        fmt.Sprintf("io%d", i),
			BytesPerSec: cfg.NetBPS,
		})
		cl.addStorageSubstrate(n, diskScale)
	}
	cl.mdsNode = cl.storageNodes[0]
	for _, n := range cl.storageNodes {
		ioConnsFromMDS = append(ioConnsFromMDS, cl.dial(cl.mdsNode.Name, n.Name, pvfs.ServiceIO))
	}
	cl.PVFSMeta = pvfs.NewMetaServer(pvfs.MetaConfig{
		Transport: cl.tr, Node: cl.mdsNode, Costs: cfg.PVFSCosts,
		Dist: pvfs.DistParams{
			StripeSize: cfg.StripeSize,
			NumServers: uint32(len(cl.storageNodes)),
			Copies:     cl.distCopies(len(cl.storageNodes)),
		},
		IOConns: ioConnsFromMDS,
		Metrics: cfg.Metrics,
		Store:   cfg.MetadataBackend("mds", cl.diskByNode[cl.mdsNode.Name], cfg.Metrics),
	})
	cl.updateMemberGauges()
}

// distCopies resolves the replication factor the physical PVFS2 substrate
// stores under: the replicated aggregation's copy count, on every
// architecture.  Replicating the substrate itself (not just the Direct-pNFS
// layout) is what gives every client stack a live copy to read-repair
// corrupt blocks from.  Geometry the copy count cannot divide leaves the
// substrate unreplicated — the layout driver rejects it loudly on first
// use (pnfs.AggReplicated registration).
func (cl *Cluster) distCopies(nodes int) uint32 {
	if cl.Cfg.Aggregation != pnfs.AggReplicated || len(cl.Cfg.AggParams) < 1 {
		return 0
	}
	if c := cl.Cfg.AggParams[0]; c > 1 && nodes%int(c) == 0 {
		return uint32(c)
	}
	return 0
}

// addStorageSubstrate attaches a disk, an object store (via the configured
// backend factory), and a PVFS2 storage daemon to node n, and registers the
// node as an active member with a freshly allocated stable device ID.
func (cl *Cluster) addStorageSubstrate(n *simnet.Node, diskScale float64) *pvfs.StorageServer {
	cfg := cl.Cfg
	cl.storageNodes = append(cl.storageNodes, n)
	dcfg := cfg.Disk
	dcfg.Name = n.Name + "/disk"
	if dcfg.ReadBPS == 0 {
		dcfg = simdisk.DefaultConfig(dcfg.Name)
	}
	dcfg.ReadBPS *= diskScale
	dcfg.WriteBPS *= diskScale
	disk := simdisk.New(dcfg)
	cl.Disks = append(cl.Disks, disk)
	cl.diskByNode[n.Name] = disk
	ss := pvfs.NewStorageServer(pvfs.StorageConfig{
		Transport: cl.tr, Node: n, Disk: disk, Costs: cfg.PVFSCosts,
		Metrics:       cfg.Metrics,
		Store:         cfg.ContentBackend(n.Name, disk, cfg.Metrics),
		WireChecksums: cfg.WireChecksums,
	})
	cl.Storage = append(cl.Storage, ss)
	cl.storageByNode[n.Name] = ss
	cl.members[n.Name] = &member{node: n, id: cl.devIDFor(n.Name), state: memberActive}
	return ss
}

// devIDFor returns the node's stable pNFS device ID, allocating the next
// free ID on first sight.  IDs are handed out in first-sight order — so the
// initial build matches the historical positional numbering — and are never
// reused, even after the node drains.
func (cl *Cluster) devIDFor(name string) pnfs.DeviceID {
	if id, ok := cl.devIDs[name]; ok {
		return id
	}
	id := pnfs.DeviceID(cl.nextDevID)
	cl.nextDevID++
	cl.devIDs[name] = id
	return id
}

// pvfsClientAt builds a PVFS2 client library instance on the given node.
// Every client is recorded in pvClients so a later join can hand it a conn
// to the new storage server.
func (cl *Cluster) pvfsClientAt(n *simnet.Node) *pvfs.Client {
	c := cl.pvfsClientWith(n, 0, "", rpc.RetryPolicy{})
	cl.pvClients = append(cl.pvClients, pvClientRef{c: c, node: n})
	return c
}

// pvfsClientWith builds a PVFS2 client on n with an explicit QoS class,
// issuer label, and retry policy (zero values keep the foreground/"pvfs"/
// default-retry behaviour).  The client's IO conns are keyed by stable
// server ID, so its files keep addressing the right daemons across
// membership changes.
func (cl *Cluster) pvfsClientWith(n *simnet.Node, class ioengine.Class, issuer string, retry rpc.RetryPolicy) *pvfs.Client {
	var io []rpc.Conn
	var ids []uint32
	for _, s := range cl.storageNodes {
		if m := cl.members[s.Name]; m != nil && m.state == memberRemoved {
			continue
		}
		io = append(io, cl.dial(n.Name, s.Name, pvfs.ServiceIO))
		ids = append(ids, uint32(cl.devIDFor(s.Name)))
	}
	return pvfs.NewClient(pvfs.ClientConfig{
		Node:            n,
		Costs:           cl.Cfg.PVFSCosts,
		Meta:            cl.dial(n.Name, cl.mdsNode.Name, pvfs.ServiceMeta),
		IO:              io,
		IOIDs:           ids,
		Class:           class,
		Issuer:          issuer,
		Retry:           retry,
		MaxFlight:       cl.Cfg.MaxFlight,
		MaxTransfer:     cl.Cfg.MaxTransfer,
		Wave:            cl.Cfg.IOWave,
		BackgroundShare: cl.Cfg.IOBackgroundShare,
		Hedge:           cl.Cfg.IOHedge,
		HedgeAfter:      cl.Cfg.IOHedgeAfter,
		HedgeFactor:     cl.Cfg.IOHedgeFactor,
		Adaptive:        cl.Cfg.IOAdaptive,
		MinFlight:       cl.Cfg.IOMinFlight,
		Metrics:         cl.Cfg.Metrics,
	})
}

// clientNode creates the i-th application client node.
func (cl *Cluster) clientNode(i int) *simnet.Node {
	return cl.addNode(simnet.NodeConfig{
		Name:        fmt.Sprintf("c%d", i),
		BytesPerSec: cl.Cfg.NetBPS,
	})
}

// nfsMountAt builds an NFSv4.1 mount on node n against the MDS node.  The
// client is recorded in nfsClients so the membership reconciler can recall
// its layouts (the in-process stand-in for CB_LAYOUTRECALL).
func (cl *Cluster) nfsMountAt(n *simnet.Node, mdsNode *simnet.Node) *nfs.Client {
	c := nfs.NewClient(nfs.ClientConfig{
		Fabric: cl.Fabric, Node: n, Costs: cl.Cfg.NFSCosts,
		Name: n.Name,
		MDS:  cl.dial(n.Name, mdsNode.Name, ServiceMDS),
		DialDS: func(addr string) rpc.Conn {
			return cl.dial(n.Name, addr, ServiceDS)
		},
		WSize: cl.Cfg.WSize, RSize: cl.Cfg.RSize,
		MaxReadAhead:    8 * cl.Cfg.RSize,
		MaxFlight:       cl.Cfg.MaxFlight,
		MaxTransfer:     cl.Cfg.MaxTransfer,
		Wave:            cl.Cfg.IOWave,
		BackgroundShare: cl.Cfg.IOBackgroundShare,
		Hedge:           cl.Cfg.IOHedge,
		HedgeAfter:      cl.Cfg.IOHedgeAfter,
		HedgeFactor:     cl.Cfg.IOHedgeFactor,
		Adaptive:        cl.Cfg.IOAdaptive,
		MinFlight:       cl.Cfg.IOMinFlight,
		Real:            cl.Cfg.Real,
		Metrics:         cl.Cfg.Metrics,
	})
	cl.nfsClients = append(cl.nfsClients, c)
	return c
}

// buildDirect wires Direct-pNFS: an NFS data server on every storage node
// (loopback conduit to the local daemon) and the metadata server co-located
// with the PVFS2 MDS, serving translated layouts.
func (cl *Cluster) buildDirect() {
	for i, n := range cl.storageNodes {
		nfsServeOn(cl, n, ServiceDS, &directDSBackend{
			storage: cl.Storage[i],
			node:    n,
			costs:   cl.Cfg.PVFSCosts,
		})
	}
	mdsBackend := &directMDSBackend{
		meta:    cl.PVFSMeta,
		devices: cl.deviceList(cl.storageNodes),
		agg:     cl.Cfg.Aggregation,
		aggP:    cl.Cfg.AggParams,
		proxy:   cl.pvfsClientAt(cl.mdsNode),
	}
	cl.directMDS = mdsBackend
	nfsServeOn(cl, cl.mdsNode, ServiceMDS, mdsBackend)
	for i := 0; i < cl.Cfg.Clients; i++ {
		n := cl.clientNode(i)
		cl.mounts = append(cl.mounts, &Mount{cl: cl, node: n, nfsc: cl.nfsMountAt(n, cl.mdsNode)})
	}
}

// buildPVFS2 wires native PVFS2 clients.
func (cl *Cluster) buildPVFS2() {
	for i := 0; i < cl.Cfg.Clients; i++ {
		n := cl.clientNode(i)
		cl.mounts = append(cl.mounts, &Mount{cl: cl, node: n, pv: cl.pvfsClientAt(n)})
	}
}

// build2Tier wires file-based pNFS with data servers co-located with the
// storage nodes but striping blindly over logical offsets.
func (cl *Cluster) build2Tier() {
	for _, n := range cl.storageNodes {
		cl.exportDSOn(n)
	}
	cl.blind = &blindLayouts{stripe: cl.Cfg.WSize, devices: cl.deviceList(cl.storageNodes), shift: 1}
	mds := &exportBackend{
		pv:      cl.pvfsClientAt(cl.mdsNode),
		node:    cl.mdsNode,
		dist:    cl.PVFSMeta.Dist(),
		layouts: cl.blind,
	}
	cl.exports = append(cl.exports, mds)
	nfsServeOn(cl, cl.mdsNode, ServiceMDS, mds)
	for i := 0; i < cl.Cfg.Clients; i++ {
		n := cl.clientNode(i)
		cl.mounts = append(cl.mounts, &Mount{cl: cl, node: n, nfsc: cl.nfsMountAt(n, cl.mdsNode)})
	}
}

// build3Tier wires file-based pNFS with dedicated data-server nodes in
// front of the storage nodes.
func (cl *Cluster) build3Tier() {
	nDS := cl.Cfg.Backends - len(cl.storageNodes)
	var dsNodes []*simnet.Node
	for i := 0; i < nDS; i++ {
		n := cl.addNode(simnet.NodeConfig{
			Name:        fmt.Sprintf("ds%d", i),
			BytesPerSec: cl.Cfg.NetBPS,
		})
		dsNodes = append(dsNodes, n)
		cl.exportDSOn(n)
	}
	cl.blind = &blindLayouts{stripe: cl.Cfg.WSize, devices: cl.deviceList(dsNodes), shift: 1}
	mds := &exportBackend{
		pv:      cl.pvfsClientAt(dsNodes[0]),
		node:    dsNodes[0],
		dist:    cl.PVFSMeta.Dist(),
		layouts: cl.blind,
	}
	cl.exports = append(cl.exports, mds)
	nfsServeOn(cl, dsNodes[0], ServiceMDS, mds)
	for i := 0; i < cl.Cfg.Clients; i++ {
		n := cl.clientNode(i)
		cl.mounts = append(cl.mounts, &Mount{cl: cl, node: n, nfsc: cl.nfsMountAt(n, dsNodes[0])})
	}
}

// buildNFSv4 wires the single-server export.
func (cl *Cluster) buildNFSv4() {
	srv := cl.addNode(simnet.NodeConfig{Name: "nfssrv", BytesPerSec: cl.Cfg.NetBPS})
	b := &exportBackend{pv: cl.pvfsClientAt(srv), node: srv, dist: cl.PVFSMeta.Dist()}
	cl.exports = append(cl.exports, b)
	nfsServeOn(cl, srv, ServiceMDS, b)
	for i := 0; i < cl.Cfg.Clients; i++ {
		n := cl.clientNode(i)
		cl.mounts = append(cl.mounts, &Mount{cl: cl, node: n, nfsc: cl.nfsMountAt(n, srv)})
	}
}

// deviceList builds pNFS device infos for a node set.  IDs come from the
// stable per-node registry, not the slice position: a device list rebuilt
// after a drain keeps every survivor under its original ID, and a list
// extended by a join gives the newcomer a never-before-seen ID.
func (cl *Cluster) deviceList(nodes []*simnet.Node) []pnfs.DeviceInfo {
	out := make([]pnfs.DeviceInfo, len(nodes))
	for i, n := range nodes {
		out[i] = pnfs.DeviceInfo{ID: cl.devIDFor(n.Name), Addr: n.Name}
	}
	return out
}

// exportDSOn registers a file-based pNFS data server on node n: an NFS
// server whose backend re-exports the PVFS2 file system through a client
// library instance (logical offsets, no layout knowledge).
func (cl *Cluster) exportDSOn(n *simnet.Node) *exportBackend {
	b := &exportBackend{pv: cl.pvfsClientAt(n), node: n, dist: cl.PVFSMeta.Dist()}
	cl.exports = append(cl.exports, b)
	nfsServeOn(cl, n, ServiceDS, b)
	return b
}

// nfsServeOn registers an NFS server for a backend under an explicit
// service name.
func nfsServeOn(cl *Cluster, n *simnet.Node, service string, b nfs.Backend) {
	nfs.NewServer(nfs.ServerConfig{
		Backend: b, Costs: cl.Cfg.NFSCosts, Node: n, Threads: cl.Cfg.Threads,
		Transport: cl.tr, Service: service, Metrics: cl.Cfg.Metrics,
		WireChecksums: cl.Cfg.WireChecksums,
	})
}

// Mounts returns the per-client application mounts.
func (cl *Cluster) Mounts() []*Mount { return cl.mounts }

// FaultCandidates returns the storage nodes a fault plan may crash without
// severing the metadata path: every storage node except the one doubling as
// metadata manager.  The list is identical in spirit across architectures
// ("io1", "io2", ...), so one plan drives all five.
func (cl *Cluster) FaultCandidates() []string {
	cl.memberMu.Lock()
	defer cl.memberMu.Unlock()
	var out []string
	for _, n := range cl.storageNodes {
		if n == cl.mdsNode {
			continue
		}
		if m := cl.members[n.Name]; m != nil && m.state == memberRemoved {
			continue
		}
		out = append(out, n.Name)
	}
	return out
}

// ArmFaults enables (the default) or disables replay of Config.Faults for
// subsequent runs — benchmarks disarm it around setup phases so only the
// measured run suffers the plan.
func (cl *Cluster) ArmFaults(on bool) {
	cl.faultMu.Lock()
	cl.disarmed = !on
	cl.faultMu.Unlock()
}

// armedInjector returns the injector if a plan is configured and armed.
func (cl *Cluster) armedInjector() *faults.Injector {
	cl.faultMu.Lock()
	defer cl.faultMu.Unlock()
	if cl.disarmed {
		return nil
	}
	return cl.injector
}

// faultTargetable reports whether a fault event may touch the named node:
// it must be one the cluster built and must not have been drained away by
// membership.  Unknown and departed targets are counted no-ops
// (faults_skipped_total) rather than fabric-lookup panics — a fault plan
// outlives the topology it was written against.
func (cl *Cluster) faultTargetable(kind, node string) bool {
	cl.memberMu.Lock()
	_, known := cl.nodeByName[node]
	m := cl.members[node]
	cl.memberMu.Unlock()
	if known && (m == nil || m.state != memberRemoved) {
		return true
	}
	cl.skippedFaults.With(kind, node).Inc()
	return false
}

// SetNodeDown implements faults.Target.  On the simulated fabric the node
// itself is marked down (the rpc layer turns calls to it into retryable
// timeouts); in TCP mode the transport gates every conn dialed to the node.
func (cl *Cluster) SetNodeDown(node string, down bool) {
	if !cl.faultTargetable("node-down", node) {
		return
	}
	if tcp, ok := cl.tr.(*rpc.TCPTransport); ok {
		tcp.SetNodeDown(node, down)
		return
	}
	cl.Fabric.Node(node).SetDown(down)
}

// SetLink implements faults.Target: loss/extra-delay on the node's NIC.
// Link faults are a property of the simulated network model; in TCP mode
// (real sockets) they are a no-op.
func (cl *Cluster) SetLink(node string, loss float64, extraRTT time.Duration) {
	if !cl.faultTargetable("link", node) {
		return
	}
	if _, ok := cl.tr.(*rpc.TCPTransport); ok {
		return
	}
	cl.Fabric.Node(node).SetLink(loss, extraRTT)
}

// SetDiskSlow implements faults.Target: scales the node's disk service
// time.  Disks are simulated-only state, so this is a no-op in TCP mode;
// targets without a disk (dedicated data servers, clients, drained nodes)
// are counted no-ops like any other untargetable node.
func (cl *Cluster) SetDiskSlow(node string, factor float64) {
	if !cl.faultTargetable("disk-slow", node) {
		return
	}
	if _, ok := cl.tr.(*rpc.TCPTransport); ok {
		return
	}
	if d, ok := cl.diskByNode[node]; ok {
		d.SetSlowFactor(factor)
	} else {
		cl.skippedFaults.With("disk-slow", node).Inc()
	}
}

// Run drives the simulation with fn as client i's application process and
// returns the virtual duration from start to when every application process
// has finished.
func (cl *Cluster) Run(fn func(ctx *rpc.Ctx, m *Mount, i int) error) (time.Duration, error) {
	return cl.runSubset(cl.mounts, fn)
}

// RunClient runs fn only on client i's mount (setup phases).
func (cl *Cluster) RunClient(i int, fn func(ctx *rpc.Ctx, m *Mount, i int) error) (time.Duration, error) {
	return cl.runSubset(cl.mounts[i:i+1], fn)
}

func (cl *Cluster) runSubset(mounts []*Mount, fn func(ctx *rpc.Ctx, m *Mount, i int) error) (time.Duration, error) {
	d, err := cl.runSubsetInner(mounts, fn)
	if err == nil {
		cl.runSeconds.ObserveDuration(d)
	}
	return d, err
}

func (cl *Cluster) runSubsetInner(mounts []*Mount, fn func(ctx *rpc.Ctx, m *Mount, i int) error) (time.Duration, error) {
	if cl.Cfg.Transport == TransportTCP {
		return cl.runSubsetRealtime(mounts, fn)
	}
	errs := make([]error, len(mounts))
	start := cl.K.Now()
	finish := start
	if inj := cl.armedInjector(); inj != nil {
		// The fault driver replays the plan relative to this run's start.
		// The kernel drains all scheduled events before Run returns, so
		// every event fires even if the applications finish first — a
		// paired crash/restart plan always leaves the cluster healed.
		events := inj.Events()
		cl.K.Go("faults-driver", func(p *sim.Proc) {
			for _, ev := range events {
				p.SleepUntilTime(start + sim.Time(ev.When()))
				inj.Apply(ev)
			}
		})
	}
	if ops := cl.takePendingOps(); len(ops) > 0 {
		// The membership reconciler runs as its own simulated process,
		// applying each scheduled join/drain relative to this run's start
		// (same shape as the fault driver above).  Errors are recorded on
		// the cluster — applications keep running through them, exactly as
		// they would through a failed operator action.
		cl.K.Go("reconcile-driver", func(p *sim.Proc) {
			ctx := &rpc.Ctx{P: p}
			for _, op := range ops {
				p.SleepUntilTime(start + sim.Time(op.at))
				if err := cl.applyMemberOp(ctx, op); err != nil {
					cl.memberMu.Lock()
					cl.reconcileErr = err
					cl.memberMu.Unlock()
				}
			}
		})
	}
	if times := cl.takeScrubTimes(); len(times) > 0 {
		// The scrub driver mirrors the fault driver: a finite schedule of
		// pass times replayed relative to this run's start, so the kernel
		// still drains and every scheduled pass runs even if the
		// applications finish first.  Scan failures are recorded in the
		// pass outcomes, not surfaced as run errors.
		cl.K.Go("scrub-driver", func(p *sim.Proc) {
			ctx := &rpc.Ctx{P: p}
			for _, at := range times {
				p.SleepUntilTime(start + sim.Time(at))
				cl.scrubPassCtx(ctx, at)
			}
		})
	}
	for i, m := range mounts {
		i, m := i, m
		cl.K.Go(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			ctx := &rpc.Ctx{P: p}
			if err := m.mount(ctx); err != nil {
				errs[i] = err
				return
			}
			if err := fn(ctx, m, i); err != nil {
				errs[i] = err
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	}
	if err := cl.K.Run(); err != nil {
		return 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Duration(finish - start), nil
}

// runSubsetRealtime drives the application processes as real goroutines
// against the TCP transport, measuring wall-clock time.  Ctx.P is nil: all
// simulated resource charges are no-ops and only the sockets set the pace.
func (cl *Cluster) runSubsetRealtime(mounts []*Mount, fn func(ctx *rpc.Ctx, m *Mount, i int) error) (time.Duration, error) {
	errs := make([]error, len(mounts))
	start := time.Now()
	if inj := cl.armedInjector(); inj != nil {
		// Wall-clock fault driver.  Events not yet due when the run ends
		// are skipped (unlike the simulated driver, which always drains);
		// plans for TCP runs should fit inside the workload's duration.
		stop := make(chan struct{})
		var drv sync.WaitGroup
		drv.Add(1)
		go func() {
			defer drv.Done()
			for _, ev := range inj.Events() {
				if d := time.Until(start.Add(ev.When())); d > 0 {
					select {
					case <-time.After(d):
					case <-stop:
						return
					}
				}
				inj.Apply(ev)
			}
		}()
		defer func() {
			close(stop)
			drv.Wait()
		}()
	}
	var wg sync.WaitGroup
	for i, m := range mounts {
		wg.Add(1)
		go func(i int, m *Mount) {
			defer wg.Done()
			ctx := &rpc.Ctx{}
			if err := m.mount(ctx); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(ctx, m, i)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// Transport exposes the cluster's RPC wiring (cmd/dpnfs-serve prints TCP
// addresses from it).
func (cl *Cluster) Transport() rpc.Transport { return cl.tr }

// Metrics returns the cluster's observability registry: every layer's
// instruments aggregated per cluster (or per figure sweep when Config
// supplied a shared registry).  cmd/dpnfs-serve exposes it at /metrics;
// dpnfs-bench embeds its snapshot in JSON reports.
func (cl *Cluster) Metrics() *metrics.Registry { return cl.Cfg.Metrics }

// Close tears down transport state: listeners and connection pools in TCP
// mode, a no-op on the simulated fabric.  TCP-mode clusters must be closed
// or they leak sockets.
func (cl *Cluster) Close() error { return cl.tr.Close() }

// NodeStats is a utilization snapshot for one back-end node.
type NodeStats struct {
	Name            string
	NICTx, NICRx    time.Duration
	CPUBusy         time.Duration
	DiskBusy        time.Duration
	DiskReads       uint64
	DiskWrites      uint64
	DiskCacheHits   uint64
	DiskCacheMisses uint64
}

// Stats reports per-storage-node utilization accumulated so far — the raw
// material for bottleneck analysis (cmd/dpnfs-trace).
func (cl *Cluster) Stats() []NodeStats {
	out := make([]NodeStats, len(cl.storageNodes))
	for i, n := range cl.storageNodes {
		s := NodeStats{
			Name:    n.Name,
			NICTx:   n.NIC.TxBusy(),
			NICRx:   n.NIC.RxBusy(),
			CPUBusy: n.CPU.BusyTime(),
		}
		if i < len(cl.Disks) {
			d := cl.Disks[i]
			s.DiskBusy = d.BusyTime()
			s.DiskReads, s.DiskWrites, s.DiskCacheHits, s.DiskCacheMisses, _, _ = d.Stats()
		}
		out[i] = s
	}
	return out
}

// Now returns the cluster's current virtual time.
func (cl *Cluster) Now() time.Duration { return time.Duration(cl.K.Now()) }

// WarmCaches marks every storage node's disk cache resident for the named
// file, reproducing the paper's warm-server-cache read setup (§6.2).
func (cl *Cluster) WarmCaches(path string) error {
	at, err := cl.PVFSMeta.Namespace().LookupPath(path)
	if err != nil {
		return err
	}
	h := uint64(at.ID)
	for i, s := range cl.Storage {
		size := s.ObjectSize(pvfs.Handle(h))
		cl.Disks[i].Warm(h, 0, size)
	}
	return nil
}
