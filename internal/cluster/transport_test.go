package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

// parityPattern is the deterministic content client i writes at offset off.
func parityPattern(i int, off int64) byte {
	return byte(31*i + 7*int(off%251) + int(off/251))
}

// driveParityWorkload runs the figure-style Direct-pNFS sequence on a
// cluster of the given transport kind: two clients each create a file,
// write it in odd-sized chunks (spanning stripe units and partial blocks),
// fsync, close, reopen, and read it back in small blocks.  It returns the
// bytes each client read.
func driveParityWorkload(t *testing.T, kind TransportKind) [][]byte {
	t.Helper()
	const (
		clients  = 2
		stripe   = 64 << 10
		fileSize = 300<<10 + 17 // several stripes, odd tail
		wchunk   = 50_000       // misaligned write size
		rchunk   = 8 << 10
	)
	cl := New(Config{
		Arch:       ArchDirectPNFS,
		Clients:    clients,
		Backends:   4,
		StripeSize: stripe,
		WSize:      stripe,
		RSize:      stripe,
		Real:       true,
		Transport:  kind,
	})
	defer cl.Close()

	if _, err := cl.RunClient(0, func(ctx *rpc.Ctx, m *Mount, _ int) error {
		return m.Mkdir(ctx, "/data")
	}); err != nil {
		t.Fatalf("%s setup: %v", kind, err)
	}

	path := func(i int) string { return fmt.Sprintf("/data/f%d", i) }
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		f, err := m.Create(ctx, path(i))
		if err != nil {
			return err
		}
		for off := int64(0); off < fileSize; off += wchunk {
			n := int64(wchunk)
			if off+n > fileSize {
				n = fileSize - off
			}
			buf := make([]byte, n)
			for k := range buf {
				buf[k] = parityPattern(i, off+int64(k))
			}
			if err := m.Write(ctx, f, off, payload.Real(buf)); err != nil {
				return err
			}
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("%s write phase: %v", kind, err)
	}

	out := make([][]byte, clients)
	if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
		m.DropCaches()
		f, err := m.Open(ctx, path(i))
		if err != nil {
			return err
		}
		size, err := m.Size(ctx, f)
		if err != nil {
			return err
		}
		if size != fileSize {
			return fmt.Errorf("size = %d, want %d", size, fileSize)
		}
		got := make([]byte, 0, size)
		for off := int64(0); off < size; off += rchunk {
			data, n, err := m.Read(ctx, f, off, rchunk)
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("unexpected EOF at %d", off)
			}
			if data.Bytes == nil {
				return fmt.Errorf("synthetic payload at %d on a Real mount", off)
			}
			got = append(got, data.Bytes...)
		}
		out[i] = got
		return m.Close(ctx, f)
	}); err != nil {
		t.Fatalf("%s read phase: %v", kind, err)
	}
	return out
}

// TestTCPTransportParity drives the same Direct-pNFS read/write sequence
// over the simulated fabric and over a real localhost TCP cluster and
// asserts byte-identical results (and that both match the written pattern).
func TestTCPTransportParity(t *testing.T) {
	sim := driveParityWorkload(t, TransportSim)
	tcp := driveParityWorkload(t, TransportTCP)
	for i := range sim {
		for off, b := range sim[i] {
			if want := parityPattern(i, int64(off)); b != want {
				t.Fatalf("sim client %d: byte %d = %#x, want %#x", i, off, b, want)
			}
		}
		if !bytes.Equal(sim[i], tcp[i]) {
			t.Fatalf("client %d: TCP read-back differs from simulated fabric (lens %d vs %d)",
				i, len(tcp[i]), len(sim[i]))
		}
	}
}

// TestTCPAllArchitectures smoke-tests every architecture over real loopback
// sockets: create, write, fsync, stat, read back, readdir.
func TestTCPAllArchitectures(t *testing.T) {
	for _, arch := range Archs {
		arch := arch
		t.Run(string(arch), func(t *testing.T) {
			cl := New(Config{
				Arch:       arch,
				Clients:    2,
				Backends:   4,
				StripeSize: 64 << 10,
				WSize:      64 << 10,
				RSize:      64 << 10,
				Real:       true,
				Transport:  TransportTCP,
			})
			defer cl.Close()
			msg := []byte("direct-pnfs over real sockets: " + string(arch))
			if _, err := cl.Run(func(ctx *rpc.Ctx, m *Mount, i int) error {
				path := fmt.Sprintf("/f%d-%s", i, arch)
				f, err := m.Create(ctx, path)
				if err != nil {
					return err
				}
				if err := m.Write(ctx, f, 0, payload.Real(msg)); err != nil {
					return err
				}
				if err := m.Fsync(ctx, f); err != nil {
					return err
				}
				if err := m.Close(ctx, f); err != nil {
					return err
				}
				f, err = m.Open(ctx, path)
				if err != nil {
					return err
				}
				got, n, err := m.Read(ctx, f, 0, int64(len(msg))+10)
				if err != nil {
					return err
				}
				if n != int64(len(msg)) || !payload.Equal(got, payload.Real(msg)) {
					return fmt.Errorf("read back %d bytes %q, want %q", n, got.Bytes, msg)
				}
				return m.Close(ctx, f)
			}); err != nil {
				t.Fatalf("%s over TCP: %v", arch, err)
			}
		})
	}
}
