package nfs

import (
	"sync"
	"sync/atomic"

	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
)

// pageCache is the client-side cache for one open file: byte-granular
// residency and dirtiness, with real content kept in a sparse store when
// the mount operates on real bytes (integration tests and the TCP demo).
// Benchmarks run synthetic, where only the extents matter.
//
// There is no eviction: the paper's working sets fit client RAM (≤ 650 MB
// per client against 2 GB), and synthetic mode stores no bytes anyway.
// The extent lists are guarded by mu: parallel striped fetches and flushes
// run as concurrent goroutines in real-time (TCP) mode.  Under simulation
// the cooperative scheduler makes the locking moot but harmless.
type pageCache struct {
	mu       sync.Mutex
	resident extList
	dirty    extList
	store    *mem.Store // nil in synthetic mode
	file     store.FileID
	// refs counts who can still read the cache: the client's inode cache
	// holds one reference and every open File sharing the cache holds one.
	// The last release returns the backing chunks to the mem chunk pool, so
	// DropCaches recycles a whole working set instead of leaving it to GC.
	refs atomic.Int32
}

func newPageCache(real bool) *pageCache {
	pc := &pageCache{}
	pc.refs.Store(1)
	if real {
		pc.store = mem.New()
		at, err := pc.store.Create(pc.store.Root(), "cache")
		if err != nil {
			panic("nfs: page cache init: " + err.Error())
		}
		pc.file = at.ID
	}
	return pc
}

// retain adds a reference (an additional File opening the same inode).
func (pc *pageCache) retain() { pc.refs.Add(1) }

// release drops a reference; the last one discards the backing store's
// chunks to the mem chunk pool.  Callers must not touch the cache after
// their final release.
func (pc *pageCache) release() {
	if n := pc.refs.Add(-1); n == 0 {
		if pc.store != nil {
			pc.store.Discard()
		}
	} else if n < 0 {
		panic("nfs: pageCache over-released")
	}
}

// write installs data at off as resident and dirty.
func (pc *pageCache) write(off int64, data payload.Payload) {
	end := off + data.Len()
	pc.mu.Lock()
	pc.resident = pc.resident.insert(off, end)
	pc.dirty = pc.dirty.insert(off, end)
	pc.mu.Unlock()
	if pc.store != nil && data.Bytes != nil {
		if _, err := pc.store.WriteAt(pc.file, off, data.Bytes); err != nil {
			panic("nfs: page cache write: " + err.Error())
		}
	}
}

// fill installs fetched data at off as resident (clean).
func (pc *pageCache) fill(off int64, data payload.Payload) {
	pc.mu.Lock()
	pc.resident = pc.resident.insert(off, off+data.Len())
	pc.mu.Unlock()
	if pc.store != nil && data.Bytes != nil {
		if _, err := pc.store.WriteAt(pc.file, off, data.Bytes); err != nil {
			panic("nfs: page cache fill: " + err.Error())
		}
	}
}

// missingResident returns the gaps of [lo, hi) not yet resident.
func (pc *pageCache) missingResident(lo, hi int64) []extent {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.resident.missing(lo, hi)
}

// truncate drops cached state at and beyond size.
func (pc *pageCache) truncate(size int64) {
	pc.mu.Lock()
	pc.resident = pc.resident.subtract(size, 1<<62)
	pc.dirty = pc.dirty.subtract(size, 1<<62)
	pc.mu.Unlock()
}

// firstDirty returns the lowest dirty extent.
func (pc *pageCache) firstDirty() (extent, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.dirty.first()
}

// slice returns the cached content of [off, off+n) — the caller must have
// established residency.  Synthetic mode returns a synthetic payload.
// Real-mode slices are backed by pooled buffers: the consumer (a flush's
// RPC path, or the application reading through Mount.Read) releases the
// payload when done; unreleased payloads just fall to the GC.
func (pc *pageCache) slice(off, n int64) payload.Payload {
	if pc.store == nil {
		return payload.Synthetic(n)
	}
	buf := rpc.GetBuf(int(n))
	// Bytes beyond the sparse store's size are holes; ReadAt zero-fills
	// only up to size, so read what exists and zero the (dirty, pooled)
	// tail explicitly.
	got, err := pc.store.ReadAt(pc.file, off, buf)
	if err != nil {
		panic("nfs: page cache read: " + err.Error())
	}
	clear(buf[got:])
	return payload.RealPooled(buf, func() { rpc.PutBuf(buf) })
}

// clean marks [off, end) as flushed.
func (pc *pageCache) clean(off, end int64) {
	pc.mu.Lock()
	pc.dirty = pc.dirty.subtract(off, end)
	pc.mu.Unlock()
}

// dirtyRunAtLeast returns the lowest dirty extent of at least n bytes.
func (pc *pageCache) dirtyRunAtLeast(n int64) (extent, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, e := range pc.dirty {
		if e.len() >= n {
			return e, true
		}
	}
	return extent{}, false
}
