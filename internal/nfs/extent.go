package nfs

// extent is a half-open byte range [Off, End).
type extent struct {
	Off, End int64
}

func (e extent) len() int64 { return e.End - e.Off }

// extList is a sorted, merged list of non-overlapping extents.  It tracks
// page-cache residency and dirtiness at byte granularity.
type extList []extent

// insert adds [off, end), merging with neighbours.
func (l extList) insert(off, end int64) extList {
	if off >= end {
		return l
	}
	out := make(extList, 0, len(l)+1)
	i := 0
	for ; i < len(l) && l[i].End < off; i++ {
		out = append(out, l[i])
	}
	ne := extent{off, end}
	for ; i < len(l) && l[i].Off <= end; i++ {
		if l[i].Off < ne.Off {
			ne.Off = l[i].Off
		}
		if l[i].End > ne.End {
			ne.End = l[i].End
		}
	}
	out = append(out, ne)
	out = append(out, l[i:]...)
	return out
}

// subtract removes [off, end).
func (l extList) subtract(off, end int64) extList {
	if off >= end {
		return l
	}
	out := make(extList, 0, len(l)+1)
	for _, e := range l {
		if e.End <= off || e.Off >= end {
			out = append(out, e)
			continue
		}
		if e.Off < off {
			out = append(out, extent{e.Off, off})
		}
		if e.End > end {
			out = append(out, extent{end, e.End})
		}
	}
	return out
}

// missing returns the gaps of [off, end) not covered by the list.
func (l extList) missing(off, end int64) []extent {
	var gaps []extent
	cur := off
	for _, e := range l {
		if e.End <= cur {
			continue
		}
		if e.Off >= end {
			break
		}
		if e.Off > cur {
			gaps = append(gaps, extent{cur, e.Off})
		}
		if e.End > cur {
			cur = e.End
		}
		if cur >= end {
			return gaps
		}
	}
	if cur < end {
		gaps = append(gaps, extent{cur, end})
	}
	return gaps
}

// contains reports whether [off, end) is fully covered.
func (l extList) contains(off, end int64) bool {
	return len(l.missing(off, end)) == 0
}

// overlaps reports whether any byte of [off, end) is covered.
func (l extList) overlaps(off, end int64) bool {
	for _, e := range l {
		if e.Off < end && off < e.End {
			return true
		}
	}
	return false
}

// total returns the covered byte count.
func (l extList) total() int64 {
	var n int64
	for _, e := range l {
		n += e.len()
	}
	return n
}

// first returns the lowest extent, if any.
func (l extList) first() (extent, bool) {
	if len(l) == 0 {
		return extent{}, false
	}
	return l[0], true
}
