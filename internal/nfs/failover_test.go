package nfs

import (
	"bytes"
	"errors"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/xdr"
)

// pnfsTestBackend grants layouts over two devices; both the MDS and the
// healthy data server share its store, so I/O through either path lands in
// the same place (the Direct-pNFS arrangement, minus the daemon plumbing).
type pnfsTestBackend struct {
	*VFSBackend
}

func (b *pnfsTestBackend) DevList(*rpc.Ctx) ([]pnfs.DeviceInfo, error) {
	return []pnfs.DeviceInfo{{ID: 0, Addr: "good"}, {ID: 1, Addr: "bad"}}, nil
}

func (b *pnfsTestBackend) LayoutGet(_ *rpc.Ctx, fh uint64) (*pnfs.FileLayout, error) {
	return &pnfs.FileLayout{
		Aggregation: pnfs.AggRoundRobin,
		Params:      []int64{64 << 10},
		Devices:     []pnfs.DeviceID{0, 1},
		FHs:         []uint64{fh, fh},
		Direct:      false, // logical offsets: both servers see the same store
	}, nil
}

func (b *pnfsTestBackend) LayoutCommit(*rpc.Ctx, uint64, int64) error { return nil }

// failConn always errors, simulating a dead data server.
type failConn struct{}

var errDeadDS = errors.New("nfs test: data server unreachable")

func (failConn) Call(*rpc.Ctx, uint32, xdr.Marshaler, xdr.Unmarshaler) error {
	return errDeadDS
}

// TestFailoverPNFSFallsBackThroughMDS is the protocol-level half of the
// failover story: a permanently dead data server (not a crash/restart —
// the conn always errors) must push every affected extent through the
// layout-recovery ladder and land on the MDS-proxied path.  The
// cluster-level, table-driven suite that runs crash/recover against all
// five architectures is TestFailoverAllArchitectures in internal/cluster.
func TestFailoverPNFSFallsBackThroughMDS(t *testing.T) {
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	mdsNode := f.AddNode(simnet.NodeConfig{Name: "mds"})
	goodNode := f.AddNode(simnet.NodeConfig{Name: "good"})
	clNode := f.AddNode(simnet.NodeConfig{Name: "client"})

	backend := &pnfsTestBackend{NewVFSBackend(nil)}
	mds := NewServer(ServerConfig{Backend: backend, Costs: DefaultCosts(), Node: mdsNode})
	rpc.ServeSim(rpc.ServerConfig{Fabric: f, Node: mdsNode, Service: "mds", Handler: mds.Handle})
	ds := NewServer(ServerConfig{Backend: backend, Costs: DefaultCosts(), Node: goodNode})
	rpc.ServeSim(rpc.ServerConfig{Fabric: f, Node: goodNode, Service: "ds", Handler: ds.Handle})

	client := NewClient(ClientConfig{
		Fabric: f, Node: clNode, Costs: DefaultCosts(), Real: true,
		MDS: &rpc.SimTransport{Fabric: f, Src: clNode, Dst: mdsNode, Service: "mds"},
		DialDS: func(addr string) rpc.Conn {
			if addr == "bad" {
				return failConn{}
			}
			return &rpc.SimTransport{Fabric: f, Src: clNode, Dst: goodNode, Service: "ds"}
		},
		WSize: 64 << 10, RSize: 64 << 10,
	})

	data := bytes.Repeat([]byte("failover"), 40<<10) // 320 KiB over 5 stripe units
	k.Go("app", func(p *sim.Proc) {
		ctx := &rpc.Ctx{P: p}
		if err := client.Mount(ctx); err != nil {
			t.Error(err)
			return
		}
		if !client.PNFS() {
			t.Error("mount did not obtain layouts")
			return
		}
		fl, err := client.Create(ctx, "/x")
		if err != nil {
			t.Error(err)
			return
		}
		// Half the stripe units route to the dead DS; the writes must still
		// complete via the MDS fallback.
		if err := client.Write(ctx, fl, 0, payload.Real(data)); err != nil {
			t.Errorf("write with dead DS: %v", err)
			return
		}
		if err := client.Close(ctx, fl); err != nil {
			t.Errorf("close with dead DS: %v", err)
			return
		}
		// Cold re-read must also survive the dead DS.
		client.DropCaches()
		g, err := client.Open(ctx, "/x")
		if err != nil {
			t.Error(err)
			return
		}
		got, n, err := client.Read(ctx, g, 0, int64(len(data)))
		if err != nil || n != int64(len(data)) {
			t.Errorf("read with dead DS: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(got.Bytes, data) {
			t.Error("fallback path corrupted data")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The server-side store must hold the complete file.
	at, err := backend.Store.LookupPath("/x")
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != int64(len(data)) {
		t.Fatalf("server holds %d bytes, want %d", at.Size, len(data))
	}
}
