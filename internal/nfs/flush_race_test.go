package nfs

import (
	"errors"
	"sync/atomic"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/xdr"
)

// flakyConn is a real-time MDS stub: WRITE compounds alternate between
// success and failure, so concurrent flush goroutines hit both the
// asyncErr and the touched-map paths at once.
type flakyConn struct {
	calls atomic.Uint64
}

var errFlaky = errors.New("nfs test: injected flush failure")

func (c *flakyConn) Call(_ *rpc.Ctx, _ uint32, args xdr.Marshaler, reply xdr.Unmarshaler) error {
	n := c.calls.Add(1)
	if n%2 == 0 {
		return errFlaky
	}
	ca := args.(*CompoundArgs)
	rep := reply.(*CompoundRep)
	rep.Status = 0
	rep.Results = make([]Result, len(ca.Ops))
	return nil
}

// TestFlushAsyncErrRace is the regression test for the File.asyncErr data
// race (ISSUE 4): background write-back flushes run as real goroutines in
// real-time mode and record failures and touched devices concurrently.
// Under -race this fails if asyncErr or touched are accessed without
// pendMu.
func TestFlushAsyncErrRace(t *testing.T) {
	conn := &flakyConn{}
	c := NewClient(ClientConfig{
		MDS:           conn,
		Costs:         DefaultCosts(),
		WSize:         4 << 10,
		FlushParallel: 8,
		Name:          "race-test",
	})
	f := &File{
		c:       c,
		Path:    "/race",
		cache:   newPageCache(false),
		touched: make(map[int]bool),
	}
	ctx := &rpc.Ctx{} // real-time mode: flushes are concurrent goroutines
	const chunks = 64
	for i := 0; i < chunks; i++ {
		if err := c.Write(ctx, f, int64(i)*(4<<10), payload.Synthetic(4<<10)); err != nil {
			t.Fatal(err)
		}
	}
	// Fsync must join every in-flight flush and surface exactly the
	// injected failure (half the flushes fail).
	if err := c.Fsync(ctx, f); !errors.Is(err, errFlaky) {
		t.Fatalf("Fsync = %v, want the injected flush error", err)
	}
	// The error is consumed: with the conn now healthy-ish, remaining state
	// must be consistent (touched survived the failed fsync's early return).
	f.pendMu.Lock()
	touched := len(f.touched)
	f.pendMu.Unlock()
	if touched == 0 {
		t.Error("no touched devices recorded despite successful flushes")
	}
}
