package nfs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"dpnfs/internal/fserr"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/vfs"
	"dpnfs/internal/xdr"
)

// testMount wires one NFS server (VFSBackend) and one client mount.
type testMount struct {
	k      *sim.Kernel
	client *Client
	server *Server
	back   *VFSBackend
}

func newTestMount(t *testing.T, real bool) *testMount {
	t.Helper()
	return newTestMountFull(t, real, nil)
}

// newTestMountWithRegistry wires the mount's client into a shared metrics
// registry (metrics_test.go).
func newTestMountWithRegistry(t *testing.T, reg *metrics.Registry) *testMount {
	t.Helper()
	return newTestMountFull(t, false, reg)
}

func newTestMountFull(t *testing.T, real bool, reg *metrics.Registry) *testMount {
	t.Helper()
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	srvNode := f.AddNode(simnet.NodeConfig{Name: "server"})
	clNode := f.AddNode(simnet.NodeConfig{Name: "client"})
	back := NewVFSBackend(nil)
	server := NewServer(ServerConfig{Fabric: f, Node: srvNode, Backend: back, Costs: DefaultCosts()})
	client := NewClient(ClientConfig{
		Fabric: f, Node: clNode, Costs: DefaultCosts(),
		MDS:          &rpc.SimTransport{Fabric: f, Src: clNode, Dst: srvNode, Service: Service},
		Real:         real,
		MaxReadAhead: 4 << 20,
		Metrics:      reg,
	})
	return &testMount{k: k, client: client, server: server, back: back}
}

func (m *testMount) run(t *testing.T, fn func(ctx *rpc.Ctx)) {
	t.Helper()
	m.k.Go("app", func(p *sim.Proc) {
		ctx := &rpc.Ctx{P: p}
		if err := m.client.Mount(ctx); err != nil {
			t.Fatal(err)
		}
		fn(ctx)
	})
	if err := m.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMountEstablishesSession(t *testing.T) {
	m := newTestMount(t, false)
	m.run(t, func(ctx *rpc.Ctx) {
		if m.client.session == 0 || m.client.clientID == 0 {
			t.Error("mount did not establish a session")
		}
		if m.client.PNFS() {
			t.Error("VFS backend must not offer pNFS")
		}
	})
}

func TestCreateWriteReadBack(t *testing.T) {
	m := newTestMount(t, true)
	data := []byte("direct pnfs reproduces the paper")
	m.run(t, func(ctx *rpc.Ctx) {
		f, err := m.client.Create(ctx, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.client.Write(ctx, f, 0, payload.Real(data)); err != nil {
			t.Fatal(err)
		}
		// Read-your-writes from the cache, before any flush.
		got, n, err := m.client.Read(ctx, f, 0, int64(len(data)))
		if err != nil || n != int64(len(data)) || !bytes.Equal(got.Bytes, data) {
			t.Fatalf("cache read: %q %d %v", got.Bytes, n, err)
		}
		if err := m.client.Close(ctx, f); err != nil {
			t.Fatal(err)
		}
		// Verify the server actually holds the bytes.
		at, err := m.back.Store.LookupPath("/f")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(data))
		m.back.Store.ReadAt(at.ID, 0, buf)
		if !bytes.Equal(buf, data) {
			t.Fatalf("server holds %q, want %q", buf, data)
		}
	})
}

func TestReadFromColdCache(t *testing.T) {
	m := newTestMount(t, true)
	m.run(t, func(ctx *rpc.Ctx) {
		// Seed server-side directly.
		at, _ := m.back.Store.Create(m.back.Store.Root(), "seeded")
		content := bytes.Repeat([]byte("xyz"), 1000)
		m.back.Store.WriteAt(at.ID, 0, content)

		f, err := m.client.Open(ctx, "/seeded")
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != int64(len(content)) {
			t.Fatalf("open size %d, want %d", f.Size(), len(content))
		}
		got, n, err := m.client.Read(ctx, f, 100, 500)
		if err != nil || n != 500 {
			t.Fatalf("read: %d %v", n, err)
		}
		if !bytes.Equal(got.Bytes, content[100:600]) {
			t.Fatal("cold read returned wrong bytes")
		}
	})
}

func TestWriteGatheringReducesRPCs(t *testing.T) {
	m := newTestMount(t, false)
	m.run(t, func(ctx *rpc.Ctx) {
		f, err := m.client.Create(ctx, "/f")
		if err != nil {
			t.Fatal(err)
		}
		before := m.client.RPCs
		// 512 sequential 8 KiB writes = 4 MiB = exactly 2 gathered WRITEs.
		for i := 0; i < 512; i++ {
			if err := m.client.Write(ctx, f, int64(i)*8<<10, payload.Synthetic(8<<10)); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.client.Fsync(ctx, f); err != nil {
			t.Fatal(err)
		}
		rpcs := m.client.RPCs - before
		// 2 WRITEs + 1 COMMIT; allow a little slack but far below 512.
		if rpcs > 8 {
			t.Fatalf("512 small writes produced %d RPCs; write gathering broken", rpcs)
		}
	})
}

func TestSequentialReadahead(t *testing.T) {
	m := newTestMount(t, false)
	m.run(t, func(ctx *rpc.Ctx) {
		at, _ := m.back.Store.Create(m.back.Store.Root(), "big")
		m.back.Store.WriteSyntheticAt(at.ID, 0, 32<<20)

		f, err := m.client.Open(ctx, "/big")
		if err != nil {
			t.Fatal(err)
		}
		// Sequential 8 KiB reads over 16 MB.
		for off := int64(0); off < 16<<20; off += 8 << 10 {
			if _, n, err := m.client.Read(ctx, f, off, 8<<10); err != nil || n != 8<<10 {
				t.Fatalf("read at %d: %d %v", off, n, err)
			}
		}
		// 16 MB at 2 MB rsize = 8 fetches; readahead may add a few more for
		// the window beyond 16 MB.  Mount(2) + open(1) + ~12 reads max.
		if m.client.RPCs > 30 {
			t.Fatalf("sequential small reads made %d RPCs; readahead/rsize rounding broken", m.client.RPCs)
		}
	})
}

func TestFsyncCommitsToBackend(t *testing.T) {
	m := newTestMount(t, false)
	m.run(t, func(ctx *rpc.Ctx) {
		f, _ := m.client.Create(ctx, "/f")
		m.client.Write(ctx, f, 0, payload.Synthetic(100))
		// Not yet visible server-side (write-back).
		at, _ := m.back.Store.LookupPath("/f")
		if a, _ := m.back.Store.GetAttr(at.ID); a.Size != 0 {
			t.Fatalf("write reached server before fsync (size %d)", a.Size)
		}
		if err := m.client.Fsync(ctx, f); err != nil {
			t.Fatal(err)
		}
		if a, _ := m.back.Store.GetAttr(at.ID); a.Size != 100 {
			t.Fatalf("fsync did not flush (size %d)", a.Size)
		}
	})
}

func TestNamespaceOps(t *testing.T) {
	m := newTestMount(t, false)
	m.run(t, func(ctx *rpc.Ctx) {
		if err := m.client.Mkdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.client.Create(ctx, "/d/a"); err != nil {
			t.Fatal(err)
		}
		if err := m.client.Rename(ctx, "/d", "a", "b"); err != nil {
			t.Fatal(err)
		}
		names, err := m.client.ReadDir(ctx, "/d")
		if err != nil || len(names) != 1 || names[0] != "b" {
			t.Fatalf("readdir after rename: %v %v", names, err)
		}
		if err := m.client.Remove(ctx, "/d/b"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.client.Open(ctx, "/d/b"); err != vfs.ErrNotExist {
			t.Fatalf("open removed file: %v", err)
		}
	})
}

func TestTruncateDropsCache(t *testing.T) {
	m := newTestMount(t, true)
	m.run(t, func(ctx *rpc.Ctx) {
		f, _ := m.client.Create(ctx, "/f")
		m.client.Write(ctx, f, 0, payload.Real(bytes.Repeat([]byte{7}, 1000)))
		m.client.Fsync(ctx, f)
		if err := m.client.Truncate(ctx, f, 10); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 10 {
			t.Fatalf("size after truncate %d", f.Size())
		}
		got, n, err := m.client.Read(ctx, f, 0, 100)
		if err != nil || n != 10 {
			t.Fatalf("read after truncate: %d %v", n, err)
		}
		for _, b := range got.Bytes {
			if b != 7 {
				t.Fatal("kept bytes corrupted")
			}
		}
	})
}

func TestOpenMissingFails(t *testing.T) {
	m := newTestMount(t, false)
	m.run(t, func(ctx *rpc.Ctx) {
		if _, err := m.client.Open(ctx, "/nope"); err != vfs.ErrNotExist {
			t.Fatalf("open missing: %v", err)
		}
	})
}

func TestSessionReplayCache(t *testing.T) {
	// A retransmitted (same slot+seq) compound must return the cached reply
	// without re-executing.
	back := NewVFSBackend(nil)
	srv := NewServer(ServerConfig{Backend: back, Costs: DefaultCosts()})
	ctx := &rpc.Ctx{}

	// Handshake.
	rep, _ := srv.Handle(ctx, ProcCompound, &CompoundArgs{Ops: []Op{
		&OpExchangeID{ClientName: "c"}, &OpCreateSession{Slots: 4},
	}})
	sess := rep.(*CompoundRep).Results[1].(*ResCreateSession).Session

	mk := &CompoundArgs{Session: sess, Slot: 0, Seq: 1, Ops: []Op{
		&OpPutRootFH{}, &OpCreate{Name: "d"},
	}}
	r1, _ := srv.Handle(ctx, ProcCompound, mk)
	if r1.(*CompoundRep).Status != 0 {
		t.Fatalf("first create failed: %v", r1.(*CompoundRep).Status)
	}
	// Retransmit: same reply object, no EXIST error.
	r2, _ := srv.Handle(ctx, ProcCompound, mk)
	if r2.(*CompoundRep) != r1.(*CompoundRep) {
		t.Fatal("replay did not come from the cache")
	}
	// New seq actually re-executes (and now fails with EXIST).
	mk2 := &CompoundArgs{Session: sess, Slot: 0, Seq: 2, Ops: []Op{
		&OpPutRootFH{}, &OpCreate{Name: "d"},
	}}
	r3, _ := srv.Handle(ctx, ProcCompound, mk2)
	if r3.(*CompoundRep).Status != fserr.Exist {
		t.Fatalf("re-execute: %v, want Exist", r3.(*CompoundRep).Status)
	}
	// Out-of-order seq is rejected.
	bad := &CompoundArgs{Session: sess, Slot: 0, Seq: 9, Ops: []Op{&OpPutRootFH{}}}
	r4, _ := srv.Handle(ctx, ProcCompound, bad)
	if r4.(*CompoundRep).Status != fserr.Inval {
		t.Fatalf("bad seq: %v", r4.(*CompoundRep).Status)
	}
	// Unknown session is stale.
	r5, _ := srv.Handle(ctx, ProcCompound, &CompoundArgs{Session: 999, Ops: []Op{&OpPutRootFH{}}})
	if r5.(*CompoundRep).Status != fserr.Stale {
		t.Fatalf("unknown session: %v", r5.(*CompoundRep).Status)
	}
}

func TestCompoundStopsAtFirstFailure(t *testing.T) {
	back := NewVFSBackend(nil)
	srv := NewServer(ServerConfig{Backend: back, Costs: DefaultCosts()})
	ctx := &rpc.Ctx{}
	rep, _ := srv.Handle(ctx, ProcCompound, &CompoundArgs{Ops: []Op{
		&OpPutRootFH{},
		&OpLookup{Name: "missing"},
		&OpGetAttr{}, // must not execute
	}})
	cr := rep.(*CompoundRep)
	if cr.Status != fserr.NoEnt {
		t.Fatalf("status %v", cr.Status)
	}
	if len(cr.Results) != 2 {
		t.Fatalf("executed %d ops, want 2 (stop at failure)", len(cr.Results))
	}
}

func TestCompoundXDRRoundTrip(t *testing.T) {
	in := &CompoundArgs{
		Tag: "t", Session: 7, Slot: 3, Seq: 9,
		Ops: []Op{
			&OpPutRootFH{},
			&OpLookup{Name: "dir"},
			&OpOpen{Name: "f", Create: true},
			&OpWrite{StateID: 5, Off: 100, Data: payload.Real([]byte("hello")), Stable: true},
			&OpRead{StateID: 5, Off: 0, Len: 4096, WantReal: true},
			&OpLayoutCommit{NewSize: 1 << 30},
		},
	}
	var out CompoundArgs
	if err := xdr.Unmarshal(xdr.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Tag != in.Tag || out.Session != in.Session || len(out.Ops) != len(in.Ops) {
		t.Fatalf("header mangled: %+v", out)
	}
	w := out.Ops[3].(*OpWrite)
	if w.Off != 100 || !w.Stable || string(w.Data.Bytes) != "hello" {
		t.Fatalf("write op mangled: %+v", w)
	}
	// WireSize must agree with the real encoding.
	if got, want := in.WireSize(), int64(len(xdr.Marshal(in))); got != want {
		t.Fatalf("WireSize %d != encoded %d", got, want)
	}
}

func TestCompoundRepXDRRoundTrip(t *testing.T) {
	in := &CompoundRep{
		Status: fserr.NoEnt,
		Results: []Result{
			&ResPutRootFH{},
			&ResOpen{fhAttr: fhAttr{FH: 3, Attr: Attr{Size: 10}}, StateID: 8},
			&ResRead{Eof: true, Data: payload.Real([]byte("abc"))},
			&ResGetDevList{Devices: []pnfs.DeviceInfo{{ID: 1, Addr: "io0"}}},
		},
	}
	var out CompoundRep
	if err := xdr.Unmarshal(xdr.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != in.Status || len(out.Results) != 4 {
		t.Fatalf("rep mangled: %+v", out)
	}
	if r := out.Results[2].(*ResRead); !r.Eof || string(r.Data.Bytes) != "abc" {
		t.Fatalf("read result mangled: %+v", r)
	}
	if got, want := in.WireSize(), int64(len(xdr.Marshal(in))); got != want {
		t.Fatalf("WireSize %d != encoded %d", got, want)
	}
}

// Property: random op sequences survive the XDR round trip with op numbers
// and field order intact.
func TestPropertyOpsRoundTrip(t *testing.T) {
	f := func(name string, off int64, n uint16, stable, create bool) bool {
		in := &CompoundArgs{Ops: []Op{
			&OpLookup{Name: name},
			&OpOpen{Name: name, Create: create},
			&OpWrite{Off: off, Data: payload.Real(make([]byte, int(n)%512)), Stable: stable},
			&OpCommit{Off: off, Len: int64(n)},
			&OpSetAttr{Size: off},
		}}
		var out CompoundArgs
		if err := xdr.Unmarshal(xdr.Marshal(in), &out); err != nil {
			return false
		}
		for i := range in.Ops {
			if in.Ops[i].Num() != out.Ops[i].Num() {
				return false
			}
		}
		return out.Ops[0].(*OpLookup).Name == name &&
			out.Ops[1].(*OpOpen).Create == create &&
			out.Ops[2].(*OpWrite).Stable == stable &&
			out.Ops[3].(*OpCommit).Len == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWritesMatchLargeWriteThroughput(t *testing.T) {
	// The headline NFS property (Fig 6d/6e): small application blocks do
	// not slow the NFS data path because the client gathers to wsize.
	elapsed := func(block int64) time.Duration {
		m := newTestMount(t, false)
		var took sim.Time
		m.run(t, func(ctx *rpc.Ctx) {
			f, _ := m.client.Create(ctx, "/f")
			const total = 64 << 20
			for off := int64(0); off < total; off += block {
				m.client.Write(ctx, f, off, payload.Synthetic(block))
			}
			m.client.Fsync(ctx, f)
			took = ctx.Now()
		})
		return time.Duration(took)
	}
	small := elapsed(8 << 10)
	large := elapsed(2 << 20)
	ratio := float64(small) / float64(large)
	if ratio > 1.6 {
		t.Fatalf("8 KiB writes %.2fx slower than 2 MiB writes; gathering not effective (small=%v large=%v)",
			ratio, small, large)
	}
}
