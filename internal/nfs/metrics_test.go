package nfs

import (
	"strings"
	"testing"
	"time"

	"dpnfs/internal/fserr"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

func TestMetricsRecordAndPercentiles(t *testing.T) {
	m := newMetrics(nil)
	for i := 0; i < 90; i++ {
		m.record(OpNumRead, 50*time.Microsecond, 0, nil)
	}
	for i := 0; i < 10; i++ {
		m.record(OpNumRead, 50*time.Millisecond, 0, nil)
	}
	om := m.Op(OpNumRead)
	if om == nil || om.Count() != 100 {
		t.Fatalf("op metrics %+v", om)
	}
	if om.Max() != 50*time.Millisecond {
		t.Fatalf("max %v", om.Max())
	}
	if p50 := om.Percentile(50); p50 > time.Millisecond {
		t.Fatalf("p50 %v, want ≤ 100µs bucket", p50)
	}
	if p99 := om.Percentile(99); p99 < 30*time.Millisecond {
		t.Fatalf("p99 %v, want the slow bucket", p99)
	}
	if om.Mean() <= 50*time.Microsecond || om.Mean() >= 50*time.Millisecond {
		t.Fatalf("mean %v outside (50µs, 50ms)", om.Mean())
	}
}

func TestMetricsErrorsCounted(t *testing.T) {
	m := newMetrics(nil)
	m.record(OpNumWrite, time.Millisecond, 0, nil)
	m.record(OpNumWrite, time.Millisecond, 0, fserr.ErrIO)
	if got := m.Op(OpNumWrite).Errors(); got != 1 {
		t.Fatalf("errors %d", got)
	}
	if m.Op(OpNumCommit) != nil {
		t.Fatal("never-issued op should report nil")
	}
}

func TestClientMetricsThroughMount(t *testing.T) {
	m := newTestMount(t, false)
	m.run(t, func(ctx *rpc.Ctx) {
		f, err := m.client.Create(ctx, "/f")
		if err != nil {
			t.Fatal(err)
		}
		m.client.Write(ctx, f, 0, payload.Synthetic(4<<20))
		if err := m.client.Close(ctx, f); err != nil {
			t.Fatal(err)
		}
	})
	mt := m.client.Metrics()
	if mt.Op(OpNumWrite) == nil || mt.Op(OpNumWrite).Count() == 0 {
		t.Fatal("WRITE ops not recorded")
	}
	if got := mt.Op(OpNumWrite).Bytes(); got != 4<<20 {
		t.Fatalf("WRITE bytes %d, want %d", got, 4<<20)
	}
	if mt.Op(OpNumCommit) == nil {
		t.Fatal("COMMIT not recorded")
	}
	if mt.Op(OpNumWrite).Mean() <= 0 {
		t.Fatal("no latency recorded under simulation")
	}
	table := mt.String()
	for _, want := range []string{"WRITE", "COMMIT", "OPEN", "mean", "p95"} {
		if !strings.Contains(table, want) {
			t.Errorf("metrics table missing %q:\n%s", want, table)
		}
	}
}

// TestMountSharedRegistry proves the mount's table and the shared registry
// are two views of the same instruments: what the table reports is exactly
// what a /metrics endpoint would export.
func TestMountSharedRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	m := newTestMountWithRegistry(t, reg)
	m.run(t, func(ctx *rpc.Ctx) {
		f, err := m.client.Create(ctx, "/g")
		if err != nil {
			t.Fatal(err)
		}
		m.client.Write(ctx, f, 0, payload.Synthetic(2<<20))
		if err := m.client.Close(ctx, f); err != nil {
			t.Fatal(err)
		}
	})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`nfs_client_ops_total{op="WRITE"}`,
		`nfs_client_op_bytes_total{op="WRITE"} 2097152`,
		`nfs_client_op_seconds_bucket{op="COMMIT",le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry exposition missing %q:\n%s", want, out)
		}
	}
}

func TestOpNamesCoverAllOps(t *testing.T) {
	for num := range opCtor {
		if strings.HasPrefix(opName(num), "OP_") {
			t.Errorf("operation %d has no name", num)
		}
	}
	if !strings.HasPrefix(opName(999), "OP_999") {
		t.Error("unknown op should render numerically")
	}
}
