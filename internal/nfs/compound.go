package nfs

import (
	"fmt"

	"dpnfs/internal/fserr"
	"dpnfs/internal/rpc"
	"dpnfs/internal/xdr"
)

// CompoundArgs is a COMPOUND request: session header plus an op list.  A
// zero Session means an unsessioned compound (only EXCHANGE_ID /
// CREATE_SESSION compounds are accepted without a session).
type CompoundArgs struct {
	Tag     string
	Session uint64
	Slot    uint32
	Seq     uint32
	Ops     []Op
}

// CompoundRep is a COMPOUND reply: overall status plus results for every
// executed op (execution stops at the first failure, whose result is last).
type CompoundRep struct {
	Status  fserr.Errno
	Results []Result
}

// opCtor and resCtor construct empty ops/results by operation number for
// decoding.
var (
	opCtor  = map[uint32]func() Op{}
	resCtor = map[uint32]func() Result{}
)

func init() {
	register := func(op func() Op, res func() Result) {
		n := op().Num()
		opCtor[n] = op
		resCtor[n] = res
	}
	register(func() Op { return &OpPutRootFH{} }, func() Result { return &ResPutRootFH{} })
	register(func() Op { return &OpPutFH{} }, func() Result { return &ResPutFH{} })
	register(func() Op { return &OpLookup{} }, func() Result { return &ResLookup{} })
	register(func() Op { return &OpOpen{} }, func() Result { return &ResOpen{} })
	register(func() Op { return &OpClose{} }, func() Result { return &ResClose{} })
	register(func() Op { return &OpGetAttr{} }, func() Result { return &ResGetAttr{} })
	register(func() Op { return &OpSetAttr{} }, func() Result { return &ResSetAttr{} })
	register(func() Op { return &OpRead{} }, func() Result { return &ResRead{} })
	register(func() Op { return &OpWrite{} }, func() Result { return &ResWrite{} })
	register(func() Op { return &OpCommit{} }, func() Result { return &ResCommit{} })
	register(func() Op { return &OpCreate{} }, func() Result { return &ResCreate{} })
	register(func() Op { return &OpRemove{} }, func() Result { return &ResRemove{} })
	register(func() Op { return &OpRename{} }, func() Result { return &ResRename{} })
	register(func() Op { return &OpReadDir{} }, func() Result { return &ResReadDir{} })
	register(func() Op { return &OpGetDevList{} }, func() Result { return &ResGetDevList{} })
	register(func() Op { return &OpLayoutGet{} }, func() Result { return &ResLayoutGet{} })
	register(func() Op { return &OpLayoutCommit{} }, func() Result { return &ResLayoutCommit{} })
	register(func() Op { return &OpLayoutReturn{} }, func() Result { return &ResLayoutReturn{} })
	register(func() Op { return &OpExchangeID{} }, func() Result { return &ResExchangeID{} })
	register(func() Op { return &OpCreateSession{} }, func() Result { return &ResCreateSession{} })
}

// MarshalXDR implements xdr.Marshaler.
func (c *CompoundArgs) MarshalXDR(e *xdr.Encoder) {
	e.String(c.Tag)
	e.Uint64(c.Session)
	e.Uint32(c.Slot)
	e.Uint32(c.Seq)
	e.Uint32(uint32(len(c.Ops)))
	for _, op := range c.Ops {
		e.Uint32(op.Num())
		op.MarshalXDR(e)
	}
}

// UnmarshalXDR implements xdr.Unmarshaler.
func (c *CompoundArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if c.Tag, err = d.String(); err != nil {
		return err
	}
	if c.Session, err = d.Uint64(); err != nil {
		return err
	}
	if c.Slot, err = d.Uint32(); err != nil {
		return err
	}
	if c.Seq, err = d.Uint32(); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 1024 {
		return xdr.ErrTooLong
	}
	c.Ops = make([]Op, n)
	for i := range c.Ops {
		num, err := d.Uint32()
		if err != nil {
			return err
		}
		ctor, ok := opCtor[num]
		if !ok {
			return fmt.Errorf("nfs: unknown operation %d", num)
		}
		c.Ops[i] = ctor()
		if err := c.Ops[i].UnmarshalXDR(d); err != nil {
			return err
		}
	}
	return nil
}

// WireSize sums per-op wire sizes without materializing bulk payloads.
func (c *CompoundArgs) WireSize() int64 {
	size := int64(xdr.SizeString(c.Tag)) + xdr.SizeUint64 + 3*xdr.SizeUint32
	for _, op := range c.Ops {
		size += xdr.SizeUint32 + rpc.WireSizeOf(op)
	}
	return size
}

// MarshalXDR implements xdr.Marshaler.
func (c *CompoundRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(c.Status))
	e.Uint32(uint32(len(c.Results)))
	for _, r := range c.Results {
		e.Uint32(r.Num())
		r.MarshalXDR(e)
	}
}

// UnmarshalXDR implements xdr.Unmarshaler.
func (c *CompoundRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	c.Status = fserr.Errno(v)
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 1024 {
		return xdr.ErrTooLong
	}
	c.Results = make([]Result, n)
	for i := range c.Results {
		num, err := d.Uint32()
		if err != nil {
			return err
		}
		ctor, ok := resCtor[num]
		if !ok {
			return fmt.Errorf("nfs: unknown result %d", num)
		}
		c.Results[i] = ctor()
		if err := c.Results[i].UnmarshalXDR(d); err != nil {
			return err
		}
	}
	return nil
}

// WireSize sums per-result wire sizes without materializing bulk payloads.
func (c *CompoundRep) WireSize() int64 {
	size := int64(2 * xdr.SizeUint32)
	for _, r := range c.Results {
		size += xdr.SizeUint32 + rpc.WireSizeOf(r)
	}
	return size
}

// Registry returns the rpc request registry for the NFS service (TCP mode).
func Registry() *rpc.Registry {
	reg := rpc.NewRegistry()
	reg.Register(ProcCompound, func() xdr.Unmarshaler { return &CompoundArgs{} })
	return reg
}
