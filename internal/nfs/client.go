package nfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpnfs/internal/ioengine"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/store"
	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

// ClientConfig wires an NFSv4.1 client (one mount) to its node and servers.
type ClientConfig struct {
	Fabric *simnet.Fabric
	Node   *simnet.Node
	MDS    rpc.Conn
	// DialDS opens a connection to a data server by device address.  Nil
	// disables pNFS even if the server offers layouts.
	DialDS func(addr string) rpc.Conn
	Costs  Costs
	Name   string // client identity for EXCHANGE_ID

	WSize, RSize int64 // write/read transfer sizes (paper: 2 MB)
	Slots        uint32
	// MaxReadAhead bounds the readahead window (0 disables readahead).
	MaxReadAhead int64
	// FlushParallel bounds concurrent asynchronous write-back flushes.
	FlushParallel int
	// MaxFlight bounds the striped-I/O engine's sliding window: requests in
	// flight to data servers across all of the mount's concurrent I/O
	// (default 32 — wide enough that the session slot table and
	// FlushParallel bind first, as the pre-engine client behaved).
	MaxFlight int
	// MaxTransfer caps a single data-server request; 0 disables extra
	// splitting (chunks are already gathered to WSize/RSize).
	MaxTransfer int64
	// Wave dispatches striped I/O in lock-step batches instead of the
	// sliding window (bench comparison only).
	Wave bool
	// BackgroundShare caps the window fraction background work (write-back
	// flushes, readahead fills) may hold; foreground reads and commits
	// always dispatch first.  0 leaves background uncapped.
	BackgroundShare float64
	// Hedge enables hedged duplicate READs for straggling foreground
	// requests (writes never hedge).  HedgeAfter/HedgeFactor tune the
	// adaptive straggler threshold (0 = engine defaults).
	Hedge       bool
	HedgeAfter  time.Duration
	HedgeFactor float64
	// Adaptive lets the engine's window float between MinFlight and
	// MaxFlight by AIMD (0 MinFlight = engine default).
	Adaptive  bool
	MinFlight int
	// Real makes reads and writes carry actual bytes end to end.
	Real bool
	// Metrics is the shared observability registry (docs/METRICS.md).  Nil
	// gives the mount a private registry, so Metrics() always works.
	Metrics *metrics.Registry
}

// Client is one NFSv4.1 mount: session state, device connections, and the
// page-cache machinery that gives NFS its small-I/O performance (write
// gathering to WSize, readahead to RSize).
type Client struct {
	cfg      ClientConfig
	clientID uint64
	session  uint64

	// Slot table: free slot IDs and per-slot sequence numbers.  slotSem
	// bounds concurrency under simulation; rtSlots is its real-time twin
	// (a buffered channel) for concurrent goroutines over TCP.
	slotSem   *sim.Semaphore
	rtSlots   chan struct{}
	slotMu    sync.Mutex
	freeSlots []uint32
	slotSeq   []uint32

	root   uint64
	pnfsOK bool

	// engine is the striped-I/O scheduler every data-path fan-out rides
	// (internal/ioengine): extent coalescing, the sliding in-flight window,
	// and the per-request policy ladder (layout recovery, MDS fallback).
	engine *ioengine.Engine
	// rtFlush bounds concurrent write-back flushes in real-time (TCP) mode,
	// the wall-clock twin of flushSem.
	rtFlush chan struct{}

	// wbQueue gathers dirty chunks — across all open files — awaiting
	// write-back.  A drain flow takes the whole queue and issues it as one
	// coalesced engine window, so concurrent flushes from many files share
	// a single in-flight budget instead of fanning out per file.
	wbMu    sync.Mutex
	wbQueue []wbChunk

	// flushProc names the simulated flush processes (hoisted: one string
	// per mount, not one per flush).
	flushProc string

	// stateMu guards devices, active, epoch, layouts, and inodeCache:
	// recovery paths mutate them from parallel extent flows (simulated
	// processes under the kernel, real goroutines over TCP).
	stateMu sync.Mutex
	devices map[pnfs.DeviceID]rpc.Conn
	// active is the device set advertised by the most recent GETDEVICELIST.
	// Conns for devices that have since left the list stay in devices (so
	// layouts at older generations remain readable) but are excluded from
	// replica failover.
	active map[pnfs.DeviceID]bool
	// epoch counts layout invalidations (cluster membership changes); open
	// files compare it to decide whether to refetch their layout.
	epoch uint64

	flushSem *sim.Semaphore
	layouts  map[uint64]*pnfs.FileLayout
	// inodeCache retains page caches across open/close per filehandle,
	// with close-to-open consistency: the cache is reused only when the
	// server's change attribute still matches (Linux NFS inode cache).
	inodeCache map[uint64]*inodeState

	// Stats
	RPCs    uint64
	metrics *Metrics

	// Client-cache observability: page-cache and layout-cache hit rates are
	// what separate the NFS architectures from cacheless PVFS2 on re-read
	// (Figure 7) and small-I/O (Figures 6d/6e) workloads.
	pcHits      *metrics.Counter
	pcMisses    *metrics.Counter
	raChunks    *metrics.Counter
	layoutHits  *metrics.Counter
	slotWaits   *metrics.Histogram
	slotWaitCnt *metrics.Counter

	// Failure-path observability (docs/FAULTS.md): device errors trigger
	// layout eviction and a LAYOUTGET/GETDEVICELIST re-drive; extents that
	// still cannot reach a data server are proxied through the MDS.
	devErrors    *metrics.Counter
	layoutEvicts *metrics.Counter
	layoutRefch  *metrics.Counter
	mdsFallbacks *metrics.Counter

	// Integrity observability (docs/FAULTS.md "Corruption"): corrupt reads
	// detected by block/wire checksums, bounded same-source re-reads, and
	// replica read-repairs that rewrote the bad copy.
	corruptReads *metrics.Counter
	readRepairs  *metrics.Counter

	// repairedMu/repaired make read-repair exactly-once per extent: the
	// first corrupt read of an extent rewrites the bad copy, concurrent and
	// later corrupt reads of the same extent only re-serve good bytes.
	repairedMu sync.Mutex
	repaired   map[repairKey]bool
}

// repairKey identifies one repaired device extent.
type repairKey struct {
	fh     uint64
	dev    int
	devOff int64
}

// Metrics returns the mount's per-operation latency/volume table.
func (c *Client) Metrics() *Metrics { return c.metrics }

type inodeState struct {
	change uint64
	pc     *pageCache
}

// NewClient applies defaults; call Mount before use.
func NewClient(cfg ClientConfig) *Client {
	if cfg.WSize <= 0 {
		cfg.WSize = 2 << 20
	}
	if cfg.RSize <= 0 {
		cfg.RSize = 2 << 20
	}
	if cfg.Slots == 0 {
		cfg.Slots = 64
	}
	if cfg.FlushParallel <= 0 {
		cfg.FlushParallel = 16
	}
	if cfg.MaxFlight <= 0 {
		cfg.MaxFlight = 32
	}
	if cfg.Name == "" {
		cfg.Name = "client"
	}
	reg := orPrivate(cfg.Metrics)
	c := &Client{
		cfg:        cfg,
		devices:    make(map[pnfs.DeviceID]rpc.Conn),
		active:     make(map[pnfs.DeviceID]bool),
		layouts:    make(map[uint64]*pnfs.FileLayout),
		inodeCache: make(map[uint64]*inodeState),
		metrics:    newMetrics(reg),
		pcHits: reg.Counter("nfs_client_pagecache_hits_total",
			"Reads served entirely from the client page cache (no RPC)."),
		pcMisses: reg.Counter("nfs_client_pagecache_misses_total",
			"Reads that fetched at least one chunk from a server."),
		raChunks: reg.Counter("nfs_client_readahead_chunks_total",
			"Chunks fetched asynchronously by sequential readahead."),
		layoutHits: reg.Counter("nfs_client_layout_cache_hits_total",
			"Opens that reused a cached layout instead of LAYOUTGET."),
		slotWaits: reg.Histogram("nfs_client_slot_wait_seconds",
			"Time spent waiting for a free session slot.", metrics.DurationBuckets),
		slotWaitCnt: reg.Counter("nfs_client_slot_acquires_total",
			"Sessioned compounds that acquired a slot."),
		devErrors: reg.Counter("nfs_client_device_errors_total",
			"Data-server call failures observed on the pNFS data path."),
		layoutEvicts: reg.Counter("nfs_client_layout_evictions_total",
			"Cached layouts evicted after a device error."),
		layoutRefch: reg.Counter("nfs_client_layout_refetches_total",
			"Layouts re-fetched (GETDEVICELIST + LAYOUTGET) after eviction."),
		mdsFallbacks: reg.Counter("nfs_client_mds_fallbacks_total",
			"Extents proxied through the MDS after data-server recovery failed."),
		corruptReads: reg.Counter("nfs_client_corrupt_reads_total",
			"READs that returned a data-integrity error (block or wire checksum mismatch)."),
		readRepairs: reg.Counter("nfs_client_read_repairs_total",
			"Corrupt extents rewritten with good bytes fetched from a replica."),
		repaired: make(map[repairKey]bool),
	}
	c.slotSem = sim.NewSemaphore(cfg.Name+"/slots", int(cfg.Slots))
	c.rtSlots = make(chan struct{}, cfg.Slots)
	c.flushSem = sim.NewSemaphore(cfg.Name+"/flush", cfg.FlushParallel)
	c.rtFlush = make(chan struct{}, cfg.FlushParallel)
	c.flushProc = cfg.Name + "/flush"
	c.engine = ioengine.New(ioengine.Config{
		Name:            cfg.Name + "/engine",
		Issuer:          "nfs",
		MaxFlight:       cfg.MaxFlight,
		MaxTransfer:     cfg.MaxTransfer,
		Wave:            cfg.Wave,
		BackgroundShare: cfg.BackgroundShare,
		Hedge:           cfg.Hedge,
		HedgeAfter:      cfg.HedgeAfter,
		HedgeFactor:     cfg.HedgeFactor,
		Adaptive:        cfg.Adaptive,
		MinFlight:       cfg.MinFlight,
		Metrics:         reg,
	})
	for i := int(cfg.Slots) - 1; i >= 0; i-- {
		c.freeSlots = append(c.freeSlots, uint32(i))
	}
	c.slotSeq = make([]uint32, cfg.Slots)
	return c
}

func (c *Client) chargeOp(ctx *rpc.Ctx, nOps int, bytes int64) {
	var cpu *sim.KServer
	if c.cfg.Node != nil {
		cpu = c.cfg.Node.CPU
	}
	ctx.UseCPU(cpu, time.Duration(nOps)*c.cfg.Costs.ClientPerOp+perMB(c.cfg.Costs.ClientPerMB, bytes))
}

// chargeCache accounts for a page-cache-only operation: a buffered write or
// a cache-hit read (no RPC).
func (c *Client) chargeCache(ctx *rpc.Ctx, bytes int64) {
	var cpu *sim.KServer
	if c.cfg.Node != nil {
		cpu = c.cfg.Node.CPU
	}
	ctx.UseCPU(cpu, c.cfg.Costs.CachePerOp+perMB(c.cfg.Costs.ClientPerMB, bytes))
}

// call sends a compound.  Sessioned calls (to the MDS) occupy a slot; data
// server compounds ride sessionless as in the prototype's special-stateid
// data path.
func (c *Client) call(ctx *rpc.Ctx, conn rpc.Conn, sessioned bool, ops ...Op) (*CompoundRep, error) {
	c.chargeOp(ctx, len(ops), 0)
	args := &CompoundArgs{Ops: ops}
	if sessioned && c.session != 0 {
		// Slot-table backpressure is visible here: the wait is virtual time
		// under simulation and wall clock over TCP.
		if ctx.P != nil {
			waitStart := ctx.Now()
			c.slotSem.Acquire(ctx.P, 1)
			c.slotWaits.ObserveDuration(time.Duration(ctx.Now() - waitStart))
			defer c.slotSem.Release(1)
		} else {
			waitStart := time.Now()
			c.rtSlots <- struct{}{}
			c.slotWaits.ObserveDuration(time.Since(waitStart))
			defer func() { <-c.rtSlots }()
		}
		c.slotWaitCnt.Inc()
		c.slotMu.Lock()
		slot := c.freeSlots[len(c.freeSlots)-1]
		c.freeSlots = c.freeSlots[:len(c.freeSlots)-1]
		c.slotSeq[slot]++
		args.Session = c.session
		args.Slot = slot
		args.Seq = c.slotSeq[slot]
		c.slotMu.Unlock()
		defer func() {
			c.slotMu.Lock()
			c.freeSlots = append(c.freeSlots, slot)
			c.slotMu.Unlock()
		}()
	}
	atomic.AddUint64(&c.RPCs, 1)
	start := ctx.Now()
	var wallStart time.Time
	if ctx.P == nil {
		wallStart = time.Now() // real-time mode: wall-clock latency
	}
	var rep CompoundRep
	err := conn.Call(ctx, ProcCompound, args, &rep)
	elapsed := time.Duration(ctx.Now() - start)
	if ctx.P == nil {
		elapsed = time.Since(wallStart)
	}
	for _, op := range ops {
		var bytes int64
		switch o := op.(type) {
		case *OpWrite:
			bytes = o.Data.Len()
		case *OpRead:
			bytes = o.Len
		}
		c.metrics.record(op.Num(), elapsed, bytes, err)
	}
	if err != nil {
		return nil, err
	}
	if rep.Status != 0 {
		return &rep, rep.Status.Err()
	}
	// Wire payload verification: the server attached a CRC32C of each READ
	// payload; a mismatch means the bytes were damaged after the server's
	// block-checksum verification, so it feeds the same integrity ladder.
	for _, r := range rep.Results {
		rr, ok := r.(*ResRead)
		if !ok || !rr.HasSum || rr.Data.Bytes == nil {
			continue
		}
		if xdr.Checksum(rr.Data.Bytes) != rr.Sum {
			rr.Data.Release()
			rr.Data = payload.Payload{}
			return &rep, store.ErrCorrupt
		}
	}
	return &rep, nil
}

// Mount establishes the session and discovers pNFS data servers.
func (c *Client) Mount(ctx *rpc.Ctx) error {
	rep, err := c.call(ctx, c.cfg.MDS, false,
		&OpExchangeID{ClientName: c.cfg.Name},
		&OpCreateSession{Slots: c.cfg.Slots},
	)
	if err != nil {
		return fmt.Errorf("nfs: mount handshake: %w", err)
	}
	c.clientID = rep.Results[0].(*ResExchangeID).ClientID
	cs := rep.Results[1].(*ResCreateSession)
	c.session = cs.Session
	// A fresh session starts every slot's sequence at zero.
	c.slotMu.Lock()
	c.slotSeq = make([]uint32, c.cfg.Slots)
	c.slotMu.Unlock()

	rep, err = c.call(ctx, c.cfg.MDS, true, &OpPutRootFH{}, &OpGetDevList{})
	if err != nil {
		// A server without pNFS support fails the GETDEVLIST op; the mount
		// proceeds with proxied I/O through the server.
		if rep == nil || len(rep.Results) < 2 {
			return fmt.Errorf("nfs: mount root: %w", err)
		}
		if _, ok := rep.Results[1].(*ResGetDevList); !ok {
			return fmt.Errorf("nfs: mount root: %w", err)
		}
		c.root = c.rootFromRep()
		return nil
	}
	c.root = c.rootFromRep()
	if dl, ok := rep.Results[1].(*ResGetDevList); ok && dl.Errno == 0 && c.cfg.DialDS != nil {
		c.stateMu.Lock()
		c.active = make(map[pnfs.DeviceID]bool, len(dl.Devices))
		for _, dev := range dl.Devices {
			c.devices[dev.ID] = c.cfg.DialDS(dev.Addr)
			c.active[dev.ID] = true
		}
		c.pnfsOK = len(c.devices) > 0
		c.stateMu.Unlock()
	}
	return nil
}

// device returns the conn for a device ID (nil if unknown).
func (c *Client) device(id pnfs.DeviceID) rpc.Conn {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.devices[id]
}

// deviceActive reports whether id appears in the most recent device list
// and has a conn — the liveness test replica failover uses so it never
// retries a departed device.
func (c *Client) deviceActive(id pnfs.DeviceID) bool {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.active[id] && c.devices[id] != nil
}

// refreshDevices re-drives GETDEVICELIST, dials any newly advertised
// device, and replaces the active set.  Conns for departed devices are
// retained so data written under older layout generations stays reachable.
func (c *Client) refreshDevices(ctx *rpc.Ctx) error {
	if c.cfg.DialDS == nil {
		return fmt.Errorf("nfs: no data-server dialer")
	}
	rep, err := c.call(ctx, c.cfg.MDS, true, &OpPutRootFH{}, &OpGetDevList{})
	if err != nil {
		return err
	}
	dl, ok := rep.Results[1].(*ResGetDevList)
	if !ok || dl.Errno != 0 {
		return fmt.Errorf("nfs: GETDEVICELIST refresh failed")
	}
	c.stateMu.Lock()
	c.active = make(map[pnfs.DeviceID]bool, len(dl.Devices))
	for _, dev := range dl.Devices {
		if c.devices[dev.ID] == nil {
			c.devices[dev.ID] = c.cfg.DialDS(dev.Addr)
		}
		c.active[dev.ID] = true
	}
	c.stateMu.Unlock()
	return nil
}

// InvalidateLayouts discards every cached layout and bumps the layout
// epoch, so each open file refetches its layout (and the device list)
// before its next striped I/O.  The cluster calls this after a membership
// change regenerates layouts at a new generation.
func (c *Client) InvalidateLayouts() {
	c.stateMu.Lock()
	n := len(c.layouts)
	c.layouts = make(map[uint64]*pnfs.FileLayout)
	c.epoch++
	c.stateMu.Unlock()
	for i := 0; i < n; i++ {
		c.layoutEvicts.Inc()
	}
}

func (c *Client) epochNow() uint64 {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.epoch
}

// rootFromRep is a placeholder for servers whose root is implicit: the
// protocol's PUTROOTFH establishes the cursor server-side, and our servers
// expose Root() = 1 by construction.
func (c *Client) rootFromRep() uint64 { return 1 }

// PNFS reports whether the mount obtained a device list.
func (c *Client) PNFS() bool { return c.pnfsOK }

// DropCaches discards all retained inode page caches (echo 3 >
// /proc/sys/vm/drop_caches) — benchmark methodology between phases.
func (c *Client) DropCaches() {
	c.stateMu.Lock()
	// Drop the map's reference on every retained cache; caches still shared
	// with an open File survive until that File is closed out of the map.
	for _, st := range c.inodeCache {
		st.pc.release()
	}
	c.inodeCache = make(map[uint64]*inodeState)
	c.stateMu.Unlock()
}

// File is an open file on a mount.
type File struct {
	c       *Client
	Path    string
	fh      uint64
	stateID uint64
	size    int64
	change  uint64

	// layoutMu serializes layout refetches after an epoch bump (membership
	// change); layout/mapper/epoch are re-read by parallel extent flows.
	layoutMu sync.Mutex
	layout   *pnfs.FileLayout
	mapper   stripe.Mapper
	epoch    uint64

	cache *pageCache

	// Async write-back state.  pendMu guards asyncErr and touched: both are
	// written from spawned flush (and readahead) flows — simulated processes
	// under the kernel, real goroutines in TCP mode.
	pendMu    sync.Mutex
	pending   sim.WaitGroup  // simulated flush processes in flight
	rtPending sync.WaitGroup // real-time flush goroutines in flight
	asyncErr  error
	touched   map[int]bool // device indices with unstable writes (-1 = MDS)
	committed int64        // size last published via LAYOUTCOMMIT

	// Readahead state.
	seqEnd     int64
	raWindow   int64
	raFrontier int64 // furthest byte already requested by readahead
	inflight   []*raFlight
}

type raFlight struct {
	ext  extent
	done bool
	wg   sim.WaitGroup
}

// Size returns the client's view of the file size.
func (f *File) Size() int64 { return f.size }

// setAsyncErr records a background-flush failure for the next Fsync.
func (f *File) setAsyncErr(err error) {
	f.pendMu.Lock()
	if f.asyncErr == nil {
		f.asyncErr = err
	}
	f.pendMu.Unlock()
}

// takeAsyncErr returns and clears the recorded background failure.
func (f *File) takeAsyncErr() error {
	f.pendMu.Lock()
	defer f.pendMu.Unlock()
	err := f.asyncErr
	f.asyncErr = nil
	return err
}

// markTouched records that dev (or the MDS, for dev < 0) holds unstable
// writes that the next Fsync must COMMIT.
func (f *File) markTouched(dev int) {
	f.pendMu.Lock()
	f.touched[dev] = true
	f.pendMu.Unlock()
}

// walkOps builds the lookup chain for a path's directory components.
func walkOps(path string) ([]Op, string) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	ops := []Op{&OpPutRootFH{}}
	for _, dir := range parts[:len(parts)-1] {
		if dir == "" {
			continue
		}
		ops = append(ops, &OpLookup{Name: dir})
	}
	return ops, parts[len(parts)-1]
}

// open opens or creates path.
func (c *Client) open(ctx *rpc.Ctx, path string, create bool) (*File, error) {
	ops, name := walkOps(path)
	ops = append(ops, &OpOpen{Name: name, Create: create}, &OpGetAttr{})
	rep, err := c.call(ctx, c.cfg.MDS, true, ops...)
	if err != nil {
		return nil, err
	}
	or := rep.Results[len(rep.Results)-2].(*ResOpen)
	ga := rep.Results[len(rep.Results)-1].(*ResGetAttr)
	// Close-to-open consistency: reuse the inode's page cache if no other
	// client changed the file since we last saw it.  The File takes its own
	// reference; the inode cache keeps one.
	var pc *pageCache
	c.stateMu.Lock()
	if st, ok := c.inodeCache[or.FH]; ok && st.change == ga.Attr.Change {
		pc = st.pc
		pc.retain()
	}
	c.stateMu.Unlock()
	if pc == nil {
		pc = newPageCache(c.cfg.Real)
	}
	f := &File{
		c:         c,
		Path:      path,
		fh:        or.FH,
		stateID:   or.StateID,
		size:      ga.Attr.Size,
		change:    ga.Attr.Change,
		cache:     pc,
		touched:   make(map[int]bool),
		committed: ga.Attr.Size,
	}
	if c.pnfsOK {
		if err := f.fetchLayout(ctx); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Open opens an existing file.
func (c *Client) Open(ctx *rpc.Ctx, path string) (*File, error) {
	return c.open(ctx, path, false)
}

// Create opens a file, creating it if absent.
func (c *Client) Create(ctx *rpc.Ctx, path string) (*File, error) {
	return c.open(ctx, path, true)
}

// fetchLayout gets (or reuses) the file's layout.  Layouts apply to the
// whole file and stay valid for the lifetime of the inode (paper §5) —
// unless a device error evicts them (recoverLayout).
func (f *File) fetchLayout(ctx *rpc.Ctx) error {
	f.c.stateMu.Lock()
	l, ok := f.c.layouts[f.fh]
	epoch := f.c.epoch
	f.c.stateMu.Unlock()
	if ok {
		f.c.layoutHits.Inc()
		f.layout = l
	} else {
		rep, err := f.c.call(ctx, f.c.cfg.MDS, true, &OpPutFH{FH: f.fh}, &OpLayoutGet{})
		if err != nil {
			return err
		}
		lg := rep.Results[1].(*ResLayoutGet)
		f.layout = &lg.Layout
		f.c.stateMu.Lock()
		f.c.layouts[f.fh] = f.layout
		f.c.stateMu.Unlock()
	}
	m, err := f.layout.Mapper()
	if err != nil {
		return fmt.Errorf("nfs: layout for %s: %w", f.Path, err)
	}
	f.mapper = m
	f.epoch = epoch
	for _, id := range f.layout.Devices {
		if f.c.device(id) == nil {
			// A device this layout references may have joined after mount:
			// refresh the device list once before giving up.
			if err := f.c.refreshDevices(ctx); err != nil || f.c.device(id) == nil {
				return fmt.Errorf("nfs: layout references unknown device %d", id)
			}
		}
	}
	return nil
}

// ensureLayout refetches the file's layout when the client's layout epoch
// moved since the layout was fetched (a membership change invalidated it).
func (f *File) ensureLayout(ctx *rpc.Ctx) error {
	if f.mapper == nil || f.epoch == f.c.epochNow() {
		return nil
	}
	f.layoutMu.Lock()
	defer f.layoutMu.Unlock()
	if f.epoch == f.c.epochNow() {
		return nil
	}
	return f.fetchLayout(ctx)
}

// recoverLayout handles a data-server failure: it evicts the file's cached
// layout, re-drives GETDEVICELIST (re-dialing every advertised device) and
// LAYOUTGET, and returns the fresh layout for a single retry.  A nil return
// means recovery itself failed — the caller then proxies the extent through
// the MDS, the protocol's guaranteed-correct fallback path (paper §4).
func (c *Client) recoverLayout(ctx *rpc.Ctx, f *File) *pnfs.FileLayout {
	c.stateMu.Lock()
	delete(c.layouts, f.fh)
	c.stateMu.Unlock()
	c.layoutEvicts.Inc()
	_ = c.refreshDevices(ctx) // best effort: LAYOUTGET below decides
	rep, err := c.call(ctx, c.cfg.MDS, true, &OpPutFH{FH: f.fh}, &OpLayoutGet{})
	if err != nil {
		return nil
	}
	lg := rep.Results[1].(*ResLayoutGet)
	l := lg.Layout
	if _, err := l.Mapper(); err != nil {
		return nil
	}
	c.stateMu.Lock()
	for _, id := range l.Devices {
		if _, ok := c.devices[id]; !ok {
			c.stateMu.Unlock()
			return nil
		}
	}
	c.layouts[f.fh] = &l
	c.stateMu.Unlock()
	c.layoutRefch.Inc()
	return &l
}

// Write buffers data at off in the page cache and asynchronously flushes
// full WSize runs (the write gathering that keeps small-block workloads at
// large-block speed, Figures 6d/6e).
func (c *Client) Write(ctx *rpc.Ctx, f *File, off int64, data payload.Payload) error {
	c.chargeCache(ctx, data.Len())
	f.cache.write(off, data)
	if end := off + data.Len(); end > f.size {
		f.size = end
	}
	for {
		run, ok := f.cache.dirtyRunAtLeast(c.cfg.WSize)
		if !ok {
			break
		}
		chunk := extent{run.Off, run.Off + c.cfg.WSize}
		f.cache.clean(chunk.Off, chunk.End)
		c.flushAsync(ctx, f, chunk)
	}
	return nil
}

// wbChunk is one gathered dirty run awaiting write-back: the owning file,
// its logical offset, a pooled snapshot of the cache content, and the
// completion hook that unblocks the owner's Fsync.
type wbChunk struct {
	f    *File
	off  int64
	data payload.Payload
	done func()
}

// flushAsync queues one chunk for write-back and spawns a drain flow — a
// simulated process under the kernel, a real goroutine in TCP mode — that
// takes *every* queued chunk, across all files, and issues them as a single
// coalesced engine run.  Flows are bounded by FlushParallel; a flow that
// finds the queue already drained by a sibling exits immediately.  Failures
// surface through the owning file's setAsyncErr for its next Fsync.
func (c *Client) flushAsync(ctx *rpc.Ctx, f *File, chunk extent) {
	wb := wbChunk{f: f, off: chunk.Off, data: f.cache.slice(chunk.Off, chunk.len())}
	if ctx.P == nil {
		f.rtPending.Add(1)
		wb.done = f.rtPending.Done
		c.wbMu.Lock()
		c.wbQueue = append(c.wbQueue, wb)
		c.wbMu.Unlock()
		go func() {
			c.rtFlush <- struct{}{}
			defer func() { <-c.rtFlush }()
			c.drainWriteBack(&rpc.Ctx{})
		}()
		return
	}
	f.pending.Add(1)
	wb.done = f.pending.Done
	c.wbMu.Lock()
	c.wbQueue = append(c.wbQueue, wb)
	c.wbMu.Unlock()
	k := ctx.P.Kernel()
	k.Go(c.flushProc, func(p *sim.Proc) {
		c.flushSem.Acquire(p, 1)
		defer c.flushSem.Release(1)
		c.drainWriteBack(&rpc.Ctx{P: p})
	})
}

// drainWriteBack empties the write-back queue and sends everything in one
// engine window: each chunk's extents are coalesced against themselves
// (extents carry no owner tag, so cross-file runs must never merge) and the
// per-chunk lists are concatenated into a single RunIndexed.  A failing
// extent is recorded on its owning file and absorbed, so one file's error
// cannot starve another file's flush.  Chunk payloads return to the buffer
// pool once the batch completes.
func (c *Client) drainWriteBack(ctx *rpc.Ctx) {
	c.wbMu.Lock()
	chunks := c.wbQueue
	c.wbQueue = nil
	c.wbMu.Unlock()
	if len(chunks) == 0 {
		return
	}
	var reqs []stripe.Extent
	var fns []ioengine.DoFunc
	var owners []*File
	for _, wb := range chunks {
		f, data := wb.f, wb.data
		if err := f.ensureLayout(ctx); err != nil {
			f.setAsyncErr(err)
			continue
		}
		if f.mapper == nil {
			// No layout: the whole chunk goes through the MDS as one
			// pseudo-extent (Dev -1, the engine's MDS marker).
			reqs = append(reqs, stripe.Extent{Dev: -1, Off: wb.off, Len: data.Len()})
			fns = append(fns, func(ctx *rpc.Ctx, e stripe.Extent) error {
				_, err := c.call(ctx, c.cfg.MDS, true,
					&OpPutFH{FH: f.fh},
					&OpWrite{StateID: f.stateID, Off: e.Off, Data: data},
				)
				if err == nil {
					f.markTouched(-1)
				}
				return err
			})
			owners = append(owners, f)
			continue
		}
		fn := c.chunkLadder(f, wb.off, data)
		for _, e := range c.engine.Prepare(f.mapper.Map(wb.off, data.Len())) {
			reqs = append(reqs, e)
			fns = append(fns, fn)
			owners = append(owners, f)
		}
	}
	if len(reqs) > 0 {
		// Write-back rides the window as Background: gathered flushes must
		// never crowd out a blocked application read (docs/ARCHITECTURE.md
		// QoS).  Per-extent errors were already absorbed onto their owners,
		// so the run itself cannot fail.
		_ = c.engine.RunIndexed(ctx, ioengine.RunOpts{Class: ioengine.Background}, reqs,
			func(ctx *rpc.Ctx, i int, r stripe.Extent) error {
				if err := fns[i](ctx, r); err != nil {
					owners[i].setAsyncErr(err)
				}
				return nil
			})
	}
	for _, wb := range chunks {
		wb.data.Release()
		if wb.done != nil {
			wb.done()
		}
	}
}

// chunkLadder builds the per-extent dispatch for one gathered chunk:
// striped writes under the file's pNFS layout behind a two-rung policy
// ladder.  A device error evicts the cached layout, re-drives
// GETDEVICELIST + LAYOUTGET, and retries once against the fresh layout
// (the recalled-layout path, paper §4); extents that still cannot reach a
// data server are proxied through the metadata server, which writes into
// the parallel file system on the client's behalf.
func (c *Client) chunkLadder(f *File, off int64, data payload.Payload) ioengine.DoFunc {
	layout := f.layout
	chunk := func(e stripe.Extent) payload.Payload { return data.Slice(e.Off-off, e.Len) }
	primary := func(ctx *rpc.Ctx, e stripe.Extent) error {
		_, err := c.dsWrite(ctx, f, layout, e, chunk(e))
		if err == nil {
			f.markTouched(e.Dev)
		}
		return err
	}
	recovery := ioengine.WithFallback(func(ctx *rpc.Ctx, e stripe.Extent, err error) error {
		c.devErrors.Inc()
		l2 := c.recoverLayout(ctx, f)
		if l2 == nil {
			return err
		}
		if l2.Gen != layout.Gen {
			// Membership changed underneath us: the extent's device index is
			// meaningless under the new geometry.  Remap the logical range
			// through the fresh layout and write each sub-extent; the commit
			// goes through the MDS because the touched-device indices no
			// longer line up.
			m2, merr := l2.Mapper()
			if merr != nil {
				return err
			}
			for _, se := range m2.Map(e.Off, e.Len) {
				if _, err2 := c.dsWrite(ctx, f, l2, se, data.Slice(se.Off-off, se.Len)); err2 != nil {
					return err2
				}
			}
			f.markTouched(-1)
			return nil
		}
		if e.Dev >= len(l2.Devices) {
			return err
		}
		if _, err2 := c.dsWrite(ctx, f, l2, e, chunk(e)); err2 != nil {
			return err2
		}
		f.markTouched(e.Dev)
		return nil
	})
	mdsProxy := ioengine.WithFallback(func(ctx *rpc.Ctx, e stripe.Extent, _ error) error {
		c.mdsFallbacks.Inc()
		_, err := c.call(ctx, c.cfg.MDS, true,
			&OpPutFH{FH: f.fh},
			&OpWrite{StateID: f.stateID, Off: e.Off, Data: chunk(e)},
		)
		if err == nil {
			f.markTouched(-1)
		}
		return err
	})
	// Same composition order RunWith would apply to (primary, mdsProxy,
	// recovery): try the layout's data server, recover the layout on error,
	// and proxy through the MDS as the last rung.
	return mdsProxy(recovery(primary))
}

// dsWrite sends one extent's WRITE to its data server under layout l.
func (c *Client) dsWrite(ctx *rpc.Ctx, f *File, l *pnfs.FileLayout, e stripe.Extent, chunk payload.Payload) (*CompoundRep, error) {
	conn := c.device(l.Devices[e.Dev])
	if conn == nil {
		return nil, fmt.Errorf("nfs: no conn for device %d", l.Devices[e.Dev])
	}
	devOff := e.Off
	if l.Direct {
		devOff = e.DevOff
	}
	return c.call(ctx, conn, false,
		&OpPutFH{FH: l.FHs[e.Dev]},
		&OpWrite{StateID: f.stateID, Off: devOff, Data: chunk},
	)
}

// Fsync flushes all dirty data, commits unstable writes on every touched
// server, and publishes metadata via LAYOUTCOMMIT — the paper's prototype
// semantics: data reaches stable storage on fsync/close only (§5).
func (c *Client) Fsync(ctx *rpc.Ctx, f *File) error {
	c.chargeOp(ctx, 1, 0)
	// Flush every remaining dirty run, WSize bytes at a time.
	for {
		run, ok := f.cache.firstDirty()
		if !ok {
			break
		}
		end := run.End
		if end > run.Off+c.cfg.WSize {
			end = run.Off + c.cfg.WSize
		}
		f.cache.clean(run.Off, end)
		c.flushAsync(ctx, f, extent{run.Off, end})
	}
	if ctx.P != nil {
		f.pending.Wait(ctx.P)
	} else {
		f.rtPending.Wait()
	}
	if err := f.takeAsyncErr(); err != nil {
		return err
	}
	// COMMIT on every server that took unstable writes.  The commit fan-out
	// rides the engine too (sorted for a deterministic issue order).
	f.pendMu.Lock()
	devs := make([]int, 0, len(f.touched))
	for dev := range f.touched {
		devs = append(devs, dev)
	}
	f.touched = make(map[int]bool)
	f.pendMu.Unlock()
	sort.Ints(devs)
	commits := make([]stripe.Extent, len(devs))
	for i, dev := range devs {
		commits[i] = stripe.Extent{Dev: dev}
	}
	err := c.engine.Run(ctx, commits, func(ctx *rpc.Ctx, r stripe.Extent) error {
		// r.Dev < 0 is the explicit MDS marker; an out-of-range or unknown
		// device (the layout was regenerated under a new membership between
		// the write and this commit) falls back to the MDS the same way.
		if r.Dev < 0 || r.Dev >= len(f.layout.Devices) || c.device(f.layout.Devices[r.Dev]) == nil {
			_, err := c.call(ctx, c.cfg.MDS, true, &OpPutFH{FH: f.fh}, &OpCommit{})
			return err
		}
		conn := c.device(f.layout.Devices[r.Dev])
		_, err := c.call(ctx, conn, false, &OpPutFH{FH: f.layout.FHs[r.Dev]}, &OpCommit{})
		if err != nil {
			// Crashed data server: commit through the MDS instead, which
			// flushes the parallel FS daemons on the client's behalf.
			c.devErrors.Inc()
			c.mdsFallbacks.Inc()
			_, err = c.call(ctx, c.cfg.MDS, true, &OpPutFH{FH: f.fh}, &OpCommit{})
		}
		return err
	})
	if err != nil {
		return err
	}
	// Publish the (possibly extended) size to the metadata server.
	if f.layout != nil && len(devs) > 0 && f.size > f.committed {
		if _, err := c.call(ctx, c.cfg.MDS, true,
			&OpPutFH{FH: f.fh}, &OpLayoutCommit{NewSize: f.size}); err != nil {
			return err
		}
		f.committed = f.size
	}
	return nil
}

// Close fsyncs and releases the open state, retaining the page cache in
// the inode cache keyed by the post-flush change attribute.
func (c *Client) Close(ctx *rpc.Ctx, f *File) error {
	if err := c.Fsync(ctx, f); err != nil {
		return err
	}
	rep, err := c.call(ctx, c.cfg.MDS, true,
		&OpPutFH{FH: f.fh}, &OpGetAttr{}, &OpClose{StateID: f.stateID})
	if err != nil {
		return err
	}
	c.stateMu.Lock()
	// The File's cache reference transfers to the inode cache; whatever the
	// slot held before loses the map's reference.
	if st, ok := c.inodeCache[f.fh]; ok {
		st.pc.release()
	}
	c.inodeCache[f.fh] = &inodeState{
		change: rep.Results[1].(*ResGetAttr).Attr.Change,
		pc:     f.cache,
	}
	c.stateMu.Unlock()
	return nil
}

// Read returns up to n bytes at off, serving from the page cache, fetching
// RSize-rounded chunks on miss, and prefetching ahead on sequential access.
func (c *Client) Read(ctx *rpc.Ctx, f *File, off, n int64) (payload.Payload, int64, error) {
	c.chargeCache(ctx, n)
	if off >= f.size {
		return payload.Synthetic(0), 0, nil
	}
	if off+n > f.size {
		n = f.size - off
	}
	// Wait for overlapping in-flight prefetches rather than re-fetching.
	if ctx.P != nil {
		for _, fl := range f.inflight {
			if !fl.done && fl.ext.Off < off+n && off < fl.ext.End {
				fl.wg.Wait(ctx.P)
			}
		}
	}
	// Fetch what is still missing, rounded out to RSize chunks.
	missing := f.cache.missingResident(off, off+n)
	var chunks []extent
	for _, gap := range missing {
		lo := gap.Off / c.cfg.RSize * c.cfg.RSize
		hi := (gap.End + c.cfg.RSize - 1) / c.cfg.RSize * c.cfg.RSize
		if hi > f.size {
			hi = f.size
		}
		chunks = append(chunks, f.cache.missingResident(lo, hi)...)
	}
	if len(chunks) == 0 {
		c.pcHits.Inc()
	} else {
		c.pcMisses.Inc()
	}
	// One engine run covers every missing chunk, so extents from adjacent
	// chunks that land contiguously on one device coalesce into fewer,
	// larger READs.  The application is blocked on these bytes: they ride
	// the window as Foreground and may hedge against stragglers.
	if err := c.readChunks(ctx, f, chunks, ioengine.RunOpts{Class: ioengine.Foreground, Hedge: true}); err != nil {
		return payload.Payload{}, 0, err
	}
	// Sequential readahead: extend the window while the pattern holds.
	if c.cfg.MaxReadAhead > 0 && ctx.P != nil {
		if off == f.seqEnd {
			f.raWindow *= 2
			if f.raWindow < c.cfg.RSize {
				f.raWindow = c.cfg.RSize
			}
			if f.raWindow > c.cfg.MaxReadAhead {
				f.raWindow = c.cfg.MaxReadAhead
			}
			c.prefetch(ctx, f, off+n, f.raWindow)
		} else {
			f.raWindow = 0
		}
	}
	f.seqEnd = off + n
	return f.cache.slice(off, n), n, nil
}

// prefetch advances the readahead frontier toward start+window, issuing
// whole RSize chunks asynchronously.  The frontier keeps successive small
// sequential reads from each spawning a sliver fetch.
func (c *Client) prefetch(ctx *rpc.Ctx, f *File, start, window int64) {
	end := start + window
	if end > f.size {
		end = f.size
	}
	if f.raFrontier < start {
		f.raFrontier = start
	}
	for f.raFrontier < end {
		chunkEnd := f.raFrontier + c.cfg.RSize
		if chunkEnd > f.size {
			chunkEnd = f.size
		}
		if chunkEnd < end && chunkEnd-f.raFrontier < c.cfg.RSize {
			break // only issue whole chunks unless finishing the file
		}
		if chunkEnd > end && chunkEnd < f.size {
			break // window does not yet cover a whole chunk
		}
		for _, gap := range f.cache.missingResident(f.raFrontier, chunkEnd) {
			c.raChunks.Inc()
			fl := &raFlight{ext: gap}
			fl.wg.Add(1)
			f.inflight = append(f.inflight, fl)
			k := ctx.P.Kernel()
			k.Go(c.cfg.Name+"/readahead", func(p *sim.Proc) {
				defer func() {
					fl.done = true
					fl.wg.Done()
				}()
				if err := c.readRange(&rpc.Ctx{P: p}, f, fl.ext); err != nil {
					f.setAsyncErr(err)
				}
			})
		}
		f.raFrontier = chunkEnd
	}
	// Drop completed flights.
	live := f.inflight[:0]
	for _, fl := range f.inflight {
		if !fl.done {
			live = append(live, fl)
		}
	}
	f.inflight = live
}

// readRange fetches one chunk into the cache (the readahead entry point).
// Readahead is speculative: it rides the window as Background and never
// hedges.
func (c *Client) readRange(ctx *rpc.Ctx, f *File, chunk extent) error {
	return c.readChunks(ctx, f, []extent{chunk}, ioengine.RunOpts{Class: ioengine.Background})
}

// fillRelease installs fetched data into the page cache and releases the
// payload: the cache copies content, so a reply backed by a pooled transfer
// buffer (server-side RealPooled over the fabric, borrow-decoded frame over
// TCP) returns to the pool right here — the end of the zero-copy READ path.
func fillRelease(f *File, off int64, data payload.Payload) {
	f.cache.fill(off, data)
	data.Release()
}

// readChunks fetches a set of RSize chunks into the cache in one engine
// run: striped across data servers under a layout, or from the MDS
// otherwise.  Striped extents carry the same recovery ladder as writes — a
// device error evicts and refetches the layout for one retry, and extents
// that still cannot reach a data server are read through the MDS — with one
// extra rung under a replicated layout: a failed extent first retries on
// each alternate replica device before the layout re-drive.  Replicated
// reads are also steered to the least-loaded replica before issue.
func (c *Client) readChunks(ctx *rpc.Ctx, f *File, chunks []extent, opts ioengine.RunOpts) error {
	if len(chunks) == 0 {
		return nil
	}
	if err := f.ensureLayout(ctx); err != nil {
		return err
	}
	want := c.cfg.Real
	mdsRead := func(ctx *rpc.Ctx, e stripe.Extent) error {
		rep, err := c.call(ctx, c.cfg.MDS, true,
			&OpPutFH{FH: f.fh},
			&OpRead{StateID: f.stateID, Off: e.Off, Len: e.Len, WantReal: want},
		)
		if err != nil {
			return err
		}
		fillRelease(f, e.Off, rep.Results[1].(*ResRead).Data)
		return nil
	}
	if f.mapper == nil {
		reqs := make([]stripe.Extent, len(chunks))
		for i, ch := range chunks {
			reqs[i] = stripe.Extent{Off: ch.Off, Len: ch.len()}
		}
		return c.engine.RunWith(ctx, opts, reqs, mdsRead)
	}
	layout := f.layout
	var extents []stripe.Extent
	for _, ch := range chunks {
		extents = append(extents, f.mapper.ReadMap(ch.Off, ch.len(), ch.Off/c.cfg.RSize)...)
	}
	rm, replicated := f.mapper.(*stripe.Replicated)
	if replicated {
		// Steer each extent to its least-loaded replica device before issue.
		extents = c.engine.SteerReplicas(rm, extents)
	}
	primary := func(ctx *rpc.Ctx, e stripe.Extent) error {
		rep, err := c.dsRead(ctx, f, layout, e, want)
		// A checksum mismatch gets a bounded number of same-source re-reads
		// before the failure ladder engages: a misdirected read is one-shot,
		// so the next read of the same block is clean, while persistent rot
		// escalates to replica read-repair below (rpc.IntegrityRetries).
		for attempt := 0; rpc.RetryableIntegrity(err); attempt++ {
			c.corruptReads.Inc()
			if attempt >= rpc.IntegrityRetries {
				break
			}
			rep, err = c.dsRead(ctx, f, layout, e, want)
		}
		if err != nil {
			return err
		}
		fillRelease(f, e.Off, rep.Results[1].(*ResRead).Data)
		return nil
	}
	recovery := ioengine.WithFallback(func(ctx *rpc.Ctx, e stripe.Extent, err error) error {
		c.devErrors.Inc()
		l2 := c.recoverLayout(ctx, f)
		if l2 == nil {
			return err
		}
		if l2.Gen != layout.Gen {
			// The layout was regenerated under a new membership: remap the
			// logical range through the fresh geometry instead of retrying
			// the now-meaningless device index.
			m2, merr := l2.Mapper()
			if merr != nil {
				return err
			}
			for _, se := range m2.ReadMap(e.Off, e.Len, e.Off/c.cfg.RSize) {
				rep, err2 := c.dsRead(ctx, f, l2, se, want)
				if err2 != nil {
					return err2
				}
				fillRelease(f, se.Off, rep.Results[1].(*ResRead).Data)
			}
			return nil
		}
		if e.Dev >= len(l2.Devices) {
			return err
		}
		rep, err2 := c.dsRead(ctx, f, l2, e, want)
		if err2 != nil {
			return err2
		}
		fillRelease(f, e.Off, rep.Results[1].(*ResRead).Data)
		return nil
	})
	mdsProxy := ioengine.WithFallback(func(ctx *rpc.Ctx, e stripe.Extent, _ error) error {
		c.mdsFallbacks.Inc()
		return mdsRead(ctx, e)
	})
	policies := []ioengine.Policy{mdsProxy, recovery}
	if replicated {
		// Innermost rung: before evicting the layout, retry the extent on
		// each alternate replica device in turn — every replica holds the
		// same stripe object, so only Dev changes.  The liveness filter
		// keeps failover off devices that have left the cluster.
		live := func(dev int) bool {
			return dev >= 0 && dev < len(layout.Devices) && c.deviceActive(layout.Devices[dev])
		}
		replicaFB := ioengine.WithFallback(func(ctx *rpc.Ctx, e stripe.Extent, err error) error {
			corrupt := rpc.RetryableIntegrity(err)
			for _, alt := range rm.AlternatesLive(e, live) {
				rep, err2 := c.dsRead(ctx, f, layout, alt, want)
				if err2 != nil {
					continue
				}
				data := rep.Results[1].(*ResRead).Data
				if corrupt {
					// The extent failed its checksum, not its transport:
					// rewrite the bad copy with the replica's good bytes
					// before serving them (read-repair).
					c.readRepair(ctx, f, layout, e, data)
				}
				fillRelease(f, alt.Off, data)
				return nil
			}
			return err
		})
		policies = append(policies, replicaFB)
	}
	return c.engine.RunWith(ctx, opts, c.engine.Prepare(extents), primary, policies...)
}

// readRepair rewrites a corrupt extent with good bytes just read from a
// replica, exactly once per (file, device, device-offset): the first corrupt
// read repairs the copy, concurrent and later corrupt reads of the same
// extent only re-serve good bytes.  The rewrite is best-effort — the caller
// already holds good data, and the background scrubber sweeps up copies the
// client never rewrites — so a failed repair only releases the exactly-once
// claim for a later attempt.
func (c *Client) readRepair(ctx *rpc.Ctx, f *File, l *pnfs.FileLayout, e stripe.Extent, good payload.Payload) {
	key := repairKey{fh: f.fh, dev: e.Dev, devOff: e.DevOff}
	c.repairedMu.Lock()
	claimed := !c.repaired[key]
	if claimed {
		c.repaired[key] = true
	}
	c.repairedMu.Unlock()
	if !claimed {
		return
	}
	if _, err := c.dsWrite(ctx, f, l, e, good); err != nil {
		c.repairedMu.Lock()
		delete(c.repaired, key)
		c.repairedMu.Unlock()
		return
	}
	c.readRepairs.Inc()
}

// dsRead sends one extent's READ to its data server under layout l.
func (c *Client) dsRead(ctx *rpc.Ctx, f *File, l *pnfs.FileLayout, e stripe.Extent, want bool) (*CompoundRep, error) {
	conn := c.device(l.Devices[e.Dev])
	if conn == nil {
		return nil, fmt.Errorf("nfs: no conn for device %d", l.Devices[e.Dev])
	}
	devOff := e.Off
	if l.Direct {
		devOff = e.DevOff
	}
	return c.call(ctx, conn, false,
		&OpPutFH{FH: l.FHs[e.Dev]},
		&OpRead{StateID: f.stateID, Off: devOff, Len: e.Len, WantReal: want},
	)
}

// GetAttr refreshes attributes from the metadata server.
func (c *Client) GetAttr(ctx *rpc.Ctx, f *File) (Attr, error) {
	rep, err := c.call(ctx, c.cfg.MDS, true, &OpPutFH{FH: f.fh}, &OpGetAttr{})
	if err != nil {
		return Attr{}, err
	}
	at := rep.Results[1].(*ResGetAttr).Attr
	if at.Size > f.size {
		f.size = at.Size
	}
	return at, nil
}

// Truncate sets the file size.
func (c *Client) Truncate(ctx *rpc.Ctx, f *File, size int64) error {
	_, err := c.call(ctx, c.cfg.MDS, true, &OpPutFH{FH: f.fh}, &OpSetAttr{Size: size})
	if err != nil {
		return err
	}
	f.size = size
	f.committed = size
	f.cache.truncate(size)
	return nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(ctx *rpc.Ctx, path string) error {
	ops, name := walkOps(path)
	_, err := c.call(ctx, c.cfg.MDS, true, append(ops, &OpCreate{Name: name})...)
	return err
}

// Remove unlinks a file or empty directory.
func (c *Client) Remove(ctx *rpc.Ctx, path string) error {
	ops, name := walkOps(path)
	_, err := c.call(ctx, c.cfg.MDS, true, append(ops, &OpRemove{Name: name})...)
	return err
}

// Rename renames src to dst within directory dirPath.
func (c *Client) Rename(ctx *rpc.Ctx, dirPath, src, dst string) error {
	ops := []Op{&OpPutRootFH{}}
	for _, dir := range strings.Split(strings.Trim(dirPath, "/"), "/") {
		if dir != "" {
			ops = append(ops, &OpLookup{Name: dir})
		}
	}
	_, err := c.call(ctx, c.cfg.MDS, true, append(ops, &OpRename{Src: src, Dst: dst})...)
	return err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(ctx *rpc.Ctx, path string) ([]string, error) {
	ops := []Op{&OpPutRootFH{}}
	for _, dir := range strings.Split(strings.Trim(path, "/"), "/") {
		if dir != "" {
			ops = append(ops, &OpLookup{Name: dir})
		}
	}
	rep, err := c.call(ctx, c.cfg.MDS, true, append(ops, &OpReadDir{})...)
	if err != nil {
		return nil, err
	}
	return rep.Results[len(rep.Results)-1].(*ResReadDir).Names, nil
}
