// Package nfs implements the NFSv4.1 protocol engine used on both sides of
// every architecture in this repository: the metadata server, the data
// servers, the plain NFSv4 server, and the client (with write-back page
// cache, request gathering to wsize, readahead, and pNFS layout I/O).
//
// Operations are carried in COMPOUND procedures as in RFC 5661, using the
// real NFSv4.1 operation numbers.  A compound opens with session fields
// (EXCHANGE_ID / CREATE_SESSION establish them; per-slot sequence numbers
// give replay semantics), and the server threads a current-filehandle
// through the op list.
package nfs

import (
	"dpnfs/internal/fserr"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/xdr"
)

// ProcCompound is the single RPC procedure: everything is a COMPOUND.
const ProcCompound uint32 = 1

// Service is the simnet service name for NFSv4.1 endpoints.
const Service = "nfs"

// NFSv4.1 operation numbers (RFC 5661 §16-18 subset).
const (
	OpNumClose         uint32 = 4
	OpNumCommit        uint32 = 5
	OpNumCreate        uint32 = 6
	OpNumGetAttr       uint32 = 9
	OpNumLookup        uint32 = 15
	OpNumOpen          uint32 = 18
	OpNumPutFH         uint32 = 22
	OpNumPutRootFH     uint32 = 24
	OpNumRead          uint32 = 25
	OpNumReadDir       uint32 = 26
	OpNumRemove        uint32 = 28
	OpNumRename        uint32 = 29
	OpNumSetAttr       uint32 = 34
	OpNumWrite         uint32 = 38
	OpNumExchangeID    uint32 = 42
	OpNumCreateSession uint32 = 43
	OpNumLayoutCommit  uint32 = 49
	OpNumLayoutGet     uint32 = 50
	OpNumLayoutReturn  uint32 = 51
	OpNumSequence      uint32 = 53
	OpNumGetDevList    uint32 = 56
)

// Attr is the attribute subset the protocols exchange.
type Attr struct {
	IsDir  bool
	Size   int64
	Change uint64
}

func (a *Attr) MarshalXDR(e *xdr.Encoder) {
	e.Bool(a.IsDir)
	e.Int64(a.Size)
	e.Uint64(a.Change)
}

func (a *Attr) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if a.IsDir, err = d.Bool(); err != nil {
		return err
	}
	if a.Size, err = d.Int64(); err != nil {
		return err
	}
	a.Change, err = d.Uint64()
	return err
}

// Op is one operation inside a COMPOUND request.
type Op interface {
	Num() uint32
	xdr.Marshaler
	xdr.Unmarshaler
}

// Result is one operation result inside a COMPOUND reply.
type Result interface {
	Num() uint32
	Status() fserr.Errno
	xdr.Marshaler
	xdr.Unmarshaler
}

// ---- Operations ----

// OpPutRootFH sets the current filehandle to the export root.
type OpPutRootFH struct{}

// OpPutFH sets the current filehandle.
type OpPutFH struct{ FH uint64 }

// OpLookup resolves Name in the current (directory) filehandle.
type OpLookup struct{ Name string }

// OpOpen opens Name in the current directory, optionally creating it.  The
// current filehandle becomes the opened file.
type OpOpen struct {
	Name   string
	Create bool
}

// OpClose releases the open state.
type OpClose struct{ StateID uint64 }

// OpGetAttr fetches attributes of the current filehandle.
type OpGetAttr struct{}

// OpSetAttr sets the file size (truncate) of the current filehandle.
type OpSetAttr struct{ Size int64 }

// OpRead reads from the current filehandle.
type OpRead struct {
	StateID  uint64
	Off      int64
	Len      int64
	WantReal bool
}

// OpWrite writes to the current filehandle.  Stable requests synchronous
// commitment to stable storage (FILE_SYNC4); otherwise UNSTABLE4.
type OpWrite struct {
	StateID uint64
	Off     int64
	Data    payload.Payload
	Stable  bool
}

// OpCommit forces previously unstable writes to stable storage.
type OpCommit struct{ Off, Len int64 }

// OpCreate makes a directory (the only CREATE type this subset needs).
type OpCreate struct{ Name string }

// OpRemove unlinks Name in the current directory.
type OpRemove struct{ Name string }

// OpRename renames Src to Dst within the current directory.
type OpRename struct{ Src, Dst string }

// OpReadDir lists the current directory.
type OpReadDir struct{}

// OpGetDevList retrieves the data-server device list (pNFS, issued at
// mount).
type OpGetDevList struct{}

// OpLayoutGet retrieves the file layout for the current filehandle.
type OpLayoutGet struct{}

// OpLayoutCommit publishes post-I/O metadata (possibly extended size).
type OpLayoutCommit struct{ NewSize int64 }

// OpLayoutReturn returns the layout for the current filehandle.
type OpLayoutReturn struct{}

// OpExchangeID introduces a client to the server.
type OpExchangeID struct{ ClientName string }

// OpCreateSession creates a session with a slot table.
type OpCreateSession struct {
	ClientID uint64
	Slots    uint32
}

// Num implementations.
func (*OpPutRootFH) Num() uint32     { return OpNumPutRootFH }
func (*OpPutFH) Num() uint32         { return OpNumPutFH }
func (*OpLookup) Num() uint32        { return OpNumLookup }
func (*OpOpen) Num() uint32          { return OpNumOpen }
func (*OpClose) Num() uint32         { return OpNumClose }
func (*OpGetAttr) Num() uint32       { return OpNumGetAttr }
func (*OpSetAttr) Num() uint32       { return OpNumSetAttr }
func (*OpRead) Num() uint32          { return OpNumRead }
func (*OpWrite) Num() uint32         { return OpNumWrite }
func (*OpCommit) Num() uint32        { return OpNumCommit }
func (*OpCreate) Num() uint32        { return OpNumCreate }
func (*OpRemove) Num() uint32        { return OpNumRemove }
func (*OpRename) Num() uint32        { return OpNumRename }
func (*OpReadDir) Num() uint32       { return OpNumReadDir }
func (*OpGetDevList) Num() uint32    { return OpNumGetDevList }
func (*OpLayoutGet) Num() uint32     { return OpNumLayoutGet }
func (*OpLayoutCommit) Num() uint32  { return OpNumLayoutCommit }
func (*OpLayoutReturn) Num() uint32  { return OpNumLayoutReturn }
func (*OpExchangeID) Num() uint32    { return OpNumExchangeID }
func (*OpCreateSession) Num() uint32 { return OpNumCreateSession }

// XDR implementations.
func (*OpPutRootFH) MarshalXDR(*xdr.Encoder)         {}
func (*OpPutRootFH) UnmarshalXDR(*xdr.Decoder) error { return nil }

func (o *OpPutFH) MarshalXDR(e *xdr.Encoder) { e.Uint64(o.FH) }
func (o *OpPutFH) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.FH, err = d.Uint64()
	return err
}

func (o *OpLookup) MarshalXDR(e *xdr.Encoder) { e.String(o.Name) }
func (o *OpLookup) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.Name, err = d.String()
	return err
}

func (o *OpOpen) MarshalXDR(e *xdr.Encoder) {
	e.String(o.Name)
	e.Bool(o.Create)
}
func (o *OpOpen) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if o.Name, err = d.String(); err != nil {
		return err
	}
	o.Create, err = d.Bool()
	return err
}

func (o *OpClose) MarshalXDR(e *xdr.Encoder) { e.Uint64(o.StateID) }
func (o *OpClose) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.StateID, err = d.Uint64()
	return err
}

func (*OpGetAttr) MarshalXDR(*xdr.Encoder)         {}
func (*OpGetAttr) UnmarshalXDR(*xdr.Decoder) error { return nil }

func (o *OpSetAttr) MarshalXDR(e *xdr.Encoder) { e.Int64(o.Size) }
func (o *OpSetAttr) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.Size, err = d.Int64()
	return err
}

func (o *OpRead) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(o.StateID)
	e.Int64(o.Off)
	e.Int64(o.Len)
	e.Bool(o.WantReal)
}
func (o *OpRead) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if o.StateID, err = d.Uint64(); err != nil {
		return err
	}
	if o.Off, err = d.Int64(); err != nil {
		return err
	}
	if o.Len, err = d.Int64(); err != nil {
		return err
	}
	o.WantReal, err = d.Bool()
	return err
}

func (o *OpWrite) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(o.StateID)
	e.Int64(o.Off)
	o.Data.MarshalXDR(e)
	e.Bool(o.Stable)
}
func (o *OpWrite) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if o.StateID, err = d.Uint64(); err != nil {
		return err
	}
	if o.Off, err = d.Int64(); err != nil {
		return err
	}
	if err = o.Data.UnmarshalXDR(d); err != nil {
		return err
	}
	o.Stable, err = d.Bool()
	return err
}

// WireSize avoids materializing bulk write payloads under simulation.
func (o *OpWrite) WireSize() int64 {
	return xdr.SizeUint64 + xdr.SizeUint64 + o.Data.WireSize() + xdr.SizeBool
}

func (o *OpCommit) MarshalXDR(e *xdr.Encoder) {
	e.Int64(o.Off)
	e.Int64(o.Len)
}
func (o *OpCommit) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if o.Off, err = d.Int64(); err != nil {
		return err
	}
	o.Len, err = d.Int64()
	return err
}

func (o *OpCreate) MarshalXDR(e *xdr.Encoder) { e.String(o.Name) }
func (o *OpCreate) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.Name, err = d.String()
	return err
}

func (o *OpRemove) MarshalXDR(e *xdr.Encoder) { e.String(o.Name) }
func (o *OpRemove) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.Name, err = d.String()
	return err
}

func (o *OpRename) MarshalXDR(e *xdr.Encoder) {
	e.String(o.Src)
	e.String(o.Dst)
}
func (o *OpRename) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if o.Src, err = d.String(); err != nil {
		return err
	}
	o.Dst, err = d.String()
	return err
}

func (*OpReadDir) MarshalXDR(*xdr.Encoder)         {}
func (*OpReadDir) UnmarshalXDR(*xdr.Decoder) error { return nil }

func (*OpGetDevList) MarshalXDR(*xdr.Encoder)         {}
func (*OpGetDevList) UnmarshalXDR(*xdr.Decoder) error { return nil }

func (*OpLayoutGet) MarshalXDR(*xdr.Encoder)         {}
func (*OpLayoutGet) UnmarshalXDR(*xdr.Decoder) error { return nil }

func (o *OpLayoutCommit) MarshalXDR(e *xdr.Encoder) { e.Int64(o.NewSize) }
func (o *OpLayoutCommit) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.NewSize, err = d.Int64()
	return err
}

func (*OpLayoutReturn) MarshalXDR(*xdr.Encoder)         {}
func (*OpLayoutReturn) UnmarshalXDR(*xdr.Decoder) error { return nil }

func (o *OpExchangeID) MarshalXDR(e *xdr.Encoder) { e.String(o.ClientName) }
func (o *OpExchangeID) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	o.ClientName, err = d.String()
	return err
}

func (o *OpCreateSession) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(o.ClientID)
	e.Uint32(o.Slots)
}
func (o *OpCreateSession) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if o.ClientID, err = d.Uint64(); err != nil {
		return err
	}
	o.Slots, err = d.Uint32()
	return err
}

// ---- Results ----

// errnoOnly is embedded by results that carry only a status.
type errnoOnly struct{ Errno fserr.Errno }

func (r *errnoOnly) Status() fserr.Errno       { return r.Errno }
func (r *errnoOnly) MarshalXDR(e *xdr.Encoder) { e.Uint32(uint32(r.Errno)) }
func (r *errnoOnly) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	r.Errno = fserr.Errno(v)
	return err
}

// fhAttr is embedded by results that return a filehandle plus attributes.
type fhAttr struct {
	Errno fserr.Errno
	FH    uint64
	Attr  Attr
}

func (r *fhAttr) Status() fserr.Errno { return r.Errno }
func (r *fhAttr) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint64(r.FH)
	r.Attr.MarshalXDR(e)
}
func (r *fhAttr) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	if r.FH, err = d.Uint64(); err != nil {
		return err
	}
	return r.Attr.UnmarshalXDR(d)
}

// ResPutRootFH is the PUTROOTFH result.
type ResPutRootFH struct{ errnoOnly }

// ResPutFH is the PUTFH result.
type ResPutFH struct{ errnoOnly }

// ResLookup is the LOOKUP result.
type ResLookup struct{ fhAttr }

// ResOpen is the OPEN result.
type ResOpen struct {
	fhAttr
	StateID uint64
}

func (r *ResOpen) MarshalXDR(e *xdr.Encoder) {
	r.fhAttr.MarshalXDR(e)
	e.Uint64(r.StateID)
}
func (r *ResOpen) UnmarshalXDR(d *xdr.Decoder) error {
	if err := r.fhAttr.UnmarshalXDR(d); err != nil {
		return err
	}
	var err error
	r.StateID, err = d.Uint64()
	return err
}

// ResClose is the CLOSE result.
type ResClose struct{ errnoOnly }

// ResGetAttr is the GETATTR result.
type ResGetAttr struct {
	Errno fserr.Errno
	Attr  Attr
}

func (r *ResGetAttr) Status() fserr.Errno { return r.Errno }
func (r *ResGetAttr) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	r.Attr.MarshalXDR(e)
}
func (r *ResGetAttr) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	return r.Attr.UnmarshalXDR(d)
}

// ResSetAttr is the SETATTR result.
type ResSetAttr struct{ errnoOnly }

// ResRead is the READ result.
type ResRead struct {
	Errno fserr.Errno
	Eof   bool
	Data  payload.Payload
	// Sum is an optional CRC32C over the payload bytes (HasSum gates it),
	// computed by servers with wire checksums enabled so clients can verify
	// the payload end to end (docs/BACKENDS.md "Block checksums").
	Sum    uint32
	HasSum bool
}

func (r *ResRead) Status() fserr.Errno { return r.Errno }
func (r *ResRead) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Bool(r.Eof)
	r.Data.MarshalXDR(e)
	e.Uint32(r.Sum)
	e.Bool(r.HasSum)
}
func (r *ResRead) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	if r.Eof, err = d.Bool(); err != nil {
		return err
	}
	if err = r.Data.UnmarshalXDR(d); err != nil {
		return err
	}
	if r.Sum, err = d.Uint32(); err != nil {
		return err
	}
	r.HasSum, err = d.Bool()
	return err
}

// WireSize avoids materializing bulk read payloads under simulation.
func (r *ResRead) WireSize() int64 {
	return xdr.SizeUint32 + xdr.SizeBool + r.Data.WireSize() + xdr.SizeUint32 + xdr.SizeBool
}

// ResWrite is the WRITE result.
type ResWrite struct {
	Errno   fserr.Errno
	Count   int64
	NewSize int64
}

func (r *ResWrite) Status() fserr.Errno { return r.Errno }
func (r *ResWrite) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Int64(r.Count)
	e.Int64(r.NewSize)
}
func (r *ResWrite) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	if r.Count, err = d.Int64(); err != nil {
		return err
	}
	r.NewSize, err = d.Int64()
	return err
}

// ResCommit is the COMMIT result.
type ResCommit struct{ errnoOnly }

// ResCreate is the CREATE result.
type ResCreate struct{ fhAttr }

// ResRemove is the REMOVE result.
type ResRemove struct{ errnoOnly }

// ResRename is the RENAME result.
type ResRename struct{ errnoOnly }

// ResReadDir is the READDIR result.
type ResReadDir struct {
	Errno fserr.Errno
	Names []string
}

func (r *ResReadDir) Status() fserr.Errno { return r.Errno }
func (r *ResReadDir) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint32(uint32(len(r.Names)))
	for _, n := range r.Names {
		e.String(n)
	}
}
func (r *ResReadDir) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	// Each name needs at least its 4-byte length word; reject corrupt
	// counts before allocating.
	if n > 1<<20 || int64(n) > int64(d.Remaining()/4) {
		return xdr.ErrTooLong
	}
	r.Names = make([]string, n)
	for i := range r.Names {
		if r.Names[i], err = d.String(); err != nil {
			return err
		}
	}
	return nil
}

// ResGetDevList is the GETDEVICELIST result.
type ResGetDevList struct {
	Errno   fserr.Errno
	Devices []pnfs.DeviceInfo
}

func (r *ResGetDevList) Status() fserr.Errno { return r.Errno }
func (r *ResGetDevList) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint32(uint32(len(r.Devices)))
	for _, dev := range r.Devices {
		e.Uint32(uint32(dev.ID))
		e.String(dev.Addr)
	}
}
func (r *ResGetDevList) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 4096 {
		return xdr.ErrTooLong
	}
	r.Devices = make([]pnfs.DeviceInfo, n)
	for i := range r.Devices {
		id, err := d.Uint32()
		if err != nil {
			return err
		}
		r.Devices[i].ID = pnfs.DeviceID(id)
		if r.Devices[i].Addr, err = d.String(); err != nil {
			return err
		}
	}
	return nil
}

// ResLayoutGet is the LAYOUTGET result.
type ResLayoutGet struct {
	Errno  fserr.Errno
	Layout pnfs.FileLayout
}

func (r *ResLayoutGet) Status() fserr.Errno { return r.Errno }
func (r *ResLayoutGet) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	r.Layout.MarshalXDR(e)
}
func (r *ResLayoutGet) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	return r.Layout.UnmarshalXDR(d)
}

// ResLayoutCommit is the LAYOUTCOMMIT result.
type ResLayoutCommit struct{ errnoOnly }

// ResLayoutReturn is the LAYOUTRETURN result.
type ResLayoutReturn struct{ errnoOnly }

// ResExchangeID is the EXCHANGE_ID result.
type ResExchangeID struct {
	Errno    fserr.Errno
	ClientID uint64
}

func (r *ResExchangeID) Status() fserr.Errno { return r.Errno }
func (r *ResExchangeID) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint64(r.ClientID)
}
func (r *ResExchangeID) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	r.ClientID, err = d.Uint64()
	return err
}

// ResCreateSession is the CREATE_SESSION result.
type ResCreateSession struct {
	Errno   fserr.Errno
	Session uint64
	Slots   uint32
}

func (r *ResCreateSession) Status() fserr.Errno { return r.Errno }
func (r *ResCreateSession) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint64(r.Session)
	e.Uint32(r.Slots)
}
func (r *ResCreateSession) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	if r.Session, err = d.Uint64(); err != nil {
		return err
	}
	r.Slots, err = d.Uint32()
	return err
}

// Num implementations for results.
func (*ResPutRootFH) Num() uint32     { return OpNumPutRootFH }
func (*ResPutFH) Num() uint32         { return OpNumPutFH }
func (*ResLookup) Num() uint32        { return OpNumLookup }
func (*ResOpen) Num() uint32          { return OpNumOpen }
func (*ResClose) Num() uint32         { return OpNumClose }
func (*ResGetAttr) Num() uint32       { return OpNumGetAttr }
func (*ResSetAttr) Num() uint32       { return OpNumSetAttr }
func (*ResRead) Num() uint32          { return OpNumRead }
func (*ResWrite) Num() uint32         { return OpNumWrite }
func (*ResCommit) Num() uint32        { return OpNumCommit }
func (*ResCreate) Num() uint32        { return OpNumCreate }
func (*ResRemove) Num() uint32        { return OpNumRemove }
func (*ResRename) Num() uint32        { return OpNumRename }
func (*ResReadDir) Num() uint32       { return OpNumReadDir }
func (*ResGetDevList) Num() uint32    { return OpNumGetDevList }
func (*ResLayoutGet) Num() uint32     { return OpNumLayoutGet }
func (*ResLayoutCommit) Num() uint32  { return OpNumLayoutCommit }
func (*ResLayoutReturn) Num() uint32  { return OpNumLayoutReturn }
func (*ResExchangeID) Num() uint32    { return OpNumExchangeID }
func (*ResCreateSession) Num() uint32 { return OpNumCreateSession }
