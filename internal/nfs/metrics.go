package nfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// OpMetrics aggregates latency and volume for one NFSv4.1 operation type on
// a client mount — the nfsstat/mountstats view of the protocol.
type OpMetrics struct {
	Count  uint64
	Errors uint64
	Bytes  int64         // payload bytes moved (READ/WRITE only)
	Total  time.Duration // summed round-trip latency
	Max    time.Duration
	histo  [nBuckets]uint64
}

// Latency histogram buckets (upper bounds).
var bucketBounds = []time.Duration{
	100 * time.Microsecond,
	300 * time.Microsecond,
	1 * time.Millisecond,
	3 * time.Millisecond,
	10 * time.Millisecond,
	30 * time.Millisecond,
	100 * time.Millisecond,
	time.Duration(1<<62 - 1),
}

const nBuckets = 8

// Mean returns the average round-trip latency.
func (m *OpMetrics) Mean() time.Duration {
	if m.Count == 0 {
		return 0
	}
	return m.Total / time.Duration(m.Count)
}

// Percentile returns an upper bound for the p-th latency percentile from
// the histogram (p in [0,100]).
func (m *OpMetrics) Percentile(p float64) time.Duration {
	if m.Count == 0 {
		return 0
	}
	target := uint64(float64(m.Count) * p / 100)
	var cum uint64
	for i, n := range m.histo {
		cum += n
		if cum > target {
			return bucketBounds[i]
		}
	}
	return bucketBounds[nBuckets-1]
}

func (m *OpMetrics) record(d time.Duration, bytes int64, err error) {
	m.Count++
	m.Total += d
	if d > m.Max {
		m.Max = d
	}
	if err != nil {
		m.Errors++
	}
	m.Bytes += bytes
	for i, b := range bucketBounds {
		if d <= b {
			m.histo[i]++
			return
		}
	}
}

// Metrics is the per-mount operation table.  Recording is safe from
// concurrent calls (striped I/O runs on parallel goroutines in real-time
// mode); readers should quiesce the mount first.
type Metrics struct {
	mu  sync.Mutex
	ops map[uint32]*OpMetrics
}

func newMetrics() *Metrics { return &Metrics{ops: make(map[uint32]*OpMetrics)} }

// Op returns the metrics for an operation number (nil if never issued).
func (m *Metrics) Op(num uint32) *OpMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops[num]
}

func (m *Metrics) record(num uint32, d time.Duration, bytes int64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	om := m.ops[num]
	if om == nil {
		om = &OpMetrics{}
		m.ops[num] = om
	}
	om.record(d, bytes, err)
}

// opName renders the RFC 5661 operation names.
func opName(num uint32) string {
	switch num {
	case OpNumClose:
		return "CLOSE"
	case OpNumCommit:
		return "COMMIT"
	case OpNumCreate:
		return "CREATE"
	case OpNumGetAttr:
		return "GETATTR"
	case OpNumLookup:
		return "LOOKUP"
	case OpNumOpen:
		return "OPEN"
	case OpNumPutFH:
		return "PUTFH"
	case OpNumPutRootFH:
		return "PUTROOTFH"
	case OpNumRead:
		return "READ"
	case OpNumReadDir:
		return "READDIR"
	case OpNumRemove:
		return "REMOVE"
	case OpNumRename:
		return "RENAME"
	case OpNumSetAttr:
		return "SETATTR"
	case OpNumWrite:
		return "WRITE"
	case OpNumExchangeID:
		return "EXCHANGE_ID"
	case OpNumCreateSession:
		return "CREATE_SESSION"
	case OpNumLayoutCommit:
		return "LAYOUTCOMMIT"
	case OpNumLayoutGet:
		return "LAYOUTGET"
	case OpNumLayoutReturn:
		return "LAYOUTRETURN"
	case OpNumSequence:
		return "SEQUENCE"
	case OpNumGetDevList:
		return "GETDEVICELIST"
	}
	return fmt.Sprintf("OP_%d", num)
}

// String renders a mountstats-style table sorted by total time.
func (m *Metrics) String() string {
	type row struct {
		num uint32
		om  *OpMetrics
	}
	m.mu.Lock()
	rows := make([]row, 0, len(m.ops))
	for num, om := range m.ops {
		rows = append(rows, row{num, om})
	}
	m.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].om.Total > rows[j].om.Total })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %7s %12s %10s %10s %10s\n",
		"op", "count", "errors", "bytes", "mean", "p95", "max")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %8d %7d %12d %10v %10v %10v\n",
			opName(r.num), r.om.Count, r.om.Errors, r.om.Bytes,
			r.om.Mean().Round(time.Microsecond),
			r.om.Percentile(95).Round(time.Microsecond),
			r.om.Max.Round(time.Microsecond))
	}
	return sb.String()
}
