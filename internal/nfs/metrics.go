package nfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dpnfs/internal/metrics"
)

// Metrics is a mount's per-operation view over the shared metrics registry
// (package metrics): the nfsstat/mountstats table, backed by the same
// instruments the /metrics endpoint and bench reports export —
// nfs_client_ops_total, nfs_client_op_errors_total, nfs_client_op_bytes_total,
// and the nfs_client_op_seconds histogram, all labeled by RFC 5661 op name.
type Metrics struct {
	ops   *metrics.CounterVec
	errs  *metrics.CounterVec
	bytes *metrics.CounterVec
	lat   *metrics.HistogramVec

	mu    sync.Mutex
	perOp map[uint32]*OpMetrics
}

// OpMetrics bundles one operation's resolved instruments.  Recording is
// pure atomics; the accessor methods serve the mountstats-style table and
// tests.
type OpMetrics struct {
	ops   *metrics.Counter
	errs  *metrics.Counter
	bytes *metrics.Counter
	lat   *metrics.Histogram
}

// newMetrics resolves the mount's instrument families.  reg may be nil
// (instruments still record, into a discard registry).
func newMetrics(reg *metrics.Registry) *Metrics {
	reg = orPrivate(reg)
	return &Metrics{
		ops: reg.CounterVec("nfs_client_ops_total",
			"NFSv4.1 operations issued by the mount, by RFC 5661 op name.", "op"),
		errs: reg.CounterVec("nfs_client_op_errors_total",
			"NFSv4.1 operations whose compound failed.", "op"),
		bytes: reg.CounterVec("nfs_client_op_bytes_total",
			"Payload bytes moved by READ/WRITE operations.", "op"),
		lat: reg.HistogramVec("nfs_client_op_seconds",
			"Compound round-trip latency attributed to each operation.",
			metrics.DurationBuckets, "op"),
		perOp: make(map[uint32]*OpMetrics),
	}
}

// orPrivate substitutes a fresh private registry for nil, so a bare
// nfs.NewClient still gets a working mountstats table.
func orPrivate(reg *metrics.Registry) *metrics.Registry {
	if reg == nil {
		return metrics.NewRegistry()
	}
	return reg
}

// Op returns the metrics for an operation number (nil if never issued).
func (m *Metrics) Op(num uint32) *OpMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.perOp[num]
}

// op returns (creating on first use) the instrument bundle for num.
func (m *Metrics) op(num uint32) *OpMetrics {
	m.mu.Lock()
	om := m.perOp[num]
	if om == nil {
		name := opName(num)
		om = &OpMetrics{
			ops:   m.ops.With(name),
			errs:  m.errs.With(name),
			bytes: m.bytes.With(name),
			lat:   m.lat.With(name),
		}
		m.perOp[num] = om
	}
	m.mu.Unlock()
	return om
}

func (m *Metrics) record(num uint32, d time.Duration, bytes int64, err error) {
	om := m.op(num)
	om.ops.Inc()
	om.lat.ObserveDuration(d)
	if err != nil {
		om.errs.Inc()
	}
	if bytes > 0 {
		om.bytes.Add(uint64(bytes))
	}
}

// Count returns how many times the operation was issued.
func (m *OpMetrics) Count() uint64 { return m.ops.Value() }

// Errors returns how many compounds carrying the operation failed.
func (m *OpMetrics) Errors() uint64 { return m.errs.Value() }

// Bytes returns the payload bytes moved (READ/WRITE only).
func (m *OpMetrics) Bytes() int64 { return int64(m.bytes.Value()) }

// Total returns the summed round-trip latency.
func (m *OpMetrics) Total() time.Duration {
	return time.Duration(m.lat.Sum() * float64(time.Second))
}

// Mean returns the average round-trip latency.
func (m *OpMetrics) Mean() time.Duration {
	return time.Duration(m.lat.Mean() * float64(time.Second))
}

// Max returns the largest round-trip latency.
func (m *OpMetrics) Max() time.Duration {
	return time.Duration(m.lat.Max() * float64(time.Second))
}

// Percentile returns an upper bound for the p-th latency percentile from
// the histogram (p in [0,100]).
func (m *OpMetrics) Percentile(p float64) time.Duration {
	return time.Duration(m.lat.Quantile(p/100) * float64(time.Second))
}

// opName renders the RFC 5661 operation names.
func opName(num uint32) string {
	switch num {
	case OpNumClose:
		return "CLOSE"
	case OpNumCommit:
		return "COMMIT"
	case OpNumCreate:
		return "CREATE"
	case OpNumGetAttr:
		return "GETATTR"
	case OpNumLookup:
		return "LOOKUP"
	case OpNumOpen:
		return "OPEN"
	case OpNumPutFH:
		return "PUTFH"
	case OpNumPutRootFH:
		return "PUTROOTFH"
	case OpNumRead:
		return "READ"
	case OpNumReadDir:
		return "READDIR"
	case OpNumRemove:
		return "REMOVE"
	case OpNumRename:
		return "RENAME"
	case OpNumSetAttr:
		return "SETATTR"
	case OpNumWrite:
		return "WRITE"
	case OpNumExchangeID:
		return "EXCHANGE_ID"
	case OpNumCreateSession:
		return "CREATE_SESSION"
	case OpNumLayoutCommit:
		return "LAYOUTCOMMIT"
	case OpNumLayoutGet:
		return "LAYOUTGET"
	case OpNumLayoutReturn:
		return "LAYOUTRETURN"
	case OpNumSequence:
		return "SEQUENCE"
	case OpNumGetDevList:
		return "GETDEVICELIST"
	}
	return fmt.Sprintf("OP_%d", num)
}

// String renders a mountstats-style table sorted by total time.
func (m *Metrics) String() string {
	type row struct {
		num uint32
		om  *OpMetrics
	}
	m.mu.Lock()
	rows := make([]row, 0, len(m.perOp))
	for num, om := range m.perOp {
		rows = append(rows, row{num, om})
	}
	m.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].om.Total() > rows[j].om.Total() })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %7s %12s %10s %10s %10s\n",
		"op", "count", "errors", "bytes", "mean", "p95", "max")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %8d %7d %12d %10v %10v %10v\n",
			opName(r.num), r.om.Count(), r.om.Errors(), r.om.Bytes(),
			r.om.Mean().Round(time.Microsecond),
			r.om.Percentile(95).Round(time.Microsecond),
			r.om.Max().Round(time.Microsecond))
	}
	return sb.String()
}
