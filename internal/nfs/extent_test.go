package nfs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertMerges(t *testing.T) {
	var l extList
	l = l.insert(0, 10)
	l = l.insert(20, 30)
	l = l.insert(10, 20) // bridges the gap
	if len(l) != 1 || l[0] != (extent{0, 30}) {
		t.Fatalf("merge failed: %v", l)
	}
}

func TestInsertOverlapping(t *testing.T) {
	var l extList
	l = l.insert(5, 15)
	l = l.insert(0, 10)
	l = l.insert(12, 20)
	if len(l) != 1 || l[0] != (extent{0, 20}) {
		t.Fatalf("overlap merge failed: %v", l)
	}
}

func TestInsertEmptyRangeNoop(t *testing.T) {
	var l extList
	l = l.insert(5, 5)
	if len(l) != 0 {
		t.Fatalf("empty insert created extent: %v", l)
	}
}

func TestSubtractSplits(t *testing.T) {
	var l extList
	l = l.insert(0, 100)
	l = l.subtract(40, 60)
	if len(l) != 2 || l[0] != (extent{0, 40}) || l[1] != (extent{60, 100}) {
		t.Fatalf("split failed: %v", l)
	}
}

func TestSubtractEdges(t *testing.T) {
	var l extList
	l = l.insert(10, 20)
	if got := l.subtract(0, 10); len(got) != 1 || got[0] != (extent{10, 20}) {
		t.Fatalf("subtract before: %v", got)
	}
	if got := l.subtract(10, 20); len(got) != 0 {
		t.Fatalf("subtract exact: %v", got)
	}
	if got := l.subtract(15, 25); len(got) != 1 || got[0] != (extent{10, 15}) {
		t.Fatalf("subtract tail: %v", got)
	}
}

func TestMissing(t *testing.T) {
	var l extList
	l = l.insert(10, 20)
	l = l.insert(30, 40)
	gaps := l.missing(0, 50)
	want := []extent{{0, 10}, {20, 30}, {40, 50}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps %v, want %v", gaps, want)
		}
	}
	if !l.contains(12, 18) || l.contains(12, 22) {
		t.Fatal("contains wrong")
	}
	if !l.overlaps(15, 35) || l.overlaps(20, 30) {
		t.Fatal("overlaps wrong")
	}
}

// Property: extList agrees with a bitmap reference model under a random op
// sequence.
func TestPropertyExtListMatchesBitmap(t *testing.T) {
	const space = 512
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var l extList
		ref := make([]bool, space)
		for s := 0; s < int(steps%64)+1; s++ {
			a, b := rng.Int63n(space), rng.Int63n(space)
			if a > b {
				a, b = b, a
			}
			if rng.Intn(2) == 0 {
				l = l.insert(a, b)
				for i := a; i < b; i++ {
					ref[i] = true
				}
			} else {
				l = l.subtract(a, b)
				for i := a; i < b; i++ {
					ref[i] = false
				}
			}
		}
		// Compare membership byte by byte via missing().
		for i := int64(0); i < space; i++ {
			covered := len(l.missing(i, i+1)) == 0
			if covered != ref[i] {
				return false
			}
		}
		// Structural invariants: sorted, merged, non-empty extents.
		for i, e := range l {
			if e.Off >= e.End {
				return false
			}
			if i > 0 && l[i-1].End >= e.Off {
				return false
			}
		}
		// total() agrees with the reference count.
		var want int64
		for _, v := range ref {
			if v {
				want++
			}
		}
		return l.total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
