package nfs

import (
	"errors"
	"sync"
	"time"

	"dpnfs/internal/fserr"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simdisk"
	"dpnfs/internal/simnet"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/xdr"
)

// ErrNoPNFS is returned by backends that do not serve layouts (plain NFSv4
// exports); clients then fall back to proxied I/O through the server.
var ErrNoPNFS = errors.New("nfs: backend does not support pNFS layouts")

// Backend is the storage engine behind an NFSv4.1 server.  Different
// architectures plug different engines in:
//
//   - a local store behind the repository interfaces (StoreBackend, plain
//     NFS servers and tests — any store.Store: mem, wal, cached);
//   - a PVFS2 client (the single-server NFSv4 export and the two/three-tier
//     pNFS data servers);
//   - the Direct-pNFS metadata server (PVFS2 MDS co-located, with the
//     layout translator) and data server (loopback conduit to the local
//     storage daemon).
type Backend interface {
	Root() uint64
	Lookup(ctx *rpc.Ctx, dir uint64, name string) (uint64, Attr, error)
	Create(ctx *rpc.Ctx, dir uint64, name string) (uint64, Attr, error)
	Mkdir(ctx *rpc.Ctx, dir uint64, name string) (uint64, Attr, error)
	Remove(ctx *rpc.Ctx, dir uint64, name string) error
	Rename(ctx *rpc.Ctx, dir uint64, src, dst string) error
	ReadDir(ctx *rpc.Ctx, dir uint64) ([]string, error)
	GetAttr(ctx *rpc.Ctx, fh uint64) (Attr, error)
	SetSize(ctx *rpc.Ctx, fh uint64, size int64) error
	Read(ctx *rpc.Ctx, fh uint64, off, n int64, wantReal bool) (payload.Payload, bool, error)
	Write(ctx *rpc.Ctx, fh uint64, off int64, data payload.Payload, stable bool) (int64, error)
	Commit(ctx *rpc.Ctx, fh uint64) error
	DevList(ctx *rpc.Ctx) ([]pnfs.DeviceInfo, error)
	LayoutGet(ctx *rpc.Ctx, fh uint64) (*pnfs.FileLayout, error)
	LayoutCommit(ctx *rpc.Ctx, fh uint64, newSize int64) error
}

// Costs is the CPU cost model for the in-kernel NFS implementation.  The
// per-op costs are far below PVFS2's user-level daemon costs, which is what
// lets the NFSv4 architectures win every small-I/O workload in §6.
type Costs struct {
	ServerPerOp time.Duration // per compound operation
	ServerPerMB time.Duration // data movement on the server, per MiB
	ClientPerOp time.Duration // client-side RPC construction, per compound op
	ClientPerMB time.Duration // client-side page-cache copy, per MiB
	CachePerOp  time.Duration // page-cache hit / buffered write, per call
}

// DefaultCosts models the paper's Linux 2.6.17 kernel NFS stack.
func DefaultCosts() Costs {
	return Costs{
		ServerPerOp: 90 * time.Microsecond,
		ServerPerMB: 3 * time.Millisecond,
		ClientPerOp: 70 * time.Microsecond,
		ClientPerMB: 5 * time.Millisecond,
		CachePerOp:  4 * time.Microsecond,
	}
}

// session is one NFSv4.1 session's slot table with per-slot replay state.
type session struct {
	lastSeq []uint32
	lastRep []*CompoundRep
}

// ServerConfig wires a Server to its node and backend.
type ServerConfig struct {
	Fabric  *simnet.Fabric
	Node    *simnet.Node
	Backend Backend
	Costs   Costs
	Threads int // NFS server threads (paper: 8)
	// Transport, when set, registers the service through the transport
	// abstraction (simulated fabric or real TCP) under Node's name instead
	// of the legacy Fabric path.
	Transport rpc.Transport
	// Service overrides the registered service name (default Service); the
	// cluster layer uses distinct names for metadata and data roles.
	Service string
	// Metrics is the shared observability registry (docs/METRICS.md).
	// Nil disables server-side metrics.
	Metrics *metrics.Registry
	// WireChecksums attaches a CRC32C of each READ payload to the reply so
	// clients can detect corruption introduced after the block checksum was
	// verified (buffer management bugs, transport scribbles).
	WireChecksums bool
}

// Server is an NFSv4.1 server instance (metadata or data role is determined
// entirely by its backend).  Handle is safe for concurrent calls: the
// simulated transport interleaves handler processes cooperatively, the TCP
// transport runs them on real goroutines.
type Server struct {
	cfg ServerConfig

	// Per-op counters are resolved once at construction and indexed by op
	// number, so the COMPOUND loop records with a single atomic add.
	compounds  *metrics.Counter
	replays    *metrics.Counter
	bytesRead  *metrics.Counter
	bytesWrite *metrics.Counter
	opCounters [maxOpNum + 1]*metrics.Counter

	mu       sync.Mutex // guards nextID, sessions, clients, session slots
	nextID   uint64
	sessions map[uint64]*session
	clients  map[string]uint64
}

// maxOpNum bounds the RFC 5661 operation-number space this server speaks.
const maxOpNum = 64

// NewServer creates the server and registers its RPC service when a
// transport or fabric is configured.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	s := &Server{
		cfg:      cfg,
		sessions: make(map[uint64]*session),
		clients:  make(map[string]uint64),
	}
	service := cfg.Service
	if service == "" {
		service = Service
	}
	reg := cfg.Metrics // nil-safe: instruments land in the discard registry
	s.compounds = reg.CounterVec("nfs_server_compounds_total",
		"COMPOUND procedures dispatched.", "service").With(service)
	s.replays = reg.CounterVec("nfs_server_replays_total",
		"Retransmissions answered from the session replay cache.", "service").With(service)
	s.bytesRead = reg.CounterVec("nfs_server_bytes_read_total",
		"Payload bytes served by READ.", "service").With(service)
	s.bytesWrite = reg.CounterVec("nfs_server_bytes_written_total",
		"Payload bytes accepted by WRITE.", "service").With(service)
	opsVec := reg.CounterVec("nfs_server_ops_total",
		"Operations executed inside COMPOUNDs, by RFC 5661 op name.", "service", "op")
	// Register in op-number order, not map order: series snapshots render
	// in insertion order, so ranging over the map would make two otherwise
	// identical runs emit differently ordered (byte-unequal) reports.
	for num := 0; num <= maxOpNum; num++ {
		if _, ok := opCtor[uint32(num)]; ok {
			s.opCounters[num] = opsVec.With(service, opName(uint32(num)))
		}
	}
	switch {
	case cfg.Transport != nil && cfg.Node != nil:
		if _, err := cfg.Transport.Serve(cfg.Node.Name, service, Registry(), s.Handle, cfg.Threads); err != nil {
			panic("nfs: register service: " + err.Error())
		}
	case cfg.Fabric != nil:
		rpc.ServeSim(rpc.ServerConfig{
			Fabric:  cfg.Fabric,
			Node:    cfg.Node,
			Service: Service,
			Threads: cfg.Threads,
			Handler: s.Handle,
		})
	}
	return s
}

// Handle dispatches one COMPOUND.
func (s *Server) Handle(ctx *rpc.Ctx, proc uint32, req any) (xdr.Marshaler, rpc.Status) {
	if proc != ProcCompound {
		return nil, rpc.StatusProcUnavail
	}
	args, ok := req.(*CompoundArgs)
	if !ok {
		return nil, rpc.StatusGarbageArgs
	}
	s.compounds.Inc()
	var cpu *sim.KServer
	if s.cfg.Node != nil {
		cpu = s.cfg.Node.CPU
	}
	ctx.UseCPU(cpu, time.Duration(len(args.Ops))*s.cfg.Costs.ServerPerOp)

	// Session check and replay cache.  The lock covers only the in-memory
	// checks — backend work in run() may suspend the handler process.
	var sess *session
	var cacheReply bool
	if args.Session != 0 {
		s.mu.Lock()
		sess = s.sessions[args.Session]
		if sess == nil {
			s.mu.Unlock()
			return &CompoundRep{Status: fserr.Stale}, rpc.StatusOK
		}
		if int(args.Slot) >= len(sess.lastSeq) {
			s.mu.Unlock()
			return &CompoundRep{Status: fserr.Inval}, rpc.StatusOK
		}
		if args.Seq == sess.lastSeq[args.Slot] && sess.lastRep[args.Slot] != nil {
			// Retransmission: answer from the replay cache.
			rep := sess.lastRep[args.Slot]
			s.mu.Unlock()
			s.replays.Inc()
			return rep, rpc.StatusOK
		}
		if args.Seq != sess.lastSeq[args.Slot]+1 &&
			!(args.Seq == sess.lastSeq[args.Slot] && sess.lastRep[args.Slot] == nil) {
			// Neither the next sequence nor a retransmission of an
			// uncached (idempotent) compound, which is simply re-executed.
			s.mu.Unlock()
			return &CompoundRep{Status: fserr.Inval}, rpc.StatusOK
		}
		s.mu.Unlock()
		if cacheReply = !compoundIdempotent(args.Ops); cacheReply {
			// The reply outlives its first transmission in the replay
			// cache, so its payloads must not alias pooled transfer
			// buffers.  Idempotent compounds (the READ hot path) skip the
			// cache — RFC 5661's csa_cachethis=false — and may hand out
			// pooled reply buffers.
			ctx.Retain()
		}
	}

	rep := s.run(ctx, cpu, args)

	if sess != nil {
		s.mu.Lock()
		sess.lastSeq[args.Slot] = args.Seq
		if cacheReply {
			sess.lastRep[args.Slot] = rep
		} else {
			sess.lastRep[args.Slot] = nil
		}
		s.mu.Unlock()
	}
	return rep, rpc.StatusOK
}

// idempotentOp marks operations the server may re-execute on a
// retransmitted compound instead of replaying a cached reply: pure reads
// of namespace, attributes, data, and layout state.
var idempotentOp = [maxOpNum + 1]bool{
	OpNumPutRootFH:  true,
	OpNumPutFH:      true,
	OpNumLookup:     true,
	OpNumGetAttr:    true,
	OpNumRead:       true,
	OpNumReadDir:    true,
	OpNumGetDevList: true,
	OpNumLayoutGet:  true,
}

// compoundIdempotent reports whether every op in the list is idempotent.
func compoundIdempotent(ops []Op) bool {
	for _, op := range ops {
		if n := op.Num(); n > maxOpNum || !idempotentOp[n] {
			return false
		}
	}
	return true
}

// run executes the op list with a current-filehandle cursor.
func (s *Server) run(ctx *rpc.Ctx, cpu *sim.KServer, args *CompoundArgs) *CompoundRep {
	rep := &CompoundRep{}
	b := s.cfg.Backend
	var cur uint64
	fail := func(r Result) *CompoundRep {
		rep.Results = append(rep.Results, r)
		rep.Status = r.Status()
		return rep
	}
	for _, op := range args.Ops {
		if n := op.Num(); n <= maxOpNum && s.opCounters[n] != nil {
			s.opCounters[n].Inc()
		}
		switch o := op.(type) {
		case *OpExchangeID:
			s.mu.Lock()
			id, ok := s.clients[o.ClientName]
			if !ok {
				s.nextID++
				id = s.nextID
				s.clients[o.ClientName] = id
			}
			s.mu.Unlock()
			rep.Results = append(rep.Results, &ResExchangeID{ClientID: id})

		case *OpCreateSession:
			slots := o.Slots
			if slots == 0 || slots > 256 {
				slots = 64
			}
			s.mu.Lock()
			s.nextID++
			sid := s.nextID
			s.sessions[sid] = &session{
				lastSeq: make([]uint32, slots),
				lastRep: make([]*CompoundRep, slots),
			}
			s.mu.Unlock()
			rep.Results = append(rep.Results, &ResCreateSession{Session: sid, Slots: slots})

		case *OpPutRootFH:
			cur = b.Root()
			rep.Results = append(rep.Results, &ResPutRootFH{})

		case *OpPutFH:
			cur = o.FH
			rep.Results = append(rep.Results, &ResPutFH{})

		case *OpLookup:
			fh, at, err := b.Lookup(ctx, cur, o.Name)
			if err != nil {
				return fail(&ResLookup{fhAttr{Errno: fserr.ToErrno(err)}})
			}
			cur = fh
			rep.Results = append(rep.Results, &ResLookup{fhAttr{FH: fh, Attr: at}})

		case *OpOpen:
			fh, at, err := b.Lookup(ctx, cur, o.Name)
			if err == store.ErrNotExist && o.Create {
				fh, at, err = b.Create(ctx, cur, o.Name)
			}
			if err != nil {
				return fail(&ResOpen{fhAttr: fhAttr{Errno: fserr.ToErrno(err)}})
			}
			cur = fh
			s.mu.Lock()
			s.nextID++
			stateID := s.nextID
			s.mu.Unlock()
			rep.Results = append(rep.Results, &ResOpen{
				fhAttr:  fhAttr{FH: fh, Attr: at},
				StateID: stateID,
			})

		case *OpClose:
			rep.Results = append(rep.Results, &ResClose{})

		case *OpGetAttr:
			at, err := b.GetAttr(ctx, cur)
			if err != nil {
				return fail(&ResGetAttr{Errno: fserr.ToErrno(err)})
			}
			rep.Results = append(rep.Results, &ResGetAttr{Attr: at})

		case *OpSetAttr:
			if err := b.SetSize(ctx, cur, o.Size); err != nil {
				return fail(&ResSetAttr{errnoOnly{Errno: fserr.ToErrno(err)}})
			}
			rep.Results = append(rep.Results, &ResSetAttr{})

		case *OpRead:
			ctx.UseCPU(cpu, perMB(s.cfg.Costs.ServerPerMB, o.Len))
			data, eof, err := b.Read(ctx, cur, o.Off, o.Len, o.WantReal)
			if err != nil {
				return fail(&ResRead{Errno: fserr.ToErrno(err)})
			}
			if n := data.Len(); n > 0 {
				s.bytesRead.Add(uint64(n))
			}
			res := &ResRead{Eof: eof, Data: data}
			if s.cfg.WireChecksums && data.Bytes != nil {
				res.Sum, res.HasSum = xdr.Checksum(data.Bytes), true
			}
			rep.Results = append(rep.Results, res)

		case *OpWrite:
			ctx.UseCPU(cpu, perMB(s.cfg.Costs.ServerPerMB, o.Data.Len()))
			newSize, err := b.Write(ctx, cur, o.Off, o.Data, o.Stable)
			if err != nil {
				return fail(&ResWrite{Errno: fserr.ToErrno(err)})
			}
			if n := o.Data.Len(); n > 0 {
				s.bytesWrite.Add(uint64(n))
			}
			rep.Results = append(rep.Results, &ResWrite{Count: o.Data.Len(), NewSize: newSize})

		case *OpCommit:
			if err := b.Commit(ctx, cur); err != nil {
				return fail(&ResCommit{errnoOnly{Errno: fserr.ToErrno(err)}})
			}
			rep.Results = append(rep.Results, &ResCommit{})

		case *OpCreate:
			fh, at, err := b.Mkdir(ctx, cur, o.Name)
			if err != nil {
				return fail(&ResCreate{fhAttr{Errno: fserr.ToErrno(err)}})
			}
			cur = fh
			rep.Results = append(rep.Results, &ResCreate{fhAttr{FH: fh, Attr: at}})

		case *OpRemove:
			if err := b.Remove(ctx, cur, o.Name); err != nil {
				return fail(&ResRemove{errnoOnly{Errno: fserr.ToErrno(err)}})
			}
			rep.Results = append(rep.Results, &ResRemove{})

		case *OpRename:
			if err := b.Rename(ctx, cur, o.Src, o.Dst); err != nil {
				return fail(&ResRename{errnoOnly{Errno: fserr.ToErrno(err)}})
			}
			rep.Results = append(rep.Results, &ResRename{})

		case *OpReadDir:
			names, err := b.ReadDir(ctx, cur)
			if err != nil {
				return fail(&ResReadDir{Errno: fserr.ToErrno(err)})
			}
			rep.Results = append(rep.Results, &ResReadDir{Names: names})

		case *OpGetDevList:
			devs, err := b.DevList(ctx)
			if err != nil {
				return fail(&ResGetDevList{Errno: fserr.Inval})
			}
			rep.Results = append(rep.Results, &ResGetDevList{Devices: devs})

		case *OpLayoutGet:
			l, err := b.LayoutGet(ctx, cur)
			if err != nil {
				return fail(&ResLayoutGet{Errno: fserr.Inval})
			}
			rep.Results = append(rep.Results, &ResLayoutGet{Layout: *l})

		case *OpLayoutCommit:
			if err := b.LayoutCommit(ctx, cur, o.NewSize); err != nil {
				return fail(&ResLayoutCommit{errnoOnly{Errno: fserr.ToErrno(err)}})
			}
			rep.Results = append(rep.Results, &ResLayoutCommit{})

		case *OpLayoutReturn:
			rep.Results = append(rep.Results, &ResLayoutReturn{})

		default:
			return fail(&ResPutFH{errnoOnly{Errno: fserr.Inval}})
		}
	}
	return rep
}

func perMB(d time.Duration, n int64) time.Duration {
	return time.Duration(float64(d) * float64(n) / (1 << 20))
}

// StoreBackend serves a local store.Store, optionally charging a simulated
// disk.  It is the backend for plain NFS servers in unit tests and the TCP
// demo; it does not serve pNFS layouts.  Write with stable=true and Commit
// drive the store's Sync, so a durable store (store/wal, store/cached)
// journals exactly at the NFS commit points.
type StoreBackend struct {
	Store store.Store
	Disk  *simdisk.Disk
}

// VFSBackend is the historical name of StoreBackend.
//
// Deprecated: use StoreBackend.
type VFSBackend = StoreBackend

// NewStoreBackend wraps an existing store.
func NewStoreBackend(st store.Store, disk *simdisk.Disk) *StoreBackend {
	return &StoreBackend{Store: st, Disk: disk}
}

// NewVFSBackend wraps a fresh in-memory store.
func NewVFSBackend(disk *simdisk.Disk) *StoreBackend {
	return NewStoreBackend(mem.New(), disk)
}

// Root implements Backend.
func (b *StoreBackend) Root() uint64 { return uint64(b.Store.Root()) }

// Lookup implements Backend.
func (b *StoreBackend) Lookup(_ *rpc.Ctx, dir uint64, name string) (uint64, Attr, error) {
	at, err := b.Store.Lookup(store.FileID(dir), name)
	if err != nil {
		return 0, Attr{}, err
	}
	return uint64(at.ID), attrOf(at), nil
}

// Create implements Backend.
func (b *StoreBackend) Create(_ *rpc.Ctx, dir uint64, name string) (uint64, Attr, error) {
	at, err := b.Store.Create(store.FileID(dir), name)
	if err != nil {
		return 0, Attr{}, err
	}
	return uint64(at.ID), attrOf(at), nil
}

// Mkdir implements Backend.
func (b *StoreBackend) Mkdir(_ *rpc.Ctx, dir uint64, name string) (uint64, Attr, error) {
	at, err := b.Store.Mkdir(store.FileID(dir), name)
	if err != nil {
		return 0, Attr{}, err
	}
	return uint64(at.ID), attrOf(at), nil
}

// Remove implements Backend.
func (b *StoreBackend) Remove(_ *rpc.Ctx, dir uint64, name string) error {
	return b.Store.Remove(store.FileID(dir), name)
}

// Rename implements Backend.
func (b *StoreBackend) Rename(_ *rpc.Ctx, dir uint64, src, dst string) error {
	return b.Store.Rename(store.FileID(dir), src, store.FileID(dir), dst)
}

// ReadDir implements Backend.
func (b *StoreBackend) ReadDir(_ *rpc.Ctx, dir uint64) ([]string, error) {
	return b.Store.ReadDir(store.FileID(dir))
}

// GetAttr implements Backend.
func (b *StoreBackend) GetAttr(_ *rpc.Ctx, fh uint64) (Attr, error) {
	at, err := b.Store.GetAttr(store.FileID(fh))
	if err != nil {
		return Attr{}, err
	}
	return attrOf(at), nil
}

// SetSize implements Backend.
func (b *StoreBackend) SetSize(_ *rpc.Ctx, fh uint64, size int64) error {
	return b.Store.Truncate(store.FileID(fh), size)
}

// Read implements Backend.
func (b *StoreBackend) Read(ctx *rpc.Ctx, fh uint64, off, n int64, wantReal bool) (payload.Payload, bool, error) {
	at, err := b.Store.GetAttr(store.FileID(fh))
	if err != nil {
		return payload.Payload{}, false, err
	}
	if off >= at.Size {
		n = 0
	} else if off+n > at.Size {
		n = at.Size - off
	}
	if ctx.P != nil && b.Disk != nil && n > 0 {
		b.Disk.Read(ctx.P, fh, off, n)
	}
	eof := off+n >= at.Size
	if !wantReal {
		return payload.Synthetic(n), eof, nil
	}
	// Transfer-buffer ownership, in order of preference:
	//   - serializing transport: the payload is copied onto the wire
	//     before deferred hooks run, so a Defer returns the pooled buffer;
	//   - reference-passing transport, reply not retained: the single
	//     consumer gets a pooled buffer with a Release hook;
	//   - retained reply (replay cache): fresh allocation, never recycled.
	switch {
	case ctx.Serialized():
		buf := rpc.GetBuf(int(n))
		ctx.Defer(func() { rpc.PutBuf(buf) })
		if _, err := b.Store.ReadAt(store.FileID(fh), off, buf); err != nil {
			return payload.Payload{}, false, err
		}
		return payload.Real(buf), eof, nil
	case !ctx.Retained():
		buf := rpc.GetBuf(int(n))
		if _, err := b.Store.ReadAt(store.FileID(fh), off, buf); err != nil {
			rpc.PutBuf(buf)
			return payload.Payload{}, false, err
		}
		rpc.CountCopyAvoided()
		return payload.RealPooled(buf, func() { rpc.PutBuf(buf) }), eof, nil
	default:
		buf := make([]byte, n)
		if _, err := b.Store.ReadAt(store.FileID(fh), off, buf); err != nil {
			return payload.Payload{}, false, err
		}
		return payload.Real(buf), eof, nil
	}
}

// Write implements Backend.
func (b *StoreBackend) Write(ctx *rpc.Ctx, fh uint64, off int64, data payload.Payload, stable bool) (int64, error) {
	var newSize int64
	var err error
	if data.IsSynthetic() {
		newSize, err = b.Store.WriteSyntheticAt(store.FileID(fh), off, data.Len())
	} else {
		newSize, err = b.Store.WriteAt(store.FileID(fh), off, data.Bytes)
	}
	if err != nil {
		return 0, err
	}
	if ctx.P != nil && b.Disk != nil {
		b.Disk.Write(ctx.P, fh, off, data.Len())
	}
	if stable {
		if err := b.Store.Sync(ctx.P); err != nil {
			return 0, err
		}
		if ctx.P != nil && b.Disk != nil {
			b.Disk.Sync(ctx.P)
		}
	}
	return newSize, nil
}

// Commit implements Backend.
func (b *StoreBackend) Commit(ctx *rpc.Ctx, fh uint64) error {
	if err := b.Store.Sync(ctx.P); err != nil {
		return err
	}
	if ctx.P != nil && b.Disk != nil {
		b.Disk.Sync(ctx.P)
	}
	return nil
}

// DevList implements Backend: no pNFS.
func (b *StoreBackend) DevList(*rpc.Ctx) ([]pnfs.DeviceInfo, error) { return nil, ErrNoPNFS }

// LayoutGet implements Backend: no pNFS.
func (b *StoreBackend) LayoutGet(*rpc.Ctx, uint64) (*pnfs.FileLayout, error) { return nil, ErrNoPNFS }

// LayoutCommit implements Backend: no pNFS.
func (b *StoreBackend) LayoutCommit(*rpc.Ctx, uint64, int64) error { return ErrNoPNFS }

func attrOf(at store.Attr) Attr {
	return Attr{IsDir: at.IsDir, Size: at.Size, Change: at.Change}
}
