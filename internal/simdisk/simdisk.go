// Package simdisk models a storage node's disk and page cache.
//
// The disk is a FIFO head with sequential bandwidth and a positioning
// penalty for non-contiguous accesses.  Writes are buffered: they complete
// into the write-behind buffer immediately and drain to the platter
// asynchronously, but a writer whose backlog exceeds the dirty limit blocks
// until the disk catches up — so sustained write throughput converges to
// disk bandwidth while short bursts complete at memory speed.  This mirrors
// both PVFS2's "buffer on storage nodes, flush on fsync" behaviour and the
// Linux page cache on an NFS data server (paper §5, §6.2).
//
// Reads consult a block-granular LRU page cache; only misses pay for disk
// service.  The paper's read experiments run against a warm server cache
// (§6.2), which the Warm method provides.
package simdisk

import (
	"fmt"
	"time"

	"dpnfs/internal/sim"
)

// Config describes one disk.
type Config struct {
	Name     string
	ReadBPS  float64       // sequential read bandwidth, bytes/sec
	WriteBPS float64       // sequential write bandwidth, bytes/sec
	Position time.Duration // seek + rotational cost for non-contiguous reads
	// WritePos is the positioning cost for non-contiguous writes.  It is
	// much smaller than Position: the write-behind path reorders and
	// journal-commits random writes (elevator scheduling), so they do not
	// pay a full mechanical seek each.
	WritePos    time.Duration
	DirtyLimit  time.Duration // max write backlog (as drain time) before writers block
	CacheBytes  int64         // page cache capacity
	CacheBlock  int64         // cache block size
	WarmPenalty time.Duration // per-request memory-copy cost on a cache hit
	// SyncCost is the journal/barrier cost of a synchronous flush (fsync,
	// NFS COMMIT): the head must complete a write barrier, not just drain.
	SyncCost time.Duration
}

// DefaultConfig models the paper's 7200 RPM ATA/100 disk with ~2 MB on-disk
// cache behind a local file system: ~45 MB/s raw sequential, with journal
// and allocation overhead bringing effective streaming write bandwidth to
// the ~20 MB/s per node the paper measures in aggregate.
func DefaultConfig(name string) Config {
	return Config{
		Name:        name,
		ReadBPS:     45e6,
		WriteBPS:    21e6,
		Position:    7 * time.Millisecond,
		WritePos:    400 * time.Microsecond,
		DirtyLimit:  2 * time.Second,
		CacheBytes:  1 << 31, // 2 GB RAM
		CacheBlock:  64 << 10,
		WarmPenalty: 15 * time.Microsecond,
		SyncCost:    1500 * time.Microsecond,
	}
}

// Disk is a simulated disk plus page cache.
type Disk struct {
	cfg   Config
	head  *sim.FIFOServer
	end   map[uint64]int64 // fileID -> offset just past the last access
	cache *lru

	// slow scales head service time (fault injection: a degraded disk,
	// internal/faults.SlowDisk).  1 means healthy.
	slow float64

	reads, writes, hits, misses uint64
	bytesRead, bytesWritten     int64
}

// SetSlowFactor scales the disk's service time by factor (>= 1); factor 1
// (or less) restores full speed.  Only the platter path slows down — cache
// hits and write-buffer inserts still run at memory speed, as on a real
// machine with a failing spindle.
func (d *Disk) SetSlowFactor(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.slow = factor
}

// SlowFactor reports the current service-time scale.
func (d *Disk) SlowFactor() float64 {
	if d.slow < 1 {
		return 1
	}
	return d.slow
}

// New creates a disk from cfg, applying DefaultConfig values for zero fields.
func New(cfg Config) *Disk {
	def := DefaultConfig(cfg.Name)
	if cfg.ReadBPS == 0 {
		cfg.ReadBPS = def.ReadBPS
	}
	if cfg.WriteBPS == 0 {
		cfg.WriteBPS = def.WriteBPS
	}
	if cfg.Position == 0 {
		cfg.Position = def.Position
	}
	if cfg.WritePos == 0 {
		cfg.WritePos = def.WritePos
	}
	if cfg.DirtyLimit == 0 {
		cfg.DirtyLimit = def.DirtyLimit
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = def.CacheBytes
	}
	if cfg.CacheBlock == 0 {
		cfg.CacheBlock = def.CacheBlock
	}
	if cfg.WarmPenalty == 0 {
		cfg.WarmPenalty = def.WarmPenalty
	}
	if cfg.SyncCost == 0 {
		cfg.SyncCost = def.SyncCost
	}
	return &Disk{
		cfg:   cfg,
		head:  sim.NewFIFOServer(cfg.Name + "/head"),
		end:   make(map[uint64]int64),
		cache: newLRU(cfg.CacheBytes, cfg.CacheBlock),
	}
}

func (d *Disk) service(fileID uint64, off, n int64, bps float64, pos time.Duration) time.Duration {
	svc := time.Duration(float64(n) / bps * 1e9)
	if last, ok := d.end[fileID]; !ok || last != off {
		svc += pos
	}
	d.end[fileID] = off + n
	if d.slow > 1 {
		svc = time.Duration(float64(svc) * d.slow)
	}
	return svc
}

// Write completes a write of n bytes at off in fileID.  The data lands in
// the write-behind buffer and the page cache; p blocks only when the dirty
// backlog exceeds the configured limit.
func (d *Disk) Write(p *sim.Proc, fileID uint64, off, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("simdisk %s: negative write %d", d.cfg.Name, n))
	}
	d.writes++
	d.bytesWritten += n
	d.cache.insert(fileID, off, n, p.Now())
	svc := d.service(fileID, off, n, d.cfg.WriteBPS, d.cfg.WritePos)
	done := d.head.Reserve(p.Now(), svc)
	if backlog := done - p.Now(); backlog > sim.Time(d.cfg.DirtyLimit) {
		p.SleepUntilTime(done - sim.Time(d.cfg.DirtyLimit))
	} else {
		p.Sleep(d.cfg.WarmPenalty) // memory copy into the buffer
	}
}

// Sync blocks p until all buffered writes have reached the platter, then
// pays the write-barrier cost on the head (queued FIFO with other work).
func (d *Disk) Sync(p *sim.Proc) {
	p.SleepUntilTime(d.head.FreeAt())
	cost := d.cfg.SyncCost
	if d.slow > 1 {
		cost = time.Duration(float64(cost) * d.slow)
	}
	d.head.Use(p, cost)
}

// Read completes a read of n bytes at off in fileID, consulting the page
// cache block by block; only missing blocks pay for disk service.
func (d *Disk) Read(p *sim.Proc, fileID uint64, off, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("simdisk %s: negative read %d", d.cfg.Name, n))
	}
	d.reads++
	d.bytesRead += n
	missBytes := d.cache.touch(fileID, off, n, p.Now())
	if missBytes == 0 {
		d.hits++
		p.Sleep(d.cfg.WarmPenalty)
		return
	}
	d.misses++
	svc := d.service(fileID, off, missBytes, d.cfg.ReadBPS, d.cfg.Position)
	d.head.Use(p, svc)
	d.cache.insert(fileID, off, n, p.Now())
}

// Warm marks the byte range as cache-resident, as the paper does before its
// read experiments ("Read experiments use a warm server cache").
func (d *Disk) Warm(fileID uint64, off, n int64) {
	d.cache.insert(fileID, off, n, 0)
}

// Stats reports operation counts for tests and traces.
func (d *Disk) Stats() (reads, writes, hits, misses uint64, bytesRead, bytesWritten int64) {
	return d.reads, d.writes, d.hits, d.misses, d.bytesRead, d.bytesWritten
}

// BusyTime reports cumulative head service time.
func (d *Disk) BusyTime() time.Duration { return d.head.BusyTime() }

// lru is a block-granular LRU page cache.
type lru struct {
	capBlocks int64
	blockSize int64
	blocks    map[blockKey]*blockEntry
	// Intrusive doubly-linked LRU list; head is most recent.
	head, tail *blockEntry
}

type blockKey struct {
	file uint64
	idx  int64
}

type blockEntry struct {
	key        blockKey
	prev, next *blockEntry
}

func newLRU(capBytes, blockSize int64) *lru {
	if blockSize <= 0 {
		panic("simdisk: cache block size must be positive")
	}
	return &lru{
		capBlocks: capBytes / blockSize,
		blockSize: blockSize,
		blocks:    make(map[blockKey]*blockEntry),
	}
}

func (c *lru) unlink(e *blockEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lru) pushFront(e *blockEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// insert makes the blocks covering [off, off+n) resident.
func (c *lru) insert(file uint64, off, n int64, _ sim.Time) {
	if n <= 0 {
		return
	}
	first, last := off/c.blockSize, (off+n-1)/c.blockSize
	for i := first; i <= last; i++ {
		k := blockKey{file, i}
		if e, ok := c.blocks[k]; ok {
			c.unlink(e)
			c.pushFront(e)
			continue
		}
		e := &blockEntry{key: k}
		c.blocks[k] = e
		c.pushFront(e)
		for int64(len(c.blocks)) > c.capBlocks && c.tail != nil {
			victim := c.tail
			c.unlink(victim)
			delete(c.blocks, victim.key)
		}
	}
}

// touch returns the number of bytes in [off, off+n) NOT resident in cache,
// refreshing the recency of resident blocks.
func (c *lru) touch(file uint64, off, n int64, _ sim.Time) int64 {
	if n <= 0 {
		return 0
	}
	var missing int64
	first, last := off/c.blockSize, (off+n-1)/c.blockSize
	for i := first; i <= last; i++ {
		k := blockKey{file, i}
		lo := i * c.blockSize
		hi := lo + c.blockSize
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		if e, ok := c.blocks[k]; ok {
			c.unlink(e)
			c.pushFront(e)
		} else {
			missing += hi - lo
		}
	}
	return missing
}
