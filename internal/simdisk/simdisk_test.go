package simdisk

import (
	"testing"
	"testing/quick"
	"time"

	"dpnfs/internal/sim"
)

func testDisk() *Disk {
	return New(Config{
		Name:       "d0",
		ReadBPS:    50e6,
		WriteBPS:   20e6,
		Position:   5 * time.Millisecond,
		DirtyLimit: 100 * time.Millisecond,
		CacheBytes: 1 << 20,
		CacheBlock: 4 << 10,
	})
}

func TestBurstWriteCompletesAtMemorySpeed(t *testing.T) {
	k := sim.NewKernel(1)
	d := testDisk()
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		d.Write(p, 1, 0, 1<<20) // 1 MB: ~52 ms drain, under 100 ms dirty limit
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if time.Duration(done) > time.Millisecond {
		t.Fatalf("buffered write blocked for %v; should complete at memory speed", time.Duration(done))
	}
}

func TestSustainedWritesConvergeToDiskBandwidth(t *testing.T) {
	k := sim.NewKernel(1)
	d := testDisk()
	const chunk = 1 << 20
	const n = 100 // 100 MB total at 20 MB/s => ~5 s
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			d.Write(p, 1, int64(i)*chunk, chunk)
		}
		d.Sync(p)
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	secs := done.Seconds()
	mbps := float64(n*chunk) / 1e6 / secs
	if mbps < 18 || mbps > 22 {
		t.Fatalf("sustained write throughput %.1f MB/s, want ~20", mbps)
	}
}

func TestSyncWaitsForBacklog(t *testing.T) {
	k := sim.NewKernel(1)
	d := testDisk()
	var wrote, synced sim.Time
	k.Go("w", func(p *sim.Proc) {
		d.Write(p, 1, 0, 1<<20)
		wrote = p.Now()
		d.Sync(p)
		synced = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if synced <= wrote {
		t.Fatal("sync did not wait for the write-behind backlog")
	}
	// 1 MB at 20 MB/s ≈ 52 ms (+ positioning).
	if got := time.Duration(synced); got < 50*time.Millisecond {
		t.Fatalf("sync returned at %v, want ≥ ~52 ms", got)
	}
}

func TestWarmReadSkipsDisk(t *testing.T) {
	k := sim.NewKernel(1)
	d := testDisk()
	d.Warm(1, 0, 512<<10)
	var done sim.Time
	k.Go("r", func(p *sim.Proc) {
		d.Read(p, 1, 0, 512<<10)
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if time.Duration(done) > time.Millisecond {
		t.Fatalf("warm read took %v; should be memory-speed", time.Duration(done))
	}
	_, _, hits, misses, _, _ := d.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d, want 1/0", hits, misses)
	}
}

func TestColdReadPaysDiskService(t *testing.T) {
	k := sim.NewKernel(1)
	d := testDisk()
	var done sim.Time
	k.Go("r", func(p *sim.Proc) {
		d.Read(p, 1, 0, 1<<20) // 1 MB at 50 MB/s ≈ 21 ms + 5 ms position
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := time.Duration(done)
	if got < 24*time.Millisecond || got > 28*time.Millisecond {
		t.Fatalf("cold read took %v, want ~26 ms", got)
	}
}

func TestReadAfterWriteHitsCache(t *testing.T) {
	k := sim.NewKernel(1)
	d := testDisk()
	k.Go("rw", func(p *sim.Proc) {
		d.Write(p, 1, 0, 64<<10)
		before := p.Now()
		d.Read(p, 1, 0, 64<<10)
		if p.Now()-before > sim.Time(time.Millisecond) {
			t.Error("read of just-written data went to disk")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomAccessPaysPositioning(t *testing.T) {
	elapsed := func(offs []int64) time.Duration {
		k := sim.NewKernel(1)
		d := testDisk()
		var done sim.Time
		k.Go("r", func(p *sim.Proc) {
			for _, o := range offs {
				d.Read(p, 1, o, 4<<10)
			}
			done = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(done)
	}
	seq := elapsed([]int64{0, 4 << 10, 8 << 10, 12 << 10})
	rnd := elapsed([]int64{0, 512 << 10, 64 << 10, 900 << 10})
	if rnd < seq+10*time.Millisecond {
		t.Fatalf("random %v vs sequential %v: positioning penalty missing", rnd, seq)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(16<<10, 4<<10) // 4 blocks
	c.insert(1, 0, 16<<10, 0)  // blocks 0..3 resident
	if miss := c.touch(1, 0, 16<<10, 0); miss != 0 {
		t.Fatalf("expected full residency, missing %d bytes", miss)
	}
	c.insert(1, 16<<10, 4<<10, 0) // block 4 evicts block 0 (LRU)
	if miss := c.touch(1, 0, 4<<10, 0); miss != 4<<10 {
		t.Fatalf("block 0 should be evicted, missing %d", miss)
	}
	if miss := c.touch(1, 4<<10, 12<<10, 0); miss != 0 {
		t.Fatalf("blocks 1..3 should remain, missing %d", miss)
	}
}

func TestLRUTouchRefreshesRecency(t *testing.T) {
	c := newLRU(8<<10, 4<<10) // 2 blocks
	c.insert(1, 0, 4<<10, 0)  // block 0
	c.insert(1, 4<<10, 4<<10, 0)
	c.touch(1, 0, 4<<10, 0)      // refresh block 0
	c.insert(1, 8<<10, 4<<10, 0) // should evict block 1, not 0
	if miss := c.touch(1, 0, 4<<10, 0); miss != 0 {
		t.Fatal("recently touched block was evicted")
	}
	if miss := c.touch(1, 4<<10, 4<<10, 0); miss == 0 {
		t.Fatal("least recently used block was not evicted")
	}
}

// Property: touch never reports more missing bytes than requested, and after
// insert the same range has zero missing bytes.
func TestPropertyCacheInsertThenTouch(t *testing.T) {
	f := func(file uint64, off uint32, n uint16) bool {
		c := newLRU(1<<30, 4<<10)
		o, ln := int64(off), int64(n)
		if miss := c.touch(file, o, ln, 0); miss > ln {
			return false
		}
		c.insert(file, o, ln, 0)
		return c.touch(file, o, ln, 0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{Name: "x"})
	def := DefaultConfig("x")
	if d.cfg.ReadBPS != def.ReadBPS || d.cfg.CacheBlock != def.CacheBlock {
		t.Fatalf("defaults not applied: %+v", d.cfg)
	}
}

func TestSlowFactorScalesService(t *testing.T) {
	run := func(factor float64) time.Duration {
		k := sim.NewKernel(1)
		d := testDisk()
		d.SetSlowFactor(factor)
		var done sim.Time
		k.Go("r", func(p *sim.Proc) {
			d.Read(p, 1, 0, 1<<20) // cold read: disk service
			done = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(done)
	}
	healthy := run(1)
	slow := run(4)
	if slow <= 3*healthy || slow >= 5*healthy {
		t.Fatalf("4x slow disk served in %v vs healthy %v; want ~4x", slow, healthy)
	}
	if got := run(0.5); got != healthy {
		t.Fatalf("factor < 1 must clamp to healthy speed: %v vs %v", got, healthy)
	}
}

func TestSlowFactorRestores(t *testing.T) {
	k := sim.NewKernel(1)
	d := testDisk()
	d.SetSlowFactor(8)
	if d.SlowFactor() != 8 {
		t.Fatalf("SlowFactor = %v, want 8", d.SlowFactor())
	}
	d.SetSlowFactor(1)
	if d.SlowFactor() != 1 {
		t.Fatalf("SlowFactor after restore = %v, want 1", d.SlowFactor())
	}
	var done sim.Time
	k.Go("r", func(p *sim.Proc) {
		d.Read(p, 1, 0, 1<<20)
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 MB at 50 MB/s + 5 ms positioning ~= 26 ms; an unrestored 8x factor
	// would take ~200 ms.
	if time.Duration(done) > 50*time.Millisecond {
		t.Fatalf("restored disk still slow: %v", time.Duration(done))
	}
}
