// Package stripe implements aggregation drivers: the mapping from a file's
// logical byte space onto storage devices (paper §4.3).
//
// The NFSv4.1 file-based layout natively expresses round-robin striping and
// a cyclic device-list pattern; Direct-pNFS additionally supports pluggable
// drivers for unconventional schemes — variable stripe size, replicated
// striping, and hierarchical striping — modelled on PVFS2 distribution
// drivers.  The same drivers serve both the PVFS2 substrate (physical data
// placement) and the pNFS clients (layout interpretation), which is exactly
// the property the layout translator relies on: both sides compute the same
// map.
package stripe

import (
	"fmt"
	"sort"
)

// Extent is a contiguous range on one device.
//
// Off is the logical file offset of the extent; DevOff is the byte offset
// within the device's stripe object where that logical range lives.
type Extent struct {
	Dev    int
	Off    int64
	DevOff int64
	Len    int64
}

// Mapper translates logical file ranges to device extents.
type Mapper interface {
	// Name identifies the aggregation scheme (wire-visible).
	Name() string
	// NumDevices reports how many devices the scheme spreads data over.
	NumDevices() int
	// Map splits [off, off+length) into per-device extents in logical
	// order.  Every byte of the range appears in exactly one extent per
	// stored copy.
	Map(off, length int64) []Extent
	// ReadMap is like Map but returns exactly one extent per logical byte,
	// choosing among replicas (seed breaks ties for load spreading).
	ReadMap(off, length int64, seed int64) []Extent
}

// RoundRobin stripes fixed-size units across devices in order: unit u lives
// on device u % N at object offset (u / N) * UnitSize.  This is the
// NFSv4.1 file layout's standard aggregation (and PVFS2's default).
type RoundRobin struct {
	UnitSize int64
	Devices  int
}

// NewRoundRobin returns a round-robin mapper; it panics on nonsensical
// geometry, which indicates a wiring bug.
func NewRoundRobin(unitSize int64, devices int) *RoundRobin {
	if unitSize <= 0 || devices <= 0 {
		panic(fmt.Sprintf("stripe: bad round-robin geometry: unit=%d devices=%d", unitSize, devices))
	}
	return &RoundRobin{UnitSize: unitSize, Devices: devices}
}

// Name implements Mapper.
func (m *RoundRobin) Name() string { return "round-robin" }

// NumDevices implements Mapper.
func (m *RoundRobin) NumDevices() int { return m.Devices }

// Map implements Mapper.
func (m *RoundRobin) Map(off, length int64) []Extent {
	var out []Extent
	for length > 0 {
		u := off / m.UnitSize
		inUnit := off % m.UnitSize
		n := m.UnitSize - inUnit
		if n > length {
			n = length
		}
		out = append(out, Extent{
			Dev:    int(u % int64(m.Devices)),
			Off:    off,
			DevOff: (u/int64(m.Devices))*m.UnitSize + inUnit,
			Len:    n,
		})
		off += n
		length -= n
	}
	return coalesce(out)
}

// ReadMap implements Mapper.
func (m *RoundRobin) ReadMap(off, length, _ int64) []Extent { return m.Map(off, length) }

// LogicalEnd returns the logical file end implied by a stripe object of
// objSize bytes on dev — the logical offset just past that object's last
// byte.  PVFS2 reconstructs a file's size as the maximum LogicalEnd over
// its datafiles.
func (m *RoundRobin) LogicalEnd(dev int, objSize int64) int64 {
	if objSize <= 0 {
		return 0
	}
	last := objSize - 1
	u := last / m.UnitSize
	inUnit := last % m.UnitSize
	logicalUnit := u*int64(m.Devices) + int64(dev)
	return logicalUnit*m.UnitSize + inUnit + 1
}

// Cyclic stripes units across an explicit device order that repeats for the
// whole file — the NFSv4.1 layout's second standard scheme, where the device
// list itself encodes the pattern (e.g. [0 2 4 1 3 5]).
type Cyclic struct {
	UnitSize int64
	Order    []int // device index per unit slot; len(Order) is the pattern period
	devices  int
}

// NewCyclic returns a cyclic-pattern mapper over the given device order.
func NewCyclic(unitSize int64, order []int) *Cyclic {
	if unitSize <= 0 || len(order) == 0 {
		panic("stripe: bad cyclic geometry")
	}
	max := 0
	for _, d := range order {
		if d < 0 {
			panic("stripe: negative device in cyclic order")
		}
		if d > max {
			max = d
		}
	}
	return &Cyclic{UnitSize: unitSize, Order: append([]int(nil), order...), devices: max + 1}
}

// Name implements Mapper.
func (m *Cyclic) Name() string { return "cyclic" }

// NumDevices implements Mapper.
func (m *Cyclic) NumDevices() int { return m.devices }

// Map implements Mapper.
func (m *Cyclic) Map(off, length int64) []Extent {
	period := int64(len(m.Order))
	// Count, for each device, how many of the first k pattern slots map to
	// it; device offsets advance once per occurrence in the pattern.
	var out []Extent
	for length > 0 {
		u := off / m.UnitSize
		inUnit := off % m.UnitSize
		n := m.UnitSize - inUnit
		if n > length {
			n = length
		}
		slot := u % period
		cycle := u / period
		dev := m.Order[slot]
		// occurrences of dev in pattern slots [0, slot)
		var before int64
		for i := int64(0); i < slot; i++ {
			if m.Order[i] == dev {
				before++
			}
		}
		var perCycle int64
		for _, d := range m.Order {
			if d == dev {
				perCycle++
			}
		}
		out = append(out, Extent{
			Dev:    dev,
			Off:    off,
			DevOff: (cycle*perCycle+before)*m.UnitSize + inUnit,
			Len:    n,
		})
		off += n
		length -= n
	}
	return coalesce(out)
}

// ReadMap implements Mapper.
func (m *Cyclic) ReadMap(off, length, _ int64) []Extent { return m.Map(off, length) }

// VariableStripe uses a repeating sequence of unit sizes, one per device in
// order (Exedra-style variable stripe size, paper §4.3 [24]): device i holds
// units of Sizes[i], and the pattern of len(Sizes) units repeats.
type VariableStripe struct {
	Sizes []int64
	total int64
	// prefix[i] is the logical offset of device i's unit within one pattern.
	prefix []int64
}

// NewVariableStripe returns a variable-stripe mapper.
func NewVariableStripe(sizes []int64) *VariableStripe {
	if len(sizes) == 0 {
		panic("stripe: variable stripe needs at least one size")
	}
	m := &VariableStripe{Sizes: append([]int64(nil), sizes...)}
	m.prefix = make([]int64, len(sizes)+1)
	for i, s := range sizes {
		if s <= 0 {
			panic("stripe: non-positive variable stripe size")
		}
		m.prefix[i+1] = m.prefix[i] + s
	}
	m.total = m.prefix[len(sizes)]
	return m
}

// Name implements Mapper.
func (m *VariableStripe) Name() string { return "variable-stripe" }

// NumDevices implements Mapper.
func (m *VariableStripe) NumDevices() int { return len(m.Sizes) }

// Map implements Mapper.
func (m *VariableStripe) Map(off, length int64) []Extent {
	var out []Extent
	for length > 0 {
		cycle := off / m.total
		inCycle := off % m.total
		// Find the device whose unit contains inCycle.
		dev := sort.Search(len(m.Sizes), func(i int) bool { return m.prefix[i+1] > inCycle })
		inUnit := inCycle - m.prefix[dev]
		n := m.Sizes[dev] - inUnit
		if n > length {
			n = length
		}
		out = append(out, Extent{
			Dev:    dev,
			Off:    off,
			DevOff: cycle*m.Sizes[dev] + inUnit,
			Len:    n,
		})
		off += n
		length -= n
	}
	return coalesce(out)
}

// ReadMap implements Mapper.
func (m *VariableStripe) ReadMap(off, length, _ int64) []Extent { return m.Map(off, length) }

// Replicated stores Copies full replicas of an inner scheme, device space
// partitioned per replica: replica r uses devices [r*inner.NumDevices(),
// (r+1)*inner.NumDevices()).  Writes go to all replicas; reads pick one.
type Replicated struct {
	Inner  Mapper
	Copies int
}

// NewReplicated wraps inner with replication.
func NewReplicated(inner Mapper, copies int) *Replicated {
	if copies <= 0 {
		panic("stripe: replication needs at least one copy")
	}
	return &Replicated{Inner: inner, Copies: copies}
}

// Name implements Mapper.
func (m *Replicated) Name() string { return "replicated+" + m.Inner.Name() }

// NumDevices implements Mapper.
func (m *Replicated) NumDevices() int { return m.Inner.NumDevices() * m.Copies }

// Map implements Mapper: every replica gets a copy of each byte.
func (m *Replicated) Map(off, length int64) []Extent {
	base := m.Inner.Map(off, length)
	out := make([]Extent, 0, len(base)*m.Copies)
	for r := 0; r < m.Copies; r++ {
		shift := r * m.Inner.NumDevices()
		for _, e := range base {
			e.Dev += shift
			out = append(out, e)
		}
	}
	return out
}

// ReadMap implements Mapper: one replica per read, chosen by seed.
func (m *Replicated) ReadMap(off, length, seed int64) []Extent {
	r := int(seed % int64(m.Copies))
	if r < 0 {
		r += m.Copies
	}
	base := m.Inner.ReadMap(off, length, seed)
	shift := r * m.Inner.NumDevices()
	out := make([]Extent, len(base))
	for i, e := range base {
		e.Dev += shift
		out[i] = e
	}
	return out
}

// LogicalEnd delegates to the inner scheme's size reconstruction: replicas
// hold identical stripe objects, so a device's object size implies the same
// logical end as its inner-scheme counterpart.
func (m *Replicated) LogicalEnd(dev int, objSize int64) int64 {
	type ender interface {
		LogicalEnd(dev int, objSize int64) int64
	}
	e, ok := m.Inner.(ender)
	if !ok {
		return 0
	}
	return e.LogicalEnd(dev%m.Inner.NumDevices(), objSize)
}

// Alternates returns e re-based onto every other replica's device, in
// replica order.  DevOff is unchanged — replicas hold identical stripe
// objects — so an issuer can retry a failed read extent on each alternate
// in turn (the replica→replica failover ladder) before falling back to its
// MDS-proxy rung.  Extents not addressed to one of this mapper's devices
// (e.g. the Dev<0 MDS sentinel) have no alternates.
func (m *Replicated) Alternates(e Extent) []Extent {
	n := m.Inner.NumDevices()
	if m.Copies < 2 || e.Dev < 0 || e.Dev >= n*m.Copies {
		return nil
	}
	base := e.Dev % n
	out := make([]Extent, 0, m.Copies-1)
	for r := 0; r < m.Copies; r++ {
		if d := base + r*n; d != e.Dev {
			alt := e
			alt.Dev = d
			out = append(out, alt)
		}
	}
	return out
}

// AlternatesLive is Alternates filtered through a liveness predicate: only
// alternates whose device index live reports as valid are returned.  Under
// elastic membership a replica's device can depart between the layout fetch
// and the retry, and a departed device must never be retried — its ID is
// retired, so the call would either fail again or (worse, with positional
// IDs) land on an aliased survivor.  A nil live behaves like Alternates.
func (m *Replicated) AlternatesLive(e Extent, live func(dev int) bool) []Extent {
	alts := m.Alternates(e)
	if live == nil {
		return alts
	}
	out := alts[:0]
	for _, alt := range alts {
		if live(alt.Dev) {
			out = append(out, alt)
		}
	}
	return out
}

// Hierarchical stripes across groups with an outer unit, then across the
// devices within each group with an inner unit (Clusterfile-style nested
// striping, paper §4.3 [26]).  Group g owns devices [g*PerGroup,
// (g+1)*PerGroup).
type Hierarchical struct {
	OuterUnit int64 // bytes handed to one group at a time
	InnerUnit int64 // striping unit within a group
	Groups    int
	PerGroup  int
}

// NewHierarchical returns a nested striping mapper.  OuterUnit must be a
// multiple of InnerUnit.
func NewHierarchical(outerUnit, innerUnit int64, groups, perGroup int) *Hierarchical {
	if outerUnit <= 0 || innerUnit <= 0 || groups <= 0 || perGroup <= 0 || outerUnit%innerUnit != 0 {
		panic("stripe: bad hierarchical geometry")
	}
	return &Hierarchical{OuterUnit: outerUnit, InnerUnit: innerUnit, Groups: groups, PerGroup: perGroup}
}

// Name implements Mapper.
func (m *Hierarchical) Name() string { return "hierarchical" }

// NumDevices implements Mapper.
func (m *Hierarchical) NumDevices() int { return m.Groups * m.PerGroup }

// Map implements Mapper.
func (m *Hierarchical) Map(off, length int64) []Extent {
	var out []Extent
	inner := NewRoundRobin(m.InnerUnit, m.PerGroup)
	for length > 0 {
		ou := off / m.OuterUnit
		inOuter := off % m.OuterUnit
		n := m.OuterUnit - inOuter
		if n > length {
			n = length
		}
		group := int(ou % int64(m.Groups))
		groupCycle := ou / int64(m.Groups)
		// Within the group, the outer unit occupies a contiguous
		// group-local space striped by the inner mapper.
		for _, e := range inner.Map(groupCycle*m.OuterUnit+inOuter, n) {
			out = append(out, Extent{
				Dev:    group*m.PerGroup + e.Dev,
				Off:    off + (e.Off - (groupCycle*m.OuterUnit + inOuter)),
				DevOff: e.DevOff,
				Len:    e.Len,
			})
		}
		off += n
		length -= n
	}
	return coalesce(out)
}

// ReadMap implements Mapper.
func (m *Hierarchical) ReadMap(off, length, _ int64) []Extent { return m.Map(off, length) }

// coalesce merges adjacent extents that are contiguous in both logical and
// device space on the same device, preserving order.
func coalesce(in []Extent) []Extent {
	if len(in) < 2 {
		return in
	}
	out := in[:1]
	for _, e := range in[1:] {
		last := &out[len(out)-1]
		if e.Dev == last.Dev && e.Off == last.Off+last.Len && e.DevOff == last.DevOff+last.Len {
			last.Len += e.Len
			continue
		}
		out = append(out, e)
	}
	return out
}
