package stripe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkCoverage verifies that extents cover [off, off+n) exactly once per
// copy, in logical order, with non-negative device offsets and valid device
// indices.
func checkCoverage(t *testing.T, m Mapper, off, n int64, extents []Extent, copies int) {
	t.Helper()
	covered := make(map[int64]int) // logical byte (sampled) -> copies seen
	var total int64
	for _, e := range extents {
		if e.Len <= 0 {
			t.Fatalf("%s: non-positive extent %+v", m.Name(), e)
		}
		if e.Dev < 0 || e.Dev >= m.NumDevices() {
			t.Fatalf("%s: device %d out of range [0,%d)", m.Name(), e.Dev, m.NumDevices())
		}
		if e.DevOff < 0 {
			t.Fatalf("%s: negative device offset %+v", m.Name(), e)
		}
		if e.Off < off || e.Off+e.Len > off+n {
			t.Fatalf("%s: extent %+v outside [%d,%d)", m.Name(), e, off, off+n)
		}
		total += e.Len
		for b := e.Off; b < e.Off+e.Len; b += 997 { // sample coverage
			covered[b]++
		}
	}
	if total != n*int64(copies) {
		t.Fatalf("%s: extents cover %d bytes, want %d×%d", m.Name(), total, n, copies)
	}
	for b, c := range covered {
		if c != copies {
			t.Fatalf("%s: byte %d covered %d times, want %d", m.Name(), b, c, copies)
		}
	}
}

// checkNoDeviceOverlap verifies no two extents overlap in device space.
func checkNoDeviceOverlap(t *testing.T, m Mapper, extents []Extent) {
	t.Helper()
	type devRange struct{ lo, hi int64 }
	byDev := make(map[int][]devRange)
	for _, e := range extents {
		for _, r := range byDev[e.Dev] {
			if e.DevOff < r.hi && r.lo < e.DevOff+e.Len {
				t.Fatalf("%s: device %d ranges overlap: [%d,%d) and [%d,%d)",
					m.Name(), e.Dev, r.lo, r.hi, e.DevOff, e.DevOff+e.Len)
			}
		}
		byDev[e.Dev] = append(byDev[e.Dev], devRange{e.DevOff, e.DevOff + e.Len})
	}
}

func TestRoundRobinBasics(t *testing.T) {
	m := NewRoundRobin(100, 4)
	ext := m.Map(0, 1000)
	checkCoverage(t, m, 0, 1000, ext, 1)
	checkNoDeviceOverlap(t, m, ext)
	// Unit 0 → dev 0 @ 0; unit 5 → dev 1 @ 100.
	got := m.Map(500, 100)
	if len(got) != 1 || got[0].Dev != 1 || got[0].DevOff != 100 {
		t.Fatalf("unit 5: %+v", got)
	}
}

func TestRoundRobinUnalignedRange(t *testing.T) {
	m := NewRoundRobin(100, 3)
	ext := m.Map(250, 120) // spans units 2 (50 bytes), 3 (70 bytes)
	checkCoverage(t, m, 250, 120, ext, 1)
	if ext[0].Dev != 2 || ext[0].DevOff != 50 || ext[0].Len != 50 {
		t.Fatalf("first extent %+v", ext[0])
	}
	if ext[1].Dev != 0 || ext[1].DevOff != 100 || ext[1].Len != 70 {
		t.Fatalf("second extent %+v", ext[1])
	}
}

func TestRoundRobinCoalescesSingleDevice(t *testing.T) {
	m := NewRoundRobin(100, 1)
	ext := m.Map(0, 1000) // one device: must coalesce to a single extent
	if len(ext) != 1 || ext[0].Len != 1000 {
		t.Fatalf("single-device map not coalesced: %+v", ext)
	}
}

func TestCyclicMatchesRoundRobinForIdentityOrder(t *testing.T) {
	rr := NewRoundRobin(64, 4)
	cy := NewCyclic(64, []int{0, 1, 2, 3})
	for _, r := range [][2]int64{{0, 1000}, {37, 555}, {1000, 64}, {63, 2}} {
		a := rr.Map(r[0], r[1])
		b := cy.Map(r[0], r[1])
		if len(a) != len(b) {
			t.Fatalf("range %v: %d vs %d extents", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("range %v extent %d: %+v vs %+v", r, i, a[i], b[i])
			}
		}
	}
}

func TestCyclicSkewedPattern(t *testing.T) {
	// Device 0 appears twice per period: it holds units 0,1 then 3,4...
	m := NewCyclic(10, []int{0, 0, 1})
	ext := m.Map(0, 60)
	checkCoverage(t, m, 0, 60, ext, 1)
	checkNoDeviceOverlap(t, m, ext)
	// Unit 3 (offset 30) is pattern slot 0 of cycle 1 → dev 0, and dev 0 has
	// 2 units per cycle, so DevOff = (1*2+0)*10 = 20.
	got := m.Map(30, 10)
	if got[0].Dev != 0 || got[0].DevOff != 20 {
		t.Fatalf("unit 3: %+v", got[0])
	}
}

func TestVariableStripe(t *testing.T) {
	m := NewVariableStripe([]int64{100, 200, 50})
	ext := m.Map(0, 700) // two full cycles
	checkCoverage(t, m, 0, 700, ext, 1)
	checkNoDeviceOverlap(t, m, ext)
	// Second cycle: offset 350 begins device 0's second unit.
	got := m.Map(350, 100)
	if got[0].Dev != 0 || got[0].DevOff != 100 || got[0].Len != 100 {
		t.Fatalf("cycle 2 dev 0: %+v", got)
	}
	// Offset 450 is device 1's second unit.
	got = m.Map(450, 10)
	if got[0].Dev != 1 || got[0].DevOff != 200 {
		t.Fatalf("cycle 2 dev 1: %+v", got)
	}
}

func TestReplicatedWritesAllCopies(t *testing.T) {
	m := NewReplicated(NewRoundRobin(100, 2), 3)
	if m.NumDevices() != 6 {
		t.Fatalf("devices = %d, want 6", m.NumDevices())
	}
	ext := m.Map(0, 400)
	checkCoverage(t, m, 0, 400, ext, 3)
	checkNoDeviceOverlap(t, m, ext)
}

func TestReplicatedReadsPickOneCopy(t *testing.T) {
	m := NewReplicated(NewRoundRobin(100, 2), 3)
	seen := make(map[int]bool)
	for seed := int64(0); seed < 12; seed++ {
		ext := m.ReadMap(0, 400, seed)
		checkCoverage(t, m, 0, 400, ext, 1)
		for _, e := range ext {
			seen[e.Dev/2] = true // replica index
		}
	}
	if len(seen) != 3 {
		t.Fatalf("read replica selection used %d of 3 replicas", len(seen))
	}
}

func TestAlternatesLiveFiltersDepartedReplicas(t *testing.T) {
	m := NewReplicated(NewRoundRobin(100, 2), 3)
	e := Extent{Dev: 0, Off: 0, DevOff: 0, Len: 100}
	// Unfiltered: the other two replicas of device 0 are 2 and 4.
	all := m.Alternates(e)
	if len(all) != 2 || all[0].Dev != 2 || all[1].Dev != 4 {
		t.Fatalf("alternates = %+v, want devs 2 and 4", all)
	}
	// A nil predicate behaves like Alternates.
	if got := m.AlternatesLive(e, nil); len(got) != 2 {
		t.Fatalf("nil predicate filtered: %+v", got)
	}
	// Replica device 2 has departed: it must never be offered as a retry
	// target, while the still-live device 4 survives with DevOff intact.
	live := func(dev int) bool { return dev != 2 }
	got := m.AlternatesLive(e, live)
	if len(got) != 1 || got[0].Dev != 4 || got[0].DevOff != e.DevOff || got[0].Len != e.Len {
		t.Fatalf("filtered alternates = %+v, want only dev 4", got)
	}
	// All replicas departed: no alternates, so the failover ladder falls
	// through to its MDS-proxy rung instead of retrying a retired device.
	if got := m.AlternatesLive(e, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("dead cluster still offered alternates: %+v", got)
	}
	// The MDS sentinel (Dev < 0) has no alternates to begin with.
	if got := m.AlternatesLive(Extent{Dev: -1, Len: 100}, live); len(got) != 0 {
		t.Fatalf("sentinel extent grew alternates: %+v", got)
	}
}

func TestHierarchical(t *testing.T) {
	// 2 groups of 3 devices; outer 300 bytes per group, inner 100.
	m := NewHierarchical(300, 100, 2, 3)
	if m.NumDevices() != 6 {
		t.Fatalf("devices = %d", m.NumDevices())
	}
	ext := m.Map(0, 1200)
	checkCoverage(t, m, 0, 1200, ext, 1)
	checkNoDeviceOverlap(t, m, ext)
	// Bytes [0,300) go to group 0 striped over devs 0,1,2;
	// bytes [300,600) to group 1 over devs 3,4,5.
	for _, e := range m.Map(0, 300) {
		if e.Dev > 2 {
			t.Fatalf("outer unit 0 leaked to group 1: %+v", e)
		}
	}
	for _, e := range m.Map(300, 300) {
		if e.Dev < 3 {
			t.Fatalf("outer unit 1 leaked to group 0: %+v", e)
		}
	}
}

// referenceMap computes the device for each byte the slow way, for
// cross-checking round-robin.
func referenceRR(unit int64, devs int, off int64) (dev int, devOff int64) {
	u := off / unit
	return int(u % int64(devs)), (u/int64(devs))*unit + off%unit
}

func TestPropertyRoundRobinAgainstReference(t *testing.T) {
	f := func(unitRaw uint16, devsRaw uint8, offRaw uint32, lenRaw uint16) bool {
		unit := int64(unitRaw%4096) + 1
		devs := int(devsRaw%16) + 1
		off := int64(offRaw % (1 << 22))
		length := int64(lenRaw) + 1
		m := NewRoundRobin(unit, devs)
		for _, e := range m.Map(off, length) {
			// Verify first and last byte of each extent.
			for _, b := range []int64{e.Off, e.Off + e.Len - 1} {
				dev, devOff := referenceRR(unit, devs, b)
				if dev != e.Dev || devOff != e.DevOff+(b-e.Off) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: all mappers cover ranges exactly and without device overlap.
func TestPropertyAllMappersCover(t *testing.T) {
	mappers := []Mapper{
		NewRoundRobin(64<<10, 6),
		NewCyclic(64<<10, []int{0, 2, 4, 1, 3, 5}),
		NewVariableStripe([]int64{4 << 10, 64 << 10, 256 << 10}),
		NewReplicated(NewRoundRobin(32<<10, 3), 2),
		NewHierarchical(256<<10, 64<<10, 2, 3),
	}
	rng := rand.New(rand.NewSource(11))
	for _, m := range mappers {
		copies := 1
		if r, ok := m.(*Replicated); ok {
			copies = r.Copies
		}
		for trial := 0; trial < 50; trial++ {
			off := rng.Int63n(1 << 30)
			n := rng.Int63n(4<<20) + 1
			ext := m.Map(off, n)
			checkCoverage(t, m, off, n, ext, copies)
			checkNoDeviceOverlap(t, m, ext)
			rext := m.ReadMap(off, n, rng.Int63())
			checkCoverage(t, m, off, n, rext, 1)
		}
	}
}

// Property: mapping a range in two halves equals mapping it whole (modulo
// coalescing at the split point) — verified byte-wise via total length and
// per-device byte counts.
func TestPropertySplitConsistency(t *testing.T) {
	m := NewRoundRobin(1000, 5)
	f := func(offRaw uint32, aRaw, bRaw uint16) bool {
		off := int64(offRaw % (1 << 20))
		a, b := int64(aRaw)+1, int64(bRaw)+1
		whole := m.Map(off, a+b)
		parts := append(m.Map(off, a), m.Map(off+a, b)...)
		perDev := func(ext []Extent) map[int]int64 {
			out := make(map[int]int64)
			for _, e := range ext {
				out[e.Dev] += e.Len
			}
			return out
		}
		w, p := perDev(whole), perDev(parts)
		if len(w) != len(p) {
			return false
		}
		for d, n := range w {
			if p[d] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { NewRoundRobin(0, 3) },
		func() { NewRoundRobin(100, 0) },
		func() { NewCyclic(0, []int{0}) },
		func() { NewCyclic(10, nil) },
		func() { NewVariableStripe(nil) },
		func() { NewVariableStripe([]int64{10, 0}) },
		func() { NewReplicated(NewRoundRobin(1, 1), 0) },
		func() { NewHierarchical(100, 33, 2, 2) }, // outer not multiple of inner
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad geometry did not panic", i)
				}
			}()
			fn()
		}()
	}
}
