package bench

import (
	"fmt"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/workload"
)

// Rebalance-figure schedule: the join lands deep enough into the run for a
// clean pre-join baseline, and every client carries enough pre-written data
// that the background migration is long enough to measure foreground service
// underneath it.
const (
	rebalanceJoiner = "io6" // first name free in every architecture
	rebalanceJoinAt = 2 * time.Second

	// rebalanceBGShare caps the engine-window fraction the Background-class
	// migration copier may hold, so foreground throughput during the
	// migration has a configured floor (the CI smoke asserts against it).
	rebalanceBGShare = 0.5
)

// Rebalance is the repository's elastic-membership figure (not from the
// paper): aggregate foreground write throughput before, during, and after a
// brand-new storage node joins and the cluster migrates existing files onto
// the widened stripe through the Background I/O class.  X is the phase
// (1=before 2=during 3=after); see docs/ARCHITECTURE.md "Elastic
// membership".  The figure errors if no bytes migrated or the reconciler
// failed, so it cannot silently degenerate into a static-membership run.
func Rebalance(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{2}, cluster.Archs)
	fig := Figure{
		ID:     "rebalance",
		Title:  "foreground write under a node join + rebalance (phases: 1=before 2=during 3=after)",
		XLabel: "phase",
		YLabel: "aggregate MB/s",
	}
	if opt.Transport == cluster.TransportTCP {
		return fig, fmt.Errorf("rebalance: this figure requires the sim transport (membership drives the simulated fabric)")
	}
	n := opt.Clients[0]
	dataSize := scaleBytes(16<<20, opt.Scale)
	for _, arch := range opt.Archs {
		cl := newCluster(opt, cluster.Config{Arch: arch, Clients: n, IOBackgroundShare: rebalanceBGShare})
		res, err := workload.Rebalance(cl, workload.RebalanceConfig{
			DataSize: dataSize,
			JoinAt:   rebalanceJoinAt,
			Node:     rebalanceJoiner,
		})
		if err == nil {
			err = cl.ReconcileErr()
		}
		migrated := counterSum(cl.Metrics(), "rebalance_bytes_total")
		cl.Close()
		if err != nil {
			return fig, fmt.Errorf("rebalance/%s: %w", arch, err)
		}
		if migrated == 0 {
			return fig, fmt.Errorf("rebalance/%s: no bytes migrated — the join never rebalanced", arch)
		}
		fig.Series = append(fig.Series, Series{
			Label: archLabel(arch),
			Points: []Point{
				{X: 1, Y: res.Before},
				{X: 2, Y: res.During},
				{X: 3, Y: res.After},
			},
		})
	}
	return fig, nil
}
