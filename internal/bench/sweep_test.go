package bench

import (
	"reflect"
	"testing"

	"dpnfs/internal/cluster"
)

// TestSweepFigureDeterminism extends the same-seed rule to the open-loop
// scaling figure: two runs with the same options produce identical series
// (arrival schedules, offsets, and latencies are all virtual-time
// quantities seeded explicitly).  It also pins the figure's open-loop
// contract on a two-point miniature: the heavier point must drive the
// engine window at least as hard as the light one (mean occupancy is
// non-decreasing in offered load), and every point records a full set of
// percentile and occupancy series.
func TestSweepFigureDeterminism(t *testing.T) {
	archs := []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2}
	opt := Options{Scale: 0.05, Clients: []int{16, 256}, Archs: archs}
	fig1, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	fig2, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig1, fig2) {
		t.Errorf("Sweep figure not deterministic:\n%v\nvs\n%v", fig1, fig2)
	}
	wantSeries := len(archs) * len(sweepMetrics)
	if len(fig1.Series) != wantSeries {
		t.Fatalf("got %d series, want %d:\n%v", len(fig1.Series), wantSeries, fig1)
	}
	for _, s := range fig1.Series {
		if len(s.Points) != len(opt.Clients) {
			t.Errorf("%s: %d points, want %d", s.Label, len(s.Points), len(opt.Clients))
		}
	}
	for _, arch := range archs {
		light := fig1.Value(archLabel(arch)+" occupancy", opt.Clients[0])
		heavy := fig1.Value(archLabel(arch)+" occupancy", opt.Clients[len(opt.Clients)-1])
		if light <= 0 || heavy <= 0 {
			t.Errorf("%s: missing occupancy samples (light %v, heavy %v)", archLabel(arch), light, heavy)
			continue
		}
		if heavy < light {
			t.Errorf("%s: occupancy fell under heavier load (light %.2f, heavy %.2f)", archLabel(arch), light, heavy)
		}
	}
	// The figure is virtual-time only: wiring it to TCP must refuse.
	if _, err := Sweep(Options{Transport: cluster.TransportTCP, Archs: archs}); err == nil {
		t.Error("Sweep accepted the TCP transport; want an error")
	}
}
