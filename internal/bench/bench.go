// Package bench regenerates every figure in the paper's evaluation
// (Figures 6, 7, and 8, plus the §6.4.3 SSH-build study) and the
// repository's own degraded-mode figure (a storage-node crash mid-run,
// docs/FAULTS.md).  Each figure function builds fresh clusters per
// (architecture, client-count) point, runs the corresponding workload, and
// returns a Figure whose series can be printed as the table the paper
// plots.
//
// # Determinism
//
// Two runs of the same figure with the same Options (and, for the degraded
// figure, the same fault plan) produce identical Figure values.  The rule
// that guarantees it — pinned by TestFigureDeterminism — is that every
// source of randomness on the simulated path threads from an explicit
// seed: cluster.Config.Seed feeds the simulation kernel (whose RNG also
// drives injected link loss), faults plans are pure functions of their own
// seed, and no wall-clock or global-RNG value may enter a simulated run.
// New figure code must follow the same rule: derive any randomness from
// the cluster seed or a plan seed, never from time.Now or package rand
// globals.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/faults"
	"dpnfs/internal/metrics"
	"dpnfs/internal/simnet"
	"dpnfs/internal/workload"
)

// Point is one (clients, value) sample.
type Point struct {
	X int
	Y float64
}

// Series is one line on a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Options tunes figure regeneration.
type Options struct {
	// Scale multiplies data-set sizes and transaction counts (1.0 = the
	// paper's sizes).  Benchmarks and tests use smaller scales; shapes are
	// scale-stable because the bottlenecks are rate-based.
	Scale float64
	// Clients overrides the client counts swept.
	Clients []int
	// Archs restricts the architecture set.
	Archs []cluster.Arch
	// Transport selects the cluster wiring: the simulated fabric (default,
	// virtual time — the paper's numbers) or real loopback TCP (wall-clock
	// time; results measure this host, not the paper's testbed).
	Transport cluster.TransportKind
	// Metrics, when set, is shared by every cluster a figure run builds, so
	// the registry accumulates the whole sweep (all architectures, all
	// client counts) and its snapshot lands in the JSON report.  Nil gives
	// each figure point its own discarded registry.
	Metrics *metrics.Registry
}

// newCluster builds one figure point's cluster with the options' transport.
func newCluster(opt Options, cfg cluster.Config) *cluster.Cluster {
	cfg.Transport = opt.Transport
	cfg.Metrics = opt.Metrics
	if opt.Transport == cluster.TransportTCP {
		// Wall-clock runs move real bytes end to end.
		cfg.Real = true
	}
	return cluster.New(cfg)
}

func (o Options) withDefaults(clients []int, archs []cluster.Arch) Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if len(o.Clients) == 0 {
		o.Clients = clients
	}
	if len(o.Archs) == 0 {
		o.Archs = archs
	}
	return o
}

func scaleBytes(b int64, s float64) int64 {
	v := int64(float64(b) * s)
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

// archLabel renders the paper's series names.
func archLabel(a cluster.Arch) string {
	switch a {
	case cluster.ArchDirectPNFS:
		return "Direct-pNFS"
	case cluster.ArchPVFS2:
		return "PVFS2"
	case cluster.ArchPNFS2Tier:
		return "pNFS-2tier"
	case cluster.ArchPNFS3Tier:
		return "pNFS-3tier"
	case cluster.ArchNFSv4:
		return "NFSv4"
	}
	return string(a)
}

// String renders the figure as an aligned table, one row per client count.
func (f Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s (%s)\n", f.ID, f.Title, f.YLabel)
	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var xList []int
	for x := range xs {
		xList = append(xList, x)
	}
	sort.Ints(xList)
	fmt.Fprintf(&sb, "%-9s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteByte('\n')
	for _, x := range xList {
		fmt.Fprintf(&sb, "%-9d", x)
		for _, s := range f.Series {
			v := ""
			for _, p := range s.Points {
				if p.X == x {
					v = fmt.Sprintf("%.1f", p.Y)
					break
				}
			}
			fmt.Fprintf(&sb, "%14s", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Value returns the Y value for (label, x), or -1 if absent.
func (f Figure) Value(label string, x int) float64 {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y
			}
		}
	}
	return -1
}

// iorFigure sweeps client counts × architectures for one IOR setting.
func iorFigure(id, title string, opt Options, netBPS float64, ior workload.IORConfig, archs []cluster.Arch) (Figure, error) {
	opt = opt.withDefaults([]int{1, 2, 3, 4, 5, 6, 7, 8}, archs)
	fig := Figure{ID: id, Title: title, XLabel: "clients", YLabel: "aggregate MB/s"}
	ior.FileSize = scaleBytes(500<<20, opt.Scale)
	for _, arch := range opt.Archs {
		s := Series{Label: archLabel(arch)}
		for _, n := range opt.Clients {
			cl := newCluster(opt, cluster.Config{Arch: arch, Clients: n, NetBPS: netBPS})
			res, err := workload.IOR(cl, ior)
			cl.Close()
			if err != nil {
				return fig, fmt.Errorf("%s/%s/%d clients: %w", id, arch, n, err)
			}
			s.Points = append(s.Points, Point{X: n, Y: res.ThroughputMBs()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig6a: aggregate write throughput, separate files, large block.
func Fig6a(opt Options) (Figure, error) {
	return iorFigure("Fig6a", "write, separate files, 2 MB block", opt, 0,
		workload.IORConfig{Block: 2 << 20, Separate: true}, cluster.Archs)
}

// Fig6b: aggregate write throughput, single file, large block.
func Fig6b(opt Options) (Figure, error) {
	return iorFigure("Fig6b", "write, single file, 2 MB block", opt, 0,
		workload.IORConfig{Block: 2 << 20}, cluster.Archs)
}

// Fig6c: write, separate files, 100 Mbps Ethernet (three systems).
func Fig6c(opt Options) (Figure, error) {
	return iorFigure("Fig6c", "write, separate files, 100 Mbps", opt, simnet.FastEther,
		workload.IORConfig{Block: 2 << 20, Separate: true},
		[]cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2, cluster.ArchPNFS2Tier})
}

// Fig6d: write, separate files, 8 KB block.
func Fig6d(opt Options) (Figure, error) {
	return iorFigure("Fig6d", "write, separate files, 8 KB block", opt, 0,
		workload.IORConfig{Block: 8 << 10, Separate: true}, cluster.Archs)
}

// Fig6e: write, single file, 8 KB block.
func Fig6e(opt Options) (Figure, error) {
	return iorFigure("Fig6e", "write, single file, 8 KB block", opt, 0,
		workload.IORConfig{Block: 8 << 10}, cluster.Archs)
}

// Fig7a: read (warm server cache), separate files, large block.
func Fig7a(opt Options) (Figure, error) {
	return iorFigure("Fig7a", "read, separate files, 2 MB block", opt, 0,
		workload.IORConfig{Block: 2 << 20, Separate: true, Read: true}, cluster.Archs)
}

// Fig7b: read, single file, large block.
func Fig7b(opt Options) (Figure, error) {
	return iorFigure("Fig7b", "read, single file, 2 MB block", opt, 0,
		workload.IORConfig{Block: 2 << 20, Read: true}, cluster.Archs)
}

// Fig7c: read, separate files, 8 KB block.
func Fig7c(opt Options) (Figure, error) {
	return iorFigure("Fig7c", "read, separate files, 8 KB block", opt, 0,
		workload.IORConfig{Block: 8 << 10, Separate: true, Read: true}, cluster.Archs)
}

// Fig7d: read, single file, 8 KB block.
func Fig7d(opt Options) (Figure, error) {
	return iorFigure("Fig7d", "read, single file, 8 KB block", opt, 0,
		workload.IORConfig{Block: 8 << 10, Read: true}, cluster.Archs)
}

var fig8Archs = []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2}

// Fig8a: ATLAS Digitization write replay, 1/4/8 clients.
func Fig8a(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{1, 4, 8}, fig8Archs)
	fig := Figure{ID: "Fig8a", Title: "ATLAS digitization replay", XLabel: "clients", YLabel: "aggregate MB/s"}
	for _, arch := range opt.Archs {
		s := Series{Label: archLabel(arch)}
		for _, n := range opt.Clients {
			cl := newCluster(opt, cluster.Config{Arch: arch, Clients: n})
			res, err := workload.ATLAS(cl, workload.ATLASConfig{TotalBytes: scaleBytes(650<<20, opt.Scale)})
			cl.Close()
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: n, Y: res.ThroughputMBs()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8b: BTIO running time (seconds, lower is better), 1/4/9 clients.
func Fig8b(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{1, 4, 9}, fig8Archs)
	fig := Figure{ID: "Fig8b", Title: "NAS BT-IO class A", XLabel: "clients", YLabel: "time (s)"}
	for _, arch := range opt.Archs {
		s := Series{Label: archLabel(arch)}
		for _, n := range opt.Clients {
			cl := newCluster(opt, cluster.Config{Arch: arch, Clients: n})
			res, err := workload.BTIO(cl, workload.BTIOConfig{CheckpointBytes: scaleBytes(400<<20, opt.Scale)})
			cl.Close()
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: n, Y: res.Elapsed.Seconds()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8c: OLTP aggregate throughput, 1/4/8 clients.
func Fig8c(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{1, 4, 8}, fig8Archs)
	fig := Figure{ID: "Fig8c", Title: "OLTP 8 KB read-modify-write", XLabel: "clients", YLabel: "aggregate MB/s"}
	txns := int(20000 * opt.Scale)
	if txns < 50 {
		txns = 50
	}
	for _, arch := range opt.Archs {
		s := Series{Label: archLabel(arch)}
		for _, n := range opt.Clients {
			cl := newCluster(opt, cluster.Config{Arch: arch, Clients: n})
			res, err := workload.OLTP(cl, workload.OLTPConfig{
				Transactions: txns,
				FileBytes:    scaleBytes(512<<20, opt.Scale),
			})
			cl.Close()
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: n, Y: res.ThroughputMBs()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8d: Postmark transactions per second, 1/4/8 clients.  The paper runs
// this configuration with 64 KB stripe, wsize, and rsize.
func Fig8d(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{1, 4, 8}, fig8Archs)
	fig := Figure{ID: "Fig8d", Title: "Postmark", XLabel: "clients", YLabel: "transactions/s"}
	txns := int(2000 * opt.Scale)
	if txns < 25 {
		txns = 25
	}
	for _, arch := range opt.Archs {
		s := Series{Label: archLabel(arch)}
		for _, n := range opt.Clients {
			cl := newCluster(opt, cluster.Config{
				Arch: arch, Clients: n,
				StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
			})
			res, err := workload.Postmark(cl, workload.PostmarkConfig{Transactions: txns})
			cl.Close()
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: n, Y: res.TPS()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Degraded-figure schedule: the crash window is deep enough into the run
// for a clean "before" baseline, and the outage is long enough that every
// architecture's recovery machinery (layout refetch, MDS-proxied fallback,
// striped-I/O retry) engages before the restart heals it.
const (
	degradedCrashAt   = 2 * time.Second
	degradedRestartAt = 6 * time.Second
	degradedTail      = 3 * time.Second
	degradedVictim    = "io1" // a non-MDS storage node present in every arch
)

// Degraded is the repository's degraded-mode figure (not from the paper):
// aggregate write throughput before, during, and after a storage-node
// crash, per architecture, under one shared fault plan.  X is the phase
// (1=before, 2=during, 3=after).  See docs/FAULTS.md for interpretation.
func Degraded(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{2}, cluster.Archs)
	fig := Figure{
		ID:     "degraded",
		Title:  "write under a storage-node crash (phases: 1=before 2=during 3=after)",
		XLabel: "phase",
		YLabel: "aggregate MB/s",
	}
	if opt.Transport == cluster.TransportTCP {
		return fig, fmt.Errorf("degraded: this figure requires the sim transport (virtual-time windows)")
	}
	plan := faults.NewPlan(1,
		faults.StorageNodeCrash{At: degradedCrashAt, Node: degradedVictim},
		faults.StorageNodeRestart{At: degradedRestartAt, Node: degradedVictim},
	)
	n := opt.Clients[0]
	for _, arch := range opt.Archs {
		cl := newCluster(opt, cluster.Config{Arch: arch, Clients: n, Faults: plan})
		res, err := workload.Degraded(cl, workload.DegradedConfig{
			CrashAt:   degradedCrashAt,
			RestartAt: degradedRestartAt,
			Tail:      degradedTail,
		})
		cl.Close()
		if err != nil {
			return fig, fmt.Errorf("degraded/%s: %w", arch, err)
		}
		fig.Series = append(fig.Series, Series{
			Label: archLabel(arch),
			Points: []Point{
				{X: 1, Y: res.Before},
				{X: 2, Y: res.During},
				{X: 3, Y: res.After},
			},
		})
	}
	return fig, nil
}

// Recovery is the repository's crash-recovery figure (not from the paper):
// the degraded-mode schedule re-run on the write-ahead-logged backend
// (cluster.Config.Backend "wal", docs/BACKENDS.md).  Unlike the degraded
// figure, the crash also discards the victim's volatile store image, so the
// restart must replay the node's journal before it rejoins — throughput
// across the three phases shows what durability costs and that recovery
// actually restores service.  X is the phase (1=before, 2=during,
// 3=after).  The figure errors if no journal records were replayed, so it
// cannot silently degenerate into the volatile degraded figure.
func Recovery(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{2}, cluster.Archs)
	fig := Figure{
		ID:     "recovery",
		Title:  "write across a crash with WAL replay (phases: 1=before 2=during 3=after)",
		XLabel: "phase",
		YLabel: "aggregate MB/s",
	}
	if opt.Transport == cluster.TransportTCP {
		return fig, fmt.Errorf("recovery: this figure requires the sim transport (virtual-time windows)")
	}
	plan := faults.NewPlan(1,
		faults.StorageNodeCrash{At: degradedCrashAt, Node: degradedVictim},
		faults.StorageNodeRestart{At: degradedRestartAt, Node: degradedVictim},
	)
	n := opt.Clients[0]
	var replayed float64
	for _, arch := range opt.Archs {
		cl := newCluster(opt, cluster.Config{
			Arch: arch, Clients: n, Faults: plan,
			Backend: cluster.BackendWAL,
		})
		res, err := workload.Degraded(cl, workload.DegradedConfig{
			CrashAt:   degradedCrashAt,
			RestartAt: degradedRestartAt,
			Tail:      degradedTail,
		})
		replayed += counterSum(cl.Metrics(), "store_wal_replays_total")
		cl.Close()
		if err != nil {
			return fig, fmt.Errorf("recovery/%s: %w", arch, err)
		}
		fig.Series = append(fig.Series, Series{
			Label: archLabel(arch),
			Points: []Point{
				{X: 1, Y: res.Before},
				{X: 2, Y: res.During},
				{X: 3, Y: res.After},
			},
		})
	}
	if replayed == 0 {
		return fig, fmt.Errorf("recovery: no WAL records replayed — the crash never exercised recovery")
	}
	return fig, nil
}

// counterSum totals one counter family's series values in a registry.
func counterSum(reg *metrics.Registry, name string) float64 {
	var total float64
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			total += s.Value
		}
	}
	return total
}

// Window-sweep parameters: mixed request sizes (12 MB spanning every
// device down to single-stripe-unit slivers) make the per-wave transfer
// times heterogeneous, which is exactly where lock-step dispatch stalls on
// its slowest member and the sliding window does not.
var windowSweepBlocks = []int64{12 << 20, 64 << 10, 2 << 20, 8 << 10, 4 << 20, 256 << 10}

// windowSweepSizes are the MaxFlight values swept.
var windowSweepSizes = []int{1, 2, 4, 8, 16}

// WindowSweep is the repository's I/O-engine figure (not from the paper):
// aggregate mixed-size IOR write throughput as a function of the engine's
// window size (cluster.Config.MaxFlight), comparing the sliding in-flight
// window against the pre-engine lock-step wave dispatch
// (cluster.Config.IOWave) on the cacheless PVFS2 client, whose every
// application request fans straight out through the engine.  X is the
// window size; see docs/ARCHITECTURE.md ("The striped-I/O engine").
func WindowSweep(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{3}, []cluster.Arch{cluster.ArchPVFS2})
	fig := Figure{
		ID:     "window",
		Title:  "sliding window vs lock-step waves, mixed-size IOR",
		XLabel: "window",
		YLabel: "aggregate MB/s",
	}
	n := opt.Clients[0]
	for _, arch := range opt.Archs {
		for _, mode := range []struct {
			label string
			wave  bool
		}{{"window", false}, {"wave", true}} {
			s := Series{Label: archLabel(arch) + " " + mode.label}
			for _, w := range windowSweepSizes {
				cl := newCluster(opt, cluster.Config{
					Arch: arch, Clients: n,
					MaxFlight: w, IOWave: mode.wave,
				})
				res, err := workload.IOR(cl, workload.IORConfig{
					FileSize:    scaleBytes(120<<20, opt.Scale),
					MixedBlocks: windowSweepBlocks,
					Separate:    true,
				})
				cl.Close()
				if err != nil {
					return fig, fmt.Errorf("window/%s/%s/%d: %w", arch, mode.label, w, err)
				}
				s.Points = append(s.Points, Point{X: w, Y: res.ThroughputMBs()})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// SSHBuild regenerates the §6.4.3 phase comparison.
func SSHBuild(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{1}, fig8Archs)
	fig := Figure{ID: "SSH", Title: "OpenSSH build phases", XLabel: "phase", YLabel: "time (s)"}
	for _, arch := range opt.Archs {
		cl := newCluster(opt, cluster.Config{Arch: arch, Clients: 1})
		res, err := workload.SSHBuild(cl, 0)
		cl.Close()
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, Series{
			Label: archLabel(arch),
			Points: []Point{
				{X: 1, Y: res.Uncompress.Seconds()}, // 1 = uncompress
				{X: 2, Y: res.Configure.Seconds()},  // 2 = configure
				{X: 3, Y: res.Build.Seconds()},      // 3 = build
			},
		})
	}
	return fig, nil
}

// All maps figure IDs to their generators.
var All = map[string]func(Options) (Figure, error){
	"6a": Fig6a, "6b": Fig6b, "6c": Fig6c, "6d": Fig6d, "6e": Fig6e,
	"7a": Fig7a, "7b": Fig7b, "7c": Fig7c, "7d": Fig7d,
	"8a": Fig8a, "8b": Fig8b, "8c": Fig8c, "8d": Fig8d,
	"ssh": SSHBuild, "degraded": Degraded, "recovery": Recovery, "window": WindowSweep,
	"tail": Tail, "rebalance": Rebalance, "sweep": Sweep, "integrity": Integrity,
}

// IDs lists figure IDs in presentation order.
var IDs = []string{"6a", "6b", "6c", "6d", "6e", "7a", "7b", "7c", "7d", "8a", "8b", "8c", "8d", "ssh", "degraded", "recovery", "window", "tail", "rebalance", "sweep", "integrity"}

// Elapsed wraps a duration for table rendering.
func Elapsed(d time.Duration) float64 { return d.Seconds() }
