package bench

import (
	"fmt"

	"dpnfs/internal/cluster"
	"dpnfs/internal/faults"
	"dpnfs/internal/simdisk"
	"dpnfs/internal/workload"
)

// Tail-figure schedule: the victim node is degraded — not crashed — for the
// whole degraded phase, so every request still succeeds but a seed-driven
// fraction of them straggle.  The lossy link is what hedged duplicates beat:
// each message through the victim pays the 200 ms retransmission timeout
// with probability tailLoss on an independent per-message coin flip, so a
// duplicate request usually completes at normal speed while its primary
// sits out the RTO.  The slowed disk adds a deterministic mid-range stratum
// (reads striped to the victim) between the healthy base and the RTO tail.
// tailSlowFactor is deliberately modest: the victim's platter must straggle
// visibly (a mid-range latency stratum) while its worst closed-loop queue —
// every client's primary plus a hedged duplicate — stays below the
// histogram's RTO bucket, so the 500 ms bucket isolates retransmission
// events and the hedged-vs-unhedged comparison cannot be inverted by
// duplicate-induced disk queueing.
const (
	tailVictim     = "io1" // a non-MDS storage node present in every arch
	tailLoss       = 0.05
	tailSlowFactor = 2
)

// tailDiskCache shrinks each node's disk cache for this figure so repeated
// scans stay cold: with the 2 GB default, everything the setup phase wrote
// is still cache-resident and a slowed platter never serves a read.
const tailDiskCache = 1 << 20

// tailPercentiles are the figure's X axis: the per-mille quantile (500 =
// p50, 990 = p99, 999 = p999).
var tailPercentiles = []struct {
	x int
	q func(workload.TailPhase) float64
}{
	{500, func(p workload.TailPhase) float64 { return p.P50 }},
	{990, func(p workload.TailPhase) float64 { return p.P99 }},
	{999, func(p workload.TailPhase) float64 { return p.P999 }},
}

// Tail is the repository's tail-latency figure (not from the paper):
// per-read latency percentiles on every architecture, steady versus
// degraded (slow disk + lossy link on one storage node), with hedged
// requests off versus on (cluster.Config.IOHedge; see docs/ARCHITECTURE.md
// "Tail-latency scheduling").  X is the per-mille quantile (500/990/999); Y
// is latency in milliseconds.  The figure errors if the hedged clusters'
// degraded phases never launched a hedge, so it cannot silently degenerate
// into two unhedged runs.
func Tail(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{3}, cluster.Archs)
	fig := Figure{
		ID:     "tail",
		Title:  "read tail latency, steady vs degraded node, unhedged vs hedged",
		XLabel: "permille",
		YLabel: "latency ms",
	}
	if opt.Transport == cluster.TransportTCP {
		return fig, fmt.Errorf("tail: this figure requires the sim transport (virtual-time latencies)")
	}
	plan := faults.NewPlan(1,
		faults.SlowDisk{At: 0, Node: tailVictim, Factor: tailSlowFactor},
		faults.LinkDegrade{At: 0, Node: tailVictim, Loss: tailLoss},
	)
	disk := simdisk.DefaultConfig("")
	disk.CacheBytes = tailDiskCache
	n := opt.Clients[0]
	fileSize := scaleBytes(64<<20, opt.Scale)
	block := int64(64 << 10)
	// Keep the latency sample count (and so the p999 resolution) roughly
	// scale-independent: small files get more shuffled passes.
	passes := 1
	if blocks := fileSize / block; blocks < 512 {
		passes = int((512 + blocks - 1) / blocks)
	}
	for _, arch := range opt.Archs {
		for _, mode := range []struct {
			label string
			hedge bool
		}{{"unhedged", false}, {"hedged", true}} {
			cl := newCluster(opt, cluster.Config{
				Arch: arch, Clients: n,
				StripeSize: block, WSize: block, RSize: block,
				Disk:    disk,
				Faults:  plan,
				IOHedge: mode.hedge,
			})
			res, err := workload.Tail(cl, workload.TailConfig{
				Block:    block,
				FileSize: fileSize,
				Passes:   passes,
				Seed:     7,
			})
			cl.Close()
			if err != nil {
				return fig, fmt.Errorf("tail/%s/%s: %w", arch, mode.label, err)
			}
			if mode.hedge && res.Degraded.Hedges < 1 {
				return fig, fmt.Errorf("tail/%s: degraded phase launched no hedges — hedging never engaged", arch)
			}
			for _, ph := range []struct {
				label string
				phase workload.TailPhase
			}{{"steady", res.Steady}, {"degraded", res.Degraded}} {
				s := Series{Label: fmt.Sprintf("%s %s %s", archLabel(arch), mode.label, ph.label)}
				for _, pct := range tailPercentiles {
					s.Points = append(s.Points, Point{X: pct.x, Y: pct.q(ph.phase) * 1e3})
				}
				fig.Series = append(fig.Series, s)
			}
		}
	}
	return fig, nil
}
