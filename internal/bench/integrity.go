package bench

import (
	"fmt"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/faults"
	"dpnfs/internal/pnfs"
	"dpnfs/internal/workload"
)

// Integrity-figure schedule: the rot lands deep enough into the run for a
// clean baseline window, the scheduled scrub starts a window later so
// foreground read-repair is measured on its own, and the rot hits only the
// primary replica group (devices 0..inner-1) so every corrupt chunk keeps a
// live good copy to repair from.
const (
	integrityRotAt    = 200 * time.Millisecond
	integrityScrubAt  = 400 * time.Millisecond
	integrityDeadline = 600 * time.Millisecond

	// integrityScrubRate bounds the Background-class scrubber's verified
	// bytes per virtual second, so the phase-3 foreground impact is a
	// configured trade-off rather than an unthrottled scan.
	integrityScrubRate = 64 << 20
)

// Integrity is the repository's end-to-end data-integrity figure (not from
// the paper): aggregate verified read throughput before bit rot lands,
// while foreground reads detect and repair it from replicas, and with the
// background scrubber running — per architecture, under one shared fault
// plan, on a replicated (Copies=2) cluster with block checksums and wire
// checksums on.  X is the phase (1=clean 2=rot+read-repair 3=scrub
// running); see docs/FAULTS.md "Corruption".  The workload verifies every
// byte it reads, and the figure errors if no corruption was injected, no
// read-repair engaged, or the scrub never scanned — so it cannot silently
// degenerate into a clean read sweep.
func Integrity(opt Options) (Figure, error) {
	opt = opt.withDefaults([]int{2}, cluster.Archs)
	fig := Figure{
		ID:     "integrity",
		Title:  "verified reads under bit rot + scrub (phases: 1=clean 2=rot+read-repair 3=scrub)",
		XLabel: "phase",
		YLabel: "aggregate MB/s",
	}
	if opt.Transport == cluster.TransportTCP {
		return fig, fmt.Errorf("integrity: this figure requires the sim transport (virtual-time windows)")
	}
	n := opt.Clients[0]
	fileSize := scaleBytes(8<<20, opt.Scale)
	for _, arch := range opt.Archs {
		backends, inner := 6, 3
		if arch == cluster.ArchPNFS3Tier {
			// 3-tier halves its backends into storage nodes; eight keeps
			// the copy count dividing the storage-node count.
			backends, inner = 8, 2
		}
		var events []faults.Event
		for d := 0; d < inner; d++ {
			events = append(events, faults.BitRot{
				At:   integrityRotAt + time.Duration(d)*time.Millisecond,
				Node: fmt.Sprintf("io%d", d),
				Seed: int64(500 + d),
			})
		}
		// The registry may be shared across the whole sweep (Options.Metrics),
		// so each arch's guards work on deltas, not absolute totals.
		pre := integrityCounters(opt, nil)
		cl := newCluster(opt, cluster.Config{
			Arch: arch, Clients: n, Backends: backends, Real: true,
			StripeSize: 64 << 10, WSize: 64 << 10, RSize: 64 << 10,
			Aggregation:   pnfs.AggReplicated,
			AggParams:     []int64{2, 64 << 10},
			WireChecksums: true,
			ScrubRateBPS:  integrityScrubRate,
			Faults:        faults.NewPlan(1, events...),
		})
		res, err := workload.Integrity(cl, workload.IntegrityConfig{
			FileSize: fileSize,
			RotAt:    integrityRotAt,
			ScrubAt:  integrityScrubAt,
			Deadline: integrityDeadline,
		})
		post := integrityCounters(opt, cl)
		cl.Close()
		if err != nil {
			return fig, fmt.Errorf("integrity/%s: %w", arch, err)
		}
		if post.injected-pre.injected < 1 {
			return fig, fmt.Errorf("integrity/%s: no corruption injected — the rot never landed", arch)
		}
		if post.repairs-pre.repairs < 1 {
			return fig, fmt.Errorf("integrity/%s: no read-repair engaged — the rot was never detected", arch)
		}
		if post.scanned-pre.scanned < 1 {
			return fig, fmt.Errorf("integrity/%s: the background scrub never scanned an extent", arch)
		}
		fig.Series = append(fig.Series, Series{
			Label: archLabel(arch),
			Points: []Point{
				{X: 1, Y: res.Before},
				{X: 2, Y: res.During},
				{X: 3, Y: res.After},
			},
		})
	}
	return fig, nil
}

// integrityGuards is the per-arch guard snapshot for the integrity figure.
type integrityGuards struct {
	injected, repairs, scanned float64
}

// integrityCounters reads the guard counters from the sweep registry (before
// a point's cluster exists) or from the cluster's own registry (after).
func integrityCounters(opt Options, cl *cluster.Cluster) integrityGuards {
	reg := opt.Metrics
	if cl != nil {
		reg = cl.Metrics()
	}
	if reg == nil {
		return integrityGuards{}
	}
	return integrityGuards{
		injected: counterSum(reg, "faults_injected_total"),
		repairs: counterSum(reg, "nfs_client_read_repairs_total") +
			counterSum(reg, "pvfs_client_read_repairs_total"),
		scanned: counterSum(reg, "scrub_extents_total"),
	}
}
