package bench

import (
	"strings"
	"testing"

	"dpnfs/internal/cluster"
)

func TestFigureStringRendersTable(t *testing.T) {
	fig := Figure{
		ID: "X", Title: "test", XLabel: "clients", YLabel: "MB/s",
		Series: []Series{
			{Label: "A", Points: []Point{{1, 10.5}, {4, 40}}},
			{Label: "B", Points: []Point{{1, 5}, {4, 20.25}}},
		},
	}
	s := fig.String()
	for _, want := range []string{"X: test", "clients", "A", "B", "10.5", "20.2"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFigureValue(t *testing.T) {
	fig := Figure{Series: []Series{{Label: "A", Points: []Point{{1, 7}}}}}
	if fig.Value("A", 1) != 7 {
		t.Fatal("lookup failed")
	}
	if fig.Value("A", 2) != -1 || fig.Value("Z", 1) != -1 {
		t.Fatal("missing lookup should return -1")
	}
}

func TestScaleBytesFloor(t *testing.T) {
	if scaleBytes(500<<20, 1.0) != 500<<20 {
		t.Fatal("identity scale changed size")
	}
	if got := scaleBytes(500<<20, 0.000001); got != 1<<20 {
		t.Fatalf("tiny scale should floor at 1 MiB, got %d", got)
	}
}

func TestArchLabels(t *testing.T) {
	wants := map[cluster.Arch]string{
		cluster.ArchDirectPNFS: "Direct-pNFS",
		cluster.ArchPVFS2:      "PVFS2",
		cluster.ArchPNFS2Tier:  "pNFS-2tier",
		cluster.ArchPNFS3Tier:  "pNFS-3tier",
		cluster.ArchNFSv4:      "NFSv4",
	}
	for arch, want := range wants {
		if got := archLabel(arch); got != want {
			t.Errorf("archLabel(%s) = %q, want %q", arch, got, want)
		}
	}
}

func TestAllRegistryComplete(t *testing.T) {
	if len(IDs) != len(All) {
		t.Fatalf("IDs has %d entries, All has %d", len(IDs), len(All))
	}
	for _, id := range IDs {
		if All[id] == nil {
			t.Errorf("figure %q missing from registry", id)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	opt := Options{}.withDefaults([]int{1, 2}, []cluster.Arch{cluster.ArchPVFS2})
	if opt.Scale != 1.0 || len(opt.Clients) != 2 || len(opt.Archs) != 1 {
		t.Fatalf("defaults not applied: %+v", opt)
	}
	opt = Options{Scale: 0.5, Clients: []int{9}}.withDefaults([]int{1}, cluster.Archs)
	if opt.Scale != 0.5 || opt.Clients[0] != 9 || len(opt.Archs) != 5 {
		t.Fatalf("overrides not honored: %+v", opt)
	}
}

func TestTinyFigureEndToEnd(t *testing.T) {
	fig, err := Fig6a(Options{Scale: 0.002, Clients: []int{1}, Archs: []cluster.Arch{cluster.ArchDirectPNFS}})
	if err != nil {
		t.Fatal(err)
	}
	if v := fig.Value("Direct-pNFS", 1); v <= 0 {
		t.Fatalf("tiny figure produced %v MB/s", v)
	}
}
