package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dpnfs/internal/cluster"
)

// TestReportJSONRoundTrip pins the report serialization: a report written
// with WriteJSON must read back equal through ReadReport.
func TestReportJSONRoundTrip(t *testing.T) {
	opt := Options{Scale: 0.01}
	r := NewReport(opt)
	r.Figures = append(r.Figures, FigureReport{
		Figure: Figure{
			ID: "Fig6a", Title: "write", XLabel: "clients", YLabel: "MB/s",
			Series: []Series{{Label: "Direct-pNFS", Points: []Point{{1, 88.5}, {2, 170}}}},
		},
	})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip drifted:\nwrote %+v\nread  %+v", r, back)
	}
}

// TestReportFigure6EndToEnd generates a small Figure 6a sweep through
// Report.Add, writes the JSON file the -report flag would produce, and
// verifies the figure values and a populated metrics snapshot survive.
func TestReportFigure6EndToEnd(t *testing.T) {
	opt := Options{
		Scale:   0.002,
		Clients: []int{1, 2},
		Archs:   []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2},
	}
	r := NewReport(opt)
	fig, err := r.Add("6a", opt)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Value("Direct-pNFS", 2) <= 0 {
		t.Fatalf("figure has no Direct-pNFS value at 2 clients:\n%s", fig)
	}

	path := filepath.Join(t.TempDir(), "BENCH_6a.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("report file is not valid JSON")
	}
	back, err := ReadReport(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Paper != PaperID || back.Transport != "sim" || len(back.Figures) != 1 {
		t.Fatalf("report header drifted: %+v", back)
	}
	fr := back.Figures[0]
	if fr.ID != "Fig6a" {
		t.Fatalf("figure id %q", fr.ID)
	}
	if got := fr.Figure.Value("PVFS2", 1); got != fig.Value("PVFS2", 1) {
		t.Fatalf("PVFS2@1 drifted through JSON: %v != %v", got, fig.Value("PVFS2", 1))
	}
	if fr.Metrics == nil || len(fr.Metrics.Metrics) == 0 {
		t.Fatal("report is missing the metrics snapshot")
	}
	// The sweep must have left per-layer traces: client ops, server
	// compounds, PVFS daemon work, and RPC accounting.
	want := map[string]bool{
		"nfs_client_ops_total":        false,
		"nfs_server_compounds_total":  false,
		"pvfs_storage_requests_total": false,
		"rpc_client_calls_total":      false,
		"cluster_info":                false,
	}
	for _, m := range fr.Metrics.Metrics {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metrics snapshot missing %s", name)
		}
	}
	// Per-architecture attribution: both swept architectures touched the
	// storage daemons, and their series must stay separate.
	archSeen := map[string]bool{}
	for _, m := range fr.Metrics.Metrics {
		if m.Name != "pvfs_storage_requests_total" {
			continue
		}
		for _, s := range m.Series {
			archSeen[s.Labels["arch"]] = true
		}
	}
	for _, arch := range []string{"direct-pnfs", "pvfs2"} {
		if !archSeen[arch] {
			t.Errorf("storage metrics not attributed to arch %q (saw %v)", arch, archSeen)
		}
	}
}
