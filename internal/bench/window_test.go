package bench

import (
	"reflect"
	"testing"
)

// TestWindowSweepSlidingWindowBeatsWaves pins the I/O engine's headline
// property (ISSUE 4 acceptance): on mixed-size IOR, the sliding in-flight
// window yields throughput at least equal to lock-step wave dispatch at
// every swept window size, strictly better somewhere in the middle of the
// sweep, and identical at window 1 (where both degenerate to serial
// issue).  The figure must also be deterministic, like every other figure
// in the package.
func TestWindowSweepSlidingWindowBeatsWaves(t *testing.T) {
	opt := Options{Scale: 0.05, Clients: []int{2}}
	fig, err := WindowSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	window, wave := "PVFS2 window", "PVFS2 wave"
	anyWin := false
	for _, w := range windowSweepSizes {
		wv, bv := fig.Value(window, w), fig.Value(wave, w)
		if wv < 0 || bv < 0 {
			t.Fatalf("missing point at window %d: window=%.1f wave=%.1f", w, wv, bv)
		}
		// The window schedule issues everything the wave schedule does, no
		// later; a tiny tolerance absorbs float rounding in MB/s.
		if wv < bv*0.999 {
			t.Errorf("window %d: sliding window (%.2f MB/s) below waves (%.2f MB/s)", w, wv, bv)
		}
		if wv > bv*1.01 {
			anyWin = true
		}
	}
	if !anyWin {
		t.Error("sliding window never measurably beat waves — the sweep is vacuous")
	}
	if w1, b1 := fig.Value(window, 1), fig.Value(wave, 1); w1 != b1 {
		t.Errorf("window 1 should degenerate to the wave schedule: %.2f vs %.2f", w1, b1)
	}

	again, err := WindowSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig, again) {
		t.Errorf("window sweep not deterministic:\n%v\nvs\n%v", fig, again)
	}
}
