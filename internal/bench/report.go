package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dpnfs/internal/metrics"
	"dpnfs/internal/rpc"
)

// Report is the machine-readable outcome of a figure run: the regenerated
// series plus, per figure, a snapshot of the metrics registry that
// accumulated across every cluster of the sweep.  dpnfs-bench -report
// writes one of these as JSON (BENCH_*.json), giving figure runs a perf
// trajectory that tooling can diff across commits.
type Report struct {
	// Paper identifies the source evaluation these figures reproduce.
	Paper string `json:"paper"`
	// Scale is the data-size factor the run used (1.0 = paper sizes).
	Scale float64 `json:"scale"`
	// Transport is the cluster wiring ("sim" or "tcp").
	Transport string `json:"transport"`
	// Figures holds one entry per generated figure, in run order.
	Figures []FigureReport `json:"figures"`
}

// FigureReport is one figure's series plus its sweep-wide metrics.
type FigureReport struct {
	Figure
	// Metrics is the registry snapshot taken after the figure's sweep
	// completed; nil when the run did not collect metrics.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// PaperID names the reproduced evaluation in reports.
const PaperID = "Hildebrand-Honeyman-HPDC07-Direct-pNFS"

// NewReport starts an empty report for the options.
func NewReport(opt Options) *Report {
	transport := opt.Transport
	if transport == "" {
		transport = "sim"
	}
	scale := opt.Scale
	if scale <= 0 {
		scale = 1.0
	}
	return &Report{Paper: PaperID, Scale: scale, Transport: string(transport)}
}

// Add generates figure id with a fresh shared registry, appends the result
// (series + metrics snapshot) to the report, and returns the figure for
// printing.  Unknown ids fail loudly.
func (r *Report) Add(id string, opt Options) (Figure, error) {
	gen, ok := All[id]
	if !ok {
		return Figure{}, fmt.Errorf("bench: unknown figure %q (known: %v)", id, IDs)
	}
	opt.Metrics = metrics.NewRegistry()
	borrowed0, avoided0 := rpc.BufCounters()
	fig, err := gen(opt)
	if err != nil {
		return fig, err
	}
	// The zero-copy counters are process-wide (the frame pool is shared by
	// every cluster), so fold this figure's delta into its snapshot as
	// gauges — the report then records how much of the figure's traffic
	// rode the borrow path.
	borrowed1, avoided1 := rpc.BufCounters()
	opt.Metrics.Gauge("rpc_buf_borrowed_total",
		"Bytes decoded by borrowing pooled frames during this figure (zero-copy reads).").
		Set(int64(borrowed1 - borrowed0))
	opt.Metrics.Gauge("rpc_buf_copies_avoided_total",
		"Payload copies avoided by frame borrowing during this figure.").
		Set(int64(avoided1 - avoided0))
	snap := opt.Metrics.Snapshot()
	r.Figures = append(r.Figures, FigureReport{Figure: fig, Metrics: &snap})
	return fig, nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (the -report=out.json flag).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses a report written by WriteJSON/WriteFile.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}
