package bench

import (
	"reflect"
	"testing"

	"dpnfs/internal/cluster"
	"dpnfs/internal/metrics"
)

// TestFigureDeterminism pins the package's seed-threading rule (see the
// package doc): two runs of the same figure with the same options — and,
// for the degraded figure, the same fault plan — produce identical Figure
// values.  Any wall-clock or global-RNG leakage into the simulated path
// breaks this immediately.
func TestFigureDeterminism(t *testing.T) {
	archs := []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2}

	opt := Options{Scale: 0.02, Clients: []int{2}, Archs: archs}
	a, err := Fig6a(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6a(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig6a not deterministic:\n%v\nvs\n%v", a, b)
	}

	d1, err := Degraded(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Degraded(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("Degraded figure not deterministic:\n%v\nvs\n%v", d1, d2)
	}
	// The degraded figure must actually show degradation and recovery:
	// during < before, and after recovers to at least half of before.
	for _, s := range d1.Series {
		before, during, after := s.Points[0].Y, s.Points[1].Y, s.Points[2].Y
		if before <= 0 {
			t.Errorf("%s: no baseline throughput", s.Label)
		}
		if during >= before/2 {
			t.Errorf("%s: outage did not degrade throughput (before %.1f, during %.1f)", s.Label, before, during)
		}
		if after < before/2 {
			t.Errorf("%s: throughput did not recover after restart (before %.1f, after %.1f)", s.Label, before, after)
		}
	}

	// The recovery figure — the same schedule on the WAL backend, where the
	// crash also wipes the victim's store image — obeys the same rules.
	// Recovery itself errors out if no journal records were replayed.
	r1, err := Recovery(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Recovery(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("Recovery figure not deterministic:\n%v\nvs\n%v", r1, r2)
	}
	for _, s := range r1.Series {
		before, after := s.Points[0].Y, s.Points[2].Y
		if before <= 0 {
			t.Errorf("%s: no baseline throughput on the WAL backend", s.Label)
		}
		if after < before/2 {
			t.Errorf("%s: throughput did not recover after WAL replay (before %.1f, after %.1f)", s.Label, before, after)
		}
	}
}

// TestRebalanceFigureDeterminism extends the same-seed rule to the
// elastic-membership figure: two runs produce identical series and identical
// migration counters, the run is non-vacuous (bytes actually migrated), and
// the figure's contract holds — joining a node never leaves steady-state
// foreground throughput below the pre-join baseline.
func TestRebalanceFigureDeterminism(t *testing.T) {
	archs := []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2}
	run := func() (Figure, []float64) {
		reg := metrics.NewRegistry()
		fig, err := Rebalance(Options{Scale: 0.05, Archs: archs, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		return fig, []float64{
			counterSum(reg, "rebalance_bytes_total"),
			counterSum(reg, "rebalance_files_total"),
			counterSum(reg, "rebalance_reissued_chunks_total"),
		}
	}
	fig1, mig1 := run()
	fig2, mig2 := run()
	if !reflect.DeepEqual(fig1, fig2) {
		t.Errorf("Rebalance figure not deterministic:\n%v\nvs\n%v", fig1, fig2)
	}
	if !reflect.DeepEqual(mig1, mig2) {
		t.Errorf("migration counters not deterministic: %v vs %v", mig1, mig2)
	}
	if mig1[0] < 1 || mig1[1] < 1 {
		t.Errorf("vacuous run: migrated %v bytes across %v files", mig1[0], mig1[1])
	}
	// A healthy join re-issues nothing: the fast first pass moves it all.
	if mig1[2] != 0 {
		t.Errorf("healthy join re-issued %v chunks, want 0", mig1[2])
	}
	for _, s := range fig1.Series {
		before, after := s.Points[0].Y, s.Points[2].Y
		if before <= 0 {
			t.Errorf("%s: no pre-join baseline throughput", s.Label)
		}
		if after < before {
			t.Errorf("%s: post-join steady state %.1f MB/s below the pre-join baseline %.1f", s.Label, after, before)
		}
	}
}

// TestTailFigureDeterminism extends the same-seed rule to the tail-latency
// figure: two runs produce byte-identical series AND byte-identical hedge
// counters (launch/win/cancel totals come from seeded coin flips in the
// simulated network, so any nondeterminism in the hedge machinery shows up
// here).  It also asserts the run is non-vacuous — the degraded phases
// actually launched hedges — and, per the determinism rule, that the hedge
// straggler timers never touched the wall clock on the fabric transport.
func TestTailFigureDeterminism(t *testing.T) {
	archs := []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2}
	run := func() (Figure, []float64) {
		reg := metrics.NewRegistry()
		fig, err := Tail(Options{Scale: 0.02, Archs: archs, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		return fig, []float64{
			counterSum(reg, "ioengine_hedges_launched_total"),
			counterSum(reg, "ioengine_hedges_won_total"),
			counterSum(reg, "ioengine_hedges_cancelled_total"),
			counterSum(reg, "ioengine_wallclock_timers_total"),
		}
	}
	fig1, hedges1 := run()
	fig2, hedges2 := run()
	if !reflect.DeepEqual(fig1, fig2) {
		t.Errorf("Tail figure not deterministic:\n%v\nvs\n%v", fig1, fig2)
	}
	if !reflect.DeepEqual(hedges1, hedges2) {
		t.Errorf("hedge counters not deterministic: %v vs %v", hedges1, hedges2)
	}
	if hedges1[0] < 1 {
		t.Error("vacuous run: no hedges launched across the hedged clusters")
	}
	if hedges1[1]+hedges1[2] != hedges1[0] {
		t.Errorf("hedge counters do not reconcile: launched=%v won=%v cancelled=%v",
			hedges1[0], hedges1[1], hedges1[2])
	}
	// Regression (sim-determinism rule): a tail run on the fabric transport
	// must arm zero wall-clock straggler timers — hedge timing is virtual.
	if hedges1[3] != 0 {
		t.Errorf("fabric tail run armed %v wall-clock timers, want 0", hedges1[3])
	}
	// The figure's contract: hedging never worsens the degraded tail.  Match
	// each arch's hedged/unhedged degraded series and compare p999 (the last
	// point in each series).
	for _, arch := range archs {
		unhedged := fig1.Value(archLabel(arch)+" unhedged degraded", 999)
		hedged := fig1.Value(archLabel(arch)+" hedged degraded", 999)
		if unhedged <= 0 || hedged <= 0 {
			t.Errorf("%s: missing degraded p999 series (unhedged %v, hedged %v)", archLabel(arch), unhedged, hedged)
			continue
		}
		if hedged > unhedged {
			t.Errorf("%s: hedged degraded p999 %.1fms worse than unhedged %.1fms", archLabel(arch), hedged, unhedged)
		}
	}
}

// TestIntegrityFigureDeterminism extends the same-seed rule to the
// data-integrity figure: two runs produce identical series and identical
// corruption/repair counters, and the run is non-vacuous — rot was injected,
// foreground reads repaired at least one extent, and the background scrub
// scanned the stores.  (The workload itself verifies every delivered byte,
// so a figure that returns at all delivered zero corrupt bytes.)
func TestIntegrityFigureDeterminism(t *testing.T) {
	archs := []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2}
	run := func() (Figure, []float64) {
		reg := metrics.NewRegistry()
		fig, err := Integrity(Options{Scale: 0.05, Archs: archs, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		return fig, []float64{
			counterSum(reg, "faults_injected_total"),
			counterSum(reg, "nfs_client_corrupt_reads_total") + counterSum(reg, "pvfs_client_corrupt_reads_total"),
			counterSum(reg, "nfs_client_read_repairs_total") + counterSum(reg, "pvfs_client_read_repairs_total"),
			counterSum(reg, "scrub_extents_total"),
			counterSum(reg, "scrub_errors_found_total"),
			counterSum(reg, "scrub_repaired_total"),
		}
	}
	fig1, c1 := run()
	fig2, c2 := run()
	if !reflect.DeepEqual(fig1, fig2) {
		t.Errorf("Integrity figure not deterministic:\n%v\nvs\n%v", fig1, fig2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("integrity counters not deterministic: %v vs %v", c1, c2)
	}
	if c1[0] < 1 || c1[2] < 1 || c1[3] < 1 {
		t.Errorf("vacuous run: injected=%v repairs=%v scanned=%v", c1[0], c1[2], c1[3])
	}
	// Detection reconciles: every found corruption was repaired by someone.
	if c1[1] < c1[2] {
		t.Errorf("more repairs than detections: detected=%v repaired=%v", c1[1], c1[2])
	}
	for _, s := range fig1.Series {
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s: vacuous phase %d", s.Label, p.X)
			}
		}
	}
}
