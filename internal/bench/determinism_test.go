package bench

import (
	"reflect"
	"testing"

	"dpnfs/internal/cluster"
)

// TestFigureDeterminism pins the package's seed-threading rule (see the
// package doc): two runs of the same figure with the same options — and,
// for the degraded figure, the same fault plan — produce identical Figure
// values.  Any wall-clock or global-RNG leakage into the simulated path
// breaks this immediately.
func TestFigureDeterminism(t *testing.T) {
	archs := []cluster.Arch{cluster.ArchDirectPNFS, cluster.ArchPVFS2}

	opt := Options{Scale: 0.02, Clients: []int{2}, Archs: archs}
	a, err := Fig6a(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6a(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig6a not deterministic:\n%v\nvs\n%v", a, b)
	}

	d1, err := Degraded(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Degraded(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("Degraded figure not deterministic:\n%v\nvs\n%v", d1, d2)
	}
	// The degraded figure must actually show degradation and recovery:
	// during < before, and after recovers to at least half of before.
	for _, s := range d1.Series {
		before, during, after := s.Points[0].Y, s.Points[1].Y, s.Points[2].Y
		if before <= 0 {
			t.Errorf("%s: no baseline throughput", s.Label)
		}
		if during >= before/2 {
			t.Errorf("%s: outage did not degrade throughput (before %.1f, during %.1f)", s.Label, before, during)
		}
		if after < before/2 {
			t.Errorf("%s: throughput did not recover after restart (before %.1f, after %.1f)", s.Label, before, after)
		}
	}

	// The recovery figure — the same schedule on the WAL backend, where the
	// crash also wipes the victim's store image — obeys the same rules.
	// Recovery itself errors out if no journal records were replayed.
	r1, err := Recovery(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Recovery(Options{Archs: archs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("Recovery figure not deterministic:\n%v\nvs\n%v", r1, r2)
	}
	for _, s := range r1.Series {
		before, after := s.Points[0].Y, s.Points[2].Y
		if before <= 0 {
			t.Errorf("%s: no baseline throughput on the WAL backend", s.Label)
		}
		if after < before/2 {
			t.Errorf("%s: throughput did not recover after WAL replay (before %.1f, after %.1f)", s.Label, before, after)
		}
	}
}
