package bench

import (
	"fmt"
	"time"

	"dpnfs/internal/cluster"
	"dpnfs/internal/workload"
)

// Sweep-figure shape: each (arch, N) point mounts sweepMounts real clients
// and multiplexes N logical clients over them as Poisson arrival streams
// (workload.OpenLoop), so the 10k-client point costs 10k arrivals per
// second of window, not 10k mounted clients.
// sweepBlock doubles as the cluster's RSize: the NFS client rounds cold
// reads out to RSize chunks, so any smaller request would be silently
// amplified and the offered-load axis would lie.  At 256 KB the offered
// load spans ~64 MB/s (64 clients, loafing) to ~10 GB/s (10k clients, an
// order of magnitude past the backend), so the sweep crosses the knee.
const (
	sweepMounts        = 8
	sweepRatePerClient = 4.0       // reads/sec per logical client
	sweepBlock         = 256 << 10 // per-read block size == RSize
	sweepSeed          = 1807      // arrival-schedule seed (per-point offset added)
)

// sweepClients is the default logical-client axis: the 64 → 10k open-loop
// scaling sweep.
var sweepClients = []int{64, 1000, 10000}

// sweepMetrics are the per-point series each architecture contributes.
var sweepMetrics = []struct {
	name string
	y    func(workload.OpenLoopResult) float64
}{
	{"MB/s", workload.OpenLoopResult.ThroughputMBs},
	{"occupancy", func(r workload.OpenLoopResult) float64 { return r.Occupancy }},
	{"p50 ms", func(r workload.OpenLoopResult) float64 { return r.P50 * 1e3 }},
	{"p99 ms", func(r workload.OpenLoopResult) float64 { return r.P99 * 1e3 }},
	{"p999 ms", func(r workload.OpenLoopResult) float64 { return r.P999 * 1e3 }},
}

// Sweep is the repository's open-loop client-scaling figure (not from the
// paper): every architecture driven from a light 64-logical-client load to
// a saturating 10,000, recording completed throughput, mean I/O-engine
// window occupancy, and arrival-to-completion latency percentiles at each
// point.  X is the logical client count; each architecture contributes one
// series per metric.  Unlike the closed-loop figures, offered load here is
// independent of completions, so past the knee the latency percentiles
// grow with queue depth instead of throughput flattening silently.
//
// Options.Clients overrides the logical-client axis (not the mount count,
// which is fixed at sweepMounts); Options.Scale scales the per-mount file
// size and the arrival window.  Requires the sim transport: latencies and
// schedules are virtual-time quantities.
func Sweep(opt Options) (Figure, error) {
	opt = opt.withDefaults(sweepClients, cluster.Archs)
	if opt.Transport == cluster.TransportTCP {
		return Figure{}, fmt.Errorf("bench: the sweep figure requires the sim transport")
	}
	window := time.Duration(float64(2*time.Second) * opt.Scale)
	if window < 250*time.Millisecond {
		window = 250 * time.Millisecond
	}
	fig := Figure{
		ID:     "sweep",
		Title:  "open-loop client scaling, 64 → 10k logical clients",
		XLabel: "logical clients",
		YLabel: "MB/s, mean window occupancy, latency ms (per series)",
	}
	for _, arch := range opt.Archs {
		series := make([]Series, len(sweepMetrics))
		for mi, met := range sweepMetrics {
			series[mi].Label = archLabel(arch) + " " + met.name
		}
		for _, n := range opt.Clients {
			cl := newCluster(opt, cluster.Config{Arch: arch, Clients: sweepMounts, RSize: sweepBlock})
			res, err := workload.OpenLoop(cl, workload.OpenLoopConfig{
				LogicalClients: n,
				RatePerClient:  sweepRatePerClient,
				Block:          sweepBlock,
				FileSize:       scaleBytes(8<<20, opt.Scale),
				Window:         window,
				Seed:           sweepSeed + int64(n),
			})
			cl.Close()
			if err != nil {
				return Figure{}, fmt.Errorf("sweep %s n=%d: %w", arch, n, err)
			}
			if res.Reads == 0 {
				return Figure{}, fmt.Errorf("sweep %s n=%d: vacuous run, no reads completed", arch, n)
			}
			for mi, met := range sweepMetrics {
				series[mi].Points = append(series[mi].Points, Point{X: n, Y: met.y(res)})
			}
		}
		fig.Series = append(fig.Series, series...)
	}
	return fig, nil
}
