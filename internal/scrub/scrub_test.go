package scrub

import (
	"bytes"
	"fmt"
	"testing"

	"dpnfs/internal/metrics"
	"dpnfs/internal/rpc"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
)

// twin builds two byte-identical mem stores — the scanned store and its
// "replica" — holding files files of size bytes each.
func twin(t *testing.T, files int, size int64) (*mem.Store, *mem.Store, [][]byte) {
	t.Helper()
	a, b := mem.New(), mem.New()
	var contents [][]byte
	for i := 0; i < files; i++ {
		c := make([]byte, size)
		for j := range c {
			c[j] = byte(j + i*31 + 7)
		}
		contents = append(contents, c)
		for _, s := range []*mem.Store{a, b} {
			at, err := s.Create(s.Root(), fmt.Sprintf("f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.WriteAt(at.ID, 0, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a, b, contents
}

// fetchFrom repairs out of the replica store.  Stores built by twin assign
// identical FileIDs in creation order, mirroring how the metadata server
// allocates identical datafile handles on every daemon.
func fetchFrom(replica *mem.Store) Fetch {
	return func(_ *rpc.Ctx, id store.FileID, off int64, b []byte) (int, error) {
		return replica.ReadAt(id, off, b)
	}
}

func TestPassDetectsAndRepairs(t *testing.T) {
	a, b, contents := twin(t, 3, 160<<10)
	if !a.CorruptChunk(5) {
		t.Fatal("nothing to corrupt")
	}
	s := New(Config{Node: "io0", Store: a, Fetch: fetchFrom(b), Metrics: metrics.NewRegistry()})
	res, err := s.Pass(&rpc.Ctx{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extents == 0 || res.Found != 1 || res.Repaired != 1 {
		t.Fatalf("pass result %+v, want 1 found and 1 repaired", res)
	}
	// The store is clean again: a second pass finds nothing, and every
	// byte reads back identical to the original content.
	res, err = s.Pass(&rpc.Ctx{})
	if err != nil || res.Found != 0 {
		t.Fatalf("second pass %+v, %v — repair did not stick", res, err)
	}
	for i, want := range contents {
		at, err := a.LookupPath(fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if _, err := a.ReadAt(at.ID, 0, got); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("file %d after repair: %v", i, err)
		}
	}
}

func TestDetectOnlyWithoutFetch(t *testing.T) {
	a, _, _ := twin(t, 2, 128<<10)
	if !a.CorruptChunk(9) {
		t.Fatal("nothing to corrupt")
	}
	s := New(Config{Node: "io0", Store: a, Metrics: metrics.NewRegistry()})
	res, err := s.Pass(&rpc.Ctx{})
	if err != nil || res.Found != 1 || res.Repaired != 0 {
		t.Fatalf("detect-only pass %+v, %v — want found=1 repaired=0", res, err)
	}
	// Without a repair source the rot persists: the next pass finds the
	// same chunk again rather than losing track of it.
	res, err = s.Pass(&rpc.Ctx{})
	if err != nil || res.Found != 1 {
		t.Fatalf("second detect-only pass %+v, %v", res, err)
	}
}

func TestFailedFetchLeavesChunkForNextPass(t *testing.T) {
	a, _, _ := twin(t, 1, 128<<10)
	if !a.CorruptChunk(3) {
		t.Fatal("nothing to corrupt")
	}
	fail := func(_ *rpc.Ctx, _ store.FileID, _ int64, _ []byte) (int, error) {
		return 0, fmt.Errorf("no live replica")
	}
	s := New(Config{Node: "io0", Store: a, Fetch: fail, Metrics: metrics.NewRegistry()})
	res, err := s.Pass(&rpc.Ctx{})
	if err != nil || res.Found != 1 || res.Repaired != 0 {
		t.Fatalf("pass with failing fetch %+v, %v", res, err)
	}
}

// Identically seeded setups produce identical pass reports: the walk order,
// chunking and victim selection are all deterministic, which is what lets
// the integrity figure replay byte-identically.
func TestPassDeterministic(t *testing.T) {
	results := make([]Result, 2)
	for i := range results {
		a, b, _ := twin(t, 4, 200<<10)
		if !a.CorruptChunk(11) {
			t.Fatal("nothing to corrupt")
		}
		s := New(Config{Node: "io0", Store: a, Fetch: fetchFrom(b), Metrics: metrics.NewRegistry()})
		res, err := s.Pass(&rpc.Ctx{})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if results[0] != results[1] {
		t.Fatalf("replayed pass diverged: %+v vs %+v", results[0], results[1])
	}
}
