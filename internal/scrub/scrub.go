// Package scrub implements the background data-integrity scanner: it walks
// one node's store, re-reads every materialized extent so the per-chunk
// block checksums are verified (store/mem "Block checksums",
// docs/BACKENDS.md), and rewrites corrupt extents with good bytes fetched
// from a replica when the cluster runs a replicated aggregation.
//
// Latent corruption — bit rot that lands on a block nobody is currently
// reading — is invisible to the foreground integrity machinery until an
// application read trips over it, possibly after the last good replica has
// also rotted.  The scrubber bounds that exposure window: every pass visits
// every chunk, so rot is found and repaired at scrub cadence rather than at
// application-read cadence.
//
// Scan I/O is deliberately second-class: each chunk verification runs
// through a private I/O engine under ioengine.Background, and the pass is
// paced to Config.RateBPS of verified bytes per (virtual) second, so a
// scrub never competes with foreground traffic for more than the background
// share of anything.
package scrub

import (
	"errors"
	"fmt"

	"dpnfs/internal/ioengine"
	"dpnfs/internal/metrics"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/stripe"
)

// Source is the slice of a store the scrubber needs: deterministic
// namespace enumeration, materialized-extent maps, and verified reads.
// All three shipped backends satisfy it (store/mem natively, store/wal and
// store/cached by forwarding to their materialized image).
type Source interface {
	Walk(fn func(dir store.FileID, name string, at store.Attr) error) error
	Extents(id store.FileID) ([]mem.Extent, error)
	ReadAt(id store.FileID, off int64, b []byte) (int, error)
	WriteAt(id store.FileID, off int64, b []byte) (int64, error)
}

// Fetch reads good bytes for (id, off) from a replica of this node's
// store, filling b and returning the byte count.  Replicas hold
// byte-identical stripe objects at identical offsets (stripe.Replicated),
// so the same id/off addresses the same logical bytes everywhere.  A Fetch
// error means no live replica could supply the range; the chunk stays
// corrupt and is retried on the next pass.
type Fetch func(ctx *rpc.Ctx, id store.FileID, off int64, b []byte) (int, error)

// DefaultChunk is the scan granularity: one store chunk, so each
// verification read maps onto exactly one block checksum.
const DefaultChunk = 64 << 10

// Config wires a Scrubber to one node's store.
type Config struct {
	// Node names the scanned node (metric label, engine name prefix).
	Node string
	// Store is the node's content store.
	Store Source
	// Fetch supplies replica bytes for repair; nil makes the scrubber
	// detect-only (unreplicated aggregations have nowhere to repair from).
	Fetch Fetch
	// ChunkSize is the scan read size (0 = DefaultChunk).
	ChunkSize int64
	// RateBPS bounds verified bytes per virtual second (0 = unpaced).
	// Pacing needs a simulation clock; over real transports the engine's
	// background share is the only throttle.
	RateBPS int64
	// Metrics is the shared observability registry; nil discards.
	Metrics *metrics.Registry
}

// Result summarizes one pass.
type Result struct {
	Extents  int // chunks whose checksums were verified
	Found    int // chunks that failed verification
	Repaired int // chunks rewritten from a replica and re-verified clean
}

// Scrubber scans one node's store.  Pass is not safe for concurrent calls
// on the same Scrubber (the scratch buffers are shared); run passes
// sequentially, as the cluster driver does.
type Scrubber struct {
	cfg    Config
	engine *ioengine.Engine

	scanned  *metrics.Counter
	found    *metrics.Counter
	repaired *metrics.Counter

	scratch []byte
	good    []byte
}

// New returns a scrubber over cfg with defaults applied.
func New(cfg Config) *Scrubber {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunk
	}
	name := cfg.Node
	if name == "" {
		name = "scrub"
	}
	return &Scrubber{
		cfg: cfg,
		// MaxFlight 1: the scan is sequential by design — pacing a sliding
		// window would let a burst of chunk reads land ahead of the sleep.
		engine: ioengine.New(ioengine.Config{
			Name: name + "/scrub", Issuer: "scrub", MaxFlight: 1,
			Metrics: cfg.Metrics,
		}),
		scanned: cfg.Metrics.CounterVec("scrub_extents_total",
			"Extent chunks whose block checksums the scrubber verified, by node.",
			"node").With(name),
		found: cfg.Metrics.CounterVec("scrub_errors_found_total",
			"Chunks that failed checksum verification during a scrub pass, by node.",
			"node").With(name),
		repaired: cfg.Metrics.CounterVec("scrub_repaired_total",
			"Corrupt chunks rewritten from a replica and re-verified clean, by node.",
			"node").With(name),
	}
}

// Node reports which node's store this scrubber scans.
func (s *Scrubber) Node() string { return s.cfg.Node }

// files enumerates every regular file in deterministic Walk order.
func (s *Scrubber) files() ([]store.FileID, error) {
	var ids []store.FileID
	err := s.cfg.Store.Walk(func(_ store.FileID, _ string, at store.Attr) error {
		if !at.IsDir {
			ids = append(ids, at.ID)
		}
		return nil
	})
	return ids, err
}

// Pass scans every materialized chunk of every file once, repairing what it
// can.  The walk order, chunking, and pacing are all deterministic, so a
// pass is reproducible under seed replay.  Errors other than checksum
// failures (a crashed store, a failed walk) abort the pass; checksum
// failures never do — finding them is the job.
func (s *Scrubber) Pass(ctx *rpc.Ctx) (Result, error) {
	ids, err := s.files()
	if err != nil {
		return Result{}, fmt.Errorf("scrub %s: walk: %w", s.cfg.Node, err)
	}
	var res Result
	for _, id := range ids {
		exts, err := s.cfg.Store.Extents(id)
		if err != nil {
			return res, fmt.Errorf("scrub %s: extents of file %d: %w", s.cfg.Node, id, err)
		}
		reqs := s.chunked(exts)
		if len(reqs) == 0 {
			continue
		}
		id := id
		err = s.engine.RunWith(ctx, ioengine.RunOpts{Class: ioengine.Background}, reqs,
			func(ctx *rpc.Ctx, r stripe.Extent) error {
				return s.scanChunk(ctx, id, r, &res)
			})
		if err != nil {
			return res, fmt.Errorf("scrub %s: file %d: %w", s.cfg.Node, id, err)
		}
	}
	if res.Repaired > 0 {
		// Repairs went through WriteAt; journaling backends stage them like
		// any other write, so make them durable before reporting success.
		if sy, ok := s.cfg.Store.(store.Syncer); ok {
			var p *sim.Proc
			if ctx != nil {
				p = ctx.P
			}
			if err := sy.Sync(p); err != nil {
				return res, fmt.Errorf("scrub %s: sync repairs: %w", s.cfg.Node, err)
			}
		}
	}
	return res, nil
}

// chunked splits a file's materialized extents into ChunkSize-aligned scan
// requests (Dev is unused; the scrubber owns exactly one store).
func (s *Scrubber) chunked(exts []mem.Extent) []stripe.Extent {
	var reqs []stripe.Extent
	for _, e := range exts {
		for off, end := e.Off, e.Off+e.Len; off < end; {
			n := s.cfg.ChunkSize - off%s.cfg.ChunkSize
			if off+n > end {
				n = end - off
			}
			reqs = append(reqs, stripe.Extent{Off: off, Len: n})
			off += n
		}
	}
	return reqs
}

// scanChunk verifies one chunk and repairs it if corrupt and repairable.
func (s *Scrubber) scanChunk(ctx *rpc.Ctx, id store.FileID, r stripe.Extent, res *Result) error {
	if int64(cap(s.scratch)) < r.Len {
		s.scratch = make([]byte, r.Len)
	}
	buf := s.scratch[:r.Len]
	res.Extents++
	s.scanned.Inc()
	_, err := s.cfg.Store.ReadAt(id, r.Off, buf)
	s.pace(ctx, r.Len)
	if err == nil {
		return nil
	}
	if !errors.Is(err, store.ErrCorrupt) {
		return err
	}
	res.Found++
	s.found.Inc()
	s.repair(ctx, id, r, res)
	return nil
}

// repair rewrites one corrupt chunk from a replica, best-effort: any
// failure leaves the chunk for the next pass (or for a foreground
// read-repair) rather than failing the scan.
func (s *Scrubber) repair(ctx *rpc.Ctx, id store.FileID, r stripe.Extent, res *Result) {
	if s.cfg.Fetch == nil {
		return
	}
	if int64(cap(s.good)) < r.Len {
		s.good = make([]byte, r.Len)
	}
	buf := s.good[:r.Len]
	n, err := s.cfg.Fetch(ctx, id, r.Off, buf)
	if err != nil || int64(n) < r.Len {
		return
	}
	if _, err := s.cfg.Store.WriteAt(id, r.Off, buf[:n]); err != nil {
		return
	}
	// The write resealed the block checksum over the replica's bytes;
	// re-read so "repaired" means verified clean, not merely rewritten.
	if _, err := s.cfg.Store.ReadAt(id, r.Off, s.scratch[:r.Len]); err != nil {
		return
	}
	res.Repaired++
	s.repaired.Inc()
}

// pace sleeps off the virtual time the just-verified bytes are worth under
// RateBPS.  Only simulated passes are paced; xdr.Checksum verification
// itself is free in virtual time, so the sleep is the entire cost model.
func (s *Scrubber) pace(ctx *rpc.Ctx, n int64) {
	if s.cfg.RateBPS <= 0 || ctx == nil || ctx.P == nil {
		return
	}
	d := sim.Duration(float64(n) / float64(s.cfg.RateBPS) * 1e9)
	if d > 0 {
		ctx.P.Sleep(d)
	}
}
