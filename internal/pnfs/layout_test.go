package pnfs

import (
	"testing"
	"testing/quick"

	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

func sampleLayout() *FileLayout {
	return &FileLayout{
		Aggregation: AggRoundRobin,
		Params:      []int64{2 << 20},
		Devices:     []DeviceID{0, 1, 2, 3, 4, 5},
		FHs:         []uint64{9, 9, 9, 9, 9, 9},
		Direct:      true,
	}
}

func TestLayoutXDRRoundTrip(t *testing.T) {
	in := sampleLayout()
	var out FileLayout
	if err := xdr.Unmarshal(xdr.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Aggregation != in.Aggregation || out.Direct != in.Direct ||
		len(out.Devices) != len(in.Devices) || out.Params[0] != in.Params[0] {
		t.Fatalf("round trip mangled layout: %+v", out)
	}
	for i := range in.Devices {
		if out.Devices[i] != in.Devices[i] || out.FHs[i] != in.FHs[i] {
			t.Fatalf("device %d mangled", i)
		}
	}
}

func TestPropertyLayoutXDRRoundTrip(t *testing.T) {
	f := func(agg string, params []int64, ndev uint8, direct bool) bool {
		n := int(ndev%16) + 1
		in := &FileLayout{Aggregation: agg, Params: params, Direct: direct}
		for i := 0; i < n; i++ {
			in.Devices = append(in.Devices, DeviceID(i))
			in.FHs = append(in.FHs, uint64(i)*7+1)
		}
		var out FileLayout
		if err := xdr.Unmarshal(xdr.Marshal(in), &out); err != nil {
			return false
		}
		if out.Aggregation != in.Aggregation || out.Direct != in.Direct {
			return false
		}
		if len(out.Params) != len(in.Params) || len(out.Devices) != len(in.Devices) {
			return false
		}
		for i := range in.Params {
			if out.Params[i] != in.Params[i] {
				return false
			}
		}
		for i := range in.Devices {
			if out.Devices[i] != in.Devices[i] || out.FHs[i] != in.FHs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapperStandardSchemes(t *testing.T) {
	l := sampleLayout()
	m, err := l.Mapper()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDevices() != 6 || m.Name() != "round-robin" {
		t.Fatalf("unexpected mapper %s/%d", m.Name(), m.NumDevices())
	}

	cy := &FileLayout{
		Aggregation: AggCyclic,
		Params:      []int64{1 << 20, 0, 2, 4, 1, 3, 5},
		Devices:     []DeviceID{0, 1, 2, 3, 4, 5},
		FHs:         make([]uint64, 6),
	}
	m, err = cy.Mapper()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "cyclic" {
		t.Fatalf("cyclic mapper is %s", m.Name())
	}
}

func TestMapperPluggableDrivers(t *testing.T) {
	cases := []struct {
		agg    string
		params []int64
		ndev   int
		want   string
	}{
		{AggVariableStripe, []int64{4 << 10, 64 << 10, 1 << 20}, 3, "variable-stripe"},
		{AggReplicated, []int64{2, 1 << 20}, 6, "replicated+round-robin"},
		{AggHierarchical, []int64{4 << 20, 1 << 20, 2}, 6, "hierarchical"},
	}
	for _, c := range cases {
		l := &FileLayout{Aggregation: c.agg, Params: c.params,
			Devices: make([]DeviceID, c.ndev), FHs: make([]uint64, c.ndev)}
		m, err := l.Mapper()
		if err != nil {
			t.Fatalf("%s: %v", c.agg, err)
		}
		if m.Name() != c.want {
			t.Errorf("%s: mapper %q, want %q", c.agg, m.Name(), c.want)
		}
		// The driver must cover a byte range over all its devices.
		var ext []stripe.Extent = m.Map(0, 32<<20)
		var total int64
		for _, e := range ext {
			total += e.Len
		}
		if total < 32<<20 {
			t.Errorf("%s: map covered %d of %d bytes", c.agg, total, 32<<20)
		}
	}
}

func TestMapperErrors(t *testing.T) {
	cases := []*FileLayout{
		{Aggregation: AggRoundRobin, Params: nil, Devices: []DeviceID{0}, FHs: []uint64{1}},
		{Aggregation: "alien-scheme", Devices: []DeviceID{0}, FHs: []uint64{1}},
		{Aggregation: AggRoundRobin, Params: []int64{1 << 20}},                                                          // no devices
		{Aggregation: AggReplicated, Params: []int64{4, 1 << 20}, Devices: make([]DeviceID, 6), FHs: make([]uint64, 6)}, // 6 % 4 != 0
	}
	for i, l := range cases {
		if _, err := l.Mapper(); err == nil {
			t.Errorf("case %d: bad layout produced a mapper", i)
		}
	}
}

func TestValidateChecksParity(t *testing.T) {
	l := sampleLayout()
	l.FHs = l.FHs[:3]
	if err := l.Validate(); err == nil {
		t.Fatal("device/FH count mismatch not caught")
	}
}

func TestDuplicateDriverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate driver registration did not panic")
		}
	}()
	RegisterDriver(AggVariableStripe, nil)
}

func TestTranslate(t *testing.T) {
	native := NativeLayout{
		Aggregation:  AggRoundRobin,
		Params:       []int64{2 << 20},
		StorageNodes: []string{"io0", "io1", "io2"},
		ObjectHandle: 42,
	}
	devs := map[string]DeviceID{"io0": 0, "io1": 1, "io2": 2}
	l, err := Translate(native, func(n string) (DeviceID, bool) {
		d, ok := devs[n]
		return d, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Direct {
		t.Fatal("translated layout must be direct")
	}
	for i, want := range []DeviceID{0, 1, 2} {
		if l.Devices[i] != want || l.FHs[i] != 42 {
			t.Fatalf("device %d: %v/%v", i, l.Devices[i], l.FHs[i])
		}
	}
	// The translator preserves the aggregation untouched (it never
	// interprets parallel-FS internals).
	if l.Aggregation != native.Aggregation || l.Params[0] != native.Params[0] {
		t.Fatal("translator altered aggregation parameters")
	}
}

func TestTranslateUnknownNode(t *testing.T) {
	native := NativeLayout{
		Aggregation:  AggRoundRobin,
		Params:       []int64{1 << 20},
		StorageNodes: []string{"ghost"},
	}
	if _, err := Translate(native, func(string) (DeviceID, bool) { return 0, false }); err == nil {
		t.Fatal("unknown storage node not rejected")
	}
}

// Property: a translated direct layout maps byte ranges identically to the
// parallel file system's own mapper — the invariant Direct-pNFS relies on
// for direct access.
func TestPropertyTranslatedLayoutMatchesNative(t *testing.T) {
	f := func(offRaw uint32, lenRaw uint16) bool {
		native := NativeLayout{
			Aggregation:  AggRoundRobin,
			Params:       []int64{64 << 10},
			StorageNodes: []string{"a", "b", "c", "d"},
			ObjectHandle: 7,
		}
		l, err := Translate(native, func(n string) (DeviceID, bool) {
			return DeviceID(n[0] - 'a'), true
		})
		if err != nil {
			return false
		}
		lm, err := l.Mapper()
		if err != nil {
			return false
		}
		nm := stripe.NewRoundRobin(64<<10, 4)
		off, n := int64(offRaw%(1<<24)), int64(lenRaw)+1
		a, b := lm.Map(off, n), nm.Map(off, n)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
