// Package pnfs implements the pNFS layout machinery of NFSv4.1 plus the two
// Direct-pNFS additions the paper contributes (§4):
//
//   - the layout translator, which converts a parallel file system's native
//     layout into a pNFS file-based layout without interpreting file-system
//     specific information, and
//   - pluggable aggregation drivers, which let an unmodified client
//     understand unconventional striping schemes (variable stripe size,
//     replicated, hierarchical) beyond the two standard NFSv4.1 schemes
//     (round-robin and cyclic device patterns).
//
// A layout tells the client, for any byte range, which data server holds
// the bytes and under which file handle to address them.  Direct layouts
// describe the exact physical distribution, so clients send device-space
// offsets straight to the storage nodes; indirect (two/three-tier) layouts
// stripe logical offsets across intermediary data servers.
//
// # Device-ID stability
//
// A DeviceID names one data server for the lifetime of the file system, not
// a position in the current device list.  Under elastic membership
// (cluster join/drain) entries come and go from GETDEVICELIST, so an ID is
// allocated once per node and never reused after the node departs: a layout
// held across a membership change either still names live devices (and
// stays usable) or names departed ones (and fails with a device error that
// sends the client back through GETDEVICELIST + LAYOUTGET).  Layouts carry
// a generation number (FileLayout.Gen) so clients can tell a re-fetched
// layout with new geometry from a positional retry within the same
// geometry.
package pnfs

import (
	"fmt"

	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

// DeviceID names a data server within a file system's device list.
type DeviceID uint32

// DeviceInfo is one GETDEVLIST entry: the addressing information for a data
// server.
type DeviceInfo struct {
	ID   DeviceID
	Addr string // node name (simulation) or host:port (TCP demo)
}

// Aggregation scheme names carried in layouts.  RoundRobin and Cyclic are
// the NFSv4.1-standard schemes; the rest require a pluggable aggregation
// driver on the client (paper §4.3).
const (
	AggRoundRobin     = "round-robin"
	AggCyclic         = "cyclic"
	AggVariableStripe = "variable-stripe"
	AggReplicated     = "replicated"
	AggHierarchical   = "hierarchical"
)

// FileLayout is a pNFS file-based layout (paper §3.4): aggregation type and
// stripe size, data server identifiers, one file handle per data server,
// and policy parameters.
type FileLayout struct {
	// Aggregation names the scheme; Params are its geometry constants
	// (interpretation per scheme, see Mapper).
	Aggregation string
	Params      []int64
	// Devices lists the data servers in stripe order; FHs holds the file
	// handle valid on each.
	Devices []DeviceID
	FHs     []uint64
	// Direct reports that offsets in the layout's device space address the
	// storage objects themselves (Direct-pNFS).  When false, data servers
	// interpret logical file offsets (two/three-tier file-based pNFS).
	Direct bool
	// Gen is the layout generation: it increments whenever cluster
	// membership changes the file's geometry (devices added or drained).
	// Two layouts for the same file with equal Gen describe the same
	// geometry, so a device index from one is valid in the other; across
	// generations indexes are meaningless and clients must remap offsets
	// through the new layout's Mapper.
	Gen uint64
}

// Mapper instantiates the aggregation driver described by the layout.  The
// standard schemes need no driver registration; the unconventional ones are
// looked up in the driver registry.
func (l *FileLayout) Mapper() (stripe.Mapper, error) {
	n := len(l.Devices)
	if n == 0 {
		return nil, fmt.Errorf("pnfs: layout has no devices")
	}
	switch l.Aggregation {
	case AggRoundRobin:
		if len(l.Params) != 1 {
			return nil, fmt.Errorf("pnfs: round-robin wants 1 param, got %d", len(l.Params))
		}
		return stripe.NewRoundRobin(l.Params[0], n), nil
	case AggCyclic:
		if len(l.Params) < 2 {
			return nil, fmt.Errorf("pnfs: cyclic wants unit + order params")
		}
		order := make([]int, len(l.Params)-1)
		for i, v := range l.Params[1:] {
			order[i] = int(v)
		}
		return stripe.NewCyclic(l.Params[0], order), nil
	default:
		drv, ok := drivers[l.Aggregation]
		if !ok {
			return nil, fmt.Errorf("pnfs: no aggregation driver for %q", l.Aggregation)
		}
		return drv(l.Params, n)
	}
}

// Driver builds an aggregation mapper from layout params and device count.
type Driver func(params []int64, devices int) (stripe.Mapper, error)

var drivers = make(map[string]Driver)

// RegisterDriver installs a pluggable aggregation driver.  Drivers are
// registered at init time; duplicate names panic.
func RegisterDriver(name string, d Driver) {
	if _, dup := drivers[name]; dup {
		panic(fmt.Sprintf("pnfs: duplicate aggregation driver %q", name))
	}
	drivers[name] = d
}

func init() {
	RegisterDriver(AggVariableStripe, func(params []int64, devices int) (stripe.Mapper, error) {
		if len(params) != devices {
			return nil, fmt.Errorf("pnfs: variable-stripe wants %d sizes, got %d", devices, len(params))
		}
		return stripe.NewVariableStripe(params), nil
	})
	RegisterDriver(AggReplicated, func(params []int64, devices int) (stripe.Mapper, error) {
		if len(params) != 2 {
			return nil, fmt.Errorf("pnfs: replicated wants [copies, unit], got %d params", len(params))
		}
		copies := int(params[0])
		if copies <= 0 || devices%copies != 0 {
			return nil, fmt.Errorf("pnfs: %d devices not divisible into %d replicas", devices, copies)
		}
		return stripe.NewReplicated(stripe.NewRoundRobin(params[1], devices/copies), copies), nil
	})
	RegisterDriver(AggHierarchical, func(params []int64, devices int) (stripe.Mapper, error) {
		if len(params) != 3 {
			return nil, fmt.Errorf("pnfs: hierarchical wants [outer, inner, groups], got %d params", len(params))
		}
		groups := int(params[2])
		if groups <= 0 || devices%groups != 0 {
			return nil, fmt.Errorf("pnfs: %d devices not divisible into %d groups", devices, groups)
		}
		return stripe.NewHierarchical(params[0], params[1], groups, devices/groups), nil
	})
}

// MarshalXDR implements xdr.Marshaler.
func (l *FileLayout) MarshalXDR(e *xdr.Encoder) {
	e.String(l.Aggregation)
	e.Uint32(uint32(len(l.Params)))
	for _, p := range l.Params {
		e.Int64(p)
	}
	e.Uint32(uint32(len(l.Devices)))
	for i, d := range l.Devices {
		e.Uint32(uint32(d))
		e.Uint64(l.FHs[i])
	}
	e.Bool(l.Direct)
	e.Uint64(l.Gen)
}

// UnmarshalXDR implements xdr.Unmarshaler.
func (l *FileLayout) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if l.Aggregation, err = d.String(); err != nil {
		return err
	}
	np, err := d.Uint32()
	if err != nil {
		return err
	}
	if np > 4096 {
		return xdr.ErrTooLong
	}
	l.Params = make([]int64, np)
	for i := range l.Params {
		if l.Params[i], err = d.Int64(); err != nil {
			return err
		}
	}
	nd, err := d.Uint32()
	if err != nil {
		return err
	}
	if nd > 4096 {
		return xdr.ErrTooLong
	}
	l.Devices = make([]DeviceID, nd)
	l.FHs = make([]uint64, nd)
	for i := range l.Devices {
		v, err := d.Uint32()
		if err != nil {
			return err
		}
		l.Devices[i] = DeviceID(v)
		if l.FHs[i], err = d.Uint64(); err != nil {
			return err
		}
	}
	if l.Direct, err = d.Bool(); err != nil {
		return err
	}
	l.Gen, err = d.Uint64()
	return err
}

// Validate checks internal consistency (device/FH parity, instantiable
// aggregation).
func (l *FileLayout) Validate() error {
	if len(l.Devices) != len(l.FHs) {
		return fmt.Errorf("pnfs: %d devices but %d file handles", len(l.Devices), len(l.FHs))
	}
	_, err := l.Mapper()
	return err
}

// NativeLayout is what the layout translator consumes: the parallel file
// system's own description of a file's data placement, expressed only in
// protocol-neutral terms (the translator never interprets file-system
// internals, paper §4.2).
type NativeLayout struct {
	Aggregation string
	Params      []int64
	// StorageNodes lists the parallel FS storage nodes in device order.
	StorageNodes []string
	// ObjectHandle addresses the file's stripe objects on every node.
	ObjectHandle uint64
}

// Translate converts a parallel file system's native layout into a pNFS
// file-based layout whose devices are the NFSv4 servers co-located with the
// storage nodes.  devFor maps a storage node name to its pNFS device ID.
func Translate(n NativeLayout, devFor func(node string) (DeviceID, bool)) (*FileLayout, error) {
	out := &FileLayout{
		Aggregation: n.Aggregation,
		Params:      append([]int64(nil), n.Params...),
		Direct:      true,
	}
	for _, node := range n.StorageNodes {
		id, ok := devFor(node)
		if !ok {
			return nil, fmt.Errorf("pnfs: storage node %q has no pNFS data server", node)
		}
		out.Devices = append(out.Devices, id)
		out.FHs = append(out.FHs, n.ObjectHandle)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
