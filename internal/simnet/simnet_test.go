package simnet

import (
	"testing"
	"time"

	"dpnfs/internal/sim"
)

func twoNodes(bps float64) (*sim.Kernel, *Fabric, *Node, *Node) {
	k := sim.NewKernel(1)
	f := NewFabric(k)
	a := f.AddNode(NodeConfig{Name: "a", BytesPerSec: bps, Latency: 100 * time.Microsecond})
	b := f.AddNode(NodeConfig{Name: "b", BytesPerSec: bps, Latency: 100 * time.Microsecond})
	return k, f, a, b
}

func TestUncontendedTransferCost(t *testing.T) {
	k, f, a, b := twoNodes(Gigabit)
	var done sim.Time
	k.Go("xfer", func(p *sim.Proc) {
		done = f.Transfer(p, a, b, 1_250_000) // 10 ms at 1 Gb/s
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(10*time.Millisecond + 100*time.Microsecond)
	if done != want {
		t.Fatalf("transfer done at %v, want %v (no store-and-forward double count)", done, want)
	}
}

func TestTransferSharesSenderNIC(t *testing.T) {
	// Two concurrent 10 ms transfers out of the same node must serialize on
	// its transmit queue: second completes ~20 ms, not ~10 ms.
	k := sim.NewKernel(1)
	f := NewFabric(k)
	a := f.AddNode(NodeConfig{Name: "a", Latency: time.Microsecond})
	b := f.AddNode(NodeConfig{Name: "b", Latency: time.Microsecond})
	c := f.AddNode(NodeConfig{Name: "c", Latency: time.Microsecond})
	var t1, t2 sim.Time
	k.Go("x1", func(p *sim.Proc) { t1 = f.Transfer(p, a, b, 1_250_000) })
	k.Go("x2", func(p *sim.Proc) { t2 = f.Transfer(p, a, c, 1_250_000) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 >= t2 {
		t.Fatalf("FIFO order violated: %v >= %v", t1, t2)
	}
	if got := time.Duration(t2); got < 19*time.Millisecond {
		t.Fatalf("second transfer finished at %v; sender NIC not shared", got)
	}
}

func TestTransferSharesReceiverNIC(t *testing.T) {
	// Two senders into one receiver: receiver rx queue is the bottleneck.
	k := sim.NewKernel(1)
	f := NewFabric(k)
	a := f.AddNode(NodeConfig{Name: "a", Latency: time.Microsecond})
	b := f.AddNode(NodeConfig{Name: "b", Latency: time.Microsecond})
	dst := f.AddNode(NodeConfig{Name: "dst", Latency: time.Microsecond})
	var done [2]sim.Time
	k.Go("x1", func(p *sim.Proc) { done[0] = f.Transfer(p, a, dst, 1_250_000) })
	k.Go("x2", func(p *sim.Proc) { done[1] = f.Transfer(p, b, dst, 1_250_000) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	last := done[1]
	if time.Duration(last) < 19*time.Millisecond {
		t.Fatalf("receiver NIC not shared: last transfer at %v", time.Duration(last))
	}
}

func TestLoopbackBypassesNIC(t *testing.T) {
	k, f, a, _ := twoNodes(Gigabit)
	var done sim.Time
	k.Go("x", func(p *sim.Proc) {
		done = f.Transfer(p, a, a, 100<<20) // 100 MB loopback
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if time.Duration(done) > time.Millisecond {
		t.Fatalf("loopback transfer took %v; should not use NIC", time.Duration(done))
	}
	if a.NIC.TxBusy() != 0 {
		t.Fatal("loopback consumed NIC tx time")
	}
}

func TestSendDeliversMessage(t *testing.T) {
	k, f, a, b := twoNodes(Gigabit)
	var got Message
	k.Go("recv", func(p *sim.Proc) {
		got = b.Service("nfs").Recv(p).(Message)
	})
	k.Go("send", func(p *sim.Proc) {
		f.Send(p, a, b, "nfs", "hello", 1000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "hello" || got.From != a || got.Size != 1000 {
		t.Fatalf("bad message: %+v", got)
	}
}

func TestHundredMbpsIsTenTimesSlower(t *testing.T) {
	run := func(bps float64) time.Duration {
		k, f, a, b := twoNodes(bps)
		var done sim.Time
		k.Go("x", func(p *sim.Proc) { done = f.Transfer(p, a, b, 10_000_000) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(done)
	}
	g := run(Gigabit)
	fe := run(FastEther)
	ratio := float64(fe) / float64(g)
	if ratio < 9 || ratio > 11 {
		t.Fatalf("100 Mbps / 1 Gbps time ratio = %.2f, want ~10", ratio)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node name did not panic")
		}
	}()
	k := sim.NewKernel(1)
	f := NewFabric(k)
	f.AddNode(NodeConfig{Name: "a"})
	f.AddNode(NodeConfig{Name: "a"})
}

func TestUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node lookup did not panic")
		}
	}()
	f := NewFabric(sim.NewKernel(1))
	f.Node("ghost")
}

func TestLinkDegradeAddsDelay(t *testing.T) {
	k, f, a, b := twoNodes(Gigabit)
	b.SetLink(0, 5*time.Millisecond) // pure extra RTT, no loss
	var done sim.Time
	k.Go("xfer", func(p *sim.Proc) {
		done = f.Transfer(p, a, b, 1_250_000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ExtraRTT is round-trip inflation: each one-way transfer pays half.
	want := sim.Time(10*time.Millisecond + 100*time.Microsecond + 2500*time.Microsecond)
	if done != want {
		t.Fatalf("degraded transfer done at %v, want %v", time.Duration(done), time.Duration(want))
	}
	// Restoring the link removes the penalty.
	b.SetLink(0, 0)
	var again sim.Time
	k.Go("xfer2", func(p *sim.Proc) {
		start := p.Now()
		end := f.Transfer(p, a, b, 1_250_000)
		again = end - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if again != sim.Time(10*time.Millisecond+100*time.Microsecond) {
		t.Fatalf("restored transfer took %v", time.Duration(again))
	}
}

func TestLinkLossPaysRetransmitTimeout(t *testing.T) {
	// Full loss: every message pays exactly one RTO — and the penalty is
	// deterministic for a given kernel seed.
	k, f, a, b := twoNodes(Gigabit)
	b.SetLink(1.0, 0)
	var done sim.Time
	k.Go("xfer", func(p *sim.Proc) {
		done = f.Transfer(p, a, b, 1_250_000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(10*time.Millisecond + 100*time.Microsecond + RetransmitTimeout)
	if done != want {
		t.Fatalf("lossy transfer done at %v, want %v", time.Duration(done), time.Duration(want))
	}
}

func TestNodeDownFlag(t *testing.T) {
	k := sim.NewKernel(1)
	f := NewFabric(k)
	n := f.AddNode(NodeConfig{Name: "x"})
	if n.Down() {
		t.Fatal("fresh node reports down")
	}
	n.SetDown(true)
	if !n.Down() {
		t.Fatal("SetDown(true) not visible")
	}
	n.SetDown(false)
	if n.Down() {
		t.Fatal("SetDown(false) not visible")
	}
}
