// Package simnet models a cluster network on top of the sim kernel: named
// nodes with full-duplex network interfaces (bandwidth + latency), CPUs, and
// message delivery to named services.
//
// The transfer model is cut-through: a message of m bytes books m/bw of
// service on the sender's transmit queue and on the receiver's receive
// queue, with the receive stage starting no earlier than the first byte's
// arrival (transmit start + propagation latency).  An uncontended transfer
// therefore costs m/bw + latency, not 2·m/bw, while contention at either
// endpoint queues FIFO — exactly the bottleneck structure that shapes the
// paper's throughput curves.
//
// Paper mapping: the testbed network of §6.1 — gigabit Ethernet NICs
// (simnet.Gigabit) everywhere, with simnet.FastEther reproducing the
// 100 Mbps constrained-network experiment of Figure 6c.
package simnet

import (
	"fmt"
	"time"

	"dpnfs/internal/sim"
)

// Bandwidth constants in bytes per second.
const (
	Gigabit     = 125_000_000 // 1 Gb/s Ethernet payload rate
	FastEther   = 12_500_000  // 100 Mb/s Ethernet
	DefaultRTT  = 200 * time.Microsecond
	DefaultCore = 2
)

// RetransmitTimeout is the delay a message pays when a lossy link drops it:
// the discrete-event treatment of packet loss is the sender's retransmission
// timer, which turns loss probability into tail latency (Linux's 200 ms
// TCP RTO floor).  Fault plans set per-node loss via Node.SetLink.
const RetransmitTimeout = 200 * time.Millisecond

// NIC is one full-duplex network interface.
type NIC struct {
	BytesPerSec float64
	Latency     time.Duration // one-way propagation + per-message fixed cost
	tx          *sim.FIFOServer
	rx          *sim.FIFOServer
}

// TxBusy reports cumulative transmit service time (utilization statistics).
func (n *NIC) TxBusy() time.Duration { return n.tx.BusyTime() }

// RxBusy reports cumulative receive service time.
func (n *NIC) RxBusy() time.Duration { return n.rx.BusyTime() }

func (n *NIC) xmitTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / n.BytesPerSec * 1e9)
}

// Node is a machine in the simulated cluster.
type Node struct {
	Name     string
	NIC      *NIC
	CPU      *sim.KServer
	fabric   *Fabric
	services map[string]*sim.Chan

	// Fault-injection state (internal/faults).  Mutated only from
	// simulation processes, so no locking is needed: the kernel runs one
	// process at a time.
	down     bool
	loss     float64       // per-message drop probability on this NIC
	extraLat time.Duration // added one-way delay (half the SetLink RTT)
}

// SetDown marks the node crashed (unreachable) or restarted.  The rpc layer
// surfaces calls to a down node as retryable errors; in-flight work
// completes (the model is a node that stops accepting new requests, then
// reboots with its storage intact).
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// SetLink degrades (or, with zero values, restores) the node's link: loss
// is the probability a message pays RetransmitTimeout, extra is added
// round-trip delay — each one-way transfer through this node pays half, so
// a request/reply pair through a degraded node pays the full value once.
func (n *Node) SetLink(loss float64, extra time.Duration) {
	n.loss = loss
	n.extraLat = extra / 2
}

// Service returns (creating on demand) the inbox channel for a named
// service on this node, e.g. "nfs", "pvfs-io", "pvfs-meta".
func (n *Node) Service(name string) *sim.Chan {
	ch, ok := n.services[name]
	if !ok {
		ch = sim.NewChan(n.Name + "/" + name)
		n.services[name] = ch
	}
	return ch
}

// Fabric is the collection of nodes in one simulated cluster.
type Fabric struct {
	K     *sim.Kernel
	nodes map[string]*Node
}

// NewFabric returns an empty fabric on the given kernel.
func NewFabric(k *sim.Kernel) *Fabric {
	return &Fabric{K: k, nodes: make(map[string]*Node)}
}

// NodeConfig describes one machine.
type NodeConfig struct {
	Name        string
	BytesPerSec float64       // NIC bandwidth; 0 means Gigabit
	Latency     time.Duration // 0 means DefaultRTT/2
	Cores       int           // 0 means DefaultCore
}

// AddNode creates a node.  It panics if the name is already taken.
func (f *Fabric) AddNode(cfg NodeConfig) *Node {
	if _, dup := f.nodes[cfg.Name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", cfg.Name))
	}
	if cfg.BytesPerSec == 0 {
		cfg.BytesPerSec = Gigabit
	}
	if cfg.Latency == 0 {
		cfg.Latency = DefaultRTT / 2
	}
	if cfg.Cores == 0 {
		cfg.Cores = DefaultCore
	}
	n := &Node{
		Name: cfg.Name,
		NIC: &NIC{
			BytesPerSec: cfg.BytesPerSec,
			Latency:     cfg.Latency,
			tx:          sim.NewFIFOServer(cfg.Name + "/tx"),
			rx:          sim.NewFIFOServer(cfg.Name + "/rx"),
		},
		CPU:      sim.NewKServer(cfg.Name+"/cpu", cfg.Cores),
		fabric:   f,
		services: make(map[string]*sim.Chan),
	}
	f.nodes[cfg.Name] = n
	return n
}

// Node looks up a node by name; it panics if absent (topology bugs should
// fail loudly at wiring time).
func (f *Fabric) Node(name string) *Node {
	n, ok := f.nodes[name]
	if !ok {
		panic(fmt.Sprintf("simnet: unknown node %q", name))
	}
	return n
}

// Message is what arrives in a service inbox.
type Message struct {
	From    *Node
	Payload any
	Size    int64
	Arrived sim.Time
}

// Transfer blocks p for the duration of moving size bytes from src to dst
// and returns the delivery time.  Loopback (src == dst) costs no network
// resources and a negligible fixed time.
func (f *Fabric) Transfer(p *sim.Proc, src, dst *Node, size int64) sim.Time {
	if src == dst {
		p.Sleep(10 * time.Microsecond) // local softirq/loopback cost
		return p.Now()
	}
	svcTx := src.NIC.xmitTime(size)
	txDone := src.NIC.tx.Reserve(p.Now(), svcTx)
	txStart := txDone - sim.Time(svcTx)
	latency := src.NIC.Latency + src.extraLat + dst.extraLat
	firstByte := txStart + sim.Time(latency)
	svcRx := dst.NIC.xmitTime(size)
	rxDone := dst.NIC.rx.Reserve(firstByte, svcRx)
	// Injected loss on either endpoint: the dropped message is retransmitted
	// after the sender's RTO, so loss shows up as tail latency, not as a
	// hung reply channel.  The penalty lands after the receive stage — a
	// dropped packet never reaches the receiver's NIC, so it must not hold
	// the rx queue across the timeout gap (unrelated messages, including a
	// hedged duplicate's reply, keep flowing while the sender waits out the
	// RTO).
	if pLoss := src.loss + dst.loss - src.loss*dst.loss; pLoss > 0 &&
		f.K.Rand().Float64() < pLoss {
		rxDone += sim.Time(RetransmitTimeout)
	}
	p.SleepUntilTime(rxDone)
	return rxDone
}

// Send transfers size bytes of payload from src to the named service on dst,
// blocking p until delivery, then enqueues the message.
func (f *Fabric) Send(p *sim.Proc, src, dst *Node, service string, payload any, size int64) {
	at := f.Transfer(p, src, dst, size)
	dst.Service(service).Send(Message{From: src, Payload: payload, Size: size, Arrived: at})
}

// SendTo is like Send but delivers into an explicit channel — used for RPC
// replies, which go to a per-call channel rather than a service inbox.
func (f *Fabric) SendTo(p *sim.Proc, src, dst *Node, ch *sim.Chan, payload any, size int64) {
	at := f.Transfer(p, src, dst, size)
	ch.Send(Message{From: src, Payload: payload, Size: size, Arrived: at})
}
