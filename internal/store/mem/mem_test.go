package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"dpnfs/internal/store"
)

func TestCreateLookupAttr(t *testing.T) {
	s := New()
	a, err := s.Create(s.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(s.Root(), "f")
	if err != nil || got.ID != a.ID || got.IsDir {
		t.Fatalf("lookup: %+v, %v", got, err)
	}
	if _, err := s.Create(s.Root(), "f"); err != store.ErrExist {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestBadNamesRejected(t *testing.T) {
	s := New()
	for _, name := range []string{"", ".", "..", "a/b"} {
		if _, err := s.Create(s.Root(), name); err != store.ErrInval {
			t.Errorf("create(%q): %v, want ErrInval", name, err)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	data := []byte("the quick brown fox")
	if _, err := s.WriteAt(a.ID, 5, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	n, err := s.ReadAt(a.ID, 5, buf)
	if err != nil || n != len(data) || !bytes.Equal(buf, data) {
		t.Fatalf("read back %q (%d), %v", buf[:n], n, err)
	}
	// The hole before offset 5 reads as zeros.
	hole := make([]byte, 5)
	n, _ = s.ReadAt(a.ID, 0, hole)
	if n != 5 || !bytes.Equal(hole, make([]byte, 5)) {
		t.Fatalf("hole read %v", hole[:n])
	}
}

func TestReadPastEOF(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	s.WriteAt(a.ID, 0, []byte("abc"))
	buf := make([]byte, 10)
	n, err := s.ReadAt(a.ID, 1, buf)
	if err != nil || n != 2 || string(buf[:n]) != "bc" {
		t.Fatalf("short read: %d %q %v", n, buf[:n], err)
	}
	n, err = s.ReadAt(a.ID, 100, buf)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF: %d %v", n, err)
	}
}

func TestSizeTracking(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	s.WriteAt(a.ID, 1000, []byte("x"))
	at, _ := s.GetAttr(a.ID)
	if at.Size != 1001 {
		t.Fatalf("size %d, want 1001", at.Size)
	}
	if err := s.Truncate(a.ID, 10); err != nil {
		t.Fatal(err)
	}
	at, _ = s.GetAttr(a.ID)
	if at.Size != 10 {
		t.Fatalf("size after truncate %d", at.Size)
	}
}

func TestTruncateZeroesTail(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	s.WriteAt(a.ID, 0, []byte("abcdef"))
	s.Truncate(a.ID, 3)
	s.Truncate(a.ID, 6) // extend again: tail must be zeros, not "def"
	buf := make([]byte, 6)
	s.ReadAt(a.ID, 0, buf)
	if !bytes.Equal(buf, []byte{'a', 'b', 'c', 0, 0, 0}) {
		t.Fatalf("truncate leaked data: %q", buf)
	}
}

func TestSetSizeOnlyGrows(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	s.WriteAt(a.ID, 0, make([]byte, 100))
	s.SetSize(a.ID, 50) // LAYOUTCOMMIT with stale smaller size: ignored
	at, _ := s.GetAttr(a.ID)
	if at.Size != 100 {
		t.Fatalf("SetSize shrank file to %d", at.Size)
	}
	s.SetSize(a.ID, 200)
	at, _ = s.GetAttr(a.ID)
	if at.Size != 200 {
		t.Fatalf("SetSize did not grow file: %d", at.Size)
	}
}

func TestMkdirTree(t *testing.T) {
	s := New()
	d, err := s.Mkdir(s.Root(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(d.ID, "f"); err != nil {
		t.Fatal(err)
	}
	a, err := s.LookupPath("/a/f")
	if err != nil || a.IsDir {
		t.Fatalf("LookupPath: %+v, %v", a, err)
	}
	if _, err := s.LookupPath("/a/missing"); err != store.ErrNotExist {
		t.Fatalf("missing path: %v", err)
	}
}

func TestRemoveSemantics(t *testing.T) {
	s := New()
	d, _ := s.Mkdir(s.Root(), "d")
	s.Create(d.ID, "f")
	if err := s.Remove(s.Root(), "d"); err != store.ErrNotEmpty {
		t.Fatalf("remove non-empty dir: %v", err)
	}
	if err := s.Remove(d.ID, "f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(s.Root(), "d"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(s.Root(), "d"); err != store.ErrNotExist {
		t.Fatalf("double remove: %v", err)
	}
}

// An unlinked file stays addressable by id — clients may hold its handle
// open — but drops out of the namespace and the live-inode count.
func TestRemoveKeepsOpenUnlinked(t *testing.T) {
	s := New()
	f, _ := s.Create(s.Root(), "f")
	s.WriteAt(f.ID, 0, []byte("still here"))
	live := s.Stats()
	if err := s.Remove(s.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got != live-1 {
		t.Fatalf("Stats after remove: %d, want %d", got, live-1)
	}
	buf := make([]byte, 10)
	n, err := s.ReadAt(f.ID, 0, buf)
	if err != nil || string(buf[:n]) != "still here" {
		t.Fatalf("unlinked read: %q, %v", buf[:n], err)
	}
	if _, err := s.Lookup(s.Root(), "f"); err != store.ErrNotExist {
		t.Fatalf("unlinked file still visible: %v", err)
	}
}

func TestRename(t *testing.T) {
	s := New()
	d1, _ := s.Mkdir(s.Root(), "d1")
	d2, _ := s.Mkdir(s.Root(), "d2")
	f, _ := s.Create(d1.ID, "f")
	s.WriteAt(f.ID, 0, []byte("payload"))
	if err := s.Rename(d1.ID, "f", d2.ID, "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(d1.ID, "f"); err != store.ErrNotExist {
		t.Fatalf("source still present: %v", err)
	}
	a, err := s.LookupPath("/d2/g")
	if err != nil || a.ID != f.ID {
		t.Fatalf("rename lost identity: %+v, %v", a, err)
	}
}

func TestRenameReplacesFile(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "a")
	b, _ := s.Create(s.Root(), "b")
	if err := s.Rename(s.Root(), "a", s.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(s.Root(), "b")
	if err != nil || got.ID != a.ID {
		t.Fatalf("rename target: %+v, %v", got, err)
	}
	// The displaced inode is unlinked but, like Remove, stays addressable.
	if _, err := s.GetAttr(b.ID); err != nil {
		t.Fatalf("replaced inode not addressable: %v", err)
	}
	if names, _ := s.ReadDir(s.Root()); len(names) != 1 || names[0] != "b" {
		t.Fatalf("namespace after replace: %v", names)
	}
}

func TestRenameOntoItselfIsNoop(t *testing.T) {
	s := New()
	f, _ := s.Create(s.Root(), "f")
	if err := s.Rename(s.Root(), "f", s.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(s.Root(), "f")
	if err != nil || got.ID != f.ID {
		t.Fatalf("self-rename destroyed file: %+v, %v", got, err)
	}
}

func TestRenameIntoOwnSubtreeRefused(t *testing.T) {
	s := New()
	a, _ := s.Mkdir(s.Root(), "a")
	b, _ := s.Mkdir(a.ID, "b")
	if err := s.Rename(s.Root(), "a", b.ID, "a2"); err != store.ErrInval {
		t.Fatalf("cycle rename: %v, want ErrInval", err)
	}
	if err := s.Rename(s.Root(), "a", a.ID, "a2"); err != store.ErrInval {
		t.Fatalf("rename into self: %v, want ErrInval", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	s := New()
	for _, n := range []string{"c", "a", "b"} {
		s.Create(s.Root(), n)
	}
	names, err := s.ReadDir(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("readdir %v, want %v", names, want)
		}
	}
}

func TestChangeCounterBumps(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	before, _ := s.GetAttr(a.ID)
	s.WriteAt(a.ID, 0, []byte("x"))
	after, _ := s.GetAttr(a.ID)
	if after.Change <= before.Change {
		t.Fatal("write did not bump change counter")
	}
}

// Property: for any sequence of writes, reading the whole file matches a
// flat reference buffer.
func TestPropertyWritesMatchReference(t *testing.T) {
	type op struct {
		Off  uint32
		Data []byte
	}
	f := func(ops []op) bool {
		s := New()
		a, _ := s.Create(s.Root(), "f")
		ref := make([]byte, 0)
		for _, o := range ops {
			off := int64(o.Off % (1 << 20)) // bound file size to 1 MB
			if len(o.Data) == 0 {
				continue
			}
			s.WriteAt(a.ID, off, o.Data)
			end := off + int64(len(o.Data))
			if int64(len(ref)) < end {
				ref = append(ref, make([]byte, end-int64(len(ref)))...)
			}
			copy(ref[off:end], o.Data)
		}
		at, _ := s.GetAttr(a.ID)
		if at.Size != int64(len(ref)) {
			return false
		}
		got := make([]byte, len(ref))
		n, err := s.ReadAt(a.ID, 0, got)
		if err != nil || n != len(ref) {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseChunkBoundaries(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	// Write straddling a 64 KiB chunk boundary.
	data := bytes.Repeat([]byte{0xAB}, 100)
	off := int64(chunkSize - 50)
	s.WriteAt(a.ID, off, data)
	got := make([]byte, 100)
	s.ReadAt(a.ID, off, got)
	if !bytes.Equal(got, data) {
		t.Fatal("chunk-straddling write corrupted data")
	}
}

func TestRestoreFixedID(t *testing.T) {
	s := New()
	at, err := s.Restore(s.Root(), "f", 42, false)
	if err != nil || at.ID != 42 {
		t.Fatalf("restore: %+v, %v", at, err)
	}
	// The allocator must not re-issue 42 or anything below it.
	n, _ := s.Create(s.Root(), "g")
	if n.ID <= 42 {
		t.Fatalf("allocator re-issued low id %d", n.ID)
	}
	if _, err := s.Restore(s.Root(), "h", 42, false); err != store.ErrExist {
		t.Fatalf("duplicate restore id: %v", err)
	}
}

func TestReserveID(t *testing.T) {
	s := New()
	s.ReserveID(1000)
	if got := s.LastID(); got != 1000 {
		t.Fatalf("LastID %d, want 1000", got)
	}
	a, _ := s.Create(s.Root(), "f")
	if a.ID != 1001 {
		t.Fatalf("post-reserve id %d, want 1001", a.ID)
	}
}

func TestExtentsClippedAndMerged(t *testing.T) {
	s := New()
	a, _ := s.Create(s.Root(), "f")
	// Two adjacent chunks then a hole then one more chunk, size clipped
	// mid-chunk.
	s.WriteAt(a.ID, 0, make([]byte, 2*chunkSize))
	s.WriteAt(a.ID, 4*chunkSize, make([]byte, chunkSize))
	s.Truncate(a.ID, 4*chunkSize+100)
	exts, err := s.Extents(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := []Extent{{0, 2 * chunkSize}, {4 * chunkSize, 100}}
	if len(exts) != len(want) || exts[0] != want[0] || exts[1] != want[1] {
		t.Fatalf("extents %v, want %v", exts, want)
	}
	// Synthetic writes materialize nothing.
	b, _ := s.Create(s.Root(), "syn")
	s.WriteSyntheticAt(b.ID, 0, 1<<20)
	if exts, _ := s.Extents(b.ID); len(exts) != 0 {
		t.Fatalf("synthetic extents %v", exts)
	}
}

func TestWalkDeterministicOrder(t *testing.T) {
	s := New()
	d, _ := s.Mkdir(s.Root(), "d")
	s.Create(s.Root(), "z")
	s.Create(d.ID, "inner")
	f, _ := s.Create(s.Root(), "gone")
	_ = f
	s.Remove(s.Root(), "gone")
	var got []string
	err := s.Walk(func(dir store.FileID, name string, at store.Attr) error {
		got = append(got, name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"d", "inner", "z"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
}
