// Package mem implements the in-memory store.Store used by default under
// every server in this repository: the PVFS2 storage daemons and metadata
// server, and the NFSv4 data and metadata servers.  It provides a minimal
// POSIX-like namespace (directories, regular files), inode numbers, sparse
// file contents, and attributes.
//
// The store holds real bytes — reads return exactly what was written, and
// integration tests verify end-to-end data integrity through every protocol
// stack.  Timing is not modelled here; servers charge simdisk/simnet
// resources separately, and Sync is a no-op (memory is "durable" until the
// faults engine says otherwise).
//
// Paper mapping: the local file systems under the paper's servers (§6.1 —
// ext3 under the PVFS2 daemons, the exported namespace on the MDS); this
// package is deliberately timing-free so all performance behaviour comes
// from the protocol and resource models around it.
//
// Beyond store.Store, mem exports the hooks store/wal builds its
// checkpoint/replay on: Restore (re-create a node under a fixed id),
// ReserveID/LastID (id-allocator continuity), Extents and Walk
// (deterministic export of the live state).
package mem

import (
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"

	"dpnfs/internal/sim"
	"dpnfs/internal/store"
	"dpnfs/internal/xdr"
)

type node struct {
	id       store.FileID
	isDir    bool
	size     int64
	change   uint64
	children map[string]*node // directories
	data     *sparse          // regular files
	parent   *node
	name     string
}

// Store is one in-memory file system.  All methods are safe for concurrent
// use (the TCP demo serves real goroutines); under simulation the kernel's
// cooperative scheduling makes the locking moot but harmless.
type Store struct {
	mu     sync.RWMutex
	root   *node
	byID   map[store.FileID]*node
	nextID store.FileID
	linked int // namespace-reachable inodes (Stats)
	// misdirect is the file armed for a one-shot wrong-block read
	// (MisdirectNextRead); 0 means none.  Guarded by misMu, not mu:
	// ReadAt consumes it under the read lock.
	misMu     sync.Mutex
	misdirect store.FileID
}

var (
	_ store.Store       = (*Store)(nil)
	_ store.Corruptible = (*Store)(nil)
)

// New returns an empty store with a root directory (FileID 1).
func New() *Store {
	s := &Store{byID: make(map[store.FileID]*node), nextID: 1, linked: 1}
	s.root = &node{id: 1, isDir: true, children: make(map[string]*node)}
	s.byID[1] = s.root
	return s
}

// Root returns the root directory's id.
func (s *Store) Root() store.FileID { return 1 }

func (s *Store) alloc(isDir bool) *node {
	s.nextID++
	n := &node{id: s.nextID, isDir: isDir}
	if isDir {
		n.children = make(map[string]*node)
	} else {
		n.data = newSparse(n.id)
	}
	s.byID[n.id] = n
	return n
}

func (s *Store) dir(id store.FileID) (*node, error) {
	n, ok := s.byID[id]
	if !ok {
		return nil, store.ErrNotExist
	}
	if !n.isDir {
		return nil, store.ErrNotDir
	}
	return n, nil
}

func (s *Store) file(id store.FileID) (*node, error) {
	n, ok := s.byID[id]
	if !ok {
		return nil, store.ErrNotExist
	}
	if n.isDir {
		return nil, store.ErrIsDir
	}
	return n, nil
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." || strings.Contains(name, "/") {
		return store.ErrInval
	}
	return nil
}

// Lookup resolves name within directory dir.
func (s *Store) Lookup(dir store.FileID, name string) (store.Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, err := s.dir(dir)
	if err != nil {
		return store.Attr{}, err
	}
	c, ok := d.children[name]
	if !ok {
		return store.Attr{}, store.ErrNotExist
	}
	return c.attr(), nil
}

// LookupPath resolves a slash-separated path from the root.
func (s *Store) LookupPath(p string) (store.Attr, error) {
	cur := s.Root()
	a := store.Attr{ID: cur, IsDir: true}
	for _, part := range strings.Split(path.Clean("/"+p), "/") {
		if part == "" {
			continue
		}
		var err error
		a, err = s.Lookup(cur, part)
		if err != nil {
			return store.Attr{}, err
		}
		cur = a.ID
	}
	return a, nil
}

func (n *node) attr() store.Attr {
	return store.Attr{ID: n.id, IsDir: n.isDir, Size: n.size, Change: n.change}
}

// GetAttr returns attributes of id.  Unlinked-but-open nodes remain
// addressable until the store is checkpointed or recovered.
func (s *Store) GetAttr(id store.FileID) (store.Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.byID[id]
	if !ok {
		return store.Attr{}, store.ErrNotExist
	}
	return n.attr(), nil
}

// Create makes a regular file in dir.  It fails with ErrExist if the name
// is taken.
func (s *Store) Create(dir store.FileID, name string) (store.Attr, error) {
	return s.mknod(dir, name, false)
}

// Mkdir makes a directory in dir.
func (s *Store) Mkdir(dir store.FileID, name string) (store.Attr, error) {
	return s.mknod(dir, name, true)
}

func (s *Store) mknod(dir store.FileID, name string, isDir bool) (store.Attr, error) {
	if err := checkName(name); err != nil {
		return store.Attr{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.dir(dir)
	if err != nil {
		return store.Attr{}, err
	}
	if _, dup := d.children[name]; dup {
		return store.Attr{}, store.ErrExist
	}
	n := s.alloc(isDir)
	n.parent, n.name = d, name
	d.children[name] = n
	d.change++
	s.linked++
	return n.attr(), nil
}

// Restore re-creates a node under a fixed id — the replay path of durable
// backends, where ids recorded in the log must come back exactly (clients
// hold them inside file handles).  The id allocator is advanced past id.
func (s *Store) Restore(dir store.FileID, name string, id store.FileID, isDir bool) (store.Attr, error) {
	if err := checkName(name); err != nil {
		return store.Attr{}, err
	}
	if id <= 1 {
		return store.Attr{}, store.ErrInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.dir(dir)
	if err != nil {
		return store.Attr{}, err
	}
	if _, dup := d.children[name]; dup {
		return store.Attr{}, store.ErrExist
	}
	if _, dup := s.byID[id]; dup {
		return store.Attr{}, store.ErrExist
	}
	n := &node{id: id, isDir: isDir}
	if isDir {
		n.children = make(map[string]*node)
	} else {
		n.data = newSparse(id)
	}
	s.byID[id] = n
	if id > s.nextID {
		s.nextID = id
	}
	n.parent, n.name = d, name
	d.children[name] = n
	d.change++
	s.linked++
	return n.attr(), nil
}

// ReserveID advances the id allocator so no id <= id is handed out again.
// Durable backends record the allocator in their checkpoint: without it, a
// post-recovery Create could re-issue the id of a file removed before the
// checkpoint, aliasing a stale client handle.
func (s *Store) ReserveID(id store.FileID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id > s.nextID {
		s.nextID = id
	}
}

// LastID reports the highest id the allocator has issued.
func (s *Store) LastID() store.FileID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextID
}

// Remove unlinks name from dir.  Non-empty directories are refused.  The
// node stays addressable by id (open-but-unlinked semantics); it is
// reclaimed when a durable backend checkpoints or recovers.
func (s *Store) Remove(dir store.FileID, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.dir(dir)
	if err != nil {
		return err
	}
	c, ok := d.children[name]
	if !ok {
		return store.ErrNotExist
	}
	if c.isDir && len(c.children) > 0 {
		return store.ErrNotEmpty
	}
	delete(d.children, name)
	c.parent, c.name = nil, ""
	d.change++
	s.linked--
	return nil
}

// Rename moves srcName in srcDir to dstName in dstDir, replacing a
// same-kind target if present.  Renaming a node onto itself is a no-op;
// renaming a directory into its own subtree is refused with ErrInval;
// replacing a non-empty directory is refused with ErrNotEmpty.  A replaced
// node stays addressable by id, like Remove.
func (s *Store) Rename(srcDir store.FileID, srcName string, dstDir store.FileID, dstName string) error {
	if err := checkName(dstName); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd, err := s.dir(srcDir)
	if err != nil {
		return err
	}
	dd, err := s.dir(dstDir)
	if err != nil {
		return err
	}
	c, ok := sd.children[srcName]
	if !ok {
		return store.ErrNotExist
	}
	if c.isDir {
		// A directory must not become its own ancestor.
		for a := dd; a != nil; a = a.parent {
			if a == c {
				return store.ErrInval
			}
		}
	}
	if old, ok := dd.children[dstName]; ok {
		if old == c {
			return nil // rename onto itself: POSIX no-op
		}
		if old.isDir != c.isDir {
			if old.isDir {
				return store.ErrIsDir
			}
			return store.ErrNotDir
		}
		if old.isDir && len(old.children) > 0 {
			return store.ErrNotEmpty
		}
		old.parent, old.name = nil, ""
		s.linked--
	}
	delete(sd.children, srcName)
	dd.children[dstName] = c
	c.parent, c.name = dd, dstName
	sd.change++
	dd.change++
	return nil
}

// ReadDir lists dir in lexical order.
func (s *Store) ReadDir(dir store.FileID) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, err := s.dir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// WriteAt writes b at off, extending the file as needed, and returns the
// new size.
func (s *Store) WriteAt(id store.FileID, off int64, b []byte) (int64, error) {
	if off < 0 {
		return 0, store.ErrInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.file(id)
	if err != nil {
		return 0, err
	}
	n.data.writeAt(off, b)
	if end := off + int64(len(b)); end > n.size {
		n.size = end
	}
	n.change++
	return n.size, nil
}

// WriteSyntheticAt records a write of n zero bytes at off without storing
// chunks: only the size and change counter advance.  Benchmarks move
// simulated terabytes through this path.
func (s *Store) WriteSyntheticAt(id store.FileID, off, n int64) (int64, error) {
	if off < 0 || n < 0 {
		return 0, store.ErrInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file(id)
	if err != nil {
		return 0, err
	}
	if end := off + n; end > f.size {
		f.size = end
	}
	f.change++
	return f.size, nil
}

// ReadAt reads up to len(b) bytes at off; short reads happen at EOF.  Holes
// read as zeros.
func (s *Store) ReadAt(id store.FileID, off int64, b []byte) (int, error) {
	if off < 0 {
		return 0, store.ErrInval
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.file(id)
	if err != nil {
		return 0, err
	}
	if off >= n.size {
		return 0, nil
	}
	avail := n.size - off
	if int64(len(b)) > avail {
		b = b[:avail]
	}
	misdirect := s.takeMisdirect(id)
	fired, err := n.data.readAt(off, b, misdirect)
	if misdirect && !fired {
		// The read touched no materialized chunk with a donor; the wrong
		// block is still waiting to be served.
		s.armMisdirect(id)
	}
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// takeMisdirect consumes the one-shot misdirect arm if it targets id.
func (s *Store) takeMisdirect(id store.FileID) bool {
	s.misMu.Lock()
	defer s.misMu.Unlock()
	if s.misdirect != id {
		return false
	}
	s.misdirect = 0
	return true
}

// armMisdirect arms (or re-arms) the one-shot misdirect for id.
func (s *Store) armMisdirect(id store.FileID) {
	s.misMu.Lock()
	s.misdirect = id
	s.misMu.Unlock()
}

// Truncate sets the file size, discarding or zero-extending content.
func (s *Store) Truncate(id store.FileID, size int64) error {
	if size < 0 {
		return store.ErrInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.file(id)
	if err != nil {
		return err
	}
	if size < n.size {
		n.data.truncate(size)
	}
	n.size = size
	n.change++
	return nil
}

// SetSize extends the file size if size is larger (pNFS LAYOUTCOMMIT
// semantics: the client reports a possibly-extended size after direct I/O).
func (s *Store) SetSize(id store.FileID, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.file(id)
	if err != nil {
		return err
	}
	if size > n.size {
		n.size = size
		n.change++
	}
	return nil
}

// Sync is a no-op: memory has no durability point.  It satisfies
// store.Content so servers can call Sync unconditionally.
func (s *Store) Sync(p *sim.Proc) error { return nil }

// Discard returns every chunk in the store to the chunk pool.  The caller
// asserts the store will never be read again — a dropped client page cache,
// not a server backend (durable backends checkpoint through Extents, which
// must keep its chunks).
func (s *Store) Discard() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.byID {
		if n.data == nil {
			continue
		}
		for ci, c := range n.data.chunks {
			delete(n.data.chunks, ci)
			delete(n.data.sums, ci)
			putChunk(c)
		}
		n.size = 0
	}
}

// CorruptChunk implements store.Corruptible: it flips one readable byte in
// one materialized chunk — chosen deterministically from seed — without
// resealing the checksum, modelling media bit rot.  It reports whether any
// chunk was eligible (a store holding only synthetic/hole data has no bytes
// to rot).
func (s *Store) CorruptChunk(seed int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	type loc struct {
		id store.FileID
		ci int64
	}
	var locs []loc
	ids := make([]store.FileID, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := s.byID[id]
		if n.data == nil {
			continue
		}
		cis := make([]int64, 0, len(n.data.chunks))
		for ci := range n.data.chunks {
			// Only bytes below the file size are ever served; rot past EOF
			// would be undetectable and unrepairable by design.
			if ci*chunkSize < n.size {
				cis = append(cis, ci)
			}
		}
		sort.Slice(cis, func(i, j int) bool { return cis[i] < cis[j] })
		for _, ci := range cis {
			locs = append(locs, loc{id, ci})
		}
	}
	if len(locs) == 0 {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	l := locs[rng.Intn(len(locs))]
	n := s.byID[l.id]
	span := n.size - l.ci*chunkSize
	if span > chunkSize {
		span = chunkSize
	}
	n.data.chunks[l.ci][rng.Int63n(span)] ^= 0xFF
	return true
}

// MisdirectNextRead implements store.Corruptible: it arms a one-shot
// wrong-block read against a file chosen deterministically from seed.  Only
// files with at least two materialized chunks are eligible — a misdirected
// read needs a wrong block to serve.  It reports whether a victim was found.
func (s *Store) MisdirectNextRead(seed int64) bool {
	s.mu.RLock()
	var ids []store.FileID
	for id, n := range s.byID {
		if n.data != nil && len(n.data.chunks) >= 2 {
			ids = append(ids, id)
		}
	}
	s.mu.RUnlock()
	if len(ids) == 0 {
		return false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng := rand.New(rand.NewSource(seed))
	s.armMisdirect(ids[rng.Intn(len(ids))])
	return true
}

// ArmMisdirect arms a one-shot wrong-block read against a specific file
// (test hook; fault plans go through MisdirectNextRead).
func (s *Store) ArmMisdirect(id store.FileID) { s.armMisdirect(id) }

// Stats reports the number of live (namespace-reachable) inodes.
func (s *Store) Stats() (inodes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.linked
}

// Extent is a materialized byte range of a file (Extents).
type Extent struct {
	Off int64
	Len int64
}

// maxExtent caps how far adjacent chunks are merged into one extent, so a
// checkpoint record's payload stays well under xdr.MaxOpaque.
const maxExtent = 4 << 20

// Extents returns the materialized (chunk-backed) ranges of file id, merged
// when adjacent, clipped to the file size, in ascending order.  Holes and
// synthetic writes produce no extents.  Durable backends checkpoint file
// bytes through this.
func (s *Store) Extents(id store.FileID) ([]Extent, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.file(id)
	if err != nil {
		return nil, err
	}
	if len(n.data.chunks) == 0 || n.size == 0 {
		return nil, nil
	}
	idxs := make([]int64, 0, len(n.data.chunks))
	for ci := range n.data.chunks {
		idxs = append(idxs, ci)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var out []Extent
	for _, ci := range idxs {
		lo := ci * chunkSize
		hi := lo + chunkSize
		if lo >= n.size {
			break
		}
		if hi > n.size {
			hi = n.size
		}
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Off+last.Len == lo && last.Len+hi-lo <= maxExtent {
				last.Len += hi - lo
				continue
			}
		}
		out = append(out, Extent{Off: lo, Len: hi - lo})
	}
	return out, nil
}

// Walk visits every namespace-reachable node except the root, parents
// before children, siblings in lexical order, calling fn(parent dir id,
// name, attributes).  The order is deterministic, which keeps durable
// checkpoints byte-stable.  Unlinked-but-open nodes are not visited — a
// checkpoint reclaims them.
func (s *Store) Walk(fn func(dir store.FileID, name string, at store.Attr) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var walk func(d *node) error
	walk = func(d *node) error {
		names := make([]string, 0, len(d.children))
		for name := range d.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := d.children[name]
			if err := fn(d.id, name, c.attr()); err != nil {
				return err
			}
			if c.isDir {
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(s.root)
}

// sparse stores file bytes in fixed-size chunks allocated on demand; holes
// read as zeros.  Parallel-FS stripe objects are naturally sparse (each
// storage node holds every k-th stripe unit at its logical offset).
//
// Every materialized chunk carries a CRC32C over its full slab, salted with
// (file id, chunk index): reads verify it, so bit rot surfaces as
// store.ErrCorrupt instead of silently wrong bytes, and the location salt
// means even a byte-identical block served from the wrong place (a
// misdirected read) fails verification when content differs per location.
// Holes have no chunk, no sum, and nothing to rot.
type sparse struct {
	id     store.FileID
	chunks map[int64][]byte
	sums   map[int64]uint32
}

const chunkSize = 64 << 10

// chunkSalt binds a chunk's checksum to its location.  File ids and chunk
// indexes both stay far below 2^32 in this repository, so packing them into
// one word keeps every (file, chunk) salt distinct.
func (sp *sparse) chunkSalt(ci int64) uint64 {
	return uint64(sp.id)<<32 | uint64(uint32(ci))
}

// reseal recomputes the checksum of a materialized chunk after a legitimate
// mutation.
func (sp *sparse) reseal(ci int64) {
	sp.sums[ci] = xdr.ChecksumSalted(sp.chunkSalt(ci), sp.chunks[ci])
}

// chunkFree recycles chunk slabs across files and stores.  Client page
// caches are dropped and rebuilt wholesale (DropCaches, close-to-open
// revalidation); without the freelist every rebuild allocates its working
// set chunk by chunk.  A plain guarded slice, not a sync.Pool: Put(&c)
// would box the slice header and cost the very alloc the pool is here to
// save.  maxFreeChunks bounds retention (64 MiB); overflow falls to GC.
var chunkFree struct {
	sync.Mutex
	free [][]byte
}

const maxFreeChunks = 1024

// getChunk returns a chunk slab, zeroed unless the caller is about to
// overwrite all of it (recycled slabs come back holding old bytes, and
// holes must read as zeros).
func getChunk(zero bool) []byte {
	chunkFree.Lock()
	var c []byte
	if n := len(chunkFree.free); n > 0 {
		c = chunkFree.free[n-1]
		chunkFree.free[n-1] = nil
		chunkFree.free = chunkFree.free[:n-1]
	}
	chunkFree.Unlock()
	if c == nil {
		return make([]byte, chunkSize)
	}
	if zero {
		clear(c)
	}
	return c
}

func putChunk(c []byte) {
	chunkFree.Lock()
	if len(chunkFree.free) < maxFreeChunks {
		chunkFree.free = append(chunkFree.free, c)
	}
	chunkFree.Unlock()
}

func newSparse(id store.FileID) *sparse {
	return &sparse{id: id, chunks: make(map[int64][]byte), sums: make(map[int64]uint32)}
}

func (sp *sparse) writeAt(off int64, b []byte) {
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		c, ok := sp.chunks[ci]
		if !ok {
			c = getChunk(co != 0 || int64(len(b)) < chunkSize)
			sp.chunks[ci] = c
		}
		n := copy(c[co:], b)
		sp.reseal(ci)
		b = b[n:]
		off += int64(n)
	}
}

// readAt fills b from off, verifying the checksum of every materialized
// chunk it touches.  misdirect serves one touched chunk's bytes from the
// next materialized chunk of the same file — the wrong-block model — before
// verification, which the location-salted sums then catch; fired reports
// whether that injection found a block to misdirect.
func (sp *sparse) readAt(off int64, b []byte, misdirect bool) (fired bool, err error) {
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - int(co)
		if n > len(b) {
			n = len(b)
		}
		if c, ok := sp.chunks[ci]; ok {
			if misdirect {
				if donor, dok := sp.donorChunk(ci); dok {
					c = donor
					misdirect = false
					fired = true
				}
			}
			if xdr.ChecksumSalted(sp.chunkSalt(ci), c) != sp.sums[ci] {
				return fired, store.ErrCorrupt
			}
			copy(b[:n], c[co:])
		} else {
			for i := 0; i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		off += int64(n)
	}
	return fired, nil
}

// donorChunk picks the materialized chunk that a misdirected read serves in
// place of ci: the next index in ascending order, wrapping.  A single-chunk
// file has no wrong block to serve and the injection stays armed.
func (sp *sparse) donorChunk(ci int64) ([]byte, bool) {
	idxs := make([]int64, 0, len(sp.chunks))
	for i := range sp.chunks {
		if i != ci {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return nil, false
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, i := range idxs {
		if i > ci {
			return sp.chunks[i], true
		}
	}
	return sp.chunks[idxs[0]], true
}

func (sp *sparse) truncate(size int64) {
	lastChunk := size / chunkSize
	for ci, c := range sp.chunks {
		switch {
		case ci > lastChunk:
			delete(sp.chunks, ci)
			delete(sp.sums, ci)
			putChunk(c)
		case ci == lastChunk:
			keep := size % chunkSize
			for i := keep; i < chunkSize; i++ {
				c[i] = 0
			}
			sp.reseal(ci)
		}
	}
}

// String renders a debug listing of the namespace.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sb strings.Builder
	var walk func(n *node, prefix string)
	walk = func(n *node, prefix string) {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := n.children[name]
			if c.isDir {
				fmt.Fprintf(&sb, "%s%s/\n", prefix, name)
				walk(c, prefix+"  ")
			} else {
				fmt.Fprintf(&sb, "%s%s (%d bytes)\n", prefix, name, c.size)
			}
		}
	}
	walk(s.root, "")
	return sb.String()
}
