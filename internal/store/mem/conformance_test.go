package mem_test

import (
	"testing"

	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) store.Store { return mem.New() })
}

func TestCorruptible(t *testing.T) {
	storetest.RunCorruptible(t, func(t *testing.T) store.Store { return mem.New() })
}
