package cached

import (
	"testing"

	"dpnfs/internal/store"
	"dpnfs/internal/store/storetest"
	"dpnfs/internal/store/wal"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) store.Store { return New(wal.Config{Name: "test"}) })
}

func TestRecoverable(t *testing.T) {
	storetest.RunRecoverable(t, func(t *testing.T) store.Store { return New(wal.Config{Name: "test"}) })
}

func TestCorruptible(t *testing.T) {
	storetest.RunCorruptible(t, func(t *testing.T) store.Store { return New(wal.Config{Name: "test"}) })
}

// The write-back contract: data writes stage volatile and journal only at
// Sync, while namespace mutations journal immediately (and become durable
// at the next Sync even when no data was dirty).
func TestWriteBackSemantics(t *testing.T) {
	s := New(wal.Config{Name: "test"})
	f, _ := s.Create(s.Root(), "f")
	s.Sync(nil)

	// Unsynced data is lost by a crash; the earlier namespace is not.
	s.WriteAt(f.ID, 0, []byte("dirty dirty"))
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	at, err := s.Lookup(s.Root(), "f")
	if err != nil || at.ID != f.ID {
		t.Fatalf("namespace lost: %+v, %v", at, err)
	}
	if at.Size != 0 {
		t.Fatalf("uncommitted write survived: size %d", at.Size)
	}

	// Committed data comes back byte-identically, clipped to a truncate
	// that happened after the write.
	s.WriteAt(f.ID, 0, []byte("committed bytes"))
	s.Truncate(f.ID, 9)
	if err := s.Sync(nil); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, _ := s.ReadAt(f.ID, 0, buf)
	if string(buf[:n]) != "committed" {
		t.Fatalf("committed bytes after recovery: %q", buf[:n])
	}
}

// Removing a file drops its pending dirty ranges: the next Sync journals
// nothing for it and recovery does not resurrect it.
func TestRemoveDropsDirty(t *testing.T) {
	s := New(wal.Config{Name: "test"})
	f, _ := s.Create(s.Root(), "f")
	s.WriteAt(f.ID, 0, []byte("doomed"))
	if err := s.Remove(s.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	if len(s.dirty) != 0 {
		t.Fatalf("dirty ranges survive remove: %v", s.dirty)
	}
	if err := s.Sync(nil); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(s.Root(), "f"); err != store.ErrNotExist {
		t.Fatalf("removed file after recovery: %v", err)
	}
}

func TestExtentCoalescing(t *testing.T) {
	var xs extents
	xs.add(10, 20)
	xs.add(30, 40)
	xs.add(19, 31) // bridges both
	if len(xs) != 1 || xs[0] != (extent{10, 40}) {
		t.Fatalf("coalesce: %v", xs)
	}
	xs.add(40, 50) // adjacent extends
	if len(xs) != 1 || xs[0] != (extent{10, 50}) {
		t.Fatalf("adjacent merge: %v", xs)
	}
	clipped := xs.clip(45)
	if len(clipped) != 1 || clipped[0] != (extent{10, 45}) {
		t.Fatalf("clip: %v", clipped)
	}
	if out := xs.clip(5); len(out) != 0 {
		t.Fatalf("clip below: %v", out)
	}
}
