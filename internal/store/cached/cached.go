// Package cached composes a memory-speed front over a WAL back: data
// writes stage into the WAL's materialized image without journalling, and
// Sync journals the dirty ranges before flushing the log.  This is the
// NFSv3/v4 unstable-WRITE + COMMIT contract as a storage backend — writes
// are acknowledged from volatile memory, and only a commit point pays for
// durability — in the spirit of dittofs's split Repository /
// ContentRepository caching (SNIPPETS.md §2).
//
// Namespace mutations are not cached: they journal immediately through the
// underlying WAL (directory operations are ordinarily synchronous on a
// server).  A crash therefore loses exactly the un-committed data writes,
// never an acknowledged namespace change that was followed by a Sync.
package cached

import (
	"sort"
	"sync"

	"dpnfs/internal/sim"
	"dpnfs/internal/store"
	"dpnfs/internal/store/wal"
)

// Store is a cached WAL store.
type Store struct {
	*wal.Store

	mu    sync.Mutex
	dirty map[store.FileID]*dirtyFile
}

type dirtyFile struct {
	real extents // byte ranges with journalling payloads
	syn  extents // sizing-only ranges (synthetic writes)
}

var (
	_ store.Store       = (*Store)(nil)
	_ store.Recoverable = (*Store)(nil)
	// Corruption hooks and torn-write arming promote from the embedded WAL:
	// rot lands on the shared materialized image, which both the cached
	// front and the journal's checkpoints read through.
	_ store.Corruptible = (*Store)(nil)
	_ store.TornWriter  = (*Store)(nil)
)

// New returns a cached store over a fresh WAL built from cfg.
func New(cfg wal.Config) *Store {
	return &Store{Store: wal.New(cfg), dirty: make(map[store.FileID]*dirtyFile)}
}

func (s *Store) dirtyFor(id store.FileID) *dirtyFile {
	df, ok := s.dirty[id]
	if !ok {
		df = &dirtyFile{}
		s.dirty[id] = df
	}
	return df
}

// WriteAt stages the write into the image and tracks the range as dirty;
// nothing is journalled until Sync.
func (s *Store) WriteAt(id store.FileID, off int64, b []byte) (int64, error) {
	size, err := s.Store.StageWriteAt(id, off, b)
	if err != nil {
		return size, err
	}
	s.mu.Lock()
	s.dirtyFor(id).real.add(off, off+int64(len(b)))
	s.mu.Unlock()
	return size, nil
}

// WriteSyntheticAt stages a sizing-only write.
func (s *Store) WriteSyntheticAt(id store.FileID, off, n int64) (int64, error) {
	size, err := s.Store.StageWriteSyntheticAt(id, off, n)
	if err != nil {
		return size, err
	}
	s.mu.Lock()
	s.dirtyFor(id).syn.add(off, off+n)
	s.mu.Unlock()
	return size, nil
}

// Remove unlinks name from dir; pending dirty ranges of the displaced file
// are dropped (no point journalling bytes of an unlinked file at the next
// commit).
func (s *Store) Remove(dir store.FileID, name string) error {
	at, lerr := s.Store.Lookup(dir, name)
	if err := s.Store.Remove(dir, name); err != nil {
		return err
	}
	if lerr == nil {
		s.mu.Lock()
		delete(s.dirty, at.ID)
		s.mu.Unlock()
	}
	return nil
}

// Sync journals every dirty range — reading the bytes currently staged in
// the image, clipped to the current file size — and then flushes the WAL,
// charging the disk.  After Sync returns, all previously acknowledged
// writes survive a crash.
func (s *Store) Sync(p *sim.Proc) error {
	s.mu.Lock()
	ids := make([]store.FileID, 0, len(s.dirty))
	for id := range s.dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	flush := make(map[store.FileID]*dirtyFile, len(ids))
	for _, id := range ids {
		flush[id] = s.dirty[id]
	}
	s.dirty = make(map[store.FileID]*dirtyFile)
	s.mu.Unlock()

	for _, id := range ids {
		at, err := s.Store.GetAttr(id)
		if err != nil {
			continue // unlinked and reclaimed, or crashed mid-flush
		}
		df := flush[id]
		for _, e := range df.real.clip(at.Size) {
			if err := s.Store.JournalWriteAt(id, e.lo, e.hi-e.lo); err != nil {
				return err
			}
		}
		for _, e := range df.syn.clip(at.Size) {
			if err := s.Store.JournalWriteSyntheticAt(id, e.lo, e.hi-e.lo); err != nil {
				return err
			}
		}
	}
	return s.Store.Sync(p)
}

// Crash discards the dirty tracking along with the WAL's volatile state.
func (s *Store) Crash() {
	s.mu.Lock()
	s.dirty = make(map[store.FileID]*dirtyFile)
	s.mu.Unlock()
	s.Store.Crash()
}

// extents is a sorted list of half-open, coalesced byte ranges.
type extents []extent

type extent struct{ lo, hi int64 }

// add inserts [lo, hi), merging overlapping and adjacent ranges.
func (xs *extents) add(lo, hi int64) {
	if hi <= lo {
		return
	}
	out := make(extents, 0, len(*xs)+1)
	for _, e := range *xs {
		switch {
		case e.hi < lo || hi < e.lo: // disjoint, not even adjacent
			out = append(out, e)
		default: // overlap or touch: absorb into the new range
			if e.lo < lo {
				lo = e.lo
			}
			if e.hi > hi {
				hi = e.hi
			}
		}
	}
	out = append(out, extent{lo, hi})
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	*xs = out
}

// clip returns the ranges intersected with [0, size).
func (xs extents) clip(size int64) extents {
	var out extents
	for _, e := range xs {
		if e.lo >= size {
			continue
		}
		if e.hi > size {
			e.hi = size
		}
		out = append(out, e)
	}
	return out
}
