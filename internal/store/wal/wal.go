// Package wal implements a write-ahead-logged store.Store: the durable
// backend a storage node or MDS can run instead of plain memory, in the
// style of log-structured NFS servers (tchajed/go-nfs — see SNIPPETS.md §3).
//
// Every mutation applies to a materialized in-memory image (store/mem) and
// appends an XDR-encoded record to a volatile tail of the log.  Sync is the
// durability point: it promotes the tail to the durable log and charges the
// flush — a sequential journal write plus a barrier — to the node's simdisk,
// so durability has a modelled cost.  Once the durable log grows past
// Config.CheckpointEvery records, Sync folds it into a fresh checkpoint
// (the live image re-encoded as records), bounding replay time.
//
// Crash discards the materialized image and the unsynced tail — exactly the
// state a power cut loses.  Recover rebuilds the image by replaying the
// checkpoint followed by the durable log; ids recorded in the log are
// restored verbatim (mem.Restore), so file handles held by clients across
// the outage keep working.
//
// See docs/BACKENDS.md for the record format and recovery semantics.
package wal

import (
	"fmt"
	"sync"

	"dpnfs/internal/metrics"
	"dpnfs/internal/sim"
	"dpnfs/internal/simdisk"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/xdr"
)

// journalFile is the simdisk file id the log is charged against.  The
// maximum id cannot collide with inode numbers, and using one id makes the
// journal sequential on the modelled platter — the point of a WAL.
const journalFile = ^uint64(0)

// Config describes one WAL store.
type Config struct {
	// Name labels metrics and errors (typically the node name).
	Name string
	// Disk, when set, is charged for every log flush and checkpoint (a
	// sequential write of the encoded records plus a sync barrier).  Nil
	// means durability is tracked but free — unit tests.
	Disk *simdisk.Disk
	// CheckpointEvery bounds the durable log: once it holds at least this
	// many records, the next Sync folds it into a checkpoint.  Default
	// 4096; negative disables checkpointing.
	CheckpointEvery int
	// Metrics receives store_wal_* counters (nil is fine).
	Metrics *metrics.Registry
}

// Store is a write-ahead-logged store.
type Store struct {
	cfg Config

	mu sync.Mutex
	// img is the materialized state; nil while crashed.
	img *mem.Store
	// checkpoint + durable survive a crash; pending does not.
	checkpoint [][]byte
	durable    [][]byte
	pending    [][]byte
	pendingSz  int64
	// checkpointSum is a CRC32C trailer over the whole checkpoint image
	// (every encoded record, in order): per-record checksums catch flipped
	// bits, this catches a truncated record list, so a damaged checkpoint
	// fails loudly at Recover instead of replaying a partial image.
	checkpointSum uint32
	// tornArmed makes the next Crash persist only a prefix of the final
	// durable record (faults.TornWrite).  The record checksum then catches
	// the tear at Recover, which drops the record and counts it.
	tornArmed bool
	// logOff is the journal's append position on the disk.
	logOff int64
	// scratch is reused by journalling paths that read image bytes before
	// encoding (JournalWriteAt, checkpoint extents): every record is
	// XDR-encoded — which copies the data — before the call returns, so the
	// buffer never escapes.  Guarded by mu.
	scratch []byte

	records   *metrics.Counter
	replays   *metrics.Counter
	ckptBytes *metrics.Counter
	tornDrops *metrics.Counter
}

var (
	_ store.Store       = (*Store)(nil)
	_ store.Recoverable = (*Store)(nil)
	_ store.Corruptible = (*Store)(nil)
	_ store.TornWriter  = (*Store)(nil)
)

// New returns an empty WAL store.
func New(cfg Config) *Store {
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 4096
	}
	if cfg.Name == "" {
		cfg.Name = "wal"
	}
	reg := cfg.Metrics
	return &Store{
		cfg: cfg,
		img: mem.New(),
		records: reg.CounterVec("store_wal_records_total",
			"WAL records appended (journalled mutations).", "node").With(cfg.Name),
		replays: reg.CounterVec("store_wal_replays_total",
			"WAL records replayed by Recover after a crash.", "node").With(cfg.Name),
		ckptBytes: reg.CounterVec("store_wal_checkpoint_bytes_total",
			"Bytes written re-encoding live state into checkpoints.", "node").With(cfg.Name),
		tornDrops: reg.CounterVec("store_wal_torn_writes_total",
			"Torn tail records detected by checksum and dropped at Recover.", "node").With(cfg.Name),
	}
}

// appendLocked journals r into the volatile tail, sealed with a CRC32C
// trailer so replay can tell a torn or rotted record from a good one.
// Caller holds s.mu and has already applied r to the image.
func (s *Store) appendLocked(r *record) {
	enc := xdr.AppendChecksum(xdr.Marshal(r))
	s.pending = append(s.pending, enc)
	s.pendingSz += int64(len(enc))
	s.records.Inc()
}

// Root returns the root directory's id.
func (s *Store) Root() store.FileID { return 1 }

// scratchBuf returns the store's scratch buffer grown to n bytes.  Caller
// holds s.mu and must not retain the slice past the next append.
func (s *Store) scratchBuf(n int64) []byte {
	if int64(cap(s.scratch)) < n {
		s.scratch = make([]byte, n)
	}
	return s.scratch[:n]
}

func (s *Store) image() (*mem.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return nil, store.ErrUnavailable
	}
	return s.img, nil
}

// Lookup resolves name within directory dir.
func (s *Store) Lookup(dir store.FileID, name string) (store.Attr, error) {
	img, err := s.image()
	if err != nil {
		return store.Attr{}, err
	}
	return img.Lookup(dir, name)
}

// LookupPath resolves a slash-separated path from the root.
func (s *Store) LookupPath(p string) (store.Attr, error) {
	img, err := s.image()
	if err != nil {
		return store.Attr{}, err
	}
	return img.LookupPath(p)
}

// GetAttr returns attributes of id.
func (s *Store) GetAttr(id store.FileID) (store.Attr, error) {
	img, err := s.image()
	if err != nil {
		return store.Attr{}, err
	}
	return img.GetAttr(id)
}

// ReadDir lists dir in lexical order.
func (s *Store) ReadDir(dir store.FileID) ([]string, error) {
	img, err := s.image()
	if err != nil {
		return nil, err
	}
	return img.ReadDir(dir)
}

// ReadAt reads up to len(b) bytes at off.
func (s *Store) ReadAt(id store.FileID, off int64, b []byte) (int, error) {
	img, err := s.image()
	if err != nil {
		return 0, err
	}
	return img.ReadAt(id, off, b)
}

// Stats reports the number of live inodes (0 while crashed).
func (s *Store) Stats() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return 0
	}
	return s.img.Stats()
}

// Create makes a regular file in dir and journals it.
func (s *Store) Create(dir store.FileID, name string) (store.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.Attr{}, store.ErrUnavailable
	}
	at, err := s.img.Create(dir, name)
	if err != nil {
		return at, err
	}
	s.appendLocked(&record{op: opCreate, dir: dir, id: at.ID, name: name})
	return at, nil
}

// Mkdir makes a directory in dir and journals it.
func (s *Store) Mkdir(dir store.FileID, name string) (store.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.Attr{}, store.ErrUnavailable
	}
	at, err := s.img.Mkdir(dir, name)
	if err != nil {
		return at, err
	}
	s.appendLocked(&record{op: opMkdir, dir: dir, id: at.ID, name: name})
	return at, nil
}

// Remove unlinks name from dir and journals it.
func (s *Store) Remove(dir store.FileID, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.ErrUnavailable
	}
	if err := s.img.Remove(dir, name); err != nil {
		return err
	}
	s.appendLocked(&record{op: opRemove, dir: dir, name: name})
	return nil
}

// Rename moves srcName in srcDir to dstName in dstDir and journals it.
func (s *Store) Rename(srcDir store.FileID, srcName string, dstDir store.FileID, dstName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.ErrUnavailable
	}
	if err := s.img.Rename(srcDir, srcName, dstDir, dstName); err != nil {
		return err
	}
	s.appendLocked(&record{op: opRename, dir: srcDir, dir2: dstDir, name: srcName, name2: dstName})
	return nil
}

// Truncate sets the file size and journals it.
func (s *Store) Truncate(id store.FileID, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.ErrUnavailable
	}
	if err := s.img.Truncate(id, size); err != nil {
		return err
	}
	s.appendLocked(&record{op: opTruncate, id: id, size: size})
	return nil
}

// SetSize extends the file size and journals it.
func (s *Store) SetSize(id store.FileID, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.ErrUnavailable
	}
	if err := s.img.SetSize(id, size); err != nil {
		return err
	}
	s.appendLocked(&record{op: opSetSize, id: id, size: size})
	return nil
}

// WriteAt writes b at off and journals the bytes.
func (s *Store) WriteAt(id store.FileID, off int64, b []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return 0, store.ErrUnavailable
	}
	size, err := s.img.WriteAt(id, off, b)
	if err != nil {
		return size, err
	}
	// No defensive copy: appendLocked XDR-encodes the record — copying the
	// bytes — before we return, so the log never aliases the caller's buffer.
	s.appendLocked(&record{op: opWrite, id: id, off: off, data: b})
	return size, nil
}

// WriteSyntheticAt records a sizing-only write and journals it (no payload:
// synthetic bytes replay as synthetic).
func (s *Store) WriteSyntheticAt(id store.FileID, off, n int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return 0, store.ErrUnavailable
	}
	size, err := s.img.WriteSyntheticAt(id, off, n)
	if err != nil {
		return size, err
	}
	s.appendLocked(&record{op: opWriteSyn, id: id, off: off, size: n})
	return size, nil
}

// StageWriteAt applies a write to the materialized image only, without
// journalling — the store/cached write-back path.  The caller promises to
// JournalWriteAt the bytes before the Sync that should make them durable.
func (s *Store) StageWriteAt(id store.FileID, off int64, b []byte) (int64, error) {
	img, err := s.image()
	if err != nil {
		return 0, err
	}
	return img.WriteAt(id, off, b)
}

// StageWriteSyntheticAt is StageWriteAt for sizing-only writes.
func (s *Store) StageWriteSyntheticAt(id store.FileID, off, n int64) (int64, error) {
	img, err := s.image()
	if err != nil {
		return 0, err
	}
	return img.WriteSyntheticAt(id, off, n)
}

// JournalWriteAt appends a write record for bytes already staged into the
// image, reading the current contents at [off, off+n).
func (s *Store) JournalWriteAt(id store.FileID, off, n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.ErrUnavailable
	}
	buf := s.scratchBuf(n)
	rn, err := s.img.ReadAt(id, off, buf)
	if err != nil {
		return err
	}
	if rn == 0 {
		return nil
	}
	s.appendLocked(&record{op: opWrite, id: id, off: off, data: buf[:rn]})
	return nil
}

// JournalWriteSyntheticAt appends a sizing-only write record for a staged
// synthetic write.
func (s *Store) JournalWriteSyntheticAt(id store.FileID, off, n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.img == nil {
		return store.ErrUnavailable
	}
	s.appendLocked(&record{op: opWriteSyn, id: id, off: off, size: n})
	return nil
}

// Sync makes every journalled mutation durable: the volatile tail joins the
// durable log, and the flush is charged to the disk as a sequential journal
// write plus a barrier.  When the durable log has outgrown
// Config.CheckpointEvery it is folded into a fresh checkpoint.  p may be
// nil (TCP transport: durability without simulated time).
func (s *Store) Sync(p *sim.Proc) error {
	s.mu.Lock()
	if s.img == nil {
		s.mu.Unlock()
		return store.ErrUnavailable
	}
	flushOff, flushBytes := s.logOff, s.pendingSz
	s.durable = append(s.durable, s.pending...)
	s.pending, s.pendingSz = nil, 0
	s.logOff += flushBytes

	var ckptOff, ckptBytes int64
	if s.cfg.CheckpointEvery > 0 && len(s.durable) >= s.cfg.CheckpointEvery {
		ckptBytes = s.checkpointLocked()
		ckptOff = s.logOff
		s.logOff += ckptBytes
	}
	s.mu.Unlock()

	// Charge the disk outside the lock: under simulation the proc yields
	// to the kernel here, and holding a Go mutex across that would wedge
	// other procs on this store.
	if s.cfg.Disk != nil && p != nil {
		if flushBytes > 0 {
			s.cfg.Disk.Write(p, journalFile, flushOff, flushBytes)
		}
		if ckptBytes > 0 {
			s.cfg.Disk.Write(p, journalFile, ckptOff, ckptBytes)
		}
		s.cfg.Disk.Sync(p)
	}
	return nil
}

// checkpointLocked re-encodes the live image as records, replacing the
// checkpoint and durable log, and returns the encoded size.  Unlinked
// nodes are reclaimed: they are not reachable, so they are not encoded.
func (s *Store) checkpointLocked() int64 {
	var recs [][]byte
	var bytes int64
	var sum uint32
	add := func(r *record) {
		enc := xdr.AppendChecksum(xdr.Marshal(r))
		recs = append(recs, enc)
		sum = xdr.ChecksumUpdate(sum, enc)
		bytes += int64(len(enc))
	}
	// The allocator position comes first: replay must not re-issue ids
	// that once named now-reclaimed files (clients may hold stale handles).
	add(&record{op: opReserveID, id: s.img.LastID()})
	err := s.img.Walk(func(dir store.FileID, name string, at store.Attr) error {
		op := opCreate
		if at.IsDir {
			op = opMkdir
		}
		add(&record{op: op, dir: dir, id: at.ID, name: name})
		if at.IsDir {
			return nil
		}
		exts, err := s.img.Extents(at.ID)
		if err != nil {
			return err
		}
		for _, e := range exts {
			buf := s.scratchBuf(e.Len)
			if _, err := s.img.ReadAt(at.ID, e.Off, buf); err != nil {
				return err
			}
			add(&record{op: opWrite, id: at.ID, off: e.Off, data: buf})
		}
		if at.Size > 0 {
			add(&record{op: opSetSize, id: at.ID, size: at.Size})
		}
		return nil
	})
	if err != nil {
		// Walk callbacks above only fail on image corruption.
		panic(fmt.Sprintf("wal %s: checkpoint: %v", s.cfg.Name, err))
	}
	s.checkpoint = recs
	s.checkpointSum = sum
	s.durable = nil
	s.ckptBytes.Add(uint64(bytes))
	return bytes
}

// ArmTornWrite implements store.TornWriter: the next Crash persists only a
// prefix of the final durable record.
func (s *Store) ArmTornWrite() {
	s.mu.Lock()
	s.tornArmed = true
	s.mu.Unlock()
}

// Crash discards all volatile state: the materialized image and the
// unsynced tail.  Every operation fails with store.ErrUnavailable until
// Recover.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.img = nil
	s.pending, s.pendingSz = nil, 0
	if s.tornArmed {
		s.tornArmed = false
		if n := len(s.durable); n > 0 {
			// The tail of the last journal flush tore: only a prefix of its
			// final record reached the platter.  A copy, not a reslice — the
			// log must not alias a buffer anyone else could still grow.
			last := s.durable[n-1]
			torn := make([]byte, len(last)/2)
			copy(torn, last)
			s.durable[n-1] = torn
		}
	}
}

// Recover rebuilds the image by replaying the checkpoint followed by the
// durable log, and returns the number of records replayed.  Content
// records naming ids absent from the replayed namespace are skipped: they
// belong to files unlinked before the crash (their bytes were reclaimed
// with them).  Recovery is idempotent on a healthy store.
func (s *Store) Recover() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The checkpoint image's own trailer first: a checkpoint that lost
	// records (truncation, partial write) must fail loudly before any of it
	// replays, not reconstruct a silently partial namespace.
	var cksum uint32
	for _, enc := range s.checkpoint {
		cksum = xdr.ChecksumUpdate(cksum, enc)
	}
	if cksum != s.checkpointSum {
		return 0, fmt.Errorf("wal %s: checkpoint image checksum mismatch (%d records): %w",
			s.cfg.Name, len(s.checkpoint), xdr.ErrChecksum)
	}
	img := mem.New()
	replayed := 0
	for part, log := range [2][][]byte{s.checkpoint, s.durable} {
		for i, enc := range log {
			body, cerr := xdr.VerifyChecksum(enc)
			if cerr != nil {
				// A bad final record of the durable log is a torn write: the
				// crash cut the last journal flush short.  Drop it — the
				// write was never claimed durable by a completed Sync — and
				// count the detection.  Anywhere else, a checksum failure
				// means the log itself rotted, which nothing can repair.
				if part == 1 && i == len(log)-1 {
					s.tornDrops.Inc()
					s.durable = s.durable[:i]
					break
				}
				return replayed, fmt.Errorf("wal %s: corrupt record %d: %w", s.cfg.Name, replayed, cerr)
			}
			var r record
			if err := xdr.Unmarshal(body, &r); err != nil {
				return replayed, fmt.Errorf("wal %s: corrupt record %d: %w", s.cfg.Name, replayed, err)
			}
			if err := r.apply(img); err != nil {
				return replayed, fmt.Errorf("wal %s: replay record %d (op %d): %w", s.cfg.Name, replayed, r.op, err)
			}
			replayed++
		}
	}
	s.img = img
	s.replays.Add(uint64(replayed))
	return replayed, nil
}

// CorruptChunk implements store.Corruptible on the materialized image: rot
// lands on the data blocks reads are served from, never on the journal.
func (s *Store) CorruptChunk(seed int64) bool {
	img, err := s.image()
	if err != nil {
		return false
	}
	return img.CorruptChunk(seed)
}

// MisdirectNextRead implements store.Corruptible on the materialized image.
func (s *Store) MisdirectNextRead(seed int64) bool {
	img, err := s.image()
	if err != nil {
		return false
	}
	return img.MisdirectNextRead(seed)
}

// Walk forwards to the materialized image; the scrubber enumerates files
// through this.
func (s *Store) Walk(fn func(dir store.FileID, name string, at store.Attr) error) error {
	img, err := s.image()
	if err != nil {
		return err
	}
	return img.Walk(fn)
}

// Extents forwards to the materialized image: the chunk-backed ranges whose
// block checksums a scrub pass verifies.
func (s *Store) Extents(id store.FileID) ([]mem.Extent, error) {
	img, err := s.image()
	if err != nil {
		return nil, err
	}
	return img.Extents(id)
}
