package wal

import (
	"errors"
	"fmt"

	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/xdr"
)

// Record opcodes.  The on-log encoding is part of docs/BACKENDS.md; extend
// by appending, never by renumbering.
const (
	opCreate    = uint32(iota + 1) // dir, id, name
	opMkdir                        // dir, id, name
	opRemove                       // dir, name
	opRename                       // dir (src), dir2 (dst), name (src), name2 (dst)
	opWrite                        // id, off, data
	opWriteSyn                     // id, off, size (=n zero bytes, no payload)
	opTruncate                     // id, size
	opSetSize                      // id, size
	opReserveID                    // id (allocator position; checkpoint only)
)

// record is one logged mutation.  All fields are always encoded — the
// fixed layout costs a few words per record and keeps decode trivial.
type record struct {
	op        uint32
	dir, dir2 store.FileID
	id        store.FileID
	name      string
	name2     string
	off, size int64
	data      []byte
}

// MarshalXDR encodes r: op, dir, dir2, id, off, size, name, name2, data.
func (r *record) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(r.op)
	e.Uint64(uint64(r.dir))
	e.Uint64(uint64(r.dir2))
	e.Uint64(uint64(r.id))
	e.Int64(r.off)
	e.Int64(r.size)
	e.String(r.name)
	e.String(r.name2)
	e.Opaque(r.data)
}

// UnmarshalXDR decodes the layout written by MarshalXDR.
func (r *record) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	read := func(f func() error) {
		if err == nil {
			err = f()
		}
	}
	read(func() error { var e error; r.op, e = d.Uint32(); return e })
	read(func() error { v, e := d.Uint64(); r.dir = store.FileID(v); return e })
	read(func() error { v, e := d.Uint64(); r.dir2 = store.FileID(v); return e })
	read(func() error { v, e := d.Uint64(); r.id = store.FileID(v); return e })
	read(func() error { var e error; r.off, e = d.Int64(); return e })
	read(func() error { var e error; r.size, e = d.Int64(); return e })
	read(func() error { var e error; r.name, e = d.String(); return e })
	read(func() error { var e error; r.name2, e = d.String(); return e })
	read(func() error { var e error; r.data, e = d.Opaque(); return e })
	return err
}

// apply replays r against img.  Content records for ids missing from the
// namespace are tolerated: the file was unlinked before the crash and the
// checkpoint reclaimed it, but its tail-of-log writes survive.
func (r *record) apply(img *mem.Store) error {
	switch r.op {
	case opCreate:
		_, err := img.Restore(r.dir, r.name, r.id, false)
		return err
	case opMkdir:
		_, err := img.Restore(r.dir, r.name, r.id, true)
		return err
	case opRemove:
		return img.Remove(r.dir, r.name)
	case opRename:
		return img.Rename(r.dir, r.name, r.dir2, r.name2)
	case opWrite:
		_, err := img.WriteAt(r.id, r.off, r.data)
		return tolerateUnlinked(err)
	case opWriteSyn:
		_, err := img.WriteSyntheticAt(r.id, r.off, r.size)
		return tolerateUnlinked(err)
	case opTruncate:
		return tolerateUnlinked(img.Truncate(r.id, r.size))
	case opSetSize:
		return tolerateUnlinked(img.SetSize(r.id, r.size))
	case opReserveID:
		img.ReserveID(r.id)
		return nil
	default:
		return fmt.Errorf("unknown opcode %d", r.op)
	}
}

func tolerateUnlinked(err error) error {
	if errors.Is(err, store.ErrNotExist) {
		return nil
	}
	return err
}
