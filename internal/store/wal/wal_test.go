package wal

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dpnfs/internal/metrics"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/store/storetest"
	"dpnfs/internal/xdr"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) store.Store { return New(Config{Name: "test"}) })
}

func TestRecoverable(t *testing.T) {
	storetest.RunRecoverable(t, func(t *testing.T) store.Store { return New(Config{Name: "test"}) })
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []record{
		{op: opCreate, dir: 1, id: 7, name: "f"},
		{op: opRename, dir: 2, dir2: 3, name: "a", name2: "b"},
		{op: opWrite, id: 7, off: 1 << 20, data: []byte("payload")},
		{op: opWriteSyn, id: 7, off: 0, size: 1 << 30},
		{op: opReserveID, id: 99},
	}
	for i, r := range recs {
		enc := xdr.Marshal(&r)
		var got record
		if err := xdr.Unmarshal(enc, &got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.data == nil {
			got.data = []byte{}
		}
		want := r
		if want.data == nil {
			want.data = []byte{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round trip: %+v != %+v", i, got, want)
		}
	}
}

// Replaying a corrupt log fails loudly instead of silently rebuilding a
// wrong namespace.
func TestRecoverCorruptRecord(t *testing.T) {
	s := New(Config{Name: "test"})
	s.Create(s.Root(), "f")
	s.Sync(nil)
	s.durable[0] = s.durable[0][:5]
	s.Crash()
	if _, err := s.Recover(); err == nil {
		t.Fatal("corrupt record replayed without error")
	}
}

// Once the durable log passes CheckpointEvery, Sync folds it into a
// checkpoint; recovery from the checkpoint reproduces the same state, does
// not resurrect unlinked files, and never re-issues their ids.
func TestCheckpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Name: "test", CheckpointEvery: 4, Metrics: reg})
	f, _ := s.Create(s.Root(), "keep")
	s.WriteAt(f.ID, 0, []byte("kept bytes"))
	gone, _ := s.Create(s.Root(), "gone")
	s.Remove(s.Root(), "gone")
	s.Sync(nil) // 4 durable records: checkpoint triggers
	if len(s.checkpoint) == 0 || len(s.durable) != 0 {
		t.Fatalf("checkpoint did not fold: ckpt=%d durable=%d", len(s.checkpoint), len(s.durable))
	}
	s.Crash()
	replayed, err := s.Recover()
	if err != nil || replayed == 0 {
		t.Fatalf("recover: %d, %v", replayed, err)
	}
	buf := make([]byte, 10)
	if n, _ := s.ReadAt(f.ID, 0, buf); string(buf[:n]) != "kept bytes" {
		t.Fatalf("checkpointed bytes: %q", buf[:n])
	}
	// The unlinked file was reclaimed by the checkpoint...
	if _, err := s.GetAttr(gone.ID); err != store.ErrNotExist {
		t.Fatalf("reclaimed inode addressable: %v", err)
	}
	// ...but its id is never re-issued.
	n, _ := s.Create(s.Root(), "new")
	if n.ID <= gone.ID {
		t.Fatalf("id %d re-issued after checkpoint (reclaimed %d)", n.ID, gone.ID)
	}
	found := false
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name == "store_wal_checkpoint_bytes_total" {
			for _, series := range fam.Series {
				if series.Value > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("store_wal_checkpoint_bytes_total not incremented")
	}
}

// A long create/write/rename/remove/truncate script leaves mem and wal —
// including wal after a crash+recover — in byte-identical states.
func TestDifferentialMemWal(t *testing.T) {
	m := mem.New()
	w := New(Config{Name: "test", CheckpointEvery: 8})
	both := []store.Store{m, w}
	run := func(f func(s store.Store) error) {
		t.Helper()
		var errs [2]error
		for i, s := range both {
			errs[i] = f(s)
		}
		if fmt.Sprint(errs[0]) != fmt.Sprint(errs[1]) {
			t.Fatalf("backends diverged: mem=%v wal=%v", errs[0], errs[1])
		}
	}
	run(func(s store.Store) error { _, err := s.Mkdir(s.Root(), "d"); return err })
	run(func(s store.Store) error { _, err := s.Create(s.Root(), "a"); return err })
	run(func(s store.Store) error {
		at, _ := s.LookupPath("/a")
		_, err := s.WriteAt(at.ID, 100, bytes.Repeat([]byte{0x5A}, 70_000))
		return err
	})
	run(func(s store.Store) error {
		at, _ := s.LookupPath("/a")
		return s.Truncate(at.ID, 65_000)
	})
	run(func(s store.Store) error {
		d, _ := s.LookupPath("/d")
		return s.Rename(s.Root(), "a", d.ID, "b")
	})
	run(func(s store.Store) error { _, err := s.Create(s.Root(), "tmp"); return err })
	run(func(s store.Store) error { return s.Remove(s.Root(), "tmp") })
	run(func(s store.Store) error {
		at, _ := s.LookupPath("/d/b")
		_, err := s.WriteSyntheticAt(at.ID, 1<<20, 512)
		return err
	})
	run(func(s store.Store) error { return s.Sync(nil) })

	want := storetest.Dump(t, m)
	if got := storetest.Dump(t, w); got != want {
		t.Fatalf("mem and wal disagree:\nmem:\n%s\nwal:\n%s", want, got)
	}
	w.Crash()
	if _, err := w.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := storetest.Dump(t, w); got != want {
		t.Fatalf("wal after recovery disagrees:\nmem:\n%s\nwal:\n%s", want, got)
	}
}
