package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"dpnfs/internal/metrics"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/store/storetest"
	"dpnfs/internal/xdr"
)

// counterSum totals one counter family's series values in a registry.
func counterSum(reg *metrics.Registry, name string) float64 {
	var total float64
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			total += s.Value
		}
	}
	return total
}

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) store.Store { return New(Config{Name: "test"}) })
}

func TestRecoverable(t *testing.T) {
	storetest.RunRecoverable(t, func(t *testing.T) store.Store { return New(Config{Name: "test"}) })
}

func TestCorruptible(t *testing.T) {
	storetest.RunCorruptible(t, func(t *testing.T) store.Store { return New(Config{Name: "test"}) })
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []record{
		{op: opCreate, dir: 1, id: 7, name: "f"},
		{op: opRename, dir: 2, dir2: 3, name: "a", name2: "b"},
		{op: opWrite, id: 7, off: 1 << 20, data: []byte("payload")},
		{op: opWriteSyn, id: 7, off: 0, size: 1 << 30},
		{op: opReserveID, id: 99},
	}
	for i, r := range recs {
		enc := xdr.Marshal(&r)
		var got record
		if err := xdr.Unmarshal(enc, &got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.data == nil {
			got.data = []byte{}
		}
		want := r
		if want.data == nil {
			want.data = []byte{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round trip: %+v != %+v", i, got, want)
		}
	}
}

// Replaying a corrupt log fails loudly instead of silently rebuilding a
// wrong namespace.  The damaged record must not be the final durable one —
// a bad tail is the torn-write case, tolerated separately below.
func TestRecoverCorruptRecord(t *testing.T) {
	s := New(Config{Name: "test"})
	s.Create(s.Root(), "f")
	s.Create(s.Root(), "g")
	s.Sync(nil)
	s.durable[0] = s.durable[0][:5]
	s.Crash()
	if _, err := s.Recover(); err == nil {
		t.Fatal("corrupt record replayed without error")
	}
}

// A corrupt *final* durable record is a torn write: the last journal flush
// was cut short by the crash.  Recover drops exactly that record, counts
// the detection, and replays the rest cleanly.
func TestRecoverTornTail(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Name: "test", Metrics: reg})
	s.Create(s.Root(), "kept")
	s.Create(s.Root(), "torn")
	s.Sync(nil)
	s.ArmTornWrite()
	s.Crash()
	replayed, err := s.Recover()
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (torn tail dropped)", replayed)
	}
	if _, err := s.Lookup(s.Root(), "kept"); err != nil {
		t.Fatalf("intact record lost: %v", err)
	}
	if _, err := s.Lookup(s.Root(), "torn"); err != store.ErrNotExist {
		t.Fatalf("torn record replayed: %v", err)
	}
	if n := counterSum(reg, "store_wal_torn_writes_total"); n != 1 {
		t.Fatalf("store_wal_torn_writes_total = %v, want 1", n)
	}
	// Recovery is idempotent: the dropped record stays dropped.
	s.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatalf("second recover: %v", err)
	}
}

// A checkpoint image that lost records fails Recover loudly via its
// whole-image trailer, even though every surviving record's own checksum
// still verifies.
func TestRecoverCorruptCheckpoint(t *testing.T) {
	s := New(Config{Name: "test", CheckpointEvery: 2})
	s.Create(s.Root(), "a")
	s.Create(s.Root(), "b")
	s.Sync(nil) // 2 durable records: folds into a checkpoint
	if len(s.checkpoint) == 0 {
		t.Fatal("checkpoint did not fold")
	}
	s.checkpoint = s.checkpoint[:len(s.checkpoint)-1] // drop a record, each intact
	s.Crash()
	if _, err := s.Recover(); !errors.Is(err, xdr.ErrChecksum) {
		t.Fatalf("truncated checkpoint replayed: %v", err)
	}
}

// Once the durable log passes CheckpointEvery, Sync folds it into a
// checkpoint; recovery from the checkpoint reproduces the same state, does
// not resurrect unlinked files, and never re-issues their ids.
func TestCheckpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Name: "test", CheckpointEvery: 4, Metrics: reg})
	f, _ := s.Create(s.Root(), "keep")
	s.WriteAt(f.ID, 0, []byte("kept bytes"))
	gone, _ := s.Create(s.Root(), "gone")
	s.Remove(s.Root(), "gone")
	s.Sync(nil) // 4 durable records: checkpoint triggers
	if len(s.checkpoint) == 0 || len(s.durable) != 0 {
		t.Fatalf("checkpoint did not fold: ckpt=%d durable=%d", len(s.checkpoint), len(s.durable))
	}
	s.Crash()
	replayed, err := s.Recover()
	if err != nil || replayed == 0 {
		t.Fatalf("recover: %d, %v", replayed, err)
	}
	buf := make([]byte, 10)
	if n, _ := s.ReadAt(f.ID, 0, buf); string(buf[:n]) != "kept bytes" {
		t.Fatalf("checkpointed bytes: %q", buf[:n])
	}
	// The unlinked file was reclaimed by the checkpoint...
	if _, err := s.GetAttr(gone.ID); err != store.ErrNotExist {
		t.Fatalf("reclaimed inode addressable: %v", err)
	}
	// ...but its id is never re-issued.
	n, _ := s.Create(s.Root(), "new")
	if n.ID <= gone.ID {
		t.Fatalf("id %d re-issued after checkpoint (reclaimed %d)", n.ID, gone.ID)
	}
	found := false
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name == "store_wal_checkpoint_bytes_total" {
			for _, series := range fam.Series {
				if series.Value > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("store_wal_checkpoint_bytes_total not incremented")
	}
}

// A long create/write/rename/remove/truncate script leaves mem and wal —
// including wal after a crash+recover — in byte-identical states.
func TestDifferentialMemWal(t *testing.T) {
	m := mem.New()
	w := New(Config{Name: "test", CheckpointEvery: 8})
	both := []store.Store{m, w}
	run := func(f func(s store.Store) error) {
		t.Helper()
		var errs [2]error
		for i, s := range both {
			errs[i] = f(s)
		}
		if fmt.Sprint(errs[0]) != fmt.Sprint(errs[1]) {
			t.Fatalf("backends diverged: mem=%v wal=%v", errs[0], errs[1])
		}
	}
	run(func(s store.Store) error { _, err := s.Mkdir(s.Root(), "d"); return err })
	run(func(s store.Store) error { _, err := s.Create(s.Root(), "a"); return err })
	run(func(s store.Store) error {
		at, _ := s.LookupPath("/a")
		_, err := s.WriteAt(at.ID, 100, bytes.Repeat([]byte{0x5A}, 70_000))
		return err
	})
	run(func(s store.Store) error {
		at, _ := s.LookupPath("/a")
		return s.Truncate(at.ID, 65_000)
	})
	run(func(s store.Store) error {
		d, _ := s.LookupPath("/d")
		return s.Rename(s.Root(), "a", d.ID, "b")
	})
	run(func(s store.Store) error { _, err := s.Create(s.Root(), "tmp"); return err })
	run(func(s store.Store) error { return s.Remove(s.Root(), "tmp") })
	run(func(s store.Store) error {
		at, _ := s.LookupPath("/d/b")
		_, err := s.WriteSyntheticAt(at.ID, 1<<20, 512)
		return err
	})
	run(func(s store.Store) error { return s.Sync(nil) })

	want := storetest.Dump(t, m)
	if got := storetest.Dump(t, w); got != want {
		t.Fatalf("mem and wal disagree:\nmem:\n%s\nwal:\n%s", want, got)
	}
	w.Crash()
	if _, err := w.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := storetest.Dump(t, w); got != want {
		t.Fatalf("wal after recovery disagrees:\nmem:\n%s\nwal:\n%s", want, got)
	}
}

// The same corruption seed rots the same logical chunk on mem and wal, both
// surface it as the same typed error, and the same repair write converges
// both back to byte-identical state — so detection and repair behave the
// same whichever backend a node runs, including across a wal crash+recover.
func TestDifferentialCorruptionRepairConverges(t *testing.T) {
	m := mem.New()
	w := New(Config{Name: "test"})
	both := []store.Store{m, w}
	content := bytes.Repeat([]byte{0xC3, 0x17, 0x7E, 0x44}, 48<<10/4)
	var ids [2]store.FileID
	for i, s := range both {
		at, err := s.Create(s.Root(), "f")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = at.ID
		if _, err := s.WriteAt(at.ID, 0, content); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(nil); err != nil {
			t.Fatal(err)
		}
	}

	const seed = 42
	for i, s := range both {
		if !s.(store.Corruptible).CorruptChunk(seed) {
			t.Fatalf("backend %d: nothing to corrupt", i)
		}
		buf := make([]byte, len(content))
		if _, err := s.ReadAt(ids[i], 0, buf); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("backend %d: rotted read returned %v, want ErrCorrupt", i, err)
		}
	}

	// Repair exactly as read-repair does: overwrite with the good bytes.
	for i, s := range both {
		if _, err := s.WriteAt(ids[i], 0, content); err != nil {
			t.Fatalf("backend %d repair: %v", i, err)
		}
		if err := s.Sync(nil); err != nil {
			t.Fatalf("backend %d sync: %v", i, err)
		}
	}

	want := storetest.Dump(t, m)
	if got := storetest.Dump(t, w); got != want {
		t.Fatalf("after repair, mem and wal disagree:\nmem:\n%s\nwal:\n%s", want, got)
	}
	w.Crash()
	if _, err := w.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := storetest.Dump(t, w); got != want {
		t.Fatalf("repaired wal diverged across recovery:\nmem:\n%s\nwal:\n%s", want, got)
	}
}
