// Package store defines the repository interfaces every server in this
// repository builds on: Metadata for namespace operations and Content for
// file bytes.  Splitting the two mirrors the paper's premise
// (conf_hpdc_HildebrandH07 §3) that pNFS lets one client stack front
// heterogeneous storage systems — an MDS cares only about the namespace, a
// storage node only about object bytes, and either can be backed by a
// different implementation.
//
// Three implementations ship with the repo:
//
//   - store/mem: the historical in-memory store (moved from internal/vfs),
//     volatile, timing-free.  The default backend, so all figures are
//     unchanged.
//   - store/wal: a write-ahead-logged store — every mutation appends a
//     record, Sync makes the log durable (charged to the node's simdisk),
//     and Recover replays checkpoint+log after a crash.
//   - store/cached: mem-speed front over a wal back; dirty data is staged
//     volatile and journalled on Sync, matching NFS unstable-WRITE+COMMIT
//     semantics.
//
// See docs/BACKENDS.md for the record format and recovery semantics.
package store

import (
	"errors"

	"dpnfs/internal/sim"
)

// FileID identifies an inode within one store.  IDs are stable across crash
// and recovery: clients hold them inside file handles.
type FileID uint64

// Attr is the attribute set exposed through the protocols.
type Attr struct {
	ID    FileID
	IsDir bool
	Size  int64
	// Change is a mtime/ctime stand-in: bumped on every data/metadata
	// change.  Virtual wall-clock time lives in the simulation, not here,
	// so this is a counter rather than a timestamp.
	Change uint64
}

// Errors mirror the POSIX causes the protocols care about.  internal/fserr
// maps these to wire errnos by identity, so implementations must return
// exactly these values.
var (
	ErrNotExist = errors.New("store: no such file or directory")
	ErrExist    = errors.New("store: file exists")
	ErrIsDir    = errors.New("store: is a directory")
	ErrNotDir   = errors.New("store: not a directory")
	ErrNotEmpty = errors.New("store: directory not empty")
	ErrInval    = errors.New("store: invalid argument")
	// ErrUnavailable is returned by a durable store between Crash and
	// Recover: the node is down and its volatile state is gone.
	ErrUnavailable = errors.New("store: backend unavailable (crashed, not yet recovered)")
	// ErrCorrupt is returned when a read touches data whose block checksum
	// no longer matches — bit rot, a torn write, or a misdirected read
	// (docs/BACKENDS.md "Block checksums").  It maps to the fserr.Corrupt
	// wire code so clients can distinguish "bad bytes" from "bad node" and
	// read-repair from a replica.
	ErrCorrupt = errors.New("store: data integrity error (checksum mismatch)")
)

// Metadata is the namespace repository: directories, names, attributes.
// The PVFS2 metadata server and the NFSv4 MDS speak only this interface.
type Metadata interface {
	// Root returns the root directory's id.
	Root() FileID
	// Lookup resolves name within directory dir.
	Lookup(dir FileID, name string) (Attr, error)
	// LookupPath resolves a slash-separated path from the root.
	LookupPath(p string) (Attr, error)
	// GetAttr returns attributes of id.
	GetAttr(id FileID) (Attr, error)
	// Create makes a regular file in dir; ErrExist if the name is taken.
	Create(dir FileID, name string) (Attr, error)
	// Mkdir makes a directory in dir.
	Mkdir(dir FileID, name string) (Attr, error)
	// Remove unlinks name from dir.  Non-empty directories are refused.
	// The unlinked node remains addressable by id until the store is
	// checkpointed or recovered (open-but-unlinked POSIX semantics).
	Remove(dir FileID, name string) error
	// Rename moves srcName in srcDir to dstName in dstDir, replacing a
	// same-kind target if present (empty directories only).
	Rename(srcDir FileID, srcName string, dstDir FileID, dstName string) error
	// ReadDir lists dir in lexical order.
	ReadDir(dir FileID) ([]string, error)
	// Truncate sets the file size, discarding or zero-extending content.
	Truncate(id FileID, size int64) error
	// SetSize extends the file size if size is larger (pNFS LAYOUTCOMMIT
	// semantics: the client reports a possibly-extended size after direct
	// I/O).
	SetSize(id FileID, size int64) error
}

// Content is the file-bytes repository.  Storage daemons speak only this
// interface (plus whatever Metadata calls they need to name their objects).
type Content interface {
	// ReadAt reads up to len(b) bytes at off; short reads happen at EOF.
	// Holes read as zeros.
	ReadAt(id FileID, off int64, b []byte) (int, error)
	// WriteAt writes b at off, extending the file as needed, and returns
	// the new size.
	WriteAt(id FileID, off int64, b []byte) (int64, error)
	// WriteSyntheticAt records a write of n zero bytes at off without
	// storing them.  Benchmarks move simulated terabytes through this path.
	WriteSyntheticAt(id FileID, off, n int64) (int64, error)
	Syncer
	// Stats reports the number of live (namespace-reachable) inodes.
	Stats() (inodes int)
}

// Syncer is the durability point.  p may be nil (TCP transport: no
// simulated time to charge).  For mem this is a no-op; for wal it makes all
// acknowledged mutations crash-durable and charges the journal flush to the
// node's simdisk.
type Syncer interface {
	Sync(p *sim.Proc) error
}

// Store combines both repositories — what the in-process servers use, since
// every shipped implementation provides both.
type Store interface {
	Metadata
	Content
}

// Corruptible is implemented by backends that support deterministic
// corruption injection (docs/FAULTS.md "Corruption").  All three shipped
// backends implement it: wal and cached forward to their materialized
// image, modelling rot on the data blocks rather than the journal.
type Corruptible interface {
	// CorruptChunk flips one stored byte, chosen deterministically from
	// seed, without updating the block's checksum.  It reports whether any
	// materialized chunk was eligible.
	CorruptChunk(seed int64) bool
	// MisdirectNextRead arms a one-shot wrong-block read against a file
	// chosen deterministically from seed, reporting whether a victim with
	// at least two materialized blocks was found.
	MisdirectNextRead(seed int64) bool
}

// TornWriter is implemented by journaling backends that can model a torn
// write: the next Crash persists only a prefix of the final durable record,
// which the record checksum then catches at Recover.
type TornWriter interface {
	ArmTornWrite()
}

// Recoverable is implemented by durable backends (store/wal, store/cached).
// The faults engine calls Crash when a storage node dies and Recover when
// it restarts.
type Recoverable interface {
	// Crash discards all volatile state: the materialized namespace and
	// any unsynced mutations.  Until Recover, every operation fails with
	// ErrUnavailable.
	Crash()
	// Recover rebuilds the store by replaying the checkpoint and durable
	// log, returning the number of records replayed.
	Recover() (replayed int, err error)
}
