// Package storetest is the backend conformance suite: every store.Store
// implementation must pass Run, and every store.Recoverable must also pass
// RunRecoverable.  The suite pins the semantic corners the protocols rely
// on — rename-over-existing, sparse reads beyond EOF, truncate-then-read,
// open-but-unlinked ids, concurrent writers under -race — so that mem, wal
// and cached agree byte-for-byte and a backend swap never changes observable
// behaviour.
package storetest

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dpnfs/internal/store"
)

// Factory builds a fresh, empty store for one subtest.
type Factory func(t *testing.T) store.Store

// Run drives the conformance suite against stores built by mk.
func Run(t *testing.T, mk Factory) {
	t.Run("CreateLookup", func(t *testing.T) {
		s := mk(t)
		a, err := s.Create(s.Root(), "f")
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Lookup(s.Root(), "f")
		if err != nil || got.ID != a.ID || got.IsDir {
			t.Fatalf("lookup: %+v, %v", got, err)
		}
		if _, err := s.Create(s.Root(), "f"); err != store.ErrExist {
			t.Fatalf("duplicate create: %v, want ErrExist", err)
		}
		if _, err := s.Lookup(s.Root(), "missing"); err != store.ErrNotExist {
			t.Fatalf("missing lookup: %v, want ErrNotExist", err)
		}
	})

	t.Run("RenameOverExisting", func(t *testing.T) {
		s := mk(t)
		a, _ := s.Create(s.Root(), "a")
		if _, err := s.WriteAt(a.ID, 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		b, _ := s.Create(s.Root(), "b")
		if err := s.Rename(s.Root(), "a", s.Root(), "b"); err != nil {
			t.Fatal(err)
		}
		got, err := s.Lookup(s.Root(), "b")
		if err != nil || got.ID != a.ID {
			t.Fatalf("target after rename: %+v, %v", got, err)
		}
		if _, err := s.Lookup(s.Root(), "a"); err != store.ErrNotExist {
			t.Fatalf("source after rename: %v", err)
		}
		// The displaced inode stays addressable (open-but-unlinked).
		if _, err := s.GetAttr(b.ID); err != nil {
			t.Fatalf("displaced inode: %v", err)
		}
		buf := make([]byte, 7)
		if n, err := s.ReadAt(a.ID, 0, buf); err != nil || string(buf[:n]) != "payload" {
			t.Fatalf("payload after rename: %q, %v", buf[:n], err)
		}
	})

	t.Run("RenameOverNonEmptyDir", func(t *testing.T) {
		s := mk(t)
		s.Mkdir(s.Root(), "src")
		d, _ := s.Mkdir(s.Root(), "dst")
		s.Create(d.ID, "occupant")
		if err := s.Rename(s.Root(), "src", s.Root(), "dst"); err != store.ErrNotEmpty {
			t.Fatalf("rename over non-empty dir: %v, want ErrNotEmpty", err)
		}
		// Kind mismatches are refused either way.
		s.Create(s.Root(), "file")
		if err := s.Rename(s.Root(), "file", s.Root(), "dst"); err != store.ErrIsDir {
			t.Fatalf("file over dir: %v, want ErrIsDir", err)
		}
		if err := s.Rename(s.Root(), "src", s.Root(), "file"); err != store.ErrNotDir {
			t.Fatalf("dir over file: %v, want ErrNotDir", err)
		}
	})

	t.Run("RenameSelfAndCycle", func(t *testing.T) {
		s := mk(t)
		f, _ := s.Create(s.Root(), "f")
		if err := s.Rename(s.Root(), "f", s.Root(), "f"); err != nil {
			t.Fatalf("self rename: %v", err)
		}
		if got, err := s.Lookup(s.Root(), "f"); err != nil || got.ID != f.ID {
			t.Fatalf("file lost by self rename: %+v, %v", got, err)
		}
		a, _ := s.Mkdir(s.Root(), "a")
		b, _ := s.Mkdir(a.ID, "b")
		if err := s.Rename(s.Root(), "a", b.ID, "a2"); err != store.ErrInval {
			t.Fatalf("cycle rename: %v, want ErrInval", err)
		}
	})

	t.Run("SparseReadBeyondEOF", func(t *testing.T) {
		s := mk(t)
		f, _ := s.Create(s.Root(), "f")
		if _, err := s.WriteAt(f.ID, 1<<20, []byte("tail")); err != nil {
			t.Fatal(err)
		}
		// The hole reads as zeros.
		buf := make([]byte, 64)
		if n, err := s.ReadAt(f.ID, 1000, buf); err != nil || n != 64 || !bytes.Equal(buf, make([]byte, 64)) {
			t.Fatalf("hole read: %d %v %v", n, buf, err)
		}
		// Reads at and past EOF are empty, not errors.
		if n, err := s.ReadAt(f.ID, 1<<20+4, buf); err != nil || n != 0 {
			t.Fatalf("read at EOF: %d, %v", n, err)
		}
		if n, err := s.ReadAt(f.ID, 1<<30, buf); err != nil || n != 0 {
			t.Fatalf("read past EOF: %d, %v", n, err)
		}
		// A read straddling EOF is short.
		if n, err := s.ReadAt(f.ID, 1<<20+2, buf); err != nil || n != 2 || string(buf[:n]) != "il" {
			t.Fatalf("straddling read: %d %q %v", n, buf[:n], err)
		}
	})

	t.Run("TruncateThenRead", func(t *testing.T) {
		s := mk(t)
		f, _ := s.Create(s.Root(), "f")
		s.WriteAt(f.ID, 0, []byte("abcdef"))
		if err := s.Truncate(f.ID, 3); err != nil {
			t.Fatal(err)
		}
		if err := s.Truncate(f.ID, 6); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 6)
		n, err := s.ReadAt(f.ID, 0, buf)
		if err != nil || n != 6 || !bytes.Equal(buf, []byte{'a', 'b', 'c', 0, 0, 0}) {
			t.Fatalf("truncate leaked data: %q (%d), %v", buf[:n], n, err)
		}
		at, _ := s.GetAttr(f.ID)
		if at.Size != 6 {
			t.Fatalf("size %d, want 6", at.Size)
		}
	})

	t.Run("RemoveOpenUnlinked", func(t *testing.T) {
		s := mk(t)
		f, _ := s.Create(s.Root(), "f")
		s.WriteAt(f.ID, 0, []byte("still here"))
		if err := s.Remove(s.Root(), "f"); err != nil {
			t.Fatal(err)
		}
		// The id stays addressable for readers and writers holding it open.
		buf := make([]byte, 10)
		if n, err := s.ReadAt(f.ID, 0, buf); err != nil || string(buf[:n]) != "still here" {
			t.Fatalf("unlinked read: %q, %v", buf[:n], err)
		}
		if _, err := s.WriteAt(f.ID, 10, []byte("!")); err != nil {
			t.Fatalf("unlinked write: %v", err)
		}
		if _, err := s.Lookup(s.Root(), "f"); err != store.ErrNotExist {
			t.Fatalf("unlinked still visible: %v", err)
		}
	})

	t.Run("RemoveSemantics", func(t *testing.T) {
		s := mk(t)
		d, _ := s.Mkdir(s.Root(), "d")
		s.Create(d.ID, "f")
		if err := s.Remove(s.Root(), "d"); err != store.ErrNotEmpty {
			t.Fatalf("remove non-empty dir: %v", err)
		}
		s.Remove(d.ID, "f")
		if err := s.Remove(s.Root(), "d"); err != nil {
			t.Fatal(err)
		}
		if err := s.Remove(s.Root(), "d"); err != store.ErrNotExist {
			t.Fatalf("double remove: %v", err)
		}
	})

	t.Run("SyntheticSizes", func(t *testing.T) {
		s := mk(t)
		f, _ := s.Create(s.Root(), "f")
		size, err := s.WriteSyntheticAt(f.ID, 0, 1<<20)
		if err != nil || size != 1<<20 {
			t.Fatalf("synthetic write: %d, %v", size, err)
		}
		buf := make([]byte, 16)
		if n, err := s.ReadAt(f.ID, 1000, buf); err != nil || n != 16 || !bytes.Equal(buf, make([]byte, 16)) {
			t.Fatalf("synthetic bytes: %d %v %v", n, buf, err)
		}
		if err := s.SetSize(f.ID, 1<<19); err != nil {
			t.Fatal(err)
		}
		if at, _ := s.GetAttr(f.ID); at.Size != 1<<20 {
			t.Fatalf("SetSize shrank: %d", at.Size)
		}
	})

	t.Run("ReadDirOrder", func(t *testing.T) {
		s := mk(t)
		for _, n := range []string{"c", "a", "b"} {
			s.Create(s.Root(), n)
		}
		names, err := s.ReadDir(s.Root())
		if err != nil || strings.Join(names, ",") != "a,b,c" {
			t.Fatalf("readdir: %v, %v", names, err)
		}
	})

	t.Run("ConcurrentWriters", func(t *testing.T) {
		s := mk(t)
		const writers, blocks = 4, 16
		ids := make([]store.FileID, writers)
		for i := range ids {
			a, err := s.Create(s.Root(), fmt.Sprintf("w%d", i))
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = a.ID
		}
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				payload := bytes.Repeat([]byte{byte('A' + i)}, 1024)
				for j := 0; j < blocks; j++ {
					if _, err := s.WriteAt(ids[i], int64(j)*1024, payload); err != nil {
						t.Errorf("writer %d: %v", i, err)
						return
					}
					if err := s.Sync(nil); err != nil {
						t.Errorf("writer %d sync: %v", i, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i := 0; i < writers; i++ {
			want := bytes.Repeat([]byte{byte('A' + i)}, blocks*1024)
			got := make([]byte, len(want))
			if n, err := s.ReadAt(ids[i], 0, got); err != nil || n != len(want) || !bytes.Equal(got, want) {
				t.Fatalf("writer %d read back: n=%d, %v", i, n, err)
			}
		}
	})
}

// RunCorruptible drives the data-integrity contract every shipped backend
// honours: injected corruption is never served as wrong bytes — reads fail
// with the typed store.ErrCorrupt — and a legitimate full-chunk rewrite
// reseals the block checksum, which is exactly what read-repair and the
// scrubber rely on.
func RunCorruptible(t *testing.T, mk Factory) {
	corr := func(t *testing.T, s store.Store) store.Corruptible {
		t.Helper()
		c, ok := s.(store.Corruptible)
		if !ok {
			t.Fatalf("%T does not implement store.Corruptible", s)
		}
		return c
	}
	// Two 64 KiB chunks of a non-zero pattern: enough materialized state
	// for both the bit-rot victim walk and the misdirect donor rule.
	const chunk = 64 << 10
	pattern := func() []byte {
		b := make([]byte, 2*chunk)
		for i := range b {
			b[i] = byte(i/997 + 13)
		}
		return b
	}

	t.Run("BitRotReadsTyped", func(t *testing.T) {
		s := mk(t)
		c := corr(t, s)
		want := pattern()
		f, _ := s.Create(s.Root(), "f")
		if _, err := s.WriteAt(f.ID, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(nil); err != nil {
			t.Fatal(err)
		}
		if !c.CorruptChunk(7) {
			t.Fatal("CorruptChunk found nothing to rot (vacuous)")
		}
		buf := make([]byte, len(want))
		if _, err := s.ReadAt(f.ID, 0, buf); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("read of rotted file: %v, want ErrCorrupt", err)
		}
		// Repair is an ordinary full overwrite: the write reseals the
		// checksums, after which reads are clean and byte-identical.
		if _, err := s.WriteAt(f.ID, 0, want); err != nil {
			t.Fatalf("repair write: %v", err)
		}
		n, err := s.ReadAt(f.ID, 0, buf)
		if err != nil || n != len(want) || !bytes.Equal(buf, want) {
			t.Fatalf("read after repair: n=%d, %v", n, err)
		}
	})

	t.Run("MisdirectedReadOneShot", func(t *testing.T) {
		s := mk(t)
		c := corr(t, s)
		want := pattern()
		f, _ := s.Create(s.Root(), "f")
		if _, err := s.WriteAt(f.ID, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(nil); err != nil {
			t.Fatal(err)
		}
		if !c.MisdirectNextRead(3) {
			t.Fatal("MisdirectNextRead found no victim (vacuous)")
		}
		// The wrong block arrives under the right block's location-salted
		// checksum, so it must surface as ErrCorrupt — never as silently
		// transposed bytes.
		buf := make([]byte, len(want))
		if _, err := s.ReadAt(f.ID, 0, buf); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("misdirected read: %v, want ErrCorrupt", err)
		}
		// One-shot: the stored bytes were never damaged, so the retry that
		// the clients' bounded integrity-retry policy issues succeeds.
		n, err := s.ReadAt(f.ID, 0, buf)
		if err != nil || n != len(want) || !bytes.Equal(buf, want) {
			t.Fatalf("read after misdirect consumed: n=%d, %v", n, err)
		}
	})

	t.Run("SyntheticOnlyHasNothingToRot", func(t *testing.T) {
		s := mk(t)
		c := corr(t, s)
		f, _ := s.Create(s.Root(), "f")
		if _, err := s.WriteSyntheticAt(f.ID, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if c.CorruptChunk(1) {
			t.Fatal("CorruptChunk rotted a store with no materialized bytes")
		}
		if c.MisdirectNextRead(1) {
			t.Fatal("MisdirectNextRead armed without a two-chunk victim")
		}
	})
}

// RecoverableFactory builds a fresh store that also implements
// store.Recoverable.
type RecoverableFactory func(t *testing.T) store.Store

// RunRecoverable drives the crash/recover contract: everything acknowledged
// before a Sync survives Crash+Recover byte-identically under the same ids,
// everything after the last Sync is lost, and a crashed store refuses
// service until recovered.
func RunRecoverable(t *testing.T, mk RecoverableFactory) {
	rec := func(t *testing.T, s store.Store) store.Recoverable {
		r, ok := s.(store.Recoverable)
		if !ok {
			t.Fatalf("%T does not implement store.Recoverable", s)
		}
		return r
	}

	t.Run("SyncedStateSurvives", func(t *testing.T) {
		s := mk(t)
		r := rec(t, s)
		d, _ := s.Mkdir(s.Root(), "dir")
		f, err := s.Create(d.ID, "f")
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("durable bytes")
		s.WriteAt(f.ID, 0, payload)
		s.WriteSyntheticAt(f.ID, 1<<16, 1<<16)
		if err := s.Sync(nil); err != nil {
			t.Fatal(err)
		}
		r.Crash()
		replayed, err := r.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if replayed == 0 {
			t.Fatal("recovery replayed nothing (vacuous)")
		}
		got, err := s.LookupPath("/dir/f")
		if err != nil || got.ID != f.ID {
			t.Fatalf("id not stable across recovery: %+v, %v (want %d)", got, err, f.ID)
		}
		if got.Size != 1<<16+1<<16 {
			t.Fatalf("size after recovery: %d", got.Size)
		}
		buf := make([]byte, len(payload))
		if n, _ := s.ReadAt(f.ID, 0, buf); !bytes.Equal(buf[:n], payload) {
			t.Fatalf("bytes after recovery: %q", buf[:n])
		}
	})

	t.Run("UnsyncedTailLost", func(t *testing.T) {
		s := mk(t)
		r := rec(t, s)
		f, _ := s.Create(s.Root(), "f")
		s.WriteAt(f.ID, 0, []byte("synced"))
		if err := s.Sync(nil); err != nil {
			t.Fatal(err)
		}
		s.WriteAt(f.ID, 0, []byte("VOLATILE OVERWRITE"))
		s.Create(s.Root(), "unsynced")
		r.Crash()
		if _, err := r.Recover(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 32)
		n, _ := s.ReadAt(f.ID, 0, buf)
		if string(buf[:n]) != "synced" {
			t.Fatalf("tail not dropped: %q", buf[:n])
		}
		if _, err := s.Lookup(s.Root(), "unsynced"); err != store.ErrNotExist {
			t.Fatalf("unsynced create survived: %v", err)
		}
	})

	t.Run("CrashedRefusesService", func(t *testing.T) {
		s := mk(t)
		r := rec(t, s)
		f, _ := s.Create(s.Root(), "f")
		s.Sync(nil)
		r.Crash()
		if _, err := s.Lookup(s.Root(), "f"); err != store.ErrUnavailable {
			t.Fatalf("lookup while crashed: %v, want ErrUnavailable", err)
		}
		if _, err := s.WriteAt(f.ID, 0, []byte("x")); err != store.ErrUnavailable {
			t.Fatalf("write while crashed: %v, want ErrUnavailable", err)
		}
		if err := s.Sync(nil); err != store.ErrUnavailable {
			t.Fatalf("sync while crashed: %v, want ErrUnavailable", err)
		}
		if _, err := r.Recover(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Lookup(s.Root(), "f"); err != nil {
			t.Fatalf("lookup after recover: %v", err)
		}
	})

	t.Run("NamespaceOpsReplay", func(t *testing.T) {
		s := mk(t)
		r := rec(t, s)
		a, _ := s.Mkdir(s.Root(), "a")
		b, _ := s.Mkdir(s.Root(), "b")
		f, _ := s.Create(a.ID, "f")
		s.WriteAt(f.ID, 0, []byte("x"))
		s.Rename(a.ID, "f", b.ID, "g")
		s.Create(a.ID, "gone")
		s.Remove(a.ID, "gone")
		s.Truncate(f.ID, 0)
		s.Sync(nil)
		r.Crash()
		if _, err := r.Recover(); err != nil {
			t.Fatal(err)
		}
		got, err := s.LookupPath("/b/g")
		if err != nil || got.ID != f.ID || got.Size != 0 {
			t.Fatalf("replayed namespace: %+v, %v", got, err)
		}
		if _, err := s.LookupPath("/a/gone"); err != store.ErrNotExist {
			t.Fatalf("removed file replayed back: %v", err)
		}
	})
}

// Dump renders a store's namespace-reachable state — paths, kinds, sizes
// and full contents — through the public interface only, so two backends
// can be compared byte-for-byte.
func Dump(t *testing.T, s store.Store) string {
	t.Helper()
	var sb strings.Builder
	var walk func(dir store.FileID, prefix string)
	walk = func(dir store.FileID, prefix string) {
		names, err := s.ReadDir(dir)
		if err != nil {
			t.Fatalf("dump readdir %s: %v", prefix, err)
		}
		for _, name := range names {
			at, err := s.Lookup(dir, name)
			if err != nil {
				t.Fatalf("dump lookup %s%s: %v", prefix, name, err)
			}
			if at.IsDir {
				fmt.Fprintf(&sb, "%s%s/\n", prefix, name)
				walk(at.ID, prefix+name+"/")
				continue
			}
			buf := make([]byte, at.Size)
			n, err := s.ReadAt(at.ID, 0, buf)
			if err != nil {
				t.Fatalf("dump read %s%s: %v", prefix, name, err)
			}
			fmt.Fprintf(&sb, "%s%s id=%d size=%d bytes=%x\n", prefix, name, at.ID, at.Size, buf[:n])
		}
	}
	walk(s.Root(), "/")
	return sb.String()
}
