// Package pvfs implements the exported parallel file system: a PVFS2-like
// user-level system with one metadata server, N storage daemons, and
// striping clients (paper §5).
//
// The behavioural properties the paper leans on are modelled explicitly:
//
//   - no client data cache and no write-back cache: every application
//     request becomes at least one protocol request;
//   - substantial per-request overhead (user-level daemon crossings);
//   - a fixed pool of transfer buffers between the "kernel" and the
//     user-level storage daemon, held for the duration of each I/O;
//   - data buffered on storage nodes and flushed to stable storage only on
//     application fsync;
//   - file size reconstructed from per-node datafile sizes (metadata is
//     decentralized, so GetAttr fans out to every storage node);
//   - create/remove touch every storage node to manage datafile objects.
package pvfs

import (
	"dpnfs/internal/fserr"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

// Procedure numbers for the metadata service ("pvfs-meta").
const (
	ProcLookup uint32 = iota + 1
	ProcCreate
	ProcRemove
	ProcMkdir
	ProcReadDir
	ProcGetAttr
	ProcTruncate
)

// Procedure numbers for the storage I/O service ("pvfs-io").
const (
	ProcIORead uint32 = iota + 100
	ProcIOWrite
	ProcIOCreate
	ProcIORemove
	ProcIOGetSize
	ProcIOFlush
	ProcIOTruncate
)

// ServiceMeta and ServiceIO are the simnet service names.
const (
	ServiceMeta = "pvfs-meta"
	ServiceIO   = "pvfs-io"
)

// Handle identifies a PVFS2 object (meta file or datafile) cluster-wide.
type Handle uint64

// LookupArgs resolves a path to a handle and distribution parameters.
type LookupArgs struct{ Path string }

// LookupRep is the reply to ProcLookup.
type LookupRep struct {
	Errno  fserr.Errno
	Handle Handle
	IsDir  bool
	Size   int64
	Dist   DistParams
	// Data is the handle addressing the file's stripe objects on the
	// storage daemons.  It equals Handle for files that have never been
	// migrated; after a rebalance it names the shadow objects the data was
	// copied into.  Zero means "same as Handle" (legacy peers).
	Data Handle
}

// DistParams carries the file's distribution (aggregation) geometry.
type DistParams struct {
	StripeSize int64
	NumServers uint32
	// Servers optionally lists the stable storage-server IDs in stripe
	// order.  Empty means the legacy positional geometry [0..NumServers):
	// the encoding every pre-membership peer produced.  When set,
	// len(Servers) == NumServers.
	Servers []uint32
	// Copies stores this many full replicas of the stripe, the server list
	// partitioned per replica exactly like stripe.Replicated: replica r
	// owns servers [r*n/Copies, (r+1)*n/Copies).  0 and 1 both mean
	// unreplicated.  Replication at the distribution level is what lets
	// every architecture's pvfs substrate read-repair corrupt blocks from
	// a surviving copy.
	Copies uint32
}

// Mapper instantiates the distribution's aggregation driver.  Geometry the
// replication factor cannot divide falls back to plain round-robin — a
// misconfiguration surfaced loudly by the cluster layer, never here on the
// I/O path.
func (p DistParams) Mapper() stripe.Mapper {
	n := max(len(p.ServerIDs()), 1)
	if p.Copies > 1 && n%int(p.Copies) == 0 {
		return stripe.NewReplicated(
			stripe.NewRoundRobin(p.StripeSize, n/int(p.Copies)), int(p.Copies))
	}
	return stripe.NewRoundRobin(p.StripeSize, n)
}

// logicalEnd reconstructs the logical file end implied by a stripe object
// of objSize bytes on dev, for mappers that support size reconstruction
// (round-robin and replicated round-robin — every mapper a DistParams can
// produce).
func logicalEnd(m stripe.Mapper, dev int, objSize int64) int64 {
	type ender interface {
		LogicalEnd(dev int, objSize int64) int64
	}
	e, ok := m.(ender)
	if !ok {
		return 0
	}
	return e.LogicalEnd(dev, objSize)
}

// ServerIDs returns the stripe-order server IDs, materializing the legacy
// positional list when Servers is empty.
func (p DistParams) ServerIDs() []uint32 {
	if len(p.Servers) > 0 {
		return p.Servers
	}
	ids := make([]uint32, p.NumServers)
	for i := range ids {
		ids[i] = uint32(i)
	}
	return ids
}

// CreateArgs creates a regular file; the MDS creates datafile objects on
// every storage node before replying.
type CreateArgs struct{ Path string }

// CreateRep is the reply to ProcCreate.
type CreateRep struct {
	Errno  fserr.Errno
	Handle Handle
	Dist   DistParams
	// Data mirrors LookupRep.Data (equal to Handle at creation).
	Data Handle
}

// RemoveArgs unlinks a file or empty directory, removing datafiles from
// every storage node.
type RemoveArgs struct{ Path string }

// RemoveRep is the reply to ProcRemove.
type RemoveRep struct{ Errno fserr.Errno }

// MkdirArgs creates a directory (metadata only).
type MkdirArgs struct{ Path string }

// MkdirRep is the reply to ProcMkdir.
type MkdirRep struct {
	Errno  fserr.Errno
	Handle Handle
}

// ReadDirArgs lists a directory.
type ReadDirArgs struct{ Path string }

// ReadDirRep is the reply to ProcReadDir.
type ReadDirRep struct {
	Errno fserr.Errno
	Names []string
}

// GetAttrArgs fetches attributes; the MDS gathers datafile sizes from every
// storage node to reconstruct the logical size.
type GetAttrArgs struct{ Handle Handle }

// GetAttrRep is the reply to ProcGetAttr.
type GetAttrRep struct {
	Errno fserr.Errno
	IsDir bool
	Size  int64
	// Change is the file's change attribute, reconstructed as the sum of
	// the datafile change counters plus the metadata object's own counter.
	Change uint64
}

// TruncateArgs sets a file's size, truncating datafiles on every node.
type TruncateArgs struct {
	Handle Handle
	Size   int64
}

// TruncateRep is the reply to ProcTruncate.
type TruncateRep struct{ Errno fserr.Errno }

// IOReadArgs reads from a datafile (device-space offset).
type IOReadArgs struct {
	Handle Handle
	Off    int64
	Len    int64
	// WantReal asks for materialized bytes (integration tests / demo);
	// benchmarks leave it false and receive synthetic payloads.
	WantReal bool
}

// IOReadRep is the reply to ProcIORead.
type IOReadRep struct {
	Errno fserr.Errno
	Data  payload.Payload
	// Eof reports a short read at end of object.
	Eof bool
	// Sum is an optional CRC32C over the payload bytes (HasSum gates it),
	// computed by daemons with wire checksums enabled so clients can verify
	// the payload end to end (docs/BACKENDS.md "Block checksums").
	Sum    uint32
	HasSum bool
}

// IOWriteArgs writes to a datafile (device-space offset).
type IOWriteArgs struct {
	Handle Handle
	Off    int64
	Data   payload.Payload
	// Sync asks the daemon to flush this object before replying.
	Sync bool
}

// IOWriteRep is the reply to ProcIOWrite.
type IOWriteRep struct {
	Errno   fserr.Errno
	ObjSize int64 // datafile size after the write
}

// IOCreateArgs creates the datafile object for Handle on this node.
type IOCreateArgs struct{ Handle Handle }

// IOCreateRep is the reply to ProcIOCreate.
type IOCreateRep struct{ Errno fserr.Errno }

// IORemoveArgs deletes the datafile object for Handle on this node.
type IORemoveArgs struct{ Handle Handle }

// IORemoveRep is the reply to ProcIORemove.
type IORemoveRep struct{ Errno fserr.Errno }

// IOGetSizeArgs asks for the datafile object size.
type IOGetSizeArgs struct{ Handle Handle }

// IOGetSizeRep is the reply to ProcIOGetSize.
type IOGetSizeRep struct {
	Errno  fserr.Errno
	Size   int64
	Change uint64 // object change counter
}

// IOFlushArgs forces buffered object data to stable storage.
type IOFlushArgs struct{ Handle Handle }

// IOFlushRep is the reply to ProcIOFlush.
type IOFlushRep struct{ Errno fserr.Errno }

// IOTruncateArgs truncates the datafile object.
type IOTruncateArgs struct {
	Handle  Handle
	ObjSize int64
}

// IOTruncateRep is the reply to ProcIOTruncate.
type IOTruncateRep struct{ Errno fserr.Errno }

// ---- XDR ----

func (a *LookupArgs) MarshalXDR(e *xdr.Encoder) { e.String(a.Path) }
func (a *LookupArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	a.Path, err = d.String()
	return err
}

func (r *LookupRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint64(uint64(r.Handle))
	e.Bool(r.IsDir)
	e.Int64(r.Size)
	r.Dist.MarshalXDR(e)
	e.Uint64(uint64(r.Data))
}

func (r *LookupRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	r.Handle = Handle(h)
	if r.IsDir, err = d.Bool(); err != nil {
		return err
	}
	if r.Size, err = d.Int64(); err != nil {
		return err
	}
	if err = r.Dist.UnmarshalXDR(d); err != nil {
		return err
	}
	dh, err := d.Uint64()
	r.Data = Handle(dh)
	return err
}

func (p *DistParams) MarshalXDR(e *xdr.Encoder) {
	e.Int64(p.StripeSize)
	e.Uint32(p.NumServers)
	e.Uint32(uint32(len(p.Servers)))
	for _, id := range p.Servers {
		e.Uint32(id)
	}
	e.Uint32(p.Copies)
}

func (p *DistParams) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if p.StripeSize, err = d.Int64(); err != nil {
		return err
	}
	if p.NumServers, err = d.Uint32(); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 4096 {
		return xdr.ErrTooLong
	}
	p.Servers = nil
	if n > 0 {
		p.Servers = make([]uint32, n)
		for i := range p.Servers {
			if p.Servers[i], err = d.Uint32(); err != nil {
				return err
			}
		}
	}
	p.Copies, err = d.Uint32()
	return err
}

func (a *CreateArgs) MarshalXDR(e *xdr.Encoder) { e.String(a.Path) }
func (a *CreateArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	a.Path, err = d.String()
	return err
}

func (r *CreateRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint64(uint64(r.Handle))
	r.Dist.MarshalXDR(e)
	e.Uint64(uint64(r.Data))
}

func (r *CreateRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	r.Handle = Handle(h)
	if err = r.Dist.UnmarshalXDR(d); err != nil {
		return err
	}
	dh, err := d.Uint64()
	r.Data = Handle(dh)
	return err
}

func (a *RemoveArgs) MarshalXDR(e *xdr.Encoder) { e.String(a.Path) }
func (a *RemoveArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	a.Path, err = d.String()
	return err
}

func (r *RemoveRep) MarshalXDR(e *xdr.Encoder) { e.Uint32(uint32(r.Errno)) }
func (r *RemoveRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	r.Errno = fserr.Errno(v)
	return err
}

func (a *MkdirArgs) MarshalXDR(e *xdr.Encoder) { e.String(a.Path) }
func (a *MkdirArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	a.Path, err = d.String()
	return err
}

func (r *MkdirRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint64(uint64(r.Handle))
}

func (r *MkdirRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	h, err := d.Uint64()
	r.Handle = Handle(h)
	return err
}

func (a *ReadDirArgs) MarshalXDR(e *xdr.Encoder) { e.String(a.Path) }
func (a *ReadDirArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	a.Path, err = d.String()
	return err
}

func (r *ReadDirRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint32(uint32(len(r.Names)))
	for _, n := range r.Names {
		e.String(n)
	}
}

func (r *ReadDirRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	// Every encoded name needs at least its 4-byte length word, so a count
	// beyond Remaining()/4 is a corrupt (or hostile) frame — reject it
	// before allocating, instead of letting an 8-byte frame demand a
	// million-entry slice.
	if n > 1<<20 || int64(n) > int64(d.Remaining()/4) {
		return xdr.ErrTooLong
	}
	r.Names = make([]string, n)
	for i := range r.Names {
		if r.Names[i], err = d.String(); err != nil {
			return err
		}
	}
	return nil
}

func (a *GetAttrArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Handle)) }
func (a *GetAttrArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Handle = Handle(h)
	return err
}

func (r *GetAttrRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Bool(r.IsDir)
	e.Int64(r.Size)
	e.Uint64(r.Change)
}

func (r *GetAttrRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	if r.IsDir, err = d.Bool(); err != nil {
		return err
	}
	if r.Size, err = d.Int64(); err != nil {
		return err
	}
	r.Change, err = d.Uint64()
	return err
}

func (a *TruncateArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Handle))
	e.Int64(a.Size)
}

func (a *TruncateArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Handle = Handle(h)
	a.Size, err = d.Int64()
	return err
}

func (r *TruncateRep) MarshalXDR(e *xdr.Encoder) { e.Uint32(uint32(r.Errno)) }
func (r *TruncateRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	r.Errno = fserr.Errno(v)
	return err
}

func (a *IOReadArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Handle))
	e.Int64(a.Off)
	e.Int64(a.Len)
	e.Bool(a.WantReal)
}

func (a *IOReadArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Handle = Handle(h)
	if a.Off, err = d.Int64(); err != nil {
		return err
	}
	if a.Len, err = d.Int64(); err != nil {
		return err
	}
	a.WantReal, err = d.Bool()
	return err
}

func (r *IOReadRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	r.Data.MarshalXDR(e)
	e.Bool(r.Eof)
	e.Uint32(r.Sum)
	e.Bool(r.HasSum)
}

func (r *IOReadRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	if err = r.Data.UnmarshalXDR(d); err != nil {
		return err
	}
	if r.Eof, err = d.Bool(); err != nil {
		return err
	}
	if r.Sum, err = d.Uint32(); err != nil {
		return err
	}
	r.HasSum, err = d.Bool()
	return err
}

// WireSize lets bulk read replies cross the simulated NIC without
// materializing payload bytes.
func (r *IOReadRep) WireSize() int64 {
	return xdr.SizeUint32 + r.Data.WireSize() + xdr.SizeBool + xdr.SizeUint32 + xdr.SizeBool
}

func (a *IOWriteArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Handle))
	e.Int64(a.Off)
	a.Data.MarshalXDR(e)
	e.Bool(a.Sync)
}

func (a *IOWriteArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Handle = Handle(h)
	if a.Off, err = d.Int64(); err != nil {
		return err
	}
	if err = a.Data.UnmarshalXDR(d); err != nil {
		return err
	}
	a.Sync, err = d.Bool()
	return err
}

// WireSize lets bulk writes cross the simulated NIC without materializing
// payload bytes.
func (a *IOWriteArgs) WireSize() int64 {
	return xdr.SizeUint64 + xdr.SizeUint64 + a.Data.WireSize() + xdr.SizeBool
}

func (r *IOWriteRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Int64(r.ObjSize)
}

func (r *IOWriteRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	r.ObjSize, err = d.Int64()
	return err
}

func (a *IOCreateArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Handle)) }
func (a *IOCreateArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Handle = Handle(h)
	return err
}

func (r *IOCreateRep) MarshalXDR(e *xdr.Encoder) { e.Uint32(uint32(r.Errno)) }
func (r *IOCreateRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	r.Errno = fserr.Errno(v)
	return err
}

func (a *IORemoveArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Handle)) }
func (a *IORemoveArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Handle = Handle(h)
	return err
}

func (r *IORemoveRep) MarshalXDR(e *xdr.Encoder) { e.Uint32(uint32(r.Errno)) }
func (r *IORemoveRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	r.Errno = fserr.Errno(v)
	return err
}

func (a *IOGetSizeArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Handle)) }
func (a *IOGetSizeArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Handle = Handle(h)
	return err
}

func (r *IOGetSizeRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Int64(r.Size)
	e.Uint64(r.Change)
}

func (r *IOGetSizeRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	if r.Size, err = d.Int64(); err != nil {
		return err
	}
	r.Change, err = d.Uint64()
	return err
}

func (a *IOFlushArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Handle)) }
func (a *IOFlushArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Handle = Handle(h)
	return err
}

func (r *IOFlushRep) MarshalXDR(e *xdr.Encoder) { e.Uint32(uint32(r.Errno)) }
func (r *IOFlushRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	r.Errno = fserr.Errno(v)
	return err
}

func (a *IOTruncateArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Handle))
	e.Int64(a.ObjSize)
}

func (a *IOTruncateArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Handle = Handle(h)
	a.ObjSize, err = d.Int64()
	return err
}

func (r *IOTruncateRep) MarshalXDR(e *xdr.Encoder) { e.Uint32(uint32(r.Errno)) }
func (r *IOTruncateRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	r.Errno = fserr.Errno(v)
	return err
}

// MetaRegistry returns the request registry for the metadata service.
func MetaRegistry() *rpc.Registry {
	reg := rpc.NewRegistry()
	reg.Register(ProcLookup, func() xdr.Unmarshaler { return &LookupArgs{} })
	reg.Register(ProcCreate, func() xdr.Unmarshaler { return &CreateArgs{} })
	reg.Register(ProcRemove, func() xdr.Unmarshaler { return &RemoveArgs{} })
	reg.Register(ProcMkdir, func() xdr.Unmarshaler { return &MkdirArgs{} })
	reg.Register(ProcReadDir, func() xdr.Unmarshaler { return &ReadDirArgs{} })
	reg.Register(ProcGetAttr, func() xdr.Unmarshaler { return &GetAttrArgs{} })
	reg.Register(ProcTruncate, func() xdr.Unmarshaler { return &TruncateArgs{} })
	reg.Register(ProcLookupH, func() xdr.Unmarshaler { return &DirOpArgs{} })
	reg.Register(ProcCreateH, func() xdr.Unmarshaler { return &DirOpArgs{} })
	reg.Register(ProcMkdirH, func() xdr.Unmarshaler { return &DirOpArgs{} })
	reg.Register(ProcRemoveH, func() xdr.Unmarshaler { return &DirOpArgs{} })
	reg.Register(ProcRenameH, func() xdr.Unmarshaler { return &RenameHArgs{} })
	reg.Register(ProcReadDirH, func() xdr.Unmarshaler { return &ReadDirHArgs{} })
	reg.Register(ProcPlacementH, func() xdr.Unmarshaler { return &PlacementHArgs{} })
	return reg
}

// IORegistry returns the request registry for the storage I/O service.
func IORegistry() *rpc.Registry {
	reg := rpc.NewRegistry()
	reg.Register(ProcIORead, func() xdr.Unmarshaler { return &IOReadArgs{} })
	reg.Register(ProcIOWrite, func() xdr.Unmarshaler { return &IOWriteArgs{} })
	reg.Register(ProcIOCreate, func() xdr.Unmarshaler { return &IOCreateArgs{} })
	reg.Register(ProcIORemove, func() xdr.Unmarshaler { return &IORemoveArgs{} })
	reg.Register(ProcIOGetSize, func() xdr.Unmarshaler { return &IOGetSizeArgs{} })
	reg.Register(ProcIOFlush, func() xdr.Unmarshaler { return &IOFlushArgs{} })
	reg.Register(ProcIOTruncate, func() xdr.Unmarshaler { return &IOTruncateArgs{} })
	return reg
}
