package pvfs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dpnfs/internal/fserr"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simdisk"
	"dpnfs/internal/simnet"
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

// Costs captures the CPU cost model for the user-level PVFS2 daemons and
// client library.  The per-op charges are what make PVFS2 collapse on
// small-I/O workloads (paper §6.2, §6.4); the per-MB charges bound
// cache-resident read throughput.
type Costs struct {
	ServerPerOp time.Duration // daemon request processing + kernel crossings
	ServerPerMB time.Duration // data movement CPU per MiB on storage nodes
	ClientPerOp time.Duration // client library + kernel module crossing
	ClientPerMB time.Duration // client-side copy cost per MiB
	MetaPerOp   time.Duration // metadata request processing on the MDS
}

// DefaultCosts reflects the paper's testbed: a user-level file system with
// "substantial per-request overhead" on dual-P4 servers and dual-P3 clients.
func DefaultCosts() Costs {
	return Costs{
		ServerPerOp: 550 * time.Microsecond,
		ServerPerMB: 20 * time.Millisecond,
		ClientPerOp: 450 * time.Microsecond,
		ClientPerMB: 5 * time.Millisecond,
		MetaPerOp:   300 * time.Microsecond,
	}
}

func perMB(d time.Duration, n int64) time.Duration {
	return time.Duration(float64(d) * float64(n) / (1 << 20))
}

// StorageConfig describes one storage daemon.
type StorageConfig struct {
	Fabric *simnet.Fabric
	Node   *simnet.Node
	Disk   *simdisk.Disk
	Costs  Costs
	// Store is the content repository backing this daemon's datafile
	// objects (nil: a fresh in-memory store).  Durable stores (store/wal,
	// store/cached) journal on sync requests and survive CrashVolatile.
	Store   store.Store
	Buffers int   // fixed transfer-buffer pool between kernel and daemon
	BufSize int64 // bytes per transfer buffer
	Threads int   // daemon request concurrency
	// Transport, when set, registers ServiceIO through the transport
	// abstraction (simulated fabric or real TCP) under Node's name instead
	// of the legacy Fabric path.
	Transport rpc.Transport
	// WireChecksums makes real read replies carry a CRC32C over the payload
	// so clients can verify it end to end (docs/BACKENDS.md).
	WireChecksums bool
	// Metrics is the shared observability registry (docs/METRICS.md); nil
	// discards.
	Metrics *metrics.Registry
}

// StorageServer is one PVFS2 storage daemon (Trove+BMI equivalent): it owns
// the datafile objects on its node.  Handle is safe for concurrent calls.
type StorageServer struct {
	cfg     StorageConfig
	store   store.Store
	bufPool *sim.Semaphore
	stats   *storageStats

	mu      sync.Mutex // guards objects
	objects map[Handle]store.FileID
}

// NewStorageServer creates the daemon state and registers its RPC service
// on the node when a transport or fabric is configured.
func NewStorageServer(cfg StorageConfig) *StorageServer {
	if cfg.Buffers <= 0 {
		cfg.Buffers = 16
	}
	if cfg.BufSize <= 0 {
		cfg.BufSize = 256 << 10
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 16
	}
	if cfg.Store == nil {
		cfg.Store = mem.New()
	}
	s := &StorageServer{
		cfg:     cfg,
		store:   cfg.Store,
		objects: make(map[Handle]store.FileID),
		stats:   newStorageStats(cfg.Metrics),
	}
	name := "pvfs-storage"
	if cfg.Node != nil {
		name = cfg.Node.Name + "/bufpool"
	}
	s.bufPool = sim.NewSemaphore(name, cfg.Buffers)
	switch {
	case cfg.Transport != nil && cfg.Node != nil:
		if _, err := cfg.Transport.Serve(cfg.Node.Name, ServiceIO, IORegistry(), s.Handle, cfg.Threads); err != nil {
			panic("pvfs: register storage service: " + err.Error())
		}
	case cfg.Fabric != nil:
		rpc.ServeSim(rpc.ServerConfig{
			Fabric:  cfg.Fabric,
			Node:    cfg.Node,
			Service: ServiceIO,
			Threads: cfg.Threads,
			Handler: s.Handle,
		})
	}
	return s
}

// object returns the store file backing handle, or 0 if absent.
func (s *StorageServer) object(h Handle) (store.FileID, bool) {
	s.mu.Lock()
	id, ok := s.objects[h]
	s.mu.Unlock()
	return id, ok
}

// HandleFor reverse-maps a store file back to its datafile handle — the
// scrubber walks the store by FileID but replicas are addressed over the
// wire by Handle.
func (s *StorageServer) HandleFor(id store.FileID) (Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for h, fid := range s.objects {
		if fid == id {
			return h, true
		}
	}
	return 0, false
}

// Store exposes the daemon's content store (scrub wiring, tests).
func (s *StorageServer) Store() store.Store { return s.store }

// ObjectSize reports the datafile object size for handle (0 if absent) —
// used by cache warming and tests.
func (s *StorageServer) ObjectSize(h Handle) int64 {
	id, ok := s.object(h)
	if !ok {
		return 0
	}
	at, err := s.store.GetAttr(id)
	if err != nil {
		return 0
	}
	return at.Size
}

// CrashVolatile models the node's power loss for the daemon's store: a
// durable backend drops to its log and the in-memory handle table is
// cleared.  It is a no-op for non-recoverable (mem) stores — there a plain
// node-down models an unreachable-but-alive node, which is what the PR 3
// failover tests exercise.
func (s *StorageServer) CrashVolatile() {
	rec, ok := s.store.(store.Recoverable)
	if !ok {
		return
	}
	s.mu.Lock()
	s.objects = make(map[Handle]store.FileID)
	s.mu.Unlock()
	rec.Crash()
}

// CorruptData flips one stored byte in the daemon's store, chosen
// deterministically from seed, leaving the block checksum stale.  It
// reports whether any materialized block was eligible (false also when the
// backend has no corruption hooks).
func (s *StorageServer) CorruptData(seed int64) bool {
	c, ok := s.store.(store.Corruptible)
	if !ok {
		return false
	}
	return c.CorruptChunk(seed)
}

// MisdirectRead arms a one-shot wrong-block read in the daemon's store,
// reporting whether a victim was found.
func (s *StorageServer) MisdirectRead(seed int64) bool {
	c, ok := s.store.(store.Corruptible)
	if !ok {
		return false
	}
	return c.MisdirectNextRead(seed)
}

// ArmTornWrite arms the daemon's store so its next crash tears the final
// journal record; false when the backend does not journal.
func (s *StorageServer) ArmTornWrite() bool {
	tw, ok := s.store.(store.TornWriter)
	if !ok {
		return false
	}
	tw.ArmTornWrite()
	return true
}

// RecoverVolatile replays the durable log after a restart and rebuilds the
// handle table from the recovered object names ("h%x" in the store root).
// It reports the number of log records replayed (0 for mem stores).
func (s *StorageServer) RecoverVolatile() (int, error) {
	rec, ok := s.store.(store.Recoverable)
	if !ok {
		return 0, nil
	}
	n, err := rec.Recover()
	if err != nil {
		return n, err
	}
	names, err := s.store.ReadDir(s.store.Root())
	if err != nil {
		return n, err
	}
	objects := make(map[Handle]store.FileID, len(names))
	for _, name := range names {
		var h uint64
		if _, err := fmt.Sscanf(name, "h%x", &h); err != nil {
			continue
		}
		at, err := s.store.Lookup(s.store.Root(), name)
		if err != nil {
			continue
		}
		objects[Handle(h)] = at.ID
	}
	s.mu.Lock()
	s.objects = objects
	s.mu.Unlock()
	return n, nil
}

// Node returns the simnet node this daemon runs on (nil in real-time mode).
func (s *StorageServer) Node() *simnet.Node { return s.cfg.Node }

// Disk returns the daemon's disk model (nil in real-time mode).
func (s *StorageServer) Disk() *simdisk.Disk { return s.cfg.Disk }

// bufSlots computes how many pool buffers an n-byte transfer occupies,
// clamped to the pool size so a single huge request cannot deadlock.
func (s *StorageServer) bufSlots(n int64) int {
	slots := int((n + s.cfg.BufSize - 1) / s.cfg.BufSize)
	if slots < 1 {
		slots = 1
	}
	if slots > s.cfg.Buffers {
		slots = s.cfg.Buffers
	}
	return slots
}

// acquireBuffers blocks until the transfer buffers are available (sim mode
// only) and returns a release func.
func (s *StorageServer) acquireBuffers(ctx *rpc.Ctx, n int64) func() {
	if ctx.P == nil {
		return func() {}
	}
	slots := s.bufSlots(n)
	waitStart := ctx.Now()
	s.bufPool.Acquire(ctx.P, slots)
	s.stats.bufWait.ObserveDuration(time.Duration(ctx.Now() - waitStart))
	s.stats.buffers.Add(int64(slots))
	return func() {
		s.stats.buffers.Add(int64(-slots))
		s.bufPool.Release(slots)
	}
}

// Handle dispatches one storage daemon request.
func (s *StorageServer) Handle(ctx *rpc.Ctx, proc uint32, req any) (xdr.Marshaler, rpc.Status) {
	s.stats.requests.With(ProcName(proc)).Inc()
	var cpu *sim.KServer
	if s.cfg.Node != nil {
		cpu = s.cfg.Node.CPU
	}
	switch proc {
	case ProcIOCreate:
		a := req.(*IOCreateArgs)
		ctx.UseCPU(cpu, s.cfg.Costs.MetaPerOp)
		s.mu.Lock()
		if _, dup := s.objects[a.Handle]; dup {
			s.mu.Unlock()
			return &IOCreateRep{Errno: fserr.Exist}, rpc.StatusOK
		}
		at, err := s.store.Create(s.store.Root(), fmt.Sprintf("h%x", uint64(a.Handle)))
		if err != nil {
			s.mu.Unlock()
			return &IOCreateRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		s.objects[a.Handle] = at.ID
		s.mu.Unlock()
		return &IOCreateRep{}, rpc.StatusOK

	case ProcIORemove:
		a := req.(*IORemoveArgs)
		ctx.UseCPU(cpu, s.cfg.Costs.MetaPerOp)
		s.mu.Lock()
		if _, ok := s.objects[a.Handle]; !ok {
			s.mu.Unlock()
			return &IORemoveRep{Errno: fserr.NoEnt}, rpc.StatusOK
		}
		if err := s.store.Remove(s.store.Root(), fmt.Sprintf("h%x", uint64(a.Handle))); err != nil {
			s.mu.Unlock()
			return &IORemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		delete(s.objects, a.Handle)
		s.mu.Unlock()
		return &IORemoveRep{}, rpc.StatusOK

	case ProcIOWrite:
		a := req.(*IOWriteArgs)
		id, ok := s.object(a.Handle)
		if !ok {
			return &IOWriteRep{Errno: fserr.Stale}, rpc.StatusOK
		}
		n := a.Data.Len()
		ctx.UseCPU(cpu, s.cfg.Costs.ServerPerOp+perMB(s.cfg.Costs.ServerPerMB, n))
		release := s.acquireBuffers(ctx, n)
		ctx.Defer(release)
		prev, err := s.store.GetAttr(id)
		if err != nil {
			return &IOWriteRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		if ctx.P != nil && s.cfg.Disk != nil {
			// A write that partially covers a block of existing data forces
			// a read-modify-write of the boundary blocks; appends past EOF
			// extend sparsely and skip it.  The client-side gathering of
			// the NFS architectures issues aligned wsize flushes and never
			// pays this; cacheless PVFS2 clients pass small application
			// requests straight through (paper §6.3.1).
			const blk = 64 << 10
			if a.Off < prev.Size {
				if head := a.Off % blk; head != 0 {
					s.cfg.Disk.Read(ctx.P, uint64(a.Handle), a.Off-head, blk)
				}
				if tail := (a.Off + n) % blk; tail != 0 && a.Off+n < prev.Size {
					s.cfg.Disk.Read(ctx.P, uint64(a.Handle), (a.Off+n)-tail, blk)
				}
			}
		}
		var objSize int64
		if a.Data.IsSynthetic() {
			objSize, err = s.store.WriteSyntheticAt(id, a.Off, n)
		} else {
			objSize, err = s.store.WriteAt(id, a.Off, a.Data.Bytes)
		}
		if err != nil {
			return &IOWriteRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		if ctx.P != nil && s.cfg.Disk != nil {
			s.cfg.Disk.Write(ctx.P, uint64(a.Handle), a.Off, n)
		}
		if a.Sync {
			// Durability point: a durable store journals here, then the
			// data disk takes its barrier.
			if err := s.store.Sync(ctx.P); err != nil {
				return &IOWriteRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
			}
			if ctx.P != nil && s.cfg.Disk != nil {
				s.cfg.Disk.Sync(ctx.P)
			}
		}
		if n > 0 {
			s.stats.bytesWrite.Add(uint64(n))
		}
		return &IOWriteRep{ObjSize: objSize}, rpc.StatusOK

	case ProcIORead:
		a := req.(*IOReadArgs)
		id, ok := s.object(a.Handle)
		if !ok {
			return &IOReadRep{Errno: fserr.Stale}, rpc.StatusOK
		}
		at, err := s.store.GetAttr(id)
		if err != nil {
			return &IOReadRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		n := a.Len
		if a.Off >= at.Size {
			n = 0
		} else if a.Off+n > at.Size {
			n = at.Size - a.Off
		}
		ctx.UseCPU(cpu, s.cfg.Costs.ServerPerOp+perMB(s.cfg.Costs.ServerPerMB, n))
		release := s.acquireBuffers(ctx, n)
		ctx.Defer(release)
		if ctx.P != nil && s.cfg.Disk != nil && n > 0 {
			s.cfg.Disk.Read(ctx.P, uint64(a.Handle), a.Off, n)
		}
		if n > 0 {
			s.stats.bytesRead.Add(uint64(n))
		}
		rep := &IOReadRep{Eof: n < a.Len}
		if a.WantReal {
			// Pooled transfer buffer: Defer-released when the transport
			// serializes the reply, consumer-released (payload.Release)
			// when the client gets the buffer by reference.  The PVFS2
			// protocol has no replay cache, so replies never outlive
			// their one consumer.
			buf := rpc.GetBuf(int(n))
			if _, err := s.store.ReadAt(id, a.Off, buf); err != nil {
				rpc.PutBuf(buf)
				return &IOReadRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
			}
			if s.cfg.WireChecksums {
				rep.Sum, rep.HasSum = xdr.Checksum(buf), true
			}
			if ctx.Serialized() {
				ctx.Defer(func() { rpc.PutBuf(buf) })
				rep.Data = payload.Real(buf)
			} else {
				rpc.CountCopyAvoided()
				rep.Data = payload.RealPooled(buf, func() { rpc.PutBuf(buf) })
			}
		} else {
			rep.Data = payload.Synthetic(n)
		}
		return rep, rpc.StatusOK

	case ProcIOGetSize:
		a := req.(*IOGetSizeArgs)
		ctx.UseCPU(cpu, s.cfg.Costs.MetaPerOp)
		id, ok := s.object(a.Handle)
		if !ok {
			return &IOGetSizeRep{Errno: fserr.Stale}, rpc.StatusOK
		}
		at, err := s.store.GetAttr(id)
		if err != nil {
			return &IOGetSizeRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		return &IOGetSizeRep{Size: at.Size, Change: at.Change}, rpc.StatusOK

	case ProcIOFlush:
		a := req.(*IOFlushArgs)
		ctx.UseCPU(cpu, s.cfg.Costs.ServerPerOp)
		if _, ok := s.object(a.Handle); !ok {
			return &IOFlushRep{Errno: fserr.Stale}, rpc.StatusOK
		}
		if err := s.store.Sync(ctx.P); err != nil {
			return &IOFlushRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		if ctx.P != nil && s.cfg.Disk != nil {
			s.cfg.Disk.Sync(ctx.P)
		}
		return &IOFlushRep{}, rpc.StatusOK

	case ProcIOTruncate:
		a := req.(*IOTruncateArgs)
		ctx.UseCPU(cpu, s.cfg.Costs.MetaPerOp)
		id, ok := s.object(a.Handle)
		if !ok {
			return &IOTruncateRep{Errno: fserr.Stale}, rpc.StatusOK
		}
		if err := s.store.Truncate(id, a.ObjSize); err != nil {
			return &IOTruncateRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		return &IOTruncateRep{}, rpc.StatusOK
	}
	return nil, rpc.StatusProcUnavail
}

// MetaConfig describes the metadata server.
type MetaConfig struct {
	Fabric  *simnet.Fabric
	Node    *simnet.Node
	Costs   Costs
	Dist    DistParams
	IOConns []rpc.Conn // one per storage daemon, in device order
	// Store is the metadata repository backing the namespace (nil: a fresh
	// in-memory store).  Durable stores are journalled synchronously after
	// every namespace mutation.
	Store   store.Store
	Threads int
	// Retry bounds the retry loop on IOConns fan-out calls so metadata
	// operations (create, getattr, truncate) survive a storage-daemon
	// outage shorter than the budget.  Zero takes rpc.DefaultRetryPolicy.
	Retry rpc.RetryPolicy
	// Transport, when set, registers ServiceMeta through the transport
	// abstraction instead of the legacy Fabric path.
	Transport rpc.Transport
	// Metrics is the shared observability registry (docs/METRICS.md); nil
	// discards.
	Metrics *metrics.Registry
}

// Placement is a file's data placement: the handle its stripe objects live
// under and the distribution geometry they follow.  Data equals the file's
// own handle until a migration copies the bytes into shadow objects.
type Placement struct {
	Data Handle
	Dist DistParams
}

// shadowBase is the first handle in the range reserved for migration shadow
// objects — far above anything the namespace store allocates.
const shadowBase Handle = 1 << 48

// MetaServer is the PVFS2 metadata manager: it owns the namespace and
// orchestrates datafile objects across storage daemons.
type MetaServer struct {
	cfg   MetaConfig
	store store.Store
	stats *metaStats

	// mu guards the mutable distribution state: the default geometry for
	// new files, the per-file placements recorded at create and rewritten
	// by migration, and the IO conn table keyed by stable server ID.
	mu          sync.Mutex
	dist        DistParams // current default distribution
	initialDist DistParams // geometry at construction (fallback for untracked files)
	ioByID      map[uint32]rpc.Conn
	placements  map[Handle]Placement
	nextShadow  Handle
}

// NewMetaServer creates the MDS and registers its RPC service on the node
// when fabric is non-nil.
func NewMetaServer(cfg MetaConfig) *MetaServer {
	if cfg.Dist.StripeSize <= 0 {
		cfg.Dist.StripeSize = 2 << 20
	}
	if cfg.Dist.NumServers == 0 {
		cfg.Dist.NumServers = uint32(len(cfg.IOConns))
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 16
	}
	stats := newMetaStats(cfg.Metrics)
	conns := make([]rpc.Conn, len(cfg.IOConns))
	for i, conn := range cfg.IOConns {
		conns[i] = rpc.WithRetry(conn, cfg.Retry, stats.ioRetries.Inc)
	}
	cfg.IOConns = conns
	if cfg.Store == nil {
		cfg.Store = mem.New()
	}
	m := &MetaServer{
		cfg: cfg, store: cfg.Store, stats: stats,
		dist:        cfg.Dist,
		initialDist: cfg.Dist,
		ioByID:      make(map[uint32]rpc.Conn, len(conns)),
		placements:  make(map[Handle]Placement),
		nextShadow:  shadowBase,
	}
	for i, conn := range conns {
		m.ioByID[uint32(i)] = conn
	}
	switch {
	case cfg.Transport != nil && cfg.Node != nil:
		if _, err := cfg.Transport.Serve(cfg.Node.Name, ServiceMeta, MetaRegistry(), m.Handle, cfg.Threads); err != nil {
			panic("pvfs: register meta service: " + err.Error())
		}
	case cfg.Fabric != nil:
		rpc.ServeSim(rpc.ServerConfig{
			Fabric:  cfg.Fabric,
			Node:    cfg.Node,
			Service: ServiceMeta,
			Threads: cfg.Threads,
			Handler: m.Handle,
		})
	}
	return m
}

// Mapper returns the round-robin mapper for the current default
// distribution.
func (m *MetaServer) Mapper() *stripe.RoundRobin {
	d := m.Dist()
	return stripe.NewRoundRobin(d.StripeSize, len(d.ServerIDs()))
}

// Namespace exposes the backing metadata repository (layout translator and
// tests).
func (m *MetaServer) Namespace() store.Metadata { return m.store }

// syncMeta makes a namespace mutation durable: metadata servers journal
// synchronously, so an acknowledged create/remove/rename survives a crash.
// mem's Sync is a free no-op, keeping the default timing unchanged.
func (m *MetaServer) syncMeta(ctx *rpc.Ctx) {
	_ = m.store.Sync(ctx.P)
}

// Dist returns the current default distribution parameters for new files.
func (m *MetaServer) Dist() DistParams {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dist
}

// SetDefaultDist replaces the default distribution new files are created
// under.  Existing files keep their recorded placement until migration
// rewrites it.
func (m *MetaServer) SetDefaultDist(d DistParams) {
	m.mu.Lock()
	m.dist = d
	m.mu.Unlock()
}

// AddIOConn registers (or replaces) the conn to the storage daemon with the
// given stable server ID, wrapped in the server's retry policy.  Joining
// nodes get IDs beyond the construction-time range.
func (m *MetaServer) AddIOConn(id uint32, conn rpc.Conn) {
	wrapped := rpc.WithRetry(conn, m.cfg.Retry, m.stats.ioRetries.Inc)
	m.mu.Lock()
	m.ioByID[id] = wrapped
	m.mu.Unlock()
}

// PlacementOf returns the file's recorded placement.  Files with no record
// (created before placement tracking, or whose record was lost with MDS
// volatile state) fall back to their own handle under the construction-time
// geometry — exactly where their bytes are, since migration always records
// what it moves.
func (m *MetaServer) PlacementOf(h Handle) Placement {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.placements[h]; ok {
		return p
	}
	return Placement{Data: h, Dist: m.initialDist}
}

// SetPlacement records the file's placement (migration commit).
func (m *MetaServer) SetPlacement(h Handle, p Placement) {
	m.mu.Lock()
	m.placements[h] = p
	m.mu.Unlock()
}

// connsFor resolves stripe-order server IDs to conns.  Unknown IDs yield a
// nil conn; callers treat that as an I/O error rather than panicking.
func (m *MetaServer) connsFor(ids []uint32) []rpc.Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]rpc.Conn, len(ids))
	for i, id := range ids {
		out[i] = m.ioByID[id]
	}
	return out
}

// allConns snapshots every registered storage conn (cluster-wide fan-outs:
// remove, flush).
func (m *MetaServer) allConns() []rpc.Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]uint32, 0, len(m.ioByID))
	for id := range m.ioByID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]rpc.Conn, len(ids))
	for i, id := range ids {
		out[i] = m.ioByID[id]
	}
	return out
}

// fanout runs fn against every registered storage daemon in parallel.
func (m *MetaServer) fanout(ctx *rpc.Ctx, fn func(ctx *rpc.Ctx, i int, conn rpc.Conn) error) error {
	return m.fanoutConns(ctx, m.allConns(), fn)
}

// fanoutConns runs fn against each conn in parallel (i is the stripe-order
// index), collecting the first error.  A nil conn (unknown server ID) is an
// immediate I/O error.
func (m *MetaServer) fanoutConns(ctx *rpc.Ctx, conns []rpc.Conn, fn func(ctx *rpc.Ctx, i int, conn rpc.Conn) error) error {
	errs := make([]error, len(conns))
	rpc.Parallel(ctx, len(conns), func(ctx *rpc.Ctx, i int) {
		if conns[i] == nil {
			errs[i] = fserr.IO.Err()
			return
		}
		errs[i] = fn(ctx, i, conns[i])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Handle dispatches one metadata request.
func (m *MetaServer) Handle(ctx *rpc.Ctx, proc uint32, req any) (xdr.Marshaler, rpc.Status) {
	m.stats.requests.With(ProcName(proc)).Inc()
	var cpu *sim.KServer
	if m.cfg.Node != nil {
		cpu = m.cfg.Node.CPU
	}
	ctx.UseCPU(cpu, m.cfg.Costs.MetaPerOp)
	switch proc {
	case ProcLookup:
		a := req.(*LookupArgs)
		at, err := m.store.LookupPath(a.Path)
		if err != nil {
			return &LookupRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		place := m.PlacementOf(Handle(at.ID))
		return &LookupRep{
			Handle: Handle(at.ID),
			IsDir:  at.IsDir,
			Size:   -1, // size is reconstructed by GetAttr, not lookup
			Dist:   place.Dist,
			Data:   place.Data,
		}, rpc.StatusOK

	case ProcCreate:
		a := req.(*CreateArgs)
		dir, name, err := m.splitPath(a.Path)
		if err != nil {
			return &CreateRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		at, err := m.store.Create(dir, name)
		if err != nil {
			return &CreateRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		h := Handle(at.ID)
		// Create the datafile object on each storage daemon of the current
		// default distribution before the file becomes visible — the
		// expensive part of PVFS2 creates.
		dist := m.Dist()
		ferr := m.createObjects(ctx, h, dist)
		if ferr != nil {
			return &CreateRep{Errno: fserr.IO}, rpc.StatusOK
		}
		m.SetPlacement(h, Placement{Data: h, Dist: dist})
		m.syncMeta(ctx)
		return &CreateRep{Handle: h, Dist: dist, Data: h}, rpc.StatusOK

	case ProcRemove:
		a := req.(*RemoveArgs)
		dir, name, err := m.splitPath(a.Path)
		if err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		at, err := m.store.Lookup(dir, name)
		if err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		if !at.IsDir {
			m.removeObjects(ctx, Handle(at.ID))
		}
		if err := m.store.Remove(dir, name); err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &RemoveRep{}, rpc.StatusOK

	case ProcMkdir:
		a := req.(*MkdirArgs)
		dir, name, err := m.splitPath(a.Path)
		if err != nil {
			return &MkdirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		at, err := m.store.Mkdir(dir, name)
		if err != nil {
			return &MkdirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &MkdirRep{Handle: Handle(at.ID)}, rpc.StatusOK

	case ProcReadDir:
		a := req.(*ReadDirArgs)
		at, err := m.store.LookupPath(a.Path)
		if err != nil {
			return &ReadDirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		names, err := m.store.ReadDir(at.ID)
		if err != nil {
			return &ReadDirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		return &ReadDirRep{Names: names}, rpc.StatusOK

	case ProcGetAttr:
		a := req.(*GetAttrArgs)
		at, err := m.store.GetAttr(store.FileID(a.Handle))
		if err != nil {
			return &GetAttrRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		if at.IsDir {
			return &GetAttrRep{IsDir: true}, rpc.StatusOK
		}
		// Reconstruct logical size from the datafile sizes on the file's
		// placement servers (decentralized metadata, paper §6.4.3).
		place := m.PlacementOf(a.Handle)
		ids := place.Dist.ServerIDs()
		mapper := place.Dist.Mapper()
		sizes := make([]int64, len(ids))
		changes := make([]uint64, len(ids))
		ferr := m.fanoutConns(ctx, m.connsFor(ids), func(ctx *rpc.Ctx, dev int, conn rpc.Conn) error {
			var rep IOGetSizeRep
			if err := conn.Call(ctx, ProcIOGetSize, &IOGetSizeArgs{Handle: place.Data}, &rep); err != nil {
				return err
			}
			if rep.Errno != fserr.OK {
				return rep.Errno.Err()
			}
			sizes[dev] = rep.Size
			changes[dev] = rep.Change
			return nil
		})
		if ferr != nil {
			return &GetAttrRep{Errno: fserr.IO}, rpc.StatusOK
		}
		var size int64
		var change uint64
		for dev, s := range sizes {
			if end := logicalEnd(mapper, dev, s); end > size {
				size = end
			}
			change += changes[dev]
		}
		change += at.Change
		return &GetAttrRep{Size: size, Change: change}, rpc.StatusOK

	case ProcLookupH, ProcCreateH, ProcMkdirH, ProcRemoveH, ProcRenameH, ProcReadDirH, ProcPlacementH:
		return m.handleMeta(ctx, proc, req)

	case ProcTruncate:
		a := req.(*TruncateArgs)
		if _, err := m.store.GetAttr(store.FileID(a.Handle)); err != nil {
			return &TruncateRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		place := m.PlacementOf(a.Handle)
		ids := place.Dist.ServerIDs()
		sizes := objSizes(place.Dist.Mapper(), len(ids), a.Size)
		ferr := m.fanoutConns(ctx, m.connsFor(ids), func(ctx *rpc.Ctx, dev int, conn rpc.Conn) error {
			var rep IOTruncateRep
			return conn.Call(ctx, ProcIOTruncate,
				&IOTruncateArgs{Handle: place.Data, ObjSize: sizes[dev]}, &rep)
		})
		if ferr != nil {
			return &TruncateRep{Errno: fserr.IO}, rpc.StatusOK
		}
		return &TruncateRep{}, rpc.StatusOK
	}
	return nil, rpc.StatusProcUnavail
}

// createObjects creates the datafile objects for handle h on each server of
// dist, in parallel.
func (m *MetaServer) createObjects(ctx *rpc.Ctx, h Handle, dist DistParams) error {
	return m.fanoutConns(ctx, m.connsFor(dist.ServerIDs()), func(ctx *rpc.Ctx, _ int, conn rpc.Conn) error {
		var rep IOCreateRep
		if err := conn.Call(ctx, ProcIOCreate, &IOCreateArgs{Handle: h}, &rep); err != nil {
			return err
		}
		return rep.Errno.Err()
	})
}

// removeObjects deletes a file's datafile objects.  Both the original and
// (if migrated) shadow handles are removed, on every registered daemon:
// source objects deliberately stay behind after a join migration so stale
// layouts keep reading correct bytes, and remove is where they finally go.
// Absent objects answer NoEnt, which is ignored like the conn errors here.
func (m *MetaServer) removeObjects(ctx *rpc.Ctx, h Handle) {
	handles := []Handle{h}
	if place := m.PlacementOf(h); place.Data != h {
		handles = append(handles, place.Data)
	}
	m.fanout(ctx, func(ctx *rpc.Ctx, _ int, conn rpc.Conn) error {
		for _, obj := range handles {
			var rep IORemoveRep
			if err := conn.Call(ctx, ProcIORemove, &IORemoveArgs{Handle: obj}, &rep); err != nil {
				return err
			}
		}
		return nil
	})
	m.mu.Lock()
	delete(m.placements, h)
	m.mu.Unlock()
}

// PrepareMigrate allocates a shadow data handle for h and creates its
// objects on the current default distribution's servers.  The returned
// placement is where a migration should copy the file's bytes; nothing is
// visible to clients until CommitMigrate records it.
func (m *MetaServer) PrepareMigrate(ctx *rpc.Ctx, h Handle) (Placement, error) {
	m.mu.Lock()
	shadow := m.nextShadow
	m.nextShadow++
	dist := m.dist
	m.mu.Unlock()
	if err := m.createObjects(ctx, shadow, dist); err != nil {
		return Placement{}, err
	}
	return Placement{Data: shadow, Dist: dist}, nil
}

// CommitMigrate atomically flips h's placement to the migrated copy.
func (m *MetaServer) CommitMigrate(h Handle, p Placement) { m.SetPlacement(h, p) }

// splitPath resolves the parent directory of path and returns (dirID, name).
func (m *MetaServer) splitPath(p string) (store.FileID, string, error) {
	dir, name := splitParent(p)
	at, err := m.store.LookupPath(dir)
	if err != nil {
		return 0, "", err
	}
	if !at.IsDir {
		return 0, "", store.ErrNotDir
	}
	return at.ID, name, nil
}

// objSizes computes, for a logical size, the implied object size on each
// device under mapper.
func objSizes(mapper stripe.Mapper, devs int, logical int64) []int64 {
	out := make([]int64, devs)
	if logical <= 0 {
		return out
	}
	for _, e := range mapper.Map(0, logical) {
		if end := e.DevOff + e.Len; end > out[e.Dev] {
			out[e.Dev] = end
		}
	}
	return out
}

// splitParent splits "/a/b/c" into ("/a/b", "c").
func splitParent(p string) (dir, name string) {
	i := len(p) - 1
	for i >= 0 && p[i] == '/' {
		i--
	}
	j := i
	for j >= 0 && p[j] != '/' {
		j--
	}
	return p[:j+1], p[j+1 : i+1]
}
