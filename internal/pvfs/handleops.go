package pvfs

import (
	"dpnfs/internal/fserr"
	"dpnfs/internal/rpc"
	"dpnfs/internal/store"
	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

// Handle-based namespace procedures.  The NFS servers that export PVFS2
// (the plain NFSv4 server and the two/three-tier pNFS data and metadata
// servers) resolve names against a directory filehandle, so the metadata
// protocol offers handle-based variants alongside the path-based ones.
const (
	ProcLookupH uint32 = iota + 50
	ProcCreateH
	ProcMkdirH
	ProcRemoveH
	ProcRenameH
	ProcReadDirH
	ProcPlacementH
)

// PlacementHArgs fetches a file's data placement by handle.
type PlacementHArgs struct{ Handle Handle }

func (a *PlacementHArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Handle)) }
func (a *PlacementHArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Handle = Handle(h)
	return err
}

// PlacementRep is the reply to ProcPlacementH: where the file's bytes live
// right now.  Data servers that export PVFS2 use it to re-resolve a file
// after a migration generation bump.
type PlacementRep struct {
	Errno fserr.Errno
	Data  Handle
	Dist  DistParams
}

func (r *PlacementRep) MarshalXDR(e *xdr.Encoder) {
	e.Uint32(uint32(r.Errno))
	e.Uint64(uint64(r.Data))
	r.Dist.MarshalXDR(e)
}

func (r *PlacementRep) UnmarshalXDR(d *xdr.Decoder) error {
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Errno = fserr.Errno(v)
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	r.Data = Handle(h)
	return r.Dist.UnmarshalXDR(d)
}

// DirOpArgs addresses a name within a directory by handle.
type DirOpArgs struct {
	Dir  Handle
	Name string
}

func (a *DirOpArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Dir))
	e.String(a.Name)
}

func (a *DirOpArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Dir = Handle(h)
	a.Name, err = d.String()
	return err
}

// RenameHArgs renames Src to Dst within directory Dir.
type RenameHArgs struct {
	Dir      Handle
	Src, Dst string
}

func (a *RenameHArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Dir))
	e.String(a.Src)
	e.String(a.Dst)
}

func (a *RenameHArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Dir = Handle(h)
	if a.Src, err = d.String(); err != nil {
		return err
	}
	a.Dst, err = d.String()
	return err
}

// ReadDirHArgs lists a directory by handle.
type ReadDirHArgs struct{ Dir Handle }

func (a *ReadDirHArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Dir)) }
func (a *ReadDirHArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Dir = Handle(h)
	return err
}

// handleMeta dispatches the handle-based metadata procedures; it is called
// from MetaServer.Handle.
func (m *MetaServer) handleMeta(ctx *rpc.Ctx, proc uint32, req any) (xdr.Marshaler, rpc.Status) {
	switch proc {
	case ProcLookupH:
		a := req.(*DirOpArgs)
		at, err := m.store.Lookup(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &LookupRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		place := m.PlacementOf(Handle(at.ID))
		return &LookupRep{Handle: Handle(at.ID), IsDir: at.IsDir, Size: -1, Dist: place.Dist, Data: place.Data}, rpc.StatusOK

	case ProcCreateH:
		a := req.(*DirOpArgs)
		at, err := m.store.Create(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &CreateRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		h := Handle(at.ID)
		dist := m.Dist()
		if err := m.createObjects(ctx, h, dist); err != nil {
			return &CreateRep{Errno: fserr.IO}, rpc.StatusOK
		}
		m.SetPlacement(h, Placement{Data: h, Dist: dist})
		m.syncMeta(ctx)
		return &CreateRep{Handle: h, Dist: dist, Data: h}, rpc.StatusOK

	case ProcPlacementH:
		a := req.(*PlacementHArgs)
		if _, err := m.store.GetAttr(store.FileID(a.Handle)); err != nil {
			return &PlacementRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		place := m.PlacementOf(a.Handle)
		return &PlacementRep{Data: place.Data, Dist: place.Dist}, rpc.StatusOK

	case ProcMkdirH:
		a := req.(*DirOpArgs)
		at, err := m.store.Mkdir(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &MkdirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &MkdirRep{Handle: Handle(at.ID)}, rpc.StatusOK

	case ProcRemoveH:
		a := req.(*DirOpArgs)
		at, err := m.store.Lookup(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		if !at.IsDir {
			m.removeObjects(ctx, Handle(at.ID))
		}
		if err := m.store.Remove(store.FileID(a.Dir), a.Name); err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &RemoveRep{}, rpc.StatusOK

	case ProcRenameH:
		a := req.(*RenameHArgs)
		if err := m.store.Rename(store.FileID(a.Dir), a.Src, store.FileID(a.Dir), a.Dst); err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &RemoveRep{}, rpc.StatusOK

	case ProcReadDirH:
		a := req.(*ReadDirHArgs)
		names, err := m.store.ReadDir(store.FileID(a.Dir))
		if err != nil {
			return &ReadDirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		return &ReadDirRep{Names: names}, rpc.StatusOK
	}
	return nil, rpc.StatusProcUnavail
}

// RootHandle returns the namespace root handle.
func (m *MetaServer) RootHandle() Handle { return Handle(m.store.Root()) }

// ---- client-side wrappers ----

// RootHandle returns the file system root handle (well-known: the MDS
// namespace root is always inode 1).
func (c *Client) RootHandle() Handle { return 1 }

// OpenHandle builds an open file reference from a handle without a metadata
// round trip: the distribution is a file-system-wide constant, so data
// servers exporting PVFS2 can address any file directly.  Files that may
// have been migrated need OpenPlaced with a fresh placement instead.
func (c *Client) OpenHandle(h Handle, dist DistParams) *File {
	return c.newFile(h, h, dist)
}

// OpenPlaced builds an open file reference from an explicit placement
// (data handle + distribution), as returned by Lookup/Create/PlacementH.
func (c *Client) OpenPlaced(h, data Handle, dist DistParams) *File {
	return c.newFile(h, data, dist)
}

// PlacementH fetches the file's current data placement from the MDS.
func (c *Client) PlacementH(ctx *rpc.Ctx, h Handle) (Handle, DistParams, error) {
	c.chargeOp(ctx, 0)
	var rep PlacementRep
	if err := c.cfg.Meta.Call(ctx, ProcPlacementH, &PlacementHArgs{Handle: h}, &rep); err != nil {
		return 0, DistParams{}, err
	}
	if rep.Errno != 0 {
		return 0, DistParams{}, rep.Errno.Err()
	}
	return rep.Data, rep.Dist, nil
}

// LookupH resolves name within the directory handle.
func (c *Client) LookupH(ctx *rpc.Ctx, dir Handle, name string) (Handle, bool, error) {
	c.chargeOp(ctx, 0)
	var rep LookupRep
	if err := c.cfg.Meta.Call(ctx, ProcLookupH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return 0, false, err
	}
	if rep.Errno != 0 {
		return 0, false, rep.Errno.Err()
	}
	return rep.Handle, rep.IsDir, nil
}

// CreateH creates a file within the directory handle.
func (c *Client) CreateH(ctx *rpc.Ctx, dir Handle, name string) (*File, error) {
	c.chargeOp(ctx, 0)
	var rep CreateRep
	if err := c.cfg.Meta.Call(ctx, ProcCreateH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	data := rep.Data
	if data == 0 {
		data = rep.Handle
	}
	return c.newFile(rep.Handle, data, rep.Dist), nil
}

// MkdirH creates a directory within the directory handle.
func (c *Client) MkdirH(ctx *rpc.Ctx, dir Handle, name string) (Handle, error) {
	c.chargeOp(ctx, 0)
	var rep MkdirRep
	if err := c.cfg.Meta.Call(ctx, ProcMkdirH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return 0, err
	}
	return rep.Handle, rep.Errno.Err()
}

// RemoveH unlinks name within the directory handle.
func (c *Client) RemoveH(ctx *rpc.Ctx, dir Handle, name string) error {
	c.chargeOp(ctx, 0)
	var rep RemoveRep
	if err := c.cfg.Meta.Call(ctx, ProcRemoveH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// RenameH renames src to dst within the directory handle.
func (c *Client) RenameH(ctx *rpc.Ctx, dir Handle, src, dst string) error {
	c.chargeOp(ctx, 0)
	var rep RemoveRep
	if err := c.cfg.Meta.Call(ctx, ProcRenameH, &RenameHArgs{Dir: dir, Src: src, Dst: dst}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// ReadDirH lists the directory handle.
func (c *Client) ReadDirH(ctx *rpc.Ctx, dir Handle) ([]string, error) {
	c.chargeOp(ctx, 0)
	var rep ReadDirRep
	if err := c.cfg.Meta.Call(ctx, ProcReadDirH, &ReadDirHArgs{Dir: dir}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return rep.Names, nil
}

// GetAttrH fetches attributes by handle (size and change reconstruction
// fan-out for files).
func (c *Client) GetAttrH(ctx *rpc.Ctx, h Handle) (bool, int64, uint64, error) {
	c.chargeOp(ctx, 0)
	var rep GetAttrRep
	if err := c.cfg.Meta.Call(ctx, ProcGetAttr, &GetAttrArgs{Handle: h}, &rep); err != nil {
		return false, 0, 0, err
	}
	if rep.Errno != 0 {
		return false, 0, 0, rep.Errno.Err()
	}
	return rep.IsDir, rep.Size, rep.Change, nil
}

// TruncateH sets the logical size by handle.
func (c *Client) TruncateH(ctx *rpc.Ctx, h Handle, size int64) error {
	c.chargeOp(ctx, 0)
	var rep TruncateRep
	if err := c.cfg.Meta.Call(ctx, ProcTruncate, &TruncateArgs{Handle: h, Size: size}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// Mapper exposes the file's stripe mapper (used by layout translation
// tests).
func (f *File) Mapper() stripe.Mapper { return f.mapper }
