package pvfs

import (
	"dpnfs/internal/fserr"
	"dpnfs/internal/rpc"
	"dpnfs/internal/store"
	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

// Handle-based namespace procedures.  The NFS servers that export PVFS2
// (the plain NFSv4 server and the two/three-tier pNFS data and metadata
// servers) resolve names against a directory filehandle, so the metadata
// protocol offers handle-based variants alongside the path-based ones.
const (
	ProcLookupH uint32 = iota + 50
	ProcCreateH
	ProcMkdirH
	ProcRemoveH
	ProcRenameH
	ProcReadDirH
)

// DirOpArgs addresses a name within a directory by handle.
type DirOpArgs struct {
	Dir  Handle
	Name string
}

func (a *DirOpArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Dir))
	e.String(a.Name)
}

func (a *DirOpArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Dir = Handle(h)
	a.Name, err = d.String()
	return err
}

// RenameHArgs renames Src to Dst within directory Dir.
type RenameHArgs struct {
	Dir      Handle
	Src, Dst string
}

func (a *RenameHArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(uint64(a.Dir))
	e.String(a.Src)
	e.String(a.Dst)
}

func (a *RenameHArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	if err != nil {
		return err
	}
	a.Dir = Handle(h)
	if a.Src, err = d.String(); err != nil {
		return err
	}
	a.Dst, err = d.String()
	return err
}

// ReadDirHArgs lists a directory by handle.
type ReadDirHArgs struct{ Dir Handle }

func (a *ReadDirHArgs) MarshalXDR(e *xdr.Encoder) { e.Uint64(uint64(a.Dir)) }
func (a *ReadDirHArgs) UnmarshalXDR(d *xdr.Decoder) error {
	h, err := d.Uint64()
	a.Dir = Handle(h)
	return err
}

// handleMeta dispatches the handle-based metadata procedures; it is called
// from MetaServer.Handle.
func (m *MetaServer) handleMeta(ctx *rpc.Ctx, proc uint32, req any) (xdr.Marshaler, rpc.Status) {
	switch proc {
	case ProcLookupH:
		a := req.(*DirOpArgs)
		at, err := m.store.Lookup(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &LookupRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		return &LookupRep{Handle: Handle(at.ID), IsDir: at.IsDir, Size: -1, Dist: m.cfg.Dist}, rpc.StatusOK

	case ProcCreateH:
		a := req.(*DirOpArgs)
		at, err := m.store.Create(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &CreateRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		h := Handle(at.ID)
		ferr := m.fanout(ctx, func(ctx *rpc.Ctx, dev int) error {
			var rep IOCreateRep
			if err := m.cfg.IOConns[dev].Call(ctx, ProcIOCreate, &IOCreateArgs{Handle: h}, &rep); err != nil {
				return err
			}
			return rep.Errno.Err()
		})
		if ferr != nil {
			return &CreateRep{Errno: fserr.IO}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &CreateRep{Handle: h, Dist: m.cfg.Dist}, rpc.StatusOK

	case ProcMkdirH:
		a := req.(*DirOpArgs)
		at, err := m.store.Mkdir(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &MkdirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &MkdirRep{Handle: Handle(at.ID)}, rpc.StatusOK

	case ProcRemoveH:
		a := req.(*DirOpArgs)
		at, err := m.store.Lookup(store.FileID(a.Dir), a.Name)
		if err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		if !at.IsDir {
			h := Handle(at.ID)
			m.fanout(ctx, func(ctx *rpc.Ctx, dev int) error {
				var rep IORemoveRep
				return m.cfg.IOConns[dev].Call(ctx, ProcIORemove, &IORemoveArgs{Handle: h}, &rep)
			})
		}
		if err := m.store.Remove(store.FileID(a.Dir), a.Name); err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &RemoveRep{}, rpc.StatusOK

	case ProcRenameH:
		a := req.(*RenameHArgs)
		if err := m.store.Rename(store.FileID(a.Dir), a.Src, store.FileID(a.Dir), a.Dst); err != nil {
			return &RemoveRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		m.syncMeta(ctx)
		return &RemoveRep{}, rpc.StatusOK

	case ProcReadDirH:
		a := req.(*ReadDirHArgs)
		names, err := m.store.ReadDir(store.FileID(a.Dir))
		if err != nil {
			return &ReadDirRep{Errno: fserr.ToErrno(err)}, rpc.StatusOK
		}
		return &ReadDirRep{Names: names}, rpc.StatusOK
	}
	return nil, rpc.StatusProcUnavail
}

// RootHandle returns the namespace root handle.
func (m *MetaServer) RootHandle() Handle { return Handle(m.store.Root()) }

// ---- client-side wrappers ----

// RootHandle returns the file system root handle (well-known: the MDS
// namespace root is always inode 1).
func (c *Client) RootHandle() Handle { return 1 }

// OpenHandle builds an open file reference from a handle without a metadata
// round trip: the distribution is a file-system-wide constant, so data
// servers exporting PVFS2 can address any file directly.
func (c *Client) OpenHandle(h Handle, dist DistParams) *File {
	return c.newFile(h, dist)
}

// LookupH resolves name within the directory handle.
func (c *Client) LookupH(ctx *rpc.Ctx, dir Handle, name string) (Handle, bool, error) {
	c.chargeOp(ctx, 0)
	var rep LookupRep
	if err := c.cfg.Meta.Call(ctx, ProcLookupH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return 0, false, err
	}
	if rep.Errno != 0 {
		return 0, false, rep.Errno.Err()
	}
	return rep.Handle, rep.IsDir, nil
}

// CreateH creates a file within the directory handle.
func (c *Client) CreateH(ctx *rpc.Ctx, dir Handle, name string) (*File, error) {
	c.chargeOp(ctx, 0)
	var rep CreateRep
	if err := c.cfg.Meta.Call(ctx, ProcCreateH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return c.newFile(rep.Handle, rep.Dist), nil
}

// MkdirH creates a directory within the directory handle.
func (c *Client) MkdirH(ctx *rpc.Ctx, dir Handle, name string) (Handle, error) {
	c.chargeOp(ctx, 0)
	var rep MkdirRep
	if err := c.cfg.Meta.Call(ctx, ProcMkdirH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return 0, err
	}
	return rep.Handle, rep.Errno.Err()
}

// RemoveH unlinks name within the directory handle.
func (c *Client) RemoveH(ctx *rpc.Ctx, dir Handle, name string) error {
	c.chargeOp(ctx, 0)
	var rep RemoveRep
	if err := c.cfg.Meta.Call(ctx, ProcRemoveH, &DirOpArgs{Dir: dir, Name: name}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// RenameH renames src to dst within the directory handle.
func (c *Client) RenameH(ctx *rpc.Ctx, dir Handle, src, dst string) error {
	c.chargeOp(ctx, 0)
	var rep RemoveRep
	if err := c.cfg.Meta.Call(ctx, ProcRenameH, &RenameHArgs{Dir: dir, Src: src, Dst: dst}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// ReadDirH lists the directory handle.
func (c *Client) ReadDirH(ctx *rpc.Ctx, dir Handle) ([]string, error) {
	c.chargeOp(ctx, 0)
	var rep ReadDirRep
	if err := c.cfg.Meta.Call(ctx, ProcReadDirH, &ReadDirHArgs{Dir: dir}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return rep.Names, nil
}

// GetAttrH fetches attributes by handle (size and change reconstruction
// fan-out for files).
func (c *Client) GetAttrH(ctx *rpc.Ctx, h Handle) (bool, int64, uint64, error) {
	c.chargeOp(ctx, 0)
	var rep GetAttrRep
	if err := c.cfg.Meta.Call(ctx, ProcGetAttr, &GetAttrArgs{Handle: h}, &rep); err != nil {
		return false, 0, 0, err
	}
	if rep.Errno != 0 {
		return false, 0, 0, rep.Errno.Err()
	}
	return rep.IsDir, rep.Size, rep.Change, nil
}

// TruncateH sets the logical size by handle.
func (c *Client) TruncateH(ctx *rpc.Ctx, h Handle, size int64) error {
	c.chargeOp(ctx, 0)
	var rep TruncateRep
	if err := c.cfg.Meta.Call(ctx, ProcTruncate, &TruncateArgs{Handle: h, Size: size}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// Mapper exposes the file's stripe mapper (used by layout translation
// tests).
func (f *File) Mapper() *stripe.RoundRobin { return f.mapper }
