package pvfs

import (
	"testing"
	"testing/quick"

	"dpnfs/internal/fserr"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/xdr"
)

// roundTrip encodes m and decodes into out, failing on any error.
func roundTrip(t *testing.T, m xdr.Marshaler, out xdr.Unmarshaler) {
	t.Helper()
	if err := xdr.Unmarshal(xdr.Marshal(m), out); err != nil {
		t.Fatalf("%T: %v", m, err)
	}
}

func TestAllMessageTypesRoundTrip(t *testing.T) {
	// Every wire type: encode, decode, compare the interesting fields.
	{
		var out LookupRep
		roundTrip(t, &LookupRep{Errno: fserr.NoEnt, Handle: 7, IsDir: true, Size: -1,
			Dist: DistParams{StripeSize: 1 << 20, NumServers: 6}}, &out)
		if out.Errno != fserr.NoEnt || out.Handle != 7 || !out.IsDir || out.Size != -1 ||
			out.Dist.NumServers != 6 {
			t.Fatalf("LookupRep: %+v", out)
		}
	}
	{
		var out CreateRep
		roundTrip(t, &CreateRep{Handle: 9, Dist: DistParams{StripeSize: 2 << 20, NumServers: 3}}, &out)
		if out.Handle != 9 || out.Dist.StripeSize != 2<<20 {
			t.Fatalf("CreateRep: %+v", out)
		}
	}
	{
		// DistParams.Copies rides at the end of the encoding; a dropped or
		// reordered field would silently flatten every replicated layout.
		var out CreateRep
		roundTrip(t, &CreateRep{Handle: 11, Dist: DistParams{
			StripeSize: 64 << 10, NumServers: 6, Copies: 2}}, &out)
		if out.Dist.Copies != 2 || out.Dist.NumServers != 6 {
			t.Fatalf("CreateRep with Copies: %+v", out)
		}
	}
	{
		// The optional payload checksum survives the wire in both states.
		var out IOReadRep
		roundTrip(t, &IOReadRep{Data: payload.Real([]byte("abc")), Sum: 0xDEADBEEF, HasSum: true}, &out)
		if out.Sum != 0xDEADBEEF || !out.HasSum {
			t.Fatalf("IOReadRep checksum: %+v", out)
		}
		roundTrip(t, &IOReadRep{Data: payload.Real([]byte("abc"))}, &out)
		if out.HasSum {
			t.Fatalf("IOReadRep phantom checksum: %+v", out)
		}
	}
	{
		var out ReadDirRep
		roundTrip(t, &ReadDirRep{Names: []string{"a", "bb", "ccc"}}, &out)
		if len(out.Names) != 3 || out.Names[2] != "ccc" {
			t.Fatalf("ReadDirRep: %+v", out)
		}
	}
	{
		var out GetAttrRep
		roundTrip(t, &GetAttrRep{Size: 1 << 40, Change: 99}, &out)
		if out.Size != 1<<40 || out.Change != 99 {
			t.Fatalf("GetAttrRep: %+v", out)
		}
	}
	{
		var out IOReadRep
		roundTrip(t, &IOReadRep{Data: payload.Real([]byte("xyz")), Eof: true}, &out)
		if string(out.Data.Bytes) != "xyz" || !out.Eof {
			t.Fatalf("IOReadRep: %+v", out)
		}
	}
	{
		var out IOWriteArgs
		roundTrip(t, &IOWriteArgs{Handle: 3, Off: 123, Data: payload.Real([]byte("w")), Sync: true}, &out)
		if out.Handle != 3 || out.Off != 123 || !out.Sync || string(out.Data.Bytes) != "w" {
			t.Fatalf("IOWriteArgs: %+v", out)
		}
	}
	{
		var out RenameHArgs
		roundTrip(t, &RenameHArgs{Dir: 4, Src: "old", Dst: "new"}, &out)
		if out.Dir != 4 || out.Src != "old" || out.Dst != "new" {
			t.Fatalf("RenameHArgs: %+v", out)
		}
	}
}

func TestBulkWireSizesMatchEncoding(t *testing.T) {
	w := &IOWriteArgs{Handle: 1, Off: 2, Data: payload.Real(make([]byte, 100)), Sync: true}
	if got, want := w.WireSize(), int64(len(xdr.Marshal(w))); got != want {
		t.Fatalf("IOWriteArgs WireSize %d != %d", got, want)
	}
	r := &IOReadRep{Data: payload.Real(make([]byte, 33)), Eof: true}
	if got, want := r.WireSize(), int64(len(xdr.Marshal(r))); got != want {
		t.Fatalf("IOReadRep WireSize %d != %d", got, want)
	}
}

// Property: every registered request constructor decodes what it encodes.
func TestPropertyRegistryDecodesOwnEncoding(t *testing.T) {
	f := func(h uint64, off int64, path string) bool {
		msgs := []xdr.Marshaler{
			&LookupArgs{Path: path},
			&CreateArgs{Path: path},
			&RemoveArgs{Path: path},
			&MkdirArgs{Path: path},
			&ReadDirArgs{Path: path},
			&GetAttrArgs{Handle: Handle(h)},
			&TruncateArgs{Handle: Handle(h), Size: off},
			&IOReadArgs{Handle: Handle(h), Off: off, Len: off / 2},
			&IOCreateArgs{Handle: Handle(h)},
			&IORemoveArgs{Handle: Handle(h)},
			&IOGetSizeArgs{Handle: Handle(h)},
			&IOFlushArgs{Handle: Handle(h)},
			&IOTruncateArgs{Handle: Handle(h), ObjSize: off},
			&DirOpArgs{Dir: Handle(h), Name: path},
			&ReadDirHArgs{Dir: Handle(h)},
		}
		for _, m := range msgs {
			out, ok := m.(xdr.Unmarshaler)
			if !ok {
				return false
			}
			// Decode into a fresh instance of the same type via the
			// registries, proving proc wiring matches the types.
			if err := xdr.Unmarshal(xdr.Marshal(m), out); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistriesCoverAllProcs(t *testing.T) {
	meta := MetaRegistry()
	for _, proc := range []uint32{ProcLookup, ProcCreate, ProcRemove, ProcMkdir,
		ProcReadDir, ProcGetAttr, ProcTruncate,
		ProcLookupH, ProcCreateH, ProcMkdirH, ProcRemoveH, ProcRenameH, ProcReadDirH} {
		if meta.New(proc) == nil {
			t.Errorf("meta registry missing proc %d", proc)
		}
	}
	io := IORegistry()
	for _, proc := range []uint32{ProcIORead, ProcIOWrite, ProcIOCreate,
		ProcIORemove, ProcIOGetSize, ProcIOFlush, ProcIOTruncate} {
		if io.New(proc) == nil {
			t.Errorf("io registry missing proc %d", proc)
		}
	}
	if meta.New(9999) != nil {
		t.Error("unknown proc should return nil")
	}
}

// TestMetaOverTCP drives the PVFS2 metadata server over a real socket,
// proving the registry plumbing works outside the simulation.
func TestMetaOverTCP(t *testing.T) {
	meta := NewMetaServer(MetaConfig{Dist: DistParams{StripeSize: 1 << 20, NumServers: 1}})
	srv, err := rpc.ListenTCP("127.0.0.1:0", MetaRegistry(), meta.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := rpc.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := &rpc.Ctx{}
	var mk MkdirRep
	if err := conn.Call(ctx, ProcMkdir, &MkdirArgs{Path: "/d"}, &mk); err != nil || mk.Errno != 0 {
		t.Fatalf("mkdir over TCP: %v %v", err, mk.Errno)
	}
	var look LookupRep
	if err := conn.Call(ctx, ProcLookup, &LookupArgs{Path: "/d"}, &look); err != nil {
		t.Fatal(err)
	}
	if look.Errno != 0 || !look.IsDir {
		t.Fatalf("lookup over TCP: %+v", look)
	}
}
