package pvfs

import (
	"bytes"
	"testing"
	"time"

	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simdisk"
	"dpnfs/internal/simnet"
	"dpnfs/internal/vfs"
)

// testFS wires one MDS, nDev storage daemons, and one client node onto a
// fabric.
type testFS struct {
	k       *sim.Kernel
	fabric  *simnet.Fabric
	client  *Client
	meta    *MetaServer
	storage []*StorageServer
}

func newTestFS(t *testing.T, nDev int, stripeSize int64) *testFS {
	t.Helper()
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	mdsNode := f.AddNode(simnet.NodeConfig{Name: "mds"})
	clNode := f.AddNode(simnet.NodeConfig{Name: "client0"})
	costs := DefaultCosts()

	var storage []*StorageServer
	var mdsConns, clConns []rpc.Conn
	for i := 0; i < nDev; i++ {
		n := f.AddNode(simnet.NodeConfig{Name: "io" + string(rune('0'+i))})
		s := NewStorageServer(StorageConfig{
			Fabric: f, Node: n, Costs: costs,
			Disk: simdisk.New(simdisk.Config{Name: n.Name}),
		})
		storage = append(storage, s)
		mdsConns = append(mdsConns, &rpc.SimTransport{Fabric: f, Src: mdsNode, Dst: n, Service: ServiceIO})
		clConns = append(clConns, &rpc.SimTransport{Fabric: f, Src: clNode, Dst: n, Service: ServiceIO})
	}
	meta := NewMetaServer(MetaConfig{
		Fabric: f, Node: mdsNode, Costs: costs,
		Dist:    DistParams{StripeSize: stripeSize, NumServers: uint32(nDev)},
		IOConns: mdsConns,
	})
	client := NewClient(ClientConfig{
		Node: clNode, Costs: costs,
		Meta: &rpc.SimTransport{Fabric: f, Src: clNode, Dst: mdsNode, Service: ServiceMeta},
		IO:   clConns,
	})
	return &testFS{k: k, fabric: f, client: client, meta: meta, storage: storage}
}

// run executes fn as the lone application process and drives the kernel.
func (fs *testFS) run(t *testing.T, fn func(ctx *rpc.Ctx)) {
	t.Helper()
	fs.k.Go("app", func(p *sim.Proc) { fn(&rpc.Ctx{P: p}) })
	if err := fs.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fs := newTestFS(t, 3, 1000)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	fs.run(t, func(ctx *rpc.Ctx) {
		f, err := fs.client.Create(ctx, "/data")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.client.Write(ctx, f, 0, payload.Real(data), false); err != nil {
			t.Fatal(err)
		}
		got, n, err := fs.client.Read(ctx, f, 0, 5000, true)
		if err != nil || n != 5000 {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		if !bytes.Equal(got.Bytes, data) {
			t.Fatal("striped data corrupted on round trip")
		}
	})
}

func TestStripePlacement(t *testing.T) {
	fs := newTestFS(t, 3, 1000)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, err := fs.client.Create(ctx, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.client.Write(ctx, f, 0, payload.Real(make([]byte, 3500)), false); err != nil {
			t.Fatal(err)
		}
		// Units: dev0 gets [0,1000)+[3000,3500)=1500; dev1 1000; dev2 1000.
		wants := []int64{1500, 1000, 1000}
		for dev, want := range wants {
			id, ok := fs.storage[dev].object(f.Handle)
			if !ok {
				t.Fatalf("dev %d has no object", dev)
			}
			at, _ := fs.storage[dev].store.GetAttr(id)
			if at.Size != want {
				t.Errorf("dev %d object size %d, want %d", dev, at.Size, want)
			}
		}
	})
}

func TestGetAttrReconstructsSize(t *testing.T) {
	fs := newTestFS(t, 4, 64<<10)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, _ := fs.client.Create(ctx, "/f")
		const size = 1<<20 + 12345 // deliberately unaligned
		if _, err := fs.client.Write(ctx, f, 0, payload.Synthetic(size), false); err != nil {
			t.Fatal(err)
		}
		got, err := fs.client.GetAttr(ctx, f)
		if err != nil || got != size {
			t.Fatalf("GetAttr = %d, %v; want %d", got, err, size)
		}
	})
}

func TestWriteReturnsLogicalSize(t *testing.T) {
	fs := newTestFS(t, 3, 1000)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, _ := fs.client.Create(ctx, "/f")
		size, err := fs.client.Write(ctx, f, 2500, payload.Synthetic(1000), false)
		if err != nil || size != 3500 {
			t.Fatalf("write returned size %d, %v; want 3500", size, err)
		}
	})
}

func TestReadPastEOF(t *testing.T) {
	fs := newTestFS(t, 3, 1000)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, _ := fs.client.Create(ctx, "/f")
		fs.client.Write(ctx, f, 0, payload.Synthetic(1500), false)
		_, n, err := fs.client.Read(ctx, f, 1000, 5000, false)
		if err != nil || n != 500 {
			t.Fatalf("read at EOF: n=%d err=%v, want 500", n, err)
		}
		_, n, _ = fs.client.Read(ctx, f, 9000, 100, false)
		if n != 0 {
			t.Fatalf("read past EOF returned %d bytes", n)
		}
	})
}

func TestHoleReadsAsZeros(t *testing.T) {
	fs := newTestFS(t, 2, 100)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, _ := fs.client.Create(ctx, "/f")
		// Write [0,100) and [300,400); [100,300) is a hole.
		fs.client.Write(ctx, f, 0, payload.Real(bytes.Repeat([]byte{1}, 100)), false)
		fs.client.Write(ctx, f, 300, payload.Real(bytes.Repeat([]byte{2}, 100)), false)
		got, n, err := fs.client.Read(ctx, f, 0, 400, true)
		if err != nil || n != 400 {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		for i := 100; i < 300; i++ {
			if got.Bytes[i] != 0 {
				t.Fatalf("hole byte %d = %d, want 0", i, got.Bytes[i])
			}
		}
		if got.Bytes[0] != 1 || got.Bytes[399] != 2 {
			t.Fatal("written bytes corrupted around hole")
		}
	})
}

func TestNamespaceOps(t *testing.T) {
	fs := newTestFS(t, 2, 1000)
	fs.run(t, func(ctx *rpc.Ctx) {
		if err := fs.client.Mkdir(ctx, "/dir"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.client.Create(ctx, "/dir/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.client.Create(ctx, "/dir/b"); err != nil {
			t.Fatal(err)
		}
		names, err := fs.client.ReadDir(ctx, "/dir")
		if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
			t.Fatalf("readdir: %v, %v", names, err)
		}
		if _, err := fs.client.Open(ctx, "/dir/missing"); err != vfs.ErrNotExist {
			t.Fatalf("open missing: %v", err)
		}
		if err := fs.client.Remove(ctx, "/dir/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.client.Open(ctx, "/dir/a"); err != vfs.ErrNotExist {
			t.Fatalf("open removed: %v", err)
		}
	})
}

func TestRemoveCleansDatafiles(t *testing.T) {
	fs := newTestFS(t, 3, 1000)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, _ := fs.client.Create(ctx, "/f")
		for _, s := range fs.storage {
			if _, ok := s.object(f.Handle); !ok {
				t.Fatal("create did not make datafiles everywhere")
			}
		}
		if err := fs.client.Remove(ctx, "/f"); err != nil {
			t.Fatal(err)
		}
		for _, s := range fs.storage {
			if _, ok := s.object(f.Handle); ok {
				t.Fatal("remove left datafiles behind")
			}
		}
	})
}

func TestTruncate(t *testing.T) {
	fs := newTestFS(t, 3, 1000)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, _ := fs.client.Create(ctx, "/f")
		fs.client.Write(ctx, f, 0, payload.Synthetic(10_000), false)
		if err := fs.client.Truncate(ctx, f, 2500); err != nil {
			t.Fatal(err)
		}
		size, err := fs.client.GetAttr(ctx, f)
		if err != nil || size != 2500 {
			t.Fatalf("size after truncate = %d, %v", size, err)
		}
	})
}

func TestSyncWaitsForDisk(t *testing.T) {
	fs := newTestFS(t, 2, 1<<20)
	fs.run(t, func(ctx *rpc.Ctx) {
		f, _ := fs.client.Create(ctx, "/f")
		// 50 MB lands in write-behind buffers quickly; Sync must wait for
		// the drain (~2.5 s at ~21 MB/s across 2 disks).
		fs.client.Write(ctx, f, 0, payload.Synthetic(50<<20), false)
		before := ctx.Now()
		if err := fs.client.Sync(ctx, f); err != nil {
			t.Fatal(err)
		}
		if wait := time.Duration(ctx.Now() - before); wait < 200*time.Millisecond {
			t.Fatalf("sync returned after %v; did not wait for disk drain", wait)
		}
	})
}

func TestSmallRequestsPayPerOpOverhead(t *testing.T) {
	// Moving 2 MB in 8 KiB requests must be much slower than one 2 MB
	// request — the PVFS2 small-I/O collapse.
	elapsed := func(reqSize int64) time.Duration {
		fs := newTestFS(t, 2, 2<<20)
		var took sim.Time
		fs.run(t, func(ctx *rpc.Ctx) {
			f, _ := fs.client.Create(ctx, "/f")
			for off := int64(0); off < 2<<20; off += reqSize {
				fs.client.Write(ctx, f, off, payload.Synthetic(reqSize), false)
			}
			took = ctx.Now()
		})
		return time.Duration(took)
	}
	small := elapsed(8 << 10)
	large := elapsed(2 << 20)
	if small < 5*large {
		t.Fatalf("8 KiB writes (%v) not substantially slower than 2 MB writes (%v)", small, large)
	}
}

func TestBufferPoolThrottlesConcurrentIO(t *testing.T) {
	// A daemon with 2×256 KiB buffers can hold only 512 KiB in flight; many
	// concurrent 512 KiB reads must serialize beyond what CPU/NIC require.
	run := func(buffers int) time.Duration {
		k := sim.NewKernel(1)
		f := simnet.NewFabric(k)
		ioNode := f.AddNode(simnet.NodeConfig{Name: "io"})
		srv := NewStorageServer(StorageConfig{
			Fabric: f, Node: ioNode, Costs: DefaultCosts(),
			Disk:    simdisk.New(simdisk.Config{Name: "d"}),
			Buffers: buffers, BufSize: 256 << 10, Threads: 32,
		})
		// Seed the object and warm the cache so only buffers matter.
		ctxSeed := &rpc.Ctx{}
		if _, st := srv.Handle(ctxSeed, ProcIOCreate, &IOCreateArgs{Handle: 1}); st != rpc.StatusOK {
			t.Fatal("seed create failed")
		}
		srv.store.WriteSyntheticAt(srv.objects[1], 0, 32<<20)
		srv.cfg.Disk.Warm(1, 0, 32<<20)
		var last sim.Time
		for i := 0; i < 16; i++ {
			cl := f.AddNode(simnet.NodeConfig{Name: "c" + string(rune('a'+i))})
			conn := &rpc.SimTransport{Fabric: f, Src: cl, Dst: ioNode, Service: ServiceIO}
			off := int64(i) * (512 << 10)
			k.Go("reader", func(p *sim.Proc) {
				var rep IOReadRep
				if err := conn.Call(&rpc.Ctx{P: p}, ProcIORead,
					&IOReadArgs{Handle: 1, Off: off, Len: 512 << 10}, &rep); err != nil {
					t.Error(err)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(last)
	}
	tight := run(2)
	roomy := run(64)
	if tight <= roomy {
		t.Fatalf("buffer pool had no effect: tight=%v roomy=%v", tight, roomy)
	}
}

func TestSplitParent(t *testing.T) {
	cases := []struct{ in, dir, name string }{
		{"/a", "/", "a"},
		{"/a/b/c", "/a/b/", "c"},
		{"/a/b/", "/a/", "b"},
		{"a", "", "a"},
	}
	for _, c := range cases {
		dir, name := splitParent(c.in)
		if dir != c.dir || name != c.name {
			t.Errorf("splitParent(%q) = (%q, %q), want (%q, %q)", c.in, dir, name, c.dir, c.name)
		}
	}
}

func TestObjSizes(t *testing.T) {
	m := NewMetaServer(MetaConfig{Dist: DistParams{StripeSize: 1000, NumServers: 3}}).Mapper()
	sizes := objSizes(m, 3, 3500)
	wants := []int64{1500, 1000, 1000}
	for i, w := range wants {
		if sizes[i] != w {
			t.Errorf("dev %d objSize %d, want %d", i, sizes[i], w)
		}
	}
	zero := objSizes(m, 3, 0)
	for _, s := range zero {
		if s != 0 {
			t.Error("zero logical size produced nonzero object sizes")
		}
	}
}
