package pvfs

import (
	"fmt"
	"sync"
	"time"

	"dpnfs/internal/ioengine"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/stripe"
)

// ClientConfig describes one PVFS2 client library instance.
type ClientConfig struct {
	Node  *simnet.Node
	Meta  rpc.Conn
	IO    []rpc.Conn // one per storage daemon, in device order
	Costs Costs
	// MaxFlight bounds concurrent outstanding I/O requests ("limited
	// request parallelization", paper §5) — the I/O engine's sliding-window
	// size.
	MaxFlight int
	// MaxTransfer caps a single I/O request's payload; larger extents are
	// split ("large transfer buffers").
	MaxTransfer int64
	// Wave dispatches striped I/O in lock-step batches instead of the
	// sliding window — the pre-engine behaviour, kept for the bench
	// window-sweep comparison.
	Wave bool
	// Retry bounds the per-daemon retry loop that rides out injected
	// storage-node crashes (internal/faults): striped I/O to a crashed
	// daemon backs off and retries until the node restarts or the budget
	// runs out.  Zero-valued fields take rpc.DefaultRetryPolicy.
	Retry rpc.RetryPolicy
	// BackgroundShare caps the window fraction Background-class work may
	// hold.  The PVFS2 library has no write-back or readahead — all its I/O
	// is synchronous Foreground — so this only matters if an embedding adds
	// background traffic on the same engine.
	BackgroundShare float64
	// Hedge enables hedged duplicate reads for stragglers (writes never
	// hedge); HedgeAfter/HedgeFactor tune the adaptive threshold (0 =
	// engine defaults).
	Hedge       bool
	HedgeAfter  time.Duration
	HedgeFactor float64
	// Adaptive lets the engine's window float between MinFlight and
	// MaxFlight by AIMD (0 MinFlight = engine default).
	Adaptive  bool
	MinFlight int
	// Metrics is the shared observability registry (docs/METRICS.md); nil
	// discards.
	Metrics *metrics.Registry
}

// Client is the PVFS2 client library: stateless, no data cache, no
// write-back — every Read/Write goes to the daemons synchronously, fanned
// out through the shared striped-I/O engine (internal/ioengine).
type Client struct {
	cfg    ClientConfig
	stats  *clientStats
	engine *ioengine.Engine
	retry  ioengine.Policy
	// ioSync wraps the daemon conns in the retry policy for the serial
	// fsync path, which does not ride the engine.
	ioSync []rpc.Conn
}

// NewClient returns a client with defaults applied.  Striped reads and
// writes flow through the I/O engine under a retry policy, so they survive
// a daemon outage shorter than the retry budget; the serial flush path gets
// the same protection from retry-wrapped conns.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxFlight <= 0 {
		cfg.MaxFlight = 8
	}
	if cfg.MaxTransfer <= 0 {
		cfg.MaxTransfer = 256 << 10 // PVFS2 flow buffer size
	}
	stats := newClientStats(cfg.Metrics)
	name := "pvfs-client"
	if cfg.Node != nil {
		name = cfg.Node.Name + "/pvfs"
	}
	c := &Client{cfg: cfg, stats: stats}
	c.engine = ioengine.New(ioengine.Config{
		Name:            name,
		Issuer:          "pvfs",
		MaxFlight:       cfg.MaxFlight,
		MaxTransfer:     cfg.MaxTransfer,
		Wave:            cfg.Wave,
		BackgroundShare: cfg.BackgroundShare,
		Hedge:           cfg.Hedge,
		HedgeAfter:      cfg.HedgeAfter,
		HedgeFactor:     cfg.HedgeFactor,
		Adaptive:        cfg.Adaptive,
		MinFlight:       cfg.MinFlight,
		Metrics:         cfg.Metrics,
	})
	c.retry = ioengine.WithRetry(cfg.Retry, stats.ioRetries.Inc)
	c.ioSync = make([]rpc.Conn, len(cfg.IO))
	for i, conn := range cfg.IO {
		c.ioSync[i] = rpc.WithRetry(conn, cfg.Retry, stats.ioRetries.Inc)
	}
	return c
}

// File is an open PVFS2 file reference.
type File struct {
	Handle Handle
	Dist   DistParams
	mapper *stripe.RoundRobin
}

func (c *Client) chargeOp(ctx *rpc.Ctx, bytes int64) {
	var cpu *sim.KServer
	if c.cfg.Node != nil {
		cpu = c.cfg.Node.CPU
	}
	ctx.UseCPU(cpu, c.cfg.Costs.ClientPerOp+perMB(c.cfg.Costs.ClientPerMB, bytes))
}

func (c *Client) newFile(h Handle, dist DistParams) *File {
	return &File{
		Handle: h,
		Dist:   dist,
		mapper: stripe.NewRoundRobin(dist.StripeSize, int(dist.NumServers)),
	}
}

// Create makes a new file and returns an open reference.
func (c *Client) Create(ctx *rpc.Ctx, path string) (*File, error) {
	c.chargeOp(ctx, 0)
	var rep CreateRep
	if err := c.cfg.Meta.Call(ctx, ProcCreate, &CreateArgs{Path: path}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return c.newFile(rep.Handle, rep.Dist), nil
}

// Open resolves an existing file.
func (c *Client) Open(ctx *rpc.Ctx, path string) (*File, error) {
	c.chargeOp(ctx, 0)
	var rep LookupRep
	if err := c.cfg.Meta.Call(ctx, ProcLookup, &LookupArgs{Path: path}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	if rep.IsDir {
		return nil, fmt.Errorf("pvfs: %s is a directory", path)
	}
	return c.newFile(rep.Handle, rep.Dist), nil
}

// Write stores data at off.  Sync forces the touched daemons to flush to
// stable storage before returning.  It returns the file's new logical size
// as reconstructed from the daemons' object sizes.
func (c *Client) Write(ctx *rpc.Ctx, f *File, off int64, data payload.Payload, syncData bool) (int64, error) {
	c.chargeOp(ctx, data.Len())
	reqs := c.engine.Prepare(f.mapper.Map(off, data.Len()))
	c.stats.ioRequests.Add(uint64(len(reqs)))
	if n := data.Len(); n > 0 {
		c.stats.bytesWrite.Add(uint64(n))
	}
	var mu sync.Mutex // requests run on concurrent processes/goroutines
	var logical int64
	// The library has no write-back: the application is blocked on this
	// write, so it rides the window as Foreground (never hedged — writes
	// are not idempotent against concurrent writers).
	err := c.engine.RunWith(ctx, ioengine.RunOpts{Class: ioengine.Foreground}, reqs, func(ctx *rpc.Ctx, r stripe.Extent) error {
		var rep IOWriteRep
		args := &IOWriteArgs{
			Handle: f.Handle,
			Off:    r.DevOff,
			Data:   data.Slice(r.Off-off, r.Len),
			Sync:   syncData,
		}
		if err := c.cfg.IO[r.Dev].Call(ctx, ProcIOWrite, args, &rep); err != nil {
			return err
		}
		if rep.Errno != 0 {
			return rep.Errno.Err()
		}
		mu.Lock()
		if end := f.mapper.LogicalEnd(r.Dev, rep.ObjSize); end > logical {
			logical = end
		}
		mu.Unlock()
		return nil
	}, c.retry)
	return logical, err
}

// Read fetches up to n bytes at off.  It returns the data (real bytes only
// if wantReal) and the number of logical bytes before EOF.
func (c *Client) Read(ctx *rpc.Ctx, f *File, off, n int64, wantReal bool) (payload.Payload, int64, error) {
	c.chargeOp(ctx, n)
	seed := off / f.Dist.StripeSize
	reqs := c.engine.Prepare(f.mapper.ReadMap(off, n, seed))
	c.stats.ioRequests.Add(uint64(len(reqs)))
	var buf []byte
	if wantReal {
		buf = make([]byte, n)
	}
	// maxEnd tracks the furthest logical byte any daemon returned; bytes
	// below it that a daemon skipped are holes (zeros).
	var mu sync.Mutex
	var maxEnd int64
	// Synchronous read: Foreground, and eligible for hedged duplicates
	// when the engine has hedging enabled (reads are idempotent).
	err := c.engine.RunWith(ctx, ioengine.RunOpts{Class: ioengine.Foreground, Hedge: true}, reqs, func(ctx *rpc.Ctx, r stripe.Extent) error {
		var rep IOReadRep
		args := &IOReadArgs{Handle: f.Handle, Off: r.DevOff, Len: r.Len, WantReal: wantReal}
		if err := c.cfg.IO[r.Dev].Call(ctx, ProcIORead, args, &rep); err != nil {
			return err
		}
		if rep.Errno != 0 {
			return rep.Errno.Err()
		}
		got := rep.Data.Len()
		if got > 0 {
			// The copy stays under mu: a hedged duplicate writes the same
			// bytes to the same region as its primary.
			mu.Lock()
			if end := r.Off + got; end > maxEnd {
				maxEnd = end
			}
			if wantReal && rep.Data.Bytes != nil {
				copy(buf[r.Off-off:], rep.Data.Bytes)
			}
			mu.Unlock()
		}
		return nil
	}, c.retry)
	if err != nil {
		return payload.Payload{}, 0, err
	}
	valid := maxEnd - off
	if valid < 0 {
		valid = 0
	}
	if valid > 0 {
		c.stats.bytesRead.Add(uint64(valid))
	}
	if wantReal {
		return payload.Real(buf[:valid]), valid, nil
	}
	return payload.Synthetic(valid), valid, nil
}

// Sync flushes the file's buffered data on every storage daemon.  The
// flushes are issued serially, matching the sequential datafile flush in
// the PVFS2 client's fsync path — one source of its poor synchronous
// small-I/O performance (§6.4.1).
func (c *Client) Sync(ctx *rpc.Ctx, f *File) error {
	c.chargeOp(ctx, 0)
	for i := range c.ioSync {
		var rep IOFlushRep
		if err := c.ioSync[i].Call(ctx, ProcIOFlush, &IOFlushArgs{Handle: f.Handle}, &rep); err != nil {
			return err
		}
		if rep.Errno != 0 {
			return rep.Errno.Err()
		}
	}
	return nil
}

// GetAttr returns the file's logical size (reconstructed by the MDS from
// every storage daemon).
func (c *Client) GetAttr(ctx *rpc.Ctx, f *File) (int64, error) {
	c.chargeOp(ctx, 0)
	var rep GetAttrRep
	if err := c.cfg.Meta.Call(ctx, ProcGetAttr, &GetAttrArgs{Handle: f.Handle}, &rep); err != nil {
		return 0, err
	}
	if rep.Errno != 0 {
		return 0, rep.Errno.Err()
	}
	return rep.Size, nil
}

// Truncate sets the file's logical size.
func (c *Client) Truncate(ctx *rpc.Ctx, f *File, size int64) error {
	c.chargeOp(ctx, 0)
	var rep TruncateRep
	if err := c.cfg.Meta.Call(ctx, ProcTruncate, &TruncateArgs{Handle: f.Handle, Size: size}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// Mkdir creates a directory.
func (c *Client) Mkdir(ctx *rpc.Ctx, path string) error {
	c.chargeOp(ctx, 0)
	var rep MkdirRep
	if err := c.cfg.Meta.Call(ctx, ProcMkdir, &MkdirArgs{Path: path}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// Remove unlinks a file (removing its datafiles) or an empty directory.
func (c *Client) Remove(ctx *rpc.Ctx, path string) error {
	c.chargeOp(ctx, 0)
	var rep RemoveRep
	if err := c.cfg.Meta.Call(ctx, ProcRemove, &RemoveArgs{Path: path}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// ReadDir lists a directory.
func (c *Client) ReadDir(ctx *rpc.Ctx, path string) ([]string, error) {
	c.chargeOp(ctx, 0)
	var rep ReadDirRep
	if err := c.cfg.Meta.Call(ctx, ProcReadDir, &ReadDirArgs{Path: path}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return rep.Names, nil
}
