package pvfs

import (
	"fmt"
	"sync"
	"time"

	"dpnfs/internal/fserr"
	"dpnfs/internal/ioengine"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/store"
	"dpnfs/internal/stripe"
	"dpnfs/internal/xdr"
)

// ClientConfig describes one PVFS2 client library instance.
type ClientConfig struct {
	Node *simnet.Node
	Meta rpc.Conn
	IO   []rpc.Conn // one per storage daemon, in device order
	// IOIDs gives the stable server ID of each IO conn.  When empty the
	// conns are assumed positional (IDs 0..len(IO)-1), which matches the
	// legacy static-membership layout.  Files resolve their daemon conns
	// through these IDs via the placement's DistParams.Servers, so a
	// client keeps addressing the right daemons after membership changes.
	IOIDs []uint32
	Costs Costs
	// MaxFlight bounds concurrent outstanding I/O requests ("limited
	// request parallelization", paper §5) — the I/O engine's sliding-window
	// size.
	MaxFlight int
	// MaxTransfer caps a single I/O request's payload; larger extents are
	// split ("large transfer buffers").
	MaxTransfer int64
	// Wave dispatches striped I/O in lock-step batches instead of the
	// sliding window — the pre-engine behaviour, kept for the bench
	// window-sweep comparison.
	Wave bool
	// Retry bounds the per-daemon retry loop that rides out injected
	// storage-node crashes (internal/faults): striped I/O to a crashed
	// daemon backs off and retries until the node restarts or the budget
	// runs out.  Zero-valued fields take rpc.DefaultRetryPolicy.
	Retry rpc.RetryPolicy
	// BackgroundShare caps the window fraction Background-class work may
	// hold.  The PVFS2 library has no write-back or readahead — all its I/O
	// is synchronous Foreground — so this only matters if an embedding adds
	// background traffic on the same engine.
	BackgroundShare float64
	// Hedge enables hedged duplicate reads for stragglers (writes never
	// hedge); HedgeAfter/HedgeFactor tune the adaptive threshold (0 =
	// engine defaults).
	Hedge       bool
	HedgeAfter  time.Duration
	HedgeFactor float64
	// Adaptive lets the engine's window float between MinFlight and
	// MaxFlight by AIMD (0 MinFlight = engine default).
	Adaptive  bool
	MinFlight int
	// Class is the QoS class all of this client's striped I/O runs under
	// (zero value = Foreground).  The cluster's rebalance engine sets
	// Background here so migration traffic yields to application I/O.
	Class ioengine.Class
	// Issuer labels this client's engine metrics (empty = "pvfs").
	Issuer string
	// Metrics is the shared observability registry (docs/METRICS.md); nil
	// discards.
	Metrics *metrics.Registry
}

// Client is the PVFS2 client library: stateless, no data cache, no
// write-back — every Read/Write goes to the daemons synchronously, fanned
// out through the shared striped-I/O engine (internal/ioengine).
type Client struct {
	cfg    ClientConfig
	stats  *clientStats
	engine *ioengine.Engine
	retry  ioengine.Policy
	// mu guards the conn maps: AddServer may race with newFile when the
	// cluster reconfigures while clients are running.
	mu sync.Mutex
	// io/ioSync key the daemon conns by stable server ID.  ioSync wraps
	// each conn in the retry policy for the serial fsync path, which does
	// not ride the engine.
	io     map[uint32]rpc.Conn
	ioSync map[uint32]rpc.Conn
	// repaired records extents this client already read-repaired, keyed by
	// (data handle, device, device offset): repair is exactly-once per
	// extent per client, so a rewrite that does not take (the replica is
	// also failing) cannot loop.
	repairedMu sync.Mutex
	repaired   map[repairKey]bool
}

// repairKey identifies one repaired device extent.
type repairKey struct {
	data   Handle
	dev    int
	devOff int64
}

// NewClient returns a client with defaults applied.  Striped reads and
// writes flow through the I/O engine under a retry policy, so they survive
// a daemon outage shorter than the retry budget; the serial flush path gets
// the same protection from retry-wrapped conns.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxFlight <= 0 {
		cfg.MaxFlight = 8
	}
	if cfg.MaxTransfer <= 0 {
		cfg.MaxTransfer = 256 << 10 // PVFS2 flow buffer size
	}
	stats := newClientStats(cfg.Metrics)
	name := "pvfs-client"
	if cfg.Node != nil {
		name = cfg.Node.Name + "/pvfs"
	}
	issuer := cfg.Issuer
	if issuer == "" {
		issuer = "pvfs"
	}
	c := &Client{cfg: cfg, stats: stats, repaired: make(map[repairKey]bool)}
	c.engine = ioengine.New(ioengine.Config{
		Name:            name,
		Issuer:          issuer,
		MaxFlight:       cfg.MaxFlight,
		MaxTransfer:     cfg.MaxTransfer,
		Wave:            cfg.Wave,
		BackgroundShare: cfg.BackgroundShare,
		Hedge:           cfg.Hedge,
		HedgeAfter:      cfg.HedgeAfter,
		HedgeFactor:     cfg.HedgeFactor,
		Adaptive:        cfg.Adaptive,
		MinFlight:       cfg.MinFlight,
		Metrics:         cfg.Metrics,
	})
	c.retry = ioengine.WithRetry(cfg.Retry, stats.ioRetries.Inc)
	c.io = make(map[uint32]rpc.Conn, len(cfg.IO))
	c.ioSync = make(map[uint32]rpc.Conn, len(cfg.IO))
	for i, conn := range cfg.IO {
		id := uint32(i)
		if i < len(cfg.IOIDs) {
			id = cfg.IOIDs[i]
		}
		c.io[id] = conn
		c.ioSync[id] = rpc.WithRetry(conn, cfg.Retry, stats.ioRetries.Inc)
	}
	return c
}

// AddServer registers (or replaces) the conn for a storage daemon by its
// stable server ID, so files placed on a newly joined node resolve their
// conns without rebuilding the client.
func (c *Client) AddServer(id uint32, conn rpc.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.io[id] = conn
	c.ioSync[id] = rpc.WithRetry(conn, c.cfg.Retry, c.stats.ioRetries.Inc)
}

// File is an open PVFS2 file reference.  Data is the handle the datafiles
// live under (it diverges from Handle after a migration); io/ioSync hold the
// daemon conns for the file's placement, in stripe-device order.
type File struct {
	Handle Handle
	Data   Handle
	Dist   DistParams
	mapper stripe.Mapper
	io     []rpc.Conn
	ioSync []rpc.Conn
}

func (c *Client) chargeOp(ctx *rpc.Ctx, bytes int64) {
	var cpu *sim.KServer
	if c.cfg.Node != nil {
		cpu = c.cfg.Node.CPU
	}
	ctx.UseCPU(cpu, c.cfg.Costs.ClientPerOp+perMB(c.cfg.Costs.ClientPerMB, bytes))
}

func (c *Client) newFile(h, data Handle, dist DistParams) *File {
	if data == 0 {
		data = h
	}
	ids := dist.ServerIDs()
	f := &File{
		Handle: h,
		Data:   data,
		Dist:   dist,
		mapper: dist.Mapper(),
		io:     make([]rpc.Conn, len(ids)),
		ioSync: make([]rpc.Conn, len(ids)),
	}
	c.mu.Lock()
	for i, id := range ids {
		f.io[i] = c.io[id]
		f.ioSync[i] = c.ioSync[id]
	}
	c.mu.Unlock()
	return f
}

// conn returns the file's daemon conn for stripe device dev, or an error if
// the placement names a server this client has no conn for.
func (f *File) conn(dev int) (rpc.Conn, error) {
	if dev < 0 || dev >= len(f.io) || f.io[dev] == nil {
		return nil, fmt.Errorf("pvfs: no conn for device %d of handle %x", dev, uint64(f.Handle))
	}
	return f.io[dev], nil
}

// Create makes a new file and returns an open reference.
func (c *Client) Create(ctx *rpc.Ctx, path string) (*File, error) {
	c.chargeOp(ctx, 0)
	var rep CreateRep
	if err := c.cfg.Meta.Call(ctx, ProcCreate, &CreateArgs{Path: path}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return c.newFile(rep.Handle, rep.Data, rep.Dist), nil
}

// Open resolves an existing file.
func (c *Client) Open(ctx *rpc.Ctx, path string) (*File, error) {
	c.chargeOp(ctx, 0)
	var rep LookupRep
	if err := c.cfg.Meta.Call(ctx, ProcLookup, &LookupArgs{Path: path}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	if rep.IsDir {
		return nil, fmt.Errorf("pvfs: %s is a directory", path)
	}
	return c.newFile(rep.Handle, rep.Data, rep.Dist), nil
}

// Write stores data at off.  Sync forces the touched daemons to flush to
// stable storage before returning.  It returns the file's new logical size
// as reconstructed from the daemons' object sizes.
func (c *Client) Write(ctx *rpc.Ctx, f *File, off int64, data payload.Payload, syncData bool) (int64, error) {
	c.chargeOp(ctx, data.Len())
	reqs := c.engine.Prepare(f.mapper.Map(off, data.Len()))
	c.stats.ioRequests.Add(uint64(len(reqs)))
	if n := data.Len(); n > 0 {
		c.stats.bytesWrite.Add(uint64(n))
	}
	var mu sync.Mutex // requests run on concurrent processes/goroutines
	var logical int64
	// The library has no write-back: the application is blocked on this
	// write, so it rides the window at the client's configured class
	// (Foreground by default; never hedged — writes are not idempotent
	// against concurrent writers).
	err := c.engine.RunWith(ctx, ioengine.RunOpts{Class: c.cfg.Class}, reqs, func(ctx *rpc.Ctx, r stripe.Extent) error {
		conn, err := f.conn(r.Dev)
		if err != nil {
			return err
		}
		var rep IOWriteRep
		args := &IOWriteArgs{
			Handle: f.Data,
			Off:    r.DevOff,
			Data:   data.Slice(r.Off-off, r.Len),
			Sync:   syncData,
		}
		if err := conn.Call(ctx, ProcIOWrite, args, &rep); err != nil {
			return err
		}
		if rep.Errno != 0 {
			return rep.Errno.Err()
		}
		mu.Lock()
		if end := logicalEnd(f.mapper, r.Dev, rep.ObjSize); end > logical {
			logical = end
		}
		mu.Unlock()
		return nil
	}, c.retry)
	return logical, err
}

// Read fetches up to n bytes at off.  It returns the data (real bytes only
// if wantReal) and the number of logical bytes before EOF.
func (c *Client) Read(ctx *rpc.Ctx, f *File, off, n int64, wantReal bool) (payload.Payload, int64, error) {
	c.chargeOp(ctx, n)
	seed := off / f.Dist.StripeSize
	reqs := c.engine.Prepare(f.mapper.ReadMap(off, n, seed))
	c.stats.ioRequests.Add(uint64(len(reqs)))
	var buf []byte
	if wantReal {
		buf = make([]byte, n)
	}
	// maxEnd tracks the furthest logical byte any daemon returned; bytes
	// below it that a daemon skipped are holes (zeros).
	var mu sync.Mutex
	var maxEnd int64
	// Synchronous read: runs at the client's configured class, and is
	// eligible for hedged duplicates when the engine has hedging enabled
	// (reads are idempotent).
	err := c.engine.RunWith(ctx, ioengine.RunOpts{Class: c.cfg.Class, Hedge: true}, reqs, func(ctx *rpc.Ctx, r stripe.Extent) error {
		rep, err := c.readExtent(ctx, f, r, wantReal)
		if err != nil {
			// Replica ladder: a dead device or a corrupt block is retried
			// on each surviving copy; corruption additionally rewrites the
			// bad copy with the good bytes (read-repair, exactly once per
			// extent).
			rep, err = c.readAlternates(ctx, f, r, wantReal, err)
		}
		if err != nil {
			return err
		}
		got := rep.Data.Len()
		if got > 0 {
			// The copy stays under mu: a hedged duplicate writes the same
			// bytes to the same region as its primary.
			mu.Lock()
			if end := r.Off + got; end > maxEnd {
				maxEnd = end
			}
			if wantReal && rep.Data.Bytes != nil {
				copy(buf[r.Off-off:], rep.Data.Bytes)
			}
			mu.Unlock()
		}
		return nil
	}, c.retry)
	if err != nil {
		return payload.Payload{}, 0, err
	}
	valid := maxEnd - off
	if valid < 0 {
		valid = 0
	}
	if valid > 0 {
		c.stats.bytesRead.Add(uint64(valid))
	}
	if wantReal {
		return payload.Real(buf[:valid]), valid, nil
	}
	return payload.Synthetic(valid), valid, nil
}

// readExtent issues one extent read to its device's daemon and verifies the
// reply (errno mapping plus the optional wire checksum).
func (c *Client) readExtent(ctx *rpc.Ctx, f *File, r stripe.Extent, wantReal bool) (IOReadRep, error) {
	conn, err := f.conn(r.Dev)
	if err != nil {
		return IOReadRep{}, err
	}
	var rep IOReadRep
	args := &IOReadArgs{Handle: f.Data, Off: r.DevOff, Len: r.Len, WantReal: wantReal}
	if err := conn.Call(ctx, ProcIORead, args, &rep); err != nil {
		return IOReadRep{}, err
	}
	if rep.Errno != 0 {
		if rep.Errno == fserr.Corrupt {
			c.stats.corruptReads.Inc()
		}
		return IOReadRep{}, rep.Errno.Err()
	}
	if rep.HasSum && rep.Data.Bytes != nil && xdr.Checksum(rep.Data.Bytes) != rep.Sum {
		// The payload was damaged after the daemon read it (or on the
		// wire): surface it as the same bounded-retry integrity error a
		// block-checksum mismatch produces.
		c.stats.corruptReads.Inc()
		rep.Data.Release()
		return IOReadRep{}, store.ErrCorrupt
	}
	return rep, nil
}

// readAlternates re-drives a failed extent read on each surviving replica.
// Only the two laddered failure kinds are eligible — a down device and a
// data-integrity error; anything else (bad handle, wiring bug) propagates
// unchanged.  An integrity failure that a replica absorbs also rewrites the
// bad copy with the replica's bytes.
func (c *Client) readAlternates(ctx *rpc.Ctx, f *File, r stripe.Extent, wantReal bool, cause error) (IOReadRep, error) {
	rm, ok := f.mapper.(*stripe.Replicated)
	if !ok || (!rpc.Retryable(cause) && !rpc.RetryableIntegrity(cause)) {
		return IOReadRep{}, cause
	}
	corrupt := rpc.RetryableIntegrity(cause)
	for _, alt := range rm.Alternates(r) {
		// Repair needs real bytes even when the caller wanted a synthetic
		// read (it rewrites stored content, not sizes).
		rep, err := c.readExtent(ctx, f, alt, wantReal || corrupt)
		if err != nil {
			continue
		}
		if corrupt {
			c.readRepair(ctx, f, r, rep.Data)
		}
		return rep, nil
	}
	return IOReadRep{}, cause
}

// readRepair rewrites the corrupt extent on its original device with the
// good bytes just fetched from a replica, at most once per extent per
// client.  The write reseals the block checksums; failure releases the
// claim so a later read can try again.
func (c *Client) readRepair(ctx *rpc.Ctx, f *File, r stripe.Extent, good payload.Payload) {
	if good.Bytes == nil || good.Len() == 0 {
		return
	}
	key := repairKey{data: f.Data, dev: r.Dev, devOff: r.DevOff}
	c.repairedMu.Lock()
	claimed := !c.repaired[key]
	if claimed {
		c.repaired[key] = true
	}
	c.repairedMu.Unlock()
	if !claimed {
		return
	}
	conn, err := f.conn(r.Dev)
	if err != nil {
		return
	}
	var rep IOWriteRep
	args := &IOWriteArgs{Handle: f.Data, Off: r.DevOff, Data: good}
	if err := conn.Call(ctx, ProcIOWrite, args, &rep); err != nil || rep.Errno != 0 {
		c.repairedMu.Lock()
		delete(c.repaired, key)
		c.repairedMu.Unlock()
		return
	}
	c.stats.readRepairs.Inc()
}

// Sync flushes the file's buffered data on each storage daemon holding one
// of its datafiles.  The flushes are issued serially, matching the
// sequential datafile flush in the PVFS2 client's fsync path — one source
// of its poor synchronous small-I/O performance (§6.4.1).
func (c *Client) Sync(ctx *rpc.Ctx, f *File) error {
	c.chargeOp(ctx, 0)
	for i, conn := range f.ioSync {
		if conn == nil {
			return fmt.Errorf("pvfs: no conn for device %d of handle %x", i, uint64(f.Handle))
		}
		var rep IOFlushRep
		if err := conn.Call(ctx, ProcIOFlush, &IOFlushArgs{Handle: f.Data}, &rep); err != nil {
			return err
		}
		if rep.Errno != 0 {
			return rep.Errno.Err()
		}
	}
	return nil
}

// GetAttr returns the file's logical size (reconstructed by the MDS from
// every storage daemon).
func (c *Client) GetAttr(ctx *rpc.Ctx, f *File) (int64, error) {
	c.chargeOp(ctx, 0)
	var rep GetAttrRep
	if err := c.cfg.Meta.Call(ctx, ProcGetAttr, &GetAttrArgs{Handle: f.Handle}, &rep); err != nil {
		return 0, err
	}
	if rep.Errno != 0 {
		return 0, rep.Errno.Err()
	}
	return rep.Size, nil
}

// Truncate sets the file's logical size.
func (c *Client) Truncate(ctx *rpc.Ctx, f *File, size int64) error {
	c.chargeOp(ctx, 0)
	var rep TruncateRep
	if err := c.cfg.Meta.Call(ctx, ProcTruncate, &TruncateArgs{Handle: f.Handle, Size: size}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// Mkdir creates a directory.
func (c *Client) Mkdir(ctx *rpc.Ctx, path string) error {
	c.chargeOp(ctx, 0)
	var rep MkdirRep
	if err := c.cfg.Meta.Call(ctx, ProcMkdir, &MkdirArgs{Path: path}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// Remove unlinks a file (removing its datafiles) or an empty directory.
func (c *Client) Remove(ctx *rpc.Ctx, path string) error {
	c.chargeOp(ctx, 0)
	var rep RemoveRep
	if err := c.cfg.Meta.Call(ctx, ProcRemove, &RemoveArgs{Path: path}, &rep); err != nil {
		return err
	}
	return rep.Errno.Err()
}

// ReadDir lists a directory.
func (c *Client) ReadDir(ctx *rpc.Ctx, path string) ([]string, error) {
	c.chargeOp(ctx, 0)
	var rep ReadDirRep
	if err := c.cfg.Meta.Call(ctx, ProcReadDir, &ReadDirArgs{Path: path}, &rep); err != nil {
		return nil, err
	}
	if rep.Errno != 0 {
		return nil, rep.Errno.Err()
	}
	return rep.Names, nil
}
