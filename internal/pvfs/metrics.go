package pvfs

import (
	"fmt"

	"dpnfs/internal/metrics"
)

// ProcName renders a PVFS2 procedure number as a stable metric label.
func ProcName(proc uint32) string {
	switch proc {
	case ProcLookup:
		return "lookup"
	case ProcCreate:
		return "create"
	case ProcRemove:
		return "remove"
	case ProcMkdir:
		return "mkdir"
	case ProcReadDir:
		return "readdir"
	case ProcGetAttr:
		return "getattr"
	case ProcTruncate:
		return "truncate"
	case ProcLookupH:
		return "lookup-h"
	case ProcCreateH:
		return "create-h"
	case ProcMkdirH:
		return "mkdir-h"
	case ProcRemoveH:
		return "remove-h"
	case ProcRenameH:
		return "rename-h"
	case ProcReadDirH:
		return "readdir-h"
	case ProcIORead:
		return "io-read"
	case ProcIOWrite:
		return "io-write"
	case ProcIOCreate:
		return "io-create"
	case ProcIORemove:
		return "io-remove"
	case ProcIOGetSize:
		return "io-getsize"
	case ProcIOFlush:
		return "io-flush"
	case ProcIOTruncate:
		return "io-truncate"
	}
	return fmt.Sprintf("proc-%d", proc)
}

// storageStats bundles one storage daemon's instruments.  The request
// counters are resolved per proc on first use (bounded: the proc table is
// fixed), everything else at construction.
type storageStats struct {
	requests   *metrics.CounterVec
	bytesRead  *metrics.Counter
	bytesWrite *metrics.Counter
	buffers    *metrics.Gauge
	bufWait    *metrics.Histogram
}

// newStorageStats resolves the daemon's instruments; reg may be nil.
func newStorageStats(reg *metrics.Registry) *storageStats {
	return &storageStats{
		requests: reg.CounterVec("pvfs_storage_requests_total",
			"Storage-daemon requests, by procedure.", "proc"),
		bytesRead: reg.Counter("pvfs_storage_bytes_read_total",
			"Datafile bytes served by io-read (storage-daemon read throughput)."),
		bytesWrite: reg.Counter("pvfs_storage_bytes_written_total",
			"Datafile bytes accepted by io-write (storage-daemon write throughput)."),
		buffers: reg.Gauge("pvfs_storage_buffer_slots_in_use",
			"Transfer-buffer pool slots currently held (paper §5 fixed pool)."),
		bufWait: reg.Histogram("pvfs_storage_buffer_wait_seconds",
			"Time spent waiting for transfer-buffer slots.", metrics.DurationBuckets),
	}
}

// metaStats bundles the metadata server's instruments.
type metaStats struct {
	requests  *metrics.CounterVec
	ioRetries *metrics.Counter
}

func newMetaStats(reg *metrics.Registry) *metaStats {
	return &metaStats{
		requests: reg.CounterVec("pvfs_meta_requests_total",
			"Metadata-server requests, by procedure.", "proc"),
		ioRetries: reg.Counter("pvfs_meta_io_retries_total",
			"MDS fan-out calls to storage daemons retried after a retryable transport failure."),
	}
}

// clientStats bundles the client library's instruments: request fan-out and
// bytes moved, the raw material for the paper's small-I/O analysis (§6.4.1:
// cacheless clients pass every application request straight through).
type clientStats struct {
	ioRequests   *metrics.Counter
	ioRetries    *metrics.Counter
	bytesRead    *metrics.Counter
	bytesWrite   *metrics.Counter
	corruptReads *metrics.Counter
	readRepairs  *metrics.Counter
}

func newClientStats(reg *metrics.Registry) *clientStats {
	return &clientStats{
		ioRequests: reg.Counter("pvfs_client_io_requests_total",
			"Storage-daemon I/O requests issued (after MaxTransfer splitting)."),
		ioRetries: reg.Counter("pvfs_client_io_retries_total",
			"Storage-daemon calls retried after a retryable transport failure (crashed node)."),
		bytesRead: reg.Counter("pvfs_client_bytes_read_total",
			"Logical bytes read by the client library."),
		bytesWrite: reg.Counter("pvfs_client_bytes_written_total",
			"Logical bytes written by the client library."),
		corruptReads: reg.Counter("pvfs_client_corrupt_reads_total",
			"Reads that returned a data-integrity error (block or wire checksum mismatch)."),
		readRepairs: reg.Counter("pvfs_client_read_repairs_total",
			"Corrupt extents rewritten with good bytes fetched from a replica."),
	}
}
