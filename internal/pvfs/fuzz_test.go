package pvfs

import (
	"bytes"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/xdr"
)

// fuzzTargets instantiates every PVFS2 wire type (types.go), in a fixed
// order so a fuzz input's selector byte is stable across runs.
func fuzzTargets() []func() xdr.Unmarshaler {
	return []func() xdr.Unmarshaler{
		func() xdr.Unmarshaler { return &LookupArgs{} },
		func() xdr.Unmarshaler { return &LookupRep{} },
		func() xdr.Unmarshaler { return &CreateArgs{} },
		func() xdr.Unmarshaler { return &CreateRep{} },
		func() xdr.Unmarshaler { return &RemoveArgs{} },
		func() xdr.Unmarshaler { return &RemoveRep{} },
		func() xdr.Unmarshaler { return &MkdirArgs{} },
		func() xdr.Unmarshaler { return &MkdirRep{} },
		func() xdr.Unmarshaler { return &ReadDirArgs{} },
		func() xdr.Unmarshaler { return &ReadDirRep{} },
		func() xdr.Unmarshaler { return &GetAttrArgs{} },
		func() xdr.Unmarshaler { return &GetAttrRep{} },
		func() xdr.Unmarshaler { return &TruncateArgs{} },
		func() xdr.Unmarshaler { return &TruncateRep{} },
		func() xdr.Unmarshaler { return &IOReadArgs{} },
		func() xdr.Unmarshaler { return &IOReadRep{} },
		func() xdr.Unmarshaler { return &IOWriteArgs{} },
		func() xdr.Unmarshaler { return &IOWriteRep{} },
		func() xdr.Unmarshaler { return &IOCreateArgs{} },
		func() xdr.Unmarshaler { return &IOCreateRep{} },
		func() xdr.Unmarshaler { return &IORemoveArgs{} },
		func() xdr.Unmarshaler { return &IORemoveRep{} },
		func() xdr.Unmarshaler { return &IOGetSizeArgs{} },
		func() xdr.Unmarshaler { return &IOGetSizeRep{} },
		func() xdr.Unmarshaler { return &IOFlushArgs{} },
		func() xdr.Unmarshaler { return &IOFlushRep{} },
		func() xdr.Unmarshaler { return &IOTruncateArgs{} },
		func() xdr.Unmarshaler { return &IOTruncateRep{} },
		func() xdr.Unmarshaler { return &DirOpArgs{} },
		func() xdr.Unmarshaler { return &RenameHArgs{} },
		func() xdr.Unmarshaler { return &ReadDirHArgs{} },
	}
}

// FuzzDecodeWireTypes decodes arbitrary frames into every PVFS2 wire type
// (selected by the first input byte).  Truncated or oversized frames must
// return errors — never panic or balloon allocations — and any frame that
// does decode must re-encode canonically (encode → decode → encode is a
// fixed point).  Seeds come from the xdr_test.go round-trip corpus.
func FuzzDecodeWireTypes(f *testing.F) {
	seed := func(sel byte, m xdr.Marshaler) { f.Add(sel, xdr.Marshal(m)) }
	seed(1, &LookupRep{Errno: 2, Handle: 7, IsDir: true, Size: -1,
		Dist: DistParams{StripeSize: 1 << 20, NumServers: 6}})
	seed(3, &CreateRep{Handle: 9, Dist: DistParams{StripeSize: 2 << 20, NumServers: 3}})
	seed(9, &ReadDirRep{Names: []string{"a", "bb", "ccc"}})
	seed(11, &GetAttrRep{Size: 1 << 40, Change: 99})
	seed(15, &IOReadRep{Data: payload.Real([]byte("xyz")), Eof: true})
	seed(16, &IOWriteArgs{Handle: 5, Off: 64, Data: payload.Real([]byte("data")), Sync: true})
	seed(29, &RenameHArgs{Dir: 4, Src: "a", Dst: "b"})
	f.Add(byte(9), []byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}) // hostile name count
	f.Add(byte(15), []byte{0, 0, 0, 0, 0x7f, 0xff, 0xff, 0xff})

	targets := fuzzTargets()
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		ctor := targets[int(sel)%len(targets)]
		msg := ctor()
		if err := xdr.Unmarshal(data, msg); err != nil {
			return // malformed frames must error out cleanly
		}
		m, ok := msg.(xdr.Marshaler)
		if !ok {
			return
		}
		re := xdr.Marshal(m)
		msg2 := ctor()
		if err := xdr.Unmarshal(re, msg2); err != nil {
			t.Fatalf("%T: re-encoded frame failed to decode: %v", msg, err)
		}
		if !bytes.Equal(re, xdr.Marshal(msg2.(xdr.Marshaler))) {
			t.Fatalf("%T: encode/decode/encode is not a fixed point", msg)
		}
	})
}
