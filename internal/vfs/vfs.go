// Package vfs is the historical name of the in-memory backing store.
//
// Deprecated: the store moved behind the repository interfaces in
// internal/store (PR 6) — store.Metadata / store.Content for consumers,
// store/mem for this implementation, store/wal and store/cached for the
// durable variants.  This package remains as a thin alias layer so old
// call sites keep compiling; new code should import dpnfs/internal/store
// and dpnfs/internal/store/mem directly.
package vfs

import (
	"dpnfs/internal/store"
	"dpnfs/internal/store/mem"
)

// Store is an alias for the in-memory implementation.
//
// Deprecated: use store.Metadata/store.Content interfaces, or *mem.Store.
type Store = mem.Store

// FileID is an alias for store.FileID.
type FileID = store.FileID

// Attr is an alias for store.Attr.
type Attr = store.Attr

// New returns an empty in-memory store with a root directory (FileID 1).
//
// Deprecated: use mem.New.
func New() *Store { return mem.New() }

// Error aliases preserve identity with the canonical store errors, so code
// comparing vfs.ErrNotExist against errors from any backend still works.
var (
	ErrNotExist = store.ErrNotExist
	ErrExist    = store.ErrExist
	ErrIsDir    = store.ErrIsDir
	ErrNotDir   = store.ErrNotDir
	ErrNotEmpty = store.ErrNotEmpty
	ErrInval    = store.ErrInval
)
