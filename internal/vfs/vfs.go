// Package vfs implements the in-memory backing store used by every server
// in this repository: the PVFS2 storage daemons and metadata server, and the
// NFSv4 data and metadata servers.  It provides a minimal POSIX-like
// namespace (directories, regular files), inode numbers, sparse file
// contents, and attributes.
//
// The store holds real bytes — reads return exactly what was written, and
// integration tests verify end-to-end data integrity through every protocol
// stack.  Timing is not modelled here; servers charge simdisk/simnet
// resources separately.
//
// Paper mapping: the local file systems under the paper's servers (§6.1 —
// ext3 under the PVFS2 daemons, the exported namespace on the MDS); this
// package is deliberately timing-free so all performance behaviour comes
// from the protocol and resource models around it.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Errors mirror the POSIX causes the protocols care about.
var (
	ErrNotExist = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrInval    = errors.New("vfs: invalid argument")
)

// FileID identifies an inode within one store.
type FileID uint64

// Attr is the attribute set exposed through the protocols.
type Attr struct {
	ID    FileID
	IsDir bool
	Size  int64
	// Mtime/Ctime counters: bumped on every data/metadata change.  Virtual
	// wall-clock time lives in the simulation, not here, so these are
	// change counters rather than timestamps.
	Change uint64
}

type node struct {
	id       FileID
	isDir    bool
	size     int64
	change   uint64
	children map[string]*node // directories
	data     *sparse          // regular files
	parent   *node
	name     string
}

// Store is one in-memory file system.  All methods are safe for concurrent
// use (the TCP demo serves real goroutines); under simulation the kernel's
// cooperative scheduling makes the locking moot but harmless.
type Store struct {
	mu     sync.RWMutex
	root   *node
	byID   map[FileID]*node
	nextID FileID
}

// New returns an empty store with a root directory (FileID 1).
func New() *Store {
	s := &Store{byID: make(map[FileID]*node), nextID: 1}
	s.root = &node{id: 1, isDir: true, children: make(map[string]*node)}
	s.byID[1] = s.root
	return s
}

// Root returns the root directory's id.
func (s *Store) Root() FileID { return 1 }

func (s *Store) alloc(isDir bool) *node {
	s.nextID++
	n := &node{id: s.nextID, isDir: isDir}
	if isDir {
		n.children = make(map[string]*node)
	} else {
		n.data = newSparse()
	}
	s.byID[n.id] = n
	return n
}

func (s *Store) dir(id FileID) (*node, error) {
	n, ok := s.byID[id]
	if !ok {
		return nil, ErrNotExist
	}
	if !n.isDir {
		return nil, ErrNotDir
	}
	return n, nil
}

func (s *Store) file(id FileID) (*node, error) {
	n, ok := s.byID[id]
	if !ok {
		return nil, ErrNotExist
	}
	if n.isDir {
		return nil, ErrIsDir
	}
	return n, nil
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." || strings.Contains(name, "/") {
		return ErrInval
	}
	return nil
}

// Lookup resolves name within directory dir.
func (s *Store) Lookup(dir FileID, name string) (Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, err := s.dir(dir)
	if err != nil {
		return Attr{}, err
	}
	c, ok := d.children[name]
	if !ok {
		return Attr{}, ErrNotExist
	}
	return c.attr(), nil
}

// LookupPath resolves a slash-separated path from the root.
func (s *Store) LookupPath(p string) (Attr, error) {
	cur := s.Root()
	a := Attr{ID: cur, IsDir: true}
	for _, part := range strings.Split(path.Clean("/"+p), "/") {
		if part == "" {
			continue
		}
		var err error
		a, err = s.Lookup(cur, part)
		if err != nil {
			return Attr{}, err
		}
		cur = a.ID
	}
	return a, nil
}

func (n *node) attr() Attr {
	return Attr{ID: n.id, IsDir: n.isDir, Size: n.size, Change: n.change}
}

// GetAttr returns attributes of id.
func (s *Store) GetAttr(id FileID) (Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.byID[id]
	if !ok {
		return Attr{}, ErrNotExist
	}
	return n.attr(), nil
}

// Create makes a regular file in dir.  It fails with ErrExist if the name
// is taken.
func (s *Store) Create(dir FileID, name string) (Attr, error) {
	return s.mknod(dir, name, false)
}

// Mkdir makes a directory in dir.
func (s *Store) Mkdir(dir FileID, name string) (Attr, error) {
	return s.mknod(dir, name, true)
}

func (s *Store) mknod(dir FileID, name string, isDir bool) (Attr, error) {
	if err := checkName(name); err != nil {
		return Attr{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.dir(dir)
	if err != nil {
		return Attr{}, err
	}
	if _, dup := d.children[name]; dup {
		return Attr{}, ErrExist
	}
	n := s.alloc(isDir)
	n.parent, n.name = d, name
	d.children[name] = n
	d.change++
	return n.attr(), nil
}

// Remove unlinks name from dir.  Non-empty directories are refused.
func (s *Store) Remove(dir FileID, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.dir(dir)
	if err != nil {
		return err
	}
	c, ok := d.children[name]
	if !ok {
		return ErrNotExist
	}
	if c.isDir && len(c.children) > 0 {
		return ErrNotEmpty
	}
	delete(d.children, name)
	delete(s.byID, c.id)
	d.change++
	return nil
}

// Rename moves srcName in srcDir to dstName in dstDir, replacing a
// same-kind target if present.
func (s *Store) Rename(srcDir FileID, srcName string, dstDir FileID, dstName string) error {
	if err := checkName(dstName); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd, err := s.dir(srcDir)
	if err != nil {
		return err
	}
	dd, err := s.dir(dstDir)
	if err != nil {
		return err
	}
	c, ok := sd.children[srcName]
	if !ok {
		return ErrNotExist
	}
	if old, ok := dd.children[dstName]; ok {
		if old.isDir != c.isDir {
			if old.isDir {
				return ErrIsDir
			}
			return ErrNotDir
		}
		if old.isDir && len(old.children) > 0 {
			return ErrNotEmpty
		}
		delete(s.byID, old.id)
	}
	delete(sd.children, srcName)
	dd.children[dstName] = c
	c.parent, c.name = dd, dstName
	sd.change++
	dd.change++
	return nil
}

// ReadDir lists dir in lexical order.
func (s *Store) ReadDir(dir FileID) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, err := s.dir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// WriteAt writes b at off, extending the file as needed, and returns the
// new size.
func (s *Store) WriteAt(id FileID, off int64, b []byte) (int64, error) {
	if off < 0 {
		return 0, ErrInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.file(id)
	if err != nil {
		return 0, err
	}
	n.data.writeAt(off, b)
	if end := off + int64(len(b)); end > n.size {
		n.size = end
	}
	n.change++
	return n.size, nil
}

// WriteSyntheticAt records a write of n zero bytes at off without storing
// chunks: only the size and change counter advance.  Benchmarks move
// simulated terabytes through this path.
func (s *Store) WriteSyntheticAt(id FileID, off, n int64) (int64, error) {
	if off < 0 || n < 0 {
		return 0, ErrInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file(id)
	if err != nil {
		return 0, err
	}
	if end := off + n; end > f.size {
		f.size = end
	}
	f.change++
	return f.size, nil
}

// ReadAt reads up to len(b) bytes at off; short reads happen at EOF.  Holes
// read as zeros.
func (s *Store) ReadAt(id FileID, off int64, b []byte) (int, error) {
	if off < 0 {
		return 0, ErrInval
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.file(id)
	if err != nil {
		return 0, err
	}
	if off >= n.size {
		return 0, nil
	}
	avail := n.size - off
	if int64(len(b)) > avail {
		b = b[:avail]
	}
	n.data.readAt(off, b)
	return len(b), nil
}

// Truncate sets the file size, discarding or zero-extending content.
func (s *Store) Truncate(id FileID, size int64) error {
	if size < 0 {
		return ErrInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.file(id)
	if err != nil {
		return err
	}
	if size < n.size {
		n.data.truncate(size)
	}
	n.size = size
	n.change++
	return nil
}

// SetSize extends the file size if size is larger (pNFS LAYOUTCOMMIT
// semantics: the client reports a possibly-extended size after direct I/O).
func (s *Store) SetSize(id FileID, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.file(id)
	if err != nil {
		return err
	}
	if size > n.size {
		n.size = size
		n.change++
	}
	return nil
}

// Stats reports the number of live inodes.
func (s *Store) Stats() (inodes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// sparse stores file bytes in fixed-size chunks allocated on demand; holes
// read as zeros.  Parallel-FS stripe objects are naturally sparse (each
// storage node holds every k-th stripe unit at its logical offset).
type sparse struct {
	chunks map[int64][]byte
}

const chunkSize = 64 << 10

func newSparse() *sparse { return &sparse{chunks: make(map[int64][]byte)} }

func (sp *sparse) writeAt(off int64, b []byte) {
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		c, ok := sp.chunks[ci]
		if !ok {
			c = make([]byte, chunkSize)
			sp.chunks[ci] = c
		}
		n := copy(c[co:], b)
		b = b[n:]
		off += int64(n)
	}
}

func (sp *sparse) readAt(off int64, b []byte) {
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - int(co)
		if n > len(b) {
			n = len(b)
		}
		if c, ok := sp.chunks[ci]; ok {
			copy(b[:n], c[co:])
		} else {
			for i := 0; i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		off += int64(n)
	}
}

func (sp *sparse) truncate(size int64) {
	lastChunk := size / chunkSize
	for ci, c := range sp.chunks {
		switch {
		case ci > lastChunk:
			delete(sp.chunks, ci)
		case ci == lastChunk:
			keep := size % chunkSize
			for i := keep; i < chunkSize; i++ {
				c[i] = 0
			}
		}
	}
}

// String renders a debug listing of the namespace.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sb strings.Builder
	var walk func(n *node, prefix string)
	walk = func(n *node, prefix string) {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := n.children[name]
			if c.isDir {
				fmt.Fprintf(&sb, "%s%s/\n", prefix, name)
				walk(c, prefix+"  ")
			} else {
				fmt.Fprintf(&sb, "%s%s (%d bytes)\n", prefix, name, c.size)
			}
		}
	}
	walk(s.root, "")
	return sb.String()
}
