package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xdeadbeef)
	if e.Len() != 4 {
		t.Fatalf("encoded length %d, want 4", e.Len())
	}
	d := NewDecoder(e.Bytes())
	v, err := d.Uint32()
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("got %x, %v", v, err)
	}
}

func TestBigEndianWire(t *testing.T) {
	e := NewEncoder()
	e.Uint32(1)
	if !bytes.Equal(e.Bytes(), []byte{0, 0, 0, 1}) {
		t.Fatalf("not big-endian: %v", e.Bytes())
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder()
		e.Opaque(make([]byte, n))
		want := SizeOpaque(n)
		if e.Len() != want {
			t.Errorf("opaque(%d): encoded %d bytes, want %d", n, e.Len(), want)
		}
		if e.Len()%4 != 0 {
			t.Errorf("opaque(%d): not 4-aligned", n)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "abc", "abcd", "hello world", "日本語"} {
		e := NewEncoder()
		e.String(s)
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		if err != nil || got != s {
			t.Fatalf("round-trip %q: got %q, %v", s, got, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%q: %d trailing bytes", s, d.Remaining())
		}
	}
}

func TestBoolRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(e.Bytes())
	a, _ := d.Bool()
	b, err := d.Bool()
	if err != nil || !a || b {
		t.Fatalf("bool round-trip: %v %v %v", a, b, err)
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Fatalf("uint32 on short buffer: %v", err)
	}
	if _, err := d.Uint64(); err != ErrShortBuffer {
		t.Fatalf("uint64 on short buffer: %v", err)
	}
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Fatalf("opaque on short buffer: %v", err)
	}
}

func TestHostileLengthWord(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xffffffff) // absurd opaque length
	d := NewDecoder(e.Bytes())
	if _, err := d.Opaque(); err != ErrTooLong {
		t.Fatalf("hostile length: %v, want ErrTooLong", err)
	}
}

func TestTruncatedOpaqueBody(t *testing.T) {
	e := NewEncoder()
	e.Uint32(100) // claims 100 bytes, provides none
	d := NewDecoder(e.Bytes())
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Fatalf("truncated opaque: %v", err)
	}
}

type testMsg struct {
	A uint32
	B int64
	C string
	D []byte
	E bool
	F float64
}

func (m *testMsg) MarshalXDR(e *Encoder) {
	e.Uint32(m.A)
	e.Int64(m.B)
	e.String(m.C)
	e.Opaque(m.D)
	e.Bool(m.E)
	e.Float64(m.F)
}

func (m *testMsg) UnmarshalXDR(d *Decoder) error {
	var err error
	if m.A, err = d.Uint32(); err != nil {
		return err
	}
	if m.B, err = d.Int64(); err != nil {
		return err
	}
	if m.C, err = d.String(); err != nil {
		return err
	}
	if m.D, err = d.Opaque(); err != nil {
		return err
	}
	if m.E, err = d.Bool(); err != nil {
		return err
	}
	m.F, err = d.Float64()
	return err
}

// Property: any message round-trips exactly through Marshal/Unmarshal.
func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(a uint32, b int64, c string, d []byte, e bool, fl float64) bool {
		in := &testMsg{A: a, B: b, C: c, D: d, E: e, F: fl}
		var out testMsg
		if err := Unmarshal(Marshal(in), &out); err != nil {
			return false
		}
		return out.A == in.A && out.B == in.B && out.C == in.C &&
			bytes.Equal(out.D, in.D) && out.E == in.E &&
			(out.F == in.F || (out.F != out.F && in.F != in.F)) // NaN-safe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	e := NewEncoder()
	(&testMsg{}).MarshalXDR(e)
	e.Uint32(99) // junk
	var out testMsg
	if err := Unmarshal(e.Bytes(), &out); err == nil {
		t.Fatal("trailing bytes not rejected")
	}
}

func TestFixedOpaqueRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.FixedOpaque([]byte{1, 2, 3, 4, 5})
	if e.Len() != 8 {
		t.Fatalf("fixed opaque of 5 encodes to %d, want 8", e.Len())
	}
	d := NewDecoder(e.Bytes())
	got, err := d.FixedOpaque(5)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	e.Uint64(7)
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("reset did not clear buffer")
	}
}
