// Checksummed frames: a CRC32C (Castagnoli) trailer over an encoded blob,
// shared by the WAL's on-disk records and checkpoint image and by the wire
// payload checksums (docs/BACKENDS.md "Block checksums").  The trailer is
// appended outside the XDR encoding proper — VerifyChecksum strips it again
// before the blob is decoded — so a flipped bit anywhere in the frame,
// including the trailer itself, fails verification before any decoder sees
// the bytes.
package xdr

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// ErrChecksum is returned when a checksummed frame fails verification.
var ErrChecksum = errors.New("xdr: frame checksum mismatch")

// castagnoli is the CRC32C polynomial table (iSCSI/ext4 family) — the same
// checksum real storage stacks use, hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumSize is the length of the trailer AppendChecksum adds.
const ChecksumSize = 4

// Checksum returns the CRC32C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ChecksumUpdate extends a running CRC32C with b — for summing a sequence
// of frames (the WAL checkpoint image) without concatenating them.
func ChecksumUpdate(sum uint32, b []byte) uint32 { return crc32.Update(sum, castagnoli, b) }

// ChecksumSalted returns the CRC32C of b seeded with salt.  Salting with a
// location (file ID, chunk index, device offset) binds the sum to *where*
// the bytes belong, so a misdirected read — the right checksum travelling
// with the wrong block — still fails verification.
func ChecksumSalted(salt uint64, b []byte) uint32 {
	// Fold the salt in byte-at-a-time (big-endian, as if an 8-byte header
	// preceded b) rather than materializing a header slice: this runs per
	// chunk on the store read/write hot paths, where a heap-escaping 8-byte
	// buffer per call would show up in the alloc ceilings.
	sum := ^uint32(0)
	for shift := 56; shift >= 0; shift -= 8 {
		sum = castagnoli[byte(sum)^byte(salt>>uint(shift))] ^ (sum >> 8)
	}
	return crc32.Update(^sum, castagnoli, b)
}

// AppendChecksum appends a big-endian CRC32C trailer over b to b itself and
// returns the extended slice.
func AppendChecksum(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, Checksum(b))
}

// VerifyChecksum checks the trailer AppendChecksum added and returns the
// frame body with the trailer stripped.  Any mutation of the frame — body or
// trailer, truncation included — yields ErrChecksum.
func VerifyChecksum(b []byte) ([]byte, error) {
	if len(b) < ChecksumSize {
		return nil, ErrChecksum
	}
	body := b[:len(b)-ChecksumSize]
	want := binary.BigEndian.Uint32(b[len(b)-ChecksumSize:])
	if Checksum(body) != want {
		return nil, ErrChecksum
	}
	return body, nil
}
