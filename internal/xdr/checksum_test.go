package xdr

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func TestChecksumRoundTrip(t *testing.T) {
	for _, body := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		frame := AppendChecksum(append([]byte(nil), body...))
		if len(frame) != len(body)+ChecksumSize {
			t.Fatalf("frame length %d, want %d", len(frame), len(body)+ChecksumSize)
		}
		got, err := VerifyChecksum(frame)
		if err != nil {
			t.Fatalf("verify clean frame: %v", err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("body %q != %q", got, body)
		}
	}
}

func TestChecksumDetectsMutation(t *testing.T) {
	frame := AppendChecksum([]byte("the quick brown fox"))
	for i := range frame { // body and trailer alike
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		if _, err := VerifyChecksum(mut); err != ErrChecksum {
			t.Fatalf("flipped byte %d undetected: %v", i, err)
		}
	}
	for cut := 0; cut < len(frame); cut++ { // truncation, down to empty
		if _, err := VerifyChecksum(frame[:cut]); err != ErrChecksum {
			t.Fatalf("truncation to %d undetected: %v", cut, err)
		}
	}
}

// ChecksumSalted folds the salt in without materializing a header slice;
// this pins its equivalence to the straightforward definition, a CRC over
// an 8-byte big-endian header followed by the body.
func TestChecksumSaltedEquivalence(t *testing.T) {
	for _, salt := range []uint64{0, 1, 0xdeadbeef, ^uint64(0), 7<<32 | 3} {
		for _, body := range [][]byte{nil, []byte("payload"), bytes.Repeat([]byte{0xAA}, 64<<10)} {
			var hdr [8]byte
			binary.BigEndian.PutUint64(hdr[:], salt)
			want := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, body)
			if got := ChecksumSalted(salt, body); got != want {
				t.Fatalf("ChecksumSalted(%#x) = %#x, want %#x", salt, got, want)
			}
		}
	}
}

// Identical bytes at different locations must carry different sums — the
// property that catches misdirected reads.
func TestChecksumSaltBindsLocation(t *testing.T) {
	body := []byte("same bytes, different block")
	if ChecksumSalted(1, body) == ChecksumSalted(2, body) {
		t.Fatal("distinct salts produced identical sums")
	}
	if ChecksumSalted(1, body) == Checksum(body) {
		t.Fatal("salted sum equals unsalted sum")
	}
}

// FuzzChecksumFrame: no mutation of a sealed frame may verify cleanly, and
// verification of arbitrary bytes must never panic or return a body longer
// than its input.
func FuzzChecksumFrame(f *testing.F) {
	f.Add([]byte("seed body"), uint8(0), uint8(1))
	f.Add([]byte{}, uint8(3), uint8(0xFF))
	f.Add(bytes.Repeat([]byte{0x5A}, 256), uint8(200), uint8(0x80))
	f.Fuzz(func(t *testing.T, body []byte, pos, flip uint8) {
		frame := AppendChecksum(append([]byte(nil), body...))
		got, err := VerifyChecksum(frame)
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("clean frame rejected: %v", err)
		}
		if flip == 0 {
			return // not a mutation
		}
		mut := append([]byte(nil), frame...)
		mut[int(pos)%len(mut)] ^= flip
		if _, err := VerifyChecksum(mut); err != ErrChecksum {
			t.Fatalf("mutated frame (pos %d, flip %#x) decoded cleanly", pos, flip)
		}
	})
}
