// Package xdr implements the subset of XDR (RFC 4506) external data
// representation used by the NFSv4.1/pNFS and PVFS2 wire protocols in this
// repository: big-endian 4-byte aligned primitives, variable-length opaques
// and strings, and counted arrays.
//
// Every protocol message implements Marshaler/Unmarshaler, so the same
// byte-exact encoding flows over both the simulated fabric (where only the
// encoded length matters for timing) and real TCP (cmd/pnfs-demo).
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Marshaler is implemented by types that can append their XDR encoding.
type Marshaler interface {
	MarshalXDR(e *Encoder)
}

// Unmarshaler is implemented by types that can decode themselves from XDR.
type Unmarshaler interface {
	UnmarshalXDR(d *Decoder) error
}

// MaxOpaque bounds variable-length fields to guard against corrupt or
// hostile length words (16 MiB is far above any message this repo sends).
const MaxOpaque = 16 << 20

var (
	// ErrShortBuffer is returned when a decode runs past the input.
	ErrShortBuffer = errors.New("xdr: short buffer")
	// ErrTooLong is returned when a length word exceeds MaxOpaque.
	ErrTooLong = errors.New("xdr: variable-length field exceeds limit")
)

// Encoder appends XDR-encoded data to an internal buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// NewEncoderBuf returns an encoder that appends into b's storage (emptied
// first).  Callers feeding pooled buffers avoid a fresh allocation per
// message; Bytes may still reallocate past cap(b).
func NewEncoderBuf(b []byte) *Encoder { return &Encoder{buf: b[:0]} }

// Bytes returns the encoded buffer (not a copy).
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned (hyper) integer.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 encodes a 64-bit signed (hyper) integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes an XDR boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// FixedOpaque encodes bytes with no length word, padded to 4-byte alignment.
func (e *Encoder) FixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for pad := (4 - len(b)%4) % 4; pad > 0; pad-- {
		e.buf = append(e.buf, 0)
	}
}

// Zeros appends n zero bytes (no alignment padding of its own).  Synthetic
// bulk payloads encode through this without materializing a source buffer.
func (e *Encoder) Zeros(n int) {
	if n <= 0 {
		return
	}
	if need := len(e.buf) + n; need > cap(e.buf) {
		grown := make([]byte, len(e.buf), need)
		copy(grown, e.buf)
		e.buf = grown
	}
	zeroFrom := len(e.buf)
	e.buf = e.buf[:zeroFrom+n]
	clear(e.buf[zeroFrom:])
}

// Opaque encodes a variable-length opaque: length word + padded bytes.
func (e *Encoder) Opaque(b []byte) {
	if len(b) > MaxOpaque {
		panic(fmt.Sprintf("xdr: opaque of %d bytes exceeds limit", len(b)))
	}
	e.Uint32(uint32(len(b)))
	e.FixedOpaque(b)
}

// String encodes an XDR string.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Marshal appends m's encoding.
func (e *Encoder) Marshal(m Marshaler) { m.MarshalXDR(e) }

// Owner tracks the lifetime of a decode buffer that borrow-mode decodes
// alias.  A consumer that lets a borrowed reference escape the decode call
// must Retain the owner first and Release it once the reference is dead;
// the owner frees (or recycles) the underlying buffer when the last
// reference drops.
type Owner interface {
	Retain()
	Release()
}

// Decoder consumes XDR-encoded data from a buffer.
type Decoder struct {
	buf      []byte
	off      int
	owner    Owner
	borrowed int
}

// NewDecoder returns a decoder over b (which is not copied).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// EnableBorrow switches the decoder into borrow mode: OpaqueRef (and any
// Unmarshaler built on it, like payload.Payload) returns slices aliasing
// the decode buffer instead of copies.  o owns that buffer; it must not be
// recycled until every retained borrow has been released.
//
// Lifetime rules:
//
//   - A borrowed slice is valid only while the decode buffer is alive.
//   - Decoding a message does not itself retain o; each borrow that
//     escapes the decode (is stored in the message rather than consumed
//     on the spot) must Retain o and Release it exactly once when done.
//   - After the last Release, reading a borrowed slice is a
//     use-after-free of pooled memory (tests catch this with the buffer
//     pool's poison-on-put hook).
func (d *Decoder) EnableBorrow(o Owner) { d.owner = o }

// BorrowOwner returns the owner installed by EnableBorrow, or nil when the
// decoder copies (the default).
func (d *Decoder) BorrowOwner() Owner { return d.owner }

// Borrowed reports how many opaques were decoded by reference (borrow mode
// only); transports feed it into the rpc_buf_borrowed_total counter.
func (d *Decoder) Borrowed() int { return d.borrowed }

// Remaining reports the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean; any nonzero word is true.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// FixedOpaque decodes n bytes plus alignment padding, returning a copy.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || n > MaxOpaque {
		return nil, ErrTooLong
	}
	padded := n + (4-n%4)%4
	if d.Remaining() < padded {
		return nil, ErrShortBuffer
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += padded
	return out, nil
}

// Opaque decodes a variable-length opaque.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > MaxOpaque {
		return nil, ErrTooLong
	}
	return d.FixedOpaque(int(n))
}

// OpaqueRef is a decoded variable-length opaque.  When Borrowed is set,
// Bytes aliases the decoder's buffer and is subject to the lifetime rules
// documented on EnableBorrow; otherwise Bytes is an ordinary copy.
type OpaqueRef struct {
	Bytes    []byte
	Borrowed bool
}

// OpaqueRef decodes a variable-length opaque without copying when borrow
// mode is enabled (EnableBorrow); outside borrow mode it behaves exactly
// like Opaque.  The returned slice's capacity is clipped to its length so
// appends by a careless consumer cannot scribble over the rest of the
// frame.
func (d *Decoder) OpaqueRef() (OpaqueRef, error) {
	if d.owner == nil {
		b, err := d.Opaque()
		return OpaqueRef{Bytes: b}, err
	}
	n32, err := d.Uint32()
	if err != nil {
		return OpaqueRef{}, err
	}
	if n32 > MaxOpaque {
		return OpaqueRef{}, ErrTooLong
	}
	n := int(n32)
	padded := n + (4-n%4)%4
	if d.Remaining() < padded {
		return OpaqueRef{}, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += padded
	d.borrowed++
	return OpaqueRef{Bytes: b, Borrowed: true}, nil
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}

// Unmarshal decodes into u.
func (d *Decoder) Unmarshal(u Unmarshaler) error { return u.UnmarshalXDR(d) }

// SizeUint32 etc. give encoded sizes for message-size accounting without
// building a buffer.
const (
	SizeUint32 = 4
	SizeUint64 = 8
	SizeBool   = 4
)

// SizeOpaque returns the encoded size of a variable opaque of n bytes.
func SizeOpaque(n int) int { return 4 + n + (4-n%4)%4 }

// SizeString returns the encoded size of s.
func SizeString(s string) int { return SizeOpaque(len(s)) }

// Marshal encodes m into a fresh byte slice.
func Marshal(m Marshaler) []byte {
	e := NewEncoder()
	m.MarshalXDR(e)
	return e.Bytes()
}

// Unmarshal decodes b into u, requiring full consumption of the buffer.
func Unmarshal(b []byte, u Unmarshaler) error {
	d := NewDecoder(b)
	if err := u.UnmarshalXDR(d); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("xdr: %d trailing bytes after decode of %T", d.Remaining(), u)
	}
	return nil
}

// Float64 encodes an IEEE-754 double (used by workload trace files).
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Float64 decodes an IEEE-754 double.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}
