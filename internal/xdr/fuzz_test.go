package xdr

import (
	"bytes"
	"testing"
)

// FuzzDecodePrimitives drives the Decoder's primitive readers with
// arbitrary bytes, interpreting the input itself as the op sequence.
// Whatever the input, decoding must either succeed or return an error —
// never panic — and must never read past the buffer.
func FuzzDecodePrimitives(f *testing.F) {
	// Seeds from the unit-test corpus: valid encodings, short buffers, and
	// hostile length words.
	e := NewEncoder()
	e.Uint32(0xdeadbeef)
	e.Uint64(1 << 40)
	e.String("hello world")
	e.Opaque([]byte{1, 2, 3, 4, 5})
	e.Bool(true)
	e.Float64(3.14)
	f.Add(e.Bytes())
	f.Add([]byte{1, 2})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd opaque length
	f.Add([]byte{0, 0, 0, 100})           // truncated opaque body
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for d.Remaining() > 0 {
			op, err := d.Uint32()
			if err != nil {
				return
			}
			switch op % 7 {
			case 0:
				_, err = d.Uint32()
			case 1:
				_, err = d.Uint64()
			case 2:
				_, err = d.Bool()
			case 3:
				_, err = d.String()
			case 4:
				_, err = d.Opaque()
			case 5:
				_, err = d.FixedOpaque(int(op % 64))
			case 6:
				_, err = d.Float64()
			}
			if err != nil {
				return
			}
			if d.Remaining() < 0 {
				t.Fatalf("decoder ran past the buffer: remaining %d", d.Remaining())
			}
		}
	})
}

// FuzzDecodeMessage decodes arbitrary bytes into a composite message; any
// input that decodes must re-encode and decode again to the same value
// (canonical round-trip).
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range []*testMsg{
		{},
		{A: 1, B: -5, C: "abc", D: []byte{9, 8, 7}, E: true, F: 2.5},
		{A: 0xffffffff, B: 1 << 62, C: "日本語", D: make([]byte, 33), F: -1},
	} {
		f.Add(Marshal(m))
	}
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m testMsg
		if err := Unmarshal(data, &m); err != nil {
			return // malformed input must error, not panic
		}
		re := Marshal(&m)
		var m2 testMsg
		if err := Unmarshal(re, &m2); err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !bytes.Equal(re, Marshal(&m2)) {
			t.Fatal("round-trip is not canonical")
		}
	})
}
