package rpc

import (
	"time"

	"dpnfs/internal/metrics"
	"dpnfs/internal/xdr"
)

// connStats bundles the client-side instruments for one (transport, service)
// pair.  Instruments are resolved once at Dial time; the per-call path is
// pure atomics.  A nil *connStats records nothing, so transports built
// without a registry (unit tests, direct DialTCP users) pay no cost.
type connStats struct {
	calls   *metrics.Counter
	errors  *metrics.Counter
	latency *metrics.Histogram

	bytesSent *metrics.Counter
	bytesRecv *metrics.Counter

	inflight *metrics.Gauge // pool occupancy: calls currently outstanding

	connects *metrics.Counter // TCP: sockets dialed (first dial + reconnects)
	retries  *metrics.Counter // TCP: calls retried on a fresh connection

	faults *metrics.Counter // calls rejected by injected node-down faults
}

// newConnStats resolves the client-side instrument bundle.  reg may be nil.
func newConnStats(reg *metrics.Registry, transport, service string) *connStats {
	if reg == nil {
		return nil
	}
	return &connStats{
		calls: reg.CounterVec("rpc_client_calls_total",
			"RPC calls issued, by transport and remote service.",
			"transport", "service").With(transport, service),
		errors: reg.CounterVec("rpc_client_errors_total",
			"RPC calls that returned an error (transport or RPC status).",
			"transport", "service").With(transport, service),
		latency: reg.HistogramVec("rpc_client_call_seconds",
			"RPC round-trip latency (virtual time on the simulated fabric, wall clock over TCP).",
			metrics.DurationBuckets, "transport", "service").With(transport, service),
		bytesSent: reg.CounterVec("rpc_client_bytes_sent_total",
			"Request bytes put on the wire, including the frame header.",
			"transport", "service").With(transport, service),
		bytesRecv: reg.CounterVec("rpc_client_bytes_received_total",
			"Reply bytes taken off the wire, including the frame header.",
			"transport", "service").With(transport, service),
		inflight: reg.GaugeVec("rpc_client_inflight",
			"Calls currently outstanding (connection-pool occupancy).",
			"transport", "service").With(transport, service),
		connects: reg.CounterVec("rpc_client_connects_total",
			"TCP sockets dialed; anything beyond the pool size is a reconnect.",
			"transport", "service").With(transport, service),
		retries: reg.CounterVec("rpc_client_retries_total",
			"Calls retried on a fresh connection after a pre-wire send failure.",
			"transport", "service").With(transport, service),
		faults: reg.CounterVec("rpc_client_fault_errors_total",
			"Calls that failed because fault injection marked the target node down.",
			"transport", "service").With(transport, service),
	}
}

// callStart opens one call's accounting window and returns its closer.
func (s *connStats) callStart() func(elapsed time.Duration, err error) {
	if s == nil {
		return func(time.Duration, error) {}
	}
	s.calls.Inc()
	s.inflight.Inc()
	return func(elapsed time.Duration, err error) {
		s.inflight.Dec()
		s.latency.ObserveDuration(elapsed)
		if err != nil {
			s.errors.Inc()
		}
	}
}

func (s *connStats) addSent(n int64) {
	if s != nil && n > 0 {
		s.bytesSent.Add(uint64(n))
	}
}

func (s *connStats) addRecv(n int64) {
	if s != nil && n > 0 {
		s.bytesRecv.Add(uint64(n))
	}
}

func (s *connStats) connect() {
	if s != nil {
		s.connects.Inc()
	}
}

func (s *connStats) retry() {
	if s != nil {
		s.retries.Inc()
	}
}

func (s *connStats) fault() {
	if s != nil {
		s.faults.Inc()
	}
}

// instrumentHandler wraps a server-side Handler with request counting, a
// busy-handler gauge, and a service-time histogram (virtual time under the
// kernel, wall clock otherwise).  reg may be nil, in which case h is
// returned untouched.
func instrumentHandler(reg *metrics.Registry, transport, service string, h Handler) Handler {
	if reg == nil {
		return h
	}
	requests := reg.CounterVec("rpc_server_requests_total",
		"Requests dispatched to the service handler.",
		"transport", "service").With(transport, service)
	busy := reg.GaugeVec("rpc_server_busy_handlers",
		"Handlers currently executing (server-thread occupancy).",
		"transport", "service").With(transport, service)
	seconds := reg.HistogramVec("rpc_server_handle_seconds",
		"Handler service time, excluding transport queueing.",
		metrics.DurationBuckets, "transport", "service").With(transport, service)
	return func(ctx *Ctx, proc uint32, req any) (xdr.Marshaler, Status) {
		requests.Inc()
		busy.Inc()
		start := ctx.Now()
		var wall time.Time
		if ctx.P == nil {
			wall = time.Now()
		}
		defer func() {
			busy.Dec()
			if ctx.P == nil {
				seconds.ObserveDuration(time.Since(wall))
			} else {
				seconds.ObserveDuration(time.Duration(ctx.Now() - start))
			}
		}()
		return h(ctx, proc, req)
	}
}
