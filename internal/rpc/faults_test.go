package rpc

import (
	"errors"
	"testing"
	"time"

	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/xdr"
)

func TestRetryableClassifiesErrors(t *testing.T) {
	if !Retryable(&DownError{Node: "io1"}) {
		t.Fatal("DownError must be retryable")
	}
	if !Retryable(errWrap{&DownError{Node: "io1"}}) {
		t.Fatal("wrapped DownError must be retryable")
	}
	if Retryable(errors.New("disk on fire")) {
		t.Fatal("arbitrary errors must not be retryable")
	}
	if Retryable(StatusSystemErr) {
		t.Fatal("RPC status errors must not be retryable")
	}
	if Retryable(nil) {
		t.Fatal("nil must not be retryable")
	}
}

type errWrap struct{ inner error }

func (e errWrap) Error() string { return "wrap: " + e.inner.Error() }
func (e errWrap) Unwrap() error { return e.inner }

// flakyConn fails with a retryable DownError for the first failN calls.
type flakyConn struct {
	failN int
	calls int
}

func (c *flakyConn) Call(ctx *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	c.calls++
	if c.calls <= c.failN {
		return &DownError{Node: "io1"}
	}
	return nil
}

func TestWithRetryRidesOutOutage(t *testing.T) {
	inner := &flakyConn{failN: 3}
	var retries int
	conn := WithRetry(inner, RetryPolicy{Max: 10, Base: time.Microsecond, Cap: time.Microsecond}, func() { retries++ })
	if err := conn.Call(&Ctx{}, 1, nil, nil); err != nil {
		t.Fatalf("call through transient outage: %v", err)
	}
	if inner.calls != 4 {
		t.Fatalf("inner called %d times, want 4", inner.calls)
	}
	if retries != 3 {
		t.Fatalf("onRetry fired %d times, want 3", retries)
	}
}

func TestWithRetryGivesUpAfterBudget(t *testing.T) {
	inner := &flakyConn{failN: 100}
	conn := WithRetry(inner, RetryPolicy{Max: 5, Base: time.Microsecond, Cap: time.Microsecond}, nil)
	err := conn.Call(&Ctx{}, 1, nil, nil)
	var de *DownError
	if !errors.As(err, &de) {
		t.Fatalf("exhausted retry budget returned %v, want DownError", err)
	}
	if inner.calls != 5 {
		t.Fatalf("inner called %d times, want Max=5", inner.calls)
	}
}

func TestWithRetryDoesNotRetryProtocolErrors(t *testing.T) {
	calls := 0
	failing := connFunc(func(*Ctx, uint32, xdr.Marshaler, xdr.Unmarshaler) error {
		calls++
		return StatusSystemErr
	})
	conn := WithRetry(failing, RetryPolicy{Max: 5, Base: time.Microsecond}, nil)
	if err := conn.Call(&Ctx{}, 1, nil, nil); !errors.Is(err, StatusSystemErr) {
		t.Fatalf("got %v, want StatusSystemErr through unchanged", err)
	}
	if calls != 1 {
		t.Fatalf("non-retryable error retried %d times", calls)
	}
}

type connFunc func(*Ctx, uint32, xdr.Marshaler, xdr.Unmarshaler) error

func (f connFunc) Call(ctx *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	return f(ctx, proc, args, rep)
}

// TestSimTransportDownNode pins the simulated crash semantics: calls to a
// down node burn DownCallTimeout of virtual time and fail with a retryable
// DownError; after SetDown(false) the same conn works again.
func TestSimTransportDownNode(t *testing.T) {
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	cl := f.AddNode(simnet.NodeConfig{Name: "client"})
	srv := f.AddNode(simnet.NodeConfig{Name: "server"})
	ServeSim(ServerConfig{Fabric: f, Node: srv, Service: "echo", Threads: 4, Handler: echoHandler})
	conn := &SimTransport{Fabric: f, Src: cl, Dst: srv, Service: "echo"}

	k.Go("caller", func(p *sim.Proc) {
		ctx := &Ctx{P: p}
		srv.SetDown(true)
		before := p.Now()
		err := conn.Call(ctx, procEcho, &echoArgs{N: 1}, nil)
		var de *DownError
		if !errors.As(err, &de) || de.Node != "server" {
			t.Errorf("call to down node: %v, want DownError{server}", err)
		}
		if waited := time.Duration(p.Now() - before); waited != DownCallTimeout {
			t.Errorf("down call burned %v, want %v", waited, DownCallTimeout)
		}
		srv.SetDown(false)
		var got echoArgs
		if err := conn.Call(ctx, procEcho, &echoArgs{N: 41}, &got); err != nil || got.N != 42 {
			t.Errorf("call after restart: %+v, %v", got, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPTransportDownNode pins the TCP equivalent: SetNodeDown gates every
// conn dialed to the node with fast-fail retryable errors, and clears.
func TestTCPTransportDownNode(t *testing.T) {
	tr := NewTCPTransport(1)
	defer tr.Close()
	if _, err := tr.Serve("io0", "echo", echoRegistry(), echoHandler, 2); err != nil {
		t.Fatal(err)
	}
	conn, err := tr.Dial("c0", "io0", "echo")
	if err != nil {
		t.Fatal(err)
	}
	var got echoArgs
	if err := conn.Call(&Ctx{}, procEcho, &echoArgs{N: 1}, &got); err != nil {
		t.Fatal(err)
	}
	tr.SetNodeDown("io0", true)
	err = conn.Call(&Ctx{}, procEcho, &echoArgs{N: 1}, &got)
	var de *DownError
	if !errors.As(err, &de) || de.Node != "io0" {
		t.Fatalf("call to down node: %v, want DownError{io0}", err)
	}
	tr.SetNodeDown("io0", false)
	if err := conn.Call(&Ctx{}, procEcho, &echoArgs{N: 5}, &got); err != nil || got.N != 6 {
		t.Fatalf("call after restart: %+v, %v", got, err)
	}
}
