// Injected-failure surface of the rpc layer (internal/faults): calls to a
// crashed node return a retryable *DownError on both transports — after an
// RPC timeout of virtual time on the simulated fabric, immediately over TCP
// — and WithRetry gives protocol clients a deterministic backoff loop that
// rides out an outage until the node restarts.
package rpc

import (
	"errors"
	"fmt"
	"time"

	"dpnfs/internal/store"
	"dpnfs/internal/xdr"
)

// DownCallTimeout is the virtual time a simulated call burns before a
// crashed node's unreachability surfaces as an error — the RPC timeout a
// real client pays before failing over.  It is deliberately aggressive
// (fast failure detection) rather than the Linux NFS default of tens of
// seconds, so degraded-mode throughput remains measurable.
const DownCallTimeout = 200 * time.Millisecond

// DownError is the retryable error surfaced for calls to a node taken down
// by fault injection.
type DownError struct{ Node string }

func (e *DownError) Error() string {
	return fmt.Sprintf("rpc: node %s is down (injected fault)", e.Node)
}

// Retryable reports whether err is a transient transport failure that a
// client may retry (currently: injected node-down faults).  Protocol-level
// errors riding inside replies are never retryable.
func Retryable(err error) bool {
	var de *DownError
	return errors.As(err, &de)
}

// IntegrityRetries bounds re-reads of data that failed checksum
// verification.  A misdirected read is transient — the next read of the
// same block returns the right bytes — but media rot is not, so after this
// many same-source retries the error escalates to the caller's fallback
// ladder (read-repair from a replica, layout refetch, MDS proxy).
const IntegrityRetries = 2

// RetryableIntegrity reports whether err is a data-integrity failure
// (store.ErrCorrupt, fserr.Corrupt on the wire) that a client may re-read a
// bounded number of times before escalating.
func RetryableIntegrity(err error) bool {
	return errors.Is(err, store.ErrCorrupt)
}

// RetryPolicy bounds a retry loop: Max attempts total, exponential backoff
// from Base capped at Cap.  Backoff sleeps are virtual time under the
// simulation kernel and wall clock otherwise, so retries stay deterministic
// in simulated runs.
type RetryPolicy struct {
	Max  int
	Base time.Duration
	Cap  time.Duration
}

// DefaultRetryPolicy rides out outages of roughly half a virtual minute:
// 20 attempts, 100 ms initial backoff doubling to a 2 s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: 20, Base: 100 * time.Millisecond, Cap: 2 * time.Second}
}

// WithDefaults fills zero-valued fields from DefaultRetryPolicy.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.Max <= 0 {
		p.Max = def.Max
	}
	if p.Base <= 0 {
		p.Base = def.Base
	}
	if p.Cap <= 0 {
		p.Cap = def.Cap
	}
	return p
}

// Do runs op under the policy, retrying Retryable failures with bounded
// exponential backoff (zero-valued fields take defaults).  Backoff sleeps
// are virtual time under the simulation kernel and wall clock otherwise.
// onRetry, when non-nil, is invoked before each retry — callers hook their
// retry counters here.  This is the single retry loop behind both WithRetry
// conns and the I/O engine's retry policy.
//
// Integrity failures (RetryableIntegrity) are retried too, but under their
// own tighter bound of IntegrityRetries regardless of Max: one retry heals
// a misdirected read, while persistent rot escalates quickly to whatever
// fallback ladder wraps this loop.
func (p RetryPolicy) Do(ctx *Ctx, onRetry func(), op func() error) error {
	p = p.WithDefaults()
	backoff := p.Base
	integrity := 0
	var err error
	for attempt := 0; attempt < p.Max; attempt++ {
		if attempt > 0 {
			if onRetry != nil {
				onRetry()
			}
			sleepCtx(ctx, backoff)
			backoff *= 2
			if backoff > p.Cap {
				backoff = p.Cap
			}
		}
		err = op()
		if err == nil {
			return nil
		}
		if RetryableIntegrity(err) {
			if integrity++; integrity > IntegrityRetries {
				return err
			}
			continue
		}
		if !Retryable(err) {
			return err
		}
	}
	return err
}

// WithRetry wraps conn so Retryable failures are retried under pol
// (zero-valued fields take defaults).  onRetry, when non-nil, is invoked
// before each retry — protocol layers hook their retry counters here.
func WithRetry(conn Conn, pol RetryPolicy, onRetry func()) Conn {
	return &retryConn{inner: conn, pol: pol.WithDefaults(), onRetry: onRetry}
}

type retryConn struct {
	inner   Conn
	pol     RetryPolicy
	onRetry func()
}

// Call implements Conn with bounded exponential-backoff retries.
func (r *retryConn) Call(ctx *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	return r.pol.Do(ctx, r.onRetry, func() error {
		return r.inner.Call(ctx, proc, args, rep)
	})
}

// sleepCtx pauses in virtual time under the kernel, wall clock otherwise.
func sleepCtx(ctx *Ctx, d time.Duration) {
	if ctx.P != nil {
		ctx.P.Sleep(d)
	} else {
		time.Sleep(d)
	}
}
