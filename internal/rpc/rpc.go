// Package rpc provides the remote-procedure-call layer shared by the NFSv4.1
// and PVFS2 protocol implementations.  One set of handlers and message types
// serves two transports:
//
//   - SimTransport moves XDR-encoded frames across the simnet fabric in
//     virtual time, charging NIC bandwidth for every byte and letting server
//     handlers charge CPU and disk resources.  All benchmarks use it.
//   - TCP (tcp.go) speaks the same frames over real sockets for the
//     cmd/pnfs-demo binary and loopback integration tests.
//
// A Ctx carries the simulated process when running under the kernel; in
// real-time mode Ctx.P is nil and resource charges are no-ops.
package rpc

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/xdr"
)

// realWG aliases sync.WaitGroup for real-time Parallel.
type realWG = sync.WaitGroup

// Status is an RPC-level status word.  0 is success; protocol-level errors
// ride inside reply bodies, not here.
type Status uint32

// RPC status values.
const (
	StatusOK Status = iota
	StatusProcUnavail
	StatusGarbageArgs
	StatusSystemErr
)

func (s Status) Error() string {
	switch s {
	case StatusOK:
		return "rpc: ok"
	case StatusProcUnavail:
		return "rpc: procedure unavailable"
	case StatusGarbageArgs:
		return "rpc: garbage arguments"
	default:
		return fmt.Sprintf("rpc: system error (%d)", uint32(s))
	}
}

// HeaderBytes is the on-wire overhead per call or reply: record mark, xid,
// message type, procedure/status, and a minimal auth field — it is charged
// against NIC bandwidth in simulation and actually written by the TCP
// transport.
const HeaderBytes = 40

// Ctx carries per-call execution context.  Under simulation P is the calling
// (client side) or serving (server side) process; in real-time mode P is nil.
type Ctx struct {
	P        *sim.Proc
	deferred []func()
	// serialized is set by transports that marshal replies onto a wire
	// before running deferred hooks: a handler's reply payload is fully
	// copied out by the time Defer hooks run, so backends may hand out
	// pooled buffers.  Reference-passing transports leave it false.
	serialized bool
	// retained is set by Retain: the reply may outlive its first
	// transmission (replay caches), so no part of it may alias pooled
	// buffers — neither Defer-released nor consumer-released ones.
	retained bool
}

// Serialized reports whether reply payloads are copied onto a wire before
// deferred hooks run.  Backends use it to decide whether bulk read buffers
// may come from the shared pool (released via Defer) or must be fresh
// allocations the caller can retain.
func (c *Ctx) Serialized() bool { return c.serialized }

// Retain marks the call's reply as potentially retained beyond its first
// transmission — e.g. stored in a session replay cache, from which a
// retransmission would re-marshal it.  Backends must then allocate fresh
// reply buffers even on a serializing transport, so servers call this
// before running any compound whose reply they may cache.
func (c *Ctx) Retain() {
	c.serialized = false
	c.retained = true
}

// Retained reports whether Retain was called.  On a reference-passing
// transport, a backend may hand the (single) consumer a pooled reply
// buffer with a Release hook only when the reply is not retained.
func (c *Ctx) Retained() bool { return c.retained }

// Defer registers fn to run after the server has finished transmitting the
// reply.  Storage daemons use it to hold transfer buffers until the data has
// actually left the node, which is what makes a fixed buffer pool a real
// throughput bound.
func (c *Ctx) Defer(fn func()) { c.deferred = append(c.deferred, fn) }

// runDeferred executes deferred hooks in LIFO order.
func (c *Ctx) runDeferred() {
	for i := len(c.deferred) - 1; i >= 0; i-- {
		c.deferred[i]()
	}
	c.deferred = nil
}

// Now returns virtual time under simulation and the zero Time otherwise.
func (c *Ctx) Now() sim.Time {
	if c.P != nil {
		return c.P.Now()
	}
	return 0
}

// UseCPU charges d of CPU service on cpu; no-op in real-time mode.
func (c *Ctx) UseCPU(cpu *sim.KServer, d time.Duration) {
	if c.P != nil && cpu != nil && d > 0 {
		cpu.Use(c.P, d)
	}
}

// Sleep pauses for d of virtual time; no-op in real-time mode.
func (c *Ctx) Sleep(d time.Duration) {
	if c.P != nil && d > 0 {
		c.P.Sleep(d)
	}
}

// Msg is a protocol message: XDR-encodable, and able to report its wire
// size.  Bulk-data messages implement WireSize without materializing
// payload bytes; everything else can embed SizeByEncoding semantics via the
// WireSizeOf helper.
type Msg interface {
	xdr.Marshaler
	WireSize() int64
}

// sizeEncPool recycles the scratch encoders behind WireSizeOf's fallback,
// so sizing a message without a WireSize method costs an encode pass but
// no allocation in steady state.
var sizeEncPool = sync.Pool{New: func() any { return xdr.NewEncoder() }}

// WireSizeOf returns m's encoded size, using WireSize when available and
// falling back to encoding into a pooled scratch buffer.
func WireSizeOf(m xdr.Marshaler) int64 {
	if s, ok := m.(interface{ WireSize() int64 }); ok {
		return s.WireSize()
	}
	e := sizeEncPool.Get().(*xdr.Encoder)
	e.Reset()
	m.MarshalXDR(e)
	n := int64(e.Len())
	sizeEncPool.Put(e)
	return n
}

// Conn issues calls to one remote service.
type Conn interface {
	// Call invokes proc with args, decoding the response into reply.
	// reply must be a pointer to the concrete response type the server
	// produces for proc.  A non-OK RPC status is returned as that Status;
	// transport failures surface as other error types.
	Call(ctx *Ctx, proc uint32, args xdr.Marshaler, reply xdr.Unmarshaler) error
}

// Handler processes one decoded call.  Under the simulated transport req is
// the very value the client passed (treat it as read-only); under TCP it is
// a freshly decoded message.  The returned message is the reply body.
type Handler func(ctx *Ctx, proc uint32, req any) (xdr.Marshaler, Status)

// Registry maps procedure numbers to request constructors so the TCP
// transport can decode call bodies into the same typed requests the
// simulated transport passes by reference.
type Registry struct {
	ctors map[uint32]func() xdr.Unmarshaler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ctors: make(map[uint32]func() xdr.Unmarshaler)}
}

// Register binds proc to a request constructor.  Duplicate registration
// panics: procedure tables are wired once at startup.
func (r *Registry) Register(proc uint32, ctor func() xdr.Unmarshaler) {
	if _, dup := r.ctors[proc]; dup {
		panic(fmt.Sprintf("rpc: duplicate registration of proc %d", proc))
	}
	r.ctors[proc] = ctor
}

// New constructs an empty request for proc, or nil if unknown.
func (r *Registry) New(proc uint32) xdr.Unmarshaler {
	ctor, ok := r.ctors[proc]
	if !ok {
		return nil
	}
	return ctor()
}

// call is the payload carried through the simulated fabric for a request.
type call struct {
	proc    uint32
	req     any
	replyTo *sim.Chan
	from    *simnet.Node
}

// reply is the payload for a response.
type reply struct {
	status Status
	resp   xdr.Marshaler
}

// SimTransport is a Conn bound to (fabric, client node, server node,
// service).  It is cheap; create one per client/server pair.
type SimTransport struct {
	Fabric  *simnet.Fabric
	Src     *simnet.Node
	Dst     *simnet.Node
	Service string

	// stats, when set by FabricTransport.Dial, records per-call latency
	// (virtual time) and wire bytes.
	stats *connStats
}

// Call implements Conn over the simulated fabric.  It blocks the calling
// process for the full request/response round trip.  The typed request is
// delivered to the server by reference; only its wire size crosses the NIC
// model, so bulk payloads are never serialized.
func (t *SimTransport) Call(ctx *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	if ctx.P == nil {
		panic("rpc: SimTransport.Call without a simulated process")
	}
	done := t.stats.callStart()
	start := ctx.Now()
	if t.Dst.Down() {
		// Injected crash: the request goes unanswered until the RPC timer
		// expires, then surfaces as a retryable failure.
		ctx.P.Sleep(DownCallTimeout)
		err := &DownError{Node: t.Dst.Name}
		t.stats.fault()
		done(time.Duration(ctx.Now()-start), err)
		return err
	}
	rc := sim.NewChan("reply")
	msg := call{proc: proc, req: args, replyTo: rc, from: t.Src}
	size := WireSizeOf(args) + HeaderBytes
	t.stats.addSent(size)
	t.Fabric.Send(ctx.P, t.Src, t.Dst, t.Service, msg, size)
	rm := rc.Recv(ctx.P).(simnet.Message)
	r := rm.Payload.(reply)
	if t.stats != nil {
		// Error replies still carry a frame header on the wire; count it so
		// sim and TCP byte accounting agree for identical traffic.
		recv := int64(HeaderBytes)
		if r.resp != nil {
			recv += WireSizeOf(r.resp)
		}
		t.stats.addRecv(recv)
	}
	if r.status != StatusOK {
		done(time.Duration(ctx.Now()-start), r.status)
		return r.status
	}
	if rep == nil {
		done(time.Duration(ctx.Now()-start), nil)
		return nil
	}
	err := copyReply(rep, r.resp)
	done(time.Duration(ctx.Now()-start), err)
	return err
}

// copyReply moves the server's typed response into the caller's reply
// value.  Both sides use the same concrete type, so this is a shallow
// struct copy via reflection.
func copyReply(dst xdr.Unmarshaler, src xdr.Marshaler) error {
	if src == nil {
		return nil
	}
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer {
		return fmt.Errorf("rpc: reply types must be pointers (got %T, %T)", dst, src)
	}
	if dv.Elem().Type() != sv.Elem().Type() {
		return fmt.Errorf("rpc: reply type mismatch: caller wants %T, server sent %T", dst, src)
	}
	dv.Elem().Set(sv.Elem())
	return nil
}

// Parallel runs fn(i) for i in [0, n) concurrently and waits for all of
// them: simulated processes under the kernel, plain goroutines in real-time
// mode.  Each invocation gets its own Ctx.
func Parallel(ctx *Ctx, n int, fn func(ctx *Ctx, i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(ctx, 0)
		return
	}
	if ctx.P == nil {
		var wg realWG
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fn(&Ctx{}, i)
			}(i)
		}
		wg.Wait()
		return
	}
	k := ctx.P.Kernel()
	var wg sim.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		k.Go(ctx.P.Name()+"/par", func(w *sim.Proc) {
			defer wg.Done()
			fn(&Ctx{P: w}, i)
		})
	}
	wg.Wait(ctx.P)
}

// ServerConfig describes a simulated RPC service endpoint.
type ServerConfig struct {
	Fabric  *simnet.Fabric
	Node    *simnet.Node
	Service string
	Threads int // max concurrent handler processes (NFS "server threads")
	Handler Handler
}

// ServeSim starts the dispatcher process for a simulated RPC service.  Each
// request is handled by its own process, bounded by Threads concurrent
// handlers served FIFO.
func ServeSim(cfg ServerConfig) {
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	threads := sim.NewSemaphore(cfg.Node.Name+"/"+cfg.Service+"/threads", cfg.Threads)
	inbox := cfg.Node.Service(cfg.Service)
	workerName := cfg.Node.Name + "/" + cfg.Service + "/worker"
	cfg.Fabric.K.Go(cfg.Node.Name+"/"+cfg.Service+"/dispatch", func(p *sim.Proc) {
		p.MarkDaemon()
		for {
			m := inbox.Recv(p).(simnet.Message)
			c := m.Payload.(call)
			threads.Acquire(p, 1)
			cfg.Fabric.K.Go(workerName, func(w *sim.Proc) {
				defer threads.Release(1)
				hctx := &Ctx{P: w}
				resp, status := cfg.Handler(hctx, c.proc, c.req)
				size := int64(HeaderBytes)
				if resp != nil {
					size += WireSizeOf(resp)
				}
				cfg.Fabric.SendTo(w, cfg.Node, c.from, c.replyTo, reply{status: status, resp: resp}, size)
				hctx.runDeferred()
			})
		}
	})
}
