package rpc

import (
	"math/bits"
	"sync"
)

// Buffer pool for transfer-sized []byte, shared by the TCP transport's frame
// encode/decode paths and by server backends producing bulk read payloads.
// Buffers live in power-of-two size classes so a steady-state server reuses
// the same handful of allocations regardless of request mix — the bufpool
// idiom of production NFS servers.
//
// Pooled buffers are returned dirty; every user overwrites the full length
// it requested (frame reads use io.ReadFull, backend reads are clamped to
// the stored size, and sparse stores zero-fill holes explicitly).

const (
	minBufBits = 10 // smallest class: 1 KiB
	maxBufBits = 25 // largest class: 32 MiB, above MaxOpaque + framing
	numClasses = maxBufBits - minBufBits + 1
)

var bufClasses [numClasses]sync.Pool

// classFor returns the smallest class whose size is >= n, or -1 when n is
// larger than the largest class.
func classFor(n int) int {
	if n <= 1<<minBufBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minBufBits
	if c >= numClasses {
		return -1
	}
	return c
}

// GetBuf returns a buffer of length n, reusing pooled storage when a class
// fits.  Contents are unspecified.
func GetBuf(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if p, ok := bufClasses[c].Get().(*[]byte); ok {
		return (*p)[:n]
	}
	return make([]byte, n, 1<<(c+minBufBits))
}

// PutBuf recycles a buffer obtained from GetBuf (or any slice of a pooled
// size).  The caller must not touch b afterwards.
func PutBuf(b []byte) {
	c := bits.Len(uint(cap(b))) - 1 - minBufBits // largest class <= cap
	if c < 0 || c >= numClasses || cap(b) != 1<<(c+minBufBits) {
		// Oversized or odd-capacity buffers are left to the GC rather than
		// poisoning a class with a wrong-sized backing array.
		return
	}
	b = b[:0]
	bufClasses[c].Put(&b)
}
