package rpc

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Buffer pool for transfer-sized []byte, shared by the TCP transport's frame
// encode/decode paths and by server backends producing bulk read payloads.
// Buffers live in power-of-two size classes so a steady-state server reuses
// the same handful of allocations regardless of request mix — the bufpool
// idiom of production NFS servers.
//
// Pooled buffers are returned dirty; every user overwrites the full length
// it requested (frame reads use io.ReadFull, backend reads are clamped to
// the stored size, and sparse stores zero-fill holes explicitly).

const (
	minBufBits = 10 // smallest class: 1 KiB
	maxBufBits = 25 // largest class: 32 MiB, above MaxOpaque + framing
	numClasses = maxBufBits - minBufBits + 1
)

var bufClasses [numClasses]sync.Pool

// classFor returns the smallest class whose size is >= n, or -1 when n is
// larger than the largest class.
func classFor(n int) int {
	if n <= 1<<minBufBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minBufBits
	if c >= numClasses {
		return -1
	}
	return c
}

// GetBuf returns a buffer of length n, reusing pooled storage when a class
// fits.  Contents are unspecified.
func GetBuf(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if p, ok := bufClasses[c].Get().(*[]byte); ok {
		return (*p)[:n]
	}
	return make([]byte, n, 1<<(c+minBufBits))
}

// PutBuf recycles a buffer obtained from GetBuf (or any slice of a pooled
// size).  The caller must not touch b afterwards.
func PutBuf(b []byte) {
	c := bits.Len(uint(cap(b))) - 1 - minBufBits // largest class <= cap
	if c < 0 || c >= numClasses || cap(b) != 1<<(c+minBufBits) {
		// Oversized or odd-capacity buffers are left to the GC rather than
		// poisoning a class with a wrong-sized backing array.
		return
	}
	if poisonOnPut.Load() {
		full := b[:cap(b)]
		for i := range full {
			full[i] = poisonByte
		}
	}
	b = b[:0]
	bufClasses[c].Put(&b)
}

// poisonByte overwrites recycled buffers when poison-on-put is enabled, so
// a borrow that outlives its frame reads a recognizable pattern instead of
// whatever the next user wrote.
const poisonByte = 0xA5

var poisonOnPut atomic.Bool

// SetPoisonOnPut enables (or disables) poisoning of every buffer returned
// to the pool.  Tests and fuzz targets use it to turn a silent
// use-after-release of a borrowed decode into a deterministic data
// mismatch.  Returns the previous setting.
func SetPoisonOnPut(on bool) bool { return poisonOnPut.Swap(on) }

// Buffer-flow counters (docs/METRICS.md): how many opaques were decoded by
// reference out of pooled frames, and how many payload copies the pooled
// hot path avoided.  They are package-global (the pool itself is global);
// BufCounters reads them for metric snapshots.
var (
	bufBorrowed      atomic.Uint64
	bufCopiesAvoided atomic.Uint64
)

// countBorrowed credits n borrow-decodes to rpc_buf_borrowed_total.
func countBorrowed(n int) {
	if n > 0 {
		bufBorrowed.Add(uint64(n))
	}
}

// CountCopyAvoided credits one avoided payload copy (a pooled buffer handed
// across a layer boundary by reference where the pre-pool code copied) to
// rpc_buf_copies_avoided_total.  Exported for the client/server layers that
// hand out pooled payloads.
func CountCopyAvoided() { bufCopiesAvoided.Add(1) }

// BufCounters returns the cumulative borrow and avoided-copy counts.
func BufCounters() (borrowed, copiesAvoided uint64) {
	return bufBorrowed.Load(), bufCopiesAvoided.Load()
}

// RefBuf is a reference-counted pooled buffer: it implements xdr.Owner so
// borrow-mode decodes can keep a reply frame alive until the last consumer
// of a borrowed payload releases it, at which point the frame returns to
// the pool.  The creator holds the initial reference.
type RefBuf struct {
	buf  []byte
	refs atomic.Int32
}

// NewRefBuf wraps a pooled buffer with reference count 1.
func NewRefBuf(b []byte) *RefBuf {
	r := &RefBuf{buf: b}
	r.refs.Store(1)
	return r
}

// Retain adds a reference.
func (r *RefBuf) Retain() { r.refs.Add(1) }

// Release drops a reference; the last one returns the buffer to the pool.
func (r *RefBuf) Release() {
	if n := r.refs.Add(-1); n == 0 {
		b := r.buf
		r.buf = nil
		PutBuf(b)
	} else if n < 0 {
		panic("rpc: RefBuf over-released")
	}
}
