// Transport abstraction: the same protocol stacks (NFSv4.1 compounds, PVFS2
// requests) run either on the discrete-event simulated fabric — virtual
// time, deterministic, used for regenerating the paper's figures — or over
// real loopback TCP sockets — wall-clock time, used for serving and
// end-to-end integration.  Cluster wiring goes through this interface so any
// architecture can be instantiated on either side without code changes.
package rpc

import (
	"fmt"
	"sync"

	"dpnfs/internal/metrics"
	"dpnfs/internal/simnet"
	"dpnfs/internal/xdr"
)

// Transport wires RPC endpoints addressed by logical node names.
type Transport interface {
	// Serve registers handler for service on the logical node name,
	// decoding requests through reg (reference-passing transports ignore
	// reg), with at most threads concurrent handlers.  It returns the
	// address peers reach the service at.
	Serve(node, service string, reg *Registry, h Handler, threads int) (addr string, err error)
	// Dial returns a Conn from the logical node from to the service
	// registered under (node, service).  Connections may be shared and must
	// be safe for concurrent calls.
	Dial(from, node, service string) (Conn, error)
	// Close tears down every listener and connection the transport owns.
	Close() error
}

// FabricTransport runs endpoints on a simulated fabric: Serve registers a
// dispatcher process, Dial returns a SimTransport conn.  Node names must
// already exist on the fabric (topology is built by the cluster layer).
type FabricTransport struct {
	Fabric *simnet.Fabric
	// Metrics, when set, instruments every conn and served handler
	// (docs/METRICS.md).  Latencies are virtual time.
	Metrics *metrics.Registry

	// connMu guards conns, the (src, dst, service) → SimTransport cache.
	// Conns are stateless beyond their shared stats bundle, so every
	// re-dial of the same edge (a client re-mounting per benchmark run
	// re-dials each data server) reuses one conn instead of rebuilding
	// its metric instruments.
	connMu sync.Mutex
	conns  map[string]*SimTransport
}

// Serve implements Transport via ServeSim.
func (t *FabricTransport) Serve(node, service string, _ *Registry, h Handler, threads int) (string, error) {
	ServeSim(ServerConfig{
		Fabric:  t.Fabric,
		Node:    t.Fabric.Node(node),
		Service: service,
		Threads: threads,
		Handler: instrumentHandler(t.Metrics, "sim", service, h),
	})
	return node, nil
}

// Dial implements Transport with a fabric conn between the two nodes,
// shared across repeat dials of the same (from, node, service) edge.
func (t *FabricTransport) Dial(from, node, service string) (Conn, error) {
	key := from + "\x00" + node + "\x00" + service
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	c := &SimTransport{
		Fabric:  t.Fabric,
		Src:     t.Fabric.Node(from),
		Dst:     t.Fabric.Node(node),
		Service: service,
		stats:   newConnStats(t.Metrics, "sim", service),
	}
	if t.conns == nil {
		t.conns = make(map[string]*SimTransport)
	}
	t.conns[key] = c
	return c, nil
}

// Close implements Transport; the simulation kernel owns process teardown.
func (t *FabricTransport) Close() error { return nil }

// TCPTransport runs endpoints on real loopback sockets: Serve starts a
// TCPServer on an ephemeral port, Dial hands out a per-server shared
// connection pool (pipelined calls, lazy reconnect).  Logical node names
// resolve through the transport's own registry, so the same cluster wiring
// code works unmodified.
type TCPTransport struct {
	// Host is the listen/dial host; empty means loopback.
	Host string
	// PoolConns is the per-server connection pool size (0 = default).
	PoolConns int
	// Metrics, when set, instruments every pool and served handler
	// (docs/METRICS.md).  Latencies are wall clock.
	Metrics *metrics.Registry

	mu      sync.Mutex
	servers map[string]*TCPServer // key: node + "/" + service
	addrs   map[string]string     // logical key -> host:port
	pools   map[string]*TCPPool   // one shared pool per server endpoint
	downed  map[string]bool       // fault injection: logical nodes marked down
	closed  bool
}

// SetNodeDown marks (or clears) every service on the logical node as
// unreachable: calls through conns dialed to it fail fast with a retryable
// *DownError, the TCP equivalent of the simulated fabric's crashed node
// (internal/faults).
func (t *TCPTransport) SetNodeDown(node string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.downed == nil {
		t.downed = make(map[string]bool)
	}
	if down {
		t.downed[node] = true
	} else {
		delete(t.downed, node)
	}
}

func (t *TCPTransport) nodeDown(node string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.downed[node]
}

// downGate wraps a pool conn with the transport's node-down check.
type downGate struct {
	tr   *TCPTransport
	node string
	pool *TCPPool
}

// Call implements Conn, rejecting calls while the node is marked down.
func (g *downGate) Call(ctx *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	if g.tr.nodeDown(g.node) {
		g.pool.stats.fault()
		return &DownError{Node: g.node}
	}
	return g.pool.Call(ctx, proc, args, rep)
}

// NewTCPTransport returns an empty loopback transport.
func NewTCPTransport(poolConns int) *TCPTransport {
	return &TCPTransport{
		PoolConns: poolConns,
		servers:   make(map[string]*TCPServer),
		addrs:     make(map[string]string),
		pools:     make(map[string]*TCPPool),
	}
}

func (t *TCPTransport) host() string {
	if t.Host != "" {
		return t.Host
	}
	return "127.0.0.1"
}

// Serve implements Transport: it listens on an ephemeral port and bounds
// handler concurrency to threads (the "NFS server threads" knob) across all
// of the service's connections.
func (t *TCPTransport) Serve(node, service string, reg *Registry, h Handler, threads int) (string, error) {
	h = instrumentHandler(t.Metrics, "tcp", service, h)
	if threads > 0 {
		sem := make(chan struct{}, threads)
		inner := h
		h = func(ctx *Ctx, proc uint32, req any) (xdr.Marshaler, Status) {
			sem <- struct{}{}
			defer func() { <-sem }()
			return inner(ctx, proc, req)
		}
	}
	key := node + "/" + service
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", errConnClosed
	}
	if _, dup := t.servers[key]; dup {
		return "", fmt.Errorf("rpc: service %s already registered", key)
	}
	srv, err := ListenTCP(t.host()+":0", reg, h)
	if err != nil {
		return "", err
	}
	t.servers[key] = srv
	t.addrs[key] = srv.Addr()
	return srv.Addr(), nil
}

// Dial implements Transport.  Pools are keyed per (from, node, service):
// each client node gets its own pipelined connections to a server, like
// the per-mount connections of a real deployment — a shared pool would
// serialize every client's bulk frames through one socket pair.
func (t *TCPTransport) Dial(from, node, service string) (Conn, error) {
	serverKey := node + "/" + service
	poolKey := from + "->" + serverKey
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errConnClosed
	}
	if p, ok := t.pools[poolKey]; ok {
		return &downGate{tr: t, node: node, pool: p}, nil
	}
	addr, ok := t.addrs[serverKey]
	if !ok {
		return nil, fmt.Errorf("rpc: no service registered at %s", serverKey)
	}
	p := NewTCPPool(addr, t.PoolConns)
	p.stats = newConnStats(t.Metrics, "tcp", service)
	t.pools[poolKey] = p
	return &downGate{tr: t, node: node, pool: p}, nil
}

// Addr reports the bound address for (node, service), or "" if absent.
func (t *TCPTransport) Addr(node, service string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[node+"/"+service]
}

// Addrs returns a snapshot of every registered "node/service" -> address
// mapping (cmd/dpnfs-serve prints it as the cluster's export table).
func (t *TCPTransport) Addrs() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.addrs))
	for k, v := range t.addrs {
		out[k] = v
	}
	return out
}

// Close implements Transport: client pools close first so in-flight calls
// fail fast, then listeners drain their handlers.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	pools := t.pools
	servers := t.servers
	t.pools = make(map[string]*TCPPool)
	t.servers = make(map[string]*TCPServer)
	t.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
	var firstErr error
	for _, s := range servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
