package rpc

import (
	"sync"
	"testing"
	"time"

	"dpnfs/internal/sim"
	"dpnfs/internal/simnet"
	"dpnfs/internal/xdr"
)

// echoArgs is a trivial round-trip message for transport tests.
type echoArgs struct {
	N    uint64
	Blob []byte
}

func (a *echoArgs) MarshalXDR(e *xdr.Encoder) {
	e.Uint64(a.N)
	e.Opaque(a.Blob)
}

func (a *echoArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if a.N, err = d.Uint64(); err != nil {
		return err
	}
	a.Blob, err = d.Opaque()
	return err
}

func (a *echoArgs) WireSize() int64 {
	return xdr.SizeUint64 + int64(xdr.SizeOpaque(len(a.Blob)))
}

const procEcho = 7

func echoHandler(ctx *Ctx, proc uint32, req any) (xdr.Marshaler, Status) {
	if proc != procEcho {
		return nil, StatusProcUnavail
	}
	a, ok := req.(*echoArgs)
	if !ok {
		return nil, StatusGarbageArgs
	}
	return &echoArgs{N: a.N + 1, Blob: a.Blob}, StatusOK
}

func echoRegistry() *Registry {
	reg := NewRegistry()
	reg.Register(procEcho, func() xdr.Unmarshaler { return &echoArgs{} })
	return reg
}

func TestSimTransportRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	cl := f.AddNode(simnet.NodeConfig{Name: "client"})
	srv := f.AddNode(simnet.NodeConfig{Name: "server"})
	ServeSim(ServerConfig{Fabric: f, Node: srv, Service: "echo", Threads: 4, Handler: echoHandler})
	conn := &SimTransport{Fabric: f, Src: cl, Dst: srv, Service: "echo"}

	var got echoArgs
	var callErr error
	k.Go("caller", func(p *sim.Proc) {
		args := echoArgs{N: 41, Blob: []byte("payload")}
		callErr = conn.Call(&Ctx{P: p}, procEcho, &args, &got)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr != nil {
		t.Fatal(callErr)
	}
	if got.N != 42 || string(got.Blob) != "payload" {
		t.Fatalf("echo returned %+v", got)
	}
}

func TestSimTransportChargesBandwidth(t *testing.T) {
	// A 1 MB call at 1 Gb/s should take ≥ 8 ms of virtual time per direction.
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	cl := f.AddNode(simnet.NodeConfig{Name: "client"})
	srv := f.AddNode(simnet.NodeConfig{Name: "server"})
	ServeSim(ServerConfig{Fabric: f, Node: srv, Service: "echo", Threads: 4, Handler: echoHandler})
	conn := &SimTransport{Fabric: f, Src: cl, Dst: srv, Service: "echo"}
	var done sim.Time
	k.Go("caller", func(p *sim.Proc) {
		args := echoArgs{Blob: make([]byte, 1<<20)}
		var got echoArgs
		if err := conn.Call(&Ctx{P: p}, procEcho, &args, &got); err != nil {
			t.Error(err)
		}
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Duration(done); elapsed < 16*time.Millisecond {
		t.Fatalf("1 MB round trip took %v of virtual time; bandwidth not charged", elapsed)
	}
}

func TestSimTransportThreadLimit(t *testing.T) {
	// With 1 server thread and a 10 ms handler, 4 concurrent calls must
	// serialize: total ≥ 40 ms.
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	cl := f.AddNode(simnet.NodeConfig{Name: "client"})
	srv := f.AddNode(simnet.NodeConfig{Name: "server"})
	slow := func(ctx *Ctx, proc uint32, req any) (xdr.Marshaler, Status) {
		ctx.Sleep(10 * time.Millisecond)
		return nil, StatusOK
	}
	ServeSim(ServerConfig{Fabric: f, Node: srv, Service: "slow", Threads: 1, Handler: slow})
	conn := &SimTransport{Fabric: f, Src: cl, Dst: srv, Service: "slow"}
	var last sim.Time
	for i := 0; i < 4; i++ {
		k.Go("caller", func(p *sim.Proc) {
			if err := conn.Call(&Ctx{P: p}, 1, &echoArgs{}, nil); err != nil {
				t.Error(err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if time.Duration(last) < 40*time.Millisecond {
		t.Fatalf("4 calls on 1 thread finished in %v, want ≥ 40 ms", time.Duration(last))
	}
}

func TestSimTransportErrorStatus(t *testing.T) {
	k := sim.NewKernel(1)
	f := simnet.NewFabric(k)
	cl := f.AddNode(simnet.NodeConfig{Name: "client"})
	srv := f.AddNode(simnet.NodeConfig{Name: "server"})
	ServeSim(ServerConfig{Fabric: f, Node: srv, Service: "echo", Handler: echoHandler})
	conn := &SimTransport{Fabric: f, Src: cl, Dst: srv, Service: "echo"}
	var err error
	k.Go("caller", func(p *sim.Proc) {
		err = conn.Call(&Ctx{P: p}, 999, &echoArgs{}, nil)
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != StatusProcUnavail {
		t.Fatalf("bad proc returned %v, want StatusProcUnavail", err)
	}
}

func TestWireSizeOfPrefersWireSize(t *testing.T) {
	a := &echoArgs{Blob: make([]byte, 100)}
	if got, want := WireSizeOf(a), a.WireSize(); got != want {
		t.Fatalf("WireSizeOf = %d, want %d", got, want)
	}
	// And WireSize must agree with the actual encoding.
	if got, want := a.WireSize(), int64(len(xdr.Marshal(a))); got != want {
		t.Fatalf("WireSize %d != encoded size %d", got, want)
	}
}

func TestCopyReplyTypeMismatch(t *testing.T) {
	type other struct{ echoArgs }
	var dst echoArgs
	src := &other{}
	if err := copyReply(&dst, src); err == nil {
		t.Fatal("type mismatch not detected")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", echoRegistry(), echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got echoArgs
	if err := c.Call(&Ctx{}, procEcho, &echoArgs{N: 1, Blob: []byte("x")}, &got); err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || string(got.Blob) != "x" {
		t.Fatalf("echo returned %+v", got)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", echoRegistry(), echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(n uint64) {
			defer wg.Done()
			var got echoArgs
			if err := c.Call(&Ctx{}, procEcho, &echoArgs{N: n}, &got); err != nil {
				errs <- err
				return
			}
			if got.N != n+1 {
				errs <- StatusSystemErr
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPErrorStatus(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", echoRegistry(), echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call(&Ctx{}, 999, &echoArgs{}, nil); err != StatusProcUnavail {
		t.Fatalf("got %v, want StatusProcUnavail", err)
	}
}

func TestTCPGarbageArgs(t *testing.T) {
	// Register a proc whose decode will fail on a mismatched body.
	reg := NewRegistry()
	reg.Register(1, func() xdr.Unmarshaler { return &echoArgs{} })
	s, err := ListenTCP("127.0.0.1:0", reg, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// shortMsg encodes fewer bytes than echoArgs needs.
	if err := c.Call(&Ctx{}, 1, &shortMsg{}, nil); err != StatusGarbageArgs {
		t.Fatalf("got %v, want StatusGarbageArgs", err)
	}
}

type shortMsg struct{}

func (*shortMsg) MarshalXDR(e *xdr.Encoder)         { e.Uint32(0) }
func (*shortMsg) UnmarshalXDR(d *xdr.Decoder) error { _, err := d.Uint32(); return err }

func TestTCPServerCloseFailsCalls(t *testing.T) {
	block := make(chan struct{})
	reg := echoRegistry()
	s, err := ListenTCP("127.0.0.1:0", reg, func(ctx *Ctx, proc uint32, req any) (xdr.Marshaler, Status) {
		<-block
		return nil, StatusOK
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Call(&Ctx{}, procEcho, &echoArgs{}, nil) }()
	time.Sleep(50 * time.Millisecond)
	close(block)
	s.Close()
	if err := <-done; err != nil && err != StatusOK {
		// Either outcome (completed before close, or failed) is acceptable;
		// the test asserts no hang and no panic.
		t.Logf("call after close: %v", err)
	}
	c.Close()
}

func TestHeaderBytesMatchesWire(t *testing.T) {
	// An empty-body frame must be exactly HeaderBytes long on the wire.
	var mu sync.Mutex
	var buf writeRecorder
	if _, err := writeFrame(&buf, &mu, 1, msgCall, 2, nil); err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderBytes {
		t.Fatalf("empty frame is %d bytes on the wire, HeaderBytes=%d", len(buf), HeaderBytes)
	}
}

type writeRecorder []byte

func (w *writeRecorder) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Register(1, func() xdr.Unmarshaler { return &echoArgs{} })
	reg.Register(1, func() xdr.Unmarshaler { return &echoArgs{} })
}

func TestCtxNoopsInRealTimeMode(t *testing.T) {
	ctx := &Ctx{}
	ctx.Sleep(time.Hour) // must not block
	if ctx.Now() != 0 {
		t.Fatal("real-time ctx reports nonzero virtual time")
	}
}
