package rpc

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dpnfs/internal/xdr"
)

// TestFrameRoundTrip exercises the wire codec directly: header fields,
// body bytes, and the HeaderBytes accounting invariant.
func TestFrameRoundTrip(t *testing.T) {
	body := &echoArgs{N: 99, Blob: []byte("frame body bytes")}
	var buf bytes.Buffer
	var mu sync.Mutex
	if _, err := writeFrame(&buf, &mu, 7, msgCall, procEcho, body); err != nil {
		t.Fatal(err)
	}
	if want := HeaderBytes + int(body.WireSize()); buf.Len() != want {
		t.Fatalf("frame length %d, want HeaderBytes+body = %d", buf.Len(), want)
	}
	xid, mtype, word, got, rec, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer PutBuf(rec)
	if xid != 7 || mtype != msgCall || word != procEcho {
		t.Fatalf("header = (%d, %d, %d), want (7, %d, %d)", xid, mtype, word, msgCall, procEcho)
	}
	var dec echoArgs
	if err := xdr.Unmarshal(got, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.N != 99 || string(dec.Blob) != "frame body bytes" {
		t.Fatalf("decoded %+v", dec)
	}
}

// TestFrameRejectsBadLength guards the record-length sanity check.
func TestFrameRejectsBadLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, _, _, _, err := readFrame(&buf); err == nil {
		t.Fatal("readFrame accepted an absurd record length")
	}
}

// TestTCPPipelinedOutOfOrder issues many concurrent calls down one
// connection with reply order inverted by a sleeping handler: every call
// must still receive its own reply (xid demultiplexing).
func TestTCPPipelinedOutOfOrder(t *testing.T) {
	const calls = 8
	handler := func(ctx *Ctx, proc uint32, req any) (xdr.Marshaler, Status) {
		a := req.(*echoArgs)
		// Later requests reply sooner: completion order is reversed.
		time.Sleep(time.Duration(calls-a.N) * 3 * time.Millisecond)
		return &echoArgs{N: a.N * 10, Blob: a.Blob}, StatusOK
	}
	srv, err := ListenTCP("127.0.0.1:0", echoRegistry(), handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			args := echoArgs{N: uint64(i), Blob: []byte(fmt.Sprintf("call-%d", i))}
			var rep echoArgs
			if err := conn.Call(&Ctx{}, procEcho, &args, &rep); err != nil {
				errs[i] = err
				return
			}
			if rep.N != uint64(i)*10 || string(rep.Blob) != fmt.Sprintf("call-%d", i) {
				errs[i] = fmt.Errorf("call %d got reply %d/%q", i, rep.N, rep.Blob)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPPeerDisconnectMidCall kills the server side of the socket while a
// call is outstanding: the call must fail with an error, not hang.
func TestTCPPeerDisconnectMidCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the call, then hang up without replying.
		_, _, _, _, rec, err := readFrame(conn)
		if err == nil {
			PutBuf(rec)
		}
		conn.Close()
	}()
	c, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		var rep echoArgs
		done <- c.Call(&Ctx{}, procEcho, &echoArgs{N: 1}, &rep)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded despite peer disconnect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call hung after peer disconnect")
	}
	if c.Dead() == nil {
		t.Fatal("connection not marked dead after disconnect")
	}
}

// TestTCPPoolReconnect breaks every pooled connection and checks that the
// next calls transparently redial.
func TestTCPPoolReconnect(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoRegistry(), echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewTCPPool(srv.Addr(), 2)
	defer pool.Close()

	call := func(n uint64) error {
		var rep echoArgs
		if err := pool.Call(&Ctx{}, procEcho, &echoArgs{N: n}, &rep); err != nil {
			return err
		}
		if rep.N != n+1 {
			return fmt.Errorf("echo(%d) = %d", n, rep.N)
		}
		return nil
	}
	for i := 0; i < 4; i++ {
		if err := call(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Sever every live connection behind the pool's back.
	pool.mu.Lock()
	for _, c := range pool.conns {
		if c != nil {
			c.conn.Close()
		}
	}
	pool.mu.Unlock()
	// Calls keep working: dead conns are detected and redialed.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 4; i++ {
		err := call(uint64(100 + i))
		for err != nil && time.Now().Before(deadline) {
			err = call(uint64(100 + i))
		}
		if err != nil {
			t.Fatalf("call after reconnect: %v", err)
		}
	}
}

// TestTCPTransportPoolKeying checks that repeat dials from one client node
// share a pool, distinct client nodes get their own (so bulk frames from
// different clients never serialize on one socket), and names resolve
// through the transport's registry.
func TestTCPTransportPoolKeying(t *testing.T) {
	tr := NewTCPTransport(2)
	defer tr.Close()
	addr, err := tr.Serve("io0", "echo", echoRegistry(), echoHandler, 4)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("Serve returned empty address")
	}
	c1, err := tr.Dial("c0", "io0", "echo")
	if err != nil {
		t.Fatal(err)
	}
	c1again, err := tr.Dial("c0", "io0", "echo")
	if err != nil {
		t.Fatal(err)
	}
	// Dial wraps each conn in a fault gate; pool sharing is what matters.
	if c1.(*downGate).pool != c1again.(*downGate).pool {
		t.Fatal("repeat dial from one client got a distinct pool")
	}
	c2, err := tr.Dial("c1", "io0", "echo")
	if err != nil {
		t.Fatal(err)
	}
	if c1.(*downGate).pool == c2.(*downGate).pool {
		t.Fatal("distinct client nodes share one connection pool")
	}
	if _, err := tr.Dial("c0", "nowhere", "echo"); err == nil {
		t.Fatal("Dial resolved an unregistered endpoint")
	}
	var rep echoArgs
	if err := c1.Call(&Ctx{}, procEcho, &echoArgs{N: 5}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 6 {
		t.Fatalf("echo = %d", rep.N)
	}
}

// TestCtxRetainDisablesPooling pins the replay-cache contract: once a
// server marks a call's reply as retained, backends must see a
// non-serialized context and allocate fresh buffers.
func TestCtxRetainDisablesPooling(t *testing.T) {
	ctx := &Ctx{serialized: true}
	if !ctx.Serialized() {
		t.Fatal("ctx not serialized")
	}
	ctx.Retain()
	if ctx.Serialized() {
		t.Fatal("Retain left the ctx serialized")
	}
}

// TestBufPoolReuse checks that a released buffer's storage is handed back
// out for a same-class request.  sync.Pool gives no hard guarantee, so the
// test accepts any reuse within a few attempts.
func TestBufPoolReuse(t *testing.T) {
	reused := false
	for attempt := 0; attempt < 8 && !reused; attempt++ {
		b1 := GetBuf(3000)
		p1 := &b1[0]
		PutBuf(b1)
		b2 := GetBuf(4000) // same 4 KiB class
		reused = &b2[0] == p1
		PutBuf(b2)
	}
	if !reused {
		t.Fatal("pooled buffer never reused")
	}
	if got := GetBuf(100); cap(got) != 1<<minBufBits {
		t.Fatalf("small buffer capacity %d, want %d", cap(got), 1<<minBufBits)
	}
	if got := len(GetBuf(5000)); got != 5000 {
		t.Fatalf("GetBuf length %d, want 5000", got)
	}
	// Oversized buffers bypass the pool without panicking.
	huge := GetBuf((1 << maxBufBits) + 1)
	PutBuf(huge)
}
