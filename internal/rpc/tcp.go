package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"dpnfs/internal/xdr"
)

// Wire format (all words big-endian), shared by calls and replies:
//
//	uint32  record length (bytes after this word)
//	uint32  xid
//	uint32  message type (0 = call, 1 = reply)
//	uint32  proc (call) or status (reply)
//	opaque  auth[20] (length word + 20 bytes, a stand-in credential)
//	bytes   XDR-encoded body
//
// The fixed portion totals HeaderBytes (40), so simulated NIC charges match
// what the TCP transport actually writes.

const (
	msgCall  = 0
	msgReply = 1
)

var errConnClosed = errors.New("rpc: connection closed")

func writeFrame(w io.Writer, mu *sync.Mutex, xid, mtype, word uint32, body []byte) error {
	e := xdr.NewEncoder()
	e.Uint32(uint32(HeaderBytes - 4 + len(body)))
	e.Uint32(xid)
	e.Uint32(mtype)
	e.Uint32(word)
	e.Opaque(make([]byte, 20)) // auth flavor placeholder
	e.FixedOpaque(body)
	mu.Lock()
	defer mu.Unlock()
	_, err := w.Write(e.Bytes())
	return err
}

func readFrame(r io.Reader) (xid, mtype, word uint32, body []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < HeaderBytes-4 || n > HeaderBytes+xdr.MaxOpaque {
		err = fmt.Errorf("rpc: bad record length %d", n)
		return
	}
	rec := make([]byte, n)
	if _, err = io.ReadFull(r, rec); err != nil {
		return
	}
	d := xdr.NewDecoder(rec)
	if xid, err = d.Uint32(); err != nil {
		return
	}
	if mtype, err = d.Uint32(); err != nil {
		return
	}
	if word, err = d.Uint32(); err != nil {
		return
	}
	if _, err = d.Opaque(); err != nil { // auth
		return
	}
	body = rec[len(rec)-d.Remaining():]
	return
}

// TCPClient is a Conn over a real socket with concurrent calls demultiplexed
// by xid.
type TCPClient struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextXid uint32
	pending map[uint32]chan tcpReply
	dead    error
}

type tcpReply struct {
	status Status
	body   []byte
}

// DialTCP connects to a TCP RPC server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{conn: conn, pending: make(map[uint32]chan tcpReply)}
	go c.readLoop()
	return c, nil
}

func (c *TCPClient) readLoop() {
	for {
		xid, mtype, word, body, err := readFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		if mtype != msgReply {
			c.fail(fmt.Errorf("rpc: unexpected message type %d from server", mtype))
			return
		}
		c.mu.Lock()
		ch := c.pending[xid]
		delete(c.pending, xid)
		c.mu.Unlock()
		if ch != nil {
			ch <- tcpReply{status: Status(word), body: body}
		}
	}
}

func (c *TCPClient) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = err
	}
	for xid, ch := range c.pending {
		close(ch)
		delete(c.pending, xid)
	}
}

// Close shuts the connection down; outstanding calls fail.
func (c *TCPClient) Close() error {
	c.fail(errConnClosed)
	return c.conn.Close()
}

// Call implements Conn over TCP.  ctx may carry a nil process.
func (c *TCPClient) Call(_ *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	body := xdr.Marshal(args)
	ch := make(chan tcpReply, 1)
	c.mu.Lock()
	if c.dead != nil {
		c.mu.Unlock()
		return c.dead
	}
	c.nextXid++
	xid := c.nextXid
	c.pending[xid] = ch
	c.mu.Unlock()

	if err := writeFrame(c.conn, &c.writeMu, xid, msgCall, proc, body); err != nil {
		c.mu.Lock()
		delete(c.pending, xid)
		c.mu.Unlock()
		return err
	}
	r, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.dead
		c.mu.Unlock()
		return err
	}
	if r.status != StatusOK {
		return r.status
	}
	if rep == nil {
		return nil
	}
	return xdr.Unmarshal(r.body, rep)
}

// byteHandler processes one call at the wire level.
type byteHandler func(ctx *Ctx, proc uint32, body []byte) ([]byte, Status)

// adaptHandler turns a typed Handler plus a Registry into a wire-level
// handler: decode the call body, dispatch, encode the reply.
func adaptHandler(reg *Registry, h Handler) byteHandler {
	return func(ctx *Ctx, proc uint32, body []byte) ([]byte, Status) {
		req := reg.New(proc)
		if req == nil {
			return nil, StatusProcUnavail
		}
		if err := xdr.Unmarshal(body, req); err != nil {
			return nil, StatusGarbageArgs
		}
		resp, status := h(ctx, proc, req)
		if status != StatusOK || resp == nil {
			return nil, status
		}
		return xdr.Marshal(resp), StatusOK
	}
}

// TCPServer serves a Handler on a real listener.
type TCPServer struct {
	ln      net.Listener
	handler byteHandler
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// ListenTCP starts serving handler on addr (e.g. "127.0.0.1:0"), decoding
// requests through reg; Addr reports the bound address.
func ListenTCP(addr string, reg *Registry, handler Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, handler: adaptHandler(reg, handler), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		xid, mtype, proc, body, err := readFrame(conn)
		if err != nil {
			return
		}
		if mtype != msgCall {
			return
		}
		handlers.Add(1)
		go func(xid, proc uint32, body []byte) {
			defer handlers.Done()
			hctx := &Ctx{}
			rep, status := s.handler(hctx, proc, body)
			_ = writeFrame(conn, &writeMu, xid, msgReply, uint32(status), rep)
			hctx.runDeferred()
		}(xid, proc, body)
	}
}

// Close stops the listener, closes active connections, and waits for
// handlers to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
