package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dpnfs/internal/xdr"
)

// Wire format (all words big-endian), shared by calls and replies:
//
//	uint32  record length (bytes after this word)
//	uint32  xid
//	uint32  message type (0 = call, 1 = reply)
//	uint32  proc (call) or status (reply)
//	opaque  auth[20] (length word + 20 bytes, a stand-in credential)
//	bytes   XDR-encoded body
//
// The fixed portion totals HeaderBytes (40), so simulated NIC charges match
// what the TCP transport actually writes.
//
// Frames are encoded into and decoded from pooled buffers (bufpool.go): a
// steady-state connection allocates nothing per call.  Bodies decode in
// borrow mode (xdr.Decoder.EnableBorrow), so bulk payload fields alias the
// pooled record instead of copying:
//
//   - Requests: the connection loop keeps the frame alive until the handler
//     returns, so borrows need no reference count — handlers must consume
//     payload bytes before returning (the same read-only contract the
//     reference-passing simulated transport imposes).
//   - Replies: the frame is wrapped in a RefBuf; each borrowed payload
//     retains it and releases through payload.Payload.Release, so the frame
//     returns to the pool when the last consumer is done.

const (
	msgCall  = 0
	msgReply = 1
)

var errConnClosed = errors.New("rpc: connection closed")

// SendError wraps a transport failure that occurred before the request
// reached the wire.  The server never saw the call, so it is safe to retry
// on a fresh connection regardless of idempotence; failures after the
// request was written (lost replies) are NOT wrapped — the server may have
// executed the call.
type SendError struct{ Err error }

func (e *SendError) Error() string { return "rpc: send failed: " + e.Err.Error() }

// Unwrap exposes the underlying transport error.
func (e *SendError) Unwrap() error { return e.Err }

// authPlaceholder is the fixed 20-byte stand-in credential.
var authPlaceholder [20]byte

// appendFrame encodes a full frame into a pooled buffer.  The caller owns
// the returned buffer and must PutBuf it after the socket write.  The
// buffer is sized up front from the body's WireSize so bulk frames stay in
// their pool class instead of growing out of it.
func appendFrame(xid, mtype, word uint32, body xdr.Marshaler) []byte {
	need := HeaderBytes + 16
	if body != nil {
		if s, ok := body.(interface{ WireSize() int64 }); ok {
			need = HeaderBytes + int(s.WireSize()) + 8
		} else {
			need = 512
		}
	}
	e := xdr.NewEncoderBuf(GetBuf(need))
	e.Uint32(0) // record length, patched below
	e.Uint32(xid)
	e.Uint32(mtype)
	e.Uint32(word)
	e.Opaque(authPlaceholder[:])
	if body != nil {
		e.Marshal(body)
	}
	b := e.Bytes()
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	return b
}

// writeFrame serializes one frame onto w under mu (frames from concurrent
// calls interleave whole, never byte-wise), returning the frame length.
func writeFrame(w io.Writer, mu *sync.Mutex, xid, mtype, word uint32, body xdr.Marshaler) (int, error) {
	b := appendFrame(xid, mtype, word, body)
	mu.Lock()
	_, err := w.Write(b)
	mu.Unlock()
	n := len(b)
	PutBuf(b)
	return n, err
}

// readFrame reads one frame into a pooled record buffer.  body aliases rec;
// the caller must keep rec alive until every borrow-decoded field in the
// body is dead, then PutBuf it (directly, or through a RefBuf).
func readFrame(r io.Reader) (xid, mtype, word uint32, body, rec []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < HeaderBytes-4 || n > HeaderBytes+xdr.MaxOpaque {
		err = fmt.Errorf("rpc: bad record length %d", n)
		return
	}
	rec = GetBuf(int(n))
	if _, err = io.ReadFull(r, rec); err != nil {
		PutBuf(rec)
		rec = nil
		return
	}
	d := xdr.NewDecoder(rec)
	if xid, err = d.Uint32(); err == nil {
		if mtype, err = d.Uint32(); err == nil {
			if word, err = d.Uint32(); err == nil {
				_, err = d.Opaque() // auth
			}
		}
	}
	if err != nil {
		PutBuf(rec)
		rec = nil
		return
	}
	body = rec[len(rec)-d.Remaining():]
	return
}

// TCPClient is a Conn over one real socket with concurrent pipelined calls
// demultiplexed by xid: many requests may be outstanding and replies
// complete out of order.
type TCPClient struct {
	conn    net.Conn
	writeMu sync.Mutex
	stats   *connStats // byte accounting only; nil records nothing

	mu      sync.Mutex
	nextXid uint32
	pending map[uint32]chan tcpReply
	dead    error
}

type tcpReply struct {
	status Status
	body   []byte
	rec    []byte // pooled backing buffer; receiver releases after decode
}

// DialTCP connects to a TCP RPC server.
func DialTCP(addr string) (*TCPClient, error) { return dialTCP(addr, nil) }

// dialTCP connects with an optional stats bundle.  stats must be installed
// before the read loop starts: the loop reads c.stats unsynchronized.
func dialTCP(addr string, stats *connStats) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{conn: conn, stats: stats, pending: make(map[uint32]chan tcpReply)}
	go c.readLoop()
	return c, nil
}

func (c *TCPClient) readLoop() {
	for {
		xid, mtype, word, body, rec, err := readFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		c.stats.addRecv(int64(len(rec)) + 4) // record body + length word
		if mtype != msgReply {
			PutBuf(rec)
			c.fail(fmt.Errorf("rpc: unexpected message type %d from server", mtype))
			return
		}
		c.mu.Lock()
		ch := c.pending[xid]
		delete(c.pending, xid)
		c.mu.Unlock()
		if ch != nil {
			ch <- tcpReply{status: Status(word), body: body, rec: rec}
		} else {
			PutBuf(rec)
		}
	}
}

func (c *TCPClient) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = err
	}
	for xid, ch := range c.pending {
		close(ch)
		delete(c.pending, xid)
	}
}

// Dead reports the connection's terminal error, or nil while usable.
func (c *TCPClient) Dead() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Close shuts the connection down; outstanding calls fail.
func (c *TCPClient) Close() error {
	c.fail(errConnClosed)
	return c.conn.Close()
}

// Call implements Conn over TCP.  ctx may carry a nil process.  Failures
// before the request hits the wire come back as *SendError (retryable);
// lost replies come back as the connection's terminal error.
func (c *TCPClient) Call(_ *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	ch := make(chan tcpReply, 1)
	c.mu.Lock()
	if c.dead != nil {
		dead := c.dead
		c.mu.Unlock()
		return &SendError{Err: dead}
	}
	c.nextXid++
	xid := c.nextXid
	c.pending[xid] = ch
	c.mu.Unlock()

	n, err := writeFrame(c.conn, &c.writeMu, xid, msgCall, proc, args)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, xid)
		c.mu.Unlock()
		return &SendError{Err: err}
	}
	c.stats.addSent(int64(n))
	r, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.dead
		c.mu.Unlock()
		return err
	}
	if r.status != StatusOK {
		PutBuf(r.rec)
		return r.status
	}
	if rep == nil {
		PutBuf(r.rec)
		return nil
	}
	// Borrow-mode decode: bulk payload fields alias the pooled record,
	// which stays alive via the RefBuf until the last consumer releases
	// its payload.  Scalar fields are decoded by value as always.
	ref := NewRefBuf(r.rec)
	d := xdr.NewDecoder(r.body)
	d.EnableBorrow(ref)
	err = d.Unmarshal(rep)
	if err == nil && d.Remaining() != 0 {
		err = fmt.Errorf("rpc: %d trailing bytes after decode of %T", d.Remaining(), rep)
	}
	countBorrowed(d.Borrowed())
	ref.Release()
	return err
}

// TCPPool is a Conn backed by a fixed set of pipelined connections to one
// server: calls round-robin across the set, broken connections are redialed
// lazily, and a call that fails at the transport level (never an RPC-level
// Status) is retried once on a fresh connection.
type TCPPool struct {
	addr  string
	stats *connStats // set by TCPTransport.Dial; nil records nothing

	mu     sync.Mutex
	conns  []*TCPClient
	next   int
	closed bool
}

// DefaultPoolConns is the per-server connection count when unspecified.
// Pipelining makes one connection sufficient for correctness; a small
// handful spreads large frames across sockets.
const DefaultPoolConns = 2

// NewTCPPool creates a pool of size lazily-dialed connections to addr.
func NewTCPPool(addr string, size int) *TCPPool {
	if size <= 0 {
		size = DefaultPoolConns
	}
	return &TCPPool{addr: addr, conns: make([]*TCPClient, size)}
}

// pick returns a live connection, redialing a dead or not-yet-dialed slot.
func (p *TCPPool) pick() (*TCPClient, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errConnClosed
	}
	i := p.next % len(p.conns)
	p.next++
	c := p.conns[i]
	if c != nil && c.Dead() == nil {
		return c, nil
	}
	if c != nil {
		c.Close()
	}
	nc, err := dialTCP(p.addr, p.stats)
	if err != nil {
		return nil, err
	}
	p.stats.connect()
	p.conns[i] = nc
	return nc, nil
}

// Call implements Conn.  Only requests that provably never reached the
// wire (*SendError) are retried, on a fresh connection — a lost reply is
// surfaced to the caller, because the server may have executed the call
// and not every operation tolerates re-execution (NFS sessions have a
// replay cache; the PVFS2 protocol does not).
func (p *TCPPool) Call(ctx *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	done := p.stats.callStart()
	start := time.Now()
	err := p.call(ctx, proc, args, rep)
	done(time.Since(start), err)
	return err
}

func (p *TCPPool) call(ctx *Ctx, proc uint32, args xdr.Marshaler, rep xdr.Unmarshaler) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			p.stats.retry()
		}
		c, err := p.pick()
		if err != nil {
			return err
		}
		err = c.Call(ctx, proc, args, rep)
		if err == nil {
			return nil
		}
		var send *SendError
		if !errors.As(err, &send) {
			return err // answered, or lost in flight: not safely retryable
		}
		lastErr = err
	}
	return lastErr
}

// Close closes every connection in the pool.
func (p *TCPPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for i, c := range p.conns {
		if c != nil {
			c.Close()
			p.conns[i] = nil
		}
	}
	return nil
}

// frameOwner is the xdr.Owner for server-side request decodes: the
// connection loop keeps the request frame alive until the handler returns,
// so borrows need no reference counting.
type frameOwner struct{}

func (frameOwner) Retain()  {}
func (frameOwner) Release() {}

// adaptHandler turns a typed Handler plus a Registry into a wire-level
// handler: decode the call body, dispatch, and hand back the typed reply
// for the connection writer to encode straight into a frame.  Bulk payload
// fields in the request alias the frame (borrow mode); handlers must
// consume them before returning, exactly as they must treat the simulated
// transport's by-reference requests as read-only.
func adaptHandler(reg *Registry, h Handler) func(ctx *Ctx, proc uint32, body []byte) (xdr.Marshaler, Status) {
	return func(ctx *Ctx, proc uint32, body []byte) (xdr.Marshaler, Status) {
		req := reg.New(proc)
		if req == nil {
			return nil, StatusProcUnavail
		}
		d := xdr.NewDecoder(body)
		d.EnableBorrow(frameOwner{})
		if err := d.Unmarshal(req); err != nil || d.Remaining() != 0 {
			return nil, StatusGarbageArgs
		}
		countBorrowed(d.Borrowed())
		resp, status := h(ctx, proc, req)
		if status != StatusOK {
			return nil, status
		}
		return resp, StatusOK
	}
}

// TCPServer serves a Handler on a real listener, one goroutine per
// connection plus one per in-flight request (requests on one connection are
// handled concurrently and reply out of order, like NFS server threads).
type TCPServer struct {
	ln      net.Listener
	handler func(ctx *Ctx, proc uint32, body []byte) (xdr.Marshaler, Status)
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// ListenTCP starts serving handler on addr (e.g. "127.0.0.1:0"), decoding
// requests through reg; Addr reports the bound address.
func ListenTCP(addr string, reg *Registry, handler Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, handler: adaptHandler(reg, handler), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		xid, mtype, proc, body, rec, err := readFrame(conn)
		if err != nil {
			return
		}
		if mtype != msgCall {
			PutBuf(rec)
			return
		}
		handlers.Add(1)
		go func(xid, proc uint32, body, rec []byte) {
			defer handlers.Done()
			hctx := &Ctx{serialized: true}
			rep, status := s.handler(hctx, proc, body)
			PutBuf(rec)
			_, _ = writeFrame(conn, &writeMu, xid, msgReply, uint32(status), rep)
			hctx.runDeferred()
		}(xid, proc, body, rec)
	}
}

// Close stops the listener, closes active connections, and waits for
// handlers to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
