package rpc

import (
	"bytes"
	"testing"

	"dpnfs/internal/payload"
	"dpnfs/internal/xdr"
)

// FuzzBorrowLifetime exercises the zero-copy decode lifetime rules end to
// end: a payload decoded in borrow mode aliases the pooled frame, the frame
// must stay readable exactly until the payload's Release, and after the
// frame returns to the pool the borrowed window must be poisoned — proving
// the decode never copied, and that any use-after-release reads garbage the
// poison detector would catch rather than silently stale data.
func FuzzBorrowLifetime(f *testing.F) {
	f.Add([]byte("hello, borrow"), uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xA5}, 64), uint8(1)) // content == poison byte
	f.Add(make([]byte, 4096), uint8(200))

	f.Fuzz(func(t *testing.T, data []byte, extra uint8) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		prev := SetPoisonOnPut(true)
		defer SetPoisonOnPut(prev)

		// Encode the payload plus a trailing word into a pooled frame, the
		// way the TCP transport lays out a reply body.
		enc := xdr.NewEncoder()
		payload.Real(data).MarshalXDR(enc)
		enc.Uint32(uint32(extra))
		frame := GetBuf(len(enc.Bytes()))
		copy(frame, enc.Bytes())

		// Decode in borrow mode under a ref-counted frame, as TCPClient.Call
		// does: the creator's reference is dropped once decoding finishes,
		// and only the payload's retain keeps the frame alive.
		ref := NewRefBuf(frame)
		d := xdr.NewDecoder(frame)
		d.EnableBorrow(ref)
		var p payload.Payload
		if err := p.UnmarshalXDR(d); err != nil {
			t.Fatalf("decode payload: %v", err)
		}
		if got, err := d.Uint32(); err != nil || got != uint32(extra) {
			t.Fatalf("trailing word: got %d, %v; want %d", got, err, extra)
		}
		if len(data) > 0 && d.Borrowed() == 0 {
			t.Fatal("non-empty opaque did not take the borrow path")
		}
		ref.Release()

		// The payload retained the frame across the creator's release: the
		// borrowed bytes must still be exactly the encoded content.
		if !bytes.Equal(p.Bytes, data) {
			t.Fatalf("borrowed bytes corrupted while retained: %q != %q", p.Bytes, data)
		}
		alias := p.Bytes

		// The final release sends the frame back to the pool, which poisons
		// it.  The old alias must now read all-poison: the decoded bytes
		// aliased the frame (zero-copy) and are unusable past Release.
		p.Release()
		for i, b := range alias {
			if b != 0xA5 {
				t.Fatalf("byte %d of released borrow not poisoned: %#x", i, b)
			}
		}
	})
}
