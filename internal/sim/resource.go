package sim

import "fmt"

// FIFOServer models a single work-conserving server that processes requests
// in arrival order at a fixed rate: a network-interface direction, a disk
// head, or any other pipeline stage whose service time is proportional to
// request size.  The model is O(1): it tracks only the time the server next
// becomes free.
type FIFOServer struct {
	name     string
	freeAt   Time
	busyTime Time // accumulated service time, for utilization stats
}

// NewFIFOServer returns a named FIFO service resource.
func NewFIFOServer(name string) *FIFOServer {
	return &FIFOServer{name: name}
}

// Use blocks p until the server has queued and served a request of the given
// service duration, and returns the completion time.
func (s *FIFOServer) Use(p *Proc, service Duration) Time {
	if service < 0 {
		panic(fmt.Sprintf("sim: %s: negative service time %v", s.name, service))
	}
	start := p.k.now
	if s.freeAt > start {
		start = s.freeAt
	}
	done := start + Time(service)
	s.freeAt = done
	s.busyTime += Time(service)
	p.sleepUntil(done)
	return done
}

// Reserve books service time without blocking the caller and returns the
// completion time.  It is used for cut-through modelling where a later stage
// should begin queueing at the completion time of this stage without the
// caller synchronously waiting here.
func (s *FIFOServer) Reserve(at Time, service Duration) Time {
	start := at
	if s.freeAt > start {
		start = s.freeAt
	}
	done := start + Time(service)
	s.freeAt = done
	s.busyTime += Time(service)
	return done
}

// BusyTime reports the cumulative service time booked on this server.
func (s *FIFOServer) BusyTime() Duration { return Duration(s.busyTime) }

// FreeAt reports when the server next becomes idle.
func (s *FIFOServer) FreeAt() Time { return s.freeAt }

// KServer models k identical parallel servers with a shared FIFO queue —
// e.g. a multi-core CPU or a pool of service threads.  Service times may
// vary per request.
type KServer struct {
	name   string
	freeAt []Time
	busy   Time
}

// NewKServer returns a k-way parallel service resource.
func NewKServer(name string, k int) *KServer {
	if k <= 0 {
		panic(fmt.Sprintf("sim: %s: k must be positive, got %d", name, k))
	}
	return &KServer{name: name, freeAt: make([]Time, k)}
}

// Use blocks p until one of the k servers has completed a request of the
// given service duration, and returns the completion time.
func (s *KServer) Use(p *Proc, service Duration) Time {
	if service < 0 {
		panic(fmt.Sprintf("sim: %s: negative service time %v", s.name, service))
	}
	// Pick the server that frees earliest.
	best := 0
	for i, t := range s.freeAt {
		if t < s.freeAt[best] {
			best = i
		}
	}
	start := p.k.now
	if s.freeAt[best] > start {
		start = s.freeAt[best]
	}
	done := start + Time(service)
	s.freeAt[best] = done
	s.busy += Time(service)
	p.sleepUntil(done)
	return done
}

// BusyTime reports cumulative service time across all k servers.
func (s *KServer) BusyTime() Duration { return Duration(s.busy) }

// Semaphore is a counting semaphore with FIFO wakeup, used for bounded
// resources that are held across other blocking operations (e.g. the PVFS2
// kernel⇄daemon transfer-buffer pool).
type Semaphore struct {
	name    string
	reason  string // park reason, precomputed
	avail   int
	cap     int
	// waiters is a head-indexed FIFO: popping advances head instead of
	// re-slicing, so append keeps reusing the same backing array.
	waiters []semWaiter
	whead   int
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with the given capacity, initially fully
// available.
func NewSemaphore(name string, capacity int) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: semaphore %s: capacity must be positive, got %d", name, capacity))
	}
	return &Semaphore{name: name, reason: "semaphore " + name, avail: capacity, cap: capacity}
}

// Acquire blocks p until n units are available and takes them.  Waiters are
// served strictly in arrival order: a large request at the head of the queue
// blocks smaller requests behind it (no barging), matching a fair buffer
// pool.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 || n > s.cap {
		panic(fmt.Sprintf("sim: semaphore %s: invalid acquire %d (cap %d)", s.name, n, s.cap))
	}
	if s.whead == len(s.waiters) && s.avail >= n {
		s.avail -= n
		return
	}
	s.waiters = append(s.waiters, semWaiter{p: p, n: n})
	p.park(s.reason)
}

// Release returns n units and wakes waiters whose requests now fit.
func (s *Semaphore) Release(n int) {
	s.avail += n
	if s.avail > s.cap {
		panic(fmt.Sprintf("sim: semaphore %s: release overflow (%d > cap %d)", s.name, s.avail, s.cap))
	}
	for s.whead < len(s.waiters) && s.avail >= s.waiters[s.whead].n {
		w := s.waiters[s.whead]
		s.waiters[s.whead] = semWaiter{}
		s.whead++
		if s.whead == len(s.waiters) {
			s.waiters = s.waiters[:0]
			s.whead = 0
		}
		s.avail -= w.n
		w.p.k.ready(w.p)
	}
}

// Available reports the currently free units (for tests and stats).
func (s *Semaphore) Available() int { return s.avail }

// Chan is an unbounded FIFO message channel between simulated processes.
// Send never blocks; Recv blocks until a message is available.
type Chan struct {
	name   string
	reason string // park reason, precomputed
	// queue and waiters are head-indexed FIFOs: popping advances the head
	// instead of re-slicing, so append keeps reusing the backing array.
	queue   []any
	qhead   int
	waiters []*Proc
	whead   int
}

// NewChan returns a named simulated channel.
func NewChan(name string) *Chan {
	return &Chan{name: name, reason: "chan " + name}
}

// Send enqueues v and wakes one receiver if any is waiting.  The receiver
// resumes at the current virtual time.
func (c *Chan) Send(v any) {
	c.queue = append(c.queue, v)
	if c.whead < len(c.waiters) {
		p := c.waiters[c.whead]
		c.waiters[c.whead] = nil
		c.whead++
		if c.whead == len(c.waiters) {
			c.waiters = c.waiters[:0]
			c.whead = 0
		}
		p.k.ready(p)
	}
}

// Recv blocks p until a message is available and returns it.
func (c *Chan) Recv(p *Proc) any {
	for c.qhead == len(c.queue) {
		c.waiters = append(c.waiters, p)
		p.park(c.reason)
	}
	return c.pop()
}

func (c *Chan) pop() any {
	v := c.queue[c.qhead]
	c.queue[c.qhead] = nil
	c.qhead++
	if c.qhead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qhead = 0
	}
	return v
}

// TryRecv returns the next message without blocking, or (nil, false).
func (c *Chan) TryRecv() (any, bool) {
	if c.qhead == len(c.queue) {
		return nil, false
	}
	return c.pop(), true
}

// Len reports the number of queued messages.
func (c *Chan) Len() int { return len(c.queue) - c.qhead }

// WaitGroup tracks completion of a set of simulated processes.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add increments the outstanding-work counter.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the counter and wakes waiters when it reaches zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			p.k.ready(p)
		}
		w.waiters = nil
	}
}

// Wait blocks p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park("waitgroup")
}
