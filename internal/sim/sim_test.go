package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*time.Millisecond) {
		t.Fatalf("woke at %d, want %d", woke, 5*time.Millisecond)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 0 {
		t.Fatalf("negative sleep advanced time to %d", woke)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Millisecond)
					order = append(order, name)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("run %d: length %d != %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d: order diverged at %d: %v vs %v", i, j, got, first)
			}
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Go("first", func(p *Proc) { order = append(order, "first") })
	k.Go("second", func(p *Proc) { order = append(order, "second") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("same-time events not in spawn order: %v", order)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel(1)
	var childRan bool
	k.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		k.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child spawned from process did not run")
	}
}

func TestFIFOServerQueueing(t *testing.T) {
	k := NewKernel(1)
	srv := NewFIFOServer("disk")
	var done [3]Time
	for i := 0; i < 3; i++ {
		i := i
		k.Go("user", func(p *Proc) {
			done[i] = srv.Use(p, 10*time.Millisecond)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := Time((i + 1) * int(10*time.Millisecond))
		if done[i] != want {
			t.Errorf("request %d completed at %d, want %d", i, done[i], want)
		}
	}
	if srv.BusyTime() != 30*time.Millisecond {
		t.Errorf("busy time %v, want 30ms", srv.BusyTime())
	}
}

func TestFIFOServerIdleGap(t *testing.T) {
	k := NewKernel(1)
	srv := NewFIFOServer("nic")
	var second Time
	k.Go("a", func(p *Proc) { srv.Use(p, time.Millisecond) })
	k.Go("b", func(p *Proc) {
		p.Sleep(10 * time.Millisecond) // arrive after the server went idle
		second = srv.Use(p, time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second != Time(11*time.Millisecond) {
		t.Fatalf("idle server should serve immediately: done at %d, want %d", second, 11*time.Millisecond)
	}
}

func TestKServerParallelism(t *testing.T) {
	k := NewKernel(1)
	cpu := NewKServer("cpu", 2)
	var done [4]Time
	for i := 0; i < 4; i++ {
		i := i
		k.Go("job", func(p *Proc) {
			done[i] = cpu.Use(p, 10*time.Millisecond)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two servers: jobs 0,1 finish at 10ms; jobs 2,3 at 20ms.
	wants := []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)}
	for i, w := range wants {
		if done[i] != w {
			t.Errorf("job %d done at %d, want %d", i, done[i], w)
		}
	}
}

func TestSemaphoreFIFONoBarging(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore("buffers", 4)
	var order []string
	k.Go("big", func(p *Proc) {
		sem.Acquire(p, 4)
		p.Sleep(10 * time.Millisecond)
		sem.Release(4)
		order = append(order, "big")
	})
	k.Go("blockedBig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		sem.Acquire(p, 3) // must wait for "big" to release
		order = append(order, "blockedBig")
		sem.Release(3)
	})
	k.Go("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		sem.Acquire(p, 1) // arrives later; must NOT barge past blockedBig
		order = append(order, "small")
		sem.Release(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"big", "blockedBig", "small"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if sem.Available() != 4 {
		t.Fatalf("semaphore leaked: %d available, want 4", sem.Available())
	}
}

func TestChanSendRecv(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan("msgs")
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(p).(int))
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			ch.Send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got[i] != i {
			t.Fatalf("recv order %v", got)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan("never")
	k.Go("stuck", func(p *Proc) {
		ch.Recv(p)
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Parked) != 1 {
		t.Fatalf("want 1 parked process, got %d", len(de.Parked))
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	var wg WaitGroup
	var finished Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		k.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		finished = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != Time(3*time.Millisecond) {
		t.Fatalf("waiter finished at %d, want %d", finished, 3*time.Millisecond)
	}
}

// Property: for any set of sleep durations, each process observes
// monotonically non-decreasing time and wakes exactly at the cumulative sum
// of its sleeps.
func TestPropertySleepAccumulates(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) > 64 {
			durs = durs[:64]
		}
		k := NewKernel(7)
		ok := true
		k.Go("p", func(p *Proc) {
			var sum Time
			for _, d := range durs {
				dd := Duration(d) * time.Microsecond
				p.Sleep(dd)
				sum += Time(dd)
				if p.Now() != sum {
					ok = false
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO server conserves work — total completion time of n
// back-to-back requests equals the sum of service times.
func TestPropertyFIFOServerWorkConserving(t *testing.T) {
	f := func(svc []uint16) bool {
		if len(svc) == 0 {
			return true
		}
		if len(svc) > 64 {
			svc = svc[:64]
		}
		k := NewKernel(7)
		srv := NewFIFOServer("s")
		var last Time
		var sum Time
		for _, s := range svc {
			d := Duration(s) * time.Microsecond
			sum += Time(d)
			k.Go("u", func(p *Proc) {
				last = srv.Use(p, d)
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return last == sum && Time(srv.BusyTime()) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcesses(t *testing.T) {
	k := NewKernel(1)
	const n = 2000
	count := 0
	for i := 0; i < n; i++ {
		k.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(i%17) * time.Microsecond)
			count++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("ran %d of %d processes", count, n)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k := NewKernel(1)
	k.now = 100
	p := &Proc{k: k, name: "x", wake: make(chan struct{}, 1)}
	k.schedule(p, 50)
}
