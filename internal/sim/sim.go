// Package sim implements a deterministic discrete-event simulation kernel
// with cooperatively scheduled goroutine processes and virtual time.
//
// The kernel runs exactly one process goroutine at a time.  A process blocks
// by sleeping for a virtual duration, by waiting on a queue-backed primitive
// (Semaphore, Chan), or by using a service resource (FIFOServer, KServer,
// see resource.go).  Blocking hands control back to the kernel, which pops
// the next event from a time-ordered queue and resumes the corresponding
// process.  Ties are broken by event sequence number, so simulations are
// fully deterministic.
//
// All benchmark clusters in this repository run on virtual time: a run that
// simulates minutes of I/O completes in milliseconds of wall time, and the
// throughput figures derived from it are exactly reproducible.
//
// Paper mapping: this kernel stands in for the paper's physical testbed
// (§6.1) — it is what lets every figure of the evaluation (§6.2–§6.4) be
// regenerated deterministically instead of re-run on 2007 hardware.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time, in nanoseconds.  It is deliberately
// the same representation as time.Duration so the stdlib constants
// (time.Millisecond, ...) can be used directly.
type Duration = time.Duration

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is a scheduled resumption of a process.
type event struct {
	at    Time
	seq   uint64
	p     *Proc
	index int // heap index
	dead  bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulation kernel.  Create one with NewKernel,
// start processes with Go, and drive the simulation with Run.
type Kernel struct {
	now    Time
	seq    uint64
	events eventQueue
	yield  chan struct{}
	rng    *rand.Rand

	running int              // live (started, unfinished) processes
	parked  map[*Proc]string // processes blocked on a primitive, with reason
	nextID  int

	// free recycles fired events.  Nothing retains an *event past its
	// dispatch (schedule's return value is never stored), and the kernel is
	// cooperatively single-threaded, so a plain freelist is safe.  Its high
	// water mark is the maximum number of simultaneously scheduled events.
	free []*event

	// Stats
	eventsFired uint64
}

// NewKernel returns a kernel whose random source is seeded with seed, so
// that any stochastic workload driven from Kernel.Rand is reproducible.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.  It must only be
// used from within simulation processes (or before Run), never concurrently.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// EventsFired reports how many events the kernel has dispatched.
func (k *Kernel) EventsFired() uint64 { return k.eventsFired }

// Proc is a simulated process: a goroutine whose execution is interleaved
// with all other processes under the kernel's virtual clock.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	wake   chan struct{}
	done   bool
	daemon bool
}

// MarkDaemon marks the process as a daemon: a server loop that legitimately
// blocks forever waiting for work.  Daemons parked on a primitive when the
// event queue drains are not reported as deadlocked.
func (p *Proc) MarkDaemon() { p.daemon = true }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Go starts a new simulated process running fn.  It may be called before
// Run, or from inside another process.  The new process begins executing at
// the current virtual time, after already-scheduled events at that time.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{k: k, id: k.nextID, name: name, wake: make(chan struct{}, 1)}
	k.running++
	go func() {
		<-p.wake
		// The deferred yield also covers runtime.Goexit (e.g. t.Fatal
		// inside a simulated process): the kernel must regain control even
		// when fn never returns normally.
		defer func() {
			p.done = true
			k.running--
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	k.schedule(p, k.now)
	return p
}

// schedule enqueues a resumption of p at time at.
func (k *Kernel) schedule(p *Proc, at Time) *event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %d < %d", at, k.now))
	}
	k.seq++
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free = k.free[:n-1]
		*ev = event{at: at, seq: k.seq, p: p}
	} else {
		ev = &event{at: at, seq: k.seq, p: p}
	}
	heap.Push(&k.events, ev)
	return ev
}

// recycle returns a fired event to the freelist.
func (k *Kernel) recycle(ev *event) {
	ev.p = nil
	k.free = append(k.free, ev)
}

// ready makes a parked process runnable at the current virtual time.
func (k *Kernel) ready(p *Proc) {
	delete(k.parked, p)
	k.schedule(p, k.now)
}

// park blocks the calling process until another process (or the kernel event
// loop) resumes it.  reason is reported by deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.k.parked[p] = reason
	p.k.yield <- struct{}{}
	<-p.wake
}

// sleepUntil blocks the calling process until virtual time at.
func (p *Proc) sleepUntil(at Time) {
	p.k.schedule(p, at)
	p.k.yield <- struct{}{}
	<-p.wake
}

// Sleep blocks the calling process for virtual duration d.  Negative
// durations sleep zero time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.sleepUntil(p.k.now + Time(d))
}

// Yield reschedules the calling process at the current time, letting any
// other runnable process at this instant run first.
func (p *Proc) Yield() { p.sleepUntil(p.k.now) }

// SleepUntilTime blocks the calling process until the given virtual time.
// It is a no-op if the time is not in the future.
func (p *Proc) SleepUntilTime(at Time) {
	if at <= p.k.now {
		return
	}
	p.sleepUntil(at)
}

// DeadlockError is returned by Run when no events remain but processes are
// still parked on synchronization primitives.
type DeadlockError struct {
	Parked map[string]string // process name -> blocking reason
	At     Time
}

func (e *DeadlockError) Error() string {
	names := make([]string, 0, len(e.Parked))
	for n := range e.Parked {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("sim: deadlock at t=%v: %d parked process(es):", time.Duration(e.At), len(names))
	for _, n := range names {
		s += fmt.Sprintf(" [%s: %s]", n, e.Parked[n])
	}
	return s
}

// Run drives the simulation until no scheduled events remain.  It returns a
// *DeadlockError if processes are still blocked when the event queue drains,
// and nil otherwise.  Run must be called from the goroutine that created the
// kernel, and only once at a time.
func (k *Kernel) Run() error {
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.dead {
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		k.eventsFired++
		p := ev.p
		k.recycle(ev)
		delete(k.parked, p)
		p.wake <- struct{}{}
		<-k.yield
	}
	stuck := make(map[string]string)
	for p, why := range k.parked {
		if !p.daemon {
			stuck[fmt.Sprintf("%s#%d", p.name, p.id)] = why
		}
	}
	if len(stuck) > 0 {
		return &DeadlockError{Parked: stuck, At: k.now}
	}
	return nil
}
