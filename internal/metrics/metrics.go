// Package metrics is the unified observability registry shared by every
// layer of the reproduction: a dependency-free set of counters, gauges, and
// histograms with atomic hot paths, safe under both the cooperatively
// scheduled simulation kernel and real-goroutine concurrency over TCP.
//
// Call sites resolve their instruments once at construction time (a mutex
// and a map lookup) and then record with plain atomics — no per-observation
// locking, no allocation.  A Registry renders itself two ways:
//
//   - Prometheus text exposition format (expose.go, served by
//     cmd/dpnfs-serve's /metrics endpoint), and
//   - a structured Snapshot embedded in bench JSON reports
//     (dpnfs-bench -report=out.json), so figure runs produce
//     machine-readable perf trajectories.
//
// Every cluster owns one Registry (cluster.Config.Metrics); passing nil
// anywhere yields instruments bound to a discard registry, so library code
// records unconditionally.  The metric inventory and its mapping onto the
// paper's figures is documented in docs/METRICS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is an instrument type.
type Kind int

// Instrument kinds, rendered as Prometheus TYPE lines.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DurationBuckets are the default latency histogram bounds in seconds,
// matching the RPC round-trip spread the paper's testbed exhibits (100 µs
// kernel NFS ops to hundreds of ms under load).
var DurationBuckets = []float64{
	100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 300e-3, 1, 3,
}

// SizeBuckets are the default transfer-size histogram bounds in bytes:
// the paper's small (8 KB) and large (2 MB) block sizes fall on bucket
// edges so Figures 6d/6e vs 6a/6b populate distinct buckets.
var SizeBuckets = []float64{
	4 << 10, 8 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20, 8 << 20,
}

// Registry holds metric families keyed by name.  All methods are safe for
// concurrent use; a nil *Registry is valid and discards everything.
//
// A Registry may be a labeled view of another (WithLabel): views share one
// family table — rendering any of them renders everything — but every
// instrument resolved through a view carries the view's base labels.  The
// cluster layer uses this to stamp each cluster's instruments with its
// architecture, so a registry shared across a benchmark sweep stays
// attributable per architecture.
type Registry struct {
	core *registryCore
	// base labels prepended to every family schema and child resolved
	// through this view.
	baseNames  []string
	baseValues []string
}

// registryCore is the family table shared by a registry and its views.
type registryCore struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed label schema and typed children.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion-ordered keys for stable iteration
}

// series is one labeled child of a family.
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{families: make(map[string]*family)}}
}

// WithLabel returns a view of the registry whose instruments all carry
// label=value in addition to their own labels.  The view shares the
// registry's family table; different views of one registry may resolve the
// same family with different base values (e.g. one series per
// architecture).
func (r *Registry) WithLabel(label, value string) *Registry {
	r = r.orDiscard()
	return &Registry{
		core:       r.core,
		baseNames:  append(append([]string(nil), r.baseNames...), label),
		baseValues: append(append([]string(nil), r.baseValues...), value),
	}
}

// discard absorbs instruments created against a nil registry.  It is never
// rendered, so its accumulation is invisible; the families are bounded by
// the program's metric-name inventory.
var discard = NewRegistry()

func (r *Registry) orDiscard() *Registry {
	if r == nil {
		return discard
	}
	return r
}

// lookup returns the family for name, creating it on first use.  The
// family's schema is the view's base labels followed by the requested
// labels.  Re-registering an existing name with a different kind or label
// schema panics: metric schemas are wired once at startup and a mismatch
// is a programming error.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, bounds []float64) *family {
	r = r.orDiscard()
	full := append(append([]string(nil), r.baseNames...), labels...)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(full) {
			panic(fmt.Sprintf("metrics: %s re-registered with a different schema", name))
		}
		for i := range full {
			if f.labels[i] != full[i] {
				panic(fmt.Sprintf("metrics: %s re-registered with a different schema", name))
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: full,
		bounds: bounds,
		series: make(map[string]*series),
	}
	c.families[name] = f
	return f
}

// child returns the series for the label values, creating it on first use.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter is a monotonically increasing count.  The zero value is ready.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never decrease).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value (occupancy, sizes, config).
// The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets with an exact sum,
// count, and max.  Observe is lock-free: per-bucket atomic adds plus CAS
// loops for the float sum and max.
type Histogram struct {
	bounds  []float64 // upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
	max     atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.  Observations must be non-negative (they are
// latencies, byte counts, and occupancies throughout this repository).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observation (0 before the first Observe).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Mean returns the average observation (0 before the first Observe).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an upper bound for the q-th quantile (q in [0,1]) from
// the bucket counts; observations past the last bound report the largest
// observation seen.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := uint64(float64(n) * q)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	f    *family
	base []string
}

// CounterVec registers (or finds) a counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, KindCounter, labels, nil), r.orDiscard().baseValues}
}

// With returns the child counter for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(append(append([]string(nil), v.base...), values...)).c
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	f    *family
	base []string
}

// GaugeVec registers (or finds) a gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, KindGauge, labels, nil), r.orDiscard().baseValues}
}

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(append(append([]string(nil), v.base...), values...)).g
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// HistogramVec is a histogram family partitioned by labels.  Every child
// shares the family's bucket bounds.
type HistogramVec struct {
	f    *family
	base []string
}

// HistogramVec registers (or finds) a histogram family with the given
// bucket upper bounds (nil means DurationBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, KindHistogram, labels, bounds), r.orDiscard().baseValues}
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(append(append([]string(nil), v.base...), values...)).h
}

// Histogram registers (or finds) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramVec(name, help, bounds).With()
}

// sortedFamilies snapshots the family list in name order.  Views share
// their parent's table, so rendering any view renders everything.
func (r *Registry) sortedFamilies() []*family {
	c := r.orDiscard().core
	c.mu.Lock()
	fams := make([]*family, 0, len(c.families))
	for _, f := range c.families {
		fams = append(fams, f)
	}
	c.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// snapshotSeries returns the family's children in insertion order.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.series[key])
	}
	return out
}
