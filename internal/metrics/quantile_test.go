package metrics

import "testing"

// TestQuantileExactBounds pins the histogram→percentile extraction the bench
// tail figure relies on (docs/METRICS.md): known synthetic distributions
// must report exactly the expected bucket upper bounds, so figure numbers
// are reproducible arithmetic rather than eyeballed estimates.
func TestQuantileExactBounds(t *testing.T) {
	observe := func(h *Histogram, v float64, n int) {
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}

	t.Run("three-stratum distribution", func(t *testing.T) {
		// 990 fast, 9 medium, 1 extreme outlier past the last bound: the
		// exact shape of a healthy service with a retransmit tail.
		h := newHistogram([]float64{1, 2, 4, 8})
		observe(h, 0.5, 990) // bucket bound 1
		observe(h, 3, 9)     // bucket bound 4
		observe(h, 100, 1)   // overflow bucket
		if got := h.Quantile(0.50); got != 1 {
			t.Errorf("p50 = %v, want bound 1", got)
		}
		if got := h.Quantile(0.99); got != 4 {
			t.Errorf("p99 = %v, want bound 4", got)
		}
		// The p999 observation is the outlier: past the last bound the
		// histogram reports the exact maximum, not a bucket estimate.
		if got := h.Quantile(0.999); got != 100 {
			t.Errorf("p999 = %v, want the max observation 100", got)
		}
	})

	t.Run("boundary observations land in their bucket", func(t *testing.T) {
		// An observation exactly on a bound belongs to that bound's bucket
		// (upper bounds are inclusive, as in Prometheus `le`).
		h := newHistogram([]float64{1, 2})
		observe(h, 1, 4)
		observe(h, 2, 1)
		if got := h.Quantile(0.50); got != 1 {
			t.Errorf("p50 = %v, want bound 1", got)
		}
		if got := h.Quantile(0.99); got != 2 {
			t.Errorf("p99 = %v, want bound 2", got)
		}
	})

	t.Run("single observation defines every quantile", func(t *testing.T) {
		h := newHistogram([]float64{1, 2})
		observe(h, 1.5, 1)
		for _, q := range []float64{0, 0.5, 0.99, 0.999} {
			if got := h.Quantile(q); got != 2 {
				t.Errorf("Quantile(%v) = %v, want bound 2", q, got)
			}
		}
		// q=1 walks past every bucket and reports the exact maximum.
		if got := h.Quantile(1); got != 1.5 {
			t.Errorf("Quantile(1) = %v, want the max observation 1.5", got)
		}
	})

	t.Run("empty histogram reports zero", func(t *testing.T) {
		h := newHistogram([]float64{1})
		if got := h.Quantile(0.999); got != 0 {
			t.Errorf("empty p999 = %v, want 0", got)
		}
	})

	t.Run("quantiles are monotone in q", func(t *testing.T) {
		h := newHistogram([]float64{0.001, 0.01, 0.1, 1})
		observe(h, 0.0005, 500)
		observe(h, 0.005, 400)
		observe(h, 0.05, 90)
		observe(h, 0.5, 9)
		observe(h, 5, 1)
		prev := 0.0
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			got := h.Quantile(q)
			if got < prev {
				t.Fatalf("Quantile(%v) = %v < previous %v — not monotone", q, got, prev)
			}
			prev = got
		}
	})

	t.Run("exact p99 p999 walk", func(t *testing.T) {
		// 1000 observations split so p50, p99, and p999 each land in a
		// different bucket: the exact cumulative-walk arithmetic used to
		// extract the tail figure's three percentiles.
		h := newHistogram([]float64{0.005, 0.15, 0.5})
		observe(h, 0.004, 980) // healthy reads
		observe(h, 0.1, 15)    // straggler stratum
		observe(h, 0.3, 5)     // retransmit-timeout stratum
		if got := h.Quantile(0.50); got != 0.005 {
			t.Errorf("p50 = %v, want 0.005", got)
		}
		if got := h.Quantile(0.99); got != 0.15 {
			t.Errorf("p99 = %v, want 0.15", got)
		}
		if got := h.Quantile(0.999); got != 0.5 {
			t.Errorf("p999 = %v, want 0.5", got)
		}
	})
}
