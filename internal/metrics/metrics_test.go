package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter %d, want 42", got)
	}
	g := r.Gauge("occupancy", "in flight")
	g.Set(5)
	g.Add(-2)
	g.Dec()
	g.Inc()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge %d, want 3", got)
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "ops", "op")
	a := v.With("READ")
	b := v.With("READ")
	if a != b {
		t.Fatal("same label values must return the same child")
	}
	v.With("WRITE").Add(3)
	if a.Value() != 0 {
		t.Fatal("children must be independent")
	}
	// Re-registering the same family returns the same children.
	if r.CounterVec("ops_total", "ops", "op").With("READ") != a {
		t.Fatal("re-registration must find the existing family")
	}
}

// TestWithLabelViews proves labeled views share one family table while
// keeping their series distinct — the mechanism that attributes a shared
// sweep registry per architecture.
func TestWithLabelViews(t *testing.T) {
	root := NewRegistry()
	a := root.WithLabel("arch", "direct-pnfs")
	b := root.WithLabel("arch", "pvfs2")
	a.CounterVec("ops_total", "ops", "op").With("READ").Add(3)
	b.CounterVec("ops_total", "ops", "op").With("READ").Add(5)

	var sb strings.Builder
	if err := root.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ops_total{arch="direct-pnfs",op="READ"} 3`,
		`ops_total{arch="pvfs2",op="READ"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Unlabeled instruments through a view still get the base label.
	a.Counter("plain_total", "").Inc()
	snap := root.Snapshot()
	for _, m := range snap.Metrics {
		if m.Name == "plain_total" && m.Series[0].Labels["arch"] != "direct-pnfs" {
			t.Errorf("plain_total series lacks the view's base label: %+v", m.Series[0])
		}
	}
	// A nil registry still yields working views.
	var nilReg *Registry
	nilReg.WithLabel("arch", "x").Counter("discarded_view_total", "").Inc()
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	c := r.Counter("discarded_total", "never rendered")
	c.Inc() // must not crash
	h := r.Histogram("discarded_seconds", "never rendered", nil)
	h.Observe(0.5)
	if c.Value() != 1 || h.Count() != 1 {
		t.Fatal("nil-registry instruments must still record")
	}
}

func TestHistogramStatistics(t *testing.T) {
	h := newHistogram(DurationBuckets)
	for i := 0; i < 90; i++ {
		h.ObserveDuration(50 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(50 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got, want := h.Max(), 0.05; got != want {
		t.Fatalf("max %v, want %v", got, want)
	}
	if p50 := h.Quantile(0.50); p50 > 1e-3 {
		t.Fatalf("p50 %v, want ≤ 100µs bucket bound", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.03 {
		t.Fatalf("p99 %v, want the slow bucket", p99)
	}
	if m := h.Mean(); m <= 50e-6 || m >= 50e-3 {
		t.Fatalf("mean %v outside (50µs, 50ms)", m)
	}
}

func TestHistogramOverflowBucketUsesMax(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(10)
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile %v, want the max observation", got)
	}
}

// TestConcurrentRecording hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this is the registry's thread-safety
// proof, and the totals prove no update is lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("conc_total", "c", "side").With("a")
	g := r.Gauge("conc_gauge", "g")
	h := r.Histogram("conc_seconds", "h", DurationBuckets)

	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%7) * 1e-4)
			}
		}(w)
	}
	// A concurrent reader must never block or corrupt writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if c.Value() != total {
		t.Fatalf("counter lost updates: %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge lost updates: %d, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram lost observations: %d, want %d", h.Count(), total)
	}
	var want float64
	for i := 0; i < perWorker; i++ {
		want += float64(i%7) * 1e-4
	}
	want *= workers
	if diff := math.Abs(h.Sum() - want); diff > 1e-6 {
		t.Fatalf("histogram sum %v, want %v (diff %v)", h.Sum(), want, diff)
	}
}

// TestPrometheusTextGolden pins the exposition format byte for byte.
func TestPrometheusTextGolden(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("rpc_calls_total", "RPC calls issued.", "service").With("nfs-mds").Add(7)
	r.Gauge("pool_in_flight", "Calls in flight.").Set(3)
	h := r.Histogram("call_seconds", "Round-trip latency.", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP call_seconds Round-trip latency.
# TYPE call_seconds histogram
call_seconds_bucket{le="0.001"} 1
call_seconds_bucket{le="0.1"} 2
call_seconds_bucket{le="+Inf"} 3
call_seconds_sum 2.0505
call_seconds_count 3
# HELP pool_in_flight Calls in flight.
# TYPE pool_in_flight gauge
pool_in_flight 3
# HELP rpc_calls_total RPC calls issued.
# TYPE rpc_calls_total counter
rpc_calls_total{service="nfs-mds"} 7
`
	if sb.String() != want {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "path").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "requests served").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != TextContentType {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := res.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "served_total 9") {
		t.Fatalf("endpoint output missing metric:\n%s", sb.String())
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("snap_total", "help", "op").With("READ").Add(5)
	h := r.Histogram("snap_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)

	snap := r.Snapshot()
	if len(snap.Metrics) != 2 {
		t.Fatalf("families %d, want 2", len(snap.Metrics))
	}
	hist := snap.Metrics[0]
	if hist.Name != "snap_seconds" || hist.Type != "histogram" {
		t.Fatalf("unexpected first family %+v (sorted by name)", hist)
	}
	s := hist.Series[0]
	if s.Count != 2 || s.Sum != 100.5 || s.Max != 100 {
		t.Fatalf("histogram series %+v", s)
	}
	// 0.5 falls in le=1; 100 falls in the omitted +Inf bucket (== Count).
	if len(s.Buckets) != 2 || s.Buckets[0].Cumulative != 1 || s.Buckets[1].Cumulative != 1 {
		t.Fatalf("buckets %+v", s.Buckets)
	}
	ctr := snap.Metrics[1]
	if ctr.Series[0].Labels["op"] != "READ" || ctr.Series[0].Value != 5 {
		t.Fatalf("counter series %+v", ctr.Series[0])
	}
}
