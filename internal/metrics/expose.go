package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format version this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format: families sorted by name, each with HELP and TYPE lines, series in
// creation order, histograms as cumulative le-buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.values, ""), s.c.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.values, ""), s.g.Value())
		return err
	case KindHistogram:
		var cum uint64
		for i := range s.h.buckets {
			cum += s.h.buckets[i].Load()
			le := "+Inf"
			if i < len(s.h.bounds) {
				le = formatFloat(s.h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labels, s.values, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelString(f.labels, s.values, ""), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelString(f.labels, s.values, ""), s.h.Count())
		return err
	}
	return nil
}

// labelString renders {k="v",...}, appending le when non-empty; "" when the
// series carries no labels at all.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`le="`)
		sb.WriteString(le)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// representation, +Inf spelled out.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}

// Snapshot is a point-in-time JSON-marshalable view of a registry, embedded
// in bench reports (BENCH_*.json).
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one family's state.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labeled series' state.  Value holds counters and
// gauges; Count/Sum/Max/Buckets hold histograms.
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Max     float64           `json:"max,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.  The +Inf bucket is
// omitted (JSON has no Inf); its cumulative count equals Count.
type BucketSnapshot struct {
	LE         float64 `json:"le"`
	Cumulative uint64  `json:"cumulative"`
}

// Snapshot captures the registry's current state.  Series with zero
// observations are included, so a snapshot also documents the inventory.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		ms := MetricSnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
		for _, s := range f.snapshotSeries() {
			ss := SeriesSnapshot{}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					ss.Labels[n] = s.values[i]
				}
			}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.c.Value())
			case KindGauge:
				ss.Value = float64(s.g.Value())
			case KindHistogram:
				ss.Count = s.h.Count()
				ss.Sum = s.h.Sum()
				ss.Max = s.h.Max()
				var cum uint64
				for i := range s.h.buckets {
					cum += s.h.buckets[i].Load()
					le := math.Inf(+1)
					if i < len(s.h.bounds) {
						le = s.h.bounds[i]
					}
					if math.IsInf(le, +1) {
						// JSON has no Inf; the +Inf bucket equals Count, so
						// skip it and let readers close the distribution.
						continue
					}
					ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: le, Cumulative: cum})
				}
			}
			ms.Series = append(ms.Series, ss)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}
