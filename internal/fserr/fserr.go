// Package fserr maps between Go file-system errors (package vfs) and the
// numeric error codes carried in protocol replies, shared by the PVFS2 and
// NFSv4.1 wire formats.
//
// Paper mapping: the NFSv4 status codes of RFC 3530/5661 that the paper's
// prototype returns (e.g. the stale-handle errors its §6.4.4 failover path
// recovers from), collapsed to the subset both protocols in this
// repository need.
package fserr

import (
	"fmt"

	"dpnfs/internal/vfs"
)

// Errno is a wire-level error code.  OK is zero.
type Errno uint32

// Wire error codes.
const (
	OK Errno = iota
	NoEnt
	Exist
	IsDir
	NotDir
	NotEmpty
	Inval
	Stale // handle no longer valid
	IO
)

// ToErrno converts a vfs (or nil) error into a wire code.
func ToErrno(err error) Errno {
	switch err {
	case nil:
		return OK
	case vfs.ErrNotExist:
		return NoEnt
	case vfs.ErrExist:
		return Exist
	case vfs.ErrIsDir:
		return IsDir
	case vfs.ErrNotDir:
		return NotDir
	case vfs.ErrNotEmpty:
		return NotEmpty
	case vfs.ErrInval:
		return Inval
	default:
		return IO
	}
}

// Err converts a wire code back to a Go error; OK yields nil.
func (e Errno) Err() error {
	switch e {
	case OK:
		return nil
	case NoEnt:
		return vfs.ErrNotExist
	case Exist:
		return vfs.ErrExist
	case IsDir:
		return vfs.ErrIsDir
	case NotDir:
		return vfs.ErrNotDir
	case NotEmpty:
		return vfs.ErrNotEmpty
	case Inval:
		return vfs.ErrInval
	case Stale:
		return ErrStale
	default:
		return ErrIO
	}
}

// ErrStale and ErrIO are protocol-level errors with no vfs counterpart.
var (
	ErrStale = fmt.Errorf("fserr: stale file handle")
	ErrIO    = fmt.Errorf("fserr: I/O error")
)
