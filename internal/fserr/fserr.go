// Package fserr maps between Go file-system errors (package store) and the
// numeric error codes carried in protocol replies, shared by the PVFS2 and
// NFSv4.1 wire formats.
//
// Paper mapping: the NFSv4 status codes of RFC 3530/5661 that the paper's
// prototype returns (e.g. the stale-handle errors its §6.4.4 failover path
// recovers from), collapsed to the subset both protocols in this
// repository need.
package fserr

import (
	"fmt"

	"dpnfs/internal/store"
)

// Errno is a wire-level error code.  OK is zero.
type Errno uint32

// Wire error codes.
const (
	OK Errno = iota
	NoEnt
	Exist
	IsDir
	NotDir
	NotEmpty
	Inval
	Stale // handle no longer valid
	IO
	// Corrupt reports a data integrity failure: the server (or the client's
	// own wire-checksum verification) detected a block whose checksum does
	// not match its content.  Unlike IO it is known to be a property of one
	// stored copy, so clients retry briefly and then repair from a replica
	// rather than retrying forever (docs/FAULTS.md "Corruption").
	Corrupt
)

// ToErrno converts a store (or nil) error into a wire code.
func ToErrno(err error) Errno {
	switch err {
	case nil:
		return OK
	case store.ErrNotExist:
		return NoEnt
	case store.ErrExist:
		return Exist
	case store.ErrIsDir:
		return IsDir
	case store.ErrNotDir:
		return NotDir
	case store.ErrNotEmpty:
		return NotEmpty
	case store.ErrInval:
		return Inval
	case store.ErrCorrupt:
		return Corrupt
	default:
		return IO
	}
}

// Err converts a wire code back to a Go error; OK yields nil.
func (e Errno) Err() error {
	switch e {
	case OK:
		return nil
	case NoEnt:
		return store.ErrNotExist
	case Exist:
		return store.ErrExist
	case IsDir:
		return store.ErrIsDir
	case NotDir:
		return store.ErrNotDir
	case NotEmpty:
		return store.ErrNotEmpty
	case Inval:
		return store.ErrInval
	case Stale:
		return ErrStale
	case Corrupt:
		return store.ErrCorrupt
	default:
		return ErrIO
	}
}

// ErrStale and ErrIO are protocol-level errors with no store counterpart.
var (
	ErrStale = fmt.Errorf("fserr: stale file handle")
	ErrIO    = fmt.Errorf("fserr: I/O error")
)
