package fserr

import (
	"testing"

	"dpnfs/internal/vfs"
)

func TestRoundTripAllVFSErrors(t *testing.T) {
	errs := []error{
		nil,
		vfs.ErrNotExist,
		vfs.ErrExist,
		vfs.ErrIsDir,
		vfs.ErrNotDir,
		vfs.ErrNotEmpty,
		vfs.ErrInval,
	}
	for _, err := range errs {
		if got := ToErrno(err).Err(); got != err {
			t.Errorf("round trip %v -> %v", err, got)
		}
	}
}

func TestUnknownErrorBecomesIO(t *testing.T) {
	if e := ToErrno(ErrStale); e != IO {
		t.Fatalf("foreign error mapped to %v, want IO", e)
	}
	if IO.Err() != ErrIO {
		t.Fatal("IO errno does not map to ErrIO")
	}
}

func TestStaleMapsToErrStale(t *testing.T) {
	if Stale.Err() != ErrStale {
		t.Fatal("Stale errno does not map to ErrStale")
	}
}

func TestOKIsZero(t *testing.T) {
	if OK != 0 {
		t.Fatal("OK must be the zero value: replies rely on it")
	}
	if OK.Err() != nil {
		t.Fatal("OK must map to nil")
	}
}
