// Package faults is the deterministic fault-injection engine: a Plan is a
// seed-driven schedule of events (storage-node crashes and restarts, link
// degradation, slow disks) that a cluster replays against itself while a
// workload runs.  The same plan drives every architecture, which is what
// turns the simulator into a testbed for the paper's *unhappy* paths —
// layout recall/refetch and MDS-proxied fallback under storage-node loss
// (paper §3–§4, §6).
//
// Determinism: a plan's schedule is fixed by its Events (and, for
// RandomPlan, by its seed alone).  Under the simulation kernel events fire
// at exact virtual times, so two runs of the same (workload seed, fault
// plan) pair are byte-identical — the property the bench determinism
// regression test pins.
//
// The engine itself is transport- and protocol-agnostic: it manipulates an
// abstract Target (implemented by cluster.Cluster), and every applied
// injection is counted in the shared metrics registry as
// faults_injected_total{kind,node}.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dpnfs/internal/metrics"
)

// Target is the surface an injector manipulates.  cluster.Cluster implements
// it for both transports: on the simulated fabric all three hooks apply; in
// TCP mode only node down/up is meaningful (links and disks are not
// modeled on real sockets) and the others are no-ops.
type Target interface {
	// SetNodeDown marks every RPC service on node unreachable (down=true)
	// or reachable again (down=false).  Calls to a down node surface as
	// retryable errors at the rpc layer.
	SetNodeDown(node string, down bool)
	// SetLink degrades the node's network interface: loss is the
	// probability that a message pays a retransmission timeout, extraRTT is
	// added round-trip delay (half per direction).  (0, 0) restores the
	// link.
	SetLink(node string, loss float64, extraRTT time.Duration)
	// SetDiskSlow scales the node's disk service time by factor (>= 1).
	// Factor 1 restores full speed.
	SetDiskSlow(node string, factor float64)
}

// VolatileTarget is the optional extension a Target implements when node
// crashes should also discard volatile state — in-memory store images and
// handle tables — and replay durable state on restart.  This is the surface
// the durable backends (internal/store/wal, docs/BACKENDS.md) exercise:
// with it, a crash event models a real reboot in which everything not yet
// synced to the write-ahead log is lost.  Targets whose stores are purely
// volatile simply do not implement it and keep the original reboot-with-
// image-intact semantics.
type VolatileTarget interface {
	// CrashVolatile discards the node's volatile state at crash time.
	CrashVolatile(node string)
	// RestartVolatile replays the node's durable state before the node
	// rejoins the cluster.
	RestartVolatile(node string)
}

// CorruptionTarget is the optional extension a Target implements when data
// integrity faults — silent corruption of stored bytes, not node loss — can
// be injected into a node's store (docs/FAULTS.md "Corruption").  Every hook
// is deterministic in (node, seed), so a corruption plan replays exactly.
// Targets without checksummed stores simply do not implement it and the
// corruption events become counted no-ops.
type CorruptionTarget interface {
	// CorruptData flips one stored byte on node's store, chosen
	// deterministically from seed, without updating its block checksum —
	// bit rot on the media.
	CorruptData(node string, seed int64)
	// MisdirectRead arms a one-shot wrong-block read on node's store: the
	// next read of the victim block is served the bytes of a different
	// block, modelling a firmware- or driver-level misdirected I/O.
	MisdirectRead(node string, seed int64)
	// ArmTornWrite makes node's next crash persist only a prefix of the
	// final acknowledged journal record, so recovery sees a torn write.
	ArmTornWrite(node string)
}

// Event is one scheduled injection.  Concrete events are the exported
// structs below; At is relative to the start of the run the plan is armed
// for.
type Event interface {
	// When returns the event's offset from the start of the run.
	When() time.Duration
	// Kind returns a short label for metrics and traces.
	Kind() string
	// Target returns the node the event manipulates.
	Target() string
	// Apply performs the injection.
	Apply(tg Target)
}

// StorageNodeCrash takes every service on Node offline at At.
type StorageNodeCrash struct {
	At   time.Duration
	Node string
}

func (e StorageNodeCrash) When() time.Duration { return e.At }
func (e StorageNodeCrash) Kind() string        { return "crash" }
func (e StorageNodeCrash) Target() string      { return e.Node }
func (e StorageNodeCrash) Apply(tg Target) {
	tg.SetNodeDown(e.Node, true)
	if vt, ok := tg.(VolatileTarget); ok {
		vt.CrashVolatile(e.Node)
	}
}

// StorageNodeRestart brings a crashed node back at At.  Disk media survives
// the crash (the model is a node reboot, not media loss); whether the
// node's *store* survives depends on the backend: a VolatileTarget replays
// its durable log here, while purely volatile targets come back with the
// image intact.
type StorageNodeRestart struct {
	At   time.Duration
	Node string
}

func (e StorageNodeRestart) When() time.Duration { return e.At }
func (e StorageNodeRestart) Kind() string        { return "restart" }
func (e StorageNodeRestart) Target() string      { return e.Node }
func (e StorageNodeRestart) Apply(tg Target) {
	if vt, ok := tg.(VolatileTarget); ok {
		vt.RestartVolatile(e.Node)
	}
	tg.SetNodeDown(e.Node, false)
}

// LinkDegrade makes the node's link lossy/slow at At: each message pays a
// retransmission timeout with probability Loss, and every round trip
// through the node pays ExtraRTT of added delay (half per direction).
// Pair with LinkRestore to heal.
type LinkDegrade struct {
	At       time.Duration
	Node     string
	Loss     float64
	ExtraRTT time.Duration
}

func (e LinkDegrade) When() time.Duration { return e.At }
func (e LinkDegrade) Kind() string        { return "link-degrade" }
func (e LinkDegrade) Target() string      { return e.Node }
func (e LinkDegrade) Apply(tg Target)     { tg.SetLink(e.Node, e.Loss, e.ExtraRTT) }

// LinkRestore heals a degraded link at At.
type LinkRestore struct {
	At   time.Duration
	Node string
}

func (e LinkRestore) When() time.Duration { return e.At }
func (e LinkRestore) Kind() string        { return "link-restore" }
func (e LinkRestore) Target() string      { return e.Node }
func (e LinkRestore) Apply(tg Target)     { tg.SetLink(e.Node, 0, 0) }

// SlowDisk multiplies the node's disk service time by Factor at At.
// Factor 1 restores full speed.
type SlowDisk struct {
	At     time.Duration
	Node   string
	Factor float64
}

func (e SlowDisk) When() time.Duration { return e.At }
func (e SlowDisk) Kind() string        { return "slow-disk" }
func (e SlowDisk) Target() string      { return e.Node }
func (e SlowDisk) Apply(tg Target)     { tg.SetDiskSlow(e.Node, e.Factor) }

// BitRot silently flips one stored byte on Node at At, leaving the block's
// checksum stale.  Which byte is a pure function of (the store's contents,
// Seed).  The corruption is *silent*: nothing fails until a read or scrub
// touches the block and its checksum disagrees.
type BitRot struct {
	At   time.Duration
	Node string
	Seed int64
}

func (e BitRot) When() time.Duration { return e.At }
func (e BitRot) Kind() string        { return "bit-rot" }
func (e BitRot) Target() string      { return e.Node }
func (e BitRot) Apply(tg Target) {
	if ct, ok := tg.(CorruptionTarget); ok {
		ct.CorruptData(e.Node, e.Seed)
	}
}

// MisdirectedRead arms a one-shot wrong-block read on Node at At: the next
// read of a victim block (chosen deterministically from Seed) is served
// another block's bytes.  Location-salted checksums catch it — the stray
// block carries a valid sum for the wrong address.
type MisdirectedRead struct {
	At   time.Duration
	Node string
	Seed int64
}

func (e MisdirectedRead) When() time.Duration { return e.At }
func (e MisdirectedRead) Kind() string        { return "misdirected-read" }
func (e MisdirectedRead) Target() string      { return e.Node }
func (e MisdirectedRead) Apply(tg Target) {
	if ct, ok := tg.(CorruptionTarget); ok {
		ct.MisdirectRead(e.Node, e.Seed)
	}
}

// TornWrite arms Node so that its next crash persists only a prefix of the
// final acknowledged journal record.  Meaningful only when paired with a
// later StorageNodeCrash on the same node and a journaling backend; the
// record checksum catches the tear at recovery, which drops the record and
// counts it (store_wal_torn_writes_total).
type TornWrite struct {
	At   time.Duration
	Node string
}

func (e TornWrite) When() time.Duration { return e.At }
func (e TornWrite) Kind() string        { return "torn-write" }
func (e TornWrite) Target() string      { return e.Node }
func (e TornWrite) Apply(tg Target) {
	if ct, ok := tg.(CorruptionTarget); ok {
		ct.ArmTornWrite(e.Node)
	}
}

// Plan is a schedule of fault events.  A cluster built with
// cluster.Config.Faults re-arms the plan relative to the start of every
// workload run (Run/RunClient) while faults are armed; pair every crash
// with a restart (and every degrade with a restore) so the cluster heals
// between runs.
type Plan struct {
	// Seed records the derivation seed for reproducibility reporting; it is
	// informational for hand-built plans and authoritative for RandomPlan.
	Seed   int64
	Events []Event
}

// NewPlan builds a plan from explicit events.
func NewPlan(seed int64, events ...Event) *Plan {
	return &Plan{Seed: seed, Events: events}
}

// Sorted returns the events in firing order (stable for equal times, so
// plans replay identically).
func (p *Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].When() < out[j].When() })
	return out
}

// Horizon returns the offset of the last event.
func (p *Plan) Horizon() time.Duration {
	var h time.Duration
	for _, e := range p.Events {
		if e.When() > h {
			h = e.When()
		}
	}
	return h
}

// String renders the schedule for logs and failure messages.
func (p *Plan) String() string {
	s := fmt.Sprintf("faults.Plan{seed=%d", p.Seed)
	for _, e := range p.Sorted() {
		s += fmt.Sprintf(" %s@%v:%s", e.Kind(), e.When(), e.Target())
	}
	return s + "}"
}

// Injector binds a plan to a target and counts every applied injection in
// the metrics registry (faults_injected_total, docs/METRICS.md).
type Injector struct {
	plan    *Plan
	target  Target
	applied *metrics.CounterVec
}

// NewInjector builds an injector.  reg may be nil (injections go uncounted).
func NewInjector(plan *Plan, target Target, reg *metrics.Registry) *Injector {
	in := &Injector{plan: plan, target: target}
	if reg != nil {
		in.applied = reg.CounterVec("faults_injected_total",
			"Fault events applied to the cluster, by event kind and target node.",
			"kind", "node")
	}
	return in
}

// Events returns the plan's events in firing order.
func (in *Injector) Events() []Event { return in.plan.Sorted() }

// Apply performs one injection and counts it.
func (in *Injector) Apply(ev Event) {
	ev.Apply(in.target)
	if in.applied != nil {
		in.applied.With(ev.Kind(), ev.Target()).Inc()
	}
}

// PlanOpts selects optional event families for RandomPlanWith.
type PlanOpts struct {
	// Corruption adds data-integrity events to the plan: one or two bit-rot
	// flips, (half the time) an armed misdirected read, and (half the time)
	// a torn write armed shortly before the crash.  Opt-in because
	// corruption events are only meaningful against checksummed stores with
	// real (non-synthetic) payloads; the default plans stay availability-
	// only so existing figures are unchanged.
	Corruption bool
}

// RandomPlan derives a reproducible plan from seed alone: one crash/restart
// pair on one of nodes, plus (half the time each) a degraded link and a
// slow disk, all within horizon.  The crash lands in the first fifth of the
// horizon and heals before 0.8·horizon, so a workload paced across the
// horizon always overlaps the outage.
func RandomPlan(seed int64, nodes []string, horizon time.Duration) *Plan {
	return RandomPlanWith(seed, nodes, horizon, PlanOpts{})
}

// RandomPlanWith is RandomPlan with optional event families.  For any opts,
// the base schedule is identical to RandomPlan's for the same seed: optional
// draws happen after all base draws, so enabling an option extends a plan
// without perturbing it.
func RandomPlanWith(seed int64, nodes []string, horizon time.Duration, opts PlanOpts) *Plan {
	if len(nodes) == 0 {
		panic("faults: RandomPlan needs at least one node")
	}
	if horizon <= 0 {
		horizon = time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	h := float64(horizon)
	at := func(lo, hi float64) time.Duration { return time.Duration(h * (lo + rng.Float64()*(hi-lo))) }

	victim := nodes[rng.Intn(len(nodes))]
	crash := at(0.02, 0.2)
	restart := crash + at(0.2, 0.5)
	p := NewPlan(seed,
		StorageNodeCrash{At: crash, Node: victim},
		StorageNodeRestart{At: restart, Node: victim},
	)
	if rng.Float64() < 0.5 {
		n := nodes[rng.Intn(len(nodes))]
		p.Events = append(p.Events,
			LinkDegrade{At: at(0, 0.3), Node: n, Loss: 0.05 + rng.Float64()*0.15, ExtraRTT: time.Duration(200e3 + rng.Float64()*1.8e6)},
			LinkRestore{At: at(0.6, 0.85), Node: n},
		)
	}
	if rng.Float64() < 0.5 {
		n := nodes[rng.Intn(len(nodes))]
		p.Events = append(p.Events,
			SlowDisk{At: at(0, 0.3), Node: n, Factor: 2 + rng.Float64()*6},
			SlowDisk{At: at(0.6, 0.85), Node: n, Factor: 1},
		)
	}
	if opts.Corruption {
		// Rot lands after the restart window so the victim's store is live
		// when the flip applies, and before 0.9·horizon so a workload paced
		// across the horizon still reads (and can repair) the bad block.
		for i, flips := 0, 1+rng.Intn(2); i < flips; i++ {
			n := nodes[rng.Intn(len(nodes))]
			p.Events = append(p.Events, BitRot{At: at(0.55, 0.9), Node: n, Seed: rng.Int63()})
		}
		if rng.Float64() < 0.5 {
			n := nodes[rng.Intn(len(nodes))]
			p.Events = append(p.Events, MisdirectedRead{At: at(0.55, 0.9), Node: n, Seed: rng.Int63()})
		}
		if rng.Float64() < 0.5 {
			// Armed just before the crash: the tear is in the flush the
			// crash interrupts.
			p.Events = append(p.Events, TornWrite{At: crash - crash/10, Node: victim})
		}
	}
	return p
}

// TB is the slice of testing.TB the Chaos harness needs (kept as a local
// interface so non-test binaries that link this package do not pull in the
// testing machinery).
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Chaos drives a chaos-style test: rounds reproducible random plans derived
// from seed, each handed to fn, which runs a workload under the plan and
// verifies end-to-end integrity (returning an error on corruption or
// failure).  The failure message names the round's derived seed so any
// round can be replayed in isolation via RandomPlan.
func Chaos(t TB, seed int64, rounds int, nodes []string, horizon time.Duration, fn func(round int, plan *Plan) error) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		// splitmix-style derivation keeps round seeds decorrelated while
		// remaining a pure function of (seed, round).
		rs := int64(uint64(seed) + uint64(round+1)*0x9e3779b97f4a7c15)
		plan := RandomPlan(rs, nodes, horizon)
		t.Logf("chaos round %d: %v", round, plan)
		if err := fn(round, plan); err != nil {
			t.Fatalf("chaos round %d (replay with faults.RandomPlan(%d, ...)): %v", round, rs, err)
		}
	}
}
