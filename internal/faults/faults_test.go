package faults

import (
	"reflect"
	"testing"
	"time"

	"dpnfs/internal/metrics"
)

// recordingTarget logs applied injections for assertions.
type recordingTarget struct {
	log []string
}

func (r *recordingTarget) SetNodeDown(node string, down bool) {
	if down {
		r.log = append(r.log, "down:"+node)
	} else {
		r.log = append(r.log, "up:"+node)
	}
}
func (r *recordingTarget) SetLink(node string, loss float64, extra time.Duration) {
	if loss == 0 && extra == 0 {
		r.log = append(r.log, "link-ok:"+node)
	} else {
		r.log = append(r.log, "link-bad:"+node)
	}
}
func (r *recordingTarget) SetDiskSlow(node string, factor float64) {
	if factor <= 1 {
		r.log = append(r.log, "disk-ok:"+node)
	} else {
		r.log = append(r.log, "disk-slow:"+node)
	}
}

func TestPlanSortedAndHorizon(t *testing.T) {
	p := NewPlan(1,
		StorageNodeRestart{At: 300 * time.Millisecond, Node: "io1"},
		StorageNodeCrash{At: 100 * time.Millisecond, Node: "io1"},
		SlowDisk{At: 200 * time.Millisecond, Node: "io2", Factor: 4},
	)
	ev := p.Sorted()
	if ev[0].Kind() != "crash" || ev[1].Kind() != "slow-disk" || ev[2].Kind() != "restart" {
		t.Fatalf("bad firing order: %v %v %v", ev[0].Kind(), ev[1].Kind(), ev[2].Kind())
	}
	if p.Horizon() != 300*time.Millisecond {
		t.Fatalf("horizon %v, want 300ms", p.Horizon())
	}
}

func TestInjectorAppliesAndCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	tg := &recordingTarget{}
	in := NewInjector(NewPlan(1,
		StorageNodeCrash{At: 0, Node: "io1"},
		LinkDegrade{At: time.Millisecond, Node: "io2", Loss: 0.1, ExtraRTT: time.Millisecond},
		SlowDisk{At: 2 * time.Millisecond, Node: "io3", Factor: 3},
		StorageNodeRestart{At: 3 * time.Millisecond, Node: "io1"},
		LinkRestore{At: 4 * time.Millisecond, Node: "io2"},
		SlowDisk{At: 5 * time.Millisecond, Node: "io3", Factor: 1},
	), tg, reg)
	for _, ev := range in.Events() {
		in.Apply(ev)
	}
	want := []string{"down:io1", "link-bad:io2", "disk-slow:io3", "up:io1", "link-ok:io2", "disk-ok:io3"}
	if !reflect.DeepEqual(tg.log, want) {
		t.Fatalf("applied %v, want %v", tg.log, want)
	}
	var total float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == "faults_injected_total" {
			for _, s := range m.Series {
				total += s.Value
			}
		}
	}
	if total != 6 {
		t.Fatalf("faults_injected_total = %v, want 6", total)
	}
}

func TestRandomPlanDeterministicAndPaired(t *testing.T) {
	nodes := []string{"io1", "io2", "io3"}
	a := RandomPlan(42, nodes, time.Second)
	b := RandomPlan(42, nodes, time.Second)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	if c := RandomPlan(43, nodes, time.Second); c.String() == a.String() {
		t.Fatal("different seeds produced identical plans")
	}
	// Every derived plan heals itself: each crash has a later restart on
	// the same node, and the schedule fits the horizon.
	for seed := int64(0); seed < 50; seed++ {
		p := RandomPlan(seed, nodes, time.Second)
		if p.Horizon() > time.Second {
			t.Fatalf("seed %d: horizon %v exceeds 1s", seed, p.Horizon())
		}
		crashes := map[string]time.Duration{}
		for _, ev := range p.Sorted() {
			switch e := ev.(type) {
			case StorageNodeCrash:
				crashes[e.Node] = e.At
			case StorageNodeRestart:
				at, ok := crashes[e.Node]
				if !ok || e.At <= at {
					t.Fatalf("seed %d: restart of %s not after its crash", seed, e.Node)
				}
				delete(crashes, e.Node)
			}
		}
		if len(crashes) != 0 {
			t.Fatalf("seed %d: unpaired crash %v", seed, crashes)
		}
	}
}

// chaosTB captures harness output without failing the real test.
type chaosTB struct {
	logs   int
	fatals int
	last   string
}

func (c *chaosTB) Helper()                      {}
func (c *chaosTB) Logf(string, ...any)          { c.logs++ }
func (c *chaosTB) Fatalf(f string, args ...any) { c.fatals++; c.last = f }
func (c *chaosTB) errOnRound(round int) func(int, *Plan) error {
	return func(r int, _ *Plan) error {
		if r == round {
			return errBoom
		}
		return nil
	}
}

var errBoom = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestChaosReportsFailingRound(t *testing.T) {
	tb := &chaosTB{}
	Chaos(tb, 7, 3, []string{"io1"}, time.Second, tb.errOnRound(1))
	if tb.fatals != 1 {
		t.Fatalf("chaos recorded %d failures, want 1", tb.fatals)
	}
	if tb.logs < 2 {
		t.Fatalf("chaos logged %d plans before failing, want >= 2", tb.logs)
	}
	// Same seed, same derived plans: a clean callback passes all rounds.
	tb2 := &chaosTB{}
	Chaos(tb2, 7, 3, []string{"io1"}, time.Second, func(int, *Plan) error { return nil })
	if tb2.fatals != 0 || tb2.logs != 3 {
		t.Fatalf("clean chaos run: fatals=%d logs=%d", tb2.fatals, tb2.logs)
	}
}
