module dpnfs

go 1.22
