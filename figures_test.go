package dpnfs_test

import (
	"testing"

	"dpnfs/directpnfs"
)

// These tests assert the qualitative shapes of the paper's figures at a
// reduced scale: who wins, by roughly what factor, and where behaviour
// changes.  Absolute values are calibration-dependent and are checked only
// for plausibility; EXPERIMENTS.md records the full-scale numbers.

const shapeScale = 0.08

func figure(t *testing.T, id string, clients []int) directpnfs.Figure {
	t.Helper()
	fig, err := directpnfs.Figures[id](directpnfs.FigureOptions{Scale: shapeScale, Clients: clients})
	if err != nil {
		t.Fatal(err)
	}
	return fig
}

func TestShapeFig6aWritePlateaus(t *testing.T) {
	fig := figure(t, "6a", []int{1, 4, 8})
	direct := fig.Value("Direct-pNFS", 8)
	pvfs := fig.Value("PVFS2", 8)
	threeTier := fig.Value("pNFS-3tier", 8)
	nfsv4 := fig.Value("NFSv4", 8)

	// Direct-pNFS matches the exported parallel file system.
	if ratio := direct / pvfs; ratio < 0.85 || ratio > 1.2 {
		t.Errorf("Direct/PVFS2 write ratio %.2f, want ~1", ratio)
	}
	// pNFS-3tier plateaus well below the disk-limited systems.
	if threeTier > 0.92*direct {
		t.Errorf("3-tier (%.1f) should plateau below Direct (%.1f)", threeTier, direct)
	}
	// NFSv4 is flat and lowest.
	if nfsv4 > 0.6*direct {
		t.Errorf("NFSv4 (%.1f) should be far below Direct (%.1f)", nfsv4, direct)
	}
	n1, n8 := fig.Value("NFSv4", 1), fig.Value("NFSv4", 8)
	if n8 > 1.5*n1 {
		t.Errorf("NFSv4 should be flat: %.1f @1 vs %.1f @8", n1, n8)
	}
}

func TestShapeFig6cTwoTierHalvesOnSlowNetwork(t *testing.T) {
	fig := figure(t, "6c", []int{4, 8})
	direct := fig.Value("Direct-pNFS", 8)
	twoTier := fig.Value("pNFS-2tier", 8)
	// Inter-data-server forwarding costs 2-tier about half its bandwidth
	// when the network is the bottleneck (paper Fig 6c).
	if twoTier > 0.65*direct {
		t.Errorf("100 Mbps: 2-tier (%.1f) should be ~half of Direct (%.1f)", twoTier, direct)
	}
}

func TestShapeFig6dSmallWrites(t *testing.T) {
	large := figure(t, "6a", []int{8})
	small := figure(t, "6d", []int{8})
	// NFS-based systems are unaffected by the application block size
	// (write gathering); PVFS2 collapses.
	d1, d2 := large.Value("Direct-pNFS", 8), small.Value("Direct-pNFS", 8)
	if d2 < 0.8*d1 {
		t.Errorf("Direct-pNFS 8K writes (%.1f) should match 2M writes (%.1f)", d2, d1)
	}
	p1, p2 := large.Value("PVFS2", 8), small.Value("PVFS2", 8)
	if p2 > 0.55*p1 {
		t.Errorf("PVFS2 8K writes (%.1f) should collapse vs 2M writes (%.1f)", p2, p1)
	}
	// And Direct-pNFS beats PVFS2 outright on small blocks.
	if d2 < 2*p2 {
		t.Errorf("8K blocks: Direct (%.1f) should far exceed PVFS2 (%.1f)", d2, p2)
	}
}

func TestShapeFig7aReadScaling(t *testing.T) {
	fig := figure(t, "7a", []int{1, 8})
	direct1, direct8 := fig.Value("Direct-pNFS", 1), fig.Value("Direct-pNFS", 8)
	nfsv48 := fig.Value("NFSv4", 8)
	twoTier8 := fig.Value("pNFS-2tier", 8)
	// Direct-pNFS scales with clients (eliminating the single-server
	// bottleneck); NFSv4 stays at single-server bandwidth.
	if direct8 < 3*direct1 {
		t.Errorf("Direct reads should scale: %.1f @1 → %.1f @8", direct1, direct8)
	}
	if direct8 < 2.2*nfsv48 {
		t.Errorf("Direct (%.1f) should far exceed NFSv4 (%.1f) at 8 clients", direct8, nfsv48)
	}
	// Indirect data access caps 2-tier below Direct.
	if twoTier8 > 0.85*direct8 {
		t.Errorf("2-tier (%.1f) should trail Direct (%.1f)", twoTier8, direct8)
	}
}

func TestShapeFig7bPVFS2OvertakesAtScale(t *testing.T) {
	fig := figure(t, "7b", []int{1, 8})
	// Paper Fig 7b: PVFS2 is below Direct-pNFS with few clients but
	// overtakes it at 8 (co-located server modules + fixed buffer pool).
	if d, p := fig.Value("Direct-pNFS", 1), fig.Value("PVFS2", 1); p > d {
		t.Errorf("1 client: PVFS2 (%.1f) should trail Direct (%.1f)", p, d)
	}
	if d, p := fig.Value("Direct-pNFS", 8), fig.Value("PVFS2", 8); p < d {
		t.Errorf("8 clients: PVFS2 (%.1f) should overtake Direct (%.1f)", p, d)
	}
}

func TestShapeFig7cSmallReads(t *testing.T) {
	fig := figure(t, "7c", []int{8})
	d, p := fig.Value("Direct-pNFS", 8), fig.Value("PVFS2", 8)
	// Readahead keeps NFS-based reads at large-block speed; PVFS2 pays per
	// request.
	if d < 3*p {
		t.Errorf("8K reads: Direct (%.1f) should be several× PVFS2 (%.1f)", d, p)
	}
}

func TestShapeFig8Applications(t *testing.T) {
	if testing.Short() {
		t.Skip("application figures are slow")
	}
	atlas := figure(t, "8a", []int{4})
	if d, p := atlas.Value("Direct-pNFS", 4), atlas.Value("PVFS2", 4); d < 2*p {
		t.Errorf("ATLAS: Direct (%.1f) should far exceed PVFS2 (%.1f)", d, p)
	}
	oltp := figure(t, "8c", []int{4})
	if d, p := oltp.Value("Direct-pNFS", 4), oltp.Value("PVFS2", 4); d < 2*p {
		t.Errorf("OLTP: Direct (%.1f) should far exceed PVFS2 (%.1f)", d, p)
	}
	pm := figure(t, "8d", []int{4})
	if d, p := pm.Value("Direct-pNFS", 4), pm.Value("PVFS2", 4); d < 1.4*p {
		t.Errorf("Postmark: Direct (%.1f tps) should exceed PVFS2 (%.1f tps)", d, p)
	}
	btio := figure(t, "8b", []int{4})
	d, p := btio.Value("Direct-pNFS", 4), btio.Value("PVFS2", 4)
	// BTIO (bulk I/O): comparable running times.
	if d > 1.6*p || p > 1.6*d {
		t.Errorf("BTIO times should be comparable: Direct %.1fs, PVFS2 %.1fs", d, p)
	}
}
