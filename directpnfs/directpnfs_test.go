package directpnfs_test

import (
	"bytes"
	"fmt"
	"testing"

	"dpnfs/directpnfs"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	cl := directpnfs.New(directpnfs.Config{
		Arch:    directpnfs.ArchDirectPNFS,
		Clients: 2,
		Real:    true,
	})
	data := bytes.Repeat([]byte("public api"), 100_000) // ~1 MB
	elapsed, err := cl.Run(func(ctx *directpnfs.Ctx, m *directpnfs.Mount, i int) error {
		path := fmt.Sprintf("/api-%d", i)
		f, err := m.Create(ctx, path)
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, directpnfs.Bytes(data)); err != nil {
			return err
		}
		if err := m.Close(ctx, f); err != nil {
			return err
		}
		g, err := m.Open(ctx, path)
		if err != nil {
			return err
		}
		got, n, err := m.Read(ctx, g, 0, int64(len(data)))
		if err != nil || n != int64(len(data)) {
			return fmt.Errorf("read: %d %v", n, err)
		}
		if !bytes.Equal(got.Bytes, data) {
			return fmt.Errorf("corruption through public API")
		}
		if !m.PNFS() {
			return fmt.Errorf("expected pNFS layouts")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if len(cl.Stats()) != 6 {
		t.Fatalf("expected 6 back-end nodes, got %d", len(cl.Stats()))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		cl := directpnfs.New(directpnfs.Config{Arch: directpnfs.ArchDirectPNFS, Clients: 3, Seed: 7})
		res, err := directpnfs.ATLAS(cl, directpnfs.ATLASConfig{TotalBytes: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d %s", res.Bytes, res.Elapsed)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs diverged: %q vs %q", a, b)
	}
}

func TestAllWorkloadsThroughPublicAPI(t *testing.T) {
	mk := func() *directpnfs.Cluster {
		return directpnfs.New(directpnfs.Config{Arch: directpnfs.ArchDirectPNFS, Clients: 2})
	}
	if _, err := directpnfs.IOR(mk(), directpnfs.IORConfig{FileSize: 4 << 20, Block: 1 << 20, Separate: true}); err != nil {
		t.Errorf("IOR: %v", err)
	}
	if _, err := directpnfs.ATLAS(mk(), directpnfs.ATLASConfig{TotalBytes: 4 << 20}); err != nil {
		t.Errorf("ATLAS: %v", err)
	}
	if _, err := directpnfs.BTIO(mk(), directpnfs.BTIOConfig{CheckpointBytes: 4 << 20, Checkpoints: 2}); err != nil {
		t.Errorf("BTIO: %v", err)
	}
	if _, err := directpnfs.OLTP(mk(), directpnfs.OLTPConfig{FileBytes: 4 << 20, Transactions: 20}); err != nil {
		t.Errorf("OLTP: %v", err)
	}
	if _, err := directpnfs.Postmark(mk(), directpnfs.PostmarkConfig{Transactions: 20, Files: 10, Dirs: 2}); err != nil {
		t.Errorf("Postmark: %v", err)
	}
}

func TestFigureRegistryThroughPublicAPI(t *testing.T) {
	// 14 paper figures plus the repository's degraded-mode,
	// crash-recovery, window-sweep, tail-latency, rebalance, and
	// open-loop-sweep figures.
	if len(directpnfs.FigureIDs) != 21 {
		t.Fatalf("expected 21 figures, got %d", len(directpnfs.FigureIDs))
	}
	fig, err := directpnfs.Figures["6a"](directpnfs.FigureOptions{
		Scale:   0.002,
		Clients: []int{1},
		Archs:   []directpnfs.Arch{directpnfs.ArchNFSv4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Value("NFSv4", 1) <= 0 {
		t.Fatal("figure produced no value")
	}
}
