package directpnfs_test

import (
	"fmt"

	"dpnfs/directpnfs"
)

// ExampleGenerate regenerates a paper figure programmatically.  Scale and
// Clients shrink the sweep so the example runs in milliseconds; dropping
// them reproduces the paper's full data sizes.
func ExampleGenerate() {
	fig, err := directpnfs.Generate("6a", directpnfs.FigureOptions{
		Scale:   0.002,
		Clients: []int{1, 2},
		Archs:   []directpnfs.Arch{directpnfs.ArchDirectPNFS, directpnfs.ArchPVFS2},
	})
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	fmt.Printf("%s: %q over %d series\n", fig.ID, fig.Title, len(fig.Series))
	fmt.Printf("Direct-pNFS scales with clients: %v\n",
		fig.Value("Direct-pNFS", 2) > fig.Value("Direct-pNFS", 1))
	// Output:
	// Fig6a: "write, separate files, 2 MB block" over 2 series
	// Direct-pNFS scales with clients: true
}

// ExampleNew_tcpTransport wires a Direct-pNFS cluster onto real loopback
// TCP sockets via Config.Transport: the same architecture and workload
// code as the simulated fabric, but real goroutines moving real bytes.
func ExampleNew_tcpTransport() {
	cl := directpnfs.New(directpnfs.Config{
		Arch:      directpnfs.ArchDirectPNFS,
		Clients:   1,
		Backends:  3,
		Real:      true, // carry actual bytes end to end
		Transport: directpnfs.TransportTCP,
	})
	defer cl.Close()

	_, err := cl.Run(func(ctx *directpnfs.Ctx, m *directpnfs.Mount, i int) error {
		f, err := m.Create(ctx, "/hello")
		if err != nil {
			return err
		}
		if err := m.Write(ctx, f, 0, directpnfs.Bytes([]byte("direct-pnfs over tcp"))); err != nil {
			return err
		}
		if err := m.Fsync(ctx, f); err != nil {
			return err
		}
		data, n, err := m.Read(ctx, f, 0, 64)
		if err != nil {
			return err
		}
		fmt.Printf("read %d bytes: %s\n", n, data.Bytes)
		return m.Close(ctx, f)
	})
	if err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// read 20 bytes: direct-pnfs over tcp
}
