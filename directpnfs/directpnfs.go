// Package directpnfs is the public API of the Direct-pNFS reproduction: a
// simulated-cluster implementation of "Direct-pNFS: Scalable, transparent,
// and versatile access to parallel file systems" (Hildebrand & Honeyman,
// HPDC 2007).
//
// A Cluster wires one of the paper's five architectures — Direct-pNFS,
// native PVFS2, two- and three-tier file-based pNFS, and plain NFSv4 — onto
// a deterministic discrete-event fabric with the paper's testbed geometry.
// Applications run as simulated processes against an
// architecture-independent Mount (Create/Open/Read/Write/Fsync/Close plus
// namespace operations), and every benchmark figure from the paper's
// evaluation can be regenerated through the Figures registry.
//
// Quick start:
//
//	cfg := directpnfs.Config{Arch: directpnfs.ArchDirectPNFS, Clients: 4}
//	cl := directpnfs.New(cfg)
//	elapsed, err := cl.Run(func(ctx *directpnfs.Ctx, m *directpnfs.Mount, i int) error {
//		f, err := m.Create(ctx, fmt.Sprintf("/data-%d", i))
//		if err != nil {
//			return err
//		}
//		if err := m.Write(ctx, f, 0, directpnfs.Synthetic(64<<20)); err != nil {
//			return err
//		}
//		return m.Close(ctx, f)
//	})
//
// All time is virtual: a run simulating minutes of cluster I/O completes in
// milliseconds and is exactly reproducible for a given Config.Seed.
package directpnfs

import (
	"fmt"

	"dpnfs/internal/bench"
	"dpnfs/internal/cluster"
	"dpnfs/internal/metrics"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
	"dpnfs/internal/workload"
)

// Ctx is the per-process execution context threaded through every
// file-system call.
type Ctx = rpc.Ctx

// Arch selects a cluster architecture.
type Arch = cluster.Arch

// The five architectures the paper evaluates (§6.1).
const (
	ArchDirectPNFS = cluster.ArchDirectPNFS
	ArchPVFS2      = cluster.ArchPVFS2
	ArchPNFS2Tier  = cluster.ArchPNFS2Tier
	ArchPNFS3Tier  = cluster.ArchPNFS3Tier
	ArchNFSv4      = cluster.ArchNFSv4
)

// Archs lists all architectures in the paper's presentation order.
var Archs = cluster.Archs

// Config describes a simulated cluster; zero values take the paper's
// testbed defaults (6 back-end nodes, 2 MB stripe and wsize/rsize, gigabit
// Ethernet, 8 NFS server threads).
type Config = cluster.Config

// TransportKind selects how a cluster's RPC endpoints are wired.
type TransportKind = cluster.TransportKind

// The two transports every architecture runs on (Config.Transport).
const (
	// TransportSim is the discrete-event fabric: deterministic virtual
	// time, the mode all figures use.
	TransportSim = cluster.TransportSim
	// TransportTCP is real loopback sockets: wall-clock time, real bytes.
	TransportTCP = cluster.TransportTCP
)

// Registry is the unified observability registry every cluster carries
// (Cluster.Metrics): counters, gauges, and histograms from all layers,
// renderable as Prometheus text or a JSON snapshot.
type Registry = metrics.Registry

// Cluster is a fully wired simulated deployment.
type Cluster = cluster.Cluster

// Mount is the architecture-independent application view of one client.
type Mount = cluster.Mount

// File is an open file on a Mount.
type File = cluster.File

// NodeStats is a per-node utilization snapshot.
type NodeStats = cluster.NodeStats

// New builds a cluster.
func New(cfg Config) *Cluster { return cluster.New(cfg) }

// Payload is bulk I/O data: real bytes or a synthetic length.
type Payload = payload.Payload

// Bytes wraps real data for end-to-end transfer.
func Bytes(b []byte) Payload { return payload.Real(b) }

// Synthetic describes n bytes without materializing them — benchmarks move
// simulated terabytes this way.
func Synthetic(n int64) Payload { return payload.Synthetic(n) }

// Workload configurations and runners (paper §6.2-§6.4).
type (
	// IORConfig parameterizes the IOR micro-benchmark.
	IORConfig = workload.IORConfig
	// ATLASConfig parameterizes the ATLAS Digitization replay.
	ATLASConfig = workload.ATLASConfig
	// BTIOConfig parameterizes the NAS BT-IO checkpoint benchmark.
	BTIOConfig = workload.BTIOConfig
	// OLTPConfig parameterizes the OLTP transaction benchmark.
	OLTPConfig = workload.OLTPConfig
	// PostmarkConfig parameterizes the Postmark small-file benchmark.
	PostmarkConfig = workload.PostmarkConfig
	// WorkloadResult is a workload execution outcome.
	WorkloadResult = workload.Result
)

// IOR runs the IOR micro-benchmark (Figures 6 and 7).
func IOR(cl *Cluster, cfg IORConfig) (WorkloadResult, error) { return workload.IOR(cl, cfg) }

// ATLAS runs the Digitization write replay (Figure 8a).
func ATLAS(cl *Cluster, cfg ATLASConfig) (WorkloadResult, error) { return workload.ATLAS(cl, cfg) }

// BTIO runs the checkpoint benchmark (Figure 8b).
func BTIO(cl *Cluster, cfg BTIOConfig) (WorkloadResult, error) { return workload.BTIO(cl, cfg) }

// OLTP runs the transaction benchmark (Figure 8c).
func OLTP(cl *Cluster, cfg OLTPConfig) (WorkloadResult, error) { return workload.OLTP(cl, cfg) }

// Postmark runs the small-file benchmark (Figure 8d).
func Postmark(cl *Cluster, cfg PostmarkConfig) (WorkloadResult, error) {
	return workload.Postmark(cl, cfg)
}

// Figure is a regenerated paper figure (a set of labelled series).
type Figure = bench.Figure

// FigureOptions tunes figure regeneration (scale, client counts).
type FigureOptions = bench.Options

// Figures maps figure IDs ("6a".."6e", "7a".."7d", "8a".."8d", "ssh") to
// their generators.
var Figures = bench.All

// FigureIDs lists the figure IDs in the paper's presentation order.
var FigureIDs = bench.IDs

// Generate regenerates one paper figure by ID ("6a".."6e", "7a".."7d",
// "8a".."8d", "ssh").  Unknown IDs return an error listing the known set.
func Generate(id string, opt FigureOptions) (Figure, error) {
	gen, ok := Figures[id]
	if !ok {
		return Figure{}, fmt.Errorf("directpnfs: unknown figure %q (known: %v)", id, FigureIDs)
	}
	return gen(opt)
}

// BenchReport is a machine-readable figure-run outcome: series plus
// per-figure metrics snapshots, written as JSON by dpnfs-bench -report.
type BenchReport = bench.Report

// NewBenchReport starts an empty report for the options; BenchReport.Add
// generates figures into it.
func NewBenchReport(opt FigureOptions) *BenchReport { return bench.NewReport(opt) }
