package dpnfs_test

import (
	"os"
	"strconv"
	"testing"

	"dpnfs/directpnfs"
)

// benchScale returns the data-size scale for benchmark runs.  The default
// (5% of the paper's sizes) keeps `go test -bench=.` under a few minutes;
// set DPNFS_BENCH_SCALE=1.0 to run the paper's full sizes, or use
// cmd/dpnfs-bench.
func benchScale() float64 {
	if v := os.Getenv("DPNFS_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.05
}

// benchFigure regenerates one figure per iteration and reports every
// series' value at the largest client count as a named metric, so
// `go test -bench` output carries the figure's headline numbers.
func benchFigure(b *testing.B, id string, clients []int) {
	b.Helper()
	gen := directpnfs.Figures[id]
	var fig directpnfs.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = gen(directpnfs.FigureOptions{Scale: benchScale(), Clients: clients})
		if err != nil {
			b.Fatal(err)
		}
	}
	max := clients[len(clients)-1]
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.X == max {
				b.ReportMetric(p.Y, s.Label+"@"+strconv.Itoa(max))
			}
		}
	}
}

var iorClients = []int{1, 4, 8}

// Figure 6: aggregate write throughput (MB/s).
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "6a", iorClients) }
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "6b", iorClients) }
func BenchmarkFig6c(b *testing.B) { benchFigure(b, "6c", iorClients) }
func BenchmarkFig6d(b *testing.B) { benchFigure(b, "6d", iorClients) }
func BenchmarkFig6e(b *testing.B) { benchFigure(b, "6e", iorClients) }

// Figure 7: aggregate read throughput against warm server caches (MB/s).
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "7a", iorClients) }
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "7b", iorClients) }
func BenchmarkFig7c(b *testing.B) { benchFigure(b, "7c", iorClients) }
func BenchmarkFig7d(b *testing.B) { benchFigure(b, "7d", iorClients) }

// Figure 8: application benchmarks.
func BenchmarkFig8a(b *testing.B) { benchFigure(b, "8a", []int{1, 4, 8}) }
func BenchmarkFig8b(b *testing.B) { benchFigure(b, "8b", []int{1, 4, 9}) }
func BenchmarkFig8c(b *testing.B) { benchFigure(b, "8c", []int{1, 4, 8}) }
func BenchmarkFig8d(b *testing.B) { benchFigure(b, "8d", []int{1, 4, 8}) }

// §6.4.3 SSH-build phase study.
func BenchmarkSSHBuild(b *testing.B) { benchFigure(b, "ssh", []int{1}) }

// Ablation benches: design choices DESIGN.md calls out.

// BenchmarkAblationDirectVsBlindLayout isolates the paper's core claim —
// exact layouts (Direct) vs blind striping (2-tier) on the same hardware.
func BenchmarkAblationDirectVsBlindLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, arch := range []directpnfs.Arch{directpnfs.ArchDirectPNFS, directpnfs.ArchPNFS2Tier} {
			cl := directpnfs.New(directpnfs.Config{Arch: arch, Clients: 4})
			res, err := directpnfs.IOR(cl, directpnfs.IORConfig{
				FileSize: int64(float64(500<<20) * benchScale()),
				Block:    2 << 20, Separate: true, Read: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ThroughputMBs(), string(arch)+"_MB/s")
		}
	}
}

// BenchmarkAblationWriteGathering measures the NFS client's wsize gathering
// by comparing 8 KB against 2 MB application blocks on Direct-pNFS.
func BenchmarkAblationWriteGathering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, block := range []int64{8 << 10, 2 << 20} {
			cl := directpnfs.New(directpnfs.Config{Arch: directpnfs.ArchDirectPNFS, Clients: 4})
			res, err := directpnfs.IOR(cl, directpnfs.IORConfig{
				FileSize: int64(float64(500<<20) * benchScale()),
				Block:    block, Separate: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ThroughputMBs(), "block"+strconv.FormatInt(block>>10, 10)+"K_MB/s")
		}
	}
}

// BenchmarkAblationAggregationDrivers compares the pluggable aggregation
// schemes under Direct-pNFS (paper §4.3).
func BenchmarkAblationAggregationDrivers(b *testing.B) {
	schemes := []struct {
		name   string
		agg    string
		params []int64
	}{
		{"round-robin", "", nil},
		{"hierarchical", "hierarchical", []int64{2 << 20, 512 << 10, 2}},
		{"variable-stripe", "variable-stripe", []int64{4 << 20, 2 << 20, 2 << 20, 1 << 20, 1 << 20, 512 << 10}},
		{"replicated", "replicated", []int64{2, 1 << 20}},
	}
	for i := 0; i < b.N; i++ {
		for _, s := range schemes {
			cl := directpnfs.New(directpnfs.Config{
				Arch: directpnfs.ArchDirectPNFS, Clients: 4,
				Aggregation: s.agg, AggParams: s.params,
			})
			res, err := directpnfs.IOR(cl, directpnfs.IORConfig{
				FileSize: int64(float64(200<<20) * benchScale()),
				Block:    2 << 20, Separate: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ThroughputMBs(), s.name+"_MB/s")
		}
	}
}
