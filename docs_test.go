package dpnfs_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// TestMarkdownLinksResolve walks every tracked markdown file and verifies
// that relative links point at files (or directories) that exist.  External
// URLs and pure anchors are skipped — CI must not depend on the network.
// This is the docs job's link checker (.github/workflows/ci.yml).
func TestMarkdownLinksResolve(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		// PAPER.md, PAPERS.md, and SNIPPETS.md are vendored retrieval
		// artifacts (extracted paper text may reference figures that were
		// never checked in); only repo-authored docs are held to the link
		// contract.
		switch path {
		case "PAPER.md", "PAPERS.md", "SNIPPETS.md":
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — walker broken?")
	}

	checked := 0
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external; not checked offline
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked — the README/doc links should exist")
	}
}

// TestRequiredDocsLinked pins the documentation contract: the architecture
// and metrics references exist and README.md links both.
func TestRequiredDocsLinked(t *testing.T) {
	for _, p := range []string{"docs/ARCHITECTURE.md", "docs/METRICS.md", "docs/FAULTS.md", "docs/BACKENDS.md"} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s: %v", p, err)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/METRICS.md", "docs/FAULTS.md", "docs/BACKENDS.md"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not link %s", want)
		}
	}
}
