// Package dpnfs is a full reproduction of "Direct-pNFS: Scalable,
// transparent, and versatile access to parallel file systems" (Dean
// Hildebrand and Peter Honeyman, HPDC 2007).
//
// The public API lives in dpnfs/directpnfs; see README.md for the
// architecture overview, quickstart, and how to run the benchmarks and
// regenerate the figures.  The benchmarks in bench_test.go regenerate
// every figure of the paper's evaluation section at a reduced scale;
// cmd/dpnfs-bench regenerates them at the paper's full data sizes, and
// with -transport=tcp runs the same workloads over real loopback sockets
// (cmd/dpnfs-serve exports a cluster for external clients).
package dpnfs
