// Package dpnfs is a full reproduction of "Direct-pNFS: Scalable,
// transparent, and versatile access to parallel file systems" (Dean
// Hildebrand and Peter Honeyman, HPDC 2007).
//
// The public API lives in dpnfs/directpnfs; see README.md for the
// architecture overview, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation section at a reduced scale; cmd/dpnfs-bench regenerates them
// at the paper's full data sizes.
package dpnfs
