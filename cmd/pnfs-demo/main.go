// pnfs-demo runs the NFSv4.1 protocol implementation over real TCP on
// loopback: it starts an NFS server (in-memory backend), mounts it with the
// same client engine the simulations use, and performs a small session of
// file operations — demonstrating that the protocol stack (XDR, RPC
// framing, COMPOUND, sessions, write-back cache) is a real implementation,
// not simulation-only scaffolding.
//
// Usage:
//
//	pnfs-demo              # server + client in one process
//	pnfs-demo -listen :xx  # server only
//	pnfs-demo -connect addr
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"dpnfs/internal/nfs"
	"dpnfs/internal/payload"
	"dpnfs/internal/rpc"
)

func main() {
	listen := flag.String("listen", "", "serve only, on this address")
	connect := flag.String("connect", "", "client only, to this address")
	flag.Parse()

	if *listen != "" {
		srv := nfs.NewServer(nfs.ServerConfig{Backend: nfs.NewVFSBackend(nil)})
		tcp, err := rpc.ListenTCP(*listen, nfs.Registry(), srv.Handle)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("NFSv4.1 server listening on %s\n", tcp.Addr())
		select {} // serve forever
	}

	addr := *connect
	var tcp *rpc.TCPServer
	if addr == "" {
		srv := nfs.NewServer(nfs.ServerConfig{Backend: nfs.NewVFSBackend(nil)})
		var err error
		tcp, err = rpc.ListenTCP("127.0.0.1:0", nfs.Registry(), srv.Handle)
		if err != nil {
			log.Fatal(err)
		}
		defer tcp.Close()
		addr = tcp.Addr()
		fmt.Printf("server: listening on %s\n", addr)
	}

	conn, err := rpc.DialTCP(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	client := nfs.NewClient(nfs.ClientConfig{MDS: conn, Name: "demo-client", Real: true})
	ctx := &rpc.Ctx{} // real-time mode
	if err := client.Mount(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("client: session established (EXCHANGE_ID + CREATE_SESSION)")

	// A per-process directory keeps reruns against a persistent server
	// (dpnfs-serve) from colliding with earlier state.
	dir := fmt.Sprintf("/demo-%d", os.Getpid())
	if err := client.Mkdir(ctx, dir); err != nil {
		log.Fatal(err)
	}
	f, err := client.Create(ctx, dir+"/greeting")
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("hello from NFSv4.1 over real TCP")
	if err := client.Write(ctx, f, 0, payload.Real(msg)); err != nil {
		log.Fatal(err)
	}
	if err := client.Close(ctx, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: wrote %d bytes (write-back cache + COMMIT on close)\n", len(msg))

	g, err := client.Open(ctx, dir+"/greeting")
	if err != nil {
		log.Fatal(err)
	}
	got, n, err := client.Read(ctx, g, 0, int64(len(msg)))
	if err != nil || n != int64(len(msg)) || !bytes.Equal(got.Bytes, msg) {
		log.Fatalf("read back failed: n=%d err=%v", n, err)
	}
	fmt.Printf("client: read back %q\n", got.Bytes)

	names, err := client.ReadDir(ctx, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: readdir %s = %v\n", dir, names)
	fmt.Println("demo complete: full protocol round trip over TCP")
}
